module bmac

go 1.24
