package bmac_test

import (
	"fmt"
	"log"
	"os"
	"time"

	"bmac"
)

// ExampleSimulateArchitecture sizes a BMac architecture with the
// paper-calibrated timing simulator and the Table-1 resource model.
func ExampleSimulateArchitecture() {
	res, err := bmac.SimulateArchitecture(8, 2, bmac.SimWorkload{
		Policy:    "2of3",
		BlockSize: 150,
		Reads:     2,
		Writes:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arch %s: %d engines, fits U250: %v\n", res.Arch, res.EngineCount, res.FitsU250)
	fmt.Printf("short-circuit skipped %d of %d endorsements\n",
		res.EndsSkipped, res.EndsVerified+res.EndsSkipped)
	// Output:
	// arch 8x2: 25 engines, fits U250: true
	// short-circuit skipped 150 of 450 endorsements
}

// ExampleParseConfig loads a BMac YAML configuration.
func ExampleParseConfig() {
	cfg, err := bmac.ParseConfig([]byte(`
channel: ch1
orgs:
  - name: Org1
    endorsers: 1
    clients: 1
    orderers: 1
  - name: Org2
    endorsers: 1
chaincodes:
  - name: smallbank
    policy: "2-outof-2 orgs"
architecture:
  tx_validators: 8
  vscc_engines: 2
`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d orgs, %s policy, %dx%d architecture\n",
		len(cfg.Orgs), cfg.Chaincodes[0].Policy, cfg.Arch.TxValidators, cfg.Arch.VSCCEngines)
	// Output:
	// 2 orgs, 2-outof-2 orgs policy, 8x2 architecture
}

// ExampleNewTestbed runs a minimal network end to end.
func ExampleNewTestbed() {
	dir, err := os.MkdirTemp("", "bmac-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	tb, err := bmac.NewTestbed(bmac.DefaultConfig(), dir)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	w := bmac.SmallbankWorkload{Accounts: 10}
	if err := tb.Bootstrap(w); err != nil {
		log.Fatal(err)
	}
	driver, err := tb.NewClient(w, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := driver.Run(5); err != nil {
		log.Fatal(err)
	}
	outcomes, err := tb.AwaitBlocks(1, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block committed with %d txs, sw/hw match: %v\n",
		outcomes[0].TxCount, outcomes[0].Match)
	// Output:
	// block committed with 5 txs, sw/hw match: true
}
