// Command bmaclint is the repo's custom static-analysis driver: a
// multichecker running the internal/analysis suite (aliasguard, nilsafe,
// guardedby, errdiscard) over the packages matching the given patterns.
//
// Usage:
//
//	bmaclint [flags] [packages]
//
//	-only name[,name]   run only the named analyzers
//	-annotations        guardedby validates annotations without checking
//	                    accesses (the fast mode scripts/doclint.sh runs)
//	-list               print the analyzer suite and exit
//
// With no package patterns, ./... is analyzed. Exit status 1 means
// findings were reported; 2 means the analysis itself failed (a package
// did not type-check, go list failed, ...). scripts/lint.sh runs
// `bmaclint ./...` as the contract-enforcement step of CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"bmac/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	annotations := flag.Bool("annotations", false, "guardedby: validate annotations only, skip access checks")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmaclint:", err)
		os.Exit(2)
	}
	if *annotations {
		for i, a := range analyzers {
			if a == analysis.GuardedBy {
				analyzers[i] = analysis.GuardedByAnnotationsOnly
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmaclint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmaclint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bmaclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
