// Command bmaclint is the repo's custom static-analysis driver: a
// multichecker running the internal/analysis suite — the per-package
// contract checks (aliasguard, nilsafe, guardedby, errdiscard) and the
// interprocedural module analyzers sharing one call graph (lockorder,
// goroleak, allocbound) — over the packages matching the given patterns.
//
// Usage:
//
//	bmaclint [flags] [packages]
//
//	-only name[,name]   run only the named analyzers
//	-annotations        guardedby validates annotations without checking
//	                    accesses (the fast mode scripts/doclint.sh runs)
//	-json               emit findings as JSON, one object per line
//	-v                  report load and per-analyzer wall-clock to stderr
//	-list               print the analyzer suite and exit
//
// With no package patterns, ./... is analyzed. Exit status 1 means
// findings were reported; 2 means the analysis itself failed (a package
// did not type-check, go list failed, ...). scripts/lint.sh runs
// `bmaclint ./...` as the contract-enforcement step of CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bmac/internal/analysis"
)

// jsonDiagnostic is the -json line format: a flat object CI tooling can
// consume without knowing token.Position.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	annotations := flag.Bool("annotations", false, "guardedby: validate annotations only, skip access checks")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	verbose := flag.Bool("v", false, "report load and per-analyzer wall-clock to stderr")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmaclint:", err)
		os.Exit(2)
	}
	if *annotations {
		for i, a := range analyzers {
			if a == analysis.GuardedBy {
				analyzers[i] = analysis.GuardedByAnnotationsOnly
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(".")
	loadStart := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmaclint:", err)
		os.Exit(2)
	}
	loadElapsed := time.Since(loadStart)

	diags, timings, err := analysis.RunAnalyzersTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmaclint:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "bmaclint: load+typecheck %d package(s) in %v\n", len(pkgs), loadElapsed.Round(time.Millisecond))
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "bmaclint: %-12s %v\n", tm.Name, tm.Elapsed.Round(time.Millisecond))
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "bmaclint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bmaclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
