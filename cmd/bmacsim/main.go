// Command bmacsim explores BMac architectures with the timing simulator
// and the FPGA resource model: given a policy and workload shape, it sweeps
// tx_validator counts and reports throughput, latency and utilization —
// the design-space exploration a deployment would run before picking an
// architecture (paper §3.3 "Adaptability" and §4.3).
//
// Usage:
//
//	bmacsim                               # default sweep, 2of2 policy
//	bmacsim -policy 3of3 -engines 3       # policy-specific architecture
//	bmacsim -block 500 -max 80            # large blocks, big FPGAs
package main

import (
	"flag"
	"fmt"
	"os"

	"bmac/internal/hwsim"
	"bmac/internal/metrics"
	"bmac/internal/policy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bmacsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		polSrc  = flag.String("policy", "2of2", "endorsement policy")
		engines = flag.Int("engines", 2, "ecdsa_engines per tx_vscc")
		blockSz = flag.Int("block", 250, "transactions per block")
		reads   = flag.Int("reads", 2, "db reads per tx")
		writes  = flag.Int("writes", 2, "db writes per tx")
		maxVal  = flag.Int("max", 32, "max tx_validators to sweep")
	)
	flag.Parse()

	pol, err := policy.Parse(*polSrc)
	if err != nil {
		return err
	}
	circuit := policy.Compile(pol)
	ends := pol.MaxEndorsements()
	txs := hwsim.UniformTxProfile(*blockSz, ends, *reads, *writes)

	t := &metrics.Table{Header: []string{
		"arch", "tps", "block latency", "tx latency", "ends/tx", "LUT%", "FF%", "fits U250",
	}}
	for n := 2; n <= *maxVal; n *= 2 {
		cfg := hwsim.Config{TxValidators: n, VSCCEngines: *engines}
		timing := hwsim.Simulate(cfg, circuit, txs)
		u := hwsim.Resources(n, *engines)
		t.AddRow(
			cfg.String(),
			metrics.FormatTPS(timing.Throughput(*blockSz)),
			timing.BlockLatency().String(),
			timing.TxLatency.String(),
			fmt.Sprintf("%.1f", float64(timing.EndsVerified)/float64(*blockSz)),
			fmt.Sprintf("%.1f", u.LUTPct),
			fmt.Sprintf("%.1f", u.FFPct),
			fmt.Sprintf("%v", u.FitsU250()),
		)
	}
	fmt.Printf("policy %q (%d endorsements), block size %d, %dr/%dw per tx\n\n",
		*polSrc, ends, *blockSz, *reads, *writes)
	fmt.Println(t.String())
	return nil
}
