// Command bmacnet runs a complete in-process BMac network: clients endorse
// and submit benchmark transactions through a Raft ordering service, and
// every block is validated three ways — by the sequential software
// validator, by the parallel pipelined commit engine and by the BMac
// pipeline — with all results cross-checked, as in paper §4.1.
//
// Usage:
//
//	bmacnet                          # smallbank, default config
//	bmacnet -config bmac.yaml        # custom network/architecture
//	bmacnet -workload drm -txs 500   # drm benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bmac"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bmacnet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "YAML configuration file (default: built-in)")
		workload   = flag.String("workload", "smallbank", "workload: smallbank, drm or splitpay")
		txs        = flag.Int("txs", 200, "transactions to submit")
		accounts   = flag.Int("accounts", 100, "accounts/assets to bootstrap")
		skew       = flag.Float64("skew", 0, "smallbank hot-account Zipf exponent (>1 skews, 0 = uniform)")
		dir        = flag.String("dir", "", "ledger directory (default: temp)")
		backend    = flag.String("backend", "", "parallel peer statedb backend: memory, hybrid or sharded (default: config)")
		dbCap      = flag.Int("db-capacity", 0, "hybrid backend cache capacity (default: architecture db_capacity)")
		hostLatUS  = flag.Int("host-latency-us", 0, "modeled host read latency on hybrid cache misses, microseconds")
		prefetch   = flag.Bool("prefetch", false, "enable the pipelined engine's async read-set prefetch stage")
	)
	flag.Parse()

	cfg := bmac.DefaultConfig()
	if *configPath != "" {
		loaded, err := bmac.LoadConfig(*configPath)
		if err != nil {
			return err
		}
		cfg = loaded
	}
	if *backend != "" {
		cfg.StateDB.Backend = *backend
	}
	if *dbCap > 0 {
		cfg.StateDB.Capacity = *dbCap
	}
	if *hostLatUS > 0 {
		cfg.StateDB.HostReadLatencyUS = *hostLatUS
	}
	if *prefetch {
		cfg.Pipeline.Prefetch = true
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	var w bmac.Workload
	switch *workload {
	case "smallbank":
		w = bmac.SmallbankWorkload{Accounts: *accounts, Skew: *skew}
	case "drm":
		cfg.Chaincodes = []bmac.ChaincodeSpec{{Name: "drm", Policy: cfg.Chaincodes[0].Policy}}
		w = bmac.DRMWorkload{Assets: *accounts}
	case "splitpay":
		cfg.Chaincodes = []bmac.ChaincodeSpec{{Name: "splitpay", Policy: cfg.Chaincodes[0].Policy}}
		w = bmac.SplitPayWorkload{Accounts: *accounts, Recipients: 3}
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	workdir := *dir
	if workdir == "" {
		tmp, err := os.MkdirTemp("", "bmacnet-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		workdir = tmp
	}

	tb, err := bmac.NewTestbed(cfg, workdir)
	if err != nil {
		return err
	}
	defer tb.Close()

	if err := tb.Bootstrap(w); err != nil {
		return err
	}
	driver, err := tb.NewClient(w, time.Now().UnixNano())
	if err != nil {
		return err
	}

	fmt.Printf("network: %d orgs, %d endorsers, arch %dx%d, channel %s\n",
		len(cfg.Orgs), len(tb.Endorsers), cfg.Arch.TxValidators, cfg.Arch.VSCCEngines, cfg.Channel)
	fmt.Printf("submitting %d %s transactions...\n", *txs, *workload)
	start := time.Now()
	if err := driver.Run(*txs); err != nil {
		return err
	}

	committed, blocks, mismatches := 0, 0, 0
	var swTotal, parTotal bmac.StageBreakdown
	for committed < *txs {
		outcomes, err := tb.AwaitBlocks(1, 30*time.Second)
		if err != nil {
			return err
		}
		o := outcomes[0]
		blocks++
		committed += o.TxCount
		if !o.Match {
			mismatches++
		}
		swTotal.Add(o.SW.Breakdown)
		parTotal.Add(o.Par.Breakdown)
		fmt.Printf("block %3d: %3d txs, sw/hw match=%v, sw/par match=%v, ends verified=%d skipped=%d\n",
			o.BlockNum, o.TxCount, o.HWMatch, o.ParMatch,
			o.HW.HWStats.EndsVerified, o.HW.HWStats.EndsSkipped)
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d blocks, %d txs in %v (%.0f tps end-to-end)\n",
		blocks, committed, elapsed.Round(time.Millisecond), float64(committed)/elapsed.Seconds())

	fmt.Println("\nper-stage totals, sequential vs parallel pipelined validator:")
	fmt.Printf("  %-12s %12s %12s %9s\n", "stage", "sequential", "pipelined", "speedup")
	for _, s := range []struct {
		name    string
		sw, par time.Duration
	}{
		{"unmarshal", swTotal.Unmarshal, parTotal.Unmarshal},
		{"block_verify", swTotal.BlockVerify, parTotal.BlockVerify},
		{"verify_vscc", swTotal.VerifyVSCC, parTotal.VerifyVSCC},
		{"mvcc", swTotal.MVCC, parTotal.MVCC},
		{"statedb", swTotal.StateDB, parTotal.StateDB},
		{"total", swTotal.Total, parTotal.Total},
	} {
		speedup := "-"
		if s.par > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(s.sw)/float64(s.par))
		}
		fmt.Printf("  %-12s %12v %12v %9s\n", s.name,
			s.sw.Round(time.Microsecond), s.par.Round(time.Microsecond), speedup)
	}

	fmt.Printf("\nparallel peer statedb: %s\n", tb.ParallelBackendSummary())

	if mismatches != 0 {
		return fmt.Errorf("%d blocks mismatched across the three validation paths", mismatches)
	}
	fmt.Println("\nsequential, parallel and BMac validation results matched on every block")
	return nil
}
