// Command bmacnet runs a complete in-process BMac network: clients endorse
// and submit benchmark transactions through a Raft ordering service, and
// every block is validated three ways — by the sequential software
// validator, by the parallel pipelined commit engine and by the BMac
// pipeline — with all results cross-checked, as in paper §4.1.
//
// With -cluster it instead drives the delivery-side stack end to end:
// an open-loop client load (configurable arrival rate and distribution)
// submits through the Raft ordering service, and blocks fan out through
// the non-blocking delivery service to N gossip peers (one of them
// artificially slow) and a BMac peer, reporting throughput, per-tx
// p50/p95/p99 commit latency and per-peer delivery statistics.
//
// With -cluster -churn it additionally kills the last fast peer mid-run
// and restarts it from its checkpoint + ledger replay, catching it up
// through the orderer's ledger-backed delivery source; the run fails
// unless every fast peer converges to an identical state hash. Adding
// -churn-corrupt bit-rots one of the downed peer's sealed ledger segments
// so the restart must quarantine it and re-fetch the lost range through
// delivery; -segment-bytes, -prune and -fastsync tune the segmented
// ledger's rotation budget, checkpoint-covered pruning and recovery mode.
//
// With -cluster -adversary-rate it mixes hostile traffic (invalid
// signatures, garbage envelopes, forged endorsements, replayed
// double-spends) into the honest load at the given fraction; with
// -cluster -fault it injects one chaos fault (partition, corruption,
// slowdisk or leaderkill) mid-run. Both gate on all fast peers ending
// bit-identical.
//
// Usage:
//
//	bmacnet                          # smallbank, default config
//	bmacnet -config bmac.yaml        # custom network/architecture
//	bmacnet -workload drm -txs 500   # drm benchmark
//	bmacnet -cluster -peers 4 -slow-peers 1 -rate 500 -path pipelined
//	bmacnet -cluster -churn -rate 900 -txs 200 -no-bmac
//	bmacnet -cluster -churn -churn-corrupt -segment-bytes 4096 -txs 200 -no-bmac
//	bmacnet -cluster -churn -segment-bytes 4096 -prune -rate 900 -txs 200 -no-bmac
//	bmacnet -cluster -adversary-rate 0.5 -txs 200 -no-bmac
//	bmacnet -cluster -fault partition -rate 900 -txs 200 -no-bmac
//	bmacnet -cluster -fault leaderkill -raft-nodes 3 -peers 2 -rate 900 -txs 200 -no-bmac
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bmac"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bmacnet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "YAML configuration file (default: built-in)")
		workload   = flag.String("workload", "smallbank", "workload: smallbank, drm or splitpay")
		txs        = flag.Int("txs", 200, "transactions to submit")
		accounts   = flag.Int("accounts", 100, "accounts/assets to bootstrap")
		skew       = flag.Float64("skew", 0, "smallbank hot-account Zipf exponent (>1 skews, 0 = uniform)")
		dir        = flag.String("dir", "", "ledger directory (default: temp)")
		backend    = flag.String("backend", "", "parallel peer statedb backend: memory, hybrid or sharded (default: config)")
		dbCap      = flag.Int("db-capacity", 0, "hybrid backend cache capacity (default: architecture db_capacity)")
		hostLatUS  = flag.Int("host-latency-us", 0, "modeled host read latency on hybrid cache misses, microseconds")
		prefetch   = flag.Bool("prefetch", false, "enable the pipelined engine's async read-set prefetch stage")

		clusterRun = flag.Bool("cluster", false, "run the cluster load experiment (orderer -> raft -> delivery -> N peers)")
		path       = flag.String("path", "sequential", "cluster validation path: sequential, pipelined or hybrid")
		peers      = flag.Int("peers", 3, "cluster software peers")
		slowPeers  = flag.Int("slow-peers", 1, "cluster peers made artificially slow (taken from the end)")
		slowDelay  = flag.Duration("slow-delay", 40*time.Millisecond, "per-block delay of a slow peer")
		rate       = flag.Float64("rate", 0, "open-loop aggregate arrival rate, tx/s (0 = unpaced)")
		arrival    = flag.String("arrival", "poisson", "inter-arrival distribution: poisson or uniform")
		clients    = flag.Int("clients", 2, "concurrent load clients")
		raftNodes  = flag.Int("raft-nodes", 1, "raft cluster size of the ordering service")
		window     = flag.Int("delivery-window", 0, "delivery retained-block window (0 = config/default)")
		slowPolicy = flag.String("delivery-policy", "", "slow peers' overrun policy: drop, disconnect, or wait (lossless, throttles the orderer to the slow peer; default: config/drop)")
		noBMac     = flag.Bool("no-bmac", false, "cluster: skip the BMac protocol peer")
		churn      = flag.Bool("churn", false, "cluster: kill the last fast peer mid-run and restart it from checkpoint + ledger replay")
		churnAfter = flag.Int("churn-after", 0, "cluster: blocks the churned peer commits before the kill (0 = default 2)")
		churnRot   = flag.Bool("churn-corrupt", false, "cluster: bit-rot the churned peer's oldest sealed segment while it is down; the restart must quarantine it and re-fetch the range through delivery")
		ckptEvery  = flag.Int("checkpoint-every", 0, "peer state checkpoint cadence in blocks (0 = config durability.checkpoint_every)")
		segBytes   = flag.Int64("segment-bytes", 0, "ledger segment rotation budget in bytes (0 = config durability.segment_bytes or ledger default)")
		prune      = flag.Bool("prune", false, "prune ledger segments covered by every retained checkpoint generation (requires a checkpoint cadence)")
		fastsync   = flag.Bool("fastsync", true, "recover restarted peers from the newest checkpoint generation + tail replay (false: full replay from the oldest, a measurement baseline)")
		advRate    = flag.Float64("adversary-rate", 0, "cluster: fraction of all traffic injected as hostile envelopes — invalid signatures, garbage, forged endorsements, replays (0..0.9)")
		fault      = flag.String("fault", "", "cluster: chaos fault to inject: "+strings.Join(bmac.ChaosFaults(), ", "))
		faultAfter = flag.Int("fault-after", 0, "cluster: blocks committed before the fault strikes (0 = default 2)")

		telAddr   = flag.String("telemetry-addr", "", "serve live /metrics, /debug/pprof/* and /trace on this address (e.g. 127.0.0.1:9464); turns the telemetry plane on")
		traceFile = flag.String("trace-file", "", "cluster: write the per-block lifecycle trace (JSONL) here after the run; turns the telemetry plane on")
	)
	flag.Parse()

	cfg := bmac.DefaultConfig()
	if *configPath != "" {
		loaded, err := bmac.LoadConfig(*configPath)
		if err != nil {
			return err
		}
		cfg = loaded
	}
	if *backend != "" {
		cfg.StateDB.Backend = *backend
	}
	if *dbCap > 0 {
		cfg.StateDB.Capacity = *dbCap
	}
	if *hostLatUS > 0 {
		cfg.StateDB.HostReadLatencyUS = *hostLatUS
	}
	if *prefetch {
		cfg.Pipeline.Prefetch = true
	}
	if *telAddr != "" {
		cfg.Telemetry.Enabled = true
		cfg.Telemetry.Addr = *telAddr
	}
	if *traceFile != "" {
		cfg.Telemetry.Enabled = true
		cfg.Telemetry.TraceFile = *traceFile
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	// The telemetry plane: a per-run flight recorder (stamped by the
	// cluster harness) plus the live HTTP endpoint, both optional. The
	// server is up before the run starts so /metrics and /debug/pprof can
	// watch the run in flight.
	var rec *bmac.TraceRecorder
	if cfg.Telemetry.Enabled {
		rec = bmac.NewTraceRecorder()
	}
	if cfg.Telemetry.Addr != "" {
		srv, err := bmac.ServeTelemetry(cfg.Telemetry.Addr, cfg.TelemetryRegistry(), rec)
		if err != nil {
			return fmt.Errorf("telemetry server: %w", err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s (/metrics, /debug/pprof/, /trace)\n", srv.Addr())
	}
	var w bmac.Workload
	switch *workload {
	case "smallbank":
		w = bmac.SmallbankWorkload{Accounts: *accounts, Skew: *skew}
	case "drm":
		cfg.Chaincodes = []bmac.ChaincodeSpec{{Name: "drm", Policy: cfg.Chaincodes[0].Policy}}
		w = bmac.DRMWorkload{Assets: *accounts}
	case "splitpay":
		cfg.Chaincodes = []bmac.ChaincodeSpec{{Name: "splitpay", Policy: cfg.Chaincodes[0].Policy}}
		w = bmac.SplitPayWorkload{Accounts: *accounts, Recipients: 3}
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	workdir := *dir
	if workdir == "" {
		tmp, err := os.MkdirTemp("", "bmacnet-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		workdir = tmp
	}

	if *clusterRun {
		pol := *slowPolicy
		if pol == "" {
			pol = cfg.Delivery.Policy
		}
		return runCluster(cfg, bmac.ClusterOptions{
			Mode:            *path,
			Peers:           *peers,
			SlowPeers:       *slowPeers,
			SlowDelay:       *slowDelay,
			SlowPolicy:      pol,
			BMacPeer:        !*noBMac,
			RaftNodes:       *raftNodes,
			Txs:             *txs,
			Rate:            *rate,
			Arrival:         *arrival,
			Clients:         *clients,
			Window:          *window,
			Accounts:        *accounts,
			Skew:            *skew,
			Seed:            time.Now().UnixNano(),
			Churn:           *churn,
			ChurnAfter:      *churnAfter,
			ChurnCorrupt:    *churnRot,
			CheckpointEvery: *ckptEvery,
			SegmentBytes:    *segBytes,
			Prune:           *prune,
			NoFastSync:      !*fastsync,
			Adversary:       *advRate,
			Fault:           *fault,
			FaultAfter:      *faultAfter,
			Recorder:        rec,
		}, workdir)
	}

	tb, err := bmac.NewTestbed(cfg, workdir)
	if err != nil {
		return err
	}
	defer tb.Close()

	if err := tb.Bootstrap(w); err != nil {
		return err
	}
	driver, err := tb.NewClient(w, time.Now().UnixNano())
	if err != nil {
		return err
	}

	fmt.Printf("network: %d orgs, %d endorsers, arch %dx%d, channel %s\n",
		len(cfg.Orgs), len(tb.Endorsers), cfg.Arch.TxValidators, cfg.Arch.VSCCEngines, cfg.Channel)
	fmt.Printf("submitting %d %s transactions...\n", *txs, *workload)
	start := time.Now()
	// Submit concurrently with outcome consumption: with small blocks a
	// long run produces more blocks than the outcomes channel and the
	// delivery window can buffer, and the cross-check's backpressure
	// would park Submit until someone drains outcomes.
	submitErr := make(chan error, 1)
	// bmaclint:allow goroleak (Run submits a fixed count; joined via the submitErr receive below)
	go func() { submitErr <- driver.Run(*txs) }()

	committed, blocks, mismatches := 0, 0, 0
	var swTotal, parTotal bmac.StageBreakdown
	for committed < *txs {
		select {
		case o := <-tb.Outcomes():
			blocks++
			committed += o.TxCount
			if !o.Match {
				mismatches++
			}
			swTotal.Add(o.SW.Breakdown)
			parTotal.Add(o.Par.Breakdown)
			fmt.Printf("block %3d: %3d txs, sw/hw match=%v, sw/par match=%v, ends verified=%d skipped=%d\n",
				o.BlockNum, o.TxCount, o.HWMatch, o.ParMatch,
				o.HW.HWStats.EndsVerified, o.HW.HWStats.EndsSkipped)
		case err := <-submitErr:
			if err != nil {
				return err
			}
			submitErr = nil // submission done; a nil channel never selects
		case <-time.After(30 * time.Second):
			return fmt.Errorf("timed out with %d/%d txs committed", committed, *txs)
		}
	}
	if submitErr != nil {
		if err := <-submitErr; err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d blocks, %d txs in %v (%.0f tps end-to-end)\n",
		blocks, committed, elapsed.Round(time.Millisecond), float64(committed)/elapsed.Seconds())

	fmt.Println("\nper-stage totals, sequential vs parallel pipelined validator:")
	fmt.Printf("  %-12s %12s %12s %9s\n", "stage", "sequential", "pipelined", "speedup")
	for _, s := range []struct {
		name    string
		sw, par time.Duration
	}{
		{"unmarshal", swTotal.Unmarshal, parTotal.Unmarshal},
		{"block_verify", swTotal.BlockVerify, parTotal.BlockVerify},
		{"verify_vscc", swTotal.VerifyVSCC, parTotal.VerifyVSCC},
		{"mvcc", swTotal.MVCC, parTotal.MVCC},
		{"statedb", swTotal.StateDB, parTotal.StateDB},
		{"total", swTotal.Total, parTotal.Total},
	} {
		speedup := "-"
		if s.par > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(s.sw)/float64(s.par))
		}
		fmt.Printf("  %-12s %12v %12v %9s\n", s.name,
			s.sw.Round(time.Microsecond), s.par.Round(time.Microsecond), speedup)
	}

	fmt.Printf("\nparallel peer statedb: %s\n", tb.ParallelBackendSummary())

	if mismatches != 0 {
		return fmt.Errorf("%d blocks mismatched across the three validation paths", mismatches)
	}
	fmt.Println("\nsequential, parallel and BMac validation results matched on every block")
	return nil
}

// runCluster drives the delivery-side stack and prints the report.
func runCluster(cfg *bmac.Config, opts bmac.ClusterOptions, dir string) error {
	fmt.Printf("cluster: %d peers (%d slow, +%v/block), path %s, raft %d node(s), %d txs",
		opts.Peers, opts.SlowPeers, opts.SlowDelay, opts.Mode, opts.RaftNodes, opts.Txs)
	if opts.Rate > 0 {
		fmt.Printf(" at %.0f tx/s (%s arrivals)", opts.Rate, opts.Arrival)
	}
	fmt.Println()

	res, err := bmac.RunCluster(cfg, opts, dir)
	if err != nil {
		return err
	}

	fmt.Printf("\n%d blocks, %d txs (%d valid) in %v: %s tps end-to-end, %d late arrivals\n",
		res.Blocks, res.Txs, res.ValidTxs, res.Elapsed.Round(time.Millisecond),
		bmac.FormatTPS(res.TPS), res.Late)
	fmt.Printf("gossip path  e2e commit latency: %s\n", res.SWLatency)
	if res.HWLatency.Count > 0 {
		fmt.Printf("bmac   path  e2e commit latency: %s\n", res.HWLatency)
	}
	fmt.Printf("hot-path caches: sig %.0f%% hit, parse %.0f%% hit (shared across %d peers)\n",
		res.SigCacheHitRate*100, res.ParseCacheHitRate*100, opts.Peers)

	fmt.Println("\nper-peer delivery (snapshot at fast-path completion):")
	fmt.Printf("  %-8s %-5s %8s %10s %6s %6s %8s %8s %8s %7s %6s\n",
		"peer", "slow", "blocks", "bytes", "lag", "drops", "catchup", "redials", "senderrs", "commits", "height")
	for _, p := range res.Peers {
		d := p.Delivery
		fmt.Printf("  %-8s %-5v %8d %10d %6d %6d %8d %8d %8d %7d %6d\n",
			p.Name, p.Slow, d.Blocks, d.Bytes, d.Lag, d.Dropped, d.CaughtUp, d.Redials, d.SendErrs, p.Blocks, p.Height)
	}
	if res.BMacDelivery.Name != "" {
		d := res.BMacDelivery
		fmt.Printf("  %-8s %-5v %8d %10d %6d %6d %8d %8d %8d %7s %6s\n",
			d.Name, false, d.Blocks, d.Bytes, d.Lag, d.Dropped, d.CaughtUp, d.Redials, d.SendErrs, "-", "-")
	}
	if res.Churn != nil {
		fmt.Printf("\nchurn: %s killed at height %d, recovered from %d (checkpoint + ledger replay), "+
			"%d blocks caught up through the orderer ledger, %d restart(s)\n",
			res.Churn.Peer, res.Churn.KillHeight, res.Churn.RecoveredAt, res.Churn.CaughtUp, res.Churn.Restarts)
		if res.Churn.CorruptedFile != "" {
			fmt.Printf("churn: bit-rot injected into %s — %d segment(s) quarantined, %d block(s) restored through delivery\n",
				res.Churn.CorruptedFile, res.Churn.Quarantined, res.Churn.RestoredBlocks)
		}
	}
	if res.Adversary != nil {
		a := res.Adversary
		fmt.Printf("\nadversary: %.0f%% hostile injection — %s; %d committed envelopes flag-invalidated\n",
			a.Rate*100, a.Injected, a.RejectedInvalid)
	}
	if c := res.Chaos; c != nil {
		switch c.Fault {
		case bmac.FaultPartition:
			fmt.Printf("chaos: partition — %s severed at height %d, healed at %d (%d heal)\n",
				c.Victim, c.StruckAt, c.HealedAt, c.Heals)
		case bmac.FaultCorruption:
			fmt.Printf("chaos: wire corruption — %d frames to %s bit-flipped in flight\n",
				c.CorruptedFrames, c.Victim)
		case bmac.FaultSlowDisk:
			fmt.Printf("chaos: slow disk — %s absorbed %d injected faults over %d writes (%d ledger retries)\n",
				c.Victim, c.DiskFaults, c.DiskWrites, c.LedgerRetries)
		case bmac.FaultLeaderKill:
			fmt.Printf("chaos: leader kill — raft node %d stopped at height %d, orderer rebound to node %d at %d\n",
				c.KilledNode, c.StruckAt, c.NewLeader, c.HealedAt)
		}
	}
	if res.Budget != nil {
		fmt.Printf("\n%s", res.Budget)
		if res.TraceFile != "" {
			fmt.Printf("trace: %d events -> %s\n", res.TraceEvents, res.TraceFile)
		}
	}
	if res.Converged {
		fmt.Println("fast peers converged: identical height, state hash and commit-hash chain")
	} else {
		return fmt.Errorf("fast peers did NOT converge (heights/state hashes differ)")
	}
	return nil
}
