// Command bmacbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	bmacbench                 # run every experiment
//	bmacbench -exp fig11      # run one experiment
//	bmacbench -quick          # shrunk sweeps (smoke test)
//	bmacbench -rounds 5       # more measurement rounds per point
//	bmacbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bmac"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bmacbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "", "experiment id (default: all)")
		rounds = flag.Int("rounds", 3, "measurement rounds per data point")
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range bmac.ExperimentNames() {
			fmt.Printf("%-10s %s\n", name, bmac.ExperimentTitle(name))
		}
		return nil
	}

	names := bmac.ExperimentNames()
	if *exp != "" {
		names = strings.Split(*exp, ",")
	}
	opts := bmac.ExperimentOptions{Rounds: *rounds, Quick: *quick}
	for _, name := range names {
		start := time.Now()
		tbl, err := bmac.RunExperiment(name, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("=== %s ===\n", bmac.ExperimentTitle(name))
		fmt.Println(tbl.String())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
