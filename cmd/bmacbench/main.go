// Command bmacbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	bmacbench                 # run every experiment
//	bmacbench -exp fig11      # run one experiment
//	bmacbench -quick          # shrunk sweeps (smoke test)
//	bmacbench -rounds 5       # more measurement rounds per point
//	bmacbench -list           # list experiment ids
//
// The hotpath suite additionally supports a machine-readable record and a
// regression gate against a committed baseline:
//
//	bmacbench -exp hotpath -json BENCH_hotpath.json   # write the record
//	bmacbench -exp hotpath -quick -gate BENCH_hotpath.json
//	                          # fail (exit 1) if allocs/op regressed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bmac"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bmacbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "", "experiment id (default: all)")
		rounds   = flag.Int("rounds", 3, "measurement rounds per data point")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut  = flag.String("json", "", "hotpath only: write the benchmark record to this path")
		gatePath = flag.String("gate", "", "hotpath only: compare allocs/op against this baseline record, exit 1 on regression")
		gateTol  = flag.Float64("gate-tolerance", 0.25, "relative allocs/op headroom for -gate")
	)
	flag.Parse()

	if *list {
		for _, name := range bmac.ExperimentNames() {
			fmt.Printf("%-10s %s\n", name, bmac.ExperimentTitle(name))
		}
		return nil
	}

	names := bmac.ExperimentNames()
	if *exp != "" {
		names = strings.Split(*exp, ",")
	}
	opts := bmac.ExperimentOptions{Rounds: *rounds, Quick: *quick}
	for _, name := range names {
		start := time.Now()
		var (
			tbl *bmac.Table
			rec *bmac.HotpathRecord
			err error
		)
		if name == "hotpath" && (*jsonOut != "" || *gatePath != "") {
			// Measure once, then reuse the record for -json and -gate.
			tbl, rec, err = bmac.RunHotpathRecord(opts)
		} else {
			tbl, err = bmac.RunExperiment(name, opts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("=== %s ===\n", bmac.ExperimentTitle(name))
		fmt.Println(tbl.String())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		if rec != nil {
			if *jsonOut != "" {
				if err := rec.WriteJSON(*jsonOut); err != nil {
					return fmt.Errorf("write %s: %w", *jsonOut, err)
				}
				fmt.Printf("wrote %s\n", *jsonOut)
			}
			if *gatePath != "" {
				baseline, err := bmac.LoadHotpathRecord(*gatePath)
				if err != nil {
					return err
				}
				if err := rec.Gate(baseline, *gateTol); err != nil {
					return err
				}
				fmt.Printf("gate: allocs/op within %.0f%% of %s\n", *gateTol*100, *gatePath)
			}
		}
	}
	return nil
}
