package block

import (
	"crypto/rand"
	"fmt"

	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
)

// TxSpec describes one transaction to build: which client creates it, which
// chaincode it invokes, its simulated read/write sets and which peers
// endorse it. Used by the workload driver and by tests.
type TxSpec struct {
	Creator   *identity.Identity
	Chaincode string
	Channel   string
	RWSet     RWSet
	Endorsers []*identity.Identity
	// CorruptClientSig, if set, flips a bit in the client signature to
	// force verification failure (fault-injection tests).
	CorruptClientSig bool
	// CorruptEndorsementIdx, if >= 0, corrupts that endorsement's
	// signature.
	CorruptEndorsementIdx int
}

// NewEndorsedEnvelope builds a fully signed transaction envelope following
// every signing contract: endorsers sign the proposal response payload plus
// their certificate, the client signs the complete payload.
func NewEndorsedEnvelope(spec TxSpec) (*Envelope, error) {
	if spec.Creator == nil {
		return nil, fmt.Errorf("block: tx spec has no creator")
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}

	prp := ProposalResponsePayload{
		ProposalHash: fabcrypto.HashSlice(nonce),
		Extension: ChaincodeAction{
			Results:       spec.RWSet,
			ResponseCode:  200,
			ChaincodeName: spec.Chaincode,
		},
	}
	prpBytes := MarshalProposalResponsePayload(&prp)

	endorsements := make([]Endorsement, 0, len(spec.Endorsers))
	for i, endorser := range spec.Endorsers {
		sig, err := endorser.Sign(EndorsementSigningBytes(prpBytes, endorser.Cert))
		if err != nil {
			return nil, fmt.Errorf("endorsement by %s: %w", endorser.Name, err)
		}
		if spec.CorruptEndorsementIdx == i+1 { // 1-based to keep zero value inert
			sig[len(sig)-1] ^= 0xff
		}
		endorsements = append(endorsements, Endorsement{
			Endorser:  endorser.Cert,
			Signature: sig,
		})
	}

	tx := Transaction{
		ChannelHeader: ChannelHeader{
			Type:          HeaderTypeEndorserTransaction,
			TxID:          ComputeTxID(nonce, spec.Creator.Cert),
			ChannelID:     spec.Channel,
			ChaincodeName: spec.Chaincode,
		},
		SignatureHeader: SignatureHeader{
			Creator: spec.Creator.Cert,
			Nonce:   nonce,
		},
		Payload: ChaincodeActionPayload{
			ProposalPayload: nonce, // opaque stand-in for chaincode args
			Action: EndorsedAction{
				ProposalResponseBytes: prpBytes,
				Endorsements:          endorsements,
			},
		},
	}

	payloadBytes := MarshalTransactionPayload(&tx)
	sig, err := spec.Creator.Sign(payloadBytes)
	if err != nil {
		return nil, fmt.Errorf("client signature by %s: %w", spec.Creator.Name, err)
	}
	if spec.CorruptClientSig {
		sig[len(sig)-1] ^= 0xff
	}
	return &Envelope{PayloadBytes: payloadBytes, Signature: sig}, nil
}

// AssembleSpec describes an envelope assembled from endorser responses: the
// client gathered the proposal response payload and endorsements elsewhere
// (see internal/endorser) and now wraps and signs them.
type AssembleSpec struct {
	Creator   *identity.Identity
	Chaincode string
	Channel   string
	Nonce     []byte
	PRPBytes  []byte
	Endorsers []Endorsement
}

// NewEnvelopeFromResponses builds and signs the transaction envelope from
// gathered endorser responses — the client's second step in Figure 1.
func NewEnvelopeFromResponses(spec AssembleSpec) (*Envelope, error) {
	if spec.Creator == nil {
		return nil, fmt.Errorf("block: assemble spec has no creator")
	}
	tx := Transaction{
		ChannelHeader: ChannelHeader{
			Type:          HeaderTypeEndorserTransaction,
			TxID:          ComputeTxID(spec.Nonce, spec.Creator.Cert),
			ChannelID:     spec.Channel,
			ChaincodeName: spec.Chaincode,
		},
		SignatureHeader: SignatureHeader{
			Creator: spec.Creator.Cert,
			Nonce:   spec.Nonce,
		},
		Payload: ChaincodeActionPayload{
			ProposalPayload: spec.Nonce,
			Action: EndorsedAction{
				ProposalResponseBytes: spec.PRPBytes,
				Endorsements:          spec.Endorsers,
			},
		},
	}
	payloadBytes := MarshalTransactionPayload(&tx)
	sig, err := spec.Creator.Sign(payloadBytes)
	if err != nil {
		return nil, fmt.Errorf("client signature by %s: %w", spec.Creator.Name, err)
	}
	return &Envelope{PayloadBytes: payloadBytes, Signature: sig}, nil
}

// NewBlock assembles a block from envelopes, computing the data hash and
// linking to the previous block, then signs it as the orderer.
func NewBlock(number uint64, prevHash []byte, envelopes []Envelope,
	orderer *identity.Identity) (*Block, error) {
	b := &Block{
		Header: Header{
			Number:       number,
			PreviousHash: prevHash,
			DataHash:     DataHash(envelopes),
		},
		Envelopes: envelopes,
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("orderer nonce: %w", err)
	}
	sig, err := orderer.Sign(OrdererSigningBytes(&b.Header, nonce, orderer.Cert))
	if err != nil {
		return nil, fmt.Errorf("orderer signature: %w", err)
	}
	b.Metadata.Signature = MetadataSignature{
		Creator:   orderer.Cert,
		Nonce:     nonce,
		Signature: sig,
	}
	b.Metadata.ValidationFlags = make([]byte, len(envelopes))
	return b, nil
}

// VerifyOrdererSignature checks the block's metadata signature — step 1 of
// the validation pipeline (block verification).
func VerifyOrdererSignature(b *Block) error {
	ms := &b.Metadata.Signature
	pub, err := fabcrypto.PublicKeyFromCert(ms.Creator)
	if err != nil {
		return fmt.Errorf("orderer cert: %w", err)
	}
	msg := OrdererSigningBytes(&b.Header, ms.Nonce, ms.Creator)
	if err := fabcrypto.Verify(pub, msg, ms.Signature); err != nil {
		return fmt.Errorf("block %d orderer signature: %w", b.Header.Number, err)
	}
	return nil
}
