package block

import (
	"bytes"
	"errors"
	"testing"

	"bmac/internal/identity"
	"bmac/internal/wire"
)

// hostileBlockBytes builds a realistic signed block with endorsed
// envelopes and returns its marshaled form — the honest baseline every
// hostile mutation below starts from.
func hostileBlockBytes(t *testing.T) []byte {
	t.Helper()
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	endorser, err := n.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	var envs []Envelope
	for i := 0; i < 3; i++ {
		env, err := NewEndorsedEnvelope(TxSpec{
			Creator:   client,
			Chaincode: "cc",
			Channel:   "ch",
			RWSet: RWSet{
				Reads:  []KVRead{{Key: "k", Version: Version{}}},
				Writes: []KVWrite{{Key: "k", Value: []byte("v")}},
			},
			Endorsers: []*identity.Identity{endorser},
		})
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	b, err := NewBlock(3, []byte("prevprevprevprevprevprevprevprev"), envs, ord)
	if err != nil {
		t.Fatal(err)
	}
	return Marshal(b)
}

// decodeHostile runs Unmarshal on one hostile input, converting any panic
// into a test failure and checking the input is never mutated. A clean
// decode of a mutated input is acceptable (a bit flip inside an opaque
// byte field changes content, not structure) — but whatever decoded must
// re-marshal without panicking.
func decodeHostile(t *testing.T, label string, data []byte) (decodeErr error) {
	t.Helper()
	orig := append([]byte(nil), data...)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Unmarshal panicked: %v", label, r)
		}
		if !bytes.Equal(orig, data) {
			t.Fatalf("%s: Unmarshal mutated its input", label)
		}
	}()
	b, err := Unmarshal(data)
	if err != nil {
		return err
	}
	_ = Marshal(b)
	return nil
}

// TestUnmarshalTruncatedNeverPanics feeds every strict prefix of a valid
// marshaled block to Unmarshal: no truncation may panic, mutate the
// input, or read past the buffer (bounds violations panic under Go), and
// a cut mid-field must surface an error rather than a silently shortened
// block.
func TestUnmarshalTruncatedNeverPanics(t *testing.T) {
	data := hostileBlockBytes(t)
	rejected := 0
	for n := 0; n < len(data); n++ {
		// A fresh buffer sized exactly to the prefix, so any read past the
		// truncation point is out of bounds, not a quiet read into the
		// original tail.
		trunc := make([]byte, n)
		copy(trunc, data[:n])
		if decodeHostile(t, "truncated", trunc) != nil {
			rejected++
		}
	}
	// Only cuts that land exactly on a top-level field boundary can decode
	// (a valid, shorter closed-format message); everything else must be
	// rejected. There are 3 top-level fields, so at most 3 clean cuts plus
	// the empty prefix.
	if accepted := len(data) - rejected; accepted > 4 {
		t.Errorf("%d truncations of %d decoded cleanly, want <= 4 (field boundaries only)", accepted, len(data))
	}
}

// TestUnmarshalBitFlipsNeverPanic flips bits at every byte position: the
// decoder may reject the frame or decode different content (a flip inside
// an opaque byte field), but it must never panic, never mutate the input,
// and never read out of bounds.
func TestUnmarshalBitFlipsNeverPanic(t *testing.T) {
	data := hostileBlockBytes(t)
	for i := 0; i < len(data); i++ {
		for _, mask := range []byte{0x01, 0x40, 0x80} {
			mut := make([]byte, len(data))
			copy(mut, data)
			mut[i] ^= mask
			decodeHostile(t, "bitflip", mut) // bmaclint:allow errdiscard (error or clean decode both acceptable; only panics/mutation fail)
		}
	}
}

// TestUnmarshalOversizedAndMalformed pins the structural rejections: a
// length prefix claiming more bytes than exist, trailing garbage behind a
// valid block, unknown top-level fields, wrong wire types, and duplicate
// fields must all error — and none may panic or over-allocate.
func TestUnmarshalOversizedAndMalformed(t *testing.T) {
	valid := hostileBlockBytes(t)
	cases := []struct {
		name string
		data []byte
	}{
		{"huge length prefix", append(wire.AppendUint(nil, 1, 0), 0xff, 0xff, 0xff, 0xff, 0x7f)},
		{"length past end", func() []byte {
			// field 1, bytes wire type, declared length 200, 3 bytes present.
			b := []byte{0x0a, 0xc8, 0x01}
			return append(b, 1, 2, 3)
		}()},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef)},
		{"unknown field", wire.AppendBytesAlways(append([]byte(nil), valid...), 9, []byte("x"))},
		{"varint top-level field", wire.AppendUint(append([]byte(nil), valid...), 1, 7)},
		{"duplicate header", func() []byte {
			// Re-append the first top-level field (the header) verbatim.
			r := wire.NewReader(valid)
			num, _, ok := r.Next()
			if !ok || num != 1 {
				t.Fatalf("unexpected first field %d", num)
			}
			hdr := r.Bytes()
			return wire.AppendBytesAlways(append([]byte(nil), valid...), 1, hdr)
		}()},
		{"all 0xff", bytes.Repeat([]byte{0xff}, 64)},
		{"all zero", make([]byte, 64)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := decodeHostile(t, tc.name, tc.data); err == nil {
				t.Errorf("%s decoded cleanly, want error", tc.name)
			} else if !errors.Is(err, ErrMalformed) {
				t.Logf("%s: rejected with non-ErrMalformed error: %v", tc.name, err)
			}
		})
	}
}
