package block

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestBlockCodecProperty round-trips randomly structured blocks through
// Marshal/Unmarshal: header fields, arbitrary envelope payloads/signatures,
// metadata and validation flags must all survive byte-identically.
func TestBlockCodecProperty(t *testing.T) {
	type rawEnv struct {
		Payload []byte
		Sig     []byte
	}
	f := func(num uint64, prev, dataHash []byte, envs []rawEnv,
		creator, nonce, sig, flags, commit []byte) bool {
		b := &Block{
			Header: Header{Number: num, PreviousHash: prev, DataHash: dataHash},
			Metadata: Metadata{
				Signature:       MetadataSignature{Creator: creator, Nonce: nonce, Signature: sig},
				ValidationFlags: flags,
				CommitHash:      commit,
			},
		}
		for _, e := range envs {
			b.Envelopes = append(b.Envelopes, Envelope{PayloadBytes: e.Payload, Signature: e.Sig})
		}
		got, err := Unmarshal(Marshal(b))
		if err != nil {
			return false
		}
		if got.Header.Number != num ||
			!bytes.Equal(got.Header.PreviousHash, prev) ||
			!bytes.Equal(got.Header.DataHash, dataHash) {
			return false
		}
		if len(got.Envelopes) != len(b.Envelopes) {
			return false
		}
		for i := range b.Envelopes {
			if !bytes.Equal(got.Envelopes[i].PayloadBytes, b.Envelopes[i].PayloadBytes) ||
				!bytes.Equal(got.Envelopes[i].Signature, b.Envelopes[i].Signature) {
				return false
			}
		}
		return bytes.Equal(got.Metadata.ValidationFlags, flags) &&
			bytes.Equal(got.Metadata.CommitHash, commit) &&
			bytes.Equal(got.Metadata.Signature.Creator, creator) &&
			bytes.Equal(got.Metadata.Signature.Nonce, nonce) &&
			bytes.Equal(got.Metadata.Signature.Signature, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRWSetCodecProperty round-trips random read/write sets.
func TestRWSetCodecProperty(t *testing.T) {
	f := func(keys []string, blockNums []uint64, values [][]byte) bool {
		rw := &RWSet{}
		for i, k := range keys {
			var v Version
			if i < len(blockNums) {
				v.BlockNum = blockNums[i]
				v.TxNum = blockNums[i] / 3
			}
			rw.Reads = append(rw.Reads, KVRead{Key: k, Version: v})
		}
		for i, val := range values {
			rw.Writes = append(rw.Writes, KVWrite{Key: "k" + string(rune('a'+i%26)), Value: val})
		}
		got, err := UnmarshalRWSet(MarshalRWSet(rw))
		if err != nil {
			return false
		}
		if len(got.Reads) != len(rw.Reads) || len(got.Writes) != len(rw.Writes) {
			return false
		}
		for i := range rw.Reads {
			if got.Reads[i] != rw.Reads[i] {
				return false
			}
		}
		for i := range rw.Writes {
			if got.Writes[i].Key != rw.Writes[i].Key ||
				!bytes.Equal(got.Writes[i].Value, rw.Writes[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
