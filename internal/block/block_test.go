package block

import (
	"bytes"
	"errors"
	"testing"

	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
	"bmac/internal/wire"
)

// testNet builds a 2-org network with a client, two endorsers and an orderer.
type testNet struct {
	net       *identity.Network
	client    *identity.Identity
	orderer   *identity.Identity
	endorser1 *identity.Identity
	endorser2 *identity.Identity
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	n := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(org string, role identity.Role) *identity.Identity {
		id, err := n.NewIdentity(org, role)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	return &testNet{
		net:       n,
		client:    mk("Org1", identity.RoleClient),
		orderer:   mk("Org1", identity.RoleOrderer),
		endorser1: mk("Org1", identity.RolePeer),
		endorser2: mk("Org2", identity.RolePeer),
	}
}

func (tn *testNet) envelope(t *testing.T) *Envelope {
	t.Helper()
	env, err := NewEndorsedEnvelope(TxSpec{
		Creator:   tn.client,
		Chaincode: "smallbank",
		Channel:   "ch1",
		RWSet: RWSet{
			Reads:  []KVRead{{Key: "acc1", Version: Version{BlockNum: 3, TxNum: 1}}},
			Writes: []KVWrite{{Key: "acc1", Value: []byte("100")}},
		},
		Endorsers: []*identity.Identity{tn.endorser1, tn.endorser2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvelopeRoundTrip(t *testing.T) {
	tn := newTestNet(t)
	env := tn.envelope(t)
	data := MarshalEnvelope(env)
	got, err := UnmarshalEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PayloadBytes, env.PayloadBytes) || !bytes.Equal(got.Signature, env.Signature) {
		t.Error("envelope round trip mismatch")
	}
}

func TestTransactionPayloadRoundTrip(t *testing.T) {
	tn := newTestNet(t)
	env := tn.envelope(t)
	tx, err := UnmarshalTransactionPayload(env.PayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ChannelHeader.ChaincodeName != "smallbank" {
		t.Errorf("chaincode = %q", tx.ChannelHeader.ChaincodeName)
	}
	if tx.ChannelHeader.ChannelID != "ch1" {
		t.Errorf("channel = %q", tx.ChannelHeader.ChannelID)
	}
	if !bytes.Equal(tx.SignatureHeader.Creator, tn.client.Cert) {
		t.Error("creator cert mismatch")
	}
	if len(tx.Payload.Action.Endorsements) != 2 {
		t.Fatalf("endorsements = %d, want 2", len(tx.Payload.Action.Endorsements))
	}
	prp, err := UnmarshalProposalResponsePayload(tx.Payload.Action.ProposalResponseBytes)
	if err != nil {
		t.Fatal(err)
	}
	rw := prp.Extension.Results
	if len(rw.Reads) != 1 || rw.Reads[0].Key != "acc1" || rw.Reads[0].Version.BlockNum != 3 {
		t.Errorf("read set = %+v", rw.Reads)
	}
	if len(rw.Writes) != 1 || string(rw.Writes[0].Value) != "100" {
		t.Errorf("write set = %+v", rw.Writes)
	}
}

func TestClientSignatureVerifies(t *testing.T) {
	tn := newTestNet(t)
	env := tn.envelope(t)
	pub, err := fabcrypto.PublicKeyFromCert(tn.client.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if err := fabcrypto.Verify(pub, env.PayloadBytes, env.Signature); err != nil {
		t.Errorf("client signature: %v", err)
	}
}

func TestEndorsementSignaturesVerify(t *testing.T) {
	tn := newTestNet(t)
	env := tn.envelope(t)
	tx, err := UnmarshalTransactionPayload(env.PayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tx.Payload.Action.Endorsements {
		pub, err := fabcrypto.PublicKeyFromCert(e.Endorser)
		if err != nil {
			t.Fatal(err)
		}
		msg := EndorsementSigningBytes(tx.Payload.Action.ProposalResponseBytes, e.Endorser)
		if err := fabcrypto.Verify(pub, msg, e.Signature); err != nil {
			t.Errorf("endorsement %d: %v", i, err)
		}
	}
}

func TestCorruptedSignaturesDetected(t *testing.T) {
	tn := newTestNet(t)
	env, err := NewEndorsedEnvelope(TxSpec{
		Creator:          tn.client,
		Chaincode:        "cc",
		Channel:          "ch1",
		Endorsers:        []*identity.Identity{tn.endorser1},
		CorruptClientSig: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := fabcrypto.PublicKeyFromCert(tn.client.Cert)
	if err := fabcrypto.Verify(pub, env.PayloadBytes, env.Signature); err == nil {
		t.Error("corrupt client signature verified")
	}

	env2, err := NewEndorsedEnvelope(TxSpec{
		Creator:               tn.client,
		Chaincode:             "cc",
		Channel:               "ch1",
		Endorsers:             []*identity.Identity{tn.endorser1},
		CorruptEndorsementIdx: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := UnmarshalTransactionPayload(env2.PayloadBytes)
	e := tx.Payload.Action.Endorsements[0]
	epub, _ := fabcrypto.PublicKeyFromCert(e.Endorser)
	msg := EndorsementSigningBytes(tx.Payload.Action.ProposalResponseBytes, e.Endorser)
	if err := fabcrypto.Verify(epub, msg, e.Signature); err == nil {
		t.Error("corrupt endorsement verified")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	tn := newTestNet(t)
	envs := []Envelope{*tn.envelope(t), *tn.envelope(t), *tn.envelope(t)}
	blk, err := NewBlock(7, fabcrypto.HashSlice([]byte("prev")), envs, tn.orderer)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(blk)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Number != 7 {
		t.Errorf("number = %d", got.Header.Number)
	}
	if len(got.Envelopes) != 3 {
		t.Fatalf("envelopes = %d", len(got.Envelopes))
	}
	if !bytes.Equal(got.Header.DataHash, DataHash(envs)) {
		t.Error("data hash mismatch after round trip")
	}
	if !bytes.Equal(got.Metadata.Signature.Signature, blk.Metadata.Signature.Signature) {
		t.Error("metadata signature lost")
	}
	if err := VerifyOrdererSignature(got); err != nil {
		t.Errorf("orderer signature after round trip: %v", err)
	}
}

func TestVerifyOrdererSignatureRejectsTamper(t *testing.T) {
	tn := newTestNet(t)
	blk, err := NewBlock(1, nil, []Envelope{*tn.envelope(t)}, tn.orderer)
	if err != nil {
		t.Fatal(err)
	}
	blk.Header.Number = 2 // tamper after signing
	if err := VerifyOrdererSignature(blk); err == nil {
		t.Error("tampered block verified")
	}
}

func TestMarshaledBlockNestingDepth(t *testing.T) {
	tn := newTestNet(t)
	blk, err := NewBlock(1, nil, []Envelope{*tn.envelope(t)}, tn.orderer)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(blk)
	// The paper reports up to 23 protobuf layers in a Fabric block. Our
	// structure reproduces a deep stack; require at least 8 decode layers
	// (block > data > envelope > payload > txdata > action > cap > ea > prp > cca > rwset).
	if d := wire.NestedDepth(data); d < 8 {
		t.Errorf("marshaled block nesting depth = %d, want >= 8", d)
	}
}

func TestIdentityWeightInBlock(t *testing.T) {
	// Figure 9a premise: >= 73% of a block with multiple endorsements is
	// identity certificates. Verify certificates dominate block size.
	tn := newTestNet(t)
	var envs []Envelope
	for i := 0; i < 20; i++ {
		envs = append(envs, *tn.envelope(t))
	}
	blk, err := NewBlock(1, nil, envs, tn.orderer)
	if err != nil {
		t.Fatal(err)
	}
	total := len(Marshal(blk))
	certBytes := 0
	for range envs {
		// each tx: creator cert + 2 endorser certs
		certBytes += len(tn.client.Cert) + len(tn.endorser1.Cert) + len(tn.endorser2.Cert)
	}
	frac := float64(certBytes) / float64(total)
	if frac < 0.5 {
		t.Errorf("identity fraction = %.2f, want >= 0.5 (paper: >= 0.73)", frac)
	}
}

func TestCommitHashDeterministic(t *testing.T) {
	flags := []byte{0, 0, 1, 0}
	h1 := CommitHash([]byte("prev"), []byte("data"), flags)
	h2 := CommitHash([]byte("prev"), []byte("data"), flags)
	if !bytes.Equal(h1, h2) {
		t.Error("commit hash not deterministic")
	}
	h3 := CommitHash([]byte("prev"), []byte("data"), []byte{0, 0, 0, 0})
	if bytes.Equal(h1, h3) {
		t.Error("commit hash insensitive to flags")
	}
}

func TestValidationCodeStrings(t *testing.T) {
	if Valid.String() != "VALID" || MVCCReadConflict.String() != "MVCC_READ_CONFLICT" {
		t.Error("validation code strings wrong")
	}
	if CountValid([]byte{0, 1, 0, 4}) != 2 {
		t.Error("CountValid wrong")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
	if _, err := UnmarshalTransactionPayload([]byte{0x05}); !errors.Is(err, ErrMalformed) {
		t.Errorf("tx payload err = %v, want ErrMalformed", err)
	}
}

func TestRWSetRoundTripEmpty(t *testing.T) {
	rw := &RWSet{}
	got, err := UnmarshalRWSet(MarshalRWSet(rw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reads) != 0 || len(got.Writes) != 0 {
		t.Error("empty rwset round trip mismatch")
	}
}

func TestRWSetRoundTripLarge(t *testing.T) {
	rw := &RWSet{}
	for i := 0; i < 50; i++ {
		rw.Reads = append(rw.Reads, KVRead{
			Key:     string(rune('a'+i%26)) + "key",
			Version: Version{BlockNum: uint64(i), TxNum: uint64(i * 2)},
		})
		rw.Writes = append(rw.Writes, KVWrite{Key: "w", Value: bytes.Repeat([]byte{byte(i)}, i)})
	}
	got, err := UnmarshalRWSet(MarshalRWSet(rw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reads) != 50 || len(got.Writes) != 50 {
		t.Fatalf("round trip sizes %d/%d", len(got.Reads), len(got.Writes))
	}
	for i := range rw.Reads {
		if got.Reads[i] != rw.Reads[i] {
			t.Fatalf("read %d mismatch", i)
		}
		if got.Writes[i].Key != rw.Writes[i].Key || !bytes.Equal(got.Writes[i].Value, rw.Writes[i].Value) {
			t.Fatalf("write %d mismatch", i)
		}
	}
}

func TestVersionLess(t *testing.T) {
	if !(Version{1, 5}).Less(Version{2, 0}) {
		t.Error("block order wrong")
	}
	if !(Version{1, 1}).Less(Version{1, 2}) {
		t.Error("tx order wrong")
	}
	if (Version{2, 0}).Less(Version{1, 9}) {
		t.Error("reversed order accepted")
	}
}

func BenchmarkBlockUnmarshal(b *testing.B) {
	tn := newTestNetB(b)
	var envs []Envelope
	for i := 0; i < 100; i++ {
		env, err := NewEndorsedEnvelope(TxSpec{
			Creator:   tn.client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet: RWSet{
				Reads:  []KVRead{{Key: "k", Version: Version{1, 1}}},
				Writes: []KVWrite{{Key: "k", Value: []byte("v")}},
			},
			Endorsers: []*identity.Identity{tn.endorser1, tn.endorser2},
		})
		if err != nil {
			b.Fatal(err)
		}
		envs = append(envs, *env)
	}
	blk, err := NewBlock(1, nil, envs, tn.orderer)
	if err != nil {
		b.Fatal(err)
	}
	data := Marshal(blk)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := Unmarshal(data)
		if err != nil {
			b.Fatal(err)
		}
		for j := range got.Envelopes {
			if _, err := UnmarshalTransactionPayload(got.Envelopes[j].PayloadBytes); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func newTestNetB(b *testing.B) *testNet {
	b.Helper()
	n := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := n.AddOrg(org); err != nil {
			b.Fatal(err)
		}
	}
	mk := func(org string, role identity.Role) *identity.Identity {
		id, err := n.NewIdentity(org, role)
		if err != nil {
			b.Fatal(err)
		}
		return id
	}
	return &testNet{
		net:       n,
		client:    mk("Org1", identity.RoleClient),
		orderer:   mk("Org1", identity.RoleOrderer),
		endorser1: mk("Org1", identity.RolePeer),
		endorser2: mk("Org2", identity.RolePeer),
	}
}
