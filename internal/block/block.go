// Package block defines the Fabric-like block and transaction structures and
// their wire encodings.
//
// A marshaled block is a deep stack of nested protobuf messages, mirroring
// Hyperledger Fabric v1.4:
//
//	Block
//	 ├─ BlockHeader{number, previous_hash, data_hash}
//	 ├─ BlockData[ Envelope... ]
//	 │    Envelope{payload, signature}
//	 │     └─ Payload{header{channel_header, signature_header}, data}
//	 │         └─ Transaction{actions}
//	 │             └─ TransactionAction{header, payload}
//	 │                 └─ ChaincodeActionPayload{proposal_payload, action}
//	 │                     └─ ChaincodeEndorsedAction{prp, endorsements}
//	 │                         ├─ ProposalResponsePayload{hash, extension}
//	 │                         │   └─ ChaincodeAction{results, response, cc}
//	 │                         │       └─ TxReadWriteSet{reads, writes}
//	 │                         └─ Endorsement{endorser_cert, signature}...
//	 └─ BlockMetadata{signatures, validation_flags, commit_hash}
//
// Retrieving any inner value requires decoding every outer layer first —
// the unmarshaling bottleneck the paper measures at ~10% of validation time.
//
// # Aliasing contract (zero-copy decode)
//
// Unmarshal, UnmarshalTransactionPayload, UnmarshalProposalResponsePayload
// and the other decoders return structures whose byte-slice fields ALIAS the
// input buffer instead of copying it: decoding a block costs one pass and no
// per-field allocations. Two obligations follow for callers:
//
//   - The input buffer must not be mutated or recycled (e.g. returned to a
//     pool) while the decoded structures — or anything derived from them,
//     such as a cached ParsedTx — are live. Network receive paths allocate a
//     fresh buffer per block, so this holds naturally on the commit path.
//   - Callers that need detached structures (to reuse their read buffer)
//     use UnmarshalCopy, which pays one up-front copy of the input.
//
// Marshaling is the mirror image: every message size is precomputed exactly
// (Size), so Marshal performs a single allocation, and AppendBlock lets
// owners of a buffer's lifetime (ledger append, wire frames) marshal into a
// pooled buffer for zero steady-state allocations.
package block

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"

	"bmac/internal/fabcrypto"
	"bmac/internal/wire"
)

// ErrMalformed reports a block or transaction that fails to decode.
var ErrMalformed = errors.New("block: malformed message")

// ValidationCode classifies the outcome of validating one transaction,
// following Fabric's TxValidationCode values (subset).
type ValidationCode uint8

// Validation codes. Valid must be zero so a fresh flags array means
// "not yet invalidated".
const (
	Valid ValidationCode = iota
	BadSignature
	BadCreator
	EndorsementPolicyFailure
	MVCCReadConflict
	BadPayload
	InvalidOther
)

// String implements fmt.Stringer.
func (c ValidationCode) String() string {
	switch c {
	case Valid:
		return "VALID"
	case BadSignature:
		return "BAD_SIGNATURE"
	case BadCreator:
		return "BAD_CREATOR"
	case EndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case MVCCReadConflict:
		return "MVCC_READ_CONFLICT"
	case BadPayload:
		return "BAD_PAYLOAD"
	case InvalidOther:
		return "INVALID_OTHER"
	default:
		return fmt.Sprintf("CODE(%d)", uint8(c))
	}
}

// Version identifies the block/transaction that last wrote a key, the unit
// of the mvcc check.
type Version struct {
	BlockNum uint64
	TxNum    uint64
}

// Less orders versions lexicographically.
func (v Version) Less(o Version) bool {
	if v.BlockNum != o.BlockNum {
		return v.BlockNum < o.BlockNum
	}
	return v.TxNum < o.TxNum
}

// KVRead is one entry of a transaction read set: the key read during
// endorsement and the version observed.
type KVRead struct {
	Key     string
	Version Version
}

// KVWrite is one entry of a transaction write set.
type KVWrite struct {
	Key   string
	Value []byte
}

// RWSet is a transaction's read-write set computed at endorsement time.
type RWSet struct {
	Reads  []KVRead
	Writes []KVWrite
}

// Endorsement is one peer's endorsement: its identity certificate and its
// signature over (ProposalResponsePayload bytes || endorser certificate),
// matching Fabric's endorsement signing contract.
type Endorsement struct {
	Endorser  []byte // DER X.509 certificate
	Signature []byte // DER ECDSA signature
}

// ChaincodeAction carries the results of chaincode simulation.
type ChaincodeAction struct {
	Results       RWSet
	ResponseCode  uint64
	ResponseData  []byte
	ChaincodeName string
}

// ProposalResponsePayload wraps the chaincode action with the proposal hash.
type ProposalResponsePayload struct {
	ProposalHash []byte
	Extension    ChaincodeAction
}

// EndorsedAction couples the (marshaled) proposal response payload with the
// endorsements over it.
type EndorsedAction struct {
	// ProposalResponseBytes is the exact marshaled ProposalResponsePayload
	// the endorsers signed; kept verbatim so signatures stay verifiable.
	ProposalResponseBytes []byte
	Endorsements          []Endorsement
}

// ChaincodeActionPayload is the body of a transaction action.
type ChaincodeActionPayload struct {
	ProposalPayload []byte // chaincode input args (opaque here)
	Action          EndorsedAction
}

// SignatureHeader identifies a message creator.
type SignatureHeader struct {
	Creator []byte // DER X.509 certificate
	Nonce   []byte
}

// ChannelHeader carries transaction routing metadata.
type ChannelHeader struct {
	Type          uint64
	TxID          string
	ChannelID     string
	ChaincodeName string
	Epoch         uint64
}

// Header types for ChannelHeader.Type.
const (
	HeaderTypeEndorserTransaction = 3
	HeaderTypeConfig              = 1
)

// Transaction is the ordered list of actions (Fabric always uses one).
type Transaction struct {
	ChannelHeader   ChannelHeader
	SignatureHeader SignatureHeader
	Payload         ChaincodeActionPayload
}

// Envelope is a signed transaction: the marshaled payload plus the client
// creator's signature over it.
type Envelope struct {
	PayloadBytes []byte // marshaled Payload (header + transaction)
	Signature    []byte // creator's DER signature over PayloadBytes
}

// MetadataSignature is the orderer's signature over the block header.
type MetadataSignature struct {
	Creator   []byte // orderer certificate
	Nonce     []byte
	Signature []byte // over marshaled BlockHeader || nonce || creator
}

// Metadata carries block-level trailer data.
type Metadata struct {
	Signature       MetadataSignature
	ValidationFlags []byte // one ValidationCode per transaction (set by validator)
	CommitHash      []byte // set by validator at commit time
}

// Header is the block header; its hash chains blocks together.
type Header struct {
	Number       uint64
	PreviousHash []byte
	DataHash     []byte
}

// Block is a complete block.
type Block struct {
	Header    Header
	Envelopes []Envelope
	Metadata  Metadata
}

// --- field numbers (stable wire contract) ---

const (
	fBlockHeader = 1
	fBlockData   = 2
	fBlockMeta   = 3

	fHdrNumber   = 1
	fHdrPrevHash = 2
	fHdrDataHash = 3

	fEnvelopePayload = 1
	fEnvelopeSig     = 2

	fPayloadChannelHdr = 1
	fPayloadSigHdr     = 2
	fPayloadData       = 3

	fChHdrType    = 1
	fChHdrTxID    = 2
	fChHdrChannel = 3
	fChHdrCC      = 4
	fChHdrEpoch   = 5

	fSigHdrCreator = 1
	fSigHdrNonce   = 2

	fTxActionHeader  = 1
	fTxActionPayload = 2

	fCAPProposal = 1
	fCAPAction   = 2

	fEAProposalResponse = 1
	fEAEndorsement      = 2

	fPRPHash      = 1
	fPRPExtension = 2

	fCCAResults  = 1
	fCCARespCode = 2
	fCCARespData = 3
	fCCAName     = 4

	fRWSetRead  = 1
	fRWSetWrite = 2

	fReadKey      = 1
	fReadBlockNum = 2
	fReadTxNum    = 3

	fWriteKey   = 1
	fWriteValue = 2

	fEndorserCert = 1
	fEndorserSig  = 2

	fMetaSig        = 1
	fMetaFlags      = 2
	fMetaCommit     = 3
	fMetaSigCreator = 1
	fMetaSigNonce   = 2
	fMetaSigValue   = 3
)

// --- marshal ---

// MarshalRWSet encodes a read-write set.
func MarshalRWSet(rw *RWSet) []byte {
	var b []byte
	for _, r := range rw.Reads {
		var rb []byte
		rb = wire.AppendString(rb, fReadKey, r.Key)
		rb = wire.AppendUint(rb, fReadBlockNum, r.Version.BlockNum)
		rb = wire.AppendUint(rb, fReadTxNum, r.Version.TxNum)
		b = wire.AppendBytesAlways(b, fRWSetRead, rb)
	}
	for _, w := range rw.Writes {
		var wb []byte
		wb = wire.AppendString(wb, fWriteKey, w.Key)
		wb = wire.AppendBytes(wb, fWriteValue, w.Value)
		b = wire.AppendBytesAlways(b, fRWSetWrite, wb)
	}
	return b
}

// UnmarshalRWSet decodes a read-write set.
func UnmarshalRWSet(data []byte) (*RWSet, error) {
	rw := &RWSet{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fRWSetRead:
			var kr KVRead
			if err := unmarshalKVRead(r.Bytes(), &kr); err != nil {
				return nil, err
			}
			rw.Reads = append(rw.Reads, kr)
		case fRWSetWrite:
			var kw KVWrite
			if err := unmarshalKVWrite(r.Bytes(), &kw); err != nil {
				return nil, err
			}
			rw.Writes = append(rw.Writes, kw)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: rwset: %v", ErrMalformed, err)
	}
	return rw, nil
}

func unmarshalKVRead(data []byte, kr *KVRead) error {
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fReadKey:
			kr.Key = r.String()
		case fReadBlockNum:
			kr.Version.BlockNum = r.Uint()
		case fReadTxNum:
			kr.Version.TxNum = r.Uint()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: kvread: %v", ErrMalformed, err)
	}
	return nil
}

func unmarshalKVWrite(data []byte, kw *KVWrite) error {
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fWriteKey:
			kw.Key = r.String()
		case fWriteValue:
			kw.Value = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: kvwrite: %v", ErrMalformed, err)
	}
	return nil
}

// MarshalChaincodeAction encodes a chaincode action.
func MarshalChaincodeAction(a *ChaincodeAction) []byte {
	var b []byte
	b = wire.AppendBytes(b, fCCAResults, MarshalRWSet(&a.Results))
	b = wire.AppendUint(b, fCCARespCode, a.ResponseCode)
	b = wire.AppendBytes(b, fCCARespData, a.ResponseData)
	b = wire.AppendString(b, fCCAName, a.ChaincodeName)
	return b
}

// UnmarshalChaincodeAction decodes a chaincode action.
func UnmarshalChaincodeAction(data []byte) (*ChaincodeAction, error) {
	a := &ChaincodeAction{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fCCAResults:
			rw, err := UnmarshalRWSet(r.Bytes())
			if err != nil {
				return nil, err
			}
			a.Results = *rw
		case fCCARespCode:
			a.ResponseCode = r.Uint()
		case fCCARespData:
			a.ResponseData = r.Bytes()
		case fCCAName:
			a.ChaincodeName = r.String()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: chaincode action: %v", ErrMalformed, err)
	}
	return a, nil
}

// MarshalProposalResponsePayload encodes a proposal response payload. The
// returned bytes are what endorsers sign.
func MarshalProposalResponsePayload(p *ProposalResponsePayload) []byte {
	var b []byte
	b = wire.AppendBytes(b, fPRPHash, p.ProposalHash)
	b = wire.AppendBytes(b, fPRPExtension, MarshalChaincodeAction(&p.Extension))
	return b
}

// UnmarshalProposalResponsePayload decodes a proposal response payload.
func UnmarshalProposalResponsePayload(data []byte) (*ProposalResponsePayload, error) {
	p := &ProposalResponsePayload{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fPRPHash:
			p.ProposalHash = r.Bytes()
		case fPRPExtension:
			ext, err := UnmarshalChaincodeAction(r.Bytes())
			if err != nil {
				return nil, err
			}
			p.Extension = *ext
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: proposal response: %v", ErrMalformed, err)
	}
	return p, nil
}

func marshalEndorsement(e *Endorsement) []byte {
	var b []byte
	b = wire.AppendBytes(b, fEndorserCert, e.Endorser)
	b = wire.AppendBytes(b, fEndorserSig, e.Signature)
	return b
}

func unmarshalEndorsement(data []byte) (Endorsement, error) {
	var e Endorsement
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fEndorserCert:
			e.Endorser = r.Bytes()
		case fEndorserSig:
			e.Signature = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return e, fmt.Errorf("%w: endorsement: %v", ErrMalformed, err)
	}
	return e, nil
}

func marshalEndorsedAction(a *EndorsedAction) []byte {
	var b []byte
	b = wire.AppendBytes(b, fEAProposalResponse, a.ProposalResponseBytes)
	for i := range a.Endorsements {
		b = wire.AppendBytesAlways(b, fEAEndorsement, marshalEndorsement(&a.Endorsements[i]))
	}
	return b
}

func unmarshalEndorsedAction(data []byte) (*EndorsedAction, error) {
	a := &EndorsedAction{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fEAProposalResponse:
			a.ProposalResponseBytes = r.Bytes()
		case fEAEndorsement:
			e, err := unmarshalEndorsement(r.Bytes())
			if err != nil {
				return nil, err
			}
			a.Endorsements = append(a.Endorsements, e)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: endorsed action: %v", ErrMalformed, err)
	}
	return a, nil
}

func marshalChaincodeActionPayload(p *ChaincodeActionPayload) []byte {
	var b []byte
	b = wire.AppendBytes(b, fCAPProposal, p.ProposalPayload)
	b = wire.AppendBytes(b, fCAPAction, marshalEndorsedAction(&p.Action))
	return b
}

func unmarshalChaincodeActionPayload(data []byte) (*ChaincodeActionPayload, error) {
	p := &ChaincodeActionPayload{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fCAPProposal:
			p.ProposalPayload = r.Bytes()
		case fCAPAction:
			a, err := unmarshalEndorsedAction(r.Bytes())
			if err != nil {
				return nil, err
			}
			p.Action = *a
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: chaincode action payload: %v", ErrMalformed, err)
	}
	return p, nil
}

// MarshalChannelHeader encodes a channel header.
func MarshalChannelHeader(h *ChannelHeader) []byte {
	var b []byte
	b = wire.AppendUint(b, fChHdrType, h.Type)
	b = wire.AppendString(b, fChHdrTxID, h.TxID)
	b = wire.AppendString(b, fChHdrChannel, h.ChannelID)
	b = wire.AppendString(b, fChHdrCC, h.ChaincodeName)
	b = wire.AppendUint(b, fChHdrEpoch, h.Epoch)
	return b
}

// UnmarshalChannelHeader decodes a channel header.
func UnmarshalChannelHeader(data []byte) (*ChannelHeader, error) {
	h := &ChannelHeader{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fChHdrType:
			h.Type = r.Uint()
		case fChHdrTxID:
			h.TxID = r.String()
		case fChHdrChannel:
			h.ChannelID = r.String()
		case fChHdrCC:
			h.ChaincodeName = r.String()
		case fChHdrEpoch:
			h.Epoch = r.Uint()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: channel header: %v", ErrMalformed, err)
	}
	return h, nil
}

// MarshalSignatureHeader encodes a signature header.
func MarshalSignatureHeader(h *SignatureHeader) []byte {
	var b []byte
	b = wire.AppendBytes(b, fSigHdrCreator, h.Creator)
	b = wire.AppendBytes(b, fSigHdrNonce, h.Nonce)
	return b
}

// UnmarshalSignatureHeader decodes a signature header.
func UnmarshalSignatureHeader(data []byte) (*SignatureHeader, error) {
	h := &SignatureHeader{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fSigHdrCreator:
			h.Creator = r.Bytes()
		case fSigHdrNonce:
			h.Nonce = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: signature header: %v", ErrMalformed, err)
	}
	return h, nil
}

// MarshalTransactionPayload produces the Envelope payload bytes: the
// three-part Payload{channel header, signature header, transaction data}
// where transaction data itself nests actions.
func MarshalTransactionPayload(tx *Transaction) []byte {
	// TransactionAction: header (sig header again, per Fabric) + payload.
	var action []byte
	action = wire.AppendBytes(action, fTxActionHeader, MarshalSignatureHeader(&tx.SignatureHeader))
	action = wire.AppendBytes(action, fTxActionPayload, marshalChaincodeActionPayload(&tx.Payload))

	// Transaction: repeated actions (we always emit one, like Fabric).
	txData := wire.AppendBytesAlways(nil, 1, action)

	var b []byte
	b = wire.AppendBytes(b, fPayloadChannelHdr, MarshalChannelHeader(&tx.ChannelHeader))
	b = wire.AppendBytes(b, fPayloadSigHdr, MarshalSignatureHeader(&tx.SignatureHeader))
	b = wire.AppendBytes(b, fPayloadData, txData)
	return b
}

// UnmarshalTransactionPayload decodes Envelope payload bytes into a
// Transaction, walking all nesting layers.
func UnmarshalTransactionPayload(data []byte) (*Transaction, error) {
	tx := &Transaction{}
	r := wire.NewReader(data)
	var txData []byte
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fPayloadChannelHdr:
			ch, err := UnmarshalChannelHeader(r.Bytes())
			if err != nil {
				return nil, err
			}
			tx.ChannelHeader = *ch
		case fPayloadSigHdr:
			sh, err := UnmarshalSignatureHeader(r.Bytes())
			if err != nil {
				return nil, err
			}
			tx.SignatureHeader = *sh
		case fPayloadData:
			txData = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrMalformed, err)
	}
	if txData == nil {
		return nil, fmt.Errorf("%w: payload missing transaction data", ErrMalformed)
	}

	// Transaction -> first action.
	tr := wire.NewReader(txData)
	var actionBytes []byte
	for {
		num, wt, ok := tr.Next()
		if !ok {
			break
		}
		if num == 1 && wt == wire.TypeBytes {
			actionBytes = tr.Bytes()
			break
		}
		tr.Skip(wt)
	}
	if err := tr.Err(); err != nil || actionBytes == nil {
		return nil, fmt.Errorf("%w: transaction has no action", ErrMalformed)
	}

	ar := wire.NewReader(actionBytes)
	for {
		num, wt, ok := ar.Next()
		if !ok {
			break
		}
		switch num {
		case fTxActionHeader:
			ar.Skip(wt) // duplicate of payload signature header
		case fTxActionPayload:
			cap2, err := unmarshalChaincodeActionPayload(ar.Bytes())
			if err != nil {
				return nil, err
			}
			tx.Payload = *cap2
		default:
			ar.Skip(wt)
		}
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("%w: transaction action: %v", ErrMalformed, err)
	}
	return tx, nil
}

// MarshalEnvelope encodes a signed envelope in a single exact-size
// allocation.
func MarshalEnvelope(e *Envelope) []byte {
	return appendEnvelope(make([]byte, 0, sizeEnvelope(e)), e)
}

func sizeEnvelope(e *Envelope) int {
	n := 0
	if len(e.PayloadBytes) > 0 {
		n += wire.SizeBytesField(fEnvelopePayload, len(e.PayloadBytes))
	}
	if len(e.Signature) > 0 {
		n += wire.SizeBytesField(fEnvelopeSig, len(e.Signature))
	}
	return n
}

func appendEnvelope(dst []byte, e *Envelope) []byte {
	dst = wire.AppendBytes(dst, fEnvelopePayload, e.PayloadBytes)
	dst = wire.AppendBytes(dst, fEnvelopeSig, e.Signature)
	return dst
}

// UnmarshalEnvelope decodes a signed envelope.
func UnmarshalEnvelope(data []byte) (*Envelope, error) {
	e := &Envelope{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fEnvelopePayload:
			e.PayloadBytes = r.Bytes()
		case fEnvelopeSig:
			e.Signature = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: envelope: %v", ErrMalformed, err)
	}
	return e, nil
}

// MarshalHeader encodes a block header; its digest is the block hash.
func MarshalHeader(h *Header) []byte {
	return appendHeader(make([]byte, 0, sizeHeader(h)), h)
}

func sizeHeader(h *Header) int {
	n := wire.SizeUintField(fHdrNumber, h.Number)
	if len(h.PreviousHash) > 0 {
		n += wire.SizeBytesField(fHdrPrevHash, len(h.PreviousHash))
	}
	if len(h.DataHash) > 0 {
		n += wire.SizeBytesField(fHdrDataHash, len(h.DataHash))
	}
	return n
}

func appendHeader(dst []byte, h *Header) []byte {
	dst = wire.AppendUint(dst, fHdrNumber, h.Number)
	dst = wire.AppendBytes(dst, fHdrPrevHash, h.PreviousHash)
	dst = wire.AppendBytes(dst, fHdrDataHash, h.DataHash)
	return dst
}

// UnmarshalHeader decodes a block header.
func UnmarshalHeader(data []byte) (*Header, error) {
	h := &Header{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fHdrNumber:
			h.Number = r.Uint()
		case fHdrPrevHash:
			h.PreviousHash = r.Bytes()
		case fHdrDataHash:
			h.DataHash = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: block header: %v", ErrMalformed, err)
	}
	return h, nil
}

func sizeMetadataSig(ms *MetadataSignature) int {
	n := 0
	if len(ms.Creator) > 0 {
		n += wire.SizeBytesField(fMetaSigCreator, len(ms.Creator))
	}
	if len(ms.Nonce) > 0 {
		n += wire.SizeBytesField(fMetaSigNonce, len(ms.Nonce))
	}
	if len(ms.Signature) > 0 {
		n += wire.SizeBytesField(fMetaSigValue, len(ms.Signature))
	}
	return n
}

func sizeMetadata(m *Metadata) int {
	n := 0
	if s := sizeMetadataSig(&m.Signature); s > 0 {
		n += wire.SizeBytesField(fMetaSig, s)
	}
	if len(m.ValidationFlags) > 0 {
		n += wire.SizeBytesField(fMetaFlags, len(m.ValidationFlags))
	}
	if len(m.CommitHash) > 0 {
		n += wire.SizeBytesField(fMetaCommit, len(m.CommitHash))
	}
	return n
}

func appendMetadata(dst []byte, m *Metadata) []byte {
	if s := sizeMetadataSig(&m.Signature); s > 0 {
		dst = wire.AppendTag(dst, fMetaSig, wire.TypeBytes)
		dst = wire.AppendVarint(dst, uint64(s))
		dst = wire.AppendBytes(dst, fMetaSigCreator, m.Signature.Creator)
		dst = wire.AppendBytes(dst, fMetaSigNonce, m.Signature.Nonce)
		dst = wire.AppendBytes(dst, fMetaSigValue, m.Signature.Signature)
	}
	dst = wire.AppendBytes(dst, fMetaFlags, m.ValidationFlags)
	dst = wire.AppendBytes(dst, fMetaCommit, m.CommitHash)
	return dst
}

func unmarshalMetadata(data []byte) (*Metadata, error) {
	m := &Metadata{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fMetaSig:
			sr := wire.NewReader(r.Bytes())
			for {
				sn, swt, sok := sr.Next()
				if !sok {
					break
				}
				switch sn {
				case fMetaSigCreator:
					m.Signature.Creator = sr.Bytes()
				case fMetaSigNonce:
					m.Signature.Nonce = sr.Bytes()
				case fMetaSigValue:
					m.Signature.Signature = sr.Bytes()
				default:
					sr.Skip(swt)
				}
			}
			if err := sr.Err(); err != nil {
				return nil, fmt.Errorf("%w: metadata signature: %v", ErrMalformed, err)
			}
		case fMetaFlags:
			m.ValidationFlags = r.Bytes()
		case fMetaCommit:
			m.CommitHash = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: metadata: %v", ErrMalformed, err)
	}
	return m, nil
}

func sizeBlockData(envelopes []Envelope) int {
	n := 0
	for i := range envelopes {
		n += wire.SizeBytesField(1, sizeEnvelope(&envelopes[i]))
	}
	return n
}

// Size reports the exact marshaled size of a block, letting callers
// allocate (or pool) the output buffer once.
func Size(b *Block) int {
	n := 0
	if h := sizeHeader(&b.Header); h > 0 {
		n += wire.SizeBytesField(fBlockHeader, h)
	}
	if d := sizeBlockData(b.Envelopes); d > 0 {
		n += wire.SizeBytesField(fBlockData, d)
	}
	if m := sizeMetadata(&b.Metadata); m > 0 {
		n += wire.SizeBytesField(fBlockMeta, m)
	}
	return n
}

// AppendBlock appends the marshaled block to dst and returns the extended
// slice. Sub-message sizes are precomputed, so marshaling into a buffer of
// capacity Size(b) performs no allocation at all — the pooled fast path for
// callers that own the buffer's lifetime (ledger append, wire frames).
//
// bmaclint:noalloc
func AppendBlock(dst []byte, b *Block) []byte {
	if h := sizeHeader(&b.Header); h > 0 {
		dst = wire.AppendTag(dst, fBlockHeader, wire.TypeBytes)
		dst = wire.AppendVarint(dst, uint64(h))
		dst = appendHeader(dst, &b.Header)
	}
	if d := sizeBlockData(b.Envelopes); d > 0 {
		dst = wire.AppendTag(dst, fBlockData, wire.TypeBytes)
		dst = wire.AppendVarint(dst, uint64(d))
		for i := range b.Envelopes {
			e := &b.Envelopes[i]
			dst = wire.AppendTag(dst, 1, wire.TypeBytes)
			dst = wire.AppendVarint(dst, uint64(sizeEnvelope(e)))
			dst = appendEnvelope(dst, e)
		}
	}
	if m := sizeMetadata(&b.Metadata); m > 0 {
		dst = wire.AppendTag(dst, fBlockMeta, wire.TypeBytes)
		dst = wire.AppendVarint(dst, uint64(m))
		dst = appendMetadata(dst, &b.Metadata)
	}
	return dst
}

// Marshal encodes a complete block in one exact-size allocation.
func Marshal(b *Block) []byte {
	return AppendBlock(make([]byte, 0, Size(b)), b)
}

// Unmarshal decodes a complete block. The result aliases data (see the
// package comment); use UnmarshalCopy when the buffer will be reused.
//
// The top-level block message is a closed format: exactly the header, data
// and metadata fields, each at most once. Anything else — in particular
// trailing bytes that happen to look like additional fields — is rejected
// as malformed rather than silently skipped, so a block record followed by
// garbage can never decode cleanly.
//
// bmaclint:noalloc
func Unmarshal(data []byte) (*Block, error) {
	b := &Block{} // bmaclint:allow allocbound (the decoded block itself: one allocation per block)
	r := wire.NewReader(data)
	var seenHeader, seenData, seenMeta bool
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if wt != wire.TypeBytes {
			return nil, fmt.Errorf("%w: block field %d has wire type %d", ErrMalformed, num, wt)
		}
		switch num {
		case fBlockHeader:
			if seenHeader {
				return nil, fmt.Errorf("%w: duplicate block header field", ErrMalformed)
			}
			seenHeader = true
			h, err := UnmarshalHeader(r.Bytes())
			if err != nil {
				return nil, err
			}
			b.Header = *h
		case fBlockData:
			if seenData {
				return nil, fmt.Errorf("%w: duplicate block data field", ErrMalformed)
			}
			seenData = true
			dr := wire.NewReader(r.Bytes())
			for {
				dn, dwt, dok := dr.Next()
				if !dok {
					break
				}
				if dn != 1 {
					dr.Skip(dwt)
					continue
				}
				env, err := UnmarshalEnvelope(dr.Bytes())
				if err != nil {
					return nil, err
				}
				b.Envelopes = append(b.Envelopes, *env)
			}
			if err := dr.Err(); err != nil {
				return nil, fmt.Errorf("%w: block data: %v", ErrMalformed, err)
			}
		case fBlockMeta:
			if seenMeta {
				return nil, fmt.Errorf("%w: duplicate block metadata field", ErrMalformed)
			}
			seenMeta = true
			m, err := unmarshalMetadata(r.Bytes())
			if err != nil {
				return nil, err
			}
			b.Metadata = *m
		default:
			return nil, fmt.Errorf("%w: unknown top-level block field %d", ErrMalformed, num)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: block: %v", ErrMalformed, err)
	}
	return b, nil
}

// UnmarshalCopy decodes a complete block into structures that do NOT alias
// data: the input is copied once up front, so the caller may mutate or
// recycle its buffer immediately. This is the copy-on-write escape hatch of
// the zero-copy contract; the hot commit path uses Unmarshal.
func UnmarshalCopy(data []byte) (*Block, error) {
	return Unmarshal(append([]byte(nil), data...))
}

// --- hashing and signing contracts ---

// DataHash computes the block data hash: SHA-256 over the concatenation of
// the marshaled envelopes, as Fabric hashes BlockData. The marshal staging
// buffer is pooled — it never escapes this function.
func DataHash(envelopes []Envelope) []byte {
	n := 0
	for i := range envelopes {
		n += sizeEnvelope(&envelopes[i])
	}
	buf := wire.GetBuf(n)
	for i := range envelopes {
		buf = appendEnvelope(buf, &envelopes[i])
	}
	d := fabcrypto.HashSlice(buf)
	wire.PutBuf(buf)
	return d
}

// HeaderHash computes the block hash (digest of the marshaled header).
func HeaderHash(h *Header) []byte {
	return fabcrypto.HashSlice(MarshalHeader(h))
}

// OrdererSigningBytes returns the bytes the orderer signs for a block:
// marshaled header || nonce || creator cert.
func OrdererSigningBytes(h *Header, nonce, creator []byte) []byte {
	hdr := MarshalHeader(h)
	out := make([]byte, 0, len(hdr)+len(nonce)+len(creator))
	out = append(out, hdr...)
	out = append(out, nonce...)
	out = append(out, creator...)
	return out
}

// EndorsementSigningBytes returns the bytes an endorser signs: the marshaled
// proposal response payload concatenated with the endorser's certificate,
// matching Fabric's contract.
func EndorsementSigningBytes(proposalResponseBytes, endorserCert []byte) []byte {
	out := make([]byte, 0, len(proposalResponseBytes)+len(endorserCert))
	out = append(out, proposalResponseBytes...)
	out = append(out, endorserCert...)
	return out
}

// CommitHash chains the commit hash: SHA-256(prev commit hash || data hash
// || validation flags). Both the software validator and the BMac pipeline
// must produce identical values; the integration tests compare them.
func CommitHash(prev []byte, dataHash []byte, flags []byte) []byte {
	var h fabcrypto.StreamHasher
	h.Write(prev)
	h.Write(dataHash)
	h.Write(flags)
	return h.Sum()
}

// ComputeTxID derives a transaction ID from the creator nonce and
// certificate, like Fabric: hex(SHA-256(nonce || creator)).
func ComputeTxID(nonce, creator []byte) string {
	var h fabcrypto.StreamHasher
	h.Write(nonce)
	h.Write(creator)
	return hex.EncodeToString(h.Sum())
}

// EnvelopeTxID extracts the transaction ID from an envelope by decoding
// only the channel header — enough for delivery-side bookkeeping (e.g.
// matching committed transactions back to their submission times) without
// walking the full payload nesting.
func EnvelopeTxID(env *Envelope) (string, error) {
	r := wire.NewReader(env.PayloadBytes)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if num != fPayloadChannelHdr {
			r.Skip(wt)
			continue
		}
		ch, err := UnmarshalChannelHeader(r.Bytes())
		if err != nil {
			return "", err
		}
		return ch.TxID, nil
	}
	if err := r.Err(); err != nil {
		return "", fmt.Errorf("%w: payload: %v", ErrMalformed, err)
	}
	return "", fmt.Errorf("%w: payload missing channel header", ErrMalformed)
}

// FlagsEqual reports whether two validation flag arrays match exactly.
func FlagsEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// CountValid returns the number of transactions flagged Valid.
func CountValid(flags []byte) int {
	n := 0
	for _, f := range flags {
		if ValidationCode(f) == Valid {
			n++
		}
	}
	return n
}
