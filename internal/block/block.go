// Package block defines the Fabric-like block and transaction structures and
// their wire encodings.
//
// A marshaled block is a deep stack of nested protobuf messages, mirroring
// Hyperledger Fabric v1.4:
//
//	Block
//	 ├─ BlockHeader{number, previous_hash, data_hash}
//	 ├─ BlockData[ Envelope... ]
//	 │    Envelope{payload, signature}
//	 │     └─ Payload{header{channel_header, signature_header}, data}
//	 │         └─ Transaction{actions}
//	 │             └─ TransactionAction{header, payload}
//	 │                 └─ ChaincodeActionPayload{proposal_payload, action}
//	 │                     └─ ChaincodeEndorsedAction{prp, endorsements}
//	 │                         ├─ ProposalResponsePayload{hash, extension}
//	 │                         │   └─ ChaincodeAction{results, response, cc}
//	 │                         │       └─ TxReadWriteSet{reads, writes}
//	 │                         └─ Endorsement{endorser_cert, signature}...
//	 └─ BlockMetadata{signatures, validation_flags, commit_hash}
//
// Retrieving any inner value requires decoding every outer layer first —
// the unmarshaling bottleneck the paper measures at ~10% of validation time.
package block

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"

	"bmac/internal/fabcrypto"
	"bmac/internal/wire"
)

// ErrMalformed reports a block or transaction that fails to decode.
var ErrMalformed = errors.New("block: malformed message")

// ValidationCode classifies the outcome of validating one transaction,
// following Fabric's TxValidationCode values (subset).
type ValidationCode uint8

// Validation codes. Valid must be zero so a fresh flags array means
// "not yet invalidated".
const (
	Valid ValidationCode = iota
	BadSignature
	BadCreator
	EndorsementPolicyFailure
	MVCCReadConflict
	BadPayload
	InvalidOther
)

// String implements fmt.Stringer.
func (c ValidationCode) String() string {
	switch c {
	case Valid:
		return "VALID"
	case BadSignature:
		return "BAD_SIGNATURE"
	case BadCreator:
		return "BAD_CREATOR"
	case EndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case MVCCReadConflict:
		return "MVCC_READ_CONFLICT"
	case BadPayload:
		return "BAD_PAYLOAD"
	case InvalidOther:
		return "INVALID_OTHER"
	default:
		return fmt.Sprintf("CODE(%d)", uint8(c))
	}
}

// Version identifies the block/transaction that last wrote a key, the unit
// of the mvcc check.
type Version struct {
	BlockNum uint64
	TxNum    uint64
}

// Less orders versions lexicographically.
func (v Version) Less(o Version) bool {
	if v.BlockNum != o.BlockNum {
		return v.BlockNum < o.BlockNum
	}
	return v.TxNum < o.TxNum
}

// KVRead is one entry of a transaction read set: the key read during
// endorsement and the version observed.
type KVRead struct {
	Key     string
	Version Version
}

// KVWrite is one entry of a transaction write set.
type KVWrite struct {
	Key   string
	Value []byte
}

// RWSet is a transaction's read-write set computed at endorsement time.
type RWSet struct {
	Reads  []KVRead
	Writes []KVWrite
}

// Endorsement is one peer's endorsement: its identity certificate and its
// signature over (ProposalResponsePayload bytes || endorser certificate),
// matching Fabric's endorsement signing contract.
type Endorsement struct {
	Endorser  []byte // DER X.509 certificate
	Signature []byte // DER ECDSA signature
}

// ChaincodeAction carries the results of chaincode simulation.
type ChaincodeAction struct {
	Results       RWSet
	ResponseCode  uint64
	ResponseData  []byte
	ChaincodeName string
}

// ProposalResponsePayload wraps the chaincode action with the proposal hash.
type ProposalResponsePayload struct {
	ProposalHash []byte
	Extension    ChaincodeAction
}

// EndorsedAction couples the (marshaled) proposal response payload with the
// endorsements over it.
type EndorsedAction struct {
	// ProposalResponseBytes is the exact marshaled ProposalResponsePayload
	// the endorsers signed; kept verbatim so signatures stay verifiable.
	ProposalResponseBytes []byte
	Endorsements          []Endorsement
}

// ChaincodeActionPayload is the body of a transaction action.
type ChaincodeActionPayload struct {
	ProposalPayload []byte // chaincode input args (opaque here)
	Action          EndorsedAction
}

// SignatureHeader identifies a message creator.
type SignatureHeader struct {
	Creator []byte // DER X.509 certificate
	Nonce   []byte
}

// ChannelHeader carries transaction routing metadata.
type ChannelHeader struct {
	Type          uint64
	TxID          string
	ChannelID     string
	ChaincodeName string
	Epoch         uint64
}

// Header types for ChannelHeader.Type.
const (
	HeaderTypeEndorserTransaction = 3
	HeaderTypeConfig              = 1
)

// Transaction is the ordered list of actions (Fabric always uses one).
type Transaction struct {
	ChannelHeader   ChannelHeader
	SignatureHeader SignatureHeader
	Payload         ChaincodeActionPayload
}

// Envelope is a signed transaction: the marshaled payload plus the client
// creator's signature over it.
type Envelope struct {
	PayloadBytes []byte // marshaled Payload (header + transaction)
	Signature    []byte // creator's DER signature over PayloadBytes
}

// MetadataSignature is the orderer's signature over the block header.
type MetadataSignature struct {
	Creator   []byte // orderer certificate
	Nonce     []byte
	Signature []byte // over marshaled BlockHeader || nonce || creator
}

// Metadata carries block-level trailer data.
type Metadata struct {
	Signature       MetadataSignature
	ValidationFlags []byte // one ValidationCode per transaction (set by validator)
	CommitHash      []byte // set by validator at commit time
}

// Header is the block header; its hash chains blocks together.
type Header struct {
	Number       uint64
	PreviousHash []byte
	DataHash     []byte
}

// Block is a complete block.
type Block struct {
	Header    Header
	Envelopes []Envelope
	Metadata  Metadata
}

// --- field numbers (stable wire contract) ---

const (
	fBlockHeader = 1
	fBlockData   = 2
	fBlockMeta   = 3

	fHdrNumber   = 1
	fHdrPrevHash = 2
	fHdrDataHash = 3

	fEnvelopePayload = 1
	fEnvelopeSig     = 2

	fPayloadChannelHdr = 1
	fPayloadSigHdr     = 2
	fPayloadData       = 3

	fChHdrType    = 1
	fChHdrTxID    = 2
	fChHdrChannel = 3
	fChHdrCC      = 4
	fChHdrEpoch   = 5

	fSigHdrCreator = 1
	fSigHdrNonce   = 2

	fTxActionHeader  = 1
	fTxActionPayload = 2

	fCAPProposal = 1
	fCAPAction   = 2

	fEAProposalResponse = 1
	fEAEndorsement      = 2

	fPRPHash      = 1
	fPRPExtension = 2

	fCCAResults  = 1
	fCCARespCode = 2
	fCCARespData = 3
	fCCAName     = 4

	fRWSetRead  = 1
	fRWSetWrite = 2

	fReadKey      = 1
	fReadBlockNum = 2
	fReadTxNum    = 3

	fWriteKey   = 1
	fWriteValue = 2

	fEndorserCert = 1
	fEndorserSig  = 2

	fMetaSig        = 1
	fMetaFlags      = 2
	fMetaCommit     = 3
	fMetaSigCreator = 1
	fMetaSigNonce   = 2
	fMetaSigValue   = 3
)

// --- marshal ---

// MarshalRWSet encodes a read-write set.
func MarshalRWSet(rw *RWSet) []byte {
	var b []byte
	for _, r := range rw.Reads {
		var rb []byte
		rb = wire.AppendString(rb, fReadKey, r.Key)
		rb = wire.AppendUint(rb, fReadBlockNum, r.Version.BlockNum)
		rb = wire.AppendUint(rb, fReadTxNum, r.Version.TxNum)
		b = wire.AppendBytesAlways(b, fRWSetRead, rb)
	}
	for _, w := range rw.Writes {
		var wb []byte
		wb = wire.AppendString(wb, fWriteKey, w.Key)
		wb = wire.AppendBytes(wb, fWriteValue, w.Value)
		b = wire.AppendBytesAlways(b, fRWSetWrite, wb)
	}
	return b
}

// UnmarshalRWSet decodes a read-write set.
func UnmarshalRWSet(data []byte) (*RWSet, error) {
	rw := &RWSet{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fRWSetRead:
			var kr KVRead
			if err := unmarshalKVRead(r.Bytes(), &kr); err != nil {
				return nil, err
			}
			rw.Reads = append(rw.Reads, kr)
		case fRWSetWrite:
			var kw KVWrite
			if err := unmarshalKVWrite(r.Bytes(), &kw); err != nil {
				return nil, err
			}
			rw.Writes = append(rw.Writes, kw)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: rwset: %v", ErrMalformed, err)
	}
	return rw, nil
}

func unmarshalKVRead(data []byte, kr *KVRead) error {
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fReadKey:
			kr.Key = r.String()
		case fReadBlockNum:
			kr.Version.BlockNum = r.Uint()
		case fReadTxNum:
			kr.Version.TxNum = r.Uint()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: kvread: %v", ErrMalformed, err)
	}
	return nil
}

func unmarshalKVWrite(data []byte, kw *KVWrite) error {
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fWriteKey:
			kw.Key = r.String()
		case fWriteValue:
			kw.Value = append([]byte(nil), r.Bytes()...)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: kvwrite: %v", ErrMalformed, err)
	}
	return nil
}

// MarshalChaincodeAction encodes a chaincode action.
func MarshalChaincodeAction(a *ChaincodeAction) []byte {
	var b []byte
	b = wire.AppendBytes(b, fCCAResults, MarshalRWSet(&a.Results))
	b = wire.AppendUint(b, fCCARespCode, a.ResponseCode)
	b = wire.AppendBytes(b, fCCARespData, a.ResponseData)
	b = wire.AppendString(b, fCCAName, a.ChaincodeName)
	return b
}

// UnmarshalChaincodeAction decodes a chaincode action.
func UnmarshalChaincodeAction(data []byte) (*ChaincodeAction, error) {
	a := &ChaincodeAction{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fCCAResults:
			rw, err := UnmarshalRWSet(r.Bytes())
			if err != nil {
				return nil, err
			}
			a.Results = *rw
		case fCCARespCode:
			a.ResponseCode = r.Uint()
		case fCCARespData:
			a.ResponseData = append([]byte(nil), r.Bytes()...)
		case fCCAName:
			a.ChaincodeName = r.String()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: chaincode action: %v", ErrMalformed, err)
	}
	return a, nil
}

// MarshalProposalResponsePayload encodes a proposal response payload. The
// returned bytes are what endorsers sign.
func MarshalProposalResponsePayload(p *ProposalResponsePayload) []byte {
	var b []byte
	b = wire.AppendBytes(b, fPRPHash, p.ProposalHash)
	b = wire.AppendBytes(b, fPRPExtension, MarshalChaincodeAction(&p.Extension))
	return b
}

// UnmarshalProposalResponsePayload decodes a proposal response payload.
func UnmarshalProposalResponsePayload(data []byte) (*ProposalResponsePayload, error) {
	p := &ProposalResponsePayload{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fPRPHash:
			p.ProposalHash = append([]byte(nil), r.Bytes()...)
		case fPRPExtension:
			ext, err := UnmarshalChaincodeAction(r.Bytes())
			if err != nil {
				return nil, err
			}
			p.Extension = *ext
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: proposal response: %v", ErrMalformed, err)
	}
	return p, nil
}

func marshalEndorsement(e *Endorsement) []byte {
	var b []byte
	b = wire.AppendBytes(b, fEndorserCert, e.Endorser)
	b = wire.AppendBytes(b, fEndorserSig, e.Signature)
	return b
}

func unmarshalEndorsement(data []byte) (Endorsement, error) {
	var e Endorsement
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fEndorserCert:
			e.Endorser = append([]byte(nil), r.Bytes()...)
		case fEndorserSig:
			e.Signature = append([]byte(nil), r.Bytes()...)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return e, fmt.Errorf("%w: endorsement: %v", ErrMalformed, err)
	}
	return e, nil
}

func marshalEndorsedAction(a *EndorsedAction) []byte {
	var b []byte
	b = wire.AppendBytes(b, fEAProposalResponse, a.ProposalResponseBytes)
	for i := range a.Endorsements {
		b = wire.AppendBytesAlways(b, fEAEndorsement, marshalEndorsement(&a.Endorsements[i]))
	}
	return b
}

func unmarshalEndorsedAction(data []byte) (*EndorsedAction, error) {
	a := &EndorsedAction{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fEAProposalResponse:
			a.ProposalResponseBytes = append([]byte(nil), r.Bytes()...)
		case fEAEndorsement:
			e, err := unmarshalEndorsement(r.Bytes())
			if err != nil {
				return nil, err
			}
			a.Endorsements = append(a.Endorsements, e)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: endorsed action: %v", ErrMalformed, err)
	}
	return a, nil
}

func marshalChaincodeActionPayload(p *ChaincodeActionPayload) []byte {
	var b []byte
	b = wire.AppendBytes(b, fCAPProposal, p.ProposalPayload)
	b = wire.AppendBytes(b, fCAPAction, marshalEndorsedAction(&p.Action))
	return b
}

func unmarshalChaincodeActionPayload(data []byte) (*ChaincodeActionPayload, error) {
	p := &ChaincodeActionPayload{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fCAPProposal:
			p.ProposalPayload = append([]byte(nil), r.Bytes()...)
		case fCAPAction:
			a, err := unmarshalEndorsedAction(r.Bytes())
			if err != nil {
				return nil, err
			}
			p.Action = *a
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: chaincode action payload: %v", ErrMalformed, err)
	}
	return p, nil
}

// MarshalChannelHeader encodes a channel header.
func MarshalChannelHeader(h *ChannelHeader) []byte {
	var b []byte
	b = wire.AppendUint(b, fChHdrType, h.Type)
	b = wire.AppendString(b, fChHdrTxID, h.TxID)
	b = wire.AppendString(b, fChHdrChannel, h.ChannelID)
	b = wire.AppendString(b, fChHdrCC, h.ChaincodeName)
	b = wire.AppendUint(b, fChHdrEpoch, h.Epoch)
	return b
}

// UnmarshalChannelHeader decodes a channel header.
func UnmarshalChannelHeader(data []byte) (*ChannelHeader, error) {
	h := &ChannelHeader{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fChHdrType:
			h.Type = r.Uint()
		case fChHdrTxID:
			h.TxID = r.String()
		case fChHdrChannel:
			h.ChannelID = r.String()
		case fChHdrCC:
			h.ChaincodeName = r.String()
		case fChHdrEpoch:
			h.Epoch = r.Uint()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: channel header: %v", ErrMalformed, err)
	}
	return h, nil
}

// MarshalSignatureHeader encodes a signature header.
func MarshalSignatureHeader(h *SignatureHeader) []byte {
	var b []byte
	b = wire.AppendBytes(b, fSigHdrCreator, h.Creator)
	b = wire.AppendBytes(b, fSigHdrNonce, h.Nonce)
	return b
}

// UnmarshalSignatureHeader decodes a signature header.
func UnmarshalSignatureHeader(data []byte) (*SignatureHeader, error) {
	h := &SignatureHeader{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fSigHdrCreator:
			h.Creator = append([]byte(nil), r.Bytes()...)
		case fSigHdrNonce:
			h.Nonce = append([]byte(nil), r.Bytes()...)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: signature header: %v", ErrMalformed, err)
	}
	return h, nil
}

// MarshalTransactionPayload produces the Envelope payload bytes: the
// three-part Payload{channel header, signature header, transaction data}
// where transaction data itself nests actions.
func MarshalTransactionPayload(tx *Transaction) []byte {
	// TransactionAction: header (sig header again, per Fabric) + payload.
	var action []byte
	action = wire.AppendBytes(action, fTxActionHeader, MarshalSignatureHeader(&tx.SignatureHeader))
	action = wire.AppendBytes(action, fTxActionPayload, marshalChaincodeActionPayload(&tx.Payload))

	// Transaction: repeated actions (we always emit one, like Fabric).
	txData := wire.AppendBytesAlways(nil, 1, action)

	var b []byte
	b = wire.AppendBytes(b, fPayloadChannelHdr, MarshalChannelHeader(&tx.ChannelHeader))
	b = wire.AppendBytes(b, fPayloadSigHdr, MarshalSignatureHeader(&tx.SignatureHeader))
	b = wire.AppendBytes(b, fPayloadData, txData)
	return b
}

// UnmarshalTransactionPayload decodes Envelope payload bytes into a
// Transaction, walking all nesting layers.
func UnmarshalTransactionPayload(data []byte) (*Transaction, error) {
	tx := &Transaction{}
	r := wire.NewReader(data)
	var txData []byte
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fPayloadChannelHdr:
			ch, err := UnmarshalChannelHeader(r.Bytes())
			if err != nil {
				return nil, err
			}
			tx.ChannelHeader = *ch
		case fPayloadSigHdr:
			sh, err := UnmarshalSignatureHeader(r.Bytes())
			if err != nil {
				return nil, err
			}
			tx.SignatureHeader = *sh
		case fPayloadData:
			txData = r.Bytes()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrMalformed, err)
	}
	if txData == nil {
		return nil, fmt.Errorf("%w: payload missing transaction data", ErrMalformed)
	}

	// Transaction -> first action.
	tr := wire.NewReader(txData)
	var actionBytes []byte
	for {
		num, wt, ok := tr.Next()
		if !ok {
			break
		}
		if num == 1 && wt == wire.TypeBytes {
			actionBytes = tr.Bytes()
			break
		}
		tr.Skip(wt)
	}
	if err := tr.Err(); err != nil || actionBytes == nil {
		return nil, fmt.Errorf("%w: transaction has no action", ErrMalformed)
	}

	ar := wire.NewReader(actionBytes)
	for {
		num, wt, ok := ar.Next()
		if !ok {
			break
		}
		switch num {
		case fTxActionHeader:
			ar.Skip(wt) // duplicate of payload signature header
		case fTxActionPayload:
			cap2, err := unmarshalChaincodeActionPayload(ar.Bytes())
			if err != nil {
				return nil, err
			}
			tx.Payload = *cap2
		default:
			ar.Skip(wt)
		}
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("%w: transaction action: %v", ErrMalformed, err)
	}
	return tx, nil
}

// MarshalEnvelope encodes a signed envelope.
func MarshalEnvelope(e *Envelope) []byte {
	var b []byte
	b = wire.AppendBytes(b, fEnvelopePayload, e.PayloadBytes)
	b = wire.AppendBytes(b, fEnvelopeSig, e.Signature)
	return b
}

// UnmarshalEnvelope decodes a signed envelope.
func UnmarshalEnvelope(data []byte) (*Envelope, error) {
	e := &Envelope{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fEnvelopePayload:
			e.PayloadBytes = append([]byte(nil), r.Bytes()...)
		case fEnvelopeSig:
			e.Signature = append([]byte(nil), r.Bytes()...)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: envelope: %v", ErrMalformed, err)
	}
	return e, nil
}

// MarshalHeader encodes a block header; its digest is the block hash.
func MarshalHeader(h *Header) []byte {
	var b []byte
	b = wire.AppendUint(b, fHdrNumber, h.Number)
	b = wire.AppendBytes(b, fHdrPrevHash, h.PreviousHash)
	b = wire.AppendBytes(b, fHdrDataHash, h.DataHash)
	return b
}

// UnmarshalHeader decodes a block header.
func UnmarshalHeader(data []byte) (*Header, error) {
	h := &Header{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fHdrNumber:
			h.Number = r.Uint()
		case fHdrPrevHash:
			h.PreviousHash = append([]byte(nil), r.Bytes()...)
		case fHdrDataHash:
			h.DataHash = append([]byte(nil), r.Bytes()...)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: block header: %v", ErrMalformed, err)
	}
	return h, nil
}

func marshalMetadata(m *Metadata) []byte {
	var sig []byte
	sig = wire.AppendBytes(sig, fMetaSigCreator, m.Signature.Creator)
	sig = wire.AppendBytes(sig, fMetaSigNonce, m.Signature.Nonce)
	sig = wire.AppendBytes(sig, fMetaSigValue, m.Signature.Signature)
	var b []byte
	b = wire.AppendBytes(b, fMetaSig, sig)
	b = wire.AppendBytes(b, fMetaFlags, m.ValidationFlags)
	b = wire.AppendBytes(b, fMetaCommit, m.CommitHash)
	return b
}

func unmarshalMetadata(data []byte) (*Metadata, error) {
	m := &Metadata{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fMetaSig:
			sr := wire.NewReader(r.Bytes())
			for {
				sn, swt, sok := sr.Next()
				if !sok {
					break
				}
				switch sn {
				case fMetaSigCreator:
					m.Signature.Creator = append([]byte(nil), sr.Bytes()...)
				case fMetaSigNonce:
					m.Signature.Nonce = append([]byte(nil), sr.Bytes()...)
				case fMetaSigValue:
					m.Signature.Signature = append([]byte(nil), sr.Bytes()...)
				default:
					sr.Skip(swt)
				}
			}
			if err := sr.Err(); err != nil {
				return nil, fmt.Errorf("%w: metadata signature: %v", ErrMalformed, err)
			}
		case fMetaFlags:
			m.ValidationFlags = append([]byte(nil), r.Bytes()...)
		case fMetaCommit:
			m.CommitHash = append([]byte(nil), r.Bytes()...)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: metadata: %v", ErrMalformed, err)
	}
	return m, nil
}

// Marshal encodes a complete block.
func Marshal(b *Block) []byte {
	var out []byte
	out = wire.AppendBytes(out, fBlockHeader, MarshalHeader(&b.Header))
	var data []byte
	for i := range b.Envelopes {
		data = wire.AppendBytesAlways(data, 1, MarshalEnvelope(&b.Envelopes[i]))
	}
	out = wire.AppendBytes(out, fBlockData, data)
	out = wire.AppendBytes(out, fBlockMeta, marshalMetadata(&b.Metadata))
	return out
}

// Unmarshal decodes a complete block.
func Unmarshal(data []byte) (*Block, error) {
	b := &Block{}
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case fBlockHeader:
			h, err := UnmarshalHeader(r.Bytes())
			if err != nil {
				return nil, err
			}
			b.Header = *h
		case fBlockData:
			dr := wire.NewReader(r.Bytes())
			for {
				dn, dwt, dok := dr.Next()
				if !dok {
					break
				}
				if dn != 1 {
					dr.Skip(dwt)
					continue
				}
				env, err := UnmarshalEnvelope(dr.Bytes())
				if err != nil {
					return nil, err
				}
				b.Envelopes = append(b.Envelopes, *env)
			}
			if err := dr.Err(); err != nil {
				return nil, fmt.Errorf("%w: block data: %v", ErrMalformed, err)
			}
		case fBlockMeta:
			m, err := unmarshalMetadata(r.Bytes())
			if err != nil {
				return nil, err
			}
			b.Metadata = *m
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: block: %v", ErrMalformed, err)
	}
	return b, nil
}

// --- hashing and signing contracts ---

// DataHash computes the block data hash: SHA-256 over the concatenation of
// the marshaled envelopes, as Fabric hashes BlockData.
func DataHash(envelopes []Envelope) []byte {
	var h fabcrypto.StreamHasher
	for i := range envelopes {
		h.Write(MarshalEnvelope(&envelopes[i]))
	}
	return h.Sum()
}

// HeaderHash computes the block hash (digest of the marshaled header).
func HeaderHash(h *Header) []byte {
	return fabcrypto.HashSlice(MarshalHeader(h))
}

// OrdererSigningBytes returns the bytes the orderer signs for a block:
// marshaled header || nonce || creator cert.
func OrdererSigningBytes(h *Header, nonce, creator []byte) []byte {
	hdr := MarshalHeader(h)
	out := make([]byte, 0, len(hdr)+len(nonce)+len(creator))
	out = append(out, hdr...)
	out = append(out, nonce...)
	out = append(out, creator...)
	return out
}

// EndorsementSigningBytes returns the bytes an endorser signs: the marshaled
// proposal response payload concatenated with the endorser's certificate,
// matching Fabric's contract.
func EndorsementSigningBytes(proposalResponseBytes, endorserCert []byte) []byte {
	out := make([]byte, 0, len(proposalResponseBytes)+len(endorserCert))
	out = append(out, proposalResponseBytes...)
	out = append(out, endorserCert...)
	return out
}

// CommitHash chains the commit hash: SHA-256(prev commit hash || data hash
// || validation flags). Both the software validator and the BMac pipeline
// must produce identical values; the integration tests compare them.
func CommitHash(prev []byte, dataHash []byte, flags []byte) []byte {
	var h fabcrypto.StreamHasher
	h.Write(prev)
	h.Write(dataHash)
	h.Write(flags)
	return h.Sum()
}

// ComputeTxID derives a transaction ID from the creator nonce and
// certificate, like Fabric: hex(SHA-256(nonce || creator)).
func ComputeTxID(nonce, creator []byte) string {
	var h fabcrypto.StreamHasher
	h.Write(nonce)
	h.Write(creator)
	return hex.EncodeToString(h.Sum())
}

// EnvelopeTxID extracts the transaction ID from an envelope by decoding
// only the channel header — enough for delivery-side bookkeeping (e.g.
// matching committed transactions back to their submission times) without
// walking the full payload nesting.
func EnvelopeTxID(env *Envelope) (string, error) {
	r := wire.NewReader(env.PayloadBytes)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if num != fPayloadChannelHdr {
			r.Skip(wt)
			continue
		}
		ch, err := UnmarshalChannelHeader(r.Bytes())
		if err != nil {
			return "", err
		}
		return ch.TxID, nil
	}
	if err := r.Err(); err != nil {
		return "", fmt.Errorf("%w: payload: %v", ErrMalformed, err)
	}
	return "", fmt.Errorf("%w: payload missing channel header", ErrMalformed)
}

// FlagsEqual reports whether two validation flag arrays match exactly.
func FlagsEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// CountValid returns the number of transactions flagged Valid.
func CountValid(flags []byte) int {
	n := 0
	for _, f := range flags {
		if ValidationCode(f) == Valid {
			n++
		}
	}
	return n
}
