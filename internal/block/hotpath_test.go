package block

import (
	"bytes"
	"testing"

	"bmac/internal/identity"
	"bmac/internal/wire"
)

// testBlock builds a small signed block via the regular builder path.
func testBlock(t testing.TB, txs int) *Block {
	t.Helper()
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, err := net.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := net.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	orderer, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	envs := make([]Envelope, 0, txs)
	for i := 0; i < txs; i++ {
		env, err := NewEndorsedEnvelope(TxSpec{
			Creator:   client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet: RWSet{
				Reads:  []KVRead{{Key: "a"}},
				Writes: []KVWrite{{Key: "b", Value: []byte("v")}},
			},
			Endorsers: []*identity.Identity{peer},
		})
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	b, err := NewBlock(7, []byte("prevhash"), envs, orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// referenceMarshal is the pre-optimization append-grow encoder, kept here
// so the exact-size Marshal is pinned byte-for-byte against it.
func referenceMarshal(b *Block) []byte {
	marshalMeta := func(m *Metadata) []byte {
		var sig []byte
		sig = wire.AppendBytes(sig, 1, m.Signature.Creator)
		sig = wire.AppendBytes(sig, 2, m.Signature.Nonce)
		sig = wire.AppendBytes(sig, 3, m.Signature.Signature)
		var out []byte
		out = wire.AppendBytes(out, 1, sig)
		out = wire.AppendBytes(out, 2, m.ValidationFlags)
		out = wire.AppendBytes(out, 3, m.CommitHash)
		return out
	}
	var hdr []byte
	hdr = wire.AppendUint(hdr, 1, b.Header.Number)
	hdr = wire.AppendBytes(hdr, 2, b.Header.PreviousHash)
	hdr = wire.AppendBytes(hdr, 3, b.Header.DataHash)
	var out []byte
	out = wire.AppendBytes(out, 1, hdr)
	var data []byte
	for i := range b.Envelopes {
		var env []byte
		env = wire.AppendBytes(env, 1, b.Envelopes[i].PayloadBytes)
		env = wire.AppendBytes(env, 2, b.Envelopes[i].Signature)
		data = wire.AppendBytesAlways(data, 1, env)
	}
	out = wire.AppendBytes(out, 2, data)
	out = wire.AppendBytes(out, 3, marshalMeta(&b.Metadata))
	return out
}

// TestMarshalExactSize pins the size-precomputed encoder against the
// append-grow reference: identical bytes, and Size reports the exact
// length (so Marshal's one allocation never grows).
func TestMarshalExactSize(t *testing.T) {
	blocks := []*Block{
		{}, // empty everything: all fields elided
		{Header: Header{Number: 300}},
		{Envelopes: []Envelope{{}}}, // empty envelope still emits a data element
		testBlock(t, 3),
	}
	b4 := testBlock(t, 2)
	b4.Metadata.ValidationFlags = []byte{0, 1}
	b4.Metadata.CommitHash = []byte("commit")
	blocks = append(blocks, b4)

	for i, b := range blocks {
		want := referenceMarshal(b)
		got := Marshal(b)
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: exact-size marshal differs from reference (%d vs %d bytes)", i, len(got), len(want))
		}
		if Size(b) != len(want) {
			t.Fatalf("block %d: Size=%d, marshaled %d bytes", i, Size(b), len(want))
		}
		if len(got) > 0 {
			rt, err := Unmarshal(got)
			if err != nil {
				t.Fatalf("block %d: round trip: %v", i, err)
			}
			if !bytes.Equal(Marshal(rt), want) {
				t.Fatalf("block %d: re-marshal differs", i)
			}
		}
	}
}

// TestUnmarshalRejectsTrailingGarbage pins the strict top-level decode: a
// valid block record followed by junk must fail instead of decoding
// silently (the junk used to be skipped as unknown fields).
func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	raw := Marshal(testBlock(t, 1))
	if _, err := Unmarshal(raw); err != nil {
		t.Fatalf("clean block: %v", err)
	}
	junks := [][]byte{
		{0x0a, 0x00},                   // duplicate (empty) header field
		{0x12, 0x00},                   // duplicate (empty) data field
		{0x1a, 0x00},                   // duplicate (empty) metadata field
		{0x20, 0x01},                   // unknown field 4, varint — used to be skipped
		{0x22, 0x03, 0x01, 0x02, 0x03}, // unknown field 4, bytes
		{0x08, 0x01},                   // header field with varint wire type
		[]byte("garbage"),              // arbitrary junk
		{0x00},                         // field number 0
		{0x0a},                         // truncated tag+length
	}
	for i, junk := range junks {
		if _, err := Unmarshal(append(append([]byte(nil), raw...), junk...)); err == nil {
			t.Fatalf("junk %d (% x): trailing garbage decoded silently", i, junk)
		}
	}
}

// TestUnmarshalAliasesAndCopyDetaches pins the zero-copy contract both
// ways: Unmarshal aliases its input (mutating the buffer shows through),
// UnmarshalCopy does not.
func TestUnmarshalAliasesAndCopyDetaches(t *testing.T) {
	b := testBlock(t, 1)
	raw := Marshal(b)

	aliased, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	detached, err := UnmarshalCopy(raw)
	if err != nil {
		t.Fatal(err)
	}
	payloadBefore := append([]byte(nil), aliased.Envelopes[0].PayloadBytes...)
	for i := range raw {
		raw[i] ^= 0xff
	}
	if bytes.Equal(aliased.Envelopes[0].PayloadBytes, payloadBefore) {
		t.Fatal("Unmarshal result did not alias the input buffer")
	}
	if !bytes.Equal(detached.Envelopes[0].PayloadBytes, payloadBefore) {
		t.Fatal("UnmarshalCopy result aliases the input buffer")
	}
}

// TestAppendBlockPooled checks the pooled marshal path: consecutive
// marshals through wire.GetBuf/PutBuf produce correct bytes even though
// the backing buffer is recycled, and the data written before PutBuf is
// never clobbered mid-use.
func TestAppendBlockPooled(t *testing.T) {
	b1 := testBlock(t, 2)
	b2 := testBlock(t, 1)
	want1, want2 := Marshal(b1), Marshal(b2)
	for i := 0; i < 4; i++ {
		buf := wire.GetBuf(Size(b1))
		out := AppendBlock(buf, b1)
		if !bytes.Equal(out, want1) {
			t.Fatalf("iter %d: pooled marshal of b1 differs", i)
		}
		copied := append([]byte(nil), out...)
		wire.PutBuf(out)
		buf2 := wire.GetBuf(Size(b2))
		out2 := AppendBlock(buf2, b2)
		if !bytes.Equal(out2, want2) {
			t.Fatalf("iter %d: pooled marshal of b2 differs", i)
		}
		if !bytes.Equal(copied, want1) {
			t.Fatalf("iter %d: copy taken before PutBuf was clobbered", i)
		}
		wire.PutBuf(out2)
	}
}

func BenchmarkMarshalExactSize(b *testing.B) {
	blk := testBlock(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Marshal(blk)
	}
}

func BenchmarkAppendBlockPooled(b *testing.B) {
	blk := testBlock(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := AppendBlock(wire.GetBuf(Size(blk)), blk)
		wire.PutBuf(buf)
	}
}

func BenchmarkUnmarshalZeroCopy(b *testing.B) {
	raw := Marshal(testBlock(b, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
