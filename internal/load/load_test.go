package load

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
)

// fakeSubmitter hands out sequential tx ids.
type fakeSubmitter struct {
	mu    sync.Mutex
	n     int
	errAt int // fail the errAt-th submission (1-based; 0 = never)
}

func (f *fakeSubmitter) SubmitTx() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	if f.errAt != 0 && f.n == f.errAt {
		return "", errors.New("submit failed")
	}
	return fmt.Sprintf("tx%d", f.n), nil
}

func TestRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Count: 10, Arrival: "bursty"}); err == nil {
		t.Error("unknown arrival accepted")
	}
	if _, err := New(Options{Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
}

func TestUnpacedRunSubmitsAll(t *testing.T) {
	g, err := New(Options{Count: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	subs := []Submitter{&fakeSubmitter{}, &fakeSubmitter{}}
	if err := g.Run(subs); err != nil {
		t.Fatal(err)
	}
	submitted, committed, late := g.Stats()
	if submitted != 25 || committed != 0 {
		t.Errorf("submitted %d committed %d, want 25/0", submitted, committed)
	}
	if late != 0 {
		t.Errorf("late = %d; an unpaced run has no schedule to fall behind", late)
	}
}

// TestUnpacedArrivalIsSubmitTime: without a rate there is no schedule,
// so each transaction's arrival must be its own submit time, not the run
// start (which would inflate every latency by the whole preceding run).
func TestUnpacedArrivalIsSubmitTime(t *testing.T) {
	g, err := New(Options{Count: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowSubmitter{delay: 10 * time.Millisecond}
	if err := g.Run([]Submitter{slow}); err != nil {
		t.Fatal(err)
	}
	t1, ok1 := g.SubmitTime("tx1")
	t3, ok3 := g.SubmitTime("tx3")
	if !ok1 || !ok3 {
		t.Fatal("submit times missing")
	}
	if gap := t3.Sub(t1); gap < 15*time.Millisecond {
		t.Errorf("tx1..tx3 arrival gap = %v; arrivals are stuck at run start", gap)
	}
}

type slowSubmitter struct {
	fakeSubmitter
	delay time.Duration
}

func (s *slowSubmitter) SubmitTx() (string, error) {
	time.Sleep(s.delay)
	return s.fakeSubmitter.SubmitTx()
}

func TestPacedRunTakesRateTime(t *testing.T) {
	// 20 txs at 500 tx/s uniform = 40ms of scheduled arrivals.
	g, err := New(Options{Count: 20, Rate: 500, Arrival: Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.Run([]Submitter{&fakeSubmitter{}}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("open-loop run finished in %v, pacing not applied", elapsed)
	}
}

func TestSubmitErrorReported(t *testing.T) {
	g, err := New(Options{Count: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run([]Submitter{&fakeSubmitter{errAt: 3}}); err == nil {
		t.Error("submission error swallowed")
	}
}

func TestLatencyAccounting(t *testing.T) {
	g, err := New(Options{Count: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run([]Submitter{&fakeSubmitter{}}); err != nil {
		t.Fatal(err)
	}
	at := time.Now().Add(10 * time.Millisecond)
	if !g.Committed("tx1", at) {
		t.Error("known txid rejected")
	}
	if g.Committed("tx1", at) {
		t.Error("double commit recorded twice")
	}
	if g.Committed("unknown", at) {
		t.Error("foreign txid accepted")
	}
	if _, ok := g.SubmitTime("tx1"); !ok {
		t.Error("SubmitTime consumed by Committed")
	}
	_, committed, _ := g.Stats()
	if committed != 1 {
		t.Errorf("committed = %d, want 1", committed)
	}
	if sum := g.Latency(); sum.Count != 1 || sum.P50 <= 0 {
		t.Errorf("latency summary %+v", sum)
	}
}

// TestEarlyCommitCompleted: a commit observed before the submitting
// goroutine records the tx (a synchronous commit path racing SubmitTx's
// return) must still produce a latency sample once the record lands.
func TestEarlyCommitCompleted(t *testing.T) {
	g, err := New(Options{Count: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	if g.Committed("tx1", at) {
		t.Error("early commit claimed a match before the record existed")
	}
	if err := g.Run([]Submitter{&fakeSubmitter{}}); err != nil {
		t.Fatal(err)
	}
	_, committed, _ := g.Stats()
	if committed != 1 {
		t.Fatalf("committed = %d, want the early observation completed", committed)
	}
	if g.Committed("tx1", at.Add(time.Second)) {
		t.Error("completed early commit recorded twice")
	}
	if sum := g.Latency(); sum.Count != 1 {
		t.Errorf("latency count = %d, want 1", sum.Count)
	}
}

// TestObserveBlock matches a real endorsed envelope back to its
// submission via the tx id in the channel header.
func TestObserveBlock(t *testing.T) {
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	clientID, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	ordererID, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator: clientID, Chaincode: "cc", Channel: "ch",
	})
	if err != nil {
		t.Fatal(err)
	}
	txid, err := block.EnvelopeTxID(env)
	if err != nil || txid == "" {
		t.Fatalf("EnvelopeTxID = %q, %v", txid, err)
	}
	b, err := block.NewBlock(0, nil, []block.Envelope{*env}, ordererID)
	if err != nil {
		t.Fatal(err)
	}

	g, err := New(Options{Count: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// White-box: plant the submission record the driver would have made.
	g.submitAt[txid] = time.Now().Add(-5 * time.Millisecond)
	if got := g.ObserveBlock(b, time.Now()); got != 1 {
		t.Fatalf("ObserveBlock matched %d, want 1", got)
	}
	if sum := g.Latency(); sum.Count != 1 {
		t.Errorf("latency count = %d", sum.Count)
	}
}
