// Package load implements an open-loop cluster load driver: transaction
// arrivals follow a configured rate and inter-arrival distribution
// (Poisson or uniform) independent of how fast the system responds, the
// way Caliper drives a Fabric network at a fixed send rate. Because
// arrival times are scheduled up front, a backlogged system cannot slow
// the arrival process down, and latency is measured from the scheduled
// arrival — the measurement is free of coordinated omission.
package load

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/metrics"
	"bmac/internal/telemetry"
)

// Submitter submits one generated transaction and returns its ID;
// *client.Driver implements it.
type Submitter interface {
	SubmitTx() (string, error)
}

// Arrival distributions.
const (
	// Poisson draws exponential inter-arrival times (memoryless open-loop
	// traffic, the default).
	Poisson = "poisson"
	// Uniform uses a constant inter-arrival interval of 1/rate.
	Uniform = "uniform"
)

// Options parameterize a run.
type Options struct {
	// Rate is the aggregate arrival rate in tx/s across all clients;
	// <= 0 submits with no pacing (back-to-back).
	Rate float64
	// Arrival is the inter-arrival distribution: Poisson (default) or
	// Uniform.
	Arrival string
	// Count is the total number of transactions to submit.
	Count int
	// Seed makes the arrival process deterministic.
	Seed int64
	// Metrics, when non-nil, mirrors submit/commit/late counts and the
	// end-to-end latency histogram into the telemetry registry. Nil
	// (telemetry off) costs one predicted branch per event.
	Metrics *telemetry.LoadMetrics
}

// Generator drives submitters open-loop and tracks per-transaction
// end-to-end latency from scheduled arrival to commit.
type Generator struct {
	opts Options

	mu        sync.Mutex
	submitAt  map[string]time.Time // guarded by mu
	done      map[string]bool      // guarded by mu
	early     map[string]time.Time // guarded by mu; commits observed before the submit record landed
	samples   metrics.Samples      // guarded by mu
	submitted int                  // guarded by mu
	committed int                  // guarded by mu
	late      int                  // guarded by mu; arrivals that fired behind schedule (backlog indicator)
}

// New creates a generator.
func New(opts Options) (*Generator, error) {
	switch opts.Arrival {
	case "", Poisson, Uniform:
	default:
		return nil, fmt.Errorf("load: unknown arrival distribution %q (valid: %s, %s)",
			opts.Arrival, Poisson, Uniform)
	}
	if opts.Count <= 0 {
		return nil, fmt.Errorf("load: count must be > 0, got %d", opts.Count)
	}
	return &Generator{
		opts:     opts,
		submitAt: make(map[string]time.Time, opts.Count),
		done:     make(map[string]bool, opts.Count),
		early:    make(map[string]time.Time),
	}, nil
}

// Run submits Count transactions spread across the given clients, each
// client pacing its share of the aggregate rate, and returns when every
// arrival has been submitted. Submission errors abort the failing client
// and are joined into the returned error.
func (g *Generator) Run(clients []Submitter) error {
	if len(clients) == 0 {
		return fmt.Errorf("load: no clients")
	}
	perClient := g.opts.Count / len(clients)
	extra := g.opts.Count % len(clients)
	clientRate := g.opts.Rate / float64(len(clients))

	errCh := make(chan error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		n := perClient
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, c Submitter, n int) {
			defer wg.Done()
			if err := g.runClient(c, n, clientRate, g.opts.Seed+int64(i)); err != nil {
				errCh <- fmt.Errorf("client %d: %w", i, err)
			}
		}(i, c, n)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// runClient is one open-loop arrival process.
func (g *Generator) runClient(c Submitter, n int, rate float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	next := time.Now()
	for i := 0; i < n; i++ {
		if rate > 0 {
			next = next.Add(g.interval(rng, rate))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else if d < 0 {
				g.mu.Lock()
				g.late++
				g.mu.Unlock()
				g.opts.Metrics.ObserveLate()
			}
		} else {
			// Unpaced: there is no schedule, so the arrival is the
			// submit call itself — otherwise every latency would be
			// measured from run start.
			next = time.Now()
		}
		txid, err := c.SubmitTx()
		if err != nil {
			return err
		}
		g.mu.Lock()
		// Latency is measured from the scheduled arrival, not the actual
		// submit time: if the submit path itself backs up, that queueing
		// delay is part of the end-to-end latency (open-loop semantics).
		g.submitAt[txid] = next
		g.submitted++
		// A synchronous commit path can observe the transaction before
		// this record lands; complete such an early observation now.
		earlyAt, early := g.early[txid]
		if early {
			delete(g.early, txid)
			g.done[txid] = true
			g.committed++
			g.samples.Add(earlyAt.Sub(next))
		}
		g.mu.Unlock()
		g.opts.Metrics.ObserveSubmit()
		if early {
			g.opts.Metrics.ObserveCommit(earlyAt.Sub(next))
		}
	}
	return nil
}

func (g *Generator) interval(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	mean := float64(time.Second) / rate
	switch g.opts.Arrival {
	case Uniform:
		return time.Duration(mean)
	default: // Poisson
		return time.Duration(-math.Log(1-rng.Float64()) * mean)
	}
}

// Committed records that txid committed at the given time and returns
// whether the transaction was one of this generator's (not yet observed)
// submissions. The submission time stays readable through SubmitTime for
// secondary observation points. An unknown txid is remembered: the
// submitting goroutine may still be between SubmitTx returning and the
// record landing, and completes the sample when it does (the memory cost
// only matters if the generator observes large volumes of foreign
// traffic, which this testbed does not produce).
func (g *Generator) Committed(txid string, at time.Time) bool {
	g.mu.Lock()
	if g.done[txid] {
		g.mu.Unlock()
		return false
	}
	t0, ok := g.submitAt[txid]
	if !ok {
		g.early[txid] = at
		g.mu.Unlock()
		return false
	}
	g.done[txid] = true
	g.committed++
	g.samples.Add(at.Sub(t0))
	g.mu.Unlock()
	g.opts.Metrics.ObserveCommit(at.Sub(t0))
	return true
}

// SubmitTime looks up (without consuming) the scheduled arrival of txid,
// for callers tracking a second observation point (e.g. the hardware
// delivery path) with their own samples.
func (g *Generator) SubmitTime(txid string) (time.Time, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t0, ok := g.submitAt[txid]
	return t0, ok
}

// ObserveBlock records a commit for every envelope of b that this
// generator submitted, and returns how many matched.
func (g *Generator) ObserveBlock(b *block.Block, at time.Time) int {
	matched := 0
	for i := range b.Envelopes {
		txid, err := block.EnvelopeTxID(&b.Envelopes[i])
		if err != nil {
			continue // foreign or malformed envelope: not ours
		}
		if g.Committed(txid, at) {
			matched++
		}
	}
	return matched
}

// Latency digests the recorded end-to-end latencies.
func (g *Generator) Latency() metrics.LatencySummary {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.samples.Summary()
}

// Stats reports submitted/committed transaction counts and how many
// arrivals fired behind schedule.
func (g *Generator) Stats() (submitted, committed, late int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.submitted, g.committed, g.late
}
