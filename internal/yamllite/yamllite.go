// Package yamllite implements the small YAML subset needed for the BMac
// configuration file (paper §3.5): block mappings, block sequences, scalar
// values (strings, integers, booleans), comments and nesting by
// indentation. Anchors, flow collections, multi-line scalars and tags are
// out of scope.
package yamllite

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax reports malformed input.
var ErrSyntax = errors.New("yamllite: syntax error")

// Node is a parsed YAML value: map[string]any, []any, string, int64 or bool.
type Node = any

// Parse parses a YAML document.
func Parse(src []byte) (Node, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{lines: lines}
	node, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("%w: unexpected content at line %d", ErrSyntax, p.lines[p.pos].num)
	}
	return node, nil
}

type line struct {
	num    int
	indent int
	text   string // content without indentation
}

func splitLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		// Strip comments (naive: not inside quotes).
		text := raw
		if idx := commentIndex(text); idx >= 0 {
			text = text[:idx]
		}
		trimmed := strings.TrimRight(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(trimmed[indent:], "\t") {
			return nil, fmt.Errorf("%w: tab indentation at line %d", ErrSyntax, i+1)
		}
		out = append(out, line{num: i + 1, indent: indent, text: trimmed[indent:]})
	}
	return out, nil
}

func commentIndex(s string) int {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return i
			}
		}
	}
	return -1
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos < len(p.lines) {
		return p.lines[p.pos], true
	}
	return line{}, false
}

// parseBlock parses the block starting at the current position with the
// given minimum indentation.
func (p *parser) parseBlock(indent int) (Node, error) {
	l, ok := p.peek()
	if !ok || l.indent < indent {
		return nil, fmt.Errorf("%w: expected block at indent %d", ErrSyntax, indent)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(l.indent)
	}
	return p.parseMapping(l.indent)
}

func (p *parser) parseMapping(indent int) (Node, error) {
	m := make(map[string]any)
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return m, nil
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%w: unexpected indent at line %d", ErrSyntax, l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("%w: sequence item in mapping at line %d", ErrSyntax, l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%w: duplicate key %q at line %d", ErrSyntax, key, l.num)
		}
		p.pos++
		if rest != "" {
			m[key] = scalar(rest)
			continue
		}
		// Nested block or empty value.
		next, ok := p.peek()
		if !ok || next.indent <= indent {
			m[key] = nil
			continue
		}
		child, err := p.parseBlock(next.indent)
		if err != nil {
			return nil, err
		}
		m[key] = child
	}
}

func (p *parser) parseSequence(indent int) (Node, error) {
	var seq []any
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return seq, nil
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%w: unexpected indent at line %d", ErrSyntax, l.num)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return seq, nil
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "- " alone: nested block item.
			p.pos++
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				seq = append(seq, nil)
				continue
			}
			child, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, child)
			continue
		}
		if key, val, err := trySplitInline(rest); err == nil {
			// "- key: value" starts an inline mapping; sibling keys sit at
			// the content column after the dash, deeper indentation is the
			// nested block of the preceding key.
			item := map[string]any{}
			itemIndent := l.indent + 2 // content column after "- "
			p.pos++
			if val != "" {
				item[key] = scalar(val)
			} else {
				next, ok := p.peek()
				if ok && next.indent > itemIndent {
					child, err := p.parseBlock(next.indent)
					if err != nil {
						return nil, err
					}
					item[key] = child
				} else {
					item[key] = nil
				}
			}
			// Sibling keys of this item.
			for {
				nl, ok := p.peek()
				if !ok || nl.indent != itemIndent ||
					strings.HasPrefix(nl.text, "- ") || nl.text == "-" {
					break
				}
				k2, rest2, err := splitKey(nl)
				if err != nil {
					return nil, err
				}
				p.pos++
				if rest2 != "" {
					item[k2] = scalar(rest2)
					continue
				}
				next, ok := p.peek()
				if !ok || next.indent <= nl.indent {
					item[k2] = nil
					continue
				}
				child, err := p.parseBlock(next.indent)
				if err != nil {
					return nil, err
				}
				item[k2] = child
			}
			seq = append(seq, item)
			continue
		}
		// Plain scalar item.
		seq = append(seq, scalar(rest))
		p.pos++
	}
}

func splitKey(l line) (key, rest string, err error) {
	k, v, err := trySplitInline(l.text)
	if err != nil {
		return "", "", fmt.Errorf("%w: expected 'key: value' at line %d", ErrSyntax, l.num)
	}
	return k, v, nil
}

// trySplitInline splits "key: value" (value may be empty), respecting
// quoted keys.
func trySplitInline(s string) (key, value string, err error) {
	idx := -1
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ':':
			if !inSingle && !inDouble && (i+1 == len(s) || s[i+1] == ' ') {
				idx = i
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		return "", "", ErrSyntax
	}
	key = unquote(strings.TrimSpace(s[:idx]))
	if key == "" {
		return "", "", ErrSyntax
	}
	return key, strings.TrimSpace(s[idx+1:]), nil
}

func unquote(s string) string {
	if len(s) >= 2 && ((s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'')) {
		return s[1 : len(s)-1]
	}
	return s
}

// scalar interprets a scalar value: bool, int64, or string.
func scalar(s string) any {
	s = strings.TrimSpace(s)
	if q := unquote(s); q != s {
		return q
	}
	switch s {
	case "true", "True", "yes":
		return true
	case "false", "False", "no":
		return false
	case "null", "~":
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	return s
}

// --- typed accessors used by internal/config ---

// GetMap fetches a nested mapping by key.
func GetMap(n Node, key string) (map[string]any, bool) {
	m, ok := n.(map[string]any)
	if !ok {
		return nil, false
	}
	child, ok := m[key].(map[string]any)
	return child, ok
}

// GetSeq fetches a nested sequence by key.
func GetSeq(n Node, key string) ([]any, bool) {
	m, ok := n.(map[string]any)
	if !ok {
		return nil, false
	}
	child, ok := m[key].([]any)
	return child, ok
}

// GetString fetches a string scalar by key.
func GetString(n Node, key string) (string, bool) {
	m, ok := n.(map[string]any)
	if !ok {
		return "", false
	}
	s, ok := m[key].(string)
	return s, ok
}

// GetInt fetches an integer scalar by key.
func GetInt(n Node, key string) (int64, bool) {
	m, ok := n.(map[string]any)
	if !ok {
		return 0, false
	}
	v, ok := m[key].(int64)
	return v, ok
}

// GetBool fetches a boolean scalar by key.
func GetBool(n Node, key string) (bool, bool) {
	m, ok := n.(map[string]any)
	if !ok {
		return false, false
	}
	v, ok := m[key].(bool)
	return v, ok
}
