package yamllite

import (
	"errors"
	"testing"
)

func parse(t *testing.T, src string) Node {
	t.Helper()
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return n
}

func TestFlatMapping(t *testing.T) {
	n := parse(t, "name: bmac\nport: 9309\nenabled: true\n")
	if s, _ := GetString(n, "name"); s != "bmac" {
		t.Errorf("name = %q", s)
	}
	if v, _ := GetInt(n, "port"); v != 9309 {
		t.Errorf("port = %d", v)
	}
	if b, _ := GetBool(n, "enabled"); !b {
		t.Error("enabled = false")
	}
}

func TestNestedMapping(t *testing.T) {
	src := `
architecture:
  tx_validators: 8
  vscc_engines: 2
network:
  channel: ch1
`
	n := parse(t, src)
	arch, ok := GetMap(n, "architecture")
	if !ok {
		t.Fatal("no architecture map")
	}
	if v, _ := GetInt(arch, "tx_validators"); v != 8 {
		t.Errorf("tx_validators = %d", v)
	}
	netm, _ := GetMap(n, "network")
	if s, _ := GetString(netm, "channel"); s != "ch1" {
		t.Errorf("channel = %q", s)
	}
}

func TestSequences(t *testing.T) {
	src := `
orgs:
  - name: Org1
    peers: 2
  - name: Org2
    peers: 1
tags:
  - alpha
  - beta
`
	n := parse(t, src)
	orgs, ok := GetSeq(n, "orgs")
	if !ok || len(orgs) != 2 {
		t.Fatalf("orgs = %v", orgs)
	}
	first, ok := orgs[0].(map[string]any)
	if !ok {
		t.Fatalf("org[0] = %T", orgs[0])
	}
	if s, _ := GetString(first, "name"); s != "Org1" {
		t.Errorf("org name = %q", s)
	}
	if v, _ := GetInt(first, "peers"); v != 2 {
		t.Errorf("peers = %d", v)
	}
	tags, _ := GetSeq(n, "tags")
	if len(tags) != 2 || tags[0] != "alpha" || tags[1] != "beta" {
		t.Errorf("tags = %v", tags)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := `
# top comment
key: value  # trailing comment

other: 7
`
	n := parse(t, src)
	if s, _ := GetString(n, "key"); s != "value" {
		t.Errorf("key = %q", s)
	}
	if v, _ := GetInt(n, "other"); v != 7 {
		t.Errorf("other = %d", v)
	}
}

func TestQuotedStrings(t *testing.T) {
	src := `policy: "2-outof-3 orgs"
hash: '#notacomment'
`
	n := parse(t, src)
	if s, _ := GetString(n, "policy"); s != "2-outof-3 orgs" {
		t.Errorf("policy = %q", s)
	}
	if s, _ := GetString(n, "hash"); s != "#notacomment" {
		t.Errorf("hash = %q", s)
	}
}

func TestQuotedNumberStaysString(t *testing.T) {
	n := parse(t, `version: "14"`)
	if s, ok := GetString(n, "version"); !ok || s != "14" {
		t.Errorf("version = %v", s)
	}
}

func TestDeepNesting(t *testing.T) {
	src := `
a:
  b:
    c:
      - x: 1
      - x: 2
`
	n := parse(t, src)
	a, _ := GetMap(n, "a")
	b, _ := GetMap(a, "b")
	seq, ok := GetSeq(b, "c")
	if !ok || len(seq) != 2 {
		t.Fatalf("c = %v", seq)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"\tkey: value",        // tab indent
		"key value",           // no colon
		"key: 1\nkey: 2",      // duplicate key
		"key: 1\n  indent: 2", // stray indent under scalar... (nested under scalar)
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", src, err)
		}
	}
}

func TestNullValues(t *testing.T) {
	n := parse(t, "a: null\nb: ~\n")
	m := n.(map[string]any)
	if m["a"] != nil || m["b"] != nil {
		t.Errorf("nulls = %v, %v", m["a"], m["b"])
	}
}

func TestAccessorsOnWrongTypes(t *testing.T) {
	n := parse(t, "a: 1")
	if _, ok := GetMap(n, "a"); ok {
		t.Error("GetMap on scalar succeeded")
	}
	if _, ok := GetSeq(n, "a"); ok {
		t.Error("GetSeq on scalar succeeded")
	}
	if _, ok := GetString(n, "a"); ok {
		t.Error("GetString on int succeeded")
	}
	if _, ok := GetInt("not a map", "a"); ok {
		t.Error("GetInt on non-map succeeded")
	}
}

func FuzzParseNoPanic(f *testing.F) {
	f.Add("a: 1\nb:\n  - x: 2\n")
	f.Add("- 1\n- 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		Parse([]byte(src)) // must not panic
	})
}

func TestSequenceOfNestedBlocks(t *testing.T) {
	src := `
items:
  -
    name: first
  -
    name: second
`
	n := parse(t, src)
	items, ok := GetSeq(n, "items")
	if !ok || len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	first, ok := items[0].(map[string]any)
	if !ok {
		t.Fatalf("item 0 = %T", items[0])
	}
	if s, _ := GetString(first, "name"); s != "first" {
		t.Errorf("name = %q", s)
	}
}

func TestDashOnlyEmptyItem(t *testing.T) {
	n := parse(t, "items:\n  - 1\n  -\n")
	items, _ := GetSeq(n, "items")
	if len(items) != 2 || items[1] != nil {
		t.Errorf("items = %#v", items)
	}
}

func TestItemKeyWithNestedBlock(t *testing.T) {
	src := `
rules:
  - match:
      org: Org1
      role: peer
`
	n := parse(t, src)
	rules, ok := GetSeq(n, "rules")
	if !ok || len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	match, ok := GetMap(rules[0], "match")
	if !ok {
		t.Fatalf("match = %v", rules[0])
	}
	if s, _ := GetString(match, "org"); s != "Org1" {
		t.Errorf("org = %q", s)
	}
}

func TestTopLevelSequence(t *testing.T) {
	n := parse(t, "- a\n- b\n")
	seq, ok := n.([]any)
	if !ok || len(seq) != 2 || seq[0] != "a" {
		t.Fatalf("seq = %#v", n)
	}
}

func TestEmptyValueKey(t *testing.T) {
	n := parse(t, "a:\nb: 2\n")
	m := n.(map[string]any)
	if m["a"] != nil {
		t.Errorf("a = %v", m["a"])
	}
	if v, _ := GetInt(n, "b"); v != 2 {
		t.Errorf("b = %v", v)
	}
}
