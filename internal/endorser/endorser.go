// Package endorser implements the endorser peer's proposal path: simulate a
// transaction proposal against the local state database, compute its
// read/write set, and sign the proposal response (paper §2.1.1, step 1 of
// Figure 1).
package endorser

import (
	"fmt"

	"bmac/internal/block"
	"bmac/internal/chaincode"
	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
	"bmac/internal/statedb"
)

// Proposal is a client's transaction proposal.
type Proposal struct {
	Chaincode string
	Function  string
	Args      []string
	Nonce     []byte
	Creator   []byte // client certificate
}

// Hash returns the deterministic proposal hash every endorser embeds in its
// proposal response; identical proposals hash identically so the client can
// verify all endorsements cover the same simulation.
func (p *Proposal) Hash() []byte {
	var h fabcrypto.StreamHasher
	h.Write([]byte(p.Chaincode))
	h.Write([]byte{0})
	h.Write([]byte(p.Function))
	for _, a := range p.Args {
		h.Write([]byte{0})
		h.Write([]byte(a))
	}
	h.Write(p.Nonce)
	h.Write(p.Creator)
	return h.Sum()
}

// Response is an endorser's reply: the marshaled proposal response payload
// (which the endorsement signature covers) and the endorsement itself.
type Response struct {
	PRPBytes    []byte
	Endorsement block.Endorsement
}

// Endorser is one endorser peer.
type Endorser struct {
	id    *identity.Identity
	store *statedb.Store
	reg   *chaincode.Registry
}

// New creates an endorser peer with its own state database view.
func New(id *identity.Identity, store *statedb.Store, reg *chaincode.Registry) *Endorser {
	return &Endorser{id: id, store: store, reg: reg}
}

// Identity returns the endorser's identity.
func (e *Endorser) Identity() *identity.Identity { return e.id }

// Store returns the endorser's state database (committed by its validator
// side after each block).
func (e *Endorser) Store() *statedb.Store { return e.store }

// Process simulates the proposal and returns a signed endorsement.
func (e *Endorser) Process(p *Proposal) (*Response, error) {
	cc, err := e.reg.Get(p.Chaincode)
	if err != nil {
		return nil, err
	}
	stub := chaincode.NewStub(e.store)
	if err := cc.Invoke(stub, p.Function, p.Args); err != nil {
		return nil, fmt.Errorf("endorser %s simulate %s.%s: %w", e.id.Name, p.Chaincode, p.Function, err)
	}
	prp := block.ProposalResponsePayload{
		ProposalHash: p.Hash(),
		Extension: block.ChaincodeAction{
			Results:       stub.RWSet(),
			ResponseCode:  200,
			ChaincodeName: p.Chaincode,
		},
	}
	prpBytes := block.MarshalProposalResponsePayload(&prp)
	sig, err := e.id.Sign(block.EndorsementSigningBytes(prpBytes, e.id.Cert))
	if err != nil {
		return nil, fmt.Errorf("endorser %s sign: %w", e.id.Name, err)
	}
	return &Response{
		PRPBytes: prpBytes,
		Endorsement: block.Endorsement{
			Endorser:  e.id.Cert,
			Signature: sig,
		},
	}, nil
}
