package endorser

import (
	"bytes"
	"crypto/rand"
	"testing"

	"bmac/internal/block"
	"bmac/internal/chaincode"
	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
	"bmac/internal/statedb"
)

type fixture struct {
	net    *identity.Network
	client *identity.Identity
	e1, e2 *Endorser
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := n.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := n.NewIdentity("Org2", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	reg := chaincode.NewRegistry(chaincode.Smallbank{}, chaincode.DRM{})

	// Both endorsers share the same world state content (separate stores).
	mkStore := func() *statedb.Store {
		s := statedb.NewStore()
		stub := chaincode.NewStub(s)
		if err := (chaincode.Smallbank{}).Invoke(stub, "create_account", []string{"1", "100", "50"}); err != nil {
			t.Fatal(err)
		}
		s.WriteBatch(stub.RWSet().Writes, block.Version{})
		stub2 := chaincode.NewStub(s)
		if err := (chaincode.Smallbank{}).Invoke(stub2, "create_account", []string{"2", "100", "50"}); err != nil {
			t.Fatal(err)
		}
		s.WriteBatch(stub2.RWSet().Writes, block.Version{})
		return s
	}
	return &fixture{
		net:    n,
		client: client,
		e1:     New(p1, mkStore(), reg),
		e2:     New(p2, mkStore(), reg),
	}
}

func proposal(t *testing.T, f *fixture) *Proposal {
	t.Helper()
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		t.Fatal(err)
	}
	return &Proposal{
		Chaincode: "smallbank",
		Function:  "send_payment",
		Args:      []string{"1", "2", "10"},
		Nonce:     nonce,
		Creator:   f.client.Cert,
	}
}

func TestEndorsersAgree(t *testing.T) {
	f := newFixture(t)
	p := proposal(t, f)
	r1, err := f.e1.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.e2.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	// Identical world state -> identical proposal response payloads.
	if !bytes.Equal(r1.PRPBytes, r2.PRPBytes) {
		t.Error("endorsers produced different proposal responses")
	}
	// But different signatures by different identities.
	if bytes.Equal(r1.Endorsement.Signature, r2.Endorsement.Signature) {
		t.Error("distinct endorsers produced identical signatures")
	}
}

func TestEndorsementSignatureVerifies(t *testing.T) {
	f := newFixture(t)
	r, err := f.e1.Process(proposal(t, f))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := fabcrypto.PublicKeyFromCert(r.Endorsement.Endorser)
	if err != nil {
		t.Fatal(err)
	}
	msg := block.EndorsementSigningBytes(r.PRPBytes, r.Endorsement.Endorser)
	if err := fabcrypto.Verify(pub, msg, r.Endorsement.Signature); err != nil {
		t.Errorf("endorsement signature: %v", err)
	}
}

func TestRWSetContents(t *testing.T) {
	f := newFixture(t)
	r, err := f.e1.Process(proposal(t, f))
	if err != nil {
		t.Fatal(err)
	}
	prp, err := block.UnmarshalProposalResponsePayload(r.PRPBytes)
	if err != nil {
		t.Fatal(err)
	}
	rw := prp.Extension.Results
	if len(rw.Reads) != 2 || len(rw.Writes) != 2 {
		t.Errorf("rwset = %d/%d, want 2/2", len(rw.Reads), len(rw.Writes))
	}
	if prp.Extension.ChaincodeName != "smallbank" {
		t.Errorf("cc name = %q", prp.Extension.ChaincodeName)
	}
}

func TestAssembleEnvelopeFromResponses(t *testing.T) {
	f := newFixture(t)
	p := proposal(t, f)
	r1, err := f.e1.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.e2.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	env, err := block.NewEnvelopeFromResponses(block.AssembleSpec{
		Creator:   f.client,
		Chaincode: "smallbank",
		Channel:   "ch1",
		Nonce:     p.Nonce,
		PRPBytes:  r1.PRPBytes,
		Endorsers: []block.Endorsement{r1.Endorsement, r2.Endorsement},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full round trip: the envelope decodes and endorsements verify.
	tx, err := block.UnmarshalTransactionPayload(env.PayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Payload.Action.Endorsements) != 2 {
		t.Fatalf("endorsements = %d", len(tx.Payload.Action.Endorsements))
	}
	for i, e := range tx.Payload.Action.Endorsements {
		pub, err := fabcrypto.PublicKeyFromCert(e.Endorser)
		if err != nil {
			t.Fatal(err)
		}
		msg := block.EndorsementSigningBytes(tx.Payload.Action.ProposalResponseBytes, e.Endorser)
		if err := fabcrypto.Verify(pub, msg, e.Signature); err != nil {
			t.Errorf("endorsement %d after assembly: %v", i, err)
		}
	}
}

func TestProposalHashDeterministic(t *testing.T) {
	p1 := &Proposal{Chaincode: "cc", Function: "f", Args: []string{"a", "b"}, Nonce: []byte{1}}
	p2 := &Proposal{Chaincode: "cc", Function: "f", Args: []string{"a", "b"}, Nonce: []byte{1}}
	if !bytes.Equal(p1.Hash(), p2.Hash()) {
		t.Error("identical proposals hash differently")
	}
	p3 := &Proposal{Chaincode: "cc", Function: "f", Args: []string{"ab"}, Nonce: []byte{1}}
	if bytes.Equal(p1.Hash(), p3.Hash()) {
		t.Error("arg boundary not separated in hash")
	}
}

func TestProcessUnknownChaincode(t *testing.T) {
	f := newFixture(t)
	p := proposal(t, f)
	p.Chaincode = "nope"
	if _, err := f.e1.Process(p); err == nil {
		t.Error("expected error for unknown chaincode")
	}
}

func TestProcessSimulationError(t *testing.T) {
	f := newFixture(t)
	p := proposal(t, f)
	p.Args = []string{"404", "2", "10"} // missing account
	if _, err := f.e1.Process(p); err == nil {
		t.Error("expected simulation error")
	}
}
