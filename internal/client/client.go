// Package client implements the Caliper-like workload driver of the
// paper's evaluation (§4.1): it creates random transactions for a chosen
// benchmark, gathers endorsements from endorser peers, assembles signed
// envelopes and submits them to the ordering service, then collects
// block-level statistics from the peers.
package client

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"strconv"

	"bmac/internal/block"
	"bmac/internal/chaincode"
	"bmac/internal/endorser"
	"bmac/internal/identity"
	"bmac/internal/statedb"
)

// Workload generates chaincode invocations.
type Workload interface {
	// Chaincode returns the chaincode name invoked.
	Chaincode() string
	// Next returns the next function and arguments.
	Next(rng *mrand.Rand) (fn string, args []string)
	// Setup returns the bootstrap invocations that populate initial state
	// (executed against every peer's store before the run).
	Setup() [](struct {
		Fn   string
		Args []string
	})
}

type invocation = struct {
	Fn   string
	Args []string
}

// SmallbankWorkload drives the smallbank benchmark over `accounts`
// accounts with the standard operation mix.
//
// Skew dials in hot-account contention: 0 (or <= 1) picks accounts
// uniformly, while values > 1 draw them from a Zipf distribution with that
// exponent, concentrating traffic on low-numbered accounts. Higher skew
// means more read/write overlap between in-flight transactions — the
// conflict-rate axis of the pipeline experiments.
type SmallbankWorkload struct {
	Accounts int
	Skew     float64
}

var _ Workload = SmallbankWorkload{}

// accountPicker returns an account sampler, uniform or Zipf-skewed. The
// workload value is stateless (determinism lives in the caller's rng), so
// the Zipf state is rebuilt per invocation and shared by all draws of one
// transaction.
func (w SmallbankWorkload) accountPicker(rng *mrand.Rand) func() int {
	if w.Skew <= 1 {
		return func() int { return rng.Intn(w.Accounts) }
	}
	z := mrand.NewZipf(rng, w.Skew, 1, uint64(w.Accounts-1))
	return func() int { return int(z.Uint64()) }
}

// Chaincode implements Workload.
func (SmallbankWorkload) Chaincode() string { return "smallbank" }

// Setup implements Workload.
func (w SmallbankWorkload) Setup() []invocation {
	out := make([]invocation, 0, w.Accounts)
	for i := 0; i < w.Accounts; i++ {
		out = append(out, invocation{
			Fn:   "create_account",
			Args: []string{strconv.Itoa(i), "10000", "10000"},
		})
	}
	return out
}

// Next implements Workload.
func (w SmallbankWorkload) Next(rng *mrand.Rand) (string, []string) {
	pick := w.accountPicker(rng)
	a := strconv.Itoa(pick())
	b := strconv.Itoa(pick())
	amt := strconv.Itoa(1 + rng.Intn(100))
	switch rng.Intn(5) {
	case 0:
		return "transact_savings", []string{a, amt}
	case 1:
		return "deposit_checking", []string{a, amt}
	case 2:
		return "send_payment", []string{a, b, amt}
	case 3:
		return "write_check", []string{a, amt}
	default:
		return "amalgamate", []string{a, b}
	}
}

// DRMWorkload drives the drm benchmark over `assets` registered assets.
type DRMWorkload struct {
	Assets int
}

var _ Workload = DRMWorkload{}

// Chaincode implements Workload.
func (DRMWorkload) Chaincode() string { return "drm" }

// Setup implements Workload.
func (w DRMWorkload) Setup() []invocation {
	out := make([]invocation, 0, w.Assets)
	for i := 0; i < w.Assets; i++ {
		out = append(out, invocation{
			Fn:   "register",
			Args: []string{strconv.Itoa(i), "owner" + strconv.Itoa(i)},
		})
	}
	return out
}

// Next implements Workload.
func (w DRMWorkload) Next(rng *mrand.Rand) (string, []string) {
	id := strconv.Itoa(rng.Intn(w.Assets))
	switch rng.Intn(3) {
	case 0:
		return "transfer", []string{id, "owner" + strconv.Itoa(rng.Intn(100))}
	case 1:
		return "license", []string{id, "lic" + strconv.Itoa(rng.Intn(100))}
	default:
		return "query", []string{id}
	}
}

// SplitPayWorkload drives the split-payment smallbank variant: each payment
// splits to Recipients accounts, giving 1+Recipients reads and writes
// (Figure 12c's rw knob).
type SplitPayWorkload struct {
	Accounts   int
	Recipients int
}

var _ Workload = SplitPayWorkload{}

// Chaincode implements Workload.
func (SplitPayWorkload) Chaincode() string { return "splitpay" }

// Setup implements Workload.
func (w SplitPayWorkload) Setup() []invocation {
	out := make([]invocation, 0, w.Accounts)
	for i := 0; i < w.Accounts; i++ {
		out = append(out, invocation{
			Fn:   "create_account",
			Args: []string{strconv.Itoa(i), "1000000", "0"},
		})
	}
	return out
}

// Next implements Workload.
func (w SplitPayWorkload) Next(rng *mrand.Rand) (string, []string) {
	from := rng.Intn(w.Accounts)
	args := []string{strconv.Itoa(from), strconv.Itoa(10 * w.Recipients)}
	for len(args)-2 < w.Recipients {
		to := rng.Intn(w.Accounts)
		if to != from {
			args = append(args, strconv.Itoa(to))
		}
	}
	return "split_payment", args
}

// Submitter receives assembled envelopes (the ordering service).
type Submitter interface {
	Submit(*block.Envelope) error
}

// Driver is one Caliper client: it owns an identity and fans proposals out
// to the endorser peers.
type Driver struct {
	id        *identity.Identity
	endorsers []*endorser.Endorser
	submitter Submitter
	workload  Workload
	channel   string
	rng       *mrand.Rand

	submitted int
}

// NewDriver creates a driver. seed makes the generated workload
// deterministic.
func NewDriver(id *identity.Identity, endorsers []*endorser.Endorser,
	submitter Submitter, workload Workload, channel string, seed int64) *Driver {
	return &Driver{
		id:        id,
		endorsers: endorsers,
		submitter: submitter,
		workload:  workload,
		channel:   channel,
		rng:       mrand.New(mrand.NewSource(seed)),
	}
}

// Bootstrap applies the workload's setup invocations directly to every
// endorser store (and any extra stores, e.g. the validator peers') at
// version (0,0) — the genesis state.
func Bootstrap(w Workload, reg *chaincode.Registry, stores ...statedb.KVS) error {
	cc, err := reg.Get(w.Chaincode())
	if err != nil {
		return err
	}
	for _, inv := range w.Setup() {
		for _, store := range stores {
			stub := chaincode.NewStub(store)
			if err := cc.Invoke(stub, inv.Fn, inv.Args); err != nil {
				return fmt.Errorf("bootstrap %s.%s: %w", w.Chaincode(), inv.Fn, err)
			}
			store.WriteBatch(stub.RWSet().Writes, block.Version{})
		}
	}
	return nil
}

// BootstrapHardware mirrors Bootstrap into a hardware KVS so the BMac
// peer's in-hardware database starts from the same genesis state.
func BootstrapHardware(w Workload, reg *chaincode.Registry, ref statedb.KVS, hw *statedb.HardwareKVS) error {
	for k, v := range ref.Snapshot() {
		if err := hw.Write(k, v.Value, v.Version); err != nil {
			return fmt.Errorf("bootstrap hardware kvs: %w", err)
		}
	}
	return nil
}

// SubmitOne generates, endorses, assembles and submits one transaction.
func (d *Driver) SubmitOne() error {
	_, err := d.SubmitTx()
	return err
}

// SubmitTx generates, endorses, assembles and submits one transaction and
// returns its transaction ID, so open-loop load drivers can match the
// submission against the block it later commits in (per-tx end-to-end
// latency). Endorsement gathering races with block commits updating the
// endorsers' world state (as in a live Fabric network); when the endorsers
// disagree on the read set, the client retries the proposal, as a real
// Fabric client SDK does.
func (d *Driver) SubmitTx() (string, error) {
	fn, args := d.workload.Next(d.rng)
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return "", fmt.Errorf("nonce: %w", err)
	}
	prop := &endorser.Proposal{
		Chaincode: d.workload.Chaincode(),
		Function:  fn,
		Args:      args,
		Nonce:     nonce,
		Creator:   d.id.Cert,
	}
	const maxAttempts = 5
	var (
		prpBytes     []byte
		endorsements []block.Endorsement
	)
	for attempt := 1; ; attempt++ {
		var err error
		prpBytes, endorsements, err = d.gatherEndorsements(prop)
		if err == nil {
			break
		}
		if attempt == maxAttempts || !errors.Is(err, errEndorserMismatch) {
			return "", fmt.Errorf("endorse %s.%s: %w", prop.Chaincode, fn, err)
		}
	}
	env, err := block.NewEnvelopeFromResponses(block.AssembleSpec{
		Creator:   d.id,
		Chaincode: prop.Chaincode,
		Channel:   d.channel,
		Nonce:     nonce,
		PRPBytes:  prpBytes,
		Endorsers: endorsements,
	})
	if err != nil {
		return "", err
	}
	if err := d.submitter.Submit(env); err != nil {
		return "", err
	}
	d.submitted++
	return block.ComputeTxID(nonce, d.id.Cert), nil
}

// errEndorserMismatch reports divergent proposal responses (a block landed
// between two endorsements); retryable.
var errEndorserMismatch = errors.New("client: endorsers disagree")

// gatherEndorsements fans the proposal out to every endorser and checks
// the responses agree.
func (d *Driver) gatherEndorsements(prop *endorser.Proposal) ([]byte, []block.Endorsement, error) {
	var prpBytes []byte
	endorsements := make([]block.Endorsement, 0, len(d.endorsers))
	for _, e := range d.endorsers {
		resp, err := e.Process(prop)
		if err != nil {
			return nil, nil, err
		}
		if prpBytes == nil {
			prpBytes = resp.PRPBytes
		} else if string(prpBytes) != string(resp.PRPBytes) {
			return nil, nil, errEndorserMismatch
		}
		endorsements = append(endorsements, resp.Endorsement)
	}
	return prpBytes, endorsements, nil
}

// Run submits n transactions.
func (d *Driver) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := d.SubmitOne(); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
	}
	return nil
}

// Submitted reports the number of successfully submitted transactions.
func (d *Driver) Submitted() int { return d.submitted }

// ApplyBlock applies a validated block's write sets to a store — the
// committer role every peer (including endorsers) plays after validation.
// Flags select which transactions commit.
func ApplyBlock(store statedb.KVS, b *block.Block, flags []byte) error {
	for i := range b.Envelopes {
		if i >= len(flags) || block.ValidationCode(flags[i]) != block.Valid {
			continue
		}
		tx, err := block.UnmarshalTransactionPayload(b.Envelopes[i].PayloadBytes)
		if err != nil {
			return err
		}
		prp, err := block.UnmarshalProposalResponsePayload(tx.Payload.Action.ProposalResponseBytes)
		if err != nil {
			return err
		}
		store.WriteBatch(prp.Extension.Results.Writes,
			block.Version{BlockNum: b.Header.Number, TxNum: uint64(i)})
	}
	return nil
}
