package client

import (
	mrand "math/rand"
	"strconv"
	"testing"

	"bmac/internal/block"
	"bmac/internal/chaincode"
	"bmac/internal/endorser"
	"bmac/internal/identity"
	"bmac/internal/statedb"
)

// chanSubmitter collects envelopes.
type chanSubmitter struct {
	envs []*block.Envelope
}

func (c *chanSubmitter) Submit(e *block.Envelope) error {
	c.envs = append(c.envs, e)
	return nil
}

type fixture struct {
	net    *identity.Network
	client *identity.Identity
	e1, e2 *endorser.Endorser
	reg    *chaincode.Registry
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := n.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := n.NewIdentity("Org2", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	reg := chaincode.NewRegistry(chaincode.Smallbank{}, chaincode.DRM{}, chaincode.SplitPay{})
	return &fixture{
		net:    n,
		client: cl,
		e1:     endorser.New(p1, statedb.NewStore(), reg),
		e2:     endorser.New(p2, statedb.NewStore(), reg),
		reg:    reg,
	}
}

func TestBootstrapPopulatesStores(t *testing.T) {
	f := newFixture(t)
	w := SmallbankWorkload{Accounts: 10}
	if err := Bootstrap(w, f.reg, f.e1.Store(), f.e2.Store()); err != nil {
		t.Fatal(err)
	}
	if f.e1.Store().Len() != 10 || f.e2.Store().Len() != 10 {
		t.Errorf("store sizes = %d/%d", f.e1.Store().Len(), f.e2.Store().Len())
	}
	if !statedb.SnapshotsEqual(f.e1.Store().Snapshot(), f.e2.Store().Snapshot()) {
		t.Error("bootstrap diverged across stores")
	}
}

func TestBootstrapHardwareMatches(t *testing.T) {
	f := newFixture(t)
	w := DRMWorkload{Assets: 5}
	if err := Bootstrap(w, f.reg, f.e1.Store()); err != nil {
		t.Fatal(err)
	}
	hw := statedb.NewHardwareKVS(100)
	if err := BootstrapHardware(w, f.reg, f.e1.Store(), hw); err != nil {
		t.Fatal(err)
	}
	if !statedb.SnapshotsEqual(f.e1.Store().Snapshot(), hw.Snapshot()) {
		t.Error("hardware bootstrap diverged")
	}
}

func TestDriverSubmitsEndorsedTransactions(t *testing.T) {
	f := newFixture(t)
	w := SmallbankWorkload{Accounts: 20}
	if err := Bootstrap(w, f.reg, f.e1.Store(), f.e2.Store()); err != nil {
		t.Fatal(err)
	}
	sub := &chanSubmitter{}
	d := NewDriver(f.client, []*endorser.Endorser{f.e1, f.e2}, sub, w, "ch1", 42)
	if err := d.Run(25); err != nil {
		t.Fatal(err)
	}
	if d.Submitted() != 25 || len(sub.envs) != 25 {
		t.Fatalf("submitted %d/%d", d.Submitted(), len(sub.envs))
	}
	// Every envelope decodes and carries two endorsements.
	for i, env := range sub.envs {
		tx, err := block.UnmarshalTransactionPayload(env.PayloadBytes)
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if len(tx.Payload.Action.Endorsements) != 2 {
			t.Errorf("tx %d endorsements = %d", i, len(tx.Payload.Action.Endorsements))
		}
		if tx.ChannelHeader.ChaincodeName != "smallbank" {
			t.Errorf("tx %d chaincode = %q", i, tx.ChannelHeader.ChaincodeName)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	w := SmallbankWorkload{Accounts: 50}
	r1 := mrand.New(mrand.NewSource(7))
	r2 := mrand.New(mrand.NewSource(7))
	for i := 0; i < 20; i++ {
		f1, a1 := w.Next(r1)
		f2, a2 := w.Next(r2)
		if f1 != f2 || len(a1) != len(a2) {
			t.Fatal("workload not deterministic under the same seed")
		}
	}
}

func TestSplitPayWorkloadShape(t *testing.T) {
	w := SplitPayWorkload{Accounts: 20, Recipients: 4}
	rng := mrand.New(mrand.NewSource(1))
	fn, args := w.Next(rng)
	if fn != "split_payment" {
		t.Errorf("fn = %q", fn)
	}
	if len(args) != 2+4 {
		t.Errorf("args = %d, want 6", len(args))
	}
}

func TestApplyBlockRespectsFlags(t *testing.T) {
	f := newFixture(t)
	store := statedb.NewStore()
	env1, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator: f.client, Chaincode: "cc", Channel: "ch",
		RWSet: block.RWSet{Writes: []block.KVWrite{{Key: "a", Value: []byte("1")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	env2, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator: f.client, Chaincode: "cc", Channel: "ch",
		RWSet: block.RWSet{Writes: []block.KVWrite{{Key: "b", Value: []byte("2")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ordID, err := f.net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := block.NewBlock(3, nil, []block.Envelope{*env1, *env2}, ordID)
	if err != nil {
		t.Fatal(err)
	}
	flags := []byte{byte(block.Valid), byte(block.BadSignature)}
	if err := ApplyBlock(store, b, flags); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("a"); err != nil {
		t.Error("valid write not applied")
	}
	if _, err := store.Get("b"); err == nil {
		t.Error("invalid write applied")
	}
	v, _ := store.Get("a")
	if v.Version != (block.Version{BlockNum: 3, TxNum: 0}) {
		t.Errorf("version = %+v", v.Version)
	}
}

func TestDRMWorkloadRuns(t *testing.T) {
	f := newFixture(t)
	w := DRMWorkload{Assets: 10}
	if err := Bootstrap(w, f.reg, f.e1.Store(), f.e2.Store()); err != nil {
		t.Fatal(err)
	}
	sub := &chanSubmitter{}
	d := NewDriver(f.client, []*endorser.Endorser{f.e1, f.e2}, sub, w, "ch1", 9)
	if err := d.Run(10); err != nil {
		t.Fatal(err)
	}
}

// TestSmallbankSkewConcentratesAccounts checks the hot-account Zipf dial:
// high skew must concentrate traffic on low-numbered accounts while zero
// skew stays roughly uniform; both must remain deterministic per seed.
func TestSmallbankSkewConcentratesAccounts(t *testing.T) {
	const accounts, draws = 100, 2000
	countLow := func(skew float64, seed int64) int {
		w := SmallbankWorkload{Accounts: accounts, Skew: skew}
		rng := mrand.New(mrand.NewSource(seed))
		low := 0
		for i := 0; i < draws; i++ {
			_, args := w.Next(rng)
			a, err := strconv.Atoi(args[0])
			if err != nil || a < 0 || a >= accounts {
				t.Fatalf("bad account %q", args[0])
			}
			if a < accounts/10 {
				low++
			}
		}
		return low
	}
	uniform := countLow(0, 1)
	skewed := countLow(2.0, 1)
	// Uniform: ~10% of draws hit the low decile. Zipf(2.0): the vast
	// majority do.
	if uniform > draws/4 {
		t.Errorf("uniform low-decile share too high: %d/%d", uniform, draws)
	}
	if skewed < draws/2 {
		t.Errorf("skewed low-decile share too low: %d/%d", skewed, draws)
	}
	if again := countLow(2.0, 1); again != skewed {
		t.Errorf("skewed workload not deterministic: %d vs %d", skewed, again)
	}
}
