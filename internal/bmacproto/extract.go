package bmacproto

import (
	"fmt"

	"bmac/internal/block"
	"bmac/internal/wire"
)

// This file is the DataExtractor/DataProcessor pair of the
// protocol_processor (paper Figure 5b): given reconstructed section bytes
// and the packet's pointer annotations, it pulls out exactly the fields the
// block processor needs — signatures, creator, endorsements, read and write
// sets — using targeted scans instead of a full recursive unmarshal.

// txExtract is everything the hardware needs from one transaction section.
type txExtract struct {
	PayloadBytes []byte // the exact bytes the client signed
	Signature    []byte // client DER signature
	CreatorCert  []byte
	CCName       string
	PRPBytes     []byte // proposal response payload (endorsement signing base)
	Endorsements []block.Endorsement
	Reads        []block.KVRead
	Writes       []block.KVWrite
}

// field numbers duplicated from the block package wire contract; the
// hardware is generated against the same schema.
const (
	xEnvPayload = 1
	xEnvSig     = 2

	xPayloadChHdr  = 1
	xPayloadSigHdr = 2
	xPayloadData   = 3

	xChHdrCC = 4

	xSigHdrCreator = 1

	xTxAction        = 1
	xTxActionPayload = 2

	xCAPAction = 2

	xEAPRP = 1
	xEAEnd = 2

	xEndCert = 1
	xEndSig  = 2

	xPRPExt = 2

	xCCAResults = 1

	xRWRead  = 1
	xRWWrite = 2

	xReadKey      = 1
	xReadBlockNum = 2
	xReadTxNum    = 3

	xWriteKey = 1
	xWriteVal = 2
)

// subField returns the payload of the first length-delimited field num in
// msg, or nil.
func subField(msg []byte, num int) []byte {
	off, l, ok := wire.FieldOffset(msg, num)
	if !ok {
		return nil
	}
	return msg[off : off+l]
}

// extractTx pulls the validation-relevant fields from reconstructed
// envelope bytes, using pointer annotations for the top-level fields when
// available.
func extractTx(envBytes []byte, pkt *Packet) (*txExtract, error) {
	x := &txExtract{}

	// Top level: pointer annotations let the hardware skip the scan.
	if ptr, ok := pkt.FindPointer(PtrPayload); ok && int(ptr.Offset+ptr.Length) <= len(envBytes) {
		x.PayloadBytes = envBytes[ptr.Offset : ptr.Offset+ptr.Length]
	} else {
		x.PayloadBytes = subField(envBytes, xEnvPayload)
	}
	if ptr, ok := pkt.FindPointer(PtrEnvelopeSignature); ok && int(ptr.Offset+ptr.Length) <= len(envBytes) {
		x.Signature = envBytes[ptr.Offset : ptr.Offset+ptr.Length]
	} else {
		x.Signature = subField(envBytes, xEnvSig)
	}
	if x.PayloadBytes == nil || x.Signature == nil {
		return nil, fmt.Errorf("bmacproto: tx section missing payload or signature")
	}

	// payload -> channel header -> chaincode name
	if ch := subField(x.PayloadBytes, xPayloadChHdr); ch != nil {
		if cc := subField(ch, xChHdrCC); cc != nil {
			x.CCName = string(cc)
		}
	}
	// payload -> signature header -> creator certificate
	if sh := subField(x.PayloadBytes, xPayloadSigHdr); sh != nil {
		x.CreatorCert = subField(sh, xSigHdrCreator)
	}
	if x.CreatorCert == nil {
		return nil, fmt.Errorf("bmacproto: tx section missing creator")
	}

	// payload -> tx data -> action -> chaincode action payload -> endorsed action
	txData := subField(x.PayloadBytes, xPayloadData)
	if txData == nil {
		return nil, fmt.Errorf("bmacproto: tx section missing transaction data")
	}
	action := subField(txData, xTxAction)
	if action == nil {
		return nil, fmt.Errorf("bmacproto: transaction has no action")
	}
	cap2 := subField(action, xTxActionPayload)
	if cap2 == nil {
		return nil, fmt.Errorf("bmacproto: action has no payload")
	}
	ea := subField(cap2, xCAPAction)
	if ea == nil {
		return nil, fmt.Errorf("bmacproto: missing endorsed action")
	}
	x.PRPBytes = subField(ea, xEAPRP)
	if x.PRPBytes == nil {
		return nil, fmt.Errorf("bmacproto: missing proposal response payload")
	}

	// Endorsements: iterate the repeated field.
	r := wire.NewReader(ea)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if num != xEAEnd {
			r.Skip(wt)
			continue
		}
		eBytes := r.Bytes()
		e := block.Endorsement{
			Endorser:  subField(eBytes, xEndCert),
			Signature: subField(eBytes, xEndSig),
		}
		if e.Endorser == nil || e.Signature == nil {
			return nil, fmt.Errorf("bmacproto: malformed endorsement")
		}
		x.Endorsements = append(x.Endorsements, e)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bmacproto: endorsed action scan: %w", err)
	}

	// prp -> extension (chaincode action) -> results (rwset)
	ext := subField(x.PRPBytes, xPRPExt)
	if ext != nil {
		if rw := subField(ext, xCCAResults); rw != nil {
			if err := extractRWSet(rw, x); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}

func extractRWSet(rw []byte, x *txExtract) error {
	r := wire.NewReader(rw)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case xRWRead:
			entry := r.Bytes()
			var kr block.KVRead
			er := wire.NewReader(entry)
			for {
				en, ewt, eok := er.Next()
				if !eok {
					break
				}
				switch en {
				case xReadKey:
					kr.Key = er.String()
				case xReadBlockNum:
					kr.Version.BlockNum = er.Uint()
				case xReadTxNum:
					kr.Version.TxNum = er.Uint()
				default:
					er.Skip(ewt)
				}
			}
			if err := er.Err(); err != nil {
				return fmt.Errorf("bmacproto: rwset read entry: %w", err)
			}
			x.Reads = append(x.Reads, kr)
		case xRWWrite:
			entry := r.Bytes()
			var kw block.KVWrite
			er := wire.NewReader(entry)
			for {
				en, ewt, eok := er.Next()
				if !eok {
					break
				}
				switch en {
				case xWriteKey:
					kw.Key = er.String()
				case xWriteVal:
					kw.Value = er.Bytes()
				default:
					er.Skip(ewt)
				}
			}
			if err := er.Err(); err != nil {
				return fmt.Errorf("bmacproto: rwset write entry: %w", err)
			}
			x.Writes = append(x.Writes, kw)
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("bmacproto: rwset scan: %w", err)
	}
	return nil
}
