package bmacproto

import (
	"sync"
	"testing"
	"time"

	"bmac/internal/identity"
)

// lossySink drops every Nth packet before handing the rest to a
// GBNReceiver. Surviving packets are delivered asynchronously but IN ORDER
// (a single consumer goroutine), like a lossy-but-FIFO switch hop.
type lossySink struct {
	mu        sync.Mutex
	dropEvery int
	sent      int
	dropped   int
	queue     chan []byte
}

func newLossySink(recv *GBNReceiver, dropEvery int) *lossySink {
	l := &lossySink{dropEvery: dropEvery, queue: make(chan []byte, 4096)}
	go func() {
		for p := range l.queue {
			recv.ProcessPacket(p)
		}
	}()
	return l
}

func (l *lossySink) SendPacket(p []byte) error {
	l.mu.Lock()
	l.sent++
	drop := l.dropEvery > 0 && l.sent%l.dropEvery == 0
	if drop {
		l.dropped++
	}
	l.mu.Unlock()
	if drop {
		return nil
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	l.queue <- buf
	return nil
}

func TestGBNDeliversOverLossyLink(t *testing.T) {
	f := newFixture(t) // from bmacproto_test.go

	// Fresh receiver chain with GBN framing and 1-in-7 loss.
	bufs := NewBuffers()
	recv := NewReceiver(f.recvCache, bufs)
	go func() {
		for range recv.Blocks() {
		}
	}()
	drainBufs(bufs)

	var gbnSender *GBNSender
	gbnRecv := NewGBNReceiver(recv, AckFunc(func(cum uint64) error {
		gbnSender.HandleAck(cum)
		return nil
	}))
	loss := newLossySink(gbnRecv, 7)
	gbnSender = NewGBNSender(loss, 16, 20*time.Millisecond)
	defer gbnSender.Close()

	sender := NewSender(identity.NewCache(), gbnSender)
	if err := sender.RegisterNetwork(f.net); err != nil {
		t.Fatal(err)
	}
	blk := f.makeBlock(t, 0, 10)
	if _, err := sender.SendBlock(blk); err != nil {
		t.Fatal(err)
	}

	// Despite drops, the block must complete via retransmission.
	deadline := time.Now().Add(10 * time.Second)
	for recv.Stats().Transactions < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("block never completed: %d/10 txs, %d dropped, %d retransmitted",
				recv.Stats().Transactions, loss.dropped, gbnSender.Retransmissions())
		}
		time.Sleep(time.Millisecond)
	}
	if loss.dropped == 0 {
		t.Error("loss injection did not fire")
	}
	if gbnSender.Retransmissions() == 0 {
		t.Error("no retransmissions despite loss")
	}
	// Eventually everything is acknowledged.
	deadline = time.Now().Add(5 * time.Second)
	for gbnSender.Outstanding() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outstanding = %d after completion", gbnSender.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGBNInOrderNoRetransmissions(t *testing.T) {
	f := newFixture(t)
	bufs := NewBuffers()
	recv := NewReceiver(f.recvCache, bufs)
	go func() {
		for range recv.Blocks() {
		}
	}()
	drainBufs(bufs)

	var gbnSender *GBNSender
	gbnRecv := NewGBNReceiver(recv, AckFunc(func(cum uint64) error {
		gbnSender.HandleAck(cum)
		return nil
	}))
	direct := SinkFunc(func(p []byte) error { return gbnRecv.ProcessPacket(p) })
	gbnSender = NewGBNSender(direct, 32, time.Second)
	defer gbnSender.Close()

	sender := NewSender(identity.NewCache(), gbnSender)
	if err := sender.RegisterNetwork(f.net); err != nil {
		t.Fatal(err)
	}
	blk := f.makeBlock(t, 0, 5)
	if _, err := sender.SendBlock(blk); err != nil {
		t.Fatal(err)
	}
	if recv.Stats().Transactions != 5 {
		t.Errorf("txs = %d", recv.Stats().Transactions)
	}
	if gbnSender.Retransmissions() != 0 {
		t.Errorf("retransmissions = %d on a clean link", gbnSender.Retransmissions())
	}
	if gbnSender.Outstanding() != 0 {
		t.Errorf("outstanding = %d", gbnSender.Outstanding())
	}
	if gbnRecv.Duplicates() != 0 {
		t.Errorf("duplicates = %d", gbnRecv.Duplicates())
	}
}

func TestGBNFrameCodec(t *testing.T) {
	payload := []byte("section data")
	frame := encodeGBN(gbnKindData, 42, payload)
	kind, seq, got, err := decodeGBN(frame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != gbnKindData || seq != 42 || string(got) != string(payload) {
		t.Errorf("decoded %d/%d/%q", kind, seq, got)
	}
	if _, _, _, err := decodeGBN([]byte{1, 2}); err == nil {
		t.Error("short frame accepted")
	}
	if _, _, _, err := decodeGBN(make([]byte, 32)); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestGBNDuplicateDropped(t *testing.T) {
	f := newFixture(t)
	bufs := NewBuffers()
	recv := NewReceiver(f.recvCache, bufs)
	drainBufs(bufs)
	gbnRecv := NewGBNReceiver(recv, AckFunc(func(uint64) error { return nil }))

	pkt := Packet{Type: SectionCacheSync, Seq: uint16(f.e1.ID), Payload: f.e1.Cert}
	frame := encodeGBN(gbnKindData, 0, pkt.Encode())
	if err := gbnRecv.ProcessPacket(frame); err != nil {
		t.Fatal(err)
	}
	if err := gbnRecv.ProcessPacket(frame); err != nil { // duplicate
		t.Fatal(err)
	}
	if gbnRecv.Duplicates() != 1 {
		t.Errorf("duplicates = %d, want 1", gbnRecv.Duplicates())
	}
}

// drainBufs consumes all block-processor FIFOs in the background.
func drainBufs(bufs *Buffers) {
	go func() {
		for {
			if _, ok := bufs.Block.Pop(); !ok {
				return
			}
		}
	}()
	go func() {
		for {
			if _, ok := bufs.Tx.Pop(); !ok {
				return
			}
		}
	}()
	go func() {
		for {
			if _, ok := bufs.Ends.Pop(); !ok {
				return
			}
		}
	}()
	go func() {
		for {
			if _, ok := bufs.Rdset.Pop(); !ok {
				return
			}
		}
	}()
	go func() {
		for {
			if _, ok := bufs.Wrset.Pop(); !ok {
				return
			}
		}
	}()
}
