package bmacproto

import (
	"bytes"
	"fmt"
	"sort"

	"bmac/internal/identity"
)

// DataRemover strips identity certificates out of section bytes, replacing
// each with a locator annotation, and DataInserter reverses the transform.
// Together they implement the sender/receiver halves of the protocol's
// identity compression (paper §3.2, Figure 5).

// stripIdentities scans data for every certificate known to the cache and
// removes all occurrences, returning the stripped bytes and the locators
// (offsets into the ORIGINAL data, ascending). Certificates are long,
// high-entropy DER blobs, so substring matching is unambiguous in practice;
// overlapping matches are rejected defensively.
func stripIdentities(data []byte, certs []cachedCert) (stripped []byte, locs []Locator) {
	type match struct {
		off int
		len int
		id  identity.EncodedID
	}
	var matches []match
	for _, c := range certs {
		start := 0
		for {
			i := bytes.Index(data[start:], c.cert)
			if i < 0 {
				break
			}
			matches = append(matches, match{off: start + i, len: len(c.cert), id: c.id})
			start += i + len(c.cert)
		}
	}
	if len(matches) == 0 {
		return data, nil
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].off < matches[j].off })

	stripped = make([]byte, 0, len(data))
	locs = make([]Locator, 0, len(matches))
	prev := 0
	for _, m := range matches {
		if m.off < prev {
			continue // overlap: keep the earlier match, skip this one
		}
		stripped = append(stripped, data[prev:m.off]...)
		locs = append(locs, Locator{Offset: uint32(m.off), ID: m.id})
		prev = m.off + m.len
	}
	stripped = append(stripped, data[prev:]...)
	return stripped, locs
}

// cachedCert pairs a certificate with its encoded id for the sweep in
// stripIdentities.
type cachedCert struct {
	id   identity.EncodedID
	cert []byte
}

// insertIdentities reconstructs the original section bytes from stripped
// data and locators, looking certificates up in the cache. This is the
// DataInserter module of the protocol_processor.
func insertIdentities(stripped []byte, locs []Locator, cache *identity.Cache) ([]byte, error) {
	if len(locs) == 0 {
		return stripped, nil
	}
	total := len(stripped)
	certs := make([][]byte, len(locs))
	for i, l := range locs {
		cert, ok := cache.CertForID(l.ID)
		if !ok {
			return nil, fmt.Errorf("bmacproto: identity cache miss for %s", l.ID)
		}
		certs[i] = cert
		total += len(cert)
	}
	out := make([]byte, 0, total)
	srcPos := 0 // position in stripped
	origPos := 0
	for i, l := range locs {
		gap := int(l.Offset) - origPos
		if gap < 0 || srcPos+gap > len(stripped) {
			return nil, fmt.Errorf("bmacproto: locator %d offset %d out of range", i, l.Offset)
		}
		out = append(out, stripped[srcPos:srcPos+gap]...)
		srcPos += gap
		origPos += gap
		out = append(out, certs[i]...)
		origPos += len(certs[i])
	}
	out = append(out, stripped[srcPos:]...)
	return out, nil
}
