package bmacproto

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// This file provides the two packet transports used by the repository:
//
//   - UDPSink/UDPListener: real self-contained UDP datagrams on a socket,
//     as the deployed protocol uses (the FPGA filters on the UDP port).
//
//   - MemLink: an in-process link with a configurable bandwidth/latency
//     model, used by the deterministic protocol benchmarks (Figure 9).

// UDPSink sends packets to a UDP destination.
type UDPSink struct {
	conn *net.UDPConn
}

// DialUDP connects a sink to addr (e.g. "127.0.0.1:9309").
func DialUDP(addr string) (*UDPSink, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dial udp %q: %w", addr, err)
	}
	return &UDPSink{conn: conn}, nil
}

var _ PacketSink = (*UDPSink)(nil)

// SendPacket implements PacketSink.
func (u *UDPSink) SendPacket(p []byte) error {
	if _, err := u.conn.Write(p); err != nil {
		return fmt.Errorf("udp send: %w", err)
	}
	return nil
}

// Close closes the socket.
func (u *UDPSink) Close() error { return u.conn.Close() }

// UDPListener receives packets on a UDP socket and feeds a Receiver,
// standing in for the FPGA's Ethernet interface.
type UDPListener struct {
	conn *net.UDPConn
	recv *Receiver

	stop chan struct{}
	done chan struct{}
}

// ListenUDP binds addr (use "127.0.0.1:0" for an ephemeral port) and starts
// the receive loop.
func ListenUDP(addr string, recv *Receiver) (*UDPListener, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("listen udp %q: %w", addr, err)
	}
	l := &UDPListener{
		conn: conn,
		recv: recv,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go l.loop()
	return l, nil
}

// Addr returns the bound address.
func (l *UDPListener) Addr() string { return l.conn.LocalAddr().String() }

func (l *UDPListener) loop() {
	defer close(l.done)
	buf := make([]byte, 1<<17)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-l.stop:
				return
			default:
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		// Errors are counted in receiver stats; a lossy datagram
		// transport cannot propagate them to the sender anyway.
		_ = l.recv.ProcessPacket(pkt) // bmaclint:allow errdiscard (lossy transport: errors land in receiver stats)
	}
}

// Close stops the receive loop and closes the socket.
func (l *UDPListener) Close() error {
	close(l.stop)
	err := l.conn.Close()
	<-l.done
	return err
}

// MemLink is an in-process packet link with optional loss injection. It
// preserves ordering, like a single switch hop in a datacenter.
type MemLink struct {
	mu      sync.Mutex
	recv    *Receiver
	dropped int // guarded by mu
	sent    int // guarded by mu
	// DropEvery drops every Nth packet when > 0 (loss injection).
	DropEvery int
}

// NewMemLink connects a sender to a receiver in-process.
func NewMemLink(recv *Receiver) *MemLink {
	return &MemLink{recv: recv}
}

var _ PacketSink = (*MemLink)(nil)

// SendPacket implements PacketSink: the packet is delivered synchronously.
func (m *MemLink) SendPacket(p []byte) error {
	m.mu.Lock()
	m.sent++
	drop := m.DropEvery > 0 && m.sent%m.DropEvery == 0
	if drop {
		m.dropped++
	}
	m.mu.Unlock()
	if drop {
		return nil
	}
	err := m.recv.ProcessPacket(p)
	if err != nil && !errors.Is(err, ErrNotBMac) {
		return err
	}
	return nil
}

// Dropped reports the number of packets dropped by loss injection.
func (m *MemLink) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}
