package bmacproto

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bmac/internal/identity"
)

// seqRecorder captures the sequence numbers of data frames in wire-arrival
// order.
type seqRecorder struct {
	mu   sync.Mutex
	seqs []uint64
}

func (r *seqRecorder) SendPacket(p []byte) error {
	kind, seq, _, err := decodeGBN(p)
	if err != nil || kind != gbnKindData {
		return err
	}
	r.mu.Lock()
	r.seqs = append(r.seqs, seq)
	r.mu.Unlock()
	return nil
}

// TestGBNConcurrentSendersTransmitInOrder hammers SendPacket from many
// goroutines and asserts the first transmissions hit the wire in strict
// sequence order. Before the fix the transmit happened outside the lock, so
// two senders could assign seq n and n+1 but emit n+1 first — the receiver
// drops it and a spurious go-back-N storm follows. Run with -race.
func TestGBNConcurrentSendersTransmitInOrder(t *testing.T) {
	for round := 0; round < 10; round++ {
		rec := &seqRecorder{}
		// Window >= total sends and a long timeout: no blocking, no
		// retransmissions — every recorded frame is a first transmission.
		s := NewGBNSender(rec, 128, time.Minute)
		const senders, per = 8, 16
		var wg sync.WaitGroup
		for g := 0; g < senders; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := s.SendPacket([]byte("payload")); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		s.Close()
		if len(rec.seqs) != senders*per {
			t.Fatalf("round %d: %d frames on the wire, want %d", round, len(rec.seqs), senders*per)
		}
		for i, seq := range rec.seqs {
			if seq != uint64(i) {
				t.Fatalf("round %d: wire order broken at %d: got seq %d\nfull order: %v",
					round, i, seq, rec.seqs)
			}
		}
	}
}

// TestGBNClosedSenderReportsErrClosed pins the error semantics: a sender
// closed while blocked on a full window — or used after Close — reports
// ErrClosed, not the misleading ErrWindowFull.
func TestGBNClosedSenderReportsErrClosed(t *testing.T) {
	rec := &seqRecorder{}
	s := NewGBNSender(rec, 1, time.Minute) // no ACKs ever: window stays full
	if err := s.SendPacket([]byte("first")); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- s.SendPacket([]byte("second")) // window full: blocks
	}()
	select {
	case err := <-blocked:
		t.Fatalf("send returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked send err = %v, want ErrClosed", err)
		}
		if errors.Is(err, ErrWindowFull) {
			t.Fatal("blocked send reported ErrWindowFull on close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked send never returned after Close")
	}
	if err := s.SendPacket([]byte("after close")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v, want ErrClosed", err)
	}
}

// TestGBNConcurrentSendersDeliverOverLossyLink is the end-to-end version:
// concurrent senders over a lossy link still deliver every payload, in
// order, because first transmissions are serialized and go-back-N recovers
// the drops.
func TestGBNConcurrentSendersDeliverOverLossyLink(t *testing.T) {
	cache := identity.NewCache()
	bufs := NewBuffers()
	recv := NewReceiver(cache, bufs)
	defer recv.Close()
	defer bufs.Close()

	var s *GBNSender
	gbnRecv := NewGBNReceiver(recv, AckFunc(func(cum uint64) error {
		s.HandleAck(cum)
		return nil
	}))
	loss := newLossySink(gbnRecv, 5)
	s = NewGBNSender(loss, 16, 20*time.Millisecond)
	defer s.Close()

	const senders, per = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Non-BMac payloads: the inner receiver ignores them, but
				// GBN sequencing/ACKing is fully exercised.
				if err := s.SendPacket([]byte{0x00, 0x01, 0x02, 0x03}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for s.Outstanding() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Outstanding(); got != 0 {
		t.Fatalf("%d packets never acknowledged", got)
	}
}
