// Package bmacproto implements the Blockchain Machine communication
// protocol (paper §3.2): a hardware-friendly block dissemination protocol
// that breaks a block into self-contained UDP packets.
//
// A block is split into sections — one header section, one section per
// transaction, one metadata section. Before transmission each section is
// transformed twice:
//
//  1. DataRemover replaces every identity certificate (~860 bytes) with
//     nothing, recording a locator annotation {original offset, 16-bit
//     encoded id}. Identities are at least 73% of a block, so this is where
//     the 3.4–5.3x bandwidth saving comes from (Figure 9a).
//
//  2. AnnotationGenerator computes pointer annotations {field, offset,
//     length} into the original section bytes, so the hardware receiver can
//     jump straight to signatures, endorsements and read/write sets without
//     recursively decoding 23 protobuf layers.
//
// Each packet carries an L7 header (fixed part + annotations) followed by
// the stripped section payload, and is fully self-contained: the receiver
// can process it without waiting for other packets, enabling cut-through
// processing with a small buffer footprint (unlike TCP/Gossip, which must
// reassemble the whole marshaled block first).
package bmacproto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bmac/internal/identity"
)

// Magic identifies BMac packets; the PacketProcessor filters on it (the
// hardware additionally filters on the UDP port).
const Magic = 0xB3AC

// Version is the protocol version.
const Version = 1

// SectionType classifies the payload of a packet.
type SectionType uint8

// Section types.
const (
	SectionHeader SectionType = iota + 1
	SectionTx
	SectionMetadata
	SectionCacheSync
)

// String implements fmt.Stringer.
func (s SectionType) String() string {
	switch s {
	case SectionHeader:
		return "header"
	case SectionTx:
		return "tx"
	case SectionMetadata:
		return "metadata"
	case SectionCacheSync:
		return "cachesync"
	default:
		return fmt.Sprintf("section(%d)", uint8(s))
	}
}

// Annotation kinds.
const (
	annLocator = 1
	annPointer = 2
)

// Pointer annotation field kinds: which data field of the original section
// bytes the (offset, length) pair points at.
type PointerField uint16

// Pointer fields emitted by the AnnotationGenerator.
const (
	PtrEnvelopeSignature PointerField = iota + 1
	PtrPayload
	PtrHeaderBytes
	PtrMetaSignature
	PtrMetaNonce
)

// Locator records a removed identity: the byte offset in the ORIGINAL
// section where the certificate began, and its encoded id. Offsets are
// ascending and non-overlapping.
type Locator struct {
	Offset uint32
	ID     identity.EncodedID
}

// Pointer records the position of a data field in the original section.
type Pointer struct {
	Field  PointerField
	Offset uint32
	Length uint32
}

// Packet is one parsed BMac protocol packet.
type Packet struct {
	Type     SectionType
	BlockNum uint64
	Seq      uint16 // transaction index within the block (tx sections)
	NumTxs   uint16 // total transactions in the block (repeated for self-containedness)
	Locators []Locator
	Pointers []Pointer
	Payload  []byte // stripped section bytes
}

// fixed L7 header layout:
//
//	magic(2) version(1) type(1) blockNum(8) seq(2) numTxs(2)
//	numLocators(2) numPointers(2) payloadLen(4)
const fixedHeaderLen = 2 + 1 + 1 + 8 + 2 + 2 + 2 + 2 + 4

const (
	locatorEncLen = 1 + 4 + 2
	pointerEncLen = 1 + 2 + 4 + 4
)

// ErrNotBMac reports a packet that is not a BMac protocol packet (wrong
// magic); the protocol_processor forwards such packets to the host CPU.
var ErrNotBMac = errors.New("bmacproto: not a BMac packet")

// ErrBadPacket reports a malformed BMac packet.
var ErrBadPacket = errors.New("bmacproto: malformed packet")

// EncodedSize returns the wire size of the packet.
func (p *Packet) EncodedSize() int {
	return fixedHeaderLen + len(p.Locators)*locatorEncLen +
		len(p.Pointers)*pointerEncLen + len(p.Payload)
}

// Encode serializes the packet into a self-contained datagram.
func (p *Packet) Encode() []byte {
	out := make([]byte, 0, p.EncodedSize())
	var fixed [fixedHeaderLen]byte
	binary.BigEndian.PutUint16(fixed[0:], Magic)
	fixed[2] = Version
	fixed[3] = byte(p.Type)
	binary.BigEndian.PutUint64(fixed[4:], p.BlockNum)
	binary.BigEndian.PutUint16(fixed[12:], p.Seq)
	binary.BigEndian.PutUint16(fixed[14:], p.NumTxs)
	binary.BigEndian.PutUint16(fixed[16:], uint16(len(p.Locators)))
	binary.BigEndian.PutUint16(fixed[18:], uint16(len(p.Pointers)))
	binary.BigEndian.PutUint32(fixed[20:], uint32(len(p.Payload)))
	out = append(out, fixed[:]...)
	for _, l := range p.Locators {
		out = append(out, annLocator)
		out = binary.BigEndian.AppendUint32(out, l.Offset)
		out = binary.BigEndian.AppendUint16(out, uint16(l.ID))
	}
	for _, ptr := range p.Pointers {
		out = append(out, annPointer)
		out = binary.BigEndian.AppendUint16(out, uint16(ptr.Field))
		out = binary.BigEndian.AppendUint32(out, ptr.Offset)
		out = binary.BigEndian.AppendUint32(out, ptr.Length)
	}
	out = append(out, p.Payload...)
	return out
}

// Decode parses a datagram. It returns ErrNotBMac for non-BMac traffic and
// ErrBadPacket for corrupt BMac packets.
func Decode(data []byte) (*Packet, error) {
	if len(data) < 2 || binary.BigEndian.Uint16(data) != Magic {
		return nil, ErrNotBMac
	}
	if len(data) < fixedHeaderLen {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrBadPacket, len(data))
	}
	if data[2] != Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadPacket, data[2])
	}
	p := &Packet{
		Type:     SectionType(data[3]),
		BlockNum: binary.BigEndian.Uint64(data[4:]),
		Seq:      binary.BigEndian.Uint16(data[12:]),
		NumTxs:   binary.BigEndian.Uint16(data[14:]),
	}
	nLoc := int(binary.BigEndian.Uint16(data[16:]))
	nPtr := int(binary.BigEndian.Uint16(data[18:]))
	payloadLen := int(binary.BigEndian.Uint32(data[20:]))

	pos := fixedHeaderLen
	need := pos + nLoc*locatorEncLen + nPtr*pointerEncLen + payloadLen
	if len(data) < need {
		return nil, fmt.Errorf("%w: truncated (have %d, need %d)", ErrBadPacket, len(data), need)
	}
	if nLoc > 0 {
		p.Locators = make([]Locator, 0, nLoc)
	}
	for i := 0; i < nLoc; i++ {
		if data[pos] != annLocator {
			return nil, fmt.Errorf("%w: expected locator annotation", ErrBadPacket)
		}
		p.Locators = append(p.Locators, Locator{
			Offset: binary.BigEndian.Uint32(data[pos+1:]),
			ID:     identity.EncodedID(binary.BigEndian.Uint16(data[pos+5:])),
		})
		pos += locatorEncLen
	}
	if nPtr > 0 {
		p.Pointers = make([]Pointer, 0, nPtr)
	}
	for i := 0; i < nPtr; i++ {
		if data[pos] != annPointer {
			return nil, fmt.Errorf("%w: expected pointer annotation", ErrBadPacket)
		}
		p.Pointers = append(p.Pointers, Pointer{
			Field:  PointerField(binary.BigEndian.Uint16(data[pos+1:])),
			Offset: binary.BigEndian.Uint32(data[pos+3:]),
			Length: binary.BigEndian.Uint32(data[pos+7:]),
		})
		pos += pointerEncLen
	}
	p.Payload = data[pos : pos+payloadLen]
	return p, nil
}

// FindPointer returns the first pointer annotation for field.
func (p *Packet) FindPointer(field PointerField) (Pointer, bool) {
	for _, ptr := range p.Pointers {
		if ptr.Field == field {
			return ptr, true
		}
	}
	return Pointer{}, false
}
