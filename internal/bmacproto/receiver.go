package bmacproto

import (
	"crypto/ecdsa"
	"fmt"
	"sync"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/fifo"
	"bmac/internal/identity"
)

// VerifyRequest is the {signature, key, data hash} tuple issued to one
// ecdsa_engine instance (paper §3.3).
type VerifyRequest struct {
	Parts  fabcrypto.SignatureParts
	Pub    *ecdsa.PublicKey
	Digest [fabcrypto.HashSize]byte
	// Malformed is set when the request could not be constructed (bad DER,
	// unknown identity); the engine rejects it without computing.
	Malformed bool
}

// Execute runs the verification, exactly what an ecdsa_engine does.
func (v *VerifyRequest) Execute() bool {
	if v.Malformed || v.Pub == nil {
		return false
	}
	return fabcrypto.VerifyParts(v.Pub, v.Digest[:], v.Parts)
}

// BlockEntry is one element of block_fifo.
type BlockEntry struct {
	BlockNum uint64
	NumTxs   int
	Header   block.Header
	Verify   VerifyRequest
}

// TxEntry is one element of tx_fifo (see paper Figure 7: verification
// request, cc_id, num_ends, rdset_size, wrset_size).
type TxEntry struct {
	BlockNum  uint64
	Seq       int
	Verify    VerifyRequest
	CCName    string
	NumEnds   int
	RdsetSize int
	WrsetSize int
}

// EndsEntry is one element of ends_fifo.
type EndsEntry struct {
	BlockNum   uint64
	TxSeq      int
	EndorserID identity.EncodedID
	Verify     VerifyRequest
}

// ReadEntry is one element of rdset_fifo.
type ReadEntry struct {
	BlockNum uint64
	TxSeq    int
	Read     block.KVRead
}

// WriteEntry is one element of wrset_fifo.
type WriteEntry struct {
	BlockNum uint64
	TxSeq    int
	Write    block.KVWrite
}

// Buffers are the FIFO set between protocol_processor and block_processor.
type Buffers struct {
	Block *fifo.FIFO[BlockEntry]
	Tx    *fifo.FIFO[TxEntry]
	Ends  *fifo.FIFO[EndsEntry]
	Rdset *fifo.FIFO[ReadEntry]
	Wrset *fifo.FIFO[WriteEntry]
}

// NewBuffers allocates the FIFO set with hardware-realistic depths.
func NewBuffers() *Buffers {
	return &Buffers{
		Block: fifo.New[BlockEntry](8),
		Tx:    fifo.New[TxEntry](1024),
		Ends:  fifo.New[EndsEntry](4096),
		Rdset: fifo.New[ReadEntry](16384),
		Wrset: fifo.New[WriteEntry](16384),
	}
}

// Close closes every FIFO (end of stream).
func (b *Buffers) Close() {
	b.Block.Close()
	b.Tx.Close()
	b.Ends.Close()
	b.Rdset.Close()
	b.Wrset.Close()
}

// AssembledBlock is the reconstructed block the protocol_processor forwards
// to the host CPU (software side of the BMac peer), with the integrity
// verdict of the streamed data-hash check.
type AssembledBlock struct {
	Block      *block.Block
	DataHashOK bool
}

// ReceiverStats counts receiver activity.
type ReceiverStats struct {
	Packets      int
	Bytes        int64
	NonBMac      int
	BadPackets   int
	Blocks       int
	Transactions int
	CacheSyncs   int
}

// Receiver is the hardware-based protocol receiver (protocol_processor): it
// filters BMac packets, reconstructs sections via the identity cache,
// extracts and post-processes data fields, computes the stream hashes, and
// writes the block processor's FIFOs.
//
// Packets for a block may arrive with transaction sections out of order;
// the receiver reorders per block. The protocol itself has no retransmission
// (paper §5): lost packets stall the affected block, which tests inject and
// observe via PendingBlocks.
type Receiver struct {
	mu    sync.Mutex
	cache *identity.Cache
	bufs  *Buffers
	asm   map[uint64]*blockAsm // guarded by mu
	out   chan AssembledBlock
	stats ReceiverStats // guarded by mu
}

type blockAsm struct {
	header    *block.Header
	numTxs    int
	nextSeq   int
	pendingTx map[uint16]*Packet
	metadata  *Packet
	envelopes []block.Envelope
	hasher    fabcrypto.StreamHasher
}

// NewReceiver creates a receiver writing to bufs; assembled blocks for the
// host CPU are delivered on Blocks().
func NewReceiver(cache *identity.Cache, bufs *Buffers) *Receiver {
	return &Receiver{
		cache: cache,
		bufs:  bufs,
		asm:   make(map[uint64]*blockAsm),
		out:   make(chan AssembledBlock, 16),
	}
}

// Blocks returns the channel of reconstructed blocks (the CPU forwarding
// path in Figure 4b).
func (r *Receiver) Blocks() <-chan AssembledBlock { return r.out }

// Stats returns a copy of the receiver counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// PendingBlocks reports blocks with missing packets (used by loss tests).
func (r *Receiver) PendingBlocks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.asm)
}

// ProcessPacket handles one incoming datagram. Non-BMac packets return
// ErrNotBMac (the hardware forwards them to the CPU unmodified).
func (r *Receiver) ProcessPacket(data []byte) error {
	pkt, err := Decode(data)
	if err != nil {
		r.mu.Lock()
		if err == ErrNotBMac {
			r.stats.NonBMac++
		} else {
			r.stats.BadPackets++
		}
		r.mu.Unlock()
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Packets++
	r.stats.Bytes += int64(len(data))

	switch pkt.Type {
	case SectionCacheSync:
		r.stats.CacheSyncs++
		if err := r.cache.Put(identity.EncodedID(pkt.Seq), pkt.Payload); err != nil {
			r.stats.BadPackets++
			return fmt.Errorf("cache sync: %w", err)
		}
		return nil
	case SectionHeader:
		return r.processHeader(pkt)
	case SectionTx:
		return r.processTxOrQueue(pkt)
	case SectionMetadata:
		return r.processMetadata(pkt)
	default:
		r.stats.BadPackets++
		return fmt.Errorf("%w: unknown section type %d", ErrBadPacket, pkt.Type)
	}
}

// getAsm finds or creates the assembly state for a block. It
// must be called with r.mu held.
func (r *Receiver) getAsm(blockNum uint64, numTxs int) *blockAsm {
	a, ok := r.asm[blockNum]
	if !ok {
		a = &blockAsm{numTxs: numTxs, pendingTx: make(map[uint16]*Packet)}
		r.asm[blockNum] = a
	}
	return a
}

// processHeader handles a header section. It must be called with r.mu
// held (ProcessPacket holds it across the dispatch).
func (r *Receiver) processHeader(pkt *Packet) error {
	orig, err := insertIdentities(pkt.Payload, pkt.Locators, r.cache)
	if err != nil {
		r.stats.BadPackets++
		return err
	}
	hdrBytes := subField(orig, fHdrSecHeader)
	creator := subField(orig, fHdrSecCert)
	nonce := subField(orig, fHdrSecNonce)
	sig := subField(orig, fHdrSecSig)
	if hdrBytes == nil || creator == nil || sig == nil {
		r.stats.BadPackets++
		return fmt.Errorf("%w: incomplete header section", ErrBadPacket)
	}
	hdr, err := block.UnmarshalHeader(hdrBytes)
	if err != nil {
		r.stats.BadPackets++
		return err
	}

	entry := BlockEntry{
		BlockNum: pkt.BlockNum,
		NumTxs:   int(pkt.NumTxs),
		Header:   *hdr,
		Verify:   r.makeVerifyRequest(sig, creator, block.OrdererSigningBytes(hdr, nonce, creator)),
	}

	a := r.getAsm(pkt.BlockNum, int(pkt.NumTxs))
	a.header = hdr
	a.numTxs = int(pkt.NumTxs)

	if err := r.bufs.Block.Push(entry); err != nil {
		return fmt.Errorf("block_fifo: %w", err)
	}
	r.stats.Blocks++
	return r.drain(pkt.BlockNum)
}

// makeVerifyRequest builds an ecdsa_engine request: DER decode the
// signature (DataProcessor post-processor), look the public key up in the
// identity cache (skipping X.509 parsing on the hot path), and hash the
// message (HashCalculator).
func (r *Receiver) makeVerifyRequest(derSig, cert, msg []byte) VerifyRequest {
	var req VerifyRequest
	parts, err := fabcrypto.DecodeDERToParts(derSig)
	if err != nil {
		req.Malformed = true
		return req
	}
	req.Parts = parts
	if id, ok := r.cache.IDForCert(cert); ok {
		if pub, ok := r.cache.PublicKeyForID(id); ok {
			req.Pub = pub
		}
	}
	if req.Pub == nil {
		// Identity not in cache: fall back to the X.509 post-processor.
		pub, err := fabcrypto.PublicKeyFromCert(cert)
		if err != nil {
			req.Malformed = true
			return req
		}
		req.Pub = pub
	}
	req.Digest = fabcrypto.Hash(msg)
	return req
}

// processTxOrQueue handles a tx section, buffering out-of-order arrivals.
// It must be called with r.mu held.
func (r *Receiver) processTxOrQueue(pkt *Packet) error {
	a := r.getAsm(pkt.BlockNum, int(pkt.NumTxs))
	if int(pkt.Seq) != a.nextSeq {
		a.pendingTx[pkt.Seq] = pkt // out of order: hold
		return nil
	}
	if err := r.processTx(a, pkt); err != nil {
		return err
	}
	return r.drain(pkt.BlockNum)
}

// drain processes any buffered in-order tx sections and finalizes the block
// once every transaction and the metadata section have been handled. It
// must be called with r.mu held.
func (r *Receiver) drain(blockNum uint64) error {
	a, ok := r.asm[blockNum]
	if !ok {
		return nil
	}
	for {
		pkt, ok := a.pendingTx[uint16(a.nextSeq)]
		if !ok {
			break
		}
		delete(a.pendingTx, uint16(a.nextSeq))
		if err := r.processTx(a, pkt); err != nil {
			return err
		}
	}
	if a.header != nil && a.nextSeq == a.numTxs && a.metadata != nil {
		return r.finalize(blockNum, a)
	}
	return nil
}

// processTx handles one in-order tx section. It must be called with r.mu
// held.
func (r *Receiver) processTx(a *blockAsm, pkt *Packet) error {
	orig, err := insertIdentities(pkt.Payload, pkt.Locators, r.cache)
	if err != nil {
		r.stats.BadPackets++
		return err
	}
	x, err := extractTx(orig, pkt)
	if err != nil {
		r.stats.BadPackets++
		return err
	}

	// Stream hashes: block data hash accumulates the reconstructed
	// envelope bytes; the tx digest covers the signed payload.
	a.hasher.Write(orig)

	seq := int(pkt.Seq)
	for _, e := range x.Endorsements {
		id, _ := r.cache.IDForCert(e.Endorser)
		entry := EndsEntry{
			BlockNum:   pkt.BlockNum,
			TxSeq:      seq,
			EndorserID: id,
			Verify: r.makeVerifyRequest(e.Signature, e.Endorser,
				block.EndorsementSigningBytes(x.PRPBytes, e.Endorser)),
		}
		if err := r.bufs.Ends.Push(entry); err != nil {
			return fmt.Errorf("ends_fifo: %w", err)
		}
	}
	for _, rd := range x.Reads {
		if err := r.bufs.Rdset.Push(ReadEntry{BlockNum: pkt.BlockNum, TxSeq: seq, Read: rd}); err != nil {
			return fmt.Errorf("rdset_fifo: %w", err)
		}
	}
	for _, w := range x.Writes {
		kw := block.KVWrite{Key: w.Key, Value: append([]byte(nil), w.Value...)}
		if err := r.bufs.Wrset.Push(WriteEntry{BlockNum: pkt.BlockNum, TxSeq: seq, Write: kw}); err != nil {
			return fmt.Errorf("wrset_fifo: %w", err)
		}
	}
	txEntry := TxEntry{
		BlockNum:  pkt.BlockNum,
		Seq:       seq,
		Verify:    r.makeVerifyRequest(x.Signature, x.CreatorCert, x.PayloadBytes),
		CCName:    x.CCName,
		NumEnds:   len(x.Endorsements),
		RdsetSize: len(x.Reads),
		WrsetSize: len(x.Writes),
	}
	if err := r.bufs.Tx.Push(txEntry); err != nil {
		return fmt.Errorf("tx_fifo: %w", err)
	}
	r.stats.Transactions++

	// Keep the envelope for CPU-side block reconstruction.
	env := block.Envelope{
		PayloadBytes: append([]byte(nil), x.PayloadBytes...),
		Signature:    append([]byte(nil), x.Signature...),
	}
	a.envelopes = append(a.envelopes, env)
	a.nextSeq++
	return nil
}

// processMetadata handles the metadata section. It must be called with
// r.mu held.
func (r *Receiver) processMetadata(pkt *Packet) error {
	a := r.getAsm(pkt.BlockNum, int(pkt.NumTxs))
	a.metadata = pkt
	return r.drain(pkt.BlockNum)
}

// finalize reconstructs the assembled block and hands it to the output
// channel. It must be called with r.mu held.
func (r *Receiver) finalize(blockNum uint64, a *blockAsm) error {
	delete(r.asm, blockNum)
	dataHash := a.hasher.Sum()
	ok := bytesEqual(dataHash, a.header.DataHash)

	blk := &block.Block{
		Header:    *a.header,
		Envelopes: a.envelopes,
	}
	blk.Metadata.ValidationFlags = make([]byte, len(a.envelopes))

	select {
	case r.out <- AssembledBlock{Block: blk, DataHashOK: ok}:
	default:
		// CPU not draining; block until it does (backpressure). The lock
		// is dropped for the blocking send and retaken before returning
		// to the locked caller — no lock is nested inside another here.
		r.mu.Unlock()
		r.out <- AssembledBlock{Block: blk, DataHashOK: ok}
		r.mu.Lock() // bmaclint:allow lockorder (reacquire after release above, never nested)
	}
	return nil
}

// Close closes the assembled-block channel; call once no more packets will
// be processed.
func (r *Receiver) Close() {
	close(r.out)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
