package bmacproto

import (
	"bytes"
	"errors"
	"testing"

	"bmac/internal/block"
	"bmac/internal/identity"
)

// fixture builds a 2-org network with preloaded caches and a ready sender/
// receiver pair over an in-memory link.
type fixture struct {
	net       *identity.Network
	client    *identity.Identity
	orderer   *identity.Identity
	e1, e2    *identity.Identity
	sendCache *identity.Cache
	recvCache *identity.Cache
	bufs      *Buffers
	recv      *Receiver
	sender    *Sender
	link      *MemLink
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	n := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(org string, role identity.Role) *identity.Identity {
		id, err := n.NewIdentity(org, role)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	f := &fixture{
		net:     n,
		client:  mk("Org1", identity.RoleClient),
		orderer: mk("Org1", identity.RoleOrderer),
		e1:      mk("Org1", identity.RolePeer),
		e2:      mk("Org2", identity.RolePeer),
	}
	f.sendCache = identity.NewCache()
	f.recvCache = identity.NewCache()
	f.bufs = NewBuffers()
	f.recv = NewReceiver(f.recvCache, f.bufs)
	f.link = NewMemLink(f.recv)
	f.sender = NewSender(f.sendCache, f.link)
	// Register identities; cache-sync packets flow to the receiver cache.
	if err := f.sender.RegisterNetwork(n); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) makeBlock(t testing.TB, num uint64, txs int) *block.Block {
	t.Helper()
	envs := make([]block.Envelope, 0, txs)
	for i := 0; i < txs; i++ {
		env, err := block.NewEndorsedEnvelope(block.TxSpec{
			Creator:   f.client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet: block.RWSet{
				Reads:  []block.KVRead{{Key: "acct1", Version: block.Version{BlockNum: 1}}},
				Writes: []block.KVWrite{{Key: "acct1", Value: []byte("42")}},
			},
			Endorsers: []*identity.Identity{f.e1, f.e2},
		})
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	blk, err := block.NewBlock(num, nil, envs, f.orderer)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Type:     SectionTx,
		BlockNum: 42,
		Seq:      7,
		NumTxs:   100,
		Locators: []Locator{{Offset: 12, ID: identity.Encode(1, identity.RolePeer, 0)}},
		Pointers: []Pointer{{Field: PtrPayload, Offset: 2, Length: 90}},
		Payload:  []byte("stripped section data"),
	}
	enc := p.Encode()
	if len(enc) != p.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", p.EncodedSize(), len(enc))
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.BlockNum != p.BlockNum || got.Seq != p.Seq || got.NumTxs != p.NumTxs {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Locators) != 1 || got.Locators[0] != p.Locators[0] {
		t.Errorf("locators = %+v", got.Locators)
	}
	if len(got.Pointers) != 1 || got.Pointers[0] != p.Pointers[0] {
		t.Errorf("pointers = %+v", got.Pointers)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload mismatch")
	}
}

func TestDecodeRejectsNonBMac(t *testing.T) {
	if _, err := Decode([]byte{0x45, 0x00, 0x01, 0x02}); !errors.Is(err, ErrNotBMac) {
		t.Errorf("err = %v, want ErrNotBMac", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrNotBMac) {
		t.Errorf("nil err = %v, want ErrNotBMac", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	p := &Packet{Type: SectionHeader, BlockNum: 1, Payload: []byte("xyz")}
	enc := p.Encode()
	for _, cut := range []int{3, fixedHeaderLen - 1, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); !errors.Is(err, ErrBadPacket) {
			t.Errorf("cut %d: err = %v, want ErrBadPacket", cut, err)
		}
	}
}

func TestStripInsertRoundTrip(t *testing.T) {
	f := newFixture(t)
	// Build data with two certs embedded.
	data := append([]byte("prefix-"), f.e1.Cert...)
	data = append(data, []byte("-mid-")...)
	data = append(data, f.e2.Cert...)
	data = append(data, []byte("-suffix")...)

	certs := []cachedCert{
		{id: f.e1.ID, cert: f.e1.Cert},
		{id: f.e2.ID, cert: f.e2.Cert},
	}
	stripped, locs := stripIdentities(data, certs)
	if len(locs) != 2 {
		t.Fatalf("locators = %d, want 2", len(locs))
	}
	saved := len(data) - len(stripped)
	if saved != len(f.e1.Cert)+len(f.e2.Cert) {
		t.Errorf("saved %d bytes, want %d", saved, len(f.e1.Cert)+len(f.e2.Cert))
	}

	back, err := insertIdentities(stripped, locs, f.recvCache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Error("strip/insert is not lossless")
	}
}

func TestStripRepeatedIdentity(t *testing.T) {
	f := newFixture(t)
	data := append(append([]byte{}, f.e1.Cert...), f.e1.Cert...) // twice
	stripped, locs := stripIdentities(data, []cachedCert{{id: f.e1.ID, cert: f.e1.Cert}})
	if len(locs) != 2 || len(stripped) != 0 {
		t.Fatalf("locs=%d stripped=%d", len(locs), len(stripped))
	}
	back, err := insertIdentities(stripped, locs, f.recvCache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Error("repeated identity round trip failed")
	}
}

func TestInsertCacheMiss(t *testing.T) {
	empty := identity.NewCache()
	_, err := insertIdentities([]byte{}, []Locator{{Offset: 0, ID: 0x0101}}, empty)
	if err == nil {
		t.Error("expected cache-miss error")
	}
}

func TestEncodeBlockBandwidthSavings(t *testing.T) {
	f := newFixture(t)
	blk := f.makeBlock(t, 1, 50)
	gossipSize := len(block.Marshal(blk))

	_, stats, err := f.sender.EncodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != 52 { // header + 50 tx + metadata
		t.Errorf("packets = %d, want 52", stats.Packets)
	}
	ratio := float64(gossipSize) / float64(stats.Bytes)
	// Paper: 3.4x–5.3x smaller with 2 endorsements. Require at least 2x.
	if ratio < 2 {
		t.Errorf("compression ratio = %.2f, want >= 2 (paper: 3.4-5.3)", ratio)
	}
	t.Logf("gossip=%d bytes, bmac=%d bytes, ratio=%.2fx", gossipSize, stats.Bytes, ratio)
}

func TestEndToEndBlockDelivery(t *testing.T) {
	f := newFixture(t)
	blk := f.makeBlock(t, 0, 5)
	if _, err := f.sender.SendBlock(blk); err != nil {
		t.Fatal(err)
	}

	// Block entry with a valid orderer verification request.
	be, ok := f.bufs.Block.TryPop()
	if !ok {
		t.Fatal("block_fifo empty")
	}
	if be.BlockNum != 0 || be.NumTxs != 5 {
		t.Errorf("block entry = %+v", be)
	}
	if !be.Verify.Execute() {
		t.Error("orderer signature verification request failed")
	}

	// 5 tx entries, each verifying, with correct counts.
	for i := 0; i < 5; i++ {
		te, ok := f.bufs.Tx.TryPop()
		if !ok {
			t.Fatalf("tx_fifo empty at %d", i)
		}
		if te.Seq != i || te.CCName != "smallbank" {
			t.Errorf("tx entry %d = %+v", i, te)
		}
		if te.NumEnds != 2 || te.RdsetSize != 1 || te.WrsetSize != 1 {
			t.Errorf("tx %d counts = %d/%d/%d", i, te.NumEnds, te.RdsetSize, te.WrsetSize)
		}
		if !te.Verify.Execute() {
			t.Errorf("tx %d client signature failed", i)
		}
	}

	// 10 endorsement entries, all verifying, with encoded endorser ids.
	for i := 0; i < 10; i++ {
		ee, ok := f.bufs.Ends.TryPop()
		if !ok {
			t.Fatalf("ends_fifo empty at %d", i)
		}
		if !ee.Verify.Execute() {
			t.Errorf("endorsement %d failed", i)
		}
		wantOrg := uint8(1 + i%2)
		if ee.EndorserID.Org() != wantOrg {
			t.Errorf("endorsement %d org = %d, want %d", i, ee.EndorserID.Org(), wantOrg)
		}
	}

	// Read/write set entries.
	for i := 0; i < 5; i++ {
		re, ok := f.bufs.Rdset.TryPop()
		if !ok || re.Read.Key != "acct1" {
			t.Errorf("rdset %d: %+v ok=%v", i, re, ok)
		}
		we, ok := f.bufs.Wrset.TryPop()
		if !ok || string(we.Write.Value) != "42" {
			t.Errorf("wrset %d: %+v ok=%v", i, we, ok)
		}
	}

	// Assembled block forwarded to the CPU with the data hash verified.
	ab := <-f.recv.Blocks()
	if !ab.DataHashOK {
		t.Error("data hash check failed")
	}
	if len(ab.Block.Envelopes) != 5 {
		t.Errorf("assembled envelopes = %d", len(ab.Block.Envelopes))
	}
	// The reconstructed envelopes must be byte-identical to the originals.
	for i := range blk.Envelopes {
		if !bytes.Equal(block.MarshalEnvelope(&ab.Block.Envelopes[i]),
			block.MarshalEnvelope(&blk.Envelopes[i])) {
			t.Errorf("envelope %d not byte-identical", i)
		}
	}
}

func TestOutOfOrderTxSections(t *testing.T) {
	f := newFixture(t)
	blk := f.makeBlock(t, 3, 4)
	packets, _, err := f.sender.EncodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	// packets: [header, tx0, tx1, tx2, tx3, metadata]. Deliver txs reversed.
	order := []int{0, 4, 3, 2, 1, 5}
	for _, idx := range order {
		if err := f.recv.ProcessPacket(packets[idx]); err != nil {
			t.Fatalf("packet %d: %v", idx, err)
		}
	}
	// Tx entries must still come out in sequence order.
	for i := 0; i < 4; i++ {
		te, ok := f.bufs.Tx.TryPop()
		if !ok || te.Seq != i {
			t.Fatalf("tx %d: got seq %d ok=%v", i, te.Seq, ok)
		}
	}
	ab := <-f.recv.Blocks()
	if !ab.DataHashOK {
		t.Error("data hash failed after reorder")
	}
	if f.recv.PendingBlocks() != 0 {
		t.Error("assembly state leaked")
	}
}

func TestPacketLossStallsBlock(t *testing.T) {
	f := newFixture(t)
	blk := f.makeBlock(t, 0, 3)
	packets, _, err := f.sender.EncodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	// Drop tx1 (index 2).
	for i, p := range packets {
		if i == 2 {
			continue
		}
		if err := f.recv.ProcessPacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if f.recv.PendingBlocks() != 1 {
		t.Errorf("pending = %d, want 1 (stalled block)", f.recv.PendingBlocks())
	}
	select {
	case <-f.recv.Blocks():
		t.Error("incomplete block was delivered")
	default:
	}
	// Late arrival completes the block.
	if err := f.recv.ProcessPacket(packets[2]); err != nil {
		t.Fatal(err)
	}
	ab := <-f.recv.Blocks()
	if !ab.DataHashOK || len(ab.Block.Envelopes) != 3 {
		t.Error("late completion failed")
	}
}

func TestCorruptSignatureYieldsFailingRequest(t *testing.T) {
	f := newFixture(t)
	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator:          f.client,
		Chaincode:        "cc",
		Channel:          "ch1",
		Endorsers:        []*identity.Identity{f.e1},
		CorruptClientSig: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := block.NewBlock(0, nil, []block.Envelope{*env}, f.orderer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.sender.SendBlock(blk); err != nil {
		t.Fatal(err)
	}
	te, ok := f.bufs.Tx.TryPop()
	if !ok {
		t.Fatal("tx_fifo empty")
	}
	if te.Verify.Execute() {
		t.Error("corrupt client signature verified in hardware path")
	}
}

func TestNonBMacTrafficForwarded(t *testing.T) {
	f := newFixture(t)
	err := f.recv.ProcessPacket([]byte{0x01, 0x02, 0x03})
	if !errors.Is(err, ErrNotBMac) {
		t.Errorf("err = %v, want ErrNotBMac", err)
	}
	if f.recv.Stats().NonBMac != 1 {
		t.Error("non-BMac packet not counted")
	}
}

func TestUDPTransport(t *testing.T) {
	f := newFixture(t)
	// Fresh receiver over real UDP loopback.
	recvCache := identity.NewCache()
	if err := recvCache.Preload(f.net); err != nil {
		t.Fatal(err)
	}
	bufs := NewBuffers()
	recv := NewReceiver(recvCache, bufs)
	listener, err := ListenUDP("127.0.0.1:0", recv)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	sink, err := DialUDP(listener.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	sender := NewSender(identity.NewCache(), sink)
	if err := sender.RegisterNetwork(f.net); err != nil {
		t.Fatal(err)
	}
	blk := f.makeBlock(t, 0, 3)
	if _, err := sender.SendBlock(blk); err != nil {
		t.Fatal(err)
	}
	ab := <-recv.Blocks()
	if !ab.DataHashOK || len(ab.Block.Envelopes) != 3 {
		t.Errorf("UDP delivery: ok=%v envs=%d", ab.DataHashOK, len(ab.Block.Envelopes))
	}
}

func TestVerifyRequestMalformed(t *testing.T) {
	var req VerifyRequest
	req.Malformed = true
	if req.Execute() {
		t.Error("malformed request executed")
	}
	var nilPub VerifyRequest
	if nilPub.Execute() {
		t.Error("nil-pubkey request executed")
	}
}

func TestReceiverStats(t *testing.T) {
	f := newFixture(t)
	blk := f.makeBlock(t, 0, 2)
	if _, err := f.sender.SendBlock(blk); err != nil {
		t.Fatal(err)
	}
	s := f.recv.Stats()
	if s.Blocks != 1 || s.Transactions != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.CacheSyncs == 0 {
		t.Error("cache syncs not counted")
	}
}

func TestSectionTypeStrings(t *testing.T) {
	if SectionHeader.String() != "header" || SectionTx.String() != "tx" ||
		SectionMetadata.String() != "metadata" || SectionCacheSync.String() != "cachesync" {
		t.Error("section type strings wrong")
	}
}

func BenchmarkEncodeBlock150(b *testing.B) {
	f := newFixture(b)
	blk := f.makeBlock(b, 1, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.sender.EncodeBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolProcessor measures the receiver's packet processing
// rate, the software analogue of the 11 Gbps / 996k tps hardware figure.
func BenchmarkProtocolProcessor(b *testing.B) {
	f := newFixture(b)
	blk := f.makeBlock(b, 0, 150)
	packets, stats, err := f.sender.EncodeBlock(blk)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(stats.Bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bufs := NewBuffers()
		recv := NewReceiver(f.recvCache, bufs)
		go func() { // drain fifos
			for {
				if _, ok := bufs.Tx.Pop(); !ok {
					return
				}
			}
		}()
		go func() {
			for {
				if _, ok := bufs.Ends.Pop(); !ok {
					return
				}
			}
		}()
		go func() {
			for range recv.Blocks() {
			}
		}()
		for j, p := range packets {
			// Rewrite block numbers so each iteration is a fresh block.
			pkt, err := Decode(p)
			if err != nil {
				b.Fatal(err)
			}
			pkt.BlockNum = uint64(i)
			if err := recv.ProcessPacket(pkt.Encode()); err != nil {
				b.Fatalf("packet %d: %v", j, err)
			}
		}
		bufs.Close()
		recv.Close()
	}
}

// TestTamperedPayloadFailsDataHash corrupts one transaction section's
// payload in flight: the block still assembles, but the streamed data-hash
// check flags the mismatch, so the CPU side treats the block as invalid.
func TestTamperedPayloadFailsDataHash(t *testing.T) {
	f := newFixture(t)
	blk := f.makeBlock(t, 0, 3)
	packets, _, err := f.sender.EncodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of tx section 1 (packet index 2).
	pkt, err := Decode(packets[2])
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), pkt.Payload...)
	tampered[len(tampered)/2] ^= 0xff
	pkt.Payload = tampered
	packets[2] = pkt.Encode()

	for _, p := range packets {
		// Tampering may corrupt structure; receiver errors are acceptable,
		// delivery of a block with a wrong data hash is what we check.
		_ = f.recv.ProcessPacket(p)
	}
	select {
	case ab := <-f.recv.Blocks():
		if ab.DataHashOK {
			t.Error("tampered block passed the data hash check")
		}
	default:
		// Structural corruption stalled the block entirely — also safe.
		if f.recv.Stats().BadPackets == 0 && f.recv.PendingBlocks() == 0 {
			t.Error("tampered packet silently vanished")
		}
	}
}

func FuzzDecodePacket(f *testing.F) {
	fx := newFixture(f)
	blk := fx.makeBlock(f, 0, 1)
	packets, _, err := fx.sender.EncodeBlock(blk)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range packets {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data) // must never panic
		if err == nil {
			pkt.Encode()
		}
	})
}
