package bmacproto

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"
)

// Go-Back-N retransmission (paper §5): "existing schemes such as
// Go-Back-N can be used as it has been used in RDMA over Ethernet". The
// base protocol has no retransmission because datacenter links rarely
// drop; this optional layer adds it for lossy paths.
//
// Every data packet is wrapped in a GBN header carrying a stream-wide
// sequence number. The receiver delivers in order, drops out-of-window
// packets, and returns cumulative ACKs on a side channel; the sender keeps
// a window of unacknowledged packets and retransmits from the first
// unacked sequence after a timeout.

// gbn header: magic(2) kind(1) seq(8)
const (
	gbnHeaderLen = 2 + 1 + 8

	gbnKindData = 1
	gbnKindAck  = 2
)

// ErrWindowFull reports a send that would exceed the GBN window while the
// receiver is unreachable.
var ErrWindowFull = errors.New("bmacproto: go-back-n window full")

// ErrClosed reports a send on a closed GBN sender.
var ErrClosed = errors.New("bmacproto: go-back-n sender closed")

// AckSink carries cumulative ACKs back to the sender (the reverse path).
type AckSink interface {
	SendAck(cumulative uint64) error
}

// AckFunc adapts a function to AckSink.
type AckFunc func(uint64) error

// SendAck implements AckSink.
func (f AckFunc) SendAck(c uint64) error { return f(c) }

// GBNSender wraps a PacketSink with Go-Back-N reliability.
//
// Two locks split the sender's concerns: mu guards the window state and is
// all HandleAck needs, while sendMu serializes transmissions — sequence
// numbers are assigned and put on the wire under it, so concurrent
// SendPacket callers cannot emit first transmissions out of sequence order
// (which a GBN receiver would drop, triggering spurious go-back-N storms).
// An ACK arriving synchronously from the sink during a transmit only takes
// mu, so the split also keeps the reverse path deadlock-free.
type GBNSender struct {
	mu      sync.Mutex
	sendMu  sync.Mutex // serializes sink transmissions; taken before mu
	sink    PacketSink
	window  int
	timeout time.Duration

	nextSeq  uint64   // guarded by mu
	baseSeq  uint64   // guarded by mu; first unacked
	inflight [][]byte // guarded by mu; inflight[i] = encoded packet baseSeq+i

	retransmissions int // guarded by mu

	stop chan struct{}
	done chan struct{}
}

// NewGBNSender creates a reliable sender over sink with the given window
// size and retransmission timeout.
func NewGBNSender(sink PacketSink, window int, timeout time.Duration) *GBNSender {
	if window < 1 {
		window = 1
	}
	s := &GBNSender{
		sink:    sink,
		window:  window,
		timeout: timeout,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.retransmitLoop()
	return s
}

var _ PacketSink = (*GBNSender)(nil)

// SendPacket implements PacketSink: wraps p with a sequence number and
// transmits; blocks while the window is full. A closed sender reports
// ErrClosed.
func (s *GBNSender) SendPacket(p []byte) error {
	framed := encodeGBN(gbnKindData, 0, p) // seq patched under the lock
	for {
		select {
		case <-s.stop:
			return ErrClosed
		default:
		}
		s.sendMu.Lock()
		s.mu.Lock()
		if s.nextSeq-s.baseSeq < uint64(s.window) {
			seq := s.nextSeq
			s.nextSeq++
			binary.BigEndian.PutUint64(framed[3:], seq)
			buf := make([]byte, len(framed))
			copy(buf, framed)
			s.inflight = append(s.inflight, buf)
			s.mu.Unlock()
			// Transmit while still holding sendMu: the next sequence number
			// cannot be assigned (let alone hit the wire) before this one.
			err := s.sink.SendPacket(buf)
			s.sendMu.Unlock()
			return err
		}
		s.mu.Unlock()
		s.sendMu.Unlock()
		select {
		case <-s.stop:
			return ErrClosed
		case <-time.After(s.timeout / 4):
		}
	}
}

// HandleAck processes a cumulative ACK (all sequences < cum received).
func (s *GBNSender) HandleAck(cum uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cum <= s.baseSeq {
		return
	}
	advance := cum - s.baseSeq
	if advance > uint64(len(s.inflight)) {
		advance = uint64(len(s.inflight))
	}
	s.inflight = s.inflight[advance:]
	s.baseSeq += advance
}

// Retransmissions reports how many packets were resent.
func (s *GBNSender) Retransmissions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retransmissions
}

// Outstanding reports unacknowledged packets.
func (s *GBNSender) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

func (s *GBNSender) retransmitLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.timeout)
	defer ticker.Stop()
	var lastBase uint64
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.sendMu.Lock()
			s.mu.Lock()
			resend := [][]byte(nil)
			if len(s.inflight) > 0 && s.baseSeq == lastBase {
				// No progress since the last tick: go back to baseSeq.
				resend = append(resend, s.inflight...)
				s.retransmissions += len(s.inflight)
			}
			lastBase = s.baseSeq
			s.mu.Unlock()
			// Retransmit under sendMu so the go-back burst cannot interleave
			// with a concurrent first transmission of a newer sequence.
			for _, p := range resend {
				if err := s.sink.SendPacket(p); err != nil {
					s.sendMu.Unlock()
					return
				}
			}
			s.sendMu.Unlock()
		}
	}
}

// Close stops the retransmission loop.
func (s *GBNSender) Close() {
	close(s.stop)
	<-s.done
}

// GBNReceiver unwraps GBN framing, delivers data packets to the inner
// receiver strictly in sequence order, and emits cumulative ACKs.
type GBNReceiver struct {
	mu      sync.Mutex
	inner   *Receiver
	acks    AckSink
	nextSeq uint64 // guarded by mu

	duplicates int // guarded by mu
}

// NewGBNReceiver wraps recv with Go-Back-N reassembly; ACKs flow to acks.
func NewGBNReceiver(recv *Receiver, acks AckSink) *GBNReceiver {
	return &GBNReceiver{inner: recv, acks: acks}
}

// ProcessPacket handles one framed datagram.
func (r *GBNReceiver) ProcessPacket(data []byte) error {
	kind, seq, payload, err := decodeGBN(data)
	if err != nil {
		return err
	}
	if kind != gbnKindData {
		return errors.New("bmacproto: unexpected GBN kind at receiver")
	}
	r.mu.Lock()
	if seq != r.nextSeq {
		// Go-Back-N: drop anything out of order; re-ACK current position.
		if seq < r.nextSeq {
			r.duplicates++
		}
		next := r.nextSeq
		r.mu.Unlock()
		return r.acks.SendAck(next)
	}
	r.nextSeq++
	next := r.nextSeq
	r.mu.Unlock()

	if err := r.inner.ProcessPacket(payload); err != nil && !errors.Is(err, ErrNotBMac) {
		return err
	}
	return r.acks.SendAck(next)
}

// Duplicates reports received already-delivered packets.
func (r *GBNReceiver) Duplicates() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.duplicates
}

func encodeGBN(kind byte, seq uint64, payload []byte) []byte {
	out := make([]byte, gbnHeaderLen+len(payload))
	binary.BigEndian.PutUint16(out, gbnFrameMagic)
	out[2] = kind
	binary.BigEndian.PutUint64(out[3:], seq)
	copy(out[gbnHeaderLen:], payload)
	return out
}

func decodeGBN(data []byte) (kind byte, seq uint64, payload []byte, err error) {
	if len(data) < gbnHeaderLen || binary.BigEndian.Uint16(data) != gbnFrameMagic {
		return 0, 0, nil, errors.New("bmacproto: not a GBN frame")
	}
	return data[2], binary.BigEndian.Uint64(data[3:]), data[gbnHeaderLen:], nil
}

// gbnFrameMagic distinguishes GBN frames from raw BMac packets.
const gbnFrameMagic = 0x6B4E
