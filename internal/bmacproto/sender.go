package bmacproto

import (
	"fmt"
	"sync"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/wire"
)

// header section payload fields.
const (
	fHdrSecHeader = 1
	fHdrSecCert   = 2
	fHdrSecNonce  = 3
	fHdrSecSig    = 4
)

// metadata section payload fields.
const (
	fMetaSecFlags  = 1
	fMetaSecCommit = 2
)

// PacketSink consumes encoded packets; implementations include UDP sockets
// and the in-memory link model used by benchmarks.
type PacketSink interface {
	SendPacket(p []byte) error
}

// SinkFunc adapts a function to the PacketSink interface.
type SinkFunc func(p []byte) error

// SendPacket implements PacketSink.
func (f SinkFunc) SendPacket(p []byte) error { return f(p) }

// SendStats reports what one SendBlock call transmitted.
type SendStats struct {
	Packets      int
	Bytes        int // total wire bytes including L7 headers
	PayloadBytes int // section payload bytes after identity removal
	Removed      int // identity bytes removed
}

// Sender is the software half of the BMac protocol, called by the orderer
// right before it hands a block to Gossip. It maintains the identity cache
// in sync with the receiver.
type Sender struct {
	mu    sync.Mutex
	cache *identity.Cache
	certs []cachedCert // guarded by mu
	sink  PacketSink

	totalBlocks  int   // guarded by mu
	totalPackets int   // guarded by mu
	totalBytes   int64 // guarded by mu
}

// NewSender creates a sender that writes packets to sink. The cache is
// typically preloaded from the network configuration.
func NewSender(cache *identity.Cache, sink PacketSink) *Sender {
	return &Sender{cache: cache, sink: sink}
}

// RegisterIdentity adds an identity to the sender's sweep list and emits a
// cache-sync packet so the hardware receiver learns the mapping. Identities
// already registered are skipped.
func (s *Sender) RegisterIdentity(id identity.EncodedID, cert []byte) error {
	s.mu.Lock()
	for _, c := range s.certs {
		if c.id == id {
			s.mu.Unlock()
			return nil
		}
	}
	certCopy := make([]byte, len(cert))
	copy(certCopy, cert)
	s.certs = append(s.certs, cachedCert{id: id, cert: certCopy})
	s.mu.Unlock()

	if err := s.cache.Put(id, cert); err != nil {
		return err
	}
	if s.sink == nil {
		return nil
	}
	pkt := Packet{
		Type:    SectionCacheSync,
		Seq:     uint16(id),
		Payload: cert,
	}
	return s.sink.SendPacket(pkt.Encode())
}

// RegisterNetwork registers every identity of the network.
func (s *Sender) RegisterNetwork(n *identity.Network) error {
	for _, id := range n.Identities() {
		if err := s.RegisterIdentity(id.ID, id.Cert); err != nil {
			return err
		}
	}
	return nil
}

// EncodeBlock splits a block into protocol packets without sending them.
// Packet order: header, tx 0..n-1, metadata.
func (s *Sender) EncodeBlock(b *block.Block) ([][]byte, SendStats, error) {
	s.mu.Lock()
	certs := s.certs
	s.mu.Unlock()

	numTxs := len(b.Envelopes)
	if numTxs > 0xffff {
		return nil, SendStats{}, fmt.Errorf("bmacproto: block %d has %d txs (max 65535)", b.Header.Number, numTxs)
	}
	var stats SendStats
	packets := make([][]byte, 0, numTxs+2)

	emit := func(p *Packet, origLen int) {
		enc := p.Encode()
		packets = append(packets, enc)
		stats.Packets++
		stats.Bytes += len(enc)
		stats.PayloadBytes += len(p.Payload)
		stats.Removed += origLen - len(p.Payload)
	}

	// Header section: block header plus the orderer signature triple, so
	// the receiver can issue the block verification request immediately.
	var hdrPayload []byte
	hdrBytes := block.MarshalHeader(&b.Header)
	hdrPayload = wire.AppendBytes(hdrPayload, fHdrSecHeader, hdrBytes)
	hdrPayload = wire.AppendBytes(hdrPayload, fHdrSecCert, b.Metadata.Signature.Creator)
	hdrPayload = wire.AppendBytes(hdrPayload, fHdrSecNonce, b.Metadata.Signature.Nonce)
	hdrPayload = wire.AppendBytes(hdrPayload, fHdrSecSig, b.Metadata.Signature.Signature)
	origLen := len(hdrPayload)
	stripped, locs := stripIdentities(hdrPayload, certs)
	hdrPkt := Packet{
		Type:     SectionHeader,
		BlockNum: b.Header.Number,
		NumTxs:   uint16(numTxs),
		Locators: locs,
		Payload:  stripped,
	}
	if off, l, ok := wire.FieldOffset(hdrPayload, fHdrSecHeader); ok {
		hdrPkt.Pointers = append(hdrPkt.Pointers, Pointer{Field: PtrHeaderBytes, Offset: uint32(off), Length: uint32(l)})
	}
	if off, l, ok := wire.FieldOffset(hdrPayload, fHdrSecSig); ok {
		hdrPkt.Pointers = append(hdrPkt.Pointers, Pointer{Field: PtrMetaSignature, Offset: uint32(off), Length: uint32(l)})
	}
	if off, l, ok := wire.FieldOffset(hdrPayload, fHdrSecNonce); ok {
		hdrPkt.Pointers = append(hdrPkt.Pointers, Pointer{Field: PtrMetaNonce, Offset: uint32(off), Length: uint32(l)})
	}
	emit(&hdrPkt, origLen)

	// Transaction sections: one envelope each.
	for i := range b.Envelopes {
		envBytes := block.MarshalEnvelope(&b.Envelopes[i])
		strippedTx, txLocs := stripIdentities(envBytes, certs)
		pkt := Packet{
			Type:     SectionTx,
			BlockNum: b.Header.Number,
			Seq:      uint16(i),
			NumTxs:   uint16(numTxs),
			Locators: txLocs,
			Payload:  strippedTx,
		}
		// Pointer annotations into the original envelope bytes.
		if off, l, ok := wire.FieldOffset(envBytes, 1); ok { // payload field
			pkt.Pointers = append(pkt.Pointers, Pointer{Field: PtrPayload, Offset: uint32(off), Length: uint32(l)})
		}
		if off, l, ok := wire.FieldOffset(envBytes, 2); ok { // signature field
			pkt.Pointers = append(pkt.Pointers, Pointer{Field: PtrEnvelopeSignature, Offset: uint32(off), Length: uint32(l)})
		}
		emit(&pkt, len(envBytes))
	}

	// Metadata section: marks end of block; flags/commit hash are filled
	// in by the validator, so this carries only placeholders.
	var metaPayload []byte
	metaPayload = wire.AppendBytes(metaPayload, fMetaSecFlags, b.Metadata.ValidationFlags)
	metaPayload = wire.AppendBytes(metaPayload, fMetaSecCommit, b.Metadata.CommitHash)
	strippedMeta, metaLocs := stripIdentities(metaPayload, certs)
	metaPkt := Packet{
		Type:     SectionMetadata,
		BlockNum: b.Header.Number,
		Seq:      uint16(numTxs),
		NumTxs:   uint16(numTxs),
		Locators: metaLocs,
		Payload:  strippedMeta,
	}
	emit(&metaPkt, len(metaPayload))

	return packets, stats, nil
}

// SendBlock encodes and transmits a block. The orderer calls this right
// before handing the same block to the Gossip path, so software-only peers
// remain compatible.
func (s *Sender) SendBlock(b *block.Block) (SendStats, error) {
	packets, stats, err := s.EncodeBlock(b)
	if err != nil {
		return stats, err
	}
	if s.sink == nil {
		return stats, fmt.Errorf("bmacproto: sender has no sink")
	}
	for _, p := range packets {
		if err := s.sink.SendPacket(p); err != nil {
			return stats, fmt.Errorf("send packet: %w", err)
		}
	}
	s.mu.Lock()
	s.totalBlocks++
	s.totalPackets += stats.Packets
	s.totalBytes += int64(stats.Bytes)
	s.mu.Unlock()
	return stats, nil
}

// Totals reports cumulative sender statistics.
func (s *Sender) Totals() (blocks, packets int, bytesSent int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalBlocks, s.totalPackets, s.totalBytes
}
