package wire

import (
	"bytes"
	"sync"
	"testing"
)

// TestBufferPoolConcurrent hammers the pool from many goroutines (run with
// -race): every buffer must behave as exclusively owned between GetBuf and
// PutBuf — no aliasing between marshals in flight.
func TestBufferPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fill := byte(g + 1)
			for it := 0; it < 200; it++ {
				buf := GetBuf(64)
				if len(buf) != 0 {
					t.Errorf("GetBuf returned non-empty buffer (len %d)", len(buf))
					return
				}
				for i := 0; i < 64; i++ {
					buf = append(buf, fill)
				}
				if !bytes.Equal(buf, bytes.Repeat([]byte{fill}, 64)) {
					t.Error("buffer contents clobbered while owned")
					return
				}
				PutBuf(buf)
			}
		}(g)
	}
	wg.Wait()
}

func TestBufferPoolDisabled(t *testing.T) {
	SetBufferPooling(false)
	defer SetBufferPooling(true)
	if BufferPooling() {
		t.Fatal("pooling should report disabled")
	}
	b := GetBuf(32)
	if len(b) != 0 || cap(b) < 32 {
		t.Fatalf("GetBuf while disabled: len=%d cap=%d", len(b), cap(b))
	}
	PutBuf(b) // must be a no-op, not a panic
}

func TestSizeUintField(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 1 << 20, 1<<64 - 1}
	for _, v := range cases {
		var b []byte
		b = AppendUint(b, 5, v)
		if got := SizeUintField(5, v); got != len(b) {
			t.Fatalf("SizeUintField(5, %d)=%d, encoded %d bytes", v, got, len(b))
		}
	}
}
