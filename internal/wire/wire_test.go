package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1<<14 - 1, 1 << 14, 1<<21 - 1,
		1 << 32, 1<<63 - 1, math.MaxUint64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		got, n, err := ConsumeVarint(b)
		if err != nil {
			t.Fatalf("ConsumeVarint(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
		if n != len(b) {
			t.Errorf("varint %d: consumed %d of %d bytes", v, n, len(b))
		}
		if n != SizeVarint(v) {
			t.Errorf("SizeVarint(%d) = %d, encoded %d", v, SizeVarint(v), n)
		}
	}
}

func TestVarintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendVarint(nil, v)
		got, n, err := ConsumeVarint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsumeVarintTruncated(t *testing.T) {
	if _, _, err := ConsumeVarint(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty input: err = %v, want ErrTruncated", err)
	}
	if _, _, err := ConsumeVarint([]byte{0x80}); !errors.Is(err, ErrTruncated) {
		t.Errorf("dangling continuation: err = %v, want ErrTruncated", err)
	}
}

func TestConsumeVarintOverflow(t *testing.T) {
	// 11 continuation bytes overflow 64 bits.
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := ConsumeVarint(b); !errors.Is(err, ErrOverflow) {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
	// 10 bytes where the last carries more than 1 bit also overflows.
	b = append(bytes.Repeat([]byte{0xff}, 9), 0x02)
	if _, _, err := ConsumeVarint(b); !errors.Is(err, ErrOverflow) {
		t.Errorf("10-byte err = %v, want ErrOverflow", err)
	}
}

func TestFieldEncodingRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUint(b, 1, 42)
	b = AppendBool(b, 2, true)
	b = AppendBytes(b, 3, []byte("payload"))
	b = AppendString(b, 4, "hello")

	r := NewReader(b)
	num, wt, ok := r.Next()
	if !ok || num != 1 || wt != TypeVarint {
		t.Fatalf("field 1: num=%d wt=%d ok=%v", num, wt, ok)
	}
	if v := r.Uint(); v != 42 {
		t.Errorf("field 1 = %d, want 42", v)
	}
	num, _, _ = r.Next()
	if num != 2 || !r.Bool() {
		t.Errorf("field 2 bool wrong")
	}
	num, _, _ = r.Next()
	if num != 3 || string(r.Bytes()) != "payload" {
		t.Errorf("field 3 bytes wrong")
	}
	num, _, _ = r.Next()
	if num != 4 || r.String() != "hello" {
		t.Errorf("field 4 string wrong")
	}
	if _, _, ok := r.Next(); ok {
		t.Error("expected end of message")
	}
	if r.Err() != nil {
		t.Errorf("reader error: %v", r.Err())
	}
}

func TestZeroElision(t *testing.T) {
	var b []byte
	b = AppendUint(b, 1, 0)
	b = AppendBool(b, 2, false)
	b = AppendBytes(b, 3, nil)
	b = AppendString(b, 4, "")
	if len(b) != 0 {
		t.Errorf("zero values should be elided, got %d bytes", len(b))
	}
	b = AppendBytesAlways(b, 5, nil)
	if len(b) == 0 {
		t.Error("AppendBytesAlways must emit empty fields")
	}
}

func TestReaderSkip(t *testing.T) {
	var b []byte
	b = AppendUint(b, 1, 300)
	b = AppendBytes(b, 2, []byte{1, 2, 3})
	b = AppendTag(b, 3, TypeFixed64)
	b = append(b, make([]byte, 8)...)
	b = AppendTag(b, 4, TypeFixed32)
	b = append(b, make([]byte, 4)...)
	b = AppendUint(b, 5, 7)

	r := NewReader(b)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if num == 5 {
			if v := r.Uint(); v != 7 {
				t.Errorf("field 5 = %d, want 7", v)
			}
			continue
		}
		r.Skip(wt)
	}
	if r.Err() != nil {
		t.Fatalf("skip chain: %v", r.Err())
	}
}

func TestReaderTruncatedBytes(t *testing.T) {
	b := AppendTag(nil, 1, TypeBytes)
	b = AppendVarint(b, 100) // claims 100 bytes, provides none
	r := NewReader(b)
	if _, _, ok := r.Next(); !ok {
		t.Fatal("expected a field")
	}
	if v := r.Bytes(); v != nil {
		t.Errorf("expected nil bytes, got %v", v)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", r.Err())
	}
}

func TestFieldOffset(t *testing.T) {
	var b []byte
	b = AppendUint(b, 1, 9)
	b = AppendBytes(b, 2, []byte("abcdef"))
	off, l, ok := FieldOffset(b, 2)
	if !ok {
		t.Fatal("field 2 not found")
	}
	if string(b[off:off+l]) != "abcdef" {
		t.Errorf("offset points at %q", b[off:off+l])
	}
	if _, _, ok := FieldOffset(b, 3); ok {
		t.Error("field 3 should be absent")
	}
}

func TestNestedDepth(t *testing.T) {
	// Build a 5-layer nesting: each layer is field 1 wrapping the previous.
	inner := AppendUint(nil, 1, 5)
	msg := inner
	for i := 0; i < 4; i++ {
		msg = AppendBytes(nil, 1, msg)
	}
	if d := NestedDepth(msg); d < 4 {
		t.Errorf("NestedDepth = %d, want >= 4", d)
	}
	if d := NestedDepth(AppendUint(nil, 1, 1)); d > 1 {
		t.Errorf("flat message depth = %d", d)
	}
}

func TestNestedDepthBounded(t *testing.T) {
	msg := AppendUint(nil, 1, 1)
	for i := 0; i < MaxNesting+10; i++ {
		msg = AppendBytes(nil, 1, msg)
	}
	if d := NestedDepth(msg); d > MaxNesting {
		t.Errorf("depth %d exceeds MaxNesting", d)
	}
}

func TestSizeBytesField(t *testing.T) {
	payload := bytes.Repeat([]byte{0xaa}, 200)
	b := AppendBytes(nil, 7, payload)
	if got := SizeBytesField(7, len(payload)); got != len(b) {
		t.Errorf("SizeBytesField = %d, encoded %d", got, len(b))
	}
}

func FuzzReaderNoPanic(f *testing.F) {
	f.Add([]byte{0x0a, 0x02, 0x01, 0x02})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for {
			_, wt, ok := r.Next()
			if !ok {
				break
			}
			r.Skip(wt)
			if r.Err() != nil {
				break
			}
		}
		NestedDepth(data)
	})
}

func BenchmarkVarintEncode(b *testing.B) {
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = AppendVarint(buf[:0], uint64(i)*2654435761)
	}
}

func BenchmarkReaderScan(b *testing.B) {
	var msg []byte
	for i := 1; i <= 20; i++ {
		msg = AppendBytes(msg, i, bytes.Repeat([]byte{byte(i)}, 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(msg)
		for {
			_, wt, ok := r.Next()
			if !ok {
				break
			}
			r.Skip(wt)
		}
	}
}
