// Package wire implements the subset of the Protocol Buffers wire format
// that Hyperledger Fabric uses for its block and transaction structures:
// varint-encoded tags and integers, and length-delimited byte fields.
//
// Fabric stores a block as a deeply nested stack of marshaled protobufs
// (up to 23 layers); reproducing that encoding is what makes the software
// validator pay the unmarshaling cost the paper measures (~10% of total
// validation time, Figure 3a). The package is deliberately reflection-free:
// every message in internal/block hand-writes its Marshal/Unmarshal against
// this Builder/Reader pair, exactly like a generated protobuf runtime would
// behave on the wire.
package wire

import (
	"errors"
	"fmt"
	"math/bits"
)

// Wire types from the protobuf encoding specification.
const (
	TypeVarint  = 0 // int32, int64, uint32, uint64, bool, enum
	TypeFixed64 = 1
	TypeBytes   = 2 // string, bytes, embedded messages
	TypeFixed32 = 5
)

// Encoding limits. MaxNesting bounds recursive message depth so a corrupt
// or hostile payload cannot exhaust the stack; Fabric blocks need 23 layers,
// we allow headroom.
const (
	MaxNesting   = 64
	maxVarintLen = 10
)

var (
	// ErrTruncated reports a field that extends past the end of the buffer.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrOverflow reports a varint longer than 64 bits.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrWireType reports an unknown or mismatched wire type for a field.
	ErrWireType = errors.New("wire: unexpected wire type")
)

// AppendVarint appends v in base-128 varint encoding.
func AppendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// ConsumeVarint parses a varint at the front of b, returning the value and
// the number of bytes consumed. n is 0 on error.
func ConsumeVarint(b []byte) (v uint64, n int, err error) {
	var shift uint
	for i := 0; i < len(b); i++ {
		if i == maxVarintLen {
			return 0, 0, ErrOverflow
		}
		c := b[i]
		if i == maxVarintLen-1 && c > 1 {
			return 0, 0, ErrOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// SizeVarint reports the encoded size of v in bytes.
func SizeVarint(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// AppendTag appends the tag for field num with the given wire type.
func AppendTag(b []byte, num int, wtype int) []byte {
	return AppendVarint(b, uint64(num)<<3|uint64(wtype))
}

// AppendUint appends a varint field (tag + value). Zero values are skipped,
// matching proto3 default-elision semantics.
func AppendUint(b []byte, num int, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = AppendTag(b, num, TypeVarint)
	return AppendVarint(b, v)
}

// AppendBool appends a bool field, eliding false.
func AppendBool(b []byte, num int, v bool) []byte {
	if !v {
		return b
	}
	b = AppendTag(b, num, TypeVarint)
	return append(b, 1)
}

// AppendBytes appends a length-delimited field. Empty values are skipped.
func AppendBytes(b []byte, num int, v []byte) []byte {
	if len(v) == 0 {
		return b
	}
	b = AppendTag(b, num, TypeBytes)
	b = AppendVarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendBytesAlways appends a length-delimited field even when empty. Used
// where presence matters (e.g. repeated message elements).
func AppendBytesAlways(b []byte, num int, v []byte) []byte {
	b = AppendTag(b, num, TypeBytes)
	b = AppendVarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendString appends a string field, eliding the empty string.
func AppendString(b []byte, num int, s string) []byte {
	if s == "" {
		return b
	}
	b = AppendTag(b, num, TypeBytes)
	b = AppendVarint(b, uint64(len(s)))
	return append(b, s...)
}

// SizeBytesField reports the full encoded size of a length-delimited field.
func SizeBytesField(num, payloadLen int) int {
	return SizeVarint(uint64(num)<<3) + SizeVarint(uint64(payloadLen)) + payloadLen
}

// SizeUintField reports the full encoded size of a varint field, honoring
// AppendUint's zero-elision (0 bytes for v == 0). Together with
// SizeBytesField it lets marshalers precompute an exact message size and
// allocate once instead of append-growing.
func SizeUintField(num int, v uint64) int {
	if v == 0 {
		return 0
	}
	return SizeVarint(uint64(num)<<3) + SizeVarint(v)
}

// Reader iterates over the fields of a single marshaled message. The zero
// value is an exhausted reader; construct with NewReader.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf; callers
// must not mutate it while reading.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first error encountered while reading.
func (r *Reader) Err() error { return r.err }

// Pos returns the current byte offset into the message.
func (r *Reader) Pos() int { return r.pos }

// Next advances to the next field, reporting its number and wire type.
// It returns false at end of message or on malformed input (check Err).
func (r *Reader) Next() (num int, wtype int, ok bool) {
	if r.err != nil || r.pos >= len(r.buf) {
		return 0, 0, false
	}
	tag, n, err := ConsumeVarint(r.buf[r.pos:])
	if err != nil {
		r.err = fmt.Errorf("field tag at offset %d: %w", r.pos, err)
		return 0, 0, false
	}
	r.pos += n
	num = int(tag >> 3)
	wtype = int(tag & 7)
	if num == 0 {
		r.err = fmt.Errorf("wire: field number 0 at offset %d", r.pos)
		return 0, 0, false
	}
	return num, wtype, true
}

// Uint reads the current varint field value.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n, err := ConsumeVarint(r.buf[r.pos:])
	if err != nil {
		r.err = fmt.Errorf("varint value at offset %d: %w", r.pos, err)
		return 0
	}
	r.pos += n
	return v
}

// Bool reads the current varint field as a bool.
func (r *Reader) Bool() bool { return r.Uint() != 0 }

// Bytes reads the current length-delimited field. The returned slice aliases
// the underlying buffer.
func (r *Reader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	l, n, err := ConsumeVarint(r.buf[r.pos:])
	if err != nil {
		r.err = fmt.Errorf("bytes length at offset %d: %w", r.pos, err)
		return nil
	}
	r.pos += n
	if uint64(len(r.buf)-r.pos) < l {
		r.err = fmt.Errorf("bytes field at offset %d: %w", r.pos, ErrTruncated)
		return nil
	}
	v := r.buf[r.pos : r.pos+int(l)]
	r.pos += int(l)
	return v
}

// String reads the current length-delimited field as a string (copies).
func (r *Reader) String() string { return string(r.Bytes()) }

// Skip discards the current field value of the given wire type.
func (r *Reader) Skip(wtype int) {
	if r.err != nil {
		return
	}
	switch wtype {
	case TypeVarint:
		r.Uint()
	case TypeBytes:
		r.Bytes()
	case TypeFixed64:
		if len(r.buf)-r.pos < 8 {
			r.err = ErrTruncated
			return
		}
		r.pos += 8
	case TypeFixed32:
		if len(r.buf)-r.pos < 4 {
			r.err = ErrTruncated
			return
		}
		r.pos += 4
	default:
		r.err = fmt.Errorf("skip field: %w (type %d)", ErrWireType, wtype)
	}
}

// FieldOffset scans the message for the first occurrence of field num with
// a length-delimited payload and returns the byte offset and length of the
// payload within buf. This is what the BMac protocol's AnnotationGenerator
// uses to compute pointer annotations. Returns ok=false if absent.
func FieldOffset(buf []byte, num int) (off, length int, ok bool) {
	r := NewReader(buf)
	for {
		n, wt, more := r.Next()
		if !more {
			return 0, 0, false
		}
		if n == num && wt == TypeBytes {
			l, vn, err := ConsumeVarint(buf[r.pos:])
			if err != nil {
				return 0, 0, false
			}
			start := r.pos + vn
			if uint64(len(buf)-start) < l {
				return 0, 0, false
			}
			return start, int(l), true
		}
		r.Skip(wt)
		if r.Err() != nil {
			return 0, 0, false
		}
	}
}

// NestedDepth reports the maximum protobuf nesting depth reachable by
// treating every length-delimited field as a candidate embedded message.
// It is used by tests and by the protocol analyzer to demonstrate the
// "up to 23 layers" structure of a marshaled Fabric block.
func NestedDepth(buf []byte) int {
	return nestedDepth(buf, 0)
}

func nestedDepth(buf []byte, depth int) int {
	if depth >= MaxNesting {
		return depth
	}
	maxDepth := depth
	r := NewReader(buf)
	for {
		_, wt, ok := r.Next()
		if !ok {
			break
		}
		if wt != TypeBytes {
			r.Skip(wt)
			if r.Err() != nil {
				return depth
			}
			continue
		}
		v := r.Bytes()
		if r.Err() != nil {
			return depth
		}
		if looksLikeMessage(v) {
			if d := nestedDepth(v, depth+1); d > maxDepth {
				maxDepth = d
			}
		}
	}
	if r.Err() != nil {
		return depth
	}
	return maxDepth + boolToInt(maxDepth == depth)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// looksLikeMessage applies a conservative structural check: every field must
// parse and field numbers must be small. It is a heuristic for NestedDepth
// only; real decoding always uses the typed Unmarshal methods.
func looksLikeMessage(buf []byte) bool {
	if len(buf) == 0 {
		return false
	}
	r := NewReader(buf)
	fields := 0
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if num > 1024 {
			return false
		}
		r.Skip(wt)
		if r.Err() != nil {
			return false
		}
		fields++
	}
	return r.Err() == nil && fields > 0
}
