package wire

import (
	"sync"
	"sync/atomic"
)

// Marshal-buffer pool. The hot commit path marshals a block several times
// per commit (ledger append, data hashing, delivery frames); on paths that
// own the buffer for the whole marshal-write-discard cycle, a pooled buffer
// turns those into zero steady-state allocations.
//
// Ownership contract: a buffer obtained from GetBuf is exclusively the
// caller's until PutBuf returns it. PutBuf must only be called when no
// slice derived from the buffer (sub-slices included) escapes — e.g. a
// marshaled block that was fully written to a file or socket. Buffers that
// are retained (a delivery window, an unmarshaled block's backing array)
// must never come from the pool.

// bufferPoolOn gates pooling; it exists so benchmarks and differential
// tests can compare pooled and unpooled marshaling byte-for-byte. Toggle
// only at setup time.
var bufferPoolOn atomic.Bool

func init() { bufferPoolOn.Store(true) }

// SetBufferPooling enables or disables the marshal-buffer pool (enabled by
// default). With pooling off, GetBuf allocates and PutBuf discards, so the
// marshal results are identical either way — only the allocation count
// changes.
func SetBufferPooling(on bool) { bufferPoolOn.Store(on) }

// BufferPooling reports whether the marshal-buffer pool is enabled.
func BufferPooling() bool { return bufferPoolOn.Load() }

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// hdrPool recycles the *[]byte headers themselves, so a steady-state
// GetBuf/PutBuf cycle performs zero allocations (a naive sync.Pool.Put of
// a fresh &b would heap-allocate one slice header per cycle).
var hdrPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf returns an empty buffer with capacity at least sizeHint, from the
// pool when pooling is enabled. The caller owns it until PutBuf.
//
// bmaclint:noalloc
func GetBuf(sizeHint int) []byte {
	if !bufferPoolOn.Load() {
		return make([]byte, 0, sizeHint) // bmaclint:allow allocbound (pooling disabled: one alloc per call is the contract)
	}
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	*bp = nil
	hdrPool.Put(bp)
	if cap(b) < sizeHint {
		b = make([]byte, 0, sizeHint) // bmaclint:allow allocbound (pooled buffer undersized: rare regrow, amortized away)
	}
	return b
}

// PutBuf returns a buffer to the pool. Safe to call with a buffer that did
// not come from GetBuf (it is simply adopted). No-op when pooling is off.
//
// bmaclint:noalloc
func PutBuf(b []byte) {
	if !bufferPoolOn.Load() || cap(b) == 0 {
		return
	}
	bp := hdrPool.Get().(*[]byte)
	*bp = b[:0]
	bufPool.Put(bp)
}
