// Package validator implements the software-only validator peer: the
// baseline the Blockchain Machine is compared against (paper Figure 2a).
//
// The pipeline reproduces Fabric v1.4's validation phase with its known
// bottlenecks:
//
//  1. unmarshal   — recursive decode of the deeply nested block protobuf
//  2. block verify — orderer signature over the header
//  3. verify_vscc — per transaction: client signature, then vscc
//     (verify ALL endorsements — Fabric does not short-circuit — and
//     evaluate the endorsement policy sequentially) with a configurable
//     number of parallel worker threads (the "vscc threads" == vCPUs knob)
//  4. mvcc        — sequential read-set version check
//  5. commit      — state database write batch, then ledger commit
//
// Every stage is timestamped so the experiments can reproduce the
// bottleneck breakdowns of Figures 3 and 10.
package validator

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/policy"
	"bmac/internal/statedb"
)

// Breakdown records where validation time went for one block, mirroring the
// coarse breakdown of Figure 3b / Figure 10 (stage level) and the profiling
// view of Figure 3a (operation level).
type Breakdown struct {
	// Stage-level (Figure 10 categories).
	Unmarshal    time.Duration
	BlockVerify  time.Duration
	VerifyVSCC   time.Duration
	MVCC         time.Duration
	StateDB      time.Duration // mvcc reads + commit writes
	LedgerCommit time.Duration
	Total        time.Duration

	// Operation-level (Figure 3a categories).
	ECDSATime   time.Duration
	ECDSACount  int
	SHA256Time  time.Duration
	SHA256Count int
}

// Add accumulates another breakdown (for experiment averaging).
func (b *Breakdown) Add(o Breakdown) {
	b.Unmarshal += o.Unmarshal
	b.BlockVerify += o.BlockVerify
	b.VerifyVSCC += o.VerifyVSCC
	b.MVCC += o.MVCC
	b.StateDB += o.StateDB
	b.LedgerCommit += o.LedgerCommit
	b.Total += o.Total
	b.ECDSATime += o.ECDSATime
	b.ECDSACount += o.ECDSACount
	b.SHA256Time += o.SHA256Time
	b.SHA256Count += o.SHA256Count
}

// Result is the outcome of validating and committing one block.
type Result struct {
	BlockNum   uint64
	BlockValid bool
	Flags      []byte // one block.ValidationCode per transaction
	CommitHash []byte
	Breakdown  Breakdown
}

// Config parameterizes the software validator.
type Config struct {
	// Workers is the number of parallel vscc threads (the vCPU knob in the
	// paper's experiments).
	Workers int
	// Policies maps chaincode name to its endorsement policy.
	Policies map[string]*policy.Policy
	// SkipLedger excludes the ledger commit (the paper's metrics exclude
	// it "for direct comparison between hardware and software" — §4.2).
	SkipLedger bool
}

// ErrBlockInvalid reports a block whose orderer signature failed; the block
// is discarded without committing.
var ErrBlockInvalid = errors.New("validator: block verification failed")

// Validator is a software-only validator peer core.
type Validator struct {
	cfg    Config
	store  *statedb.Store
	ledger *ledger.Ledger
}

// New creates a validator over its own state database and ledger (ledger
// may be nil when cfg.SkipLedger is set).
func New(cfg Config, store *statedb.Store, led *ledger.Ledger) *Validator {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Validator{cfg: cfg, store: store, ledger: led}
}

// Store returns the validator's state database.
func (v *Validator) Store() *statedb.Store { return v.store }

// parsedTx is the fully unmarshaled view of one transaction.
type parsedTx struct {
	tx   *block.Transaction
	rw   *block.RWSet
	prp  []byte
	err  error
	code block.ValidationCode
}

// ValidateAndCommit runs the full validation pipeline on a marshaled block.
// It accepts raw bytes because the unmarshaling cost is part of what the
// paper measures.
func (v *Validator) ValidateAndCommit(raw []byte) (*Result, error) {
	var bd Breakdown
	start := time.Now()

	// Stage 1: unmarshal everything (bottleneck 1).
	tUn := time.Now()
	b, err := block.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	txs := make([]parsedTx, len(b.Envelopes))
	for i := range b.Envelopes {
		tx, err := block.UnmarshalTransactionPayload(b.Envelopes[i].PayloadBytes)
		if err != nil {
			txs[i] = parsedTx{err: err, code: block.BadPayload}
			continue
		}
		prp, err := block.UnmarshalProposalResponsePayload(tx.Payload.Action.ProposalResponseBytes)
		if err != nil {
			txs[i] = parsedTx{err: err, code: block.BadPayload}
			continue
		}
		txs[i] = parsedTx{tx: tx, rw: &prp.Extension.Results, prp: tx.Payload.Action.ProposalResponseBytes}
	}
	bd.Unmarshal = time.Since(tUn)

	return v.validateParsed(b, txs, start, bd)
}

// ValidateAndCommitBlock validates an already-unmarshaled block (the path a
// gossip listener uses); the inner transaction payloads still need decoding
// and are charged to the unmarshal stage.
func (v *Validator) ValidateAndCommitBlock(b *block.Block) (*Result, error) {
	// Re-marshal cost is not charged; Fabric receives raw bytes, and so do
	// the benchmarks (which call ValidateAndCommit). This entry point is
	// for integration plumbing.
	return v.ValidateAndCommit(block.Marshal(b))
}

func (v *Validator) validateParsed(b *block.Block, txs []parsedTx, start time.Time, bd Breakdown) (*Result, error) {
	res := &Result{BlockNum: b.Header.Number, Flags: make([]byte, len(txs))}

	// Stage 2: block verification (orderer signature).
	tBlk := time.Now()
	blockErr := v.verifyOrderer(b, &bd)
	bd.BlockVerify = time.Since(tBlk)
	if blockErr != nil {
		for i := range res.Flags {
			res.Flags[i] = byte(block.InvalidOther)
		}
		res.Breakdown = bd
		res.Breakdown.Total = time.Since(start)
		return res, fmt.Errorf("%w: %v", ErrBlockInvalid, blockErr)
	}
	res.BlockValid = true

	// Stage 3: verify + vscc with parallel workers.
	tVscc := time.Now()
	v.verifyVSCCParallel(b, txs, res.Flags, &bd)
	bd.VerifyVSCC = time.Since(tVscc)

	// Stage 4: mvcc, strictly sequential in transaction order.
	tMvcc := time.Now()
	writtenInBlock := make(map[string]bool)
	for i := range txs {
		if res.Flags[i] != byte(block.Valid) {
			continue
		}
		if conflict := v.mvccOne(txs[i].rw, writtenInBlock); conflict {
			res.Flags[i] = byte(block.MVCCReadConflict)
			continue
		}
		for _, w := range txs[i].rw.Writes {
			writtenInBlock[w.Key] = true
		}
	}
	bd.MVCC = time.Since(tMvcc)

	// Stage 5a: state database commit (write sets of valid transactions).
	tDB := time.Now()
	for i := range txs {
		if res.Flags[i] != byte(block.Valid) {
			continue
		}
		ver := block.Version{BlockNum: b.Header.Number, TxNum: uint64(i)}
		v.store.WriteBatch(txs[i].rw.Writes, ver)
	}
	bd.StateDB = bd.MVCC + time.Since(tDB) // mvcc reads + commit writes

	// Stage 5b: ledger commit.
	b.Metadata.ValidationFlags = res.Flags
	if !v.cfg.SkipLedger && v.ledger != nil {
		tLed := time.Now()
		ch, err := v.ledger.Commit(b)
		if err != nil {
			return nil, fmt.Errorf("ledger commit block %d: %w", b.Header.Number, err)
		}
		res.CommitHash = ch
		bd.LedgerCommit = time.Since(tLed)
	} else {
		// Compute the commit hash chain value anyway for cross-checking.
		res.CommitHash = block.CommitHash(nil, b.Header.DataHash, res.Flags)
	}

	bd.Total = time.Since(start)
	res.Breakdown = bd
	return res, nil
}

// verifyOrderer verifies the block metadata signature, attributing hash and
// ECDSA time to the operation counters.
func (v *Validator) verifyOrderer(b *block.Block, bd *Breakdown) error {
	ms := &b.Metadata.Signature
	pub, err := fabcrypto.PublicKeyFromCert(ms.Creator)
	if err != nil {
		return err
	}
	msg := block.OrdererSigningBytes(&b.Header, ms.Nonce, ms.Creator)
	digest := v.timedHash(msg, bd)
	return v.timedVerify(pub, digest, ms.Signature, bd)
}

func (v *Validator) timedHash(msg []byte, bd *Breakdown) []byte {
	t := time.Now()
	d := sha256.Sum256(msg)
	bd.SHA256Time += time.Since(t)
	bd.SHA256Count++
	return d[:]
}

func (v *Validator) timedVerify(pub *ecdsa.PublicKey, digest, sig []byte, bd *Breakdown) error {
	t := time.Now()
	err := fabcrypto.VerifyDigest(pub, digest, sig)
	bd.ECDSATime += time.Since(t)
	bd.ECDSACount++
	return err
}

// verifyVSCCParallel runs transaction verification and vscc across
// cfg.Workers goroutines — the parallel "vscc threads" of a Fabric peer.
// Per Fabric behaviour, every endorsement is signature-verified even when
// the policy is already satisfied, and the policy expression is evaluated
// without short-circuiting.
func (v *Validator) verifyVSCCParallel(b *block.Block, txs []parsedTx, flags []byte, bd *Breakdown) {
	var (
		mu   sync.Mutex // merges per-worker op counters
		next int
	)
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		var local Breakdown
		for {
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= len(txs) {
				break
			}
			flags[i] = byte(v.verifyAndVSCCOne(&b.Envelopes[i], &txs[i], &local))
		}
		mu.Lock()
		bd.ECDSATime += local.ECDSATime
		bd.ECDSACount += local.ECDSACount
		bd.SHA256Time += local.SHA256Time
		bd.SHA256Count += local.SHA256Count
		mu.Unlock()
	}
	workers := v.cfg.Workers
	if workers > len(txs) && len(txs) > 0 {
		workers = len(txs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
}

// verifyAndVSCCOne validates one transaction: client signature, then all
// endorsement signatures, then the endorsement policy.
func (v *Validator) verifyAndVSCCOne(env *block.Envelope, p *parsedTx, bd *Breakdown) block.ValidationCode {
	if p.err != nil {
		return p.code
	}
	// Transaction verification: client signature over the payload.
	pub, err := fabcrypto.PublicKeyFromCert(p.tx.SignatureHeader.Creator)
	if err != nil {
		return block.BadCreator
	}
	digest := v.timedHash(env.PayloadBytes, bd)
	if err := v.timedVerify(pub, digest, env.Signature, bd); err != nil {
		return block.BadSignature
	}

	// vscc: verify EVERY endorsement (Fabric does not short-circuit).
	var rf policy.RegisterFile
	for i := range p.tx.Payload.Action.Endorsements {
		e := &p.tx.Payload.Action.Endorsements[i]
		epub, err := fabcrypto.PublicKeyFromCert(e.Endorser)
		if err != nil {
			continue // unverifiable endorsement contributes nothing
		}
		msg := block.EndorsementSigningBytes(p.prp, e.Endorser)
		edigest := v.timedHash(msg, bd)
		if err := v.timedVerify(epub, edigest, e.Signature, bd); err != nil {
			continue
		}
		cert, err := fabcrypto.ParseCertificate(e.Endorser)
		if err != nil {
			continue
		}
		org, role, ok := v.orgRoleOf(cert.Subject.Organization, cert.Subject.CommonName)
		if ok {
			rf.Set(org, role)
		}
	}

	pol, ok := v.cfg.Policies[p.tx.ChannelHeader.ChaincodeName]
	if !ok {
		return block.InvalidOther // no policy installed for this chaincode
	}
	if !pol.EvalSequential(&rf) {
		return block.EndorsementPolicyFailure
	}
	return block.Valid
}

// orgRoleOf maps certificate subject fields back to (org number, role).
// Organization names follow the OrgN convention used throughout the
// repository; common names are "<role><seq>.<org>".
func (v *Validator) orgRoleOf(orgs []string, cn string) (uint8, identity.Role, bool) {
	if len(orgs) != 1 {
		return 0, 0, false
	}
	var orgNum int
	if _, err := fmt.Sscanf(orgs[0], "Org%d", &orgNum); err != nil || orgNum < 1 || orgNum > 255 {
		return 0, 0, false
	}
	role := identity.RolePeer
	switch {
	case strings.HasPrefix(cn, "peer"):
		role = identity.RolePeer
	case strings.HasPrefix(cn, "admin"):
		role = identity.RoleAdmin
	case strings.HasPrefix(cn, "orderer"):
		role = identity.RoleOrderer
	case strings.HasPrefix(cn, "client"):
		role = identity.RoleClient
	}
	return uint8(orgNum), role, true
}

// mvccOne re-checks a transaction's read set against the current state
// database and the keys written earlier in this block, returning true on
// conflict.
func (v *Validator) mvccOne(rw *block.RWSet, writtenInBlock map[string]bool) bool {
	for _, r := range rw.Reads {
		if writtenInBlock[r.Key] {
			return true // an earlier tx in this block already wrote it
		}
	}
	return v.store.MVCCCheck(rw.Reads) != nil
}
