// Package validator implements the software-only validator peer: the
// baseline the Blockchain Machine is compared against (paper Figure 2a).
//
// The pipeline reproduces Fabric v1.4's validation phase with its known
// bottlenecks:
//
//  1. unmarshal   — recursive decode of the deeply nested block protobuf
//  2. block verify — orderer signature over the header
//  3. verify_vscc — per transaction: client signature, then vscc
//     (verify ALL endorsements — Fabric does not short-circuit — and
//     evaluate the endorsement policy sequentially) with a configurable
//     number of parallel worker threads (the "vscc threads" == vCPUs knob)
//  4. mvcc        — sequential read-set version check
//  5. commit      — state database write batch, then ledger commit
//
// Every stage is timestamped so the experiments can reproduce the
// bottleneck breakdowns of Figures 3 and 10.
package validator

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/telemetry"
)

// Breakdown records where validation time went for one block, mirroring the
// coarse breakdown of Figure 3b / Figure 10 (stage level) and the profiling
// view of Figure 3a (operation level).
type Breakdown struct {
	// Stage-level (Figure 10 categories).
	Unmarshal    time.Duration
	BlockVerify  time.Duration
	VerifyVSCC   time.Duration
	MVCC         time.Duration
	StateDB      time.Duration // mvcc reads + commit writes
	LedgerCommit time.Duration
	Total        time.Duration

	// PrefetchWait is the residual stall the pipelined engine's mvcc stage
	// spent waiting for the async read-set prefetch to finish — the part of
	// the host-database latency that vscc did NOT hide (zero for the
	// sequential validator, which has no prefetch stage).
	PrefetchWait time.Duration

	// Operation-level (Figure 3a categories). ECDSATime/ECDSACount cover
	// REAL curve verifications only; a signature served from the process
	// verification cache is counted separately below, so a cache-induced
	// speedup is visible in the numbers rather than hidden inside them.
	ECDSATime   time.Duration
	ECDSACount  int
	SHA256Time  time.Duration
	SHA256Count int

	// SigCacheHits/SigCacheTime account verifications answered by the
	// fabcrypto.SigCache (one hash + lookup each, no curve math).
	SigCacheHits int
	SigCacheTime time.Duration
	// ParseCacheHits counts transaction payloads served from the
	// parse-once interning table instead of a full unmarshal walk.
	ParseCacheHits int
}

// Add accumulates another breakdown (for experiment averaging).
func (b *Breakdown) Add(o Breakdown) {
	b.Unmarshal += o.Unmarshal
	b.BlockVerify += o.BlockVerify
	b.VerifyVSCC += o.VerifyVSCC
	b.MVCC += o.MVCC
	b.StateDB += o.StateDB
	b.LedgerCommit += o.LedgerCommit
	b.Total += o.Total
	b.PrefetchWait += o.PrefetchWait
	b.ECDSATime += o.ECDSATime
	b.ECDSACount += o.ECDSACount
	b.SHA256Time += o.SHA256Time
	b.SHA256Count += o.SHA256Count
	b.SigCacheHits += o.SigCacheHits
	b.SigCacheTime += o.SigCacheTime
	b.ParseCacheHits += o.ParseCacheHits
}

// Result is the outcome of validating and committing one block.
type Result struct {
	BlockNum   uint64
	BlockValid bool
	Flags      []byte // one block.ValidationCode per transaction
	CommitHash []byte
	Breakdown  Breakdown
}

// Config parameterizes the software validator.
type Config struct {
	// Workers is the number of parallel vscc threads (the vCPU knob in the
	// paper's experiments).
	Workers int
	// Policies maps chaincode name to its endorsement policy.
	Policies map[string]*policy.Policy
	// SkipLedger excludes the ledger commit (the paper's metrics exclude
	// it "for direct comparison between hardware and software" — §4.2).
	SkipLedger bool
	// SigCache, when non-nil, memoizes signature verdicts so a signature
	// already seen by ANY path sharing the cache (this validator, the
	// pipelined engine, a replay) costs one hash + lookup instead of a
	// curve verification. Verdicts are identical either way.
	SigCache *fabcrypto.SigCache
	// BatchVerifyWorkers > 1 fans a transaction's endorsement checks
	// across a worker pool (fabcrypto.VerifyBatch). 0 or 1 verifies
	// sequentially.
	BatchVerifyWorkers int
	// CertCache, when non-nil, interns parsed X.509 identity certificates
	// (fabcrypto.CertCache): the same creator/endorser/orderer certs recur
	// in every transaction, and x509.ParseCertificate rivals the ECDSA
	// math in allocations.
	CertCache *fabcrypto.CertCache
	// ParseCache, when non-nil, interns ParseTx results by payload hash so
	// an envelope decoded by any sharing path is unmarshaled once per
	// process (parse-once). Cached results are shared and read-only.
	ParseCache *ParseCache
	// Metrics, when non-nil, mirrors each committed block's Breakdown into
	// the telemetry registry's per-stage histograms. Nil (telemetry off)
	// costs one predicted branch per block.
	Metrics *telemetry.ValidatorMetrics
}

// VerifyOpts bundles the optional verification accelerators threaded
// through the exported verify helpers; the zero value means "no caching,
// sequential endorsement checks" — the exact pre-optimization behavior.
type VerifyOpts struct {
	SigCache     *fabcrypto.SigCache
	CertCache    *fabcrypto.CertCache
	BatchWorkers int
}

func (v *Validator) verifyOpts() VerifyOpts {
	return VerifyOpts{
		SigCache:     v.cfg.SigCache,
		CertCache:    v.cfg.CertCache,
		BatchWorkers: v.cfg.BatchVerifyWorkers,
	}
}

// ErrBlockInvalid reports a block that failed block-level verification —
// a bad orderer signature or a DataHash that does not bind the delivered
// envelopes; the block is discarded without committing.
var ErrBlockInvalid = errors.New("validator: block verification failed")

// Validator is a software-only validator peer core. It runs against any
// statedb.KVS backend (plain, sharded or hybrid hardware/host).
type Validator struct {
	cfg    Config
	store  statedb.KVS
	ledger *ledger.Ledger
}

// New creates a validator over the given state database and ledger (ledger
// may be nil when cfg.SkipLedger is set).
func New(cfg Config, store statedb.KVS, led *ledger.Ledger) *Validator {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Validator{cfg: cfg, store: store, ledger: led}
}

// Store returns the validator's state database.
func (v *Validator) Store() statedb.KVS { return v.store }

// ParsedTx is the fully unmarshaled view of one transaction. It is shared
// with internal/pipeline so both commit engines decode transactions through
// the same code path.
type ParsedTx struct {
	Tx   *block.Transaction
	RW   *block.RWSet
	PRP  []byte
	Err  error
	Code block.ValidationCode
}

// ParseTx decodes one envelope payload into a ParsedTx. Decode failures are
// recorded in Err/Code rather than returned, because a malformed transaction
// invalidates only itself (BadPayload), never the block.
func ParseTx(payloadBytes []byte) ParsedTx {
	tx, err := block.UnmarshalTransactionPayload(payloadBytes)
	if err != nil {
		return ParsedTx{Err: err, Code: block.BadPayload}
	}
	prp, err := block.UnmarshalProposalResponsePayload(tx.Payload.Action.ProposalResponseBytes)
	if err != nil {
		return ParsedTx{Err: err, Code: block.BadPayload}
	}
	return ParsedTx{Tx: tx, RW: &prp.Extension.Results, PRP: tx.Payload.Action.ProposalResponseBytes}
}

// ValidateAndCommit runs the full validation pipeline on a marshaled block.
// It accepts raw bytes because the unmarshaling cost is part of what the
// paper measures.
func (v *Validator) ValidateAndCommit(raw []byte) (*Result, error) {
	var bd Breakdown
	start := time.Now()

	// Stage 1: unmarshal everything (bottleneck 1).
	tUn := time.Now()
	b, err := block.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	txs := make([]ParsedTx, len(b.Envelopes))
	for i := range b.Envelopes {
		var hit bool
		txs[i], hit = v.cfg.ParseCache.ParseTx(b.Envelopes[i].PayloadBytes)
		if hit {
			bd.ParseCacheHits++
		}
	}
	bd.Unmarshal = time.Since(tUn)

	return v.validateParsed(b, txs, start, bd)
}

// ValidateAndCommitBlock validates an already-unmarshaled block (the path a
// gossip listener uses); the inner transaction payloads still need decoding
// and are charged to the unmarshal stage.
func (v *Validator) ValidateAndCommitBlock(b *block.Block) (*Result, error) {
	// Re-marshal cost is not charged; Fabric receives raw bytes, and so do
	// the benchmarks (which call ValidateAndCommit). This entry point is
	// for integration plumbing.
	return v.ValidateAndCommit(block.Marshal(b))
}

func (v *Validator) validateParsed(b *block.Block, txs []ParsedTx, start time.Time, bd Breakdown) (*Result, error) {
	res := &Result{BlockNum: b.Header.Number, Flags: make([]byte, len(txs))}

	// Stage 2: block verification (orderer signature).
	tBlk := time.Now()
	blockErr := VerifyOrdererOpts(b, v.verifyOpts(), &bd)
	bd.BlockVerify = time.Since(tBlk)
	if blockErr != nil {
		for i := range res.Flags {
			res.Flags[i] = byte(block.InvalidOther)
		}
		res.Breakdown = bd
		res.Breakdown.Total = time.Since(start)
		return res, fmt.Errorf("%w: %v", ErrBlockInvalid, blockErr)
	}
	res.BlockValid = true

	// Stage 3: verify + vscc with parallel workers.
	tVscc := time.Now()
	v.verifyVSCCParallel(b, txs, res.Flags, &bd)
	bd.VerifyVSCC = time.Since(tVscc)

	// Stage 4: mvcc, strictly sequential in transaction order.
	tMvcc := time.Now()
	writtenInBlock := make(map[string]bool)
	for i := range txs {
		if res.Flags[i] != byte(block.Valid) {
			continue
		}
		if conflict := v.mvccOne(txs[i].RW, writtenInBlock); conflict {
			res.Flags[i] = byte(block.MVCCReadConflict)
			continue
		}
		for _, w := range txs[i].RW.Writes {
			writtenInBlock[w.Key] = true
		}
	}
	bd.MVCC = time.Since(tMvcc)

	// Stage 5a: state database commit (write sets of valid transactions).
	tDB := time.Now()
	for i := range txs {
		if res.Flags[i] != byte(block.Valid) {
			continue
		}
		ver := block.Version{BlockNum: b.Header.Number, TxNum: uint64(i)}
		v.store.WriteBatch(txs[i].RW.Writes, ver)
	}
	bd.StateDB = bd.MVCC + time.Since(tDB) // mvcc reads + commit writes

	// Stage 5b: ledger commit.
	b.Metadata.ValidationFlags = res.Flags
	if !v.cfg.SkipLedger && v.ledger != nil {
		tLed := time.Now()
		ch, err := v.ledger.Commit(b)
		if err != nil {
			return nil, fmt.Errorf("ledger commit block %d: %w", b.Header.Number, err)
		}
		res.CommitHash = ch
		bd.LedgerCommit = time.Since(tLed)
	} else {
		// Compute the commit hash chain value anyway for cross-checking.
		res.CommitHash = block.CommitHash(nil, b.Header.DataHash, res.Flags)
	}

	bd.Total = time.Since(start)
	res.Breakdown = bd
	v.cfg.Metrics.ObserveBlock(len(txs), bd.Unmarshal, bd.BlockVerify, bd.VerifyVSCC,
		bd.MVCC, bd.StateDB, bd.LedgerCommit, bd.PrefetchWait, bd.Total)
	return res, nil
}

// VerifyOrderer verifies the block metadata signature and that the header's
// DataHash binds the delivered envelopes, attributing hash and ECDSA time to
// the operation counters. Exported so internal/pipeline's block-verify stage
// is the same code as the sequential validator's.
func VerifyOrderer(b *block.Block, bd *Breakdown) error {
	return VerifyOrdererOpts(b, VerifyOpts{}, bd)
}

// VerifyOrdererOpts is VerifyOrderer with the optional verification cache.
func VerifyOrdererOpts(b *block.Block, opts VerifyOpts, bd *Breakdown) error {
	// The orderer signature covers the header only; the header's DataHash
	// is what binds the envelope bytes. Recompute it so a block whose
	// envelopes were corrupted in flight (but still decoded) is rejected
	// here instead of committing divergent content.
	t := time.Now()
	dh := block.DataHash(b.Envelopes)
	bd.SHA256Time += time.Since(t)
	bd.SHA256Count++
	if !bytes.Equal(dh, b.Header.DataHash) {
		return errors.New("header DataHash does not match envelopes")
	}
	ms := &b.Metadata.Signature
	pub, err := opts.CertCache.PublicKeyFromCert(ms.Creator)
	if err != nil {
		return err
	}
	msg := block.OrdererSigningBytes(&b.Header, ms.Nonce, ms.Creator)
	digest := timedHash(msg, bd)
	return timedVerify(pub, digest, ms.Signature, opts.SigCache, bd)
}

func timedHash(msg []byte, bd *Breakdown) []byte {
	t := time.Now()
	d := sha256.Sum256(msg)
	bd.SHA256Time += time.Since(t)
	bd.SHA256Count++
	return d[:]
}

// timedVerify routes one signature check through the cache (nil means a
// direct verification) and attributes its cost to the matching counters: a
// real verify lands in ECDSATime/Count, a cache hit in SigCacheHits/Time.
func timedVerify(pub *ecdsa.PublicKey, digest, sig []byte, cache *fabcrypto.SigCache, bd *Breakdown) error {
	t := time.Now()
	err, hit := cache.VerifyDigest(pub, digest, sig)
	d := time.Since(t)
	if hit {
		bd.SigCacheHits++
		bd.SigCacheTime += d
	} else {
		bd.ECDSATime += d
		bd.ECDSACount++
	}
	return err
}

// verifyVSCCParallel runs transaction verification and vscc across
// cfg.Workers goroutines — the parallel "vscc threads" of a Fabric peer.
// Per Fabric behaviour, every endorsement is signature-verified even when
// the policy is already satisfied, and the policy expression is evaluated
// without short-circuiting.
func (v *Validator) verifyVSCCParallel(b *block.Block, txs []ParsedTx, flags []byte, bd *Breakdown) {
	var (
		mu   sync.Mutex // merges per-worker op counters
		next int
	)
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		var local Breakdown
		for {
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= len(txs) {
				break
			}
			flags[i] = byte(VSCCOneOpts(&b.Envelopes[i], &txs[i], v.cfg.Policies, v.verifyOpts(), &local))
		}
		mu.Lock()
		bd.ECDSATime += local.ECDSATime
		bd.ECDSACount += local.ECDSACount
		bd.SHA256Time += local.SHA256Time
		bd.SHA256Count += local.SHA256Count
		bd.SigCacheHits += local.SigCacheHits
		bd.SigCacheTime += local.SigCacheTime
		mu.Unlock()
	}
	workers := v.cfg.Workers
	if workers > len(txs) && len(txs) > 0 {
		workers = len(txs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
}

// VSCCOne validates one transaction: client signature, then all endorsement
// signatures, then the endorsement policy. Exported so internal/pipeline's
// vscc stage shares the exact Fabric-equivalent semantics (every endorsement
// verified, no short-circuiting).
func VSCCOne(env *block.Envelope, p *ParsedTx, policies map[string]*policy.Policy, bd *Breakdown) block.ValidationCode {
	return VSCCOneOpts(env, p, policies, VerifyOpts{}, bd)
}

// VSCCOneOpts is VSCCOne with the optional verification cache and batched
// endorsement checks. Verdicts are bit-identical to VSCCOne for every input:
// the cache memoizes, the batch only reorders independent verifications.
func VSCCOneOpts(env *block.Envelope, p *ParsedTx, policies map[string]*policy.Policy, opts VerifyOpts, bd *Breakdown) block.ValidationCode {
	if p.Err != nil {
		return p.Code
	}
	// Transaction verification: client signature over the payload.
	pub, err := opts.CertCache.PublicKeyFromCert(p.Tx.SignatureHeader.Creator)
	if err != nil {
		return block.BadCreator
	}
	digest := timedHash(env.PayloadBytes, bd)
	if err := timedVerify(pub, digest, env.Signature, opts.SigCache, bd); err != nil {
		return block.BadSignature
	}

	// vscc: verify EVERY endorsement (Fabric does not short-circuit).
	var rf policy.RegisterFile
	ends := p.Tx.Payload.Action.Endorsements
	if opts.BatchWorkers > 1 && len(ends) > 1 {
		verifyEndorsementsBatch(p, ends, opts, &rf, bd)
	} else {
		for i := range ends {
			e := &ends[i]
			epub, err := opts.CertCache.PublicKeyFromCert(e.Endorser)
			if err != nil {
				continue // unverifiable endorsement contributes nothing
			}
			msg := block.EndorsementSigningBytes(p.PRP, e.Endorser)
			edigest := timedHash(msg, bd)
			if err := timedVerify(epub, edigest, e.Signature, opts.SigCache, bd); err != nil {
				continue
			}
			endorserToRegister(opts.CertCache, e.Endorser, &rf)
		}
	}

	pol, ok := policies[p.Tx.ChannelHeader.ChaincodeName]
	if !ok {
		return block.InvalidOther // no policy installed for this chaincode
	}
	if !pol.EvalSequential(&rf) {
		return block.EndorsementPolicyFailure
	}
	return block.Valid
}

// verifyEndorsementsBatch fans one transaction's endorsement signature
// checks across fabcrypto.VerifyBatch. The register-file outcome is
// identical to the sequential loop: only verifications are overlapped, and
// per-operation timing is accumulated as measured on each worker.
func verifyEndorsementsBatch(p *ParsedTx, ends []block.Endorsement, opts VerifyOpts, rf *policy.RegisterFile, bd *Breakdown) {
	reqs := make([]fabcrypto.VerifyRequest, 0, len(ends))
	srcs := make([]int, 0, len(ends)) // endorsement index per request
	for i := range ends {
		e := &ends[i]
		epub, err := opts.CertCache.PublicKeyFromCert(e.Endorser)
		if err != nil {
			continue // unverifiable endorsement contributes nothing
		}
		msg := block.EndorsementSigningBytes(p.PRP, e.Endorser)
		reqs = append(reqs, fabcrypto.VerifyRequest{Pub: epub, Digest: timedHash(msg, bd), Sig: e.Signature})
		srcs = append(srcs, i)
	}
	results := opts.SigCache.VerifyBatch(reqs, opts.BatchWorkers)
	for k, r := range results {
		if r.CacheHit {
			bd.SigCacheHits++
			bd.SigCacheTime += r.Elapsed
		} else {
			bd.ECDSACount++
			bd.ECDSATime += r.Elapsed
		}
		if r.Err != nil {
			continue
		}
		endorserToRegister(opts.CertCache, ends[srcs[k]].Endorser, rf)
	}
}

// endorserToRegister parses an endorser certificate (through the cert
// cache when one is configured) and sets its (org, role) bit in the policy
// register file, ignoring unparsable certificates exactly as the
// endorsement loop always has.
func endorserToRegister(cc *fabcrypto.CertCache, endorser []byte, rf *policy.RegisterFile) {
	cert, err := cc.ParseCertificate(endorser)
	if err != nil {
		return
	}
	org, role, ok := orgRoleOf(cert.Subject.Organization, cert.Subject.CommonName)
	if ok {
		rf.Set(org, role)
	}
}

// orgRoleOf maps certificate subject fields back to (org number, role).
// Organization names follow the OrgN convention used throughout the
// repository; common names are "<role><seq>.<org>".
func orgRoleOf(orgs []string, cn string) (uint8, identity.Role, bool) {
	if len(orgs) != 1 {
		return 0, 0, false
	}
	var orgNum int
	if _, err := fmt.Sscanf(orgs[0], "Org%d", &orgNum); err != nil || orgNum < 1 || orgNum > 255 {
		return 0, 0, false
	}
	role := identity.RolePeer
	switch {
	case strings.HasPrefix(cn, "peer"):
		role = identity.RolePeer
	case strings.HasPrefix(cn, "admin"):
		role = identity.RoleAdmin
	case strings.HasPrefix(cn, "orderer"):
		role = identity.RoleOrderer
	case strings.HasPrefix(cn, "client"):
		role = identity.RoleClient
	}
	return uint8(orgNum), role, true
}

// mvccOne re-checks a transaction's read set against the current state
// database and the keys written earlier in this block, returning true on
// conflict.
func (v *Validator) mvccOne(rw *block.RWSet, writtenInBlock map[string]bool) bool {
	for _, r := range rw.Reads {
		if writtenInBlock[r.Key] {
			return true // an earlier tx in this block already wrote it
		}
	}
	return v.store.MVCCCheck(rw.Reads) != nil
}
