package validator

import (
	"bytes"
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// ParseCache is a sharded, bounded LRU interning table for ParseTx results.
// Every peer path in a process unmarshals the same envelopes — the
// sequential validator, the pipelined engine, the BMac cross-check, durable
// replay — and the full payload→action→rwset decode walk is pure, so its
// result can be computed once and shared (parse-once).
//
// Lookups are keyed by a seeded 64-bit maphash of the payload bytes —
// chosen over a cryptographic hash because hashing must cost less than the
// parse it saves — and VERIFIED by byte comparison against the interned
// payload before a hit is served, so a hash collision degrades to a miss,
// never to a wrong transaction.
//
// Cached results are shared and strictly read-only: callers must never
// mutate a ParsedTx's pointed-to data — the validator and engine only read
// them. On insert the payload is copied and parsed from the private copy,
// so a cache entry retains only its own transaction's bytes, never the
// multi-transaction block buffer the payload was sliced from.
//
// A nil *ParseCache is valid and means "disabled": every call parses.
type ParseCache struct {
	shards []parseShard

	hits   atomic.Int64
	misses atomic.Int64
}

type parseShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]*list.Element // guarded by mu
	order    *list.List               // guarded by mu; front = most recently used
}

type parseEntry struct {
	key     uint64
	payload []byte // the exact payload bytes this entry interns
	val     ParsedTx
}

const parseCacheShards = 16

var parseSeed = maphash.MakeSeed()

// NewParseCache creates a cache bounded to roughly `size` parsed envelopes.
// size < 1 returns nil (the disabled cache).
func NewParseCache(size int) *ParseCache {
	if size < 1 {
		return nil
	}
	perShard := size / parseCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &ParseCache{shards: make([]parseShard, parseCacheShards)}
	for i := range c.shards {
		c.shards[i] = parseShard{
			capacity: perShard,
			entries:  make(map[uint64]*list.Element, perShard),
			order:    list.New(),
		}
	}
	return c
}

// ParseTx returns the parsed view of one envelope payload, from the cache
// when an identical payload has been parsed before. hit reports whether the
// result was interned (so callers can account parse-once savings). A nil
// receiver always parses.
//
// bmaclint:noalloc
func (c *ParseCache) ParseTx(payloadBytes []byte) (p ParsedTx, hit bool) {
	if c == nil {
		return ParseTx(payloadBytes), false
	}
	key := maphash.Bytes(parseSeed, payloadBytes)
	sh := &c.shards[key%parseCacheShards]

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*parseEntry)
		if bytes.Equal(e.payload, payloadBytes) {
			sh.order.MoveToFront(el)
			v := e.val
			sh.mu.Unlock()
			c.hits.Add(1)
			return v, true
		}
		// 64-bit collision between different payloads: evict and reparse.
		sh.order.Remove(el)
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	c.misses.Add(1)

	// Parse outside the shard lock; the result is deterministic, so a
	// concurrent double-parse of the same payload is merely wasted work.
	// Parse from a private copy: the interned ParsedTx (and the entry's
	// comparison payload) must alias only tx-sized bytes, not the whole
	// block buffer payloadBytes was sliced from — an LRU survivor would
	// otherwise pin one full block allocation per entry.
	own := append([]byte(nil), payloadBytes...) // bmaclint:allow allocbound (miss path: private tx-sized copy, see comment above)
	v := ParseTx(own)

	sh.mu.Lock()
	if _, ok := sh.entries[key]; !ok {
		sh.entries[key] = sh.order.PushFront(&parseEntry{key: key, payload: own, val: v}) // bmaclint:allow allocbound (miss path: one cache insert per new payload)
		if sh.order.Len() > sh.capacity {
			oldest := sh.order.Back()
			sh.order.Remove(oldest)
			delete(sh.entries, oldest.Value.(*parseEntry).key)
		}
	}
	sh.mu.Unlock()
	return v, false
}

// Stats reports cumulative hits and misses.
func (c *ParseCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// HitRate reports hits / (hits + misses), 0 when empty or nil.
func (c *ParseCache) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
