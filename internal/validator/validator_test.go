package validator

import (
	"errors"
	"testing"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
	"bmac/internal/statedb"
)

type fixture struct {
	net     *identity.Network
	client  *identity.Identity
	orderer *identity.Identity
	peers   []*identity.Identity // one per org
}

func newFixture(t testing.TB, orgs int) *fixture {
	t.Helper()
	n := identity.NewNetwork()
	f := &fixture{net: n}
	for i := 1; i <= orgs; i++ {
		org := "Org" + string(rune('0'+i))
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
		p, err := n.NewIdentity(org, identity.RolePeer)
		if err != nil {
			t.Fatal(err)
		}
		f.peers = append(f.peers, p)
	}
	var err error
	f.client, err = n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	f.orderer, err = n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) validator(t testing.TB, pol string, workers int) *Validator {
	t.Helper()
	led, err := ledger.Open(t.TempDir(), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	return New(Config{
		Workers:  workers,
		Policies: map[string]*policy.Policy{"smallbank": policytest.MustParse(pol)},
	}, statedb.NewStore(), led)
}

func (f *fixture) simpleBlock(t testing.TB, num uint64, prev []byte, nTxs int, spec func(i int) block.TxSpec) *block.Block {
	t.Helper()
	envs := make([]block.Envelope, 0, nTxs)
	for i := 0; i < nTxs; i++ {
		env, err := block.NewEndorsedEnvelope(spec(i))
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	b, err := block.NewBlock(num, prev, envs, f.orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (f *fixture) defaultSpec(endorsers ...*identity.Identity) func(i int) block.TxSpec {
	return func(i int) block.TxSpec {
		return block.TxSpec{
			Creator:   f.client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet: block.RWSet{
				Writes: []block.KVWrite{{Key: "k" + string(rune('a'+i)), Value: []byte{byte(i)}}},
			},
			Endorsers: endorsers,
		}
	}
}

func TestAllValidTransactions(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 4)
	b := f.simpleBlock(t, 0, nil, 5, f.defaultSpec(f.peers[0], f.peers[1]))
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if !res.BlockValid {
		t.Error("block should be valid")
	}
	for i, fl := range res.Flags {
		if block.ValidationCode(fl) != block.Valid {
			t.Errorf("tx %d flag = %v", i, block.ValidationCode(fl))
		}
	}
	if v.Store().Len() != 5 {
		t.Errorf("state keys = %d, want 5", v.Store().Len())
	}
	if len(res.CommitHash) == 0 {
		t.Error("no commit hash")
	}
	if res.Breakdown.ECDSACount != 1+5*3 { // orderer + 5*(client+2 ends)
		t.Errorf("ecdsa count = %d, want 16", res.Breakdown.ECDSACount)
	}
}

func TestBadClientSignature(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	spec := f.defaultSpec(f.peers[0], f.peers[1])
	bad := func(i int) block.TxSpec {
		s := spec(i)
		if i == 1 {
			s.CorruptClientSig = true
		}
		return s
	}
	b := f.simpleBlock(t, 0, nil, 3, bad)
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	want := []block.ValidationCode{block.Valid, block.BadSignature, block.Valid}
	for i, w := range want {
		if block.ValidationCode(res.Flags[i]) != w {
			t.Errorf("tx %d flag = %v, want %v", i, block.ValidationCode(res.Flags[i]), w)
		}
	}
}

func TestBadEndorsementFailsPolicy(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	spec := f.defaultSpec(f.peers[0], f.peers[1])
	bad := func(i int) block.TxSpec {
		s := spec(i)
		if i == 0 {
			s.CorruptEndorsementIdx = 1 // first endorsement corrupt
		}
		return s
	}
	b := f.simpleBlock(t, 0, nil, 2, bad)
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if block.ValidationCode(res.Flags[0]) != block.EndorsementPolicyFailure {
		t.Errorf("tx 0 flag = %v, want policy failure", block.ValidationCode(res.Flags[0]))
	}
	if block.ValidationCode(res.Flags[1]) != block.Valid {
		t.Errorf("tx 1 flag = %v, want valid", block.ValidationCode(res.Flags[1]))
	}
}

func TestInsufficientEndorsements(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	// Only one endorsement for a 2of2 policy.
	b := f.simpleBlock(t, 0, nil, 1, f.defaultSpec(f.peers[0]))
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if block.ValidationCode(res.Flags[0]) != block.EndorsementPolicyFailure {
		t.Errorf("flag = %v, want policy failure", block.ValidationCode(res.Flags[0]))
	}
}

func TestBadOrdererSignatureRejectsBlock(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	b := f.simpleBlock(t, 0, nil, 2, f.defaultSpec(f.peers[0], f.peers[1]))
	b.Header.Number = 0
	b.Metadata.Signature.Signature[10] ^= 0xff
	_, err := v.ValidateAndCommit(block.Marshal(b))
	if !errors.Is(err, ErrBlockInvalid) {
		t.Errorf("err = %v, want ErrBlockInvalid", err)
	}
	if v.Store().Len() != 0 {
		t.Error("invalid block mutated state")
	}
}

// TestTamperedEnvelopeRejectsBlock flips one byte inside an envelope after
// the block was built and signed: the orderer signature still verifies (it
// covers only the header), so only the DataHash recomputation can catch
// content corrupted in flight. The whole block must be rejected without
// touching state.
func TestTamperedEnvelopeRejectsBlock(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	b := f.simpleBlock(t, 0, nil, 2, f.defaultSpec(f.peers[0], f.peers[1]))
	b.Envelopes[1].Signature[4] ^= 0x40
	_, err := v.ValidateAndCommit(block.Marshal(b))
	if !errors.Is(err, ErrBlockInvalid) {
		t.Errorf("err = %v, want ErrBlockInvalid", err)
	}
	if v.Store().Len() != 0 {
		t.Error("tampered block mutated state")
	}
}

func TestMVCCConflictWithinBlock(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	// tx0 writes "hot"; tx1 reads "hot" at the pre-block version -> conflict.
	spec := func(i int) block.TxSpec {
		s := block.TxSpec{
			Creator:   f.client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			Endorsers: []*identity.Identity{f.peers[0], f.peers[1]},
		}
		if i == 0 {
			s.RWSet = block.RWSet{Writes: []block.KVWrite{{Key: "hot", Value: []byte("1")}}}
		} else {
			s.RWSet = block.RWSet{
				Reads:  []block.KVRead{{Key: "hot", Version: block.Version{}}},
				Writes: []block.KVWrite{{Key: "other", Value: []byte("2")}},
			}
		}
		return s
	}
	b := f.simpleBlock(t, 0, nil, 2, spec)
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if block.ValidationCode(res.Flags[0]) != block.Valid {
		t.Errorf("tx 0 = %v", block.ValidationCode(res.Flags[0]))
	}
	if block.ValidationCode(res.Flags[1]) != block.MVCCReadConflict {
		t.Errorf("tx 1 = %v, want mvcc conflict", block.ValidationCode(res.Flags[1]))
	}
	// tx1's write must NOT be applied.
	if _, err := v.Store().Get("other"); err == nil {
		t.Error("conflicted transaction was committed")
	}
}

func TestMVCCStaleReadAcrossBlocks(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	// Block 0 writes k at version (0,0).
	spec0 := func(i int) block.TxSpec {
		return block.TxSpec{
			Creator: f.client, Chaincode: "smallbank", Channel: "ch1",
			RWSet:     block.RWSet{Writes: []block.KVWrite{{Key: "k", Value: []byte("1")}}},
			Endorsers: []*identity.Identity{f.peers[0], f.peers[1]},
		}
	}
	b0 := f.simpleBlock(t, 0, nil, 1, spec0)
	if _, err := v.ValidateAndCommit(block.Marshal(b0)); err != nil {
		t.Fatal(err)
	}
	// Block 1: tx reads k at a WRONG (stale) version.
	spec1 := func(i int) block.TxSpec {
		return block.TxSpec{
			Creator: f.client, Chaincode: "smallbank", Channel: "ch1",
			RWSet: block.RWSet{
				Reads:  []block.KVRead{{Key: "k", Version: block.Version{BlockNum: 5, TxNum: 3}}},
				Writes: []block.KVWrite{{Key: "k", Value: []byte("2")}},
			},
			Endorsers: []*identity.Identity{f.peers[0], f.peers[1]},
		}
	}
	b1 := f.simpleBlock(t, 1, block.HeaderHash(&b0.Header), 1, spec1)
	res, err := v.ValidateAndCommit(block.Marshal(b1))
	if err != nil {
		t.Fatal(err)
	}
	if block.ValidationCode(res.Flags[0]) != block.MVCCReadConflict {
		t.Errorf("flag = %v, want mvcc conflict", block.ValidationCode(res.Flags[0]))
	}
	// Correct version passes.
	spec2 := func(i int) block.TxSpec {
		return block.TxSpec{
			Creator: f.client, Chaincode: "smallbank", Channel: "ch1",
			RWSet: block.RWSet{
				Reads:  []block.KVRead{{Key: "k", Version: block.Version{BlockNum: 0, TxNum: 0}}},
				Writes: []block.KVWrite{{Key: "k", Value: []byte("3")}},
			},
			Endorsers: []*identity.Identity{f.peers[0], f.peers[1]},
		}
	}
	b2 := f.simpleBlock(t, 2, block.HeaderHash(&b1.Header), 1, spec2)
	res2, err := v.ValidateAndCommit(block.Marshal(b2))
	if err != nil {
		t.Fatal(err)
	}
	if block.ValidationCode(res2.Flags[0]) != block.Valid {
		t.Errorf("flag = %v, want valid", block.ValidationCode(res2.Flags[0]))
	}
}

func TestUnknownChaincodePolicy(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 1)
	spec := func(i int) block.TxSpec {
		return block.TxSpec{
			Creator: f.client, Chaincode: "unknowncc", Channel: "ch1",
			Endorsers: []*identity.Identity{f.peers[0], f.peers[1]},
		}
	}
	b := f.simpleBlock(t, 0, nil, 1, spec)
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if block.ValidationCode(res.Flags[0]) != block.InvalidOther {
		t.Errorf("flag = %v, want InvalidOther", block.ValidationCode(res.Flags[0]))
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// The same block must validate identically with 1 or 8 workers.
	f := newFixture(t, 2)
	spec := f.defaultSpec(f.peers[0], f.peers[1])
	bad := func(i int) block.TxSpec {
		s := spec(i)
		if i%3 == 1 {
			s.CorruptClientSig = true
		}
		return s
	}
	b := f.simpleBlock(t, 0, nil, 9, bad)
	raw := block.Marshal(b)

	v1 := f.validator(t, "2of2", 1)
	v8 := f.validator(t, "2of2", 8)
	r1, err := v1.ValidateAndCommit(raw)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := v8.ValidateAndCommit(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !block.FlagsEqual(r1.Flags, r8.Flags) {
		t.Errorf("flags differ across worker counts: %v vs %v", r1.Flags, r8.Flags)
	}
	if string(r1.CommitHash) != string(r8.CommitHash) {
		t.Error("commit hashes differ across worker counts")
	}
}

func TestBreakdownPopulated(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	b := f.simpleBlock(t, 0, nil, 4, f.defaultSpec(f.peers[0], f.peers[1]))
	res, err := v.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd.Unmarshal <= 0 || bd.VerifyVSCC <= 0 || bd.Total <= 0 {
		t.Errorf("breakdown not populated: %+v", bd)
	}
	if bd.ECDSATime <= 0 || bd.SHA256Count == 0 {
		t.Errorf("op counters not populated: %+v", bd)
	}
	// ECDSA dominates vscc, matching the paper's profile.
	if bd.ECDSATime < bd.SHA256Time {
		t.Errorf("expected ecdsa (%v) > sha256 (%v)", bd.ECDSATime, bd.SHA256Time)
	}
}

func TestLedgerChainAcrossBlocks(t *testing.T) {
	f := newFixture(t, 2)
	v := f.validator(t, "2of2", 2)
	b0 := f.simpleBlock(t, 0, nil, 1, f.defaultSpec(f.peers[0], f.peers[1]))
	r0, err := v.ValidateAndCommit(block.Marshal(b0))
	if err != nil {
		t.Fatal(err)
	}
	b1 := f.simpleBlock(t, 1, block.HeaderHash(&b0.Header), 1, f.defaultSpec(f.peers[0], f.peers[1]))
	r1, err := v.ValidateAndCommit(block.Marshal(b1))
	if err != nil {
		t.Fatal(err)
	}
	want := block.CommitHash(r0.CommitHash, b1.Header.DataHash, r1.Flags)
	if string(r1.CommitHash) != string(want) {
		t.Error("commit hash chain mismatch")
	}
}
