package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide static call graph the interprocedural
// analyzers (lockorder, goroleak) share. The graph is deliberately
// simple: one node per function or method *declared with a body in the
// loaded packages*, one edge per call expression whose callee resolves
// statically to such a function.
//
// Soundness limits, in both directions:
//
//   - Dynamic dispatch is not followed. A call through an interface
//     method, a func-typed field or parameter, or a method value has no
//     edge — behavior behind such calls is invisible, a documented
//     false-negative class (see ARCHITECTURE.md "Static analysis").
//   - Function literals are not graph nodes. Analyzers that care about
//     them (goroleak, for `go func(){...}()`) walk the literal body
//     directly and re-enter the graph at its static call sites.
//
// Node identity is the *types.Func object. This is only meaningful
// because the loader type-checks every module package from source in
// dependency order and reuses the checked package for imports, so the
// object for bmac/internal/wire.GetBuf is pointer-identical whether seen
// from its declaration or from a caller in another package.

// CallGraph is the static call graph over every function declared in the
// loaded packages.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
}

// CallNode is one declared function or method.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *LoadedPackage
	// Calls are the statically-resolved call sites inside Fn's body, in
	// source order.
	Calls []CallSite
}

// CallSite is one resolved call expression.
type CallSite struct {
	Pos    token.Pos
	Callee *CallNode
}

// BuildCallGraph constructs the graph for the loaded packages.
func BuildCallGraph(pkgs []*LoadedPackage) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CallNode{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	for _, node := range g.nodes {
		info := node.Pkg.Info
		calls := &node.Calls
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(info, call).(*types.Func)
			if !ok {
				return true
			}
			if callee, ok := g.nodes[fn]; ok {
				*calls = append(*calls, CallSite{Pos: call.Pos(), Callee: callee})
			}
			return true
		})
	}
	return g
}

// NodeOf returns the graph node declaring fn, or nil when fn has no body
// in the loaded packages (external functions, interface methods).
func (g *CallGraph) NodeOf(fn *types.Func) *CallNode {
	if g == nil {
		return nil
	}
	return g.nodes[fn]
}

// Len reports the number of functions in the graph.
func (g *CallGraph) Len() int { return len(g.nodes) }
