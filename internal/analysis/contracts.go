package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file centralizes the repo's hot-path contract surface — the
// function sets the analyzers key on — so a future PR that adds a decoder
// or pool entry point extends the checks by editing one table.

// wirePkg and blockPkg are the packages owning the buffer-ownership and
// aliasing contracts (see internal/wire/pool.go and the internal/block
// package comment).
const (
	wirePkg  = "bmac/internal/wire"
	blockPkg = "bmac/internal/block"
)

// aliasingDecoders maps package path → function names whose results alias
// the input buffer (the zero-copy decode contract). UnmarshalCopy is the
// deliberate omission: it detaches the result and is the escape hatch
// aliasguard steers callers toward.
var aliasingDecoders = map[string]map[string]bool{
	blockPkg: {
		"Unmarshal":                        true,
		"UnmarshalEnvelope":                true,
		"UnmarshalHeader":                  true,
		"UnmarshalTransactionPayload":      true,
		"UnmarshalProposalResponsePayload": true,
		"UnmarshalChaincodeAction":         true,
		"UnmarshalRWSet":                   true,
		"UnmarshalSignatureHeader":         true,
		"UnmarshalChannelHeader":           true,
	},
}

// poolGet / poolPut are the marshal-buffer pool entry points whose
// ownership contract aliasguard enforces.
var (
	poolGet = funcRef{wirePkg, "GetBuf"}
	poolPut = funcRef{wirePkg, "PutBuf"}
)

// funcRef names a package-level function.
type funcRef struct {
	pkg, name string
}

// calleeObject resolves the called function or method object of a call
// expression, or nil when the callee is dynamic (func values, builtins
// resolve to nil too unless named).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: wire.PutBuf(...).
		return info.Uses[fun.Sel]
	}
	return nil
}

// isCallTo reports whether call invokes the named package-level function.
func isCallTo(info *types.Info, call *ast.CallExpr, ref funcRef) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == ref.pkg && fn.Name() == ref.name
}

// aliasingDecoderName returns the qualified name of the aliasing decoder
// a call invokes, or "" when the call is not one.
func aliasingDecoderName(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	names := aliasingDecoders[fn.Pkg().Path()]
	if names == nil || !names[fn.Name()] {
		return ""
	}
	return shortPkg(fn.Pkg().Path()) + "." + fn.Name()
}

// shortPkg abbreviates an import path to its final element for messages.
func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// funcDisplayName renders a *types.Func for diagnostics:
// pkg.Name for functions, (pkg.Recv).Name for methods.
func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), shortQualifier), fn.Name())
	}
	if fn.Pkg() != nil {
		return shortPkg(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}

func shortQualifier(p *types.Package) string { return shortPkg(p.Path()) }
