package analysis

import "fmt"

// All returns the full analyzer suite in the order bmaclint runs it:
// the per-package contract checks first, then the interprocedural
// module analyzers that share the call graph.
func All() []*Analyzer {
	return []*Analyzer{AliasGuard, NilSafe, GuardedBy, ErrDiscard, LockOrder, GoroLeak, AllocBound}
}

// Select filters the suite by comma-separated analyzer names ("" selects
// all). Unknown names are an error so CI typos fail loudly.
func Select(only string) ([]*Analyzer, error) {
	if only == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range splitComma(only) {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
