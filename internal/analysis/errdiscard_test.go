package analysis_test

import (
	"testing"

	"bmac/internal/analysis"
	"bmac/internal/analysis/analysistest"
)

func TestErrDiscard(t *testing.T) {
	analysis.ErrDiscardAllowlist["errlib.Allowed"] = true
	defer delete(analysis.ErrDiscardAllowlist, "errlib.Allowed")
	analysistest.Run(t, analysistest.TestData(t), analysis.ErrDiscard, "bmac/fixtures/errdiscard")
}
