package analysis_test

import (
	"testing"

	"bmac/internal/analysis"
	"bmac/internal/analysis/analysistest"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.GoroLeak, "goroleak")
}
