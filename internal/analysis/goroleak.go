package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every `go` statement in non-test code to have a
// provable stop path. A goroutine is accepted when its body — searched
// transitively through the static call graph — either
//
//   - contains no unbounded loop (`for` with no condition), so it runs
//     to completion on its own, or
//   - reaches one of the recognized stop constructs: a call to
//     (*sync.WaitGroup).Done, a receive from ctx.Done(), a select with a
//     channel-receive case whose body returns or breaks, a
//     `v, ok := <-ch` receive, or a range over a channel.
//
// Anything else is a leak candidate: a goroutine that spins or blocks
// forever with no shutdown signal, the failure mode that turns churn
// tests into slow memory exhaustion. Sites whose termination is managed
// externally carry `bmaclint:allow goroleak <reason>` on the go
// statement's line. Goroutines spawned through dynamic calls (func
// values from fields, interface methods, external functions) cannot be
// analyzed and must carry the annotation too.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement must reach a provable stop path " +
		"(WaitGroup.Done, stop-channel select, ctx.Done) or carry bmaclint:allow goroleak",
	RunModule: runGoroLeak,
}

func runGoroLeak(mp *ModulePass) error {
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if gs, ok := n.(*ast.GoStmt); ok {
						checkGoStmt(mp, pkg, fd, gs)
					}
					return true
				})
			}
		}
	}
	return nil
}

// checkGoStmt verifies one go statement.
func checkGoStmt(mp *ModulePass, pkg *LoadedPackage, fd *ast.FuncDecl, gs *ast.GoStmt) {
	if mp.lineHasMarker(gs.Pos(), markerAllow, "goroleak") {
		return
	}
	scan := &goroScan{graph: mp.Graph, visited: map[*types.Func]bool{}}

	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		scan.scanBody(pkg.Info, fun.Body)
	default:
		if fn, ok := calleeObject(pkg.Info, gs.Call).(*types.Func); ok {
			if mp.Graph.NodeOf(fn) == nil {
				mp.Reportf(gs.Pos(),
					"goroutine runs %s, which is outside the module and cannot be checked for a stop path; annotate // %s goroleak (reason)",
					funcDisplayName(fn), markerAllow)
				return
			}
			scan.scanFunc(fn)
			break
		}
		// go worker() where worker is a local variable: resolvable when
		// the enclosing function binds it to exactly one func literal.
		if id, ok := fun.(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
				if lit := localFuncLit(pkg.Info, fd, v); lit != nil {
					scan.scanBody(pkg.Info, lit.Body)
					break
				}
			}
		}
		mp.Reportf(gs.Pos(),
			"cannot statically resolve the goroutine's body (dynamic call); annotate // %s goroleak (reason)",
			markerAllow)
		return
	}

	if scan.hasStop || !scan.hasLoop {
		return
	}
	mp.Reportf(gs.Pos(),
		"goroutine loops forever with no provable stop path (no WaitGroup.Done, stop-channel select with return/break, range-over-channel, or ctx.Done reachable); wire a stop signal or annotate // %s goroleak (reason)",
		markerAllow)
}

// goroScan is the transitive stop-path search state.
type goroScan struct {
	graph   *CallGraph
	visited map[*types.Func]bool
	// hasLoop: an unbounded `for` loop is reachable. hasStop: a stop
	// construct is reachable. The goroutine is accepted unless it loops
	// without a stop.
	hasLoop, hasStop bool
}

// scanFunc continues the search in a declared function's body.
func (s *goroScan) scanFunc(fn *types.Func) {
	if s.hasStop || s.visited[fn] {
		return
	}
	s.visited[fn] = true
	node := s.graph.NodeOf(fn)
	if node == nil {
		return
	}
	s.scanBody(node.Pkg.Info, node.Decl.Body)
}

// scanBody walks one body. Nested `go` statements are skipped (their
// bodies run in other goroutines); function literals are walked, since
// the common uses — defer func(){...}() and immediate calls — execute in
// this goroutine.
func (s *goroScan) scanBody(info *types.Info, body ast.Node) {
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if s.hasStop {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				s.hasLoop = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				s.hasStop = true
				return false
			}
		case *ast.SelectStmt:
			if selectHasStopCase(n) {
				s.hasStop = true
				return false
			}
		case *ast.AssignStmt:
			// v, ok := <-ch detects channel close.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ue, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					s.hasStop = true
					return false
				}
			}
		case *ast.CallExpr:
			if fn, ok := calleeObject(info, n).(*types.Func); ok {
				if isStopCall(fn) {
					s.hasStop = true
					return false
				}
				callees = append(callees, fn)
			}
		}
		return true
	})
	for _, fn := range callees {
		if s.hasStop {
			return
		}
		s.scanFunc(fn)
	}
}

// isStopCall recognizes the method calls that prove termination is
// managed: (*sync.WaitGroup).Done and (context.Context).Done.
func isStopCall(fn *types.Func) bool {
	if fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync":
		return named.Obj().Name() == "WaitGroup"
	case "context":
		return named.Obj().Name() == "Context"
	}
	return false
}

// selectHasStopCase reports whether any channel-receive case of a select
// returns or breaks — the canonical stop-channel shape.
func selectHasStopCase(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		recv := false
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr)
			recv = ok && ue.Op == token.ARROW
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				ue, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr)
				recv = ok && ue.Op == token.ARROW
			}
		}
		if !recv {
			continue
		}
		for _, stmt := range cc.Body {
			if stmtStops(stmt) {
				return true
			}
		}
	}
	return false
}

// stmtStops reports whether stmt contains a return or break (outside
// nested function literals).
func stmtStops(stmt ast.Stmt) bool {
	stops := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			stops = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				stops = true
			}
		}
		return !stops
	})
	return stops
}

// isChanType reports whether t is (an alias of) a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// localFuncLit finds the single function literal bound to v inside fn's
// body (worker := func(){...}; go worker()). Multiple or non-literal
// bindings return nil — the spawn is then unresolvable.
func localFuncLit(info *types.Info, fd *ast.FuncDecl, v *types.Var) *ast.FuncLit {
	var lit *ast.FuncLit
	bindings := 0
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if info.Defs[id] != v && info.Uses[id] != v {
			return
		}
		bindings++
		if fl, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			lit = fl
		} else {
			lit = nil
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	if bindings != 1 {
		return nil
	}
	return lit
}
