package analysis_test

import (
	"testing"

	"bmac/internal/analysis"
	"bmac/internal/analysis/analysistest"
)

func TestAllocBound(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.AllocBound, "allocbound")
}
