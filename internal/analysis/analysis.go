// Package analysis is the repo's static-analysis toolkit: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus the custom analyzers that
// machine-check the hot-path contracts PRs 5–6 introduced:
//
//   - aliasguard: the block.Unmarshal zero-copy aliasing contract and the
//     wire.GetBuf/PutBuf buffer-ownership contract
//   - nilsafe: the telemetry "zero-cost-when-off" discipline (nil-receiver
//     guards on instrument methods)
//   - guardedby: `// guarded by <mu>` field annotations (mutex discipline)
//   - errdiscard: no silently discarded error results from this module's
//     packages
//
// The x/tools module is deliberately not imported: the toolkit loads
// packages itself via `go list -export -json -deps` and type-checks the
// analyzed packages from source with go/types, resolving imports through
// the compiler's export data. That keeps bmaclint self-contained — it
// builds offline with the standard library only.
//
// Contracts live where the code lives: analyzers are driven by source
// annotations (`// guarded by mu`, `bmaclint:nilsafe`,
// `bmaclint:allow errdiscard`) and by the documented function sets in
// contracts.go. See ARCHITECTURE.md "Static analysis" for the annotation
// reference.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks could migrate to
// the upstream driver unchanged if the dependency ever becomes available.
// Exactly one of Run and RunModule is set: per-package analyzers see one
// package at a time, module analyzers see the whole load at once (with
// the shared call graph) for interprocedural checks.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text shown by bmaclint -help.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
	// RunModule analyzes every loaded package together. Set instead of Run
	// for checks that must follow calls across package boundaries
	// (lockorder, goroleak) or invoke the toolchain once per module
	// (allocbound).
	RunModule func(*ModulePass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results for the package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the import-path prefix of the module under analysis
	// ("bmac" here); analyzers use it to scope rules to in-module code.
	ModulePath string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries a module analyzer's view of the entire load: every
// package, sharing one FileSet and one types object universe (the loader
// type-checks module packages from source in dependency order, so a
// types.Object seen while analyzing one package is pointer-identical when
// referenced from another — the property the call graph is keyed on).
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs are all packages under analysis, in load (dependency) order.
	Pkgs []*LoadedPackage
	// ModulePath is the import-path prefix of the module under analysis.
	ModulePath string
	// Graph is the module-wide static call graph, built once per run and
	// shared across module analyzers.
	Graph *CallGraph

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// SortDiagnostics orders findings by file, line, column, then analyzer —
// the stable order bmaclint prints and tests compare against.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Timing is the wall-clock cost of one stage of a run (an analyzer, or
// the shared call-graph build), reported by bmaclint -v.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzers applies each analyzer to the loaded packages and returns
// the combined, sorted findings.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersTimed is RunAnalyzers plus per-stage wall-clock timings.
// Packages are type-checked once by the caller's loader and shared across
// every analyzer here; when any module analyzer is selected the call
// graph is built once, up front, and shared too.
func RunAnalyzersTimed(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	modulePath := "bmac"
	if len(pkgs) > 0 {
		modulePath = pkgs[0].ModulePath
	}

	var timings []Timing
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule != nil {
			start := time.Now()
			graph = BuildCallGraph(pkgs)
			timings = append(timings, Timing{Name: "callgraph", Elapsed: time.Since(start)})
			break
		}
	}

	for _, a := range analyzers {
		start := time.Now()
		if a.RunModule != nil {
			mpass := &ModulePass{
				Analyzer:   a,
				Fset:       fsetOf(pkgs),
				Pkgs:       pkgs,
				ModulePath: modulePath,
				Graph:      graph,
				report:     report,
			}
			if err := a.RunModule(mpass); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		} else {
			for _, pkg := range pkgs {
				pass := &Pass{
					Analyzer:   a,
					Fset:       pkg.Fset,
					Files:      pkg.Files,
					Pkg:        pkg.Types,
					TypesInfo:  pkg.Info,
					ModulePath: pkg.ModulePath,
					report:     report,
				}
				if err := a.Run(pass); err != nil {
					return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
				}
			}
		}
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
	}
	SortDiagnostics(diags)
	return diags, timings, nil
}

// fsetOf returns the FileSet shared by the loaded packages (the loader
// parses every package into one).
func fsetOf(pkgs []*LoadedPackage) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset
	}
	return token.NewFileSet()
}
