// Package analysis is the repo's static-analysis toolkit: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus the custom analyzers that
// machine-check the hot-path contracts PRs 5–6 introduced:
//
//   - aliasguard: the block.Unmarshal zero-copy aliasing contract and the
//     wire.GetBuf/PutBuf buffer-ownership contract
//   - nilsafe: the telemetry "zero-cost-when-off" discipline (nil-receiver
//     guards on instrument methods)
//   - guardedby: `// guarded by <mu>` field annotations (mutex discipline)
//   - errdiscard: no silently discarded error results from this module's
//     packages
//
// The x/tools module is deliberately not imported: the toolkit loads
// packages itself via `go list -export -json -deps` and type-checks the
// analyzed packages from source with go/types, resolving imports through
// the compiler's export data. That keeps bmaclint self-contained — it
// builds offline with the standard library only.
//
// Contracts live where the code lives: analyzers are driven by source
// annotations (`// guarded by mu`, `bmaclint:nilsafe`,
// `bmaclint:allow errdiscard`) and by the documented function sets in
// contracts.go. See ARCHITECTURE.md "Static analysis" for the annotation
// reference.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks could migrate to
// the upstream driver unchanged if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text shown by bmaclint -help.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results for the package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the import-path prefix of the module under analysis
	// ("bmac" here); analyzers use it to scope rules to in-module code.
	ModulePath string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// SortDiagnostics orders findings by file, line, column, then analyzer —
// the stable order bmaclint prints and tests compare against.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzers applies each analyzer to each loaded package and returns
// the combined, sorted findings.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ModulePath: pkg.ModulePath,
				report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
