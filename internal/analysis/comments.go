package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Annotation markers recognized across the analyzers. They are ordinary
// comments, so the code still reads naturally without the toolchain:
//
//	// guarded by mu                         (struct field: mutex discipline)
//	// bmaclint:nilsafe                      (type: nil receivers must be guarded)
//	// bmaclint:holds mu                     (func: caller guarantees mu is held)
//	// bmaclint:noalloc                      (func: body must not allocate)
//	// bmaclint:allow errdiscard (reason)    (stmt: discarded error is intentional)
const (
	markerNilSafe  = "bmaclint:nilsafe"
	markerHolds    = "bmaclint:holds"
	markerAllow    = "bmaclint:allow"
	markerNoAlloc  = "bmaclint:noalloc"
	markerGuarded  = "guarded by"
	suffixLocked   = "Locked"
	prefixAnalyzer = "bmaclint"
)

// guardedByRe extracts the mutex field name from a `// guarded by <mu>`
// annotation. The name must be a plain identifier: the mutex is required
// to be a sibling field of the annotated one.
var guardedByRe = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)\b`)

// nilSafeProseRe matches the documentation convention predating the
// marker: "A nil Counter is valid ...". Types documented this way opt in
// to nilsafe checking without a separate annotation.
var nilSafeProseRe = regexp.MustCompile(`\bA nil [A-Za-z_][A-Za-z0-9_]* is valid\b`)

// heldProseRe matches the doc convention for lock-expecting helpers:
// "... must be called with s.mu held". Such functions are exempt from
// guardedby at their access sites (their callers carry the obligation).
// \s crosses newlines deliberately: doc comments wrap, and "with r.mu"
// routinely lands on a different line than "held".
var heldProseRe = regexp.MustCompile(`must be called with(?:\s+\S+){0,5}\s+held\b`)

// commentText flattens a comment group to its text ("" for nil).
func commentText(g *ast.CommentGroup) string {
	if g == nil {
		return ""
	}
	return g.Text()
}

// fileOf returns the *ast.File of pass.Files containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// fileOf returns the *ast.File of the loaded packages containing pos.
func (p *ModulePass) fileOf(pos token.Pos) *ast.File {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos <= f.FileEnd {
				return f
			}
		}
	}
	return nil
}

// lineHasMarker reports whether a comment carrying marker (plus any
// arguments in args, all of which must appear) is attached to the source
// line at pos: either trailing on the same line or alone on the line
// directly above.
func (p *Pass) lineHasMarker(pos token.Pos, marker string, args ...string) bool {
	return markerOnLine(p.Fset, p.fileOf(pos), pos, marker, args...)
}

// lineHasMarker is the ModulePass counterpart of Pass.lineHasMarker.
func (p *ModulePass) lineHasMarker(pos token.Pos, marker string, args ...string) bool {
	return markerOnLine(p.Fset, p.fileOf(pos), pos, marker, args...)
}

// markerOnLine implements lineHasMarker against an explicit file.
func markerOnLine(fset *token.FileSet, f *ast.File, pos token.Pos, marker string, args ...string) bool {
	if f == nil {
		return false
	}
	line := fset.Position(pos).Line
	for _, g := range f.Comments {
		gStart := fset.Position(g.Pos()).Line
		gEnd := fset.Position(g.End()).Line
		if gStart != line && gEnd != line-1 {
			continue
		}
		text := g.Text()
		if !strings.Contains(text, marker) {
			continue
		}
		ok := true
		for _, a := range args {
			if !strings.Contains(text, a) {
				ok = false
			}
		}
		if ok {
			return true
		}
	}
	return false
}
