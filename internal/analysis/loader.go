package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	PkgPath    string
	Dir        string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Loader resolves and type-checks packages without golang.org/x/tools.
//
// Analyzed packages are parsed and type-checked from source; their imports
// are satisfied from compiler export data discovered via
// `go list -export -json -deps`, so a load is as fast as a cached build.
// Overlay maps import paths to fixture source directories — the
// analysistest harness uses it to inject testdata packages that shadow (or
// extend) the real module; overlay packages and their overlay imports are
// type-checked from source recursively, while non-overlay imports fall
// back to export data.
type Loader struct {
	// Dir is the working directory for go list invocations; it must be
	// inside the module under analysis. Empty means the process cwd.
	Dir string
	// Overlay maps an import path to a directory of fixture source files.
	Overlay map[string]string

	fset    *token.FileSet
	listed  map[string]*listPkg
	checked map[string]*types.Package // packages imported from export data or overlay source
	gcImp   types.Importer
	module  string
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:     dir,
		Overlay: map[string]string{},
		fset:    token.NewFileSet(),
		listed:  map[string]*listPkg{},
		checked: map[string]*types.Package{},
	}
	l.gcImp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// Load lists the packages matching patterns (go list syntax, e.g. "./...")
// and type-checks each from source, ready for analysis.
func (l *Loader) Load(patterns ...string) ([]*LoadedPackage, error) {
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*LoadedPackage
	for _, path := range targets {
		lp, err := l.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// LoadOverlay type-checks one overlay (fixture) package as an analysis
// target.
func (l *Loader) LoadOverlay(path string) (*LoadedPackage, error) {
	if _, ok := l.Overlay[path]; !ok {
		return nil, fmt.Errorf("analysis: %s is not an overlay package", path)
	}
	return l.check(path)
}

// ModulePath reports the module path of the packages under analysis,
// discovered from go list (falls back to "bmac" for pure-overlay loads
// that never touch the module).
func (l *Loader) ModulePath() string {
	if l.module == "" {
		if out, err := l.run("go", "list", "-m"); err == nil {
			l.module = strings.TrimSpace(string(out))
		}
	}
	if l.module == "" {
		l.module = "bmac"
	}
	return l.module
}

// goList runs go list with -export -deps over patterns, recording every
// result, and returns the non-dep-only (target) import paths in order.
func (l *Loader) goList(patterns ...string) ([]string, error) {
	args := append([]string{"list", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Module,Error", "-deps"}, patterns...)
	out, err := l.run("go", args...)
	if err != nil {
		return nil, err
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		l.listed[p.ImportPath] = p
		if !p.DepOnly {
			if p.Module != nil && l.module == "" {
				l.module = p.Module.Path
			}
			targets = append(targets, p.ImportPath)
		}
	}
	return targets, nil
}

func (l *Loader) run(name string, args ...string) ([]byte, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: %s %s: %v\n%s", name, strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// lookupExport feeds the gc importer the export-data file for path,
// discovering it via go list on first miss.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	p, ok := l.listed[path]
	if !ok || p.Export == "" {
		if _, err := l.goList(path); err != nil {
			return nil, err
		}
		p, ok = l.listed[path]
	}
	if !ok || p.Export == "" {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// Import implements types.Importer: overlay packages come from source,
// everything else from export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	if _, ok := l.Overlay[path]; ok {
		lp, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return lp.Types, nil
	}
	pkg, err := l.gcImp.Import(path)
	if err != nil {
		return nil, err
	}
	l.checked[path] = pkg
	return pkg, nil
}

// sourceFiles returns the directory and build-constrained .go files of
// path: the overlay directory for overlay packages (every non-test .go
// file), or go list's GoFiles for module packages.
func (l *Loader) sourceFiles(path string) (string, []string, error) {
	if dir, ok := l.Overlay[path]; ok {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", nil, fmt.Errorf("analysis: overlay %s: %w", path, err)
		}
		var files []string
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				files = append(files, name)
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			return "", nil, fmt.Errorf("analysis: overlay %s: no Go files in %s", path, dir)
		}
		return dir, files, nil
	}
	p, ok := l.listed[path]
	if !ok {
		if _, err := l.goList(path); err != nil {
			return "", nil, err
		}
		p = l.listed[path]
	}
	if p == nil {
		return "", nil, fmt.Errorf("analysis: package %q not found", path)
	}
	return p.Dir, p.GoFiles, nil
}

// check parses and type-checks path from source.
func (l *Loader) check(path string) (*LoadedPackage, error) {
	dir, names, err := l.sourceFiles(path)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.checked[path] = pkg
	return &LoadedPackage{
		PkgPath:    path,
		Dir:        dir,
		ModulePath: l.ModulePath(),
		Fset:       l.fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}
