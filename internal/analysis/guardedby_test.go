package analysis_test

import (
	"testing"

	"bmac/internal/analysis"
	"bmac/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.GuardedBy, "guardedby")
}
