package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lock-set propagation shared state for the lockorder analyzer.
//
// A lock *class* is a mutex declaration site: a struct field of type
// sync.Mutex/sync.RWMutex (all instances of the struct share the class)
// or a package-level mutex variable. The analysis is class-level, not
// instance-level: "Service.mu is held while pipe.mu is acquired" is an
// ordering fact between classes. Same-class nesting (one instance's mu
// held while another instance's mu — statically indistinguishable from
// the same instance's — is acquired) is reported as a self-deadlock
// candidate, because Go mutexes are not reentrant.
//
// Per function, the scanner produces a linear source-order approximation
// of the body: acquire events (x.mu.Lock / x.mu.RLock), release events
// (non-deferred Unlock/RUnlock — deferred unlocks hold to function end),
// and statically-resolved call sites, each with the set of classes held
// at that point. RLock counts as holding: reader/writer ordering still
// deadlocks when inverted.

// lockClass identifies one mutex declaration site.
type lockClass struct {
	obj  types.Object
	name string // display name: (delivery.Service).mu or wire.poolMu
}

// lockEventKind discriminates the per-function scan events.
type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evCall
)

// lockEvent is one acquire, release, or call site in source order.
type lockEvent struct {
	kind  lockEventKind
	pos   token.Pos
	class *lockClass  // evAcquire / evRelease
	fn    *types.Func // evCall
}

// lockSummary is one function's scanned lock behavior.
type lockSummary struct {
	node *CallNode
	// entry are classes the function's contract says are held on entry
	// (*Locked suffix, bmaclint:holds, "must be called with ... held").
	entry []*lockClass
	// events is the source-ordered acquire/release/call stream.
	events []lockEvent
}

// lockClasses interns lock classes by declaration object.
type lockClasses struct {
	byObj map[types.Object]*lockClass
}

func newLockClasses() *lockClasses {
	return &lockClasses{byObj: map[types.Object]*lockClass{}}
}

// classOf interns the lock class of a mutex object (a struct field or a
// variable), deriving the display name from recv — the type the field
// was selected from — when the object is a field.
func (lc *lockClasses) classOf(obj types.Object, recv types.Type) *lockClass {
	if c, ok := lc.byObj[obj]; ok {
		return c
	}
	c := &lockClass{obj: obj, name: lockClassName(obj, recv)}
	lc.byObj[obj] = c
	return c
}

// lockClassName renders a class for diagnostics.
func lockClassName(obj types.Object, recv types.Type) string {
	if recv != nil {
		t := recv
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		return "(" + types.TypeString(t, shortQualifier) + ")." + obj.Name()
	}
	if obj.Pkg() != nil {
		return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
	}
	return obj.Name()
}

// scanLocks builds the lock summary for one graph node.
func scanLocks(node *CallNode, classes *lockClasses) *lockSummary {
	return &lockSummary{
		node:   node,
		entry:  entryHeld(node, classes),
		events: scanLockEvents(node.Pkg.Info, node.Decl.Body, classes),
	}
}

// scanLockEvents collects the source-ordered acquire/release/call stream
// of one body. Function literals are skipped: their bodies execute at an
// unknown time, so attributing their acquires to this body's linear
// order would invent orderings that never happen (lockorder scans them
// separately as anonymous summaries).
func scanLockEvents(info *types.Info, body *ast.BlockStmt, classes *lockClasses) []lockEvent {
	var events []lockEvent
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred unlock releases at return, not here; a deferred
			// Lock would be bizarre. Calls still matter: the classic
			// `defer mu.Unlock()` must not count as an in-order release,
			// so the whole subtree is skipped except resolved calls to
			// module functions (rare in defers of interest).
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "Unlock", "RUnlock":
					if c := mutexOperand(info, sel, classes); c != nil {
						kind := evAcquire
						if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
							kind = evRelease
						}
						events = append(events, lockEvent{kind: kind, pos: n.Pos(), class: c})
						return true
					}
				}
			}
			if fn, ok := calleeObject(info, n).(*types.Func); ok {
				events = append(events, lockEvent{kind: evCall, pos: n.Pos(), fn: fn})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// mutexOperand resolves the receiver of a Lock/Unlock-family call to its
// lock class, or nil when the receiver is not a recognized mutex
// declaration (a local mutex variable is recognized too — fixtures and
// scoped locks use them).
func mutexOperand(info *types.Info, sel *ast.SelectorExpr, classes *lockClasses) *lockClass {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// x.mu.Lock(): the field selection carries the class.
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal && isMutexType(s.Obj().Type()) {
			return classes.classOf(s.Obj(), s.Recv())
		}
		// pkg.Mu.Lock(): package-qualified variable.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isMutexType(v.Type()) {
			return classes.classOf(v, nil)
		}
	case *ast.Ident:
		// mu.Lock(): package-level or local mutex variable.
		if v, ok := info.Uses[x].(*types.Var); ok && isMutexType(v.Type()) {
			return classes.classOf(v, nil)
		}
	}
	return nil
}

// entryHeld derives the classes a function holds on entry from the
// repo's caller-holds conventions: the *Locked naming suffix, the
// `bmaclint:holds <mu>` marker, and the "must be called with <x>.<mu>
// held" doc prose. The named mutex is resolved against the receiver's
// struct type; a *Locked method on a struct with exactly one mutex field
// needs no name at all.
func entryHeld(node *CallNode, classes *lockClasses) []*lockClass {
	fd := node.Decl
	doc := commentText(fd.Doc)
	lockedFn := strings.HasSuffix(fd.Name.Name, suffixLocked) || strings.HasSuffix(fd.Name.Name, "locked")
	holdsIdx := strings.Index(doc, markerHolds)
	prose := heldProseRe.MatchString(doc)
	if !lockedFn && holdsIdx < 0 && !prose {
		return nil
	}

	recv, fields := receiverMutexFields(node)
	if len(fields) == 0 {
		return nil
	}
	// bmaclint:holds mu names the field explicitly.
	if holdsIdx >= 0 {
		rest := strings.Fields(doc[holdsIdx+len(markerHolds):])
		if len(rest) > 0 {
			for _, f := range fields {
				if f.Name() == rest[0] {
					return []*lockClass{classes.classOf(f, recv)}
				}
			}
		}
	}
	// Prose names the mutex as <something>.<mu>; match on the last path
	// element. A lone mutex field resolves unambiguously for any of the
	// conventions.
	if len(fields) == 1 {
		return []*lockClass{classes.classOf(fields[0], recv)}
	}
	if prose {
		m := heldProseRe.FindString(doc)
		for _, f := range fields {
			if strings.Contains(m, "."+f.Name()+" ") || strings.HasSuffix(m, "."+f.Name()) ||
				strings.Contains(m, " "+f.Name()+" ") {
				return []*lockClass{classes.classOf(f, recv)}
			}
		}
	}
	return nil
}

// receiverMutexFields lists the mutex-typed fields of a method's
// receiver struct (nil receiver type or non-struct: none).
func receiverMutexFields(node *CallNode) (types.Type, []*types.Var) {
	sig, ok := node.Fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	t := sig.Recv().Type()
	under := t
	if ptr, ok := under.(*types.Pointer); ok {
		under = ptr.Elem()
	}
	st, ok := under.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); isMutexType(f.Type()) {
			out = append(out, f)
		}
	}
	return t, out
}
