package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDiscard flags discarded error results from this module's own
// functions: `_ = f()` blank-assignments and bare call statements whose
// callee is declared under the module path and returns an error. Errors
// from the standard library are left to reviewers (flagging every
// fmt.Fprintf would bury the signal); errors minted by our own packages
// encode validation, durability and protocol failures the hot path must
// not swallow.
//
// Intentional discards are annotated at the call site:
//
//	_ = h.Write(key, val, ver) // bmaclint:allow errdiscard (write-through never fails)
//
// so every swallowed error carries its justification in the diff. An
// analyzer-level Allowlist of function display names (as printed in the
// diagnostic) exists for generated or fixture code.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc: "flag discarded error results from in-module functions; " +
		"annotate intentional discards with bmaclint:allow errdiscard (reason)",
	Run: runErrDiscard,
}

// ErrDiscardAllowlist exempts functions by display name, e.g.
// "(*statedb.HybridKVS).Write". Checked after inline annotations.
var ErrDiscardAllowlist = map[string]bool{}

func runErrDiscard(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				checkDiscardAssign(pass, st)
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call)
				}
			}
			return true
		})
	}
	return nil
}

// checkDiscardAssign flags `_ = f()` (and `v, _ := f()` when the blank
// slot is f's error result).
func checkDiscardAssign(pass *Pass, st *ast.AssignStmt) {
	// Single call, multiple results: v, _ := f().
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				reportDiscard(pass, lhs.Pos(), call)
			}
		}
		return
	}
	// Parallel form: _ = f(), or a, _ = f(), g().
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) || i >= len(st.Rhs) {
			continue
		}
		call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[call]; ok && isErrorType(tv.Type) {
			reportDiscard(pass, lhs.Pos(), call)
		}
	}
}

// checkBareCall flags expression-statement calls that drop an error
// result on the floor entirely.
func checkBareCall(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	errIdx := -1
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				errIdx = i
			}
		}
	default:
		if isErrorType(tv.Type) {
			errIdx = 0
		}
	}
	if errIdx >= 0 {
		reportDiscard(pass, call.Pos(), call)
	}
}

// reportDiscard emits the diagnostic unless the callee is outside the
// module, allowlisted, or the statement carries an inline allow marker.
func reportDiscard(pass *Pass, pos token.Pos, call *ast.CallExpr) {
	fn, ok := calleeObject(pass.TypesInfo, call).(*types.Func)
	if !ok || !inModule(pass, fn) {
		return
	}
	name := funcDisplayName(fn)
	if ErrDiscardAllowlist[name] {
		return
	}
	if pass.lineHasMarker(pos, markerAllow, "errdiscard") {
		return
	}
	pass.Reportf(pos, "error result of %s discarded; handle it or annotate the line with // %s errdiscard (reason)", name, markerAllow)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// inModule reports whether fn is declared in the analyzed module.
func inModule(pass *Pass, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == pass.ModulePath || strings.HasPrefix(path, pass.ModulePath+"/")
}
