package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
)

// LockOrder derives the module's mutex acquisition order and reports
// lock-order inversions — the statically detectable deadlock class. The
// analysis is interprocedural: a function's transitive acquire set is
// propagated through the call graph, so holding delivery.Service.mu
// while calling into telemetry is an ordering edge Service.mu →
// Registry.mu even though the Registry lock is taken three calls deep.
//
// Reported findings:
//
//   - inversion: class A is acquired while B is held on one path and B
//     while A is held on another (any cycle through the class-level
//     order graph);
//   - self-deadlock: a class is acquired while an instance of the same
//     class is already held — statically indistinguishable from
//     re-locking the same instance, which Go mutexes do not support.
//
// Acquire sites can be excepted with `bmaclint:allow lockorder (reason)`
// on the acquiring line when the nesting is instance-disjoint by
// construction. Calls through interfaces or func values are not
// followed (see callgraph.go) — orderings hidden behind dynamic dispatch
// are a documented false-negative class.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order must be cycle-free across the module " +
		"(lock-order inversions are potential deadlocks)",
	RunModule: runLockOrder,
}

// lockEdge is one observed ordering fact: holder was held when held was
// acquired.
type lockEdge struct {
	pos    token.Pos // where the ordering was established (acquire or call site)
	acqPos token.Pos // where the second lock is actually acquired
	via    string    // callee the acquire was reached through ("" when direct)
}

func runLockOrder(mp *ModulePass) error {
	classes := newLockClasses()

	// Deterministic function order: package load order, file order,
	// declaration order. The graph's node map must not drive iteration.
	var nodes []*CallNode
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if n := mp.Graph.NodeOf(fn); n != nil {
					nodes = append(nodes, n)
				}
			}
		}
	}

	summaries := make([]*lockSummary, 0, len(nodes))
	byFn := map[*types.Func]*lockSummary{}
	for _, n := range nodes {
		s := scanLocks(n, classes)
		summaries = append(summaries, s)
		byFn[n.Fn] = s
	}

	// Function literals run at an unknown time relative to their
	// enclosing body, so they are scanned as standalone anonymous
	// summaries: their internal orderings count, their acquires do not
	// leak into the enclosing function's linear order.
	var litSummaries []*lockSummary
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			info := pkg.Info
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					litSummaries = append(litSummaries,
						&lockSummary{events: scanLockEvents(info, lit.Body, classes)})
				}
				return true
			})
		}
	}

	trans := propagateAcquires(summaries, byFn)

	// Assemble the class-level ordering graph.
	edges := map[[2]*lockClass]*lockEdge{}
	addEdge := func(holder, acquired *lockClass, pos, acqPos token.Pos, via string) {
		key := [2]*lockClass{holder, acquired}
		if _, ok := edges[key]; !ok {
			edges[key] = &lockEdge{pos: pos, acqPos: acqPos, via: via}
		}
	}
	record := func(s *lockSummary) {
		var held []*lockClass
		if s.node != nil {
			held = append(held, s.entry...)
		}
		for _, ev := range s.events {
			switch ev.kind {
			case evAcquire:
				for _, h := range held {
					addEdge(h, ev.class, ev.pos, ev.pos, "")
				}
				held = append(held, ev.class)
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				if len(held) == 0 {
					continue
				}
				acq := trans[ev.fn]
				if len(acq) == 0 {
					continue
				}
				for _, a := range sortedAcquires(acq) {
					for _, h := range held {
						addEdge(h, a.class, ev.pos, a.pos, funcDisplayName(ev.fn))
					}
				}
			}
		}
	}
	for _, s := range summaries {
		record(s)
	}
	for _, s := range litSummaries {
		record(s)
	}

	reportLockCycles(mp, edges)
	return nil
}

// acquireWitness pairs a class with the position it is acquired at.
type acquireWitness struct {
	class *lockClass
	pos   token.Pos
}

// sortedAcquires orders a transitive acquire set by class name for
// deterministic edge witnesses.
func sortedAcquires(m map[*lockClass]token.Pos) []acquireWitness {
	out := make([]acquireWitness, 0, len(m))
	for c, p := range m {
		out = append(out, acquireWitness{class: c, pos: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].class.name < out[j].class.name })
	return out
}

// propagateAcquires computes each function's transitive acquire set (the
// classes it may acquire directly or through calls) to a fixpoint.
func propagateAcquires(summaries []*lockSummary, byFn map[*types.Func]*lockSummary) map[*types.Func]map[*lockClass]token.Pos {
	trans := map[*types.Func]map[*lockClass]token.Pos{}
	for _, s := range summaries {
		set := map[*lockClass]token.Pos{}
		for _, ev := range s.events {
			if ev.kind == evAcquire {
				if _, ok := set[ev.class]; !ok {
					set[ev.class] = ev.pos
				}
			}
		}
		trans[s.node.Fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			set := trans[s.node.Fn]
			for _, ev := range s.events {
				if ev.kind != evCall {
					continue
				}
				callee, ok := byFn[ev.fn]
				if !ok {
					continue
				}
				for c, p := range trans[callee.node.Fn] {
					if _, ok := set[c]; !ok {
						set[c] = p
						changed = true
					}
				}
			}
		}
	}
	return trans
}

// reportLockCycles finds cycles in the class-level ordering graph and
// reports every edge that participates in one.
func reportLockCycles(mp *ModulePass, edges map[[2]*lockClass]*lockEdge) {
	adj := map[*lockClass][]*lockClass{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	reaches := func(from, to *lockClass) bool {
		seen := map[*lockClass]bool{from: true}
		stack := []*lockClass{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}

	keys := make([][2]*lockClass, 0, len(edges))
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0].name != keys[j][0].name {
			return keys[i][0].name < keys[j][0].name
		}
		return keys[i][1].name < keys[j][1].name
	})

	for _, key := range keys {
		holder, acquired := key[0], key[1]
		e := edges[key]
		// The annotation is honored both where the ordering is
		// established (the acquire or call site) and where the second
		// lock is actually taken — for interprocedural edges the latter
		// is where the subtlety lives.
		if mp.lineHasMarker(e.pos, markerAllow, "lockorder") ||
			mp.lineHasMarker(e.acqPos, markerAllow, "lockorder") {
			continue
		}
		via := ""
		if e.via != "" {
			via = " via call to " + e.via
		}
		if holder == acquired {
			mp.Reportf(e.pos,
				"%s acquired%s while an instance of %s is already held: possible self-deadlock (Go mutexes are not reentrant); annotate // %s lockorder (reason) if the instances are provably distinct",
				acquired.name, via, holder.name, markerAllow)
			continue
		}
		if reaches(acquired, holder) {
			witness := ""
			if rev, ok := edges[[2]*lockClass{acquired, holder}]; ok {
				witness = " (opposite order at " + shortPos(mp.Fset, rev.pos) + ")"
			} else {
				witness = " (the opposite order is reachable through intermediate locks)"
			}
			mp.Reportf(e.pos,
				"lock-order inversion: %s acquired%s while %s is held%s: potential deadlock; fix the ordering or annotate // %s lockorder (reason)",
				acquired.name, via, holder.name, witness, markerAllow)
		}
	}
}

// shortPos renders pos as base-filename:line for diagnostics.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
