package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NilSafe enforces the telemetry plane's zero-cost-when-off discipline: a
// type that declares itself nil-safe — by the documented prose convention
// ("A nil Counter is valid ...") or the explicit `bmaclint:nilsafe`
// marker in its doc comment — must guard every exported pointer-receiver
// method against a nil receiver.
//
// A method satisfies the contract when either
//
//   - its first statement is `if recv == nil { return ... }` (extra
//     conditions may be ||-chained, as in Counter.Add's `c == nil || n <= 0`), or
//   - every use of the receiver is a call to another method of the same
//     type that itself satisfies the contract (delegating readouts like
//     Histogram.Snapshot), computed to a fixpoint.
//
// Disabled telemetry is represented by nil instruments everywhere, so a
// missing guard is a latent panic on every configuration with the plane
// off — exactly the class of bug that survives testing with telemetry on.
var NilSafe = &Analyzer{
	Name: "nilsafe",
	Doc: "exported pointer-receiver methods on nil-safe instrument types " +
		"must begin with a nil-receiver guard (or delegate only to guarded methods)",
	Run: runNilSafe,
}

// nsMethod is one pointer-receiver method of a nil-safe type.
type nsMethod struct {
	decl     *ast.FuncDecl
	recvObj  types.Object // receiver variable (nil when unnamed)
	typeName string
	guarded  bool // first statement is a nil guard
	accepted bool // guarded, or delegates only to accepted methods
}

func runNilSafe(pass *Pass) error {
	safeTypes := nilSafeTypes(pass)
	if len(safeTypes) == 0 {
		return nil
	}

	// Collect every pointer-receiver method of the marked types (exported
	// and unexported: unexported ones participate in delegation chains).
	byType := map[*types.TypeName][]*nsMethod{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			tn := recvTypeName(pass, fd)
			if tn == nil || !safeTypes[tn] {
				continue
			}
			m := &nsMethod{decl: fd, typeName: tn.Name()}
			if names := fd.Recv.List[0].Names; len(names) > 0 && names[0].Name != "_" {
				m.recvObj = pass.TypesInfo.Defs[names[0]]
			}
			m.guarded = hasNilGuard(pass, fd, m.recvObj)
			m.accepted = m.guarded
			byType[tn] = append(byType[tn], m)
		}
	}

	for tn, methods := range byType {
		acceptDelegating(pass, tn, methods)
		for _, m := range methods {
			if !m.accepted && ast.IsExported(m.decl.Name.Name) {
				pass.Reportf(m.decl.Pos(),
					"exported method (*%s).%s must begin with a nil-receiver guard: %s is nil-safe (nil instruments represent disabled telemetry)",
					m.typeName, m.decl.Name.Name, m.typeName)
			}
		}
	}
	return nil
}

// nilSafeTypes finds the type declarations marked nil-safe.
func nilSafeTypes(pass *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := commentText(ts.Doc)
				if doc == "" {
					doc = commentText(gd.Doc)
				}
				if !nilSafeMarked(doc) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

func nilSafeMarked(doc string) bool {
	return doc != "" && (strings.Contains(doc, markerNilSafe) || nilSafeProseRe.MatchString(doc))
}

// recvTypeName resolves the named type of a method's pointer receiver
// (nil for value receivers — a value receiver cannot observe a nil
// pointer, the call itself dereferences).
func recvTypeName(pass *Pass, fd *ast.FuncDecl) *types.TypeName {
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// hasNilGuard reports whether the method's first statement is an if whose
// condition checks recv == nil (possibly ||-chained with other tests) and
// whose body returns.
func hasNilGuard(pass *Pass, fd *ast.FuncDecl, recvObj types.Object) bool {
	if recvObj == nil {
		// Unnamed receiver: the method cannot dereference it at all.
		return true
	}
	if len(fd.Body.List) == 0 {
		return true // empty body dereferences nothing
	}
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condChecksNil(pass, ifStmt.Cond, recvObj) {
		return false
	}
	n := len(ifStmt.Body.List)
	if n == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[n-1].(*ast.ReturnStmt)
	return isReturn
}

// condChecksNil reports whether cond contains `recv == nil` at the top
// level or anywhere in an ||-chain.
func condChecksNil(pass *Pass, cond ast.Expr, recvObj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op.String() {
	case "==":
		return (isRecvIdent(pass, be.X, recvObj) && isNilIdent(be.Y)) ||
			(isRecvIdent(pass, be.Y, recvObj) && isNilIdent(be.X))
	case "||":
		return condChecksNil(pass, be.X, recvObj) || condChecksNil(pass, be.Y, recvObj)
	}
	return false
}

func isRecvIdent(pass *Pass, e ast.Expr, recvObj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recvObj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// acceptDelegating runs the fixpoint: a method whose every receiver use
// is a call to an already-accepted method of the same type becomes
// accepted itself, until no method changes.
func acceptDelegating(pass *Pass, tn *types.TypeName, methods []*nsMethod) {
	acceptedNames := func() map[string]bool {
		m := map[string]bool{}
		for _, meth := range methods {
			if meth.accepted {
				m[meth.decl.Name.Name] = true
			}
		}
		return m
	}
	for changed := true; changed; {
		changed = false
		accepted := acceptedNames()
		for _, m := range methods {
			if m.accepted {
				continue
			}
			if delegatesOnly(pass, m, accepted) {
				m.accepted = true
				changed = true
			}
		}
	}
}

// delegatesOnly reports whether every use of the receiver in m's body is
// the base of a method call to an accepted method of the same type.
func delegatesOnly(pass *Pass, m *nsMethod, accepted map[string]bool) bool {
	if m.recvObj == nil {
		return true
	}
	// Mark receiver idents that appear as recv.M(...) with M accepted.
	safe := map[*ast.Ident]bool{}
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != m.recvObj {
			return true
		}
		if accepted[sel.Sel.Name] {
			safe[base] = true
		}
		return true
	})
	ok := true
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pass.TypesInfo.Uses[id] != m.recvObj {
			return true
		}
		if !safe[id] {
			ok = false
		}
		return true
	})
	return ok
}
