package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AliasGuard machine-checks the two sharp-edged contracts the zero-copy
// hot path rests on (internal/block package comment, internal/wire/pool.go):
//
//  1. PutBuf-while-aliased: `wire.PutBuf(buf)` must not run while a
//     structure decoded from buf by an aliasing decoder (block.Unmarshal
//     and friends) is still live — i.e. the decode result is used after
//     the PutBuf, or escapes the function entirely. A recycled buffer is
//     rewritten by the next marshal, silently corrupting every alias.
//
//  2. Escaping pooled aliases: a decode result that aliases a buffer
//     obtained from `wire.GetBuf` must not escape the function (returned,
//     stored into a field, element or package variable, sent on a
//     channel, or captured by a closure). Pool buffers are recycled by
//     construction; an escaping alias is a use-after-recycle waiting for
//     pool pressure. `block.UnmarshalCopy` is the escape hatch — it
//     detaches the result and is deliberately absent from the aliasing
//     decoder set.
//
// The analysis is per-function and flow-insensitive, with two
// sharpenings that remove the common false positives: only
// reference-kind uses count (reading a decoded uint64 or string field
// copies, so it cannot observe a recycle), and a PutBuf inside a block
// that ends in return only sees uses on its own path. A deferred PutBuf
// counts as running at function exit.
var AliasGuard = &Analyzer{
	Name: "aliasguard",
	Doc: "wire.PutBuf must not recycle a buffer still aliased by a " +
		"block.Unmarshal result, and aliases of pooled buffers must not escape " +
		"(use block.UnmarshalCopy to detach)",
	Run: runAliasGuard,
}

// decodeSite is one aliasing-decoder call inside a function.
type decodeSite struct {
	buf     types.Object   // the ident argument (nil when not a plain variable)
	results []types.Object // non-error, non-blank LHS objects
	pos     token.Pos
	decoder string // qualified name for messages
}

// putSite is one wire.PutBuf call.
type putSite struct {
	buf   types.Object
	pos   token.Pos // effective position: function end for deferred puts
	limit token.Pos // uses past this position are on other paths
	at    token.Pos // source position diagnostics anchor to
}

func runAliasGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAliasFunc(pass, fd)
		}
	}
	return nil
}

func checkAliasFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var (
		poolBufs = map[types.Object]bool{} // vars derived from wire.GetBuf
		decodes  []decodeSite
		puts     []putSite
	)

	// Pass 1: collect pool buffers (with alias propagation through plain
	// assignments and reslicings), decode sites, and PutBuf sites. The
	// walk keeps the ancestor stack so puts know their defer status and
	// enclosing block.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch st := n.(type) {
		case *ast.AssignStmt:
			collectAssign(pass, st, poolBufs, &decodes)
		case *ast.CallExpr:
			if isCallTo(info, st, poolPut) && len(st.Args) == 1 {
				if obj := identObj(info, st.Args[0]); obj != nil {
					puts = append(puts, newPutSite(fd, stack, st, obj))
				}
			}
		}
		return true
	})

	for i := range decodes {
		d := &decodes[i]
		if d.buf == nil || len(d.results) == 0 {
			continue
		}
		aliasSet := resultAliases(pass, fd, d.results)
		resultEscapes := escapes(pass, fd, aliasSet)

		// Rule 1: PutBuf on the decoded buffer while the result lives on.
		for _, p := range puts {
			if p.buf != d.buf || p.pos < d.pos {
				continue
			}
			if resultEscapes {
				pass.Reportf(p.at,
					"wire.PutBuf(%s) recycles a buffer whose %s result escapes this function; use block.UnmarshalCopy or drop the PutBuf",
					d.buf.Name(), d.decoder)
			} else if usedBetween(pass, fd, aliasSet, p.pos, p.limit) {
				pass.Reportf(p.at,
					"wire.PutBuf(%s) while the %s result still aliases it (used below); move the PutBuf after the last use or use block.UnmarshalCopy",
					d.buf.Name(), d.decoder)
			}
		}

		// Rule 2: alias of a pooled buffer escaping the function.
		if poolBufs[d.buf] && resultEscapes {
			pass.Reportf(d.pos,
				"%s result aliases pooled buffer %s (from wire.GetBuf) and escapes this function; use block.UnmarshalCopy or an unpooled buffer",
				d.decoder, d.buf.Name())
		}
	}
}

// newPutSite computes a put's effective position (function end when
// deferred) and visibility limit (end of its enclosing block when that
// block terminates in a return — uses beyond it run on other paths).
func newPutSite(fd *ast.FuncDecl, stack []ast.Node, call *ast.CallExpr, obj types.Object) putSite {
	p := putSite{buf: obj, pos: call.Pos(), limit: fd.Body.End(), at: call.Pos()}
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.DeferStmt:
			p.pos = fd.Body.End()
			return p
		case *ast.BlockStmt:
			if n := len(anc.List); n > 0 {
				if _, terminates := anc.List[n-1].(*ast.ReturnStmt); terminates {
					p.limit = anc.End()
				}
			}
			return p
		}
	}
	return p
}

// collectAssign records pool-buffer origins/aliases and decode sites from
// one assignment.
func collectAssign(pass *Pass, st *ast.AssignStmt, poolBufs map[types.Object]bool, decodes *[]decodeSite) {
	info := pass.TypesInfo

	// Single-call RHS: buf := wire.GetBuf(n) | b, err := block.Unmarshal(buf).
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if isCallTo(info, call, poolGet) {
				if obj := defOrUse(info, st.Lhs[0]); obj != nil {
					poolBufs[obj] = true
				}
				return
			}
			if name := aliasingDecoderName(info, call); name != "" && len(call.Args) >= 1 {
				d := decodeSite{
					buf:     identObj(info, call.Args[0]),
					pos:     call.Pos(),
					decoder: name,
				}
				for _, lhs := range st.Lhs {
					if obj := defOrUse(info, lhs); obj != nil && !isErrorType(objType(obj)) {
						d.results = append(d.results, obj)
					}
				}
				*decodes = append(*decodes, d)
				return
			}
		}
	}

	// Alias propagation: b2 := buf | b2 := buf[:n] | buf = append(buf, ...).
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		lobj := defOrUse(info, lhs)
		if lobj == nil {
			continue
		}
		if src := sliceBaseObj(info, st.Rhs[i]); src != nil && poolBufs[src] {
			poolBufs[lobj] = true
		}
	}
}

// sliceBaseObj resolves the variable an expression aliases through plain
// idents, reslicings, and append calls (nil when none).
func sliceBaseObj(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[v]
	case *ast.SliceExpr:
		return sliceBaseObj(info, v.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && len(v.Args) > 0 {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return sliceBaseObj(info, v.Args[0])
			}
		}
	}
	return nil
}

// resultAliases widens a decode's result objects with locals assigned
// from them (plain ident assignments, iterated to a fixpoint).
func resultAliases(pass *Pass, fd *ast.FuncDecl, results []types.Object) map[types.Object]bool {
	info := pass.TypesInfo
	set := map[types.Object]bool{}
	for _, r := range results {
		set[r] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				src := identObj(info, rhs)
				if src == nil || !set[src] {
					continue
				}
				if dst := defOrUse(info, as.Lhs[i]); dst != nil && !set[dst] {
					set[dst] = true
					changed = true
				}
			}
			return true
		})
	}
	return set
}

// forEachAliasUse calls fn for every reference-kind use of an alias under
// root: a bare alias ident, a selector path rooted at one whose type
// still carries references into the buffer, or any index expression
// rooted at one. Selector reads that copy out a value (numeric or string
// fields — decoded strings are copies held in the struct) are skipped:
// they cannot observe a recycle. Index reads are never skipped — even a
// basic-typed b.PayloadBytes[0] dereferences buffer memory.
func forEachAliasUse(info *types.Info, root ast.Node, aliasSet map[types.Object]bool, fn func(token.Pos)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if !aliasRooted(info, e, aliasSet) {
				return true
			}
			if exprIsBasic(info, e) {
				return false // field-value copy: safe after recycle
			}
			fn(e.Pos())
			return false
		case *ast.IndexExpr:
			if !aliasRooted(info, e, aliasSet) {
				return true
			}
			fn(e.Pos())
			return false
		case *ast.Ident:
			if aliasSet[info.Uses[e]] {
				fn(e.Pos())
			}
		}
		return true
	})
}

// exprIsBasic reports whether an expression's static type is a basic
// (value-copied) type.
func exprIsBasic(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, basic := tv.Type.Underlying().(*types.Basic)
	return basic
}

// aliasRooted reports whether a selector/index path bottoms out at an
// alias identifier.
func aliasRooted(info *types.Info, e ast.Expr, aliasSet map[types.Object]bool) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.Ident:
			return aliasSet[info.Uses[v]]
		default:
			return false
		}
	}
}

// escapes reports whether any alias of the decode result leaves the
// function: returned, assigned to a field/element/package variable, sent
// on a channel, captured by a closure, or placed in a composite literal
// (conservative: composites routinely outlive the statement).
func escapes(pass *Pass, fd *ast.FuncDecl, aliasSet map[types.Object]bool) bool {
	info := pass.TypesInfo
	found := false
	usesAlias := func(e ast.Node) bool {
		hit := false
		forEachAliasUse(info, e, aliasSet, func(token.Pos) { hit = true })
		return hit
	}
	// A value of basic type is a copy — no alias can travel through it,
	// so `return len(b.Envelopes)` or storing int(h.Number) never escape.
	transports := func(e ast.Expr) bool {
		return !exprIsBasic(info, e) && usesAlias(e)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if transports(r) {
					found = true
				}
			}
		case *ast.SendStmt:
			if transports(st.Value) {
				found = true
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) || !transports(rhs) {
					continue
				}
				if escapingLHS(info, st.Lhs[i]) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if transports(el) {
					found = true
				}
			}
		case *ast.FuncLit:
			if usesAlias(st.Body) {
				found = true
			}
			return false // don't double-walk the body
		}
		return true
	})
	return found
}

// escapingLHS reports whether assigning to lhs stores outside the
// function's locals: selectors (fields), index expressions, dereferences,
// and package-level variables.
func escapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Uses[v]
		if obj == nil {
			obj = info.Defs[v]
		}
		// Package-scope destination escapes; locals don't.
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

// usedBetween reports whether any alias has a reference-kind use in
// (pos, limit) — after the PutBuf, on its path.
func usedBetween(pass *Pass, fd *ast.FuncDecl, aliasSet map[types.Object]bool, pos, limit token.Pos) bool {
	found := false
	forEachAliasUse(pass.TypesInfo, fd.Body, aliasSet, func(p token.Pos) {
		if p > pos && p < limit {
			found = true
		}
	})
	return found
}

// identObj resolves a plain identifier expression to its object.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// defOrUse resolves an assignment LHS ident whether it defines (:=) or
// reuses (=) the variable.
func defOrUse(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// objType returns an object's type (nil-safe).
func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}
