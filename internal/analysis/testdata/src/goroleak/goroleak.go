// Package goroleak is an analyzer fixture for the goroutine stop-path
// contract: every go statement must either run to completion on its own
// (no unbounded loop) or provably reach a stop construct — a
// WaitGroup.Done, a select receive whose case returns or breaks, a
// `v, ok := <-ch` receive, a range over a channel, or ctx.Done —
// transitively through the call graph. Externally managed spawns carry
// the bmaclint:allow goroleak annotation.
package goroleak

import (
	"context"
	"sync"
	"time"
)

// Spin loops forever; a goroutine running it leaks unless annotated.
func Spin() {
	for {
	}
}

// LeakyLit spawns an unbounded loop with no stop construct.
func LeakyLit() {
	go func() { // want `goroutine loops forever with no provable stop path`
		for {
		}
	}()
}

// LeakyCall reaches the loop through the call graph.
func LeakyCall() {
	go Spin() // want `goroutine loops forever with no provable stop path`
}

// Allowed spawns the same spinner, with termination managed externally.
func Allowed() {
	go Spin() // bmaclint:allow goroleak (fixture: the test harness kills the spinner)
}

// Bounded runs to completion on its own: no unbounded loop, no finding.
func Bounded(xs []int) {
	go func() {
		total := 0
		for _, x := range xs {
			total += x
		}
		_ = total
	}()
}

// WaitGrouped proves termination through the deferred Done.
func WaitGrouped(wg *sync.WaitGroup, ch chan int) {
	go func() {
		defer wg.Done()
		for {
			if <-ch == 0 {
				return
			}
		}
	}()
}

// StopChan drains work until the stop channel fires.
func StopChan(work, stop chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// Ranged exits when the channel is closed and drained.
func Ranged(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// CommaOk detects close explicitly.
func CommaOk(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// CtxBound stops on context cancellation.
func CtxBound(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// LocalVar spawns a worker bound to exactly one literal, which the
// analyzer resolves; the literal ranges over a channel, so it stops.
func LocalVar(ch chan int) {
	worker := func() {
		for range ch {
		}
	}
	go worker()
}

// Dynamic spawns an unresolvable func value.
func Dynamic(f func()) {
	go f() // want `cannot statically resolve`
}

// DynamicAllowed carries the annotation a dynamic spawn requires.
func DynamicAllowed(f func()) {
	go f() // bmaclint:allow goroleak (fixture: the caller guarantees f terminates)
}

// External spawns a function outside the module, which cannot be
// checked.
func External() {
	go time.Sleep(time.Millisecond) // want `outside the module`
}
