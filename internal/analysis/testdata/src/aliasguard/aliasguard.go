// Package aliasguard is an analyzer fixture exercising the zero-copy
// aliasing and buffer-pool ownership contracts against the real
// bmac/internal/block and bmac/internal/wire APIs.
package aliasguard

import (
	"bmac/internal/block"
	"bmac/internal/wire"
)

// sink retains blocks, standing in for any structure that outlives the
// decoding call (a cache, a delivery window, ...).
var sink *block.Block

// putWhileResultReturned recycles the buffer and returns the alias: the
// canonical use-after-recycle.
func putWhileResultReturned(data []byte) (*block.Block, error) {
	b, err := block.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	wire.PutBuf(data) // want `wire\.PutBuf\(data\) recycles a buffer whose block\.Unmarshal result escapes`
	return b, nil
}

// putBeforeLastUse recycles the buffer, then keeps reading the alias.
func putBeforeLastUse(data []byte) int {
	b, err := block.Unmarshal(data)
	if err != nil {
		return 0
	}
	wire.PutBuf(data) // want `wire\.PutBuf\(data\) while the block\.Unmarshal result still aliases it`
	return len(b.Envelopes)
}

// deferredPutWithEscape: the deferred PutBuf runs at return, after the
// alias has escaped through the return value.
func deferredPutWithEscape(data []byte) *block.Block {
	defer wire.PutBuf(data) // want `wire\.PutBuf\(data\) recycles a buffer whose block\.Unmarshal result escapes`
	b, err := block.Unmarshal(data)
	if err != nil {
		return nil
	}
	return b
}

// putAfterLastUse is the legal pattern: decode, finish with the result,
// then recycle.
func putAfterLastUse(data []byte) int {
	b, err := block.Unmarshal(data)
	if err != nil {
		return 0
	}
	n := len(b.Envelopes)
	wire.PutBuf(data)
	return n
}

// unmarshalCopyEscapeHatch detaches the result first, so recycling and
// returning are both fine — the documented escape hatch.
func unmarshalCopyEscapeHatch(data []byte) (*block.Block, error) {
	b, err := block.UnmarshalCopy(data)
	if err != nil {
		return nil, err
	}
	wire.PutBuf(data)
	return b, nil
}

// pooledAliasStored decodes straight off a pooled buffer and stores the
// alias into a package variable: the buffer will be recycled by whoever
// owns it, corrupting the stored block.
func pooledAliasStored(n int, fill func([]byte) []byte) {
	buf := wire.GetBuf(n)
	buf = fill(buf)
	b, err := block.Unmarshal(buf) // want `block\.Unmarshal result aliases pooled buffer buf \(from wire\.GetBuf\) and escapes`
	if err != nil {
		return
	}
	sink = b
}

// pooledAliasReturnedViaReslice: pool provenance survives reslicing and
// plain reassignment.
func pooledAliasReturnedViaReslice(n int) (*block.Envelope, error) {
	buf := wire.GetBuf(n)
	tail := buf[:n]
	env, err := block.UnmarshalEnvelope(tail) // want `block\.UnmarshalEnvelope result aliases pooled buffer tail`
	if err != nil {
		return nil, err
	}
	return env, nil
}

// pooledLocalUse is legal: the decode result of a pooled buffer never
// leaves the function, and the buffer is recycled after the last use.
func pooledLocalUse(n int, fill func([]byte) []byte) int {
	buf := wire.GetBuf(n)
	buf = fill(buf)
	h, err := block.UnmarshalHeader(buf)
	if err != nil {
		wire.PutBuf(buf)
		return 0
	}
	num := int(h.Number)
	wire.PutBuf(buf)
	return num
}

// pooledCopyEscapes is legal: UnmarshalCopy detaches before the store.
func pooledCopyEscapes(n int, fill func([]byte) []byte) {
	buf := wire.GetBuf(n)
	buf = fill(buf)
	b, err := block.UnmarshalCopy(buf)
	wire.PutBuf(buf)
	if err != nil {
		return
	}
	sink = b
}
