// Package nilsafe is an analyzer fixture for the nil-receiver contract:
// types whose doc declares them nil-safe ("A nil X is valid" prose or a
// bmaclint:nilsafe marker) must guard every exported pointer-receiver
// method.
package nilsafe

import "sync/atomic"

// Counter is a cumulative counter. A nil Counter is valid and drops all
// updates, so disabled telemetry costs nothing.
type Counter struct {
	v atomic.Uint64
}

// Add is guarded: the canonical first-statement nil check.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value delegates every receiver use to an already-guarded method, which
// the fixpoint accepts.
func (c *Counter) Value() uint64 {
	return c.load()
}

// load is unexported: only exported methods are required to guard, but
// this one does anyway so Value's delegation is accepted.
func (c *Counter) load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Inc is missing its guard.
func (c *Counter) Inc() { // want `exported method \(\*Counter\)\.Inc must begin with a nil-receiver guard`
	c.v.Add(1)
}

// Reset checks nil but not as the first statement, so a nil receiver
// already crashed by the time the guard runs.
func (c *Counter) Reset() { // want `exported method \(\*Counter\)\.Reset must begin with a nil-receiver guard`
	c.v.Store(0)
	if c == nil {
		return
	}
}

// Gauge is marked explicitly rather than through prose.
//
// bmaclint:nilsafe
type Gauge struct {
	v atomic.Int64
}

// Set uses an or-chain guard, which still counts: the nil test runs
// before any dereference.
func (g *Gauge) Set(v int64, enabled bool) {
	if g == nil || !enabled {
		return
	}
	g.v.Store(v)
}

// Read is missing its guard on a marker-annotated type.
func (g *Gauge) Read() int64 { // want `exported method \(\*Gauge\)\.Read must begin with a nil-receiver guard`
	return g.v.Load()
}

// Plain is not declared nil-safe anywhere, so its unguarded methods are
// fine — the contract is opt-in.
type Plain struct {
	n int
}

// Bump has no guard and needs none.
func (p *Plain) Bump() {
	p.n++
}

// ByValue methods cannot observe a nil receiver and are ignored even on
// nil-safe types.
//
// bmaclint:nilsafe
type ByValue struct {
	n int
}

// Get has a value receiver: exempt.
func (b ByValue) Get() int {
	return b.n
}

// Meter exercises the limits of delegation acceptance.
//
// bmaclint:nilsafe
type Meter struct {
	n int
}

// Observe delegates to record, which is unguarded, so acceptance does
// not propagate: delegation only launders the guard when the callee has
// one.
func (m *Meter) Observe(v int) { // want `exported method \(\*Meter\)\.Observe must begin with a nil-receiver guard`
	m.record(v)
}

// record is unexported, so its missing guard is not reported directly —
// but it breaks Observe's delegation chain above.
func (m *Meter) record(v int) {
	m.n += v
}

// Flush has an unnamed receiver: it cannot dereference it, exempt.
func (*Meter) Flush() {}

// Reset guards with the nil test second in the or-chain, which still
// runs before any dereference.
func (m *Meter) Reset(hard bool) {
	if !hard || m == nil {
		return
	}
	m.n = 0
}
