// Package errlib is a fixture library for the errdiscard analyzer: a
// stand-in for an in-module package (its import path is under bmac/)
// whose error returns must not be swallowed.
package errlib

import "errors"

// ErrBoom is what every failing fixture call returns.
var ErrBoom = errors.New("boom")

// Fail returns only an error.
func Fail() error { return ErrBoom }

// Pair returns a value and an error.
func Pair() (int, error) { return 0, ErrBoom }

// Allowed also fails; tests exempt it via ErrDiscardAllowlist.
func Allowed() error { return ErrBoom }

// Sink is a fixture type with an error-returning method.
type Sink struct{}

// Close returns an error like any io.Closer.
func (s *Sink) Close() error { return ErrBoom }
