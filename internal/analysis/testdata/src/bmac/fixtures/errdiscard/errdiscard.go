// Package errdiscard is an analyzer fixture: discarded error results
// from in-module callees must be flagged unless annotated or
// allowlisted; out-of-module errors are out of scope.
package errdiscard

import (
	"fmt"
	"strconv"

	"bmac/fixtures/errlib"
)

// blankAssign is the classic swallow.
func blankAssign() {
	_ = errlib.Fail() // want `error result of errlib\.Fail discarded`
}

// pairAssign keeps the value but drops the error slot.
func pairAssign() int {
	n, _ := errlib.Pair() // want `error result of errlib\.Pair discarded`
	return n
}

// bareCall drops the whole return on the floor.
func bareCall() {
	errlib.Fail() // want `error result of errlib\.Fail discarded`
}

// methodDiscard shows the method display name in the diagnostic.
func methodDiscard(s *errlib.Sink) {
	_ = s.Close() // want `error result of \(\*errlib\.Sink\)\.Close discarded`
}

// allowSameLine is exempt: the discard carries its justification.
func allowSameLine() {
	_ = errlib.Fail() // bmaclint:allow errdiscard (fixture: intentional)
}

// allowLineAbove is the other accepted marker placement.
func allowLineAbove() {
	// bmaclint:allow errdiscard (fixture: intentional)
	_ = errlib.Fail()
}

// allowlisted is exempt through ErrDiscardAllowlist, which the test sets
// to {"errlib.Allowed": true}.
func allowlisted() {
	_ = errlib.Allowed()
}

// handled is the required pattern: no diagnostic.
func handled() error {
	if err := errlib.Fail(); err != nil {
		return fmt.Errorf("fixture: %w", err)
	}
	return nil
}

// stdlibDiscard is out of scope: strconv is not under the module path.
func stdlibDiscard() {
	_, _ = strconv.Atoi("7")
}

// deferredClose is naturally out of scope: defer statements are not
// expression statements or assignments.
func deferredClose(s *errlib.Sink) {
	defer s.Close()
}
