// Package allocbound is an analyzer fixture for the noalloc contract:
// functions annotated bmaclint:noalloc must be allocation-free per the
// compiler's escape analysis, with per-line allow exceptions and a
// blanket exemption for error construction. Unlike the other fixtures
// this package is also compiled by the real toolchain (the analyzer
// shells out to go build -gcflags=-m), so it must build standalone.
package allocbound

import "fmt"

// Boxed returns a pointer to a fresh allocation: a true positive.
//
// bmaclint:noalloc
func Boxed() *int {
	return new(int) // want `heap allocation in bmaclint:noalloc function`
}

// ColdPath allocates too, but the line carries the exception.
//
// bmaclint:noalloc
func ColdPath() *int {
	return new(int) // bmaclint:allow allocbound (fixture: cold path by construction)
}

// Checked allocates only to build its error, which is exempt wholesale.
//
// bmaclint:noalloc
func Checked(n int) error {
	if n < 0 {
		return fmt.Errorf("allocbound fixture: negative %d", n)
	}
	return nil
}

// Sum is genuinely allocation-free.
//
// bmaclint:noalloc
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Unchecked allocates freely: without the marker the analyzer has no
// opinion.
func Unchecked() *int {
	return new(int)
}
