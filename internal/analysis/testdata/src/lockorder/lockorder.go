// Package lockorder is an analyzer fixture for the module-wide lock
// ordering contract: the class-level acquisition graph must be
// cycle-free, nesting two instances of one class is a self-deadlock
// candidate, and provably instance-disjoint nestings carry the
// bmaclint:allow lockorder annotation.
package lockorder

import "sync"

// A and B form the classic two-class inversion: AB nests A before B,
// BA nests B before A.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order inversion`
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order inversion`
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D invert through the call graph: CD holds C while lockD takes D
// three frames away, DC nests directly in the opposite order.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func CD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lock-order inversion`
	c.mu.Unlock()
}

func DC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `lock-order inversion`
	c.mu.Unlock()
	d.mu.Unlock()
}

// S nests two instances of the same class, which is statically
// indistinguishable from re-locking one instance.
type S struct{ mu sync.Mutex }

func (s *S) Merge(t *S) {
	s.mu.Lock()
	t.mu.Lock() // want `possible self-deadlock`
	t.mu.Unlock()
	s.mu.Unlock()
}

// Node nests the same class too, but parent-before-child is structural
// here, so the acquire site carries the annotation.
type Node struct{ mu sync.Mutex }

func (n *Node) Adopt(child *Node) {
	n.mu.Lock()
	child.mu.Lock() // bmaclint:allow lockorder (fixture: parent is always locked before its child)
	child.mu.Unlock()
	n.mu.Unlock()
}

// E and F are always taken E then F: a consistent order is no finding.
type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

func EF(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func EThenF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}
