// Package guardedby is an analyzer fixture for `// guarded by <mu>`
// field annotations: accesses must hold the named mutex, and the
// annotation itself must name an existing sibling mutex field.
package guardedby

import "sync"

// Store is shared state with the repo's annotation discipline.
type Store struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	hits  int            // guarded by mu
}

// Get is the standard prologue: lock, defer unlock, touch the fields.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.items[k]
}

// Peek reads a guarded field with no lock anywhere in sight.
func (s *Store) Peek(k string) int {
	return s.items[k] // want `access to s\.items \(guarded by mu\) without s\.mu held`
}

// sizeLocked follows the *Locked suffix convention: the caller locked.
func (s *Store) sizeLocked() int {
	return len(s.items)
}

// drain must be called with s.mu held.
func (s *Store) drain() {
	s.items = map[string]int{}
}

// touch is exempt through the explicit marker.
//
// bmaclint:holds mu
func (s *Store) touch() {
	s.hits++
}

// NewStore initializes guarded fields on a fresh value before it can be
// shared — no lock needed.
func NewStore() *Store {
	s := &Store{}
	s.items = map[string]int{}
	return s
}

// Reset locks too late: the first access runs before the Lock call.
func (s *Store) Reset() {
	s.items = nil // want `access to s\.items \(guarded by mu\) without s\.mu held`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = 0
}

// Index is read-shared state under an RWMutex; RLock counts as holding.
type Index struct {
	rw   sync.RWMutex
	keys []string // guarded by rw
}

// Keys holds the read lock.
func (ix *Index) Keys() []string {
	ix.rw.RLock()
	defer ix.rw.RUnlock()
	return append([]string(nil), ix.keys...)
}

// Len forgets the lock.
func (ix *Index) Len() int {
	return len(ix.keys) // want `access to ix\.keys \(guarded by rw\) without ix\.rw held`
}

// badAnnotations collects the malformed-annotation diagnostics.
type badAnnotations struct {
	mu    sync.Mutex
	a     int // guarded by missing // want "`guarded by missing` names a field that does not exist in this struct"
	count int
	b     int // guarded by count // want "`guarded by count` names a field that is not a sync.Mutex or sync.RWMutex"
}
