package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// AllocBound verifies that functions annotated `// bmaclint:noalloc`
// are allocation-free, by parsing the compiler's own escape analysis
// (`go build -gcflags=-m`) — the static complement of the dynamic
// allocs/op gate in scripts/benchgate.sh. Every "escapes to heap" /
// "moved to heap" decision landing inside an annotated function's body
// is a finding, with two escape hatches:
//
//   - a line carrying `bmaclint:allow allocbound (reason)` is exempt —
//     the cold-path pattern (pool fallback when pooling is off, cache
//     miss inserts);
//   - allocations inside a call to fmt.Errorf or errors.New are exempt
//     wholesale: error construction is the cold path by convention, and
//     boxing operands into an error inherently allocates.
//
// The check is per-body: a callee's allocations are attributed to the
// callee's lines, so annotate the whole hot path, not just its root.
// Results come straight from the build cache — the compiler's
// diagnostics are replayed on cache hits, so a clean re-run costs one
// cached `go build`.
var AllocBound = &Analyzer{
	Name: "allocbound",
	Doc: "functions annotated bmaclint:noalloc must be allocation-free " +
		"per the compiler's escape analysis (go build -gcflags=-m)",
	RunModule: runAllocBound,
}

// escapeLineRe matches one compiler diagnostic: path:line:col: message.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// noallocTarget is one annotated function.
type noallocTarget struct {
	pkg        *LoadedPackage
	fd         *ast.FuncDecl
	file       string // absolute path
	start, end int    // body line range, inclusive
}

func runAllocBound(mp *ModulePass) error {
	var targets []noallocTarget
	dirSeen := map[string]bool{}
	var dirs []string
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !strings.Contains(commentText(fd.Doc), markerNoAlloc) {
					continue
				}
				start := mp.Fset.Position(fd.Pos())
				end := mp.Fset.Position(fd.End())
				targets = append(targets, noallocTarget{
					pkg:   pkg,
					fd:    fd,
					file:  absPath(start.Filename),
					start: start.Line,
					end:   end.Line,
				})
				if !dirSeen[pkg.Dir] {
					dirSeen[pkg.Dir] = true
					dirs = append(dirs, pkg.Dir)
				}
			}
		}
	}
	if len(targets) == 0 {
		return nil
	}

	root := findModuleRoot(dirs[0])
	args := []string{"build", "-gcflags=-m"}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return fmt.Errorf("allocbound: %w", err)
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("allocbound: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		for i := range targets {
			t := &targets[i]
			if t.file != file || lineNo < t.start || lineNo > t.end {
				continue
			}
			pos := posAt(mp.Fset, t.fd, lineNo, colNo)
			if pos == token.NoPos {
				continue
			}
			if mp.lineHasMarker(pos, markerAllow, "allocbound") {
				continue
			}
			if inErrorConstruction(t.pkg.Info, t.fd, pos) {
				continue
			}
			mp.Reportf(pos, "heap allocation in %s function %s: %s; move it off the hot path or annotate the line with // %s allocbound (reason)",
				markerNoAlloc, funcDisplayName(funcOf(t.pkg, t.fd)), msg, markerAllow)
		}
	}
	return nil
}

// funcOf resolves a declaration back to its types.Func.
func funcOf(pkg *LoadedPackage, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// posAt converts a (line, col) pair inside fd's file to a token.Pos.
func posAt(fset *token.FileSet, fd *ast.FuncDecl, line, col int) token.Pos {
	tf := fset.File(fd.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	pos := tf.LineStart(line) + token.Pos(col-1)
	if pos > token.Pos(tf.Base()+tf.Size()) {
		return tf.LineStart(line)
	}
	return pos
}

// inErrorConstruction reports whether pos lies inside a call to
// fmt.Errorf or errors.New within fd — the cold error path.
func inErrorConstruction(info *types.Info, fd *ast.FuncDecl, pos token.Pos) bool {
	inside := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if inside {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || pos < call.Pos() || pos >= call.End() {
			return true
		}
		fn, ok := calleeObject(info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "fmt":
			inside = fn.Name() == "Errorf"
		case "errors":
			inside = fn.Name() == "New"
		}
		return !inside
	})
	return inside
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) string {
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// absPath best-effort resolves p to an absolute path.
func absPath(p string) string {
	if abs, err := filepath.Abs(p); err == nil {
		return abs
	}
	return p
}
