// Package analysistest runs analyzers over fixture packages and compares
// the diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's own loader.
//
// Fixtures live under testdata/src/<importpath>/: the import path is the
// directory's path relative to src, so fixtures can shadow module-style
// paths (testdata/src/bmac/fixtures/errlib → import "bmac/fixtures/errlib").
// Imports that no fixture provides — the standard library, and the repo's
// real packages like bmac/internal/wire — resolve against the enclosing
// module via go list, so fixtures exercise analyzers against the real
// contract-bearing APIs.
//
// Expectation syntax: a comment `// want "re"` on a line asserts exactly
// one diagnostic on that line whose message matches the regexp; multiple
// quoted regexps assert multiple diagnostics. Lines without a want
// comment must produce no diagnostics.
package analysistest

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bmac/internal/analysis"
)

// TestData returns the test's testdata directory as an absolute path.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return abs
}

// Run loads each fixture package under dir/src, applies the analyzer, and
// fails the test on any mismatch with the // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(".")
	overlay, err := discoverOverlay(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.Overlay = overlay

	var pkgs []*analysis.LoadedPackage
	for _, path := range pkgPaths {
		lp, err := loader.LoadOverlay(path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		pkgs = append(pkgs, lp)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, overlay, pkgPaths)
	matchDiagnostics(t, diags, wants)
}

// discoverOverlay maps every directory under src containing .go files to
// its slash-separated import path.
func discoverOverlay(src string) (map[string]string, error) {
	overlay := map[string]string{}
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(src, dir)
		if err != nil {
			return err
		}
		overlay[filepath.ToSlash(rel)] = dir
		return nil
	})
	return overlay, err
}

// want is one expectation: a line that must produce a matching diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe matches one quoted or backquoted regexp inside a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans the fixture sources of the packages under test for
// // want comments.
func collectWants(t *testing.T, overlay map[string]string, pkgPaths []string) []*want {
	t.Helper()
	var wants []*want
	for _, path := range pkgPaths {
		dir := overlay[path]
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for _, e := range ents {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			file := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			for i, lineText := range strings.Split(string(data), "\n") {
				idx := strings.Index(lineText, "// want ")
				if idx < 0 {
					continue
				}
				spec := lineText[idx+len("// want "):]
				lits := wantRe.FindAllString(spec, -1)
				if len(lits) == 0 {
					t.Fatalf("%s:%d: malformed want comment: %s", file, i+1, spec)
				}
				for _, lit := range lits {
					var pattern string
					if lit[0] == '`' {
						pattern = lit[1 : len(lit)-1]
					} else {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s:%d: bad want literal %s: %v", file, i+1, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
					}
					wants = append(wants, &want{file: file, line: i + 1, re: re, raw: pattern})
				}
			}
		}
	}
	return wants
}

// matchDiagnostics pairs each diagnostic with an unmatched want on its
// line and reports leftovers in both directions.
func matchDiagnostics(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
