package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces `// guarded by <mu>` field annotations: a struct
// field carrying the annotation may only be read or written in functions
// that demonstrably hold the named mutex. The check is annotation-driven
// and deliberately approximate — it is a tripwire for the common mistakes
// (a new method touching shared state without the lock), not a proof of
// data-race freedom; `go test -race` remains the dynamic backstop.
//
// An access `x.field` is accepted when the enclosing function
//
//   - calls x.mu.Lock() or x.mu.RLock() earlier in the source (the
//     standard lock/defer-unlock prologue), where x is the same base
//     expression, or
//   - is named with the repo's *Locked suffix convention, or documents
//     "... must be called with <mu> held", or carries `bmaclint:holds <mu>`
//     (the caller owns the obligation), or
//   - accesses the field through a variable the function itself created
//     from a fresh composite literal or new() — constructors initialize
//     before the value is shared, no lock required.
//
// The annotation itself is validated: naming a field that does not exist
// in the struct, or one that is not a sync.Mutex/sync.RWMutex, is an
// error (scripts/doclint.sh relies on this via bmaclint -only guardedby).
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed with " +
		"that mutex held (lock call, *Locked convention, or bmaclint:holds)",
	Run: func(pass *Pass) error { return runGuardedBy(pass, false) },
}

// GuardedByAnnotationsOnly validates annotation well-formedness without
// checking accesses — the cheap mode doclint runs.
var GuardedByAnnotationsOnly = &Analyzer{
	Name: "guardedby",
	Doc:  "validate `// guarded by <mu>` annotations name an existing sibling mutex field",
	Run:  func(pass *Pass) error { return runGuardedBy(pass, true) },
}

func runGuardedBy(pass *Pass, annotationsOnly bool) error {
	guarded := collectGuardedFields(pass)
	if annotationsOnly || len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncAccesses(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields scans struct declarations for annotated fields,
// validating each annotation. Returns field object → mutex field name.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			fieldNames := map[string]*ast.Field{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = fld
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardedAnnotation(fld)
				if mu == "" {
					continue
				}
				muField, ok := fieldNames[mu]
				if !ok {
					pass.Reportf(fld.Pos(),
						"`guarded by %s` names a field that does not exist in this struct", mu)
					continue
				}
				if !isMutexType(pass.TypesInfo.Types[muField.Type].Type) {
					pass.Reportf(fld.Pos(),
						"`guarded by %s` names a field that is not a sync.Mutex or sync.RWMutex", mu)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardedAnnotation extracts the mutex name from a field's doc or
// trailing comment ("" when unannotated).
func guardedAnnotation(fld *ast.Field) string {
	for _, g := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if m := guardedByRe.FindStringSubmatch(commentText(g)); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to either.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkFuncAccesses reports unguarded accesses to annotated fields inside
// one function.
func checkFuncAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	lockedFn := strings.HasSuffix(fd.Name.Name, suffixLocked) ||
		strings.HasSuffix(fd.Name.Name, "locked")
	doc := commentText(fd.Doc)
	holdsAll := heldProseRe.MatchString(doc)

	// Lock-call sites: exprString(base) + "." + muName → earliest position.
	locks := map[string]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key := types.ExprString(muSel.X) + "." + muSel.Sel.Name
		if p, seen := locks[key]; !seen || call.Pos() < p {
			locks[key] = call.Pos()
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		mu, isGuarded := guarded[selection.Obj()]
		if !isGuarded {
			return true
		}
		if lockedFn || holdsAll {
			return true
		}
		if strings.Contains(doc, markerHolds+" "+mu) {
			return true
		}
		base := ast.Unparen(sel.X)
		if lockPos, ok := locks[types.ExprString(base)+"."+mu]; ok && lockPos < sel.Pos() {
			return true
		}
		if freshLocal(pass, fd, base) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"access to %s.%s (guarded by %s) without %s.%s held: lock it, rename the function with a Locked suffix, or annotate it with // %s %s",
			types.ExprString(base), sel.Sel.Name, mu, types.ExprString(base), mu, markerHolds, mu)
		return true
	})
}

// freshLocal reports whether base is a variable this function created
// from a fresh value (&T{...}, T{...}, or new(T)) — an object that cannot
// yet be shared, so its guarded fields may be initialized lock-free.
func freshLocal(pass *Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[lid] != obj && pass.TypesInfo.Uses[lid] != obj {
				continue
			}
			if isFreshValue(pass, as.Rhs[i]) {
				fresh = true
			}
		}
		return true
	})
	return fresh
}

// isFreshValue reports whether e constructs a brand-new value.
func isFreshValue(pass *Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, isLit := ast.Unparen(v.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}
