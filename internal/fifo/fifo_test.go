package fifo

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPushPopOrder(t *testing.T) {
	f := New[int](4)
	for i := 1; i <= 4; i++ {
		if err := f.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 4; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d, %v", i, v, ok)
		}
	}
}

func TestBlockingPushUnblocksOnPop(t *testing.T) {
	f := New[int](1)
	if err := f.Push(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Push(2) }()
	select {
	case <-done:
		t.Fatal("push to full FIFO returned immediately")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked push: %v", err)
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Fatalf("second pop = %d, %v", v, ok)
	}
}

func TestBlockingPopUnblocksOnPush(t *testing.T) {
	f := New[string](2)
	got := make(chan string, 1)
	go func() {
		v, _ := f.Pop()
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := f.Push("x"); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != "x" {
		t.Fatalf("pop = %q", v)
	}
}

func TestCloseDrains(t *testing.T) {
	f := New[int](4)
	f.Push(1)
	f.Push(2)
	f.Close()
	if err := f.Push(3); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close: %v", err)
	}
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Error("drain 1 failed")
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Error("drain 2 failed")
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop after drain should report closed")
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	f := New[int](1)
	popDone := make(chan bool, 1)
	go func() {
		_, ok := f.Pop()
		popDone <- ok
	}()
	f.Push(0)
	<-popDone // consumed the element
	go func() {
		_, ok := f.Pop()
		popDone <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	if ok := <-popDone; ok {
		t.Error("pop blocked at close must report not-ok")
	}
}

func TestTryPop(t *testing.T) {
	f := New[int](2)
	if _, ok := f.TryPop(); ok {
		t.Error("TryPop on empty succeeded")
	}
	f.Push(7)
	if v, ok := f.TryPop(); !ok || v != 7 {
		t.Errorf("TryPop = %d, %v", v, ok)
	}
}

func TestStats(t *testing.T) {
	f := New[int](8)
	for i := 0; i < 5; i++ {
		f.Push(i)
	}
	f.Pop()
	pushes, pops, maxDepth := f.Stats()
	if pushes != 5 || pops != 1 || maxDepth != 5 {
		t.Errorf("stats = %d/%d/%d", pushes, pops, maxDepth)
	}
	if f.Len() != 4 || f.Cap() != 8 {
		t.Errorf("len/cap = %d/%d", f.Len(), f.Cap())
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 500
	)
	f := New[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := f.Push(p*perProd + i); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	var consumed sync.WaitGroup
	seen := make([]map[int]bool, consumers)
	for c := 0; c < consumers; c++ {
		seen[c] = make(map[int]bool)
		consumed.Add(1)
		go func(c int) {
			defer consumed.Done()
			for {
				v, ok := f.Pop()
				if !ok {
					return
				}
				seen[c][v] = true
			}
		}(c)
	}
	wg.Wait()
	f.Close()
	consumed.Wait()

	total := 0
	union := make(map[int]bool)
	for c := range seen {
		total += len(seen[c])
		for v := range seen[c] {
			if union[v] {
				t.Fatalf("value %d consumed twice", v)
			}
			union[v] = true
		}
	}
	if total != producers*perProd {
		t.Errorf("consumed %d, want %d", total, producers*perProd)
	}
}

func TestMinimumDepth(t *testing.T) {
	f := New[int](0)
	if f.Cap() != 1 {
		t.Errorf("cap = %d, want 1", f.Cap())
	}
}

func BenchmarkPushPop(b *testing.B) {
	f := New[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.Push(1)
			f.Pop()
		}
	})
}
