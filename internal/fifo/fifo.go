// Package fifo provides the bounded FIFO buffers that connect the BMac
// hardware modules: the protocol_processor writes block_fifo, tx_fifo,
// ends_fifo, rdset_fifo and wrset_fifo; the block_processor drains them and
// writes res_fifo (paper §3.1, Figure 7).
//
// A FIFO models a hardware queue: fixed depth, blocking push when full and
// blocking pop when empty, with a Close for end-of-stream. Occupancy
// statistics feed the block_monitor.
package fifo

import (
	"errors"
	"sync"
)

// ErrClosed reports a push to a closed FIFO.
var ErrClosed = errors.New("fifo: closed")

// FIFO is a bounded blocking queue of T.
type FIFO[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf    []T  // guarded by mu
	head   int  // guarded by mu
	count  int  // guarded by mu
	closed bool // guarded by mu

	pushes   uint64 // guarded by mu
	pops     uint64 // guarded by mu
	maxDepth int    // guarded by mu
}

// New creates a FIFO with the given depth (must be >= 1).
func New[T any](depth int) *FIFO[T] {
	if depth < 1 {
		depth = 1
	}
	f := &FIFO[T]{buf: make([]T, depth)}
	f.notFull = sync.NewCond(&f.mu)
	f.notEmpty = sync.NewCond(&f.mu)
	return f
}

// Push appends v, blocking while the FIFO is full. It returns ErrClosed if
// the FIFO was closed.
func (f *FIFO[T]) Push(v T) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.count == len(f.buf) && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		return ErrClosed
	}
	f.buf[(f.head+f.count)%len(f.buf)] = v
	f.count++
	f.pushes++
	if f.count > f.maxDepth {
		f.maxDepth = f.count
	}
	f.notEmpty.Signal()
	return nil
}

// Pop removes the oldest element, blocking while empty. ok=false means the
// FIFO is closed and drained.
func (f *FIFO[T]) Pop() (v T, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.count == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if f.count == 0 {
		var zero T
		return zero, false
	}
	v = f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	f.pops++
	f.notFull.Signal()
	return v, true
}

// TryPop removes the oldest element without blocking; ok=false when empty.
func (f *FIFO[T]) TryPop() (v T, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.count == 0 {
		var zero T
		return zero, false
	}
	v = f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	f.pops++
	f.notFull.Signal()
	return v, true
}

// Close marks end-of-stream: pending and future pushes fail, Pop drains the
// remaining elements then reports ok=false.
func (f *FIFO[T]) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.notFull.Broadcast()
	f.notEmpty.Broadcast()
}

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// Cap returns the configured depth.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Stats reports cumulative pushes, pops and the high-water mark; collected
// by the block_monitor module.
func (f *FIFO[T]) Stats() (pushes, pops uint64, maxDepth int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pushes, f.pops, f.maxDepth
}
