package delivery

import (
	"fmt"
	"net"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/gossip"
)

// GossipTransport delivers blocks over the Gossip wire format (framed
// marshaled blocks on a TCP stream) — the software-peer half of the
// paper's dual delivery path.
type GossipTransport struct {
	conn net.Conn
	// WriteTimeout bounds each frame write so a wedged peer cannot pin
	// its writer goroutine forever (default 10s).
	WriteTimeout time.Duration
}

// DialGossip connects to a gossip listener.
func DialGossip(addr string) (*GossipTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("delivery dial %q: %w", addr, err)
	}
	return &GossipTransport{conn: conn, WriteTimeout: 10 * time.Second}, nil
}

// GossipDialer returns a Dial function for PeerOptions, enabling
// reconnect + catch-up for the peer at addr.
func GossipDialer(addr string) func() (Transport, error) {
	return func() (Transport, error) { return DialGossip(addr) }
}

// Send implements Transport.
func (t *GossipTransport) Send(it *Item) (int, error) {
	if t.WriteTimeout > 0 {
		if err := t.conn.SetWriteDeadline(time.Now().Add(t.WriteTimeout)); err != nil {
			return 0, err
		}
	}
	return gossip.WriteRaw(t.conn, it.Marshaled())
}

// Close implements Transport.
func (t *GossipTransport) Close() error { return t.conn.Close() }

// BMacTransport delivers blocks through the BMac protocol sender — the
// hardware-peer half of the dual delivery path. The sender's identity
// cache must already be in sync with the receiving peer.
type BMacTransport struct {
	sender *bmacproto.Sender
}

// NewBMacTransport wraps a protocol sender.
func NewBMacTransport(s *bmacproto.Sender) *BMacTransport {
	return &BMacTransport{sender: s}
}

// Send implements Transport.
func (t *BMacTransport) Send(it *Item) (int, error) {
	stats, err := t.sender.SendBlock(it.Block)
	return stats.Bytes, err
}

// Close implements Transport. The sender's sink is owned by its creator.
func (t *BMacTransport) Close() error { return nil }

// Func adapts an in-process delivery hook to the Transport interface, so
// local consumers (validators, cross-checkers) ride the same per-peer
// pipeline as network peers.
type Func func(*block.Block) error

// Send implements Transport.
func (f Func) Send(it *Item) (int, error) { return 0, f(it.Block) }

// Close implements Transport.
func (f Func) Close() error { return nil }

// Slowed wraps a transport with a fixed per-block delay — the
// artificially slow peer of the cluster experiment's isolation check.
func Slowed(tr Transport, delay time.Duration) Transport {
	return &slowed{tr: tr, delay: delay}
}

type slowed struct {
	tr    Transport
	delay time.Duration
}

func (s *slowed) Send(it *Item) (int, error) {
	time.Sleep(s.delay)
	return s.tr.Send(it)
}

func (s *slowed) Close() error { return s.tr.Close() }
