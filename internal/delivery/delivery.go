// Package delivery implements the orderer's non-blocking block delivery
// service: the fan-out layer between block creation and the peers
// (paper §3.5's dual path — the same orderer feeds both software-only
// peers over Gossip and BMac peers over the custom protocol).
//
// The service replaces the lock-step broadcaster (one mutex across every
// peer's socket write, whole fan-out aborted by the first error) with one
// independent pipeline per peer:
//
//   - Publish appends the block to a bounded retained window and returns
//     immediately — the orderer never blocks on a peer.
//   - Each peer owns a writer goroutine with a cursor into the window, so
//     a slow or dead peer delays only itself (slow-peer isolation).
//   - A peer that falls off the window's tail is handled by policy:
//     Disconnect kills the pipe (the default — a blockchain peer must not
//     silently miss blocks), DropBlocks skips the lost range and counts it
//     (for lossy monitoring taps and overload experiments).
//   - With a History source configured (normally the orderer's own block
//     ledger, via LedgerSource), a peer that fell off the window is not
//     disconnected: the lost range is streamed from history until the
//     cursor is back inside the window — the catch-up path a crashed and
//     restarted peer takes after Rewind moves its cursor to the height it
//     recovered to.
//   - A peer whose transport fails can be redialed; after reconnecting it
//     catches up from the retained window (or history) at its own pace.
//
// Per-peer lag, bytes, drops, redials, catch-up counts and errors are
// exposed through Stats, feeding the cluster experiment's isolation,
// tail-latency and churn reports.
package delivery

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/ledger"
	"bmac/internal/telemetry"
)

// Item is one published block plus its delivery sequence number. The
// marshaled form is computed at most once and shared by every peer that
// needs it (the Gossip path), so fan-out to N peers pays one Marshal.
type Item struct {
	Seq   uint64
	Block *block.Block

	once sync.Once
	raw  []byte
}

// Marshaled returns the marshaled block, computing it on first use.
func (it *Item) Marshaled() []byte {
	it.once.Do(func() { it.raw = block.Marshal(it.Block) })
	return it.raw
}

// Transport writes one block to one peer. Implementations must be safe
// for use by a single writer goroutine (the pipe serializes sends).
type Transport interface {
	// Send delivers one item and reports the wire bytes written.
	Send(it *Item) (int, error)
	// Close releases the underlying connection.
	Close() error
}

// Policy selects what happens to a peer that falls off the retained
// window (its backlog exceeded the window size).
type Policy int

// Overrun policies.
const (
	// Disconnect records ErrOverrun and kills the peer's pipe: a
	// validating peer must never silently skip blocks.
	Disconnect Policy = iota
	// DropBlocks skips the blocks that fell off the window, counts them
	// in PeerStats.Dropped, and keeps delivering from the oldest retained
	// block. For monitoring taps and overload experiments.
	DropBlocks
	// Wait applies backpressure instead: Publish blocks until the peer
	// has slack in the window, so the peer is lossless and the producer
	// self-throttles. For in-process consumers that must see every block
	// (e.g. the testbed's cross-check pipe); a Wait network peer lets a
	// remote stall the publisher, which is exactly the failure mode the
	// other policies exist to avoid.
	Wait
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Disconnect:
		return "disconnect"
	case DropBlocks:
		return "drop"
	case Wait:
		return "wait"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name ("disconnect", "drop" or "wait").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "disconnect":
		return Disconnect, nil
	case "drop":
		return DropBlocks, nil
	case "wait":
		return Wait, nil
	default:
		return 0, fmt.Errorf("delivery: unknown policy %q (valid: disconnect, drop, wait)", s)
	}
}

// Errors reported through PeerStats.Err.
var (
	// ErrOverrun reports a Disconnect-policy peer that fell off the
	// retained window.
	ErrOverrun = errors.New("delivery: peer overran the retained block window")
	// ErrClosed reports an operation on a closed service.
	ErrClosed = errors.New("delivery: service closed")
)

// Source serves historical blocks that have fallen off the retained
// window, keyed by delivery sequence number. Implementations must be safe
// for concurrent use (every pipe may fetch).
type Source interface {
	// BlockAt returns the block published with the given sequence number.
	BlockAt(seq uint64) (*block.Block, error)
}

// LedgerSource adapts a block ledger to a catch-up Source. Delivery
// sequence numbers must coincide with ledger block numbers, which holds
// whenever every published block is appended to the ledger first (as the
// cluster orderer does) and publication started from sequence 0.
func LedgerSource(l *ledger.Ledger) Source { return ledgerSource{l} }

type ledgerSource struct{ l *ledger.Ledger }

func (s ledgerSource) BlockAt(seq uint64) (*block.Block, error) { return s.l.Get(seq) }

// Options parameterize the service.
type Options struct {
	// Window is the number of recent blocks retained for catch-up; it is
	// also each peer's maximum backlog. 0 means 256.
	Window int
	// History, when set, serves blocks that fell off the window: instead
	// of being disconnected, an overrun Disconnect-policy peer streams the
	// lost range from History (counted in PeerStats.CaughtUp). DropBlocks
	// peers still drop — their policy asks for it.
	History Source
	// Registry, when non-nil, mirrors each pipe's counters into the
	// telemetry registry (delivery_*_total{peer=...}) and exports per-peer
	// lag as a scrape-time gauge. Nil (telemetry off) leaves every pipe's
	// instrument handles nil — one predicted branch per event.
	Registry *telemetry.Registry
}

// PeerOptions parameterize one registered peer.
type PeerOptions struct {
	// Policy selects the overrun policy (default Disconnect).
	Policy Policy
	// Dial, when set, is used to reconnect after a transport send error;
	// the peer then catches up from the retained window.
	Dial func() (Transport, error)
	// MaxRedials bounds consecutive reconnect attempts per send error
	// (default 3; ignored without Dial).
	MaxRedials int
	// RedialWait is the pause before the first reconnect attempt (default
	// 10ms). Successive attempts back off exponentially from it.
	RedialWait time.Duration
	// RedialMaxWait caps the exponential backoff between reconnect
	// attempts (default 200ms, or RedialWait when that is larger). Large
	// redial budgets — the partition-survival configuration — would
	// otherwise spin the dialer hot against a dead link.
	RedialMaxWait time.Duration
}

// PeerStats is a point-in-time snapshot of one peer's pipeline.
type PeerStats struct {
	Name      string
	Connected bool   // pipe alive and transport usable
	Blocks    int64  // blocks delivered
	Bytes     int64  // wire bytes delivered
	Lag       uint64 // published blocks not yet delivered to this peer
	Dropped   uint64 // blocks skipped by the DropBlocks policy
	CaughtUp  uint64 // blocks streamed from the History source
	Redials   int    // successful reconnects
	SendErrs  int    // send attempts that errored
	Err       error  // terminal pipe error, if any
}

// Service is the delivery fan-out: a retained block window plus one pipe
// per registered peer, with an optional history source behind the window.
type Service struct {
	window  int
	history Source
	reg     *telemetry.Registry

	mu     sync.Mutex
	cond   *sync.Cond       // signals Wait-policy slack to blocked Publish calls
	ring   []*Item          // guarded by mu; ring[seq%window], valid for [base, height)
	base   uint64           // guarded by mu; oldest retained sequence
	height uint64           // guarded by mu; next sequence to publish
	peers  map[string]*pipe // guarded by mu
	closed bool             // guarded by mu
}

// NewService creates an empty delivery service.
func NewService(opts Options) *Service {
	w := opts.Window
	if w <= 0 {
		w = 256
	}
	s := &Service{
		window:  w,
		history: opts.History,
		reg:     opts.Registry,
		ring:    make([]*Item, w),
		peers:   make(map[string]*pipe),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Window reports the retained-window size.
func (s *Service) Window() int { return s.window }

// Floor reports the lowest sequence number any live pipe still needs —
// the window base when every pipe has caught up past it. An archive
// backing this service (delivery.LedgerSource over a peer ledger) must not
// prune at or above Floor, or an in-flight catch-up loses its source
// mid-stream (the prune-vs-rewind race: the pipe fails with a
// ledger.ErrPruned-wrapped error instead of streaming).
func (s *Service) Floor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	floor := s.base
	for _, p := range s.peers {
		p.mu.Lock()
		if p.alive && p.next < floor {
			floor = p.next
		}
		p.mu.Unlock()
	}
	return floor
}

// Height reports the number of blocks published.
func (s *Service) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.height
}

// Register adds a peer and starts its writer goroutine. The peer first
// receives the oldest retained block (usually the next Publish when the
// service is fresh). Registering a duplicate name is an error.
func (s *Service) Register(name string, tr Transport, opts PeerOptions) error {
	if opts.MaxRedials == 0 {
		opts.MaxRedials = 3
	}
	if opts.RedialWait == 0 {
		opts.RedialWait = 10 * time.Millisecond
	}
	if opts.RedialMaxWait == 0 {
		opts.RedialMaxWait = 200 * time.Millisecond
	}
	if opts.RedialMaxWait < opts.RedialWait {
		opts.RedialMaxWait = opts.RedialWait
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, dup := s.peers[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("delivery: peer %q already registered", name)
	}
	p := &pipe{
		name:   name,
		tr:     tr,
		opts:   opts,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		next:   s.base,
		alive:  true,
	}
	if b := telemetry.NewPeerDeliveryMetrics(s.reg, name); b != nil {
		// Copy the bundle by value: disabled telemetry leaves every handle
		// a nil *Counter, which ignores writes at the cost of one branch.
		p.m = *b
	}
	s.peers[name] = p
	s.mu.Unlock()
	// Lag is derived from the service height at scrape time, never
	// maintained on the send path.
	s.reg.GaugeFunc(telemetry.Name("delivery_lag_blocks", "peer", name),
		func() int64 { return int64(p.snapshot(s.Height()).Lag) })
	go p.run(s)
	return nil
}

// Publish appends the block to the window and wakes every pipe. It never
// blocks on a Disconnect or DropBlocks peer: those fall behind in the
// window and are handled by their policy. A live Wait-policy peer at the
// window's tail makes Publish block until that peer frees a slot — the
// lossless backpressure mode.
func (s *Service) Publish(b *block.Block) error {
	s.mu.Lock()
	for !s.closed && s.height-s.base >= uint64(s.window) && s.waitFloor() <= s.base {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	seq := s.height
	s.ring[seq%uint64(s.window)] = &Item{Seq: seq, Block: b}
	s.height = seq + 1
	if s.height-s.base > uint64(s.window) {
		// The wait loop guarantees this one-step advance never passes a
		// live Wait-policy peer's cursor.
		s.base = s.height - uint64(s.window)
	}
	peers := make([]*pipe, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	for _, p := range peers {
		p.wake()
	}
	return nil
}

// waitFloor returns the lowest cursor among live Wait-policy peers
// (effectively +inf when there are none). It must be called with s.mu
// held; the s.mu -> p.mu lock order is safe because pipes never take
// s.mu while holding their own lock.
func (s *Service) waitFloor() uint64 {
	floor := ^uint64(0)
	for _, p := range s.peers {
		if p.opts.Policy != Wait {
			continue
		}
		p.mu.Lock()
		if p.alive && p.next < floor {
			floor = p.next
		}
		p.mu.Unlock()
	}
	return floor
}

// slack wakes Publish calls blocked on a Wait-policy peer.
func (s *Service) slack() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fetch returns the item at seq. gap > 0 reports that seq fell off the
// window's tail (gap blocks were lost); have=false with gap=0 means the
// peer is fully caught up.
func (s *Service) fetch(seq uint64) (it *Item, gap uint64, have bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq >= s.height {
		return nil, 0, false
	}
	if seq < s.base {
		return nil, s.base - seq, false
	}
	return s.ring[seq%uint64(s.window)], 0, true
}

// Rewind moves a peer's cursor back to seq, so delivery resumes from an
// earlier position — the deliver protocol's "start from block N" request a
// peer makes after recovering from a crash at height N. Blocks below the
// retained window are served from the History source. Rewinding forward
// is a no-op. A pipe that already died (redial budget exhausted, overrun)
// cannot resume; Rewind reports its terminal error instead of pretending
// catch-up is underway.
func (s *Service) Rewind(name string, seq uint64) error {
	s.mu.Lock()
	p, ok := s.peers[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("delivery: rewind: unknown peer %q", name)
	}
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return fmt.Errorf("delivery: rewind %q: pipe already failed: %w", name, err)
	}
	if seq < p.next {
		p.next = seq
		p.rewinds++ // invalidate any in-flight send's cursor advance
	}
	p.mu.Unlock()
	p.wake()
	return nil
}

// Stats snapshots every peer, sorted by name.
func (s *Service) Stats() []PeerStats {
	s.mu.Lock()
	height := s.height
	peers := make([]*pipe, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	out := make([]PeerStats, 0, len(peers))
	for _, p := range peers {
		out = append(out, p.snapshot(height))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Err joins the terminal errors of every dead pipe (nil when all pipes
// are healthy).
func (s *Service) Err() error {
	var errs []error
	for _, st := range s.Stats() {
		if st.Err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", st.Name, st.Err))
		}
	}
	return errors.Join(errs...)
}

// Drain waits until every live peer has delivered all published blocks,
// or the timeout expires (reporting the laggards).
func (s *Service) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var lagging []string
		for _, st := range s.Stats() {
			if st.Err == nil && st.Connected && st.Lag > 0 {
				lagging = append(lagging, fmt.Sprintf("%s(lag %d)", st.Name, st.Lag))
			}
		}
		if len(lagging) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("delivery: drain timed out after %v: %v", timeout, lagging)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops every pipe, waits for in-flight sends, and closes the
// transports. Registered peers' terminal errors remain readable through
// Stats/Err.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast() // release Publish calls blocked on a Wait peer
	peers := make([]*pipe, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	for _, p := range peers {
		close(p.stop)
	}
	var firstErr error
	for _, p := range peers {
		<-p.done
		if err := p.closeTransport(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// pipe is one peer's delivery pipeline: a cursor into the service window
// plus the writer goroutine draining it.
type pipe struct {
	name   string
	opts   PeerOptions
	m      telemetry.PeerDeliveryMetrics // zero value (all nil) when telemetry is off
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}

	mu       sync.Mutex
	tr       Transport // guarded by mu
	next     uint64    // guarded by mu; next sequence to deliver
	rewinds  uint64    // guarded by mu; generation counter bumped by Rewind
	alive    bool      // guarded by mu
	blocks   int64     // guarded by mu
	bytes    int64     // guarded by mu
	dropped  uint64    // guarded by mu
	caughtUp uint64    // guarded by mu
	redials  int       // guarded by mu
	sendErrs int       // guarded by mu
	err      error     // guarded by mu
	trClosed bool      // guarded by mu
}

func (p *pipe) wake() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

func (p *pipe) snapshot(height uint64) PeerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	lag := uint64(0)
	if p.alive && height > p.next {
		lag = height - p.next
	}
	return PeerStats{
		Name:      p.name,
		Connected: p.alive,
		Blocks:    p.blocks,
		Bytes:     p.bytes,
		Lag:       lag,
		Dropped:   p.dropped,
		CaughtUp:  p.caughtUp,
		Redials:   p.redials,
		SendErrs:  p.sendErrs,
		Err:       p.err,
	}
}

// fail records the terminal error and marks the pipe dead.
func (p *pipe) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.alive = false
	p.mu.Unlock()
}

func (p *pipe) closeTransport() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.trClosed || p.tr == nil {
		return nil
	}
	p.trClosed = true
	return p.tr.Close()
}

// run is the writer goroutine: it drains the window from the pipe's
// cursor, applying the overrun policy and the redial loop. One goroutine
// per peer — a stalled send here stalls only this peer.
func (p *pipe) run(s *Service) {
	defer close(p.done)
	// A dead or advancing Wait-policy pipe changes the window floor;
	// blocked Publish calls must hear about it.
	backpressured := p.opts.Policy == Wait
	if backpressured {
		defer s.slack()
	}
	for {
		p.mu.Lock()
		next, gen := p.next, p.rewinds
		p.mu.Unlock()
		it, gap, have := s.fetch(next)
		fromHistory := false
		if gap > 0 {
			// Unreachable for Wait pipes, unless rewound: Publish never
			// advances the window base past a live Wait cursor.
			switch {
			case s.history != nil && p.opts.Policy != DropBlocks:
				// Stream the lost range from history until the cursor is
				// back inside the window. The source error stays wrapped so
				// callers can distinguish a pruned archive (the requested
				// range is gone for good — rewinding lower cannot help) from
				// a quarantined one (the range will come back once the
				// source restores it).
				b, err := s.history.BlockAt(next)
				if err != nil {
					p.fail(fmt.Errorf("%w: %d blocks behind, catch-up failed: %w", ErrOverrun, gap, err))
					p.closeTransport() // bmaclint:allow errdiscard (redial path: stale transport, error is expected)
					return
				}
				it = &Item{Seq: next, Block: b}
				fromHistory = true
			case p.opts.Policy == Disconnect:
				p.fail(fmt.Errorf("%w: %d blocks behind", ErrOverrun, gap))
				p.closeTransport() // bmaclint:allow errdiscard (redial path: stale transport, error is expected)
				return
			default:
				p.mu.Lock()
				p.dropped += gap
				p.next = next + gap
				p.mu.Unlock()
				p.m.Dropped.Add(int64(gap))
				continue
			}
		} else if !have {
			select {
			case <-p.notify:
				continue
			case <-p.stop:
				return
			}
		}
		n, err := p.send(it)
		if err != nil {
			if !p.redial(err) {
				return
			}
			continue // retry the same cursor over the new transport
		}
		p.mu.Lock()
		p.blocks++
		p.bytes += int64(n)
		if fromHistory {
			p.caughtUp++
		}
		// A Rewind that landed while this send was in flight moved the
		// cursor back on purpose; advancing past it here would silently
		// skip the rewound range.
		if gen == p.rewinds && it.Seq+1 > p.next {
			p.next = it.Seq + 1
		}
		p.mu.Unlock()
		p.m.Blocks.Inc()
		p.m.Bytes.Add(int64(n))
		if fromHistory {
			p.m.CaughtUp.Inc()
		}
		if backpressured {
			s.slack()
		}
	}
}

func (p *pipe) send(it *Item) (int, error) {
	p.mu.Lock()
	tr := p.tr
	p.mu.Unlock()
	return tr.Send(it)
}

// redial closes the failed transport and tries to reconnect; it reports
// whether the pipe should keep running. Attempts pace out exponentially
// from RedialWait up to the RedialMaxWait cap, so a pipe configured to
// survive a long partition (large MaxRedials) idles against the dead link
// instead of hammering it.
func (p *pipe) redial(sendErr error) bool {
	p.mu.Lock()
	p.sendErrs++
	p.mu.Unlock()
	p.m.Errs.Inc()
	p.closeTransport() // bmaclint:allow errdiscard (shutdown: transport may already be closed)
	if p.opts.Dial == nil {
		p.fail(sendErr)
		return false
	}
	wait := p.opts.RedialWait
	for attempt := 0; attempt < p.opts.MaxRedials; attempt++ {
		select {
		case <-time.After(wait):
		case <-p.stop:
			p.fail(sendErr)
			return false
		}
		if wait < p.opts.RedialMaxWait {
			if wait *= 2; wait > p.opts.RedialMaxWait {
				wait = p.opts.RedialMaxWait
			}
		}
		tr, err := p.opts.Dial()
		if err != nil {
			continue
		}
		p.mu.Lock()
		p.tr = tr
		p.trClosed = false
		p.redials++
		p.mu.Unlock()
		p.m.Redials.Inc()
		return true
	}
	p.fail(fmt.Errorf("delivery: redial failed after %d attempts: %w", p.opts.MaxRedials, sendErr))
	return false
}
