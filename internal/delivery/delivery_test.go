package delivery

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/gossip"
	"bmac/internal/identity"
	"bmac/internal/ledger"
)

func makeBlock(t testing.TB, num uint64) *block.Block {
	t.Helper()
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	orderer, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := block.NewBlock(num, nil, nil, orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mockTransport records delivered sequence numbers and can be programmed
// to fail or dawdle.
type mockTransport struct {
	mu       sync.Mutex
	seqs     []uint64
	failNext int
	delay    time.Duration
	closed   bool
}

func (m *mockTransport) Send(it *Item) (int, error) {
	m.mu.Lock()
	delay := m.delay
	if m.failNext > 0 {
		m.failNext--
		m.mu.Unlock()
		return 0, errors.New("mock send failure")
	}
	m.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	m.mu.Lock()
	m.seqs = append(m.seqs, it.Seq)
	m.mu.Unlock()
	return len(it.Marshaled()), nil
}

func (m *mockTransport) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *mockTransport) delivered() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.seqs...)
}

func publishN(t *testing.T, s *Service, n int) {
	t.Helper()
	b := makeBlock(t, 0)
	for i := 0; i < n; i++ {
		// Reuse the signed block, renumbering: delivery does not inspect
		// header numbers, only its own sequence.
		bi := *b
		bi.Header.Number = uint64(i)
		if err := s.Publish(&bi); err != nil {
			t.Fatal(err)
		}
	}
}

func wantInOrder(t *testing.T, name string, seqs []uint64, n int) {
	t.Helper()
	if len(seqs) != n {
		t.Fatalf("%s delivered %d blocks, want %d", name, len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("%s got seq %d at position %d", name, s, i)
		}
	}
}

func TestFanOutAllPeersInOrder(t *testing.T) {
	s := NewService(Options{Window: 16})
	defer s.Close()
	trs := make([]*mockTransport, 3)
	for i := range trs {
		trs[i] = &mockTransport{}
		if err := s.Register(fmt.Sprintf("p%d", i), trs[i], PeerOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	publishN(t, s, 8)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, tr := range trs {
		wantInOrder(t, fmt.Sprintf("p%d", i), tr.delivered(), 8)
	}
	for _, st := range s.Stats() {
		if st.Blocks != 8 || st.Bytes == 0 || st.Lag != 0 || st.Err != nil {
			t.Errorf("stats %+v", st)
		}
	}
}

// TestFailedPeerDoesNotStarveOthers is the regression for the lock-step
// broadcaster bug: one dead peer must not prevent delivery to the healthy
// ones, and its error must be recorded rather than aborting the fan-out.
func TestFailedPeerDoesNotStarveOthers(t *testing.T) {
	s := NewService(Options{Window: 16})
	defer s.Close()
	bad := &mockTransport{failNext: 1 << 30}
	good1, good2 := &mockTransport{}, &mockTransport{}
	for name, tr := range map[string]Transport{"bad": bad, "good1": good1, "good2": good2} {
		if err := s.Register(name, tr, PeerOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	publishN(t, s, 6)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantInOrder(t, "good1", good1.delivered(), 6)
	wantInOrder(t, "good2", good2.delivered(), 6)
	if err := s.Err(); err == nil {
		t.Fatal("dead peer error not surfaced")
	}
	for _, st := range s.Stats() {
		if st.Name == "bad" {
			if st.Err == nil || st.Connected {
				t.Errorf("bad peer stats %+v", st)
			}
			if !bad.closed {
				t.Error("bad transport not closed")
			}
		}
	}
}

// TestSlowPeerIsolation: a dawdling peer must not delay the fast ones.
func TestSlowPeerIsolation(t *testing.T) {
	s := NewService(Options{Window: 64})
	defer s.Close()
	slow := &mockTransport{delay: 30 * time.Millisecond}
	fast := &mockTransport{}
	if err := s.Register("slow", slow, PeerOptions{Policy: DropBlocks}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("fast", fast, PeerOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 10)

	// The fast peer finishes long before the slow one could (10 blocks x
	// 30ms = 300ms minimum for the slow pipe).
	deadline := time.Now().Add(2 * time.Second)
	for len(fast.delivered()) < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("fast peer starved: %d/10 after 2s", len(fast.delivered()))
		}
		time.Sleep(time.Millisecond)
	}
	var slowLag uint64
	for _, st := range s.Stats() {
		if st.Name == "slow" {
			slowLag = st.Lag + st.Dropped
		}
	}
	if slowLag == 0 {
		t.Error("slow peer shows no backlog while fast peer finished")
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantInOrder(t, "fast", fast.delivered(), 10)
}

// TestDropPolicySkipsAndCounts: a peer that falls off the window under
// the DropBlocks policy skips the lost range, keeps order, and counts
// the drops.
func TestDropPolicySkipsAndCounts(t *testing.T) {
	s := NewService(Options{Window: 4})
	defer s.Close()
	slow := &mockTransport{delay: 20 * time.Millisecond}
	if err := s.Register("slow", slow, PeerOptions{Policy: DropBlocks}); err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 20)
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	seqs := slow.delivered()
	var st PeerStats
	for _, x := range s.Stats() {
		st = x
	}
	if st.Dropped == 0 {
		t.Fatalf("no drops recorded: %+v", st)
	}
	if int64(len(seqs)) != st.Blocks || uint64(len(seqs))+st.Dropped != 20 {
		t.Fatalf("delivered %d + dropped %d != 20", len(seqs), st.Dropped)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("reordered delivery: %v", seqs)
		}
	}
}

// TestDisconnectPolicyOverrun: the default policy kills a peer that
// overruns the window instead of letting it skip blocks.
func TestDisconnectPolicyOverrun(t *testing.T) {
	s := NewService(Options{Window: 2})
	defer s.Close()
	slow := &mockTransport{delay: 50 * time.Millisecond}
	if err := s.Register("slow", slow, PeerOptions{Policy: Disconnect}); err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 10)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()[0]
		if st.Err != nil {
			if !errors.Is(st.Err, ErrOverrun) {
				t.Fatalf("err = %v, want ErrOverrun", st.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("overrun never detected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitPolicyBackpressure: a Wait-policy peer is lossless — Publish
// blocks when the peer is a full window behind instead of dropping or
// disconnecting it — and its slowness still cannot starve other peers
// of the blocks already in the window.
func TestWaitPolicyBackpressure(t *testing.T) {
	const window, blocks = 4, 16
	s := NewService(Options{Window: window})
	defer s.Close()
	slow := &mockTransport{delay: 10 * time.Millisecond}
	fast := &mockTransport{}
	if err := s.Register("slow", slow, PeerOptions{Policy: Wait}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("fast", fast, PeerOptions{}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	publishN(t, s, blocks)
	elapsed := time.Since(start)
	// The publisher cannot run more than a window ahead of the slow
	// peer, so publishing 16 blocks must absorb >= (16-4)*10ms of the
	// peer's pace.
	if min := time.Duration(blocks-window) * 10 * time.Millisecond; elapsed < min {
		t.Errorf("16 publishes past a 4-window Wait peer took %v, want >= %v (no backpressure applied)", elapsed, min)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantInOrder(t, "slow", slow.delivered(), blocks)
	wantInOrder(t, "fast", fast.delivered(), blocks)
	for _, st := range s.Stats() {
		if st.Dropped != 0 || st.Err != nil {
			t.Errorf("stats %+v, want lossless delivery", st)
		}
	}
}

// TestCloseUnblocksWaitingPublish: closing the service must release a
// Publish call parked on a dead-slow Wait peer.
func TestCloseUnblocksWaitingPublish(t *testing.T) {
	s := NewService(Options{Window: 1})
	stuck := &mockTransport{delay: 200 * time.Millisecond}
	if err := s.Register("stuck", stuck, PeerOptions{Policy: Wait}); err != nil {
		t.Fatal(err)
	}
	b := makeBlock(t, 0)
	if err := s.Publish(b); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		bi := *b
		errCh <- s.Publish(&bi) // blocks: window full, Wait peer mid-send
	}()
	time.Sleep(20 * time.Millisecond)
	closeDone := make(chan struct{})
	go func() { s.Close(); close(closeDone) }() // Close waits out the in-flight send
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("unblocked Publish returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Publish still blocked after Close")
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never finished")
	}
}

// TestReconnectCatchUp: after a send error the pipe redials and resumes
// from the retained window without losing or reordering blocks.
func TestReconnectCatchUp(t *testing.T) {
	s := NewService(Options{Window: 32})
	defer s.Close()
	tr := &mockTransport{failNext: 1}
	err := s.Register("p", tr, PeerOptions{
		Dial:       func() (Transport, error) { return tr, nil },
		RedialWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 5)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantInOrder(t, "p", tr.delivered(), 5)
	st := s.Stats()[0]
	if st.Redials != 1 || st.SendErrs != 1 || st.Err != nil {
		t.Errorf("stats %+v, want 1 redial / 1 send error", st)
	}
}

func TestPublishAfterClose(t *testing.T) {
	s := NewService(Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(makeBlock(t, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := s.Register("p", &mockTransport{}, PeerOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("register err = %v, want ErrClosed", err)
	}
}

func TestDuplicateRegister(t *testing.T) {
	s := NewService(Options{})
	defer s.Close()
	if err := s.Register("p", &mockTransport{}, PeerOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("p", &mockTransport{}, PeerOptions{}); err == nil {
		t.Error("duplicate register accepted")
	}
}

// TestGossipTransportEndToEnd runs the service over real TCP gossip
// framing, including a mid-stream reconnect + catch-up.
func TestGossipTransportEndToEnd(t *testing.T) {
	ln, err := gossip.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	s := NewService(Options{Window: 32})
	defer s.Close()
	tr, err := DialGossip(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tcp", tr, PeerOptions{
		Dial:       GossipDialer(ln.Addr()),
		RedialWait: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	publishN(t, s, 3)
	for i := 0; i < 3; i++ {
		b := <-ln.Blocks()
		if b.Header.Number != uint64(i) {
			t.Fatalf("block %d arrived as %d", i, b.Header.Number)
		}
	}

	// Kill the connection under the pipe: the next publish must fail the
	// send, redial, and catch up from the window.
	tr.Close()
	publishN(t, s, 6) // seqs 3..5 new on top of re-published 0..2
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()[0]
	if st.Redials == 0 {
		t.Errorf("no redial recorded: %+v", st)
	}
	if st.Err != nil {
		t.Errorf("pipe error: %v", st.Err)
	}
}

// TestConcurrentPublishAndStats exercises the locking under -race.
func TestConcurrentPublishAndStats(t *testing.T) {
	s := NewService(Options{Window: 8})
	defer s.Close()
	tr := &mockTransport{}
	if err := s.Register("p", tr, PeerOptions{Policy: DropBlocks}); err != nil {
		t.Fatal(err)
	}
	b := makeBlock(t, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				bi := *b
				if err := s.Publish(&bi); err != nil {
					t.Error(err)
					return
				}
				s.Stats()
			}
		}()
	}
	wg.Wait()
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()[0]
	if st.Blocks+int64(st.Dropped) != 200 {
		t.Errorf("blocks %d + dropped %d != 200", st.Blocks, st.Dropped)
	}
}

// makeChain builds n blocks chained by previous hash and commits them to
// a fresh ledger (the orderer's ledger of the catch-up path).
func makeChain(t *testing.T, n int) (*ledger.Ledger, []*block.Block) {
	t.Helper()
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	orderer, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	led, err := ledger.Open(t.TempDir(), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	var blocks []*block.Block
	var prev []byte
	for i := 0; i < n; i++ {
		b, err := block.NewBlock(uint64(i), prev, nil, orderer)
		if err != nil {
			t.Fatal(err)
		}
		prev = block.HeaderHash(&b.Header)
		if _, err := led.Commit(b); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	return led, blocks
}

func waitDelivered(t *testing.T, tr *mockTransport, n int) []uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		seqs := tr.delivered()
		if len(seqs) >= n {
			return seqs
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d blocks delivered: %v", len(seqs), n, seqs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLedgerCatchUpAfterRewind is the recovery delivery path: ten blocks
// are published through a window of four, a peer registers late (cursor at
// the window base) and then — like a restarted peer resuming from its
// recovered height — rewinds to sequence 0. The range below the window
// must stream from the ledger source, in order, without disconnecting.
func TestLedgerCatchUpAfterRewind(t *testing.T) {
	led, blocks := makeChain(t, 10)
	s := NewService(Options{Window: 4, History: LedgerSource(led)})
	defer s.Close()
	for _, b := range blocks {
		if err := s.Publish(b); err != nil {
			t.Fatal(err)
		}
	}
	tr := &mockTransport{}
	if err := s.Register("p", tr, PeerOptions{Policy: Disconnect}); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, tr, 4) // window tail: 6..9

	if err := s.Rewind("p", 0); err != nil {
		t.Fatal(err)
	}
	seqs := waitDelivered(t, tr, 14)
	want := []uint64{6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(seqs) != len(want) {
		t.Fatalf("delivered %v", seqs)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", seqs, want)
		}
	}
	st := s.Stats()[0]
	if st.Err != nil {
		t.Fatalf("pipe error: %v", st.Err)
	}
	if st.CaughtUp != 6 {
		t.Errorf("CaughtUp = %d, want 6 (blocks 0..5 from the ledger)", st.CaughtUp)
	}
	if st.Lag != 0 {
		t.Errorf("lag = %d after catch-up", st.Lag)
	}
	if err := s.Rewind("ghost", 0); err == nil {
		t.Error("rewind of unknown peer accepted")
	}
}

// TestDropPolicyIgnoresHistory pins that a DropBlocks peer keeps its
// semantics even when a history source exists: drops are what its policy
// asks for.
func TestDropPolicyIgnoresHistory(t *testing.T) {
	led, blocks := makeChain(t, 8)
	s := NewService(Options{Window: 2, History: LedgerSource(led)})
	defer s.Close()
	for _, b := range blocks {
		if err := s.Publish(b); err != nil {
			t.Fatal(err)
		}
	}
	tr := &mockTransport{}
	if err := s.Register("p", tr, PeerOptions{Policy: DropBlocks}); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, tr, 2)
	if err := s.Rewind("p", 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()[0]
		if st.Dropped >= 6 && st.CaughtUp == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drop peer stats after rewind: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCatchUpFailureDisconnects: a Disconnect peer that falls behind a
// history source missing the needed block dies with ErrOverrun context
// instead of looping.
func TestCatchUpFailureDisconnects(t *testing.T) {
	led, _ := makeChain(t, 3) // ledger holds 0..2 only
	s := NewService(Options{Window: 2, History: LedgerSource(led)})
	defer s.Close()
	// Publish 8 blocks; seq 3.. are not in the ledger (history is stale).
	for i := 0; i < 8; i++ {
		b := makeBlock(t, uint64(i))
		if err := s.Publish(b); err != nil {
			t.Fatal(err)
		}
	}
	tr := &mockTransport{}
	if err := s.Register("p", tr, PeerOptions{Policy: Disconnect}); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, tr, 2)
	if err := s.Rewind("p", 3); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()[0]
		if st.Err != nil {
			if !errors.Is(st.Err, ErrOverrun) {
				t.Fatalf("err = %v, want ErrOverrun", st.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale history never surfaced as a pipe error")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRewindDeadPipeReportsError pins the review fix: rewinding a pipe
// whose redial budget is exhausted must surface the terminal error, not
// pretend catch-up is underway.
func TestRewindDeadPipeReportsError(t *testing.T) {
	s := NewService(Options{Window: 4})
	defer s.Close()
	tr := &mockTransport{failNext: 100}
	if err := s.Register("p", tr, PeerOptions{Policy: Disconnect, RedialWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(makeBlock(t, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats()[0].Err == nil {
		if time.Now().After(deadline) {
			t.Fatal("pipe never died")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Rewind("p", 0); err == nil {
		t.Fatal("rewind of a dead pipe reported success")
	}
}

// TestCatchUpFromPrunedArchiveSurfacesErrPruned pins the prune-vs-rewind
// race diagnosis: when a peer rewinds below the archive's prune floor, the
// pipe must die with an error that wraps ledger.ErrPruned — the cluster
// uses errors.Is on PeerStats.Err to tell "range gone for good, restart
// from a checkpoint" apart from a transient source failure.
func TestCatchUpFromPrunedArchiveSurfacesErrPruned(t *testing.T) {
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	orderer, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny segments so blocks 0..7 spread over several sealed segments.
	led, err := ledger.Open(t.TempDir(), ledger.Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	s := NewService(Options{Window: 2, History: LedgerSource(led)})
	defer s.Close()
	var prev []byte
	for i := 0; i < 8; i++ {
		b, err := block.NewBlock(uint64(i), prev, nil, orderer)
		if err != nil {
			t.Fatal(err)
		}
		prev = block.HeaderHash(&b.Header)
		if _, err := led.Commit(b); err != nil {
			t.Fatal(err)
		}
		if err := s.Publish(b); err != nil {
			t.Fatal(err)
		}
	}
	// Prune everything a height-6 checkpoint covers.
	if _, err := led.Prune(6); err != nil {
		t.Fatal(err)
	}
	if led.Base() == 0 {
		t.Fatal("prune removed nothing; segments never sealed")
	}

	tr := &mockTransport{}
	if err := s.Register("p", tr, PeerOptions{Policy: Disconnect}); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, tr, 2)
	if err := s.Rewind("p", 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()[0]
		if st.Err != nil {
			if !errors.Is(st.Err, ErrOverrun) {
				t.Fatalf("err = %v, want ErrOverrun wrap", st.Err)
			}
			if !errors.Is(st.Err, ledger.ErrPruned) {
				t.Fatalf("err = %v does not surface ledger.ErrPruned", st.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rewind below the prune floor never failed the pipe")
		}
		time.Sleep(time.Millisecond)
	}

	// A rewind at or above the floor still streams fine.
	tr2 := &mockTransport{}
	if err := s.Register("p2", tr2, PeerOptions{Policy: Disconnect}); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, tr2, 2)
	if err := s.Rewind("p2", led.Base()); err != nil {
		t.Fatal(err)
	}
	seqs := waitDelivered(t, tr2, 2+int(8-led.Base()))
	if st := s.Stats(); len(st) > 1 {
		for _, p := range st {
			if p.Name == "p2" && p.Err != nil {
				t.Fatalf("rewind at the floor failed: %v (delivered %v)", p.Err, seqs)
			}
		}
	}
}

// TestFloorTracksSlowestLivePipe pins Service.Floor, the prune guard: with
// no peers it is the window base; a live pipe mid-catch-up drags it down to
// its cursor; a dead pipe stops counting.
func TestFloorTracksSlowestLivePipe(t *testing.T) {
	led, blocks := makeChain(t, 10)
	s := NewService(Options{Window: 4, History: LedgerSource(led)})
	defer s.Close()
	for _, b := range blocks {
		if err := s.Publish(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Floor(); got != 6 {
		t.Fatalf("Floor with no peers = %d, want window base 6", got)
	}
	// A transport that blocks after the first send holds the cursor low.
	tr := &mockTransport{delay: 50 * time.Millisecond}
	if err := s.Register("p", tr, PeerOptions{Policy: Disconnect}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rewind("p", 0); err != nil {
		t.Fatal(err)
	}
	sawLow := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f := s.Floor(); f < 6 {
			sawLow = true
		}
		if len(tr.delivered()) >= 10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawLow {
		t.Error("Floor never dropped below the window base during catch-up")
	}
	waitDelivered(t, tr, 10)
	if got := s.Floor(); got < 6 {
		t.Errorf("Floor = %d after catch-up, want window base", got)
	}
}
