package delivery

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRedialBackoffPacesAgainstDeadLink is the regression for the redial
// hot-spin: a pipe configured to survive a long partition (large redial
// budget) must pace its reconnect attempts out exponentially up to the
// RedialMaxWait cap instead of hammering the dead link at RedialWait
// intervals. With RedialWait=1ms, RedialMaxWait=8ms and 8 attempts the
// waits are 1+2+4+8+8+8+8+8 = 47ms; the hot-spin paced linearly at 8ms.
func TestRedialBackoffPacesAgainstDeadLink(t *testing.T) {
	s := NewService(Options{Window: 4})
	defer s.Close()
	var dials atomic.Int64
	opts := PeerOptions{
		MaxRedials:    8,
		RedialWait:    time.Millisecond,
		RedialMaxWait: 8 * time.Millisecond,
		Dial: func() (Transport, error) {
			dials.Add(1)
			return nil, errors.New("link down")
		},
	}
	if err := s.Register("victim", &mockTransport{failNext: 1 << 30}, opts); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	publishN(t, s, 1)
	deadline := time.Now().Add(10 * time.Second)
	var st PeerStats
	for {
		for _, cand := range s.Stats() {
			if cand.Name == "victim" {
				st = cand
			}
		}
		if st.Err != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	if st.Err == nil {
		t.Fatal("pipe never exhausted its redial budget")
	}
	if got := dials.Load(); got != 8 {
		t.Fatalf("dialer called %d times, want exactly MaxRedials=8", got)
	}
	// Generous lower bound (scheduler jitter only ever adds time): the
	// exponential schedule sums to 47ms, the linear hot-spin to 8ms.
	if elapsed < 30*time.Millisecond {
		t.Fatalf("redial budget exhausted in %v: attempts are not backing off", elapsed)
	}
}

// TestRedialBackoffCapDefaults pins the option defaulting: an unset cap
// becomes 200ms, and a cap below RedialWait is floored at RedialWait so
// the doubling logic never shrinks the wait.
func TestRedialBackoffCapDefaults(t *testing.T) {
	s := NewService(Options{Window: 4})
	defer s.Close()
	if err := s.Register("a", &mockTransport{}, PeerOptions{RedialWait: 500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	opts := s.peers["a"].opts
	s.mu.Unlock()
	if opts.RedialMaxWait != 500*time.Millisecond {
		t.Errorf("cap %v, want floored at RedialWait 500ms", opts.RedialMaxWait)
	}
	if err := s.Register("b", &mockTransport{}, PeerOptions{}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	opts = s.peers["b"].opts
	s.mu.Unlock()
	if opts.RedialMaxWait != 200*time.Millisecond {
		t.Errorf("default cap %v, want 200ms", opts.RedialMaxWait)
	}
}

// TestRewindDuringInFlightSend is the cursor-race regression: a Rewind
// landing while the writer goroutine has a send in flight must not be
// clobbered when that send completes and advances the cursor. The pipe
// redelivers from the rewound position.
func TestRewindDuringInFlightSend(t *testing.T) {
	s := NewService(Options{Window: 16})
	defer s.Close()
	tr := &mockTransport{delay: 20 * time.Millisecond}
	if err := s.Register("p", tr, PeerOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 4)
	// Let the first send get in flight, then rewind under it.
	time.Sleep(5 * time.Millisecond)
	if err := s.Rewind("p", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	seqs := tr.delivered()
	if len(seqs) < 4 {
		t.Fatalf("delivered %d blocks, want >= 4 (redelivery after rewind)", len(seqs))
	}
	// Whatever was re-sent, the tail must walk 0..3 without a gap.
	last := seqs[len(seqs)-1]
	if last != 3 {
		t.Fatalf("final seq %d, want 3", last)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] > seqs[i-1]+1 {
			t.Fatalf("gap in delivery after rewind: %v", seqs)
		}
	}
}
