// Package gossip implements the baseline block dissemination path: the
// whole marshaled block sent as one length-prefixed message over a TCP
// stream, standing in for Fabric's Gossip protocol (marshaled protobuf over
// gRPC/HTTP2/TCP, paper Figure 2b).
//
// Unlike the BMac protocol, the receiver must buffer and reassemble the
// entire block before any processing can start, and blocks carry their full
// identity certificates — the two properties the paper's protocol removes.
package gossip

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"bmac/internal/block"
)

// MaxBlockSize bounds a single gossip message (Fabric blocks can reach
// 100 MB; we allow 128 MB).
const MaxBlockSize = 128 << 20

// ErrTooLarge reports a block exceeding MaxBlockSize.
var ErrTooLarge = errors.New("gossip: block exceeds maximum size")

// WriteBlock frames and writes a marshaled block to w.
func WriteBlock(w io.Writer, b *block.Block) (int, error) {
	data := block.Marshal(b)
	return WriteRaw(w, data)
}

// WriteRaw frames and writes pre-marshaled block bytes.
func WriteRaw(w io.Writer, data []byte) (int, error) {
	if len(data) > MaxBlockSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return 0, fmt.Errorf("gossip write length: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return 0, fmt.Errorf("gossip write block: %w", err)
	}
	return 4 + len(data), nil
}

// ReadBlock reads one framed block from r. The entire message must be
// received and buffered before Unmarshal can begin — the TCP reassembly
// cost inherent to the Gossip path.
func ReadBlock(r io.Reader) (*block.Block, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, 0, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxBlockSize {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, 0, fmt.Errorf("gossip read block: %w", err)
	}
	b, err := block.Unmarshal(data)
	if err != nil {
		return nil, 0, err
	}
	return b, 4 + int(n), nil
}

// Broadcaster fans blocks out to every connected peer, as the orderer (or
// org lead peer) does with Gossip.
type Broadcaster struct {
	mu    sync.Mutex
	conns []net.Conn // guarded by mu
	sent  int64      // guarded by mu; cumulative bytes
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{}
}

// AddPeer dials addr and adds the connection to the broadcast set.
func (g *Broadcaster) AddPeer(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("gossip dial %q: %w", addr, err)
	}
	g.mu.Lock()
	g.conns = append(g.conns, conn)
	g.mu.Unlock()
	return nil
}

// Broadcast sends the block to every peer. The block is marshaled once.
// Every peer is attempted even when earlier ones fail; per-peer errors are
// joined, and the sent counter only advances for fully written frames.
//
// Note that the whole fan-out still shares one mutex, so one slow peer
// delays the rest; the orderer's delivery path uses internal/delivery's
// per-peer pipelines instead. Broadcaster remains as the simple lock-step
// baseline.
func (g *Broadcaster) Broadcast(b *block.Block) error {
	data := block.Marshal(b)
	g.mu.Lock()
	defer g.mu.Unlock()
	var errs []error
	for _, c := range g.conns {
		n, err := WriteRaw(c, data)
		g.sent += int64(n) // 0 on a failed write
		if err != nil {
			errs = append(errs, fmt.Errorf("broadcast to %s: %w", c.RemoteAddr(), err))
		}
	}
	return errors.Join(errs...)
}

// BytesSent reports cumulative bytes broadcast.
func (g *Broadcaster) BytesSent() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sent
}

// Close closes all peer connections.
func (g *Broadcaster) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var firstErr error
	for _, c := range g.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	g.conns = nil
	return firstErr
}

// Listener accepts gossip connections and delivers received blocks on a
// channel; this is the software peer's block intake.
type Listener struct {
	ln     net.Listener
	blocks chan *block.Block

	mu         sync.Mutex
	received   int64                 // guarded by mu
	decodeErrs int64                 // guarded by mu
	conns      map[net.Conn]struct{} // guarded by mu; live accepted connections

	wg        sync.WaitGroup
	stop      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Listen binds addr ("127.0.0.1:0" for ephemeral) and starts accepting.
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gossip listen %q: %w", addr, err)
	}
	l := &Listener{
		ln:     ln,
		blocks: make(chan *block.Block, 16),
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Blocks returns the received-block channel; closed on Close.
func (l *Listener) Blocks() <-chan *block.Block { return l.blocks }

// BytesReceived reports cumulative bytes received.
func (l *Listener) BytesReceived() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.received
}

// DecodeErrors reports connections torn down by a corrupt, truncated or
// oversized stream (clean EOFs and listener shutdown are not counted).
func (l *Listener) DecodeErrors() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decodeErrs
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go l.serve(conn)
	}
}

// addConn registers a live connection so Close can tear it down; it
// reports false when the listener is already stopping.
func (l *Listener) addConn(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stopping() {
		return false
	}
	l.conns[c] = struct{}{}
	return true
}

func (l *Listener) removeConn(c net.Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

func (l *Listener) serve(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	if !l.addConn(conn) {
		return
	}
	defer l.removeConn(conn)
	r := bufio.NewReaderSize(conn, 1<<20)
	for {
		b, n, err := ReadBlock(r)
		if err != nil {
			// A clean EOF is a peer hanging up between frames; anything
			// else mid-stream is a decode failure worth surfacing —
			// unless this listener is shutting down and tearing
			// connections out from under its readers.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !l.stopping() {
				l.mu.Lock()
				l.decodeErrs++
				l.mu.Unlock()
			}
			return
		}
		l.mu.Lock()
		l.received += int64(n)
		l.mu.Unlock()
		select {
		case l.blocks <- b:
		case <-l.stop:
			return
		}
	}
}

func (l *Listener) stopping() bool {
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}

// Close stops accepting, closes connections and the block channel. Live
// connections are torn down too: a reader blocked on an idle-but-open
// socket must not park Close forever (the churn kill path closes a
// listener while its delivery connection sits idle). Safe to call more
// than once (error-path cleanup may close a peer's listener twice);
// later calls return the first call's result.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.stop)
		l.closeErr = l.ln.Close()
		l.mu.Lock()
		for c := range l.conns {
			c.Close()
		}
		l.mu.Unlock()
		l.wg.Wait()
		close(l.blocks)
	})
	return l.closeErr
}
