package gossip

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
)

func makeBlock(t testing.TB, num uint64, txs int) *block.Block {
	t.Helper()
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	orderer, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	envs := make([]block.Envelope, 0, txs)
	for i := 0; i < txs; i++ {
		env, err := block.NewEndorsedEnvelope(block.TxSpec{
			Creator: client, Chaincode: "cc", Channel: "ch",
		})
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	b, err := block.NewBlock(num, nil, envs, orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := makeBlock(t, 3, 2)
	var buf bytes.Buffer
	wn, err := WriteBlock(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	got, rn, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wn != rn {
		t.Errorf("wrote %d, read %d", wn, rn)
	}
	if got.Header.Number != 3 || len(got.Envelopes) != 2 {
		t.Errorf("block = %d/%d envs", got.Header.Number, len(got.Envelopes))
	}
}

func TestWriteRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRaw(&buf, make([]byte, MaxBlockSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB claim
	if _, _, err := ReadBlock(&buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestBroadcastToMultiplePeers(t *testing.T) {
	l1, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	g := NewBroadcaster()
	defer g.Close()
	if err := g.AddPeer(l1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeer(l2.Addr()); err != nil {
		t.Fatal(err)
	}

	b := makeBlock(t, 0, 3)
	if err := g.Broadcast(b); err != nil {
		t.Fatal(err)
	}

	for i, l := range []*Listener{l1, l2} {
		got := <-l.Blocks()
		if got.Header.Number != 0 || len(got.Envelopes) != 3 {
			t.Errorf("peer %d: block %d/%d envs", i, got.Header.Number, len(got.Envelopes))
		}
	}
	if g.BytesSent() == 0 || l1.BytesReceived() == 0 {
		t.Error("byte counters not updated")
	}
	if g.BytesSent() != l1.BytesReceived()+l2.BytesReceived() {
		t.Errorf("sent %d != received %d+%d", g.BytesSent(), l1.BytesReceived(), l2.BytesReceived())
	}
}

func TestSequentialBlocks(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewBroadcaster()
	defer g.Close()
	if err := g.AddPeer(l.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if err := g.Broadcast(makeBlock(t, i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		got := <-l.Blocks()
		if got.Header.Number != i {
			t.Errorf("block %d arrived out of order as %d", i, got.Header.Number)
		}
	}
}

// TestBroadcastContinuesPastFailedPeer is the regression for the
// first-error abort: a dead peer early in the set must not leave later
// peers unsent, the per-peer error must be reported, and the sent counter
// must only count fully delivered frames.
func TestBroadcastContinuesPastFailedPeer(t *testing.T) {
	lBad, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lBad.Close()
	lGood, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lGood.Close()

	g := NewBroadcaster()
	defer g.Close()
	if err := g.AddPeer(lBad.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeer(lGood.Addr()); err != nil {
		t.Fatal(err)
	}
	// Kill the first peer's connection from the client side so its write
	// fails deterministically.
	g.conns[0].Close()

	b := makeBlock(t, 7, 2)
	err = g.Broadcast(b)
	if err == nil {
		t.Fatal("broadcast reported no error despite a dead peer")
	}

	got := <-lGood.Blocks()
	if got.Header.Number != 7 || len(got.Envelopes) != 2 {
		t.Errorf("healthy peer got block %d/%d envs", got.Header.Number, len(got.Envelopes))
	}
	if g.BytesSent() != lGood.BytesReceived() {
		t.Errorf("sent counter %d != healthy peer's %d (failed frames must not count)",
			g.BytesSent(), lGood.BytesReceived())
	}
}

// TestListenerCountsDecodeErrors feeds garbage and oversized frames and
// checks they are counted instead of silently swallowed.
func TestListenerCountsDecodeErrors(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	send := func(frame []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	// A well-formed length prefix followed by bytes that do not decode as
	// a block.
	garbage := append([]byte{0, 0, 0, 8}, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef)
	send(garbage)
	// A frame claiming 4 GiB.
	send([]byte{0xff, 0xff, 0xff, 0xff})

	deadline := time.Now().Add(5 * time.Second)
	for l.DecodeErrors() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("decode errors = %d, want 2", l.DecodeErrors())
		}
		time.Sleep(time.Millisecond)
	}

	// A clean connect/disconnect must not count.
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(20 * time.Millisecond)
	if n := l.DecodeErrors(); n != 2 {
		t.Errorf("decode errors = %d after clean disconnect, want 2", n)
	}
}

func BenchmarkGossipRoundTrip(b *testing.B) {
	blk := makeBlock(b, 0, 100)
	data := block.Marshal(blk)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteRaw(&buf, data); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadBlock(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestListenerDoubleClose pins the review fix: error-path cleanup may
// close a peer's listener twice; the second call must be a no-op, not a
// close-of-closed-channel panic.
func TestListenerDoubleClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
