package experiments

import (
	"fmt"
	"sort"
	"time"

	"bmac/internal/metrics"
)

// estimateLedgerCommit models the CPU-side ledger append cost for a block
// of the given marshaled size: buffered sequential file writes sustain
// roughly 1 GB/s, plus a fixed index-update cost.
func estimateLedgerCommit(blockBytes int) time.Duration {
	return 200*time.Microsecond + time.Duration(blockBytes)*time.Nanosecond
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Runner maps experiment ids (fig3, fig9a, ..., table1, headline,
// ablations) to their implementations.
type Runner struct {
	env  *Env
	opts Options
}

// NewRunner creates a runner with a fresh fixture.
func NewRunner(opts Options) (*Runner, error) {
	env, err := NewEnv()
	if err != nil {
		return nil, err
	}
	return &Runner{env: env, opts: opts}, nil
}

// Names returns the available experiment ids in presentation order.
func Names() []string {
	return []string{
		"fig3", "fig9a", "fig9b", "fig10", "fig11",
		"fig12a", "fig12b", "fig12c", "fig13", "table1",
		"headline", "ablations", "pipeline", "hybrid", "cluster", "churn",
		"hotpath", "adversarial", "fastsync",
	}
}

// Titles maps experiment ids to display titles.
var Titles = map[string]string{
	"fig3":        "Figure 3: validator peer bottlenecks (software profile)",
	"fig9a":       "Figure 9a: protocol bandwidth savings",
	"fig9b":       "Figure 9b: block transmission time CDF (1 Gbps link model)",
	"fig10":       "Figure 10: block validation breakdown, sw_validator vs BMac",
	"fig11":       "Figure 11: smallbank throughput sweep",
	"fig12a":      "Figure 12a: endorsement policies",
	"fig12b":      "Figure 12b: 8x2 vs 5x3 architectures",
	"fig12c":      "Figure 12c: database requests (split payment)",
	"fig13":       "Figure 13: drm benchmark",
	"table1":      "Table 1: FPGA resource utilization (model)",
	"headline":    "Headline: peak throughput and speedup",
	"ablations":   "Ablations: design-choice benches",
	"pipeline":    "Pipeline: parallel commit engine speedup vs block size and conflict rate",
	"hybrid":      "Hybrid: §5 hardware/host database — hit rate and prefetch latency hiding vs capacity and Zipf skew",
	"cluster":     "Cluster: open-loop load through the non-blocking delivery service — throughput, tail latency and slow-peer isolation per validation path",
	"churn":       "Churn: kill a peer mid-run, restart from checkpoint + ledger replay, catch up through the orderer ledger — convergence per validation path",
	"hotpath":     "Hotpath: commit hot-path micro/macro benchmarks — verify cache, batch ECDSA, parse-once, pooled marshal — each vs its off baseline (ns/op, allocs/op, hit rates)",
	"adversarial": "Adversarial: hostile-load and chaos gates — 50% invalid-tx flood must keep valid-tx TPS >= 70% of baseline, and every fault (partition, corruption, slowdisk, leaderkill) must end bit-identical",
	"fastsync":    "Fastsync: snapshot fast-sync vs full replay across ledger lengths — recovery must replay the fixed tail (not the chain), reopen from the persisted index, and land bit-identical",
}

// Run executes one experiment by id.
func (r *Runner) Run(name string) (*metrics.Table, error) {
	switch name {
	case "fig3":
		return Figure3(r.env, r.opts)
	case "fig9a":
		return Figure9a(r.env, r.opts)
	case "fig9b":
		return Figure9b(r.env, r.opts)
	case "fig10":
		return Figure10(r.env, r.opts)
	case "fig11":
		return Figure11(r.env, r.opts)
	case "fig12a":
		return Figure12a(r.env, r.opts)
	case "fig12b":
		return Figure12b(r.opts)
	case "fig12c":
		return Figure12c(r.env, r.opts)
	case "fig13":
		return Figure13(r.env, r.opts)
	case "table1":
		return Table1(), nil
	case "headline":
		return Headline(r.env, r.opts)
	case "ablations":
		return Ablations(r.env, r.opts)
	case "pipeline":
		return FigPipeline(r.env, r.opts)
	case "hybrid":
		return FigHybrid(r.env, r.opts)
	case "cluster":
		return FigCluster(r.opts)
	case "churn":
		return FigChurn(r.opts)
	case "hotpath":
		return FigHotpath(r.env, r.opts)
	case "adversarial":
		return FigAdversarial(r.opts)
	case "fastsync":
		return FigFastSync(r.opts)
	default:
		valid := Names()
		sort.Strings(valid)
		return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %v)", name, valid)
	}
}
