package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/metrics"
	"bmac/internal/pipeline"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// The hybrid experiment measures the paper's §5 database-scaling proposal
// in software: a small in-hardware LRU (HybridKVS) in front of a host
// store with a modeled PCIe/host read latency, driven by a smallbank-shaped
// workload whose account reads follow a Zipf power law. It sweeps cache
// capacity x skew and reports, for each point, the cache hit rate and the
// committed throughput with the pipelined engine's read-set prefetch off
// and on — quantifying how much of the throughput lost to host-read
// latency the prefetch stage recovers by hiding misses under vscc
// (the software analogue of Figure 12c's latency hiding).

// HybridSpec describes one hybrid-database measurement point.
type HybridSpec struct {
	Blocks          int
	Txs             int
	Endorsements    int
	Accounts        int     // host-resident account keys
	ReadsPerTx      int     // Zipf-drawn account reads per transaction
	Skew            float64 // power-law exponent (0 = uniform)
	Capacity        int     // in-hardware cache entries
	HostLatency     time.Duration
	Workers         int
	PrefetchWorkers int
	Seed            int64
}

// HybridPoint is one measured data point of the hybrid experiment.
type HybridPoint struct {
	MemoryTPS     float64 // plain in-memory store (no host latency): upper bound
	NoPrefetchTPS float64 // hybrid backend, prefetch off: latency fully exposed
	PrefetchTPS   float64 // hybrid backend, prefetch on: latency hidden under vscc
	HitRate       float64 // cache hit rate of the prefetch run
	Prefetched    int     // warm-up reads issued by the prefetch run
	// SigCacheHitRate and ParseCacheHitRate report the shared hot-path
	// caches over the three MEASURED runs only (stat deltas taken after
	// the warm pass that primes them), so they show the steady-state
	// rates the backend comparison actually ran at.
	SigCacheHitRate   float64
	ParseCacheHitRate float64
}

// Recovered reports the fraction of the throughput lost to host-read
// latency that the prefetch stage won back:
// (prefetch - noPrefetch) / (memory - noPrefetch), clamped to [0, 1].
func (p HybridPoint) Recovered() float64 {
	lost := p.MemoryTPS - p.NoPrefetchTPS
	if lost <= 0 {
		return 1 // nothing was lost to latency
	}
	r := (p.PrefetchTPS - p.NoPrefetchTPS) / lost
	return math.Min(math.Max(r, 0), 1)
}

// zipfPicker draws account ranks from a power law P(rank) ~ rank^-s. It
// supports any s >= 0 (math/rand's Zipf requires s > 1, but the paper-style
// skews of interest start below that).
type zipfPicker struct {
	cdf []float64
}

func newZipfPicker(n int, s float64) *zipfPicker {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfPicker{cdf: cdf}
}

func (z *zipfPicker) pick(rng *rand.Rand) int {
	return sort.SearchFloat64s(z.cdf, rng.Float64())
}

// makeHybridChain builds the workload: every transaction reads ReadsPerTx
// Zipf-drawn account keys (endorsed at the genesis version, and never
// written, so the chain is conflict-free) and writes one unique output key.
func (e *Env) makeHybridChain(spec HybridSpec) ([][]byte, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := newZipfPicker(spec.Accounts, spec.Skew)
	endorsers := e.Peers[:spec.Endorsements]
	out := 0
	raws := make([][]byte, 0, spec.Blocks)
	for n := 0; n < spec.Blocks; n++ {
		envs := make([]block.Envelope, 0, spec.Txs)
		for i := 0; i < spec.Txs; i++ {
			var rw block.RWSet
			for r := 0; r < spec.ReadsPerTx; r++ {
				rw.Reads = append(rw.Reads, block.KVRead{
					Key: "acct" + strconv.Itoa(zipf.pick(rng)),
				})
			}
			out++
			rw.Writes = append(rw.Writes, block.KVWrite{
				Key: "txout" + strconv.Itoa(out), Value: []byte("0123456789abcdef"),
			})
			env, err := block.NewEndorsedEnvelope(block.TxSpec{
				Creator:   e.Client,
				Chaincode: "smallbank",
				Channel:   "ch1",
				RWSet:     rw,
				Endorsers: endorsers,
			})
			if err != nil {
				return nil, err
			}
			envs = append(envs, *env)
		}
		b, err := block.NewBlock(uint64(n), nil, envs, e.Orderer)
		if err != nil {
			return nil, err
		}
		raws = append(raws, block.Marshal(b))
	}
	return raws, nil
}

// seedAccounts loads the genesis account state into a store.
func seedAccounts(kvs statedb.KVS, accounts int) {
	for i := 0; i < accounts; i++ {
		kvs.Put("acct"+strconv.Itoa(i), []byte("1000"), block.Version{})
	}
}

// MeasureHybrid runs one measurement point: the same chain through the
// pipelined engine over (1) a plain in-memory store, (2) a hybrid backend
// with the modeled host latency and prefetch off, (3) the same with
// prefetch on. The three runs are cross-checked (flags and commit hashes
// must be bit-identical) while being timed.
func (e *Env) MeasureHybrid(spec HybridSpec) (HybridPoint, error) {
	raws, err := e.makeHybridChain(spec)
	if err != nil {
		return HybridPoint{}, err
	}
	pol, err := policy.Parse("2of2")
	if err != nil {
		return HybridPoint{}, err
	}
	pols := map[string]*policy.Policy{"smallbank": pol}
	totalTxs := spec.Blocks * spec.Txs

	// Shared hot-path caches: every run sees the same chain, so after the
	// warm pass each backend comparison runs at cache steady state instead
	// of folding cold crypto/parse cost into whichever run goes first.
	sc := fabcrypto.NewSigCache(1 << 15)
	pc := validator.NewParseCache(1 << 13)

	var refFlags [][]byte
	var refHashes [][]byte
	run := func(kvs statedb.KVS, prefetch bool) (float64, *pipeline.Engine, error) {
		eng := pipeline.New(pipeline.Config{
			Workers: spec.Workers, Policies: pols, SkipLedger: true,
			Prefetch: prefetch, PrefetchWorkers: spec.PrefetchWorkers,
			SigCache: sc, ParseCache: pc,
		}, kvs, nil)
		start := time.Now()
		go func() {
			for _, raw := range raws {
				eng.Submit(raw)
			}
		}()
		collectRef := refFlags == nil // first run records the reference verdicts
		var runErr error
		// Drain every outcome even after a failure, or the submitter and
		// stage goroutines would block on their channels.
		for n := range raws {
			o := <-eng.Results()
			switch {
			case runErr != nil:
			case o.Err != nil:
				runErr = o.Err
			case block.CountValid(o.Res.Flags) != spec.Txs:
				runErr = fmt.Errorf("hybrid experiment: block %d: %d/%d txs valid",
					n, block.CountValid(o.Res.Flags), spec.Txs)
			case !collectRef && (!block.FlagsEqual(o.Res.Flags, refFlags[n]) ||
				string(o.Res.CommitHash) != string(refHashes[n])):
				runErr = fmt.Errorf("hybrid experiment: block %d diverged across backends", n)
			}
			if runErr == nil && collectRef {
				refFlags = append(refFlags, o.Res.Flags)
				refHashes = append(refHashes, o.Res.CommitHash)
			}
		}
		elapsed := time.Since(start)
		if runErr != nil {
			eng.Close()
			return 0, nil, runErr
		}
		return float64(totalTxs) / elapsed.Seconds(), eng, nil
	}

	// 0. Warm pass (unmeasured): fills the shared caches and records the
	// reference verdicts the measured runs are cross-checked against.
	warm := statedb.NewStore()
	seedAccounts(warm, spec.Accounts)
	_, wEng, err := run(warm, false)
	if err != nil {
		return HybridPoint{}, err
	}
	wEng.Close()
	sigH0, sigM0, _ := sc.Stats()
	parH0, parM0 := pc.Stats()

	// 1. Plain in-memory store: the no-latency upper bound.
	mem := statedb.NewStore()
	seedAccounts(mem, spec.Accounts)
	memTPS, eng, err := run(mem, false)
	if err != nil {
		return HybridPoint{}, err
	}
	eng.Close()

	// 2. Hybrid backend, prefetch off: every cold miss stalls mvcc.
	hostA := statedb.NewStore()
	seedAccounts(hostA, spec.Accounts)
	hyA := statedb.NewHybridKVS(spec.Capacity, hostA)
	hyA.SetHostReadLatency(spec.HostLatency)
	noTPS, eng, err := run(hyA, false)
	if err != nil {
		return HybridPoint{}, err
	}
	eng.Close()

	// 3. Hybrid backend, prefetch on: misses absorbed while vscc runs.
	hostB := statedb.NewStore()
	seedAccounts(hostB, spec.Accounts)
	hyB := statedb.NewHybridKVS(spec.Capacity, hostB)
	hyB.SetHostReadLatency(spec.HostLatency)
	pfTPS, eng, err := run(hyB, true)
	if err != nil {
		return HybridPoint{}, err
	}
	prefetched := eng.PrefetchedKeys()
	eng.Close()

	sigH1, sigM1, _ := sc.Stats()
	parH1, parM1 := pc.Stats()
	return HybridPoint{
		MemoryTPS:         memTPS,
		NoPrefetchTPS:     noTPS,
		PrefetchTPS:       pfTPS,
		HitRate:           hyB.HitRate(),
		Prefetched:        prefetched,
		SigCacheHitRate:   deltaRate(sigH1-sigH0, sigM1-sigM0),
		ParseCacheHitRate: deltaRate(parH1-parH0, parM1-parM0),
	}, nil
}

// deltaRate is hits/(hits+misses) over a counter delta, 0 when idle.
func deltaRate(hits, misses int64) float64 {
	if hits+misses <= 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// FigHybrid is the hybrid-database experiment: cache capacity x Zipf skew,
// reporting hit rate and throughput with the read-set prefetch off and on.
func FigHybrid(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	spec := HybridSpec{
		Blocks: 8, Txs: 64, Endorsements: 2,
		Accounts: 1024, ReadsPerTx: 3,
		HostLatency:     400 * time.Microsecond,
		Workers:         4,
		PrefetchWorkers: 16,
	}
	capacities := []int{64, 512}
	skews := []float64{0, 0.9, 1.2}
	if o.Quick {
		spec.Blocks, spec.Txs = 3, 32
		spec.Accounts = 256
		spec.HostLatency = 150 * time.Microsecond
		capacities = []int{96}
		skews = []float64{0, 1.2}
	}
	t := &metrics.Table{Header: []string{
		"capacity", "skew", "hit%", "prefetched",
		"| memory tps", "no-prefetch tps", "prefetch tps", "recovered",
		"sig$%", "parse$%",
	}}
	for _, c := range capacities {
		for _, s := range skews {
			spec.Capacity = c
			spec.Skew = s
			spec.Seed = int64(c)*1000 + int64(s*100)
			pt, err := e.MeasureHybrid(spec)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				strconv.Itoa(c),
				fmt.Sprintf("%.1f", s),
				fmt.Sprintf("%.0f%%", pt.HitRate*100),
				strconv.Itoa(pt.Prefetched),
				metrics.FormatTPS(pt.MemoryTPS),
				metrics.FormatTPS(pt.NoPrefetchTPS),
				metrics.FormatTPS(pt.PrefetchTPS),
				fmt.Sprintf("%.0f%%", pt.Recovered()*100),
				fmt.Sprintf("%.0f%%", pt.SigCacheHitRate*100),
				fmt.Sprintf("%.0f%%", pt.ParseCacheHitRate*100),
			)
		}
	}
	return t, nil
}
