package experiments

import (
	"fmt"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/hwsim"
	"bmac/internal/identity"
	"bmac/internal/metrics"
	"bmac/internal/policy"
)

// Options tune experiment cost; the defaults keep a full run under a
// couple of minutes on a laptop while preserving the shapes.
type Options struct {
	// Rounds is the number of measured validations per data point.
	Rounds int
	// Quick shrinks sweeps (used by unit tests).
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	return o
}

func pct(part, whole time.Duration) string {
	if whole == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// Figure3 reproduces the bottleneck analysis: the operation-level profile
// (3a: ecdsa_verify dominates at ~40%, sha256 and unmarshal ~10% each) and
// the coarse stage breakdown (3b: verify_vscc critical) across block sizes
// and vCPU counts.
func Figure3(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	blockSizes := []int{50, 100, 200}
	vcpus := []int{4, 8, 16}
	if o.Quick {
		blockSizes = []int{50}
		vcpus = []int{4}
	}
	t := &metrics.Table{Header: []string{
		"block", "vCPUs", "ecdsa%", "sha256%", "unmarshal%", "statedb%",
		"| unmarshal", "verify_vscc", "mvcc+statedb", "total",
	}}
	for _, bs := range blockSizes {
		for _, w := range vcpus {
			bd, err := e.MeasureSW(BlockSpec{Txs: bs, Endorsements: 2, Reads: 2, Writes: 2},
				"2of2", w, o.Rounds)
			if err != nil {
				return nil, err
			}
			// CPU-seconds denominators: op times are summed across workers,
			// so compare against summed busy time, like pprof does.
			busy := bd.ECDSATime + bd.SHA256Time + bd.Unmarshal + bd.StateDB
			t.AddRow(
				fmt.Sprintf("%d", bs), fmt.Sprintf("%d", w),
				pct(bd.ECDSATime, busy), pct(bd.SHA256Time, busy),
				pct(bd.Unmarshal, busy), pct(bd.StateDB, busy),
				"| "+ms(bd.Unmarshal), ms(bd.VerifyVSCC), ms(bd.StateDB), ms(bd.Total),
			)
		}
	}
	return t, nil
}

// Figure9a reproduces the protocol bandwidth experiment: Gossip block size
// vs BMac protocol bytes across endorsement counts, the identity fraction,
// and the protocol processor's modeled rate.
func Figure9a(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	txs := 150
	if o.Quick {
		txs = 30
	}
	t := &metrics.Table{Header: []string{
		"ends", "gossip KB", "bmac KB", "ratio", "identity%", "saved%", "proc tps (11Gbps)",
	}}
	for _, ends := range []int{1, 2, 3, 4} {
		b, err := e.MakeBlock(BlockSpec{Txs: txs, Endorsements: ends, Reads: 2, Writes: 2})
		if err != nil {
			return nil, err
		}
		gossipBytes := len(block.Marshal(b))
		sender := bmacproto.NewSender(identity.NewCache(), nil)
		if err := sender.RegisterNetwork(e.Net); err != nil {
			return nil, err
		}
		_, stats, err := sender.EncodeBlock(b)
		if err != nil {
			return nil, err
		}
		idFrac := float64(stats.Removed) / float64(gossipBytes)
		txPacket := stats.Bytes / (txs + 2)
		t.AddRow(
			fmt.Sprintf("%d", ends),
			fmt.Sprintf("%.1f", float64(gossipBytes)/1024),
			fmt.Sprintf("%.1f", float64(stats.Bytes)/1024),
			fmt.Sprintf("%.2fx", float64(gossipBytes)/float64(stats.Bytes)),
			fmt.Sprintf("%.0f%%", idFrac*100),
			fmt.Sprintf("%.0f%%", 100*(1-float64(stats.Bytes)/float64(gossipBytes))),
			metrics.FormatTPS(hwsim.ProtocolProcessorThroughput(txPacket)),
		)
	}
	return t, nil
}

// Figure9b reproduces the end-to-end block transmission time CDF over the
// modeled 1 Gbps link: p50/p95 for Gossip vs the BMac protocol.
func Figure9b(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	blocks := 500
	if o.Quick {
		blocks = 50
	}
	b, err := e.MakeBlock(BlockSpec{Txs: 150, Endorsements: 2, Reads: 2, Writes: 2})
	if err != nil {
		return nil, err
	}
	gossipBytes := len(block.Marshal(b))
	sender := bmacproto.NewSender(identity.NewCache(), nil)
	if err := sender.RegisterNetwork(e.Net); err != nil {
		return nil, err
	}
	_, stats, err := sender.EncodeBlock(b)
	if err != nil {
		return nil, err
	}

	link := hwsim.NewLink(20220106)
	var gs, bs metrics.Samples
	for i := 0; i < blocks; i++ {
		gs.Add(link.GossipTime(gossipBytes))
		bs.Add(link.BMacTime(stats.Bytes, stats.Packets))
	}
	t := &metrics.Table{Header: []string{"protocol", "p50", "p95", "p99", "mean"}}
	t.AddRow("gossip", ms(gs.Percentile(50)), ms(gs.Percentile(95)), ms(gs.Percentile(99)), ms(gs.Mean()))
	t.AddRow("bmac", ms(bs.Percentile(50)), ms(bs.Percentile(95)), ms(bs.Percentile(99)), ms(bs.Mean()))
	t.AddRow("reduction",
		pctf(1-float64(bs.Percentile(50))/float64(gs.Percentile(50))),
		pctf(1-float64(bs.Percentile(95))/float64(gs.Percentile(95))),
		pctf(1-float64(bs.Percentile(99))/float64(gs.Percentile(99))),
		pctf(1-float64(bs.Mean())/float64(gs.Mean())))
	return t, nil
}

func pctf(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// bmacTiming runs the timing simulator for a uniform workload. A malformed
// policy string is reported as an error, never a panic (a bad experiment
// parameter must not crash the process).
func bmacTiming(arch hwsim.Config, pol string, spec BlockSpec) (hwsim.BlockTiming, error) {
	p, err := policy.Parse(pol)
	if err != nil {
		return hwsim.BlockTiming{}, fmt.Errorf("experiments: policy %q: %w", pol, err)
	}
	circuit := policy.Compile(p)
	txs := hwsim.UniformTxProfile(spec.Txs, spec.Endorsements, spec.Reads, spec.Writes)
	return hwsim.Simulate(arch, circuit, txs), nil
}

// Figure10 reproduces the validation-latency breakdown of sw_validator vs
// BMac peer (block 200, 8 vCPUs/tx_validators): the protocol processor
// replaces unmarshal (paper: ~40x better, < 0.2 ms), the block processor
// replaces verify_vscc + statedb (paper: ~3.7x), overall ~4.4x.
func Figure10(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	spec := BlockSpec{Txs: 200, Endorsements: 2, Reads: 2, Writes: 2}
	if o.Quick {
		spec.Txs = 50
	}
	sw, err := e.MeasureSW(spec, "2of2", 8, o.Rounds)
	if err != nil {
		return nil, err
	}
	hw, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, "2of2", spec)
	if err != nil {
		return nil, err
	}

	// Protocol processor time for the block: bytes / 11 Gbps.
	sender := bmacproto.NewSender(identity.NewCache(), nil)
	if err := sender.RegisterNetwork(e.Net); err != nil {
		return nil, err
	}
	b, err := e.MakeBlock(spec)
	if err != nil {
		return nil, err
	}
	_, stats, err := sender.EncodeBlock(b)
	if err != nil {
		return nil, err
	}
	protoTime := time.Duration(float64(stats.Bytes) * 8 / (hwsim.ProtocolProcessorGbps * 1e9) * float64(time.Second))

	swValidate := sw.VerifyVSCC + sw.StateDB
	hwValidate := hw.BlockLatency()
	t := &metrics.Table{Header: []string{"stage", "sw_validator", "bmac", "speedup"}}
	t.AddRow("parse/retrieve block", ms(sw.Unmarshal), ms(protoTime),
		fmt.Sprintf("%.0fx", float64(sw.Unmarshal)/float64(protoTime)))
	t.AddRow("block validation", ms(swValidate), ms(hwValidate),
		fmt.Sprintf("%.1fx", float64(swValidate)/float64(hwValidate)))
	t.AddRow("overall", ms(sw.Unmarshal+swValidate), ms(protoTime+hwValidate),
		fmt.Sprintf("%.1fx", float64(sw.Unmarshal+swValidate)/float64(protoTime+hwValidate)))
	return t, nil
}

// Figure11 reproduces the smallbank throughput sweep: block sizes x
// vCPUs (sw) / tx_validators (BMac), plus the simulator projections beyond
// 16 validators.
func Figure11(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	blockSizes := []int{50, 100, 150, 200, 250}
	parallel := []int{4, 8, 16}
	if o.Quick {
		blockSizes = []int{50, 100}
		parallel = []int{4}
	}
	t := &metrics.Table{Header: []string{"block", "par", "sw tps", "bmac tps", "speedup"}}
	for _, bs := range blockSizes {
		spec := BlockSpec{Txs: bs, Endorsements: 2, Reads: 2, Writes: 2}
		for _, p := range parallel {
			sw, err := e.MeasureSW(spec, "2of2", p, o.Rounds)
			if err != nil {
				return nil, err
			}
			swTPS := metrics.Throughput(bs, sw.Total)
			hw, err := bmacTiming(hwsim.Config{TxValidators: p, VSCCEngines: 2}, "2of2", spec)
			if err != nil {
				return nil, err
			}
			hwTPS := hw.Throughput(bs)
			t.AddRow(fmt.Sprintf("%d", bs), fmt.Sprintf("%d", p),
				metrics.FormatTPS(swTPS), metrics.FormatTPS(hwTPS),
				fmt.Sprintf("%.1fx", hwTPS/swTPS))
		}
	}
	if !o.Quick {
		// Simulator-only projections (§4.3).
		for _, row := range []struct{ bs, par int }{{250, 50}, {500, 80}} {
			spec := BlockSpec{Txs: row.bs, Endorsements: 2, Reads: 2, Writes: 2}
			hw, err := bmacTiming(hwsim.Config{TxValidators: row.par, VSCCEngines: 2}, "2of2", spec)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", row.bs), fmt.Sprintf("%d(sim)", row.par),
				"-", metrics.FormatTPS(hw.Throughput(row.bs)), "-")
		}
	}
	return t, nil
}

// policyCases are the Figure 12a endorsement policies.
var policyCases = []struct {
	Name string
	Pol  string
	Ends int
}{
	{"1of1", "1of1", 1},
	{"2of2", "2of2", 2},
	{"2of3", "2of3", 3},
	{"3of3", "3of3", 3},
	{"2of4", "2of4", 4},
	{"3of4", "3of4", 4},
	{"4of4", "4of4", 4},
	{"complex", "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)", 4},
}

// Figure12a reproduces the endorsement-policy sweep (8 vCPUs /
// tx_validators, block 150): software degrades with endorsement count and
// cannot exploit k-of-n short-circuits; BMac can.
func Figure12a(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	cases := policyCases
	if o.Quick {
		cases = policyCases[:2]
	}
	blockSize := 150
	if o.Quick {
		blockSize = 30
	}
	t := &metrics.Table{Header: []string{"policy", "sw tps", "bmac tps", "bmac ends verified/tx"}}
	for _, pc := range cases {
		spec := BlockSpec{Txs: blockSize, Endorsements: pc.Ends, Reads: 2, Writes: 2}
		sw, err := e.MeasureSW(spec, pc.Pol, 8, o.Rounds)
		if err != nil {
			return nil, err
		}
		hw, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, pc.Pol, spec)
		if err != nil {
			return nil, err
		}
		t.AddRow(pc.Name,
			metrics.FormatTPS(metrics.Throughput(blockSize, sw.Total)),
			metrics.FormatTPS(hw.Throughput(blockSize)),
			fmt.Sprintf("%.1f", float64(hw.EndsVerified)/float64(blockSize)))
	}
	return t, nil
}

// Figure12b reproduces the architecture comparison: 8x2 vs 5x3 across the
// same policies (simulator only, as the knob is hardware configuration).
func Figure12b(opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	cases := policyCases
	if o.Quick {
		cases = policyCases[2:4]
	}
	t := &metrics.Table{Header: []string{"policy", "8x2 tps", "5x3 tps", "winner"}}
	for _, pc := range cases {
		spec := BlockSpec{Txs: 150, Endorsements: pc.Ends, Reads: 2, Writes: 2}
		ta, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, pc.Pol, spec)
		if err != nil {
			return nil, err
		}
		tb, err := bmacTiming(hwsim.Config{TxValidators: 5, VSCCEngines: 3}, pc.Pol, spec)
		if err != nil {
			return nil, err
		}
		a, b := ta.Throughput(150), tb.Throughput(150)
		winner := "8x2"
		if b > a {
			winner = "5x3"
		}
		t.AddRow(pc.Name, metrics.FormatTPS(a), metrics.FormatTPS(b), winner)
	}
	return t, nil
}

// Figure12c reproduces the database-requests experiment: the split-payment
// workload with rw in {1+1..1+8}; BMac throughput stays flat (mvcc hidden
// under vscc) while software degrades.
func Figure12c(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	rws := []int{2, 3, 5, 9} // 1+n for n in {1,2,4,8}
	if o.Quick {
		rws = []int{2, 5}
	}
	blockSize := 150
	if o.Quick {
		blockSize = 30
	}
	t := &metrics.Table{Header: []string{"rw/tx", "sw tps", "bmac tps", "bmac mvcc busy"}}
	for _, rw := range rws {
		spec := BlockSpec{Txs: blockSize, Endorsements: 2, Reads: rw, Writes: rw}
		sw, err := e.MeasureSW(spec, "2of2", 8, o.Rounds)
		if err != nil {
			return nil, err
		}
		hw, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, "2of2", spec)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", rw),
			metrics.FormatTPS(metrics.Throughput(blockSize, sw.Total)),
			metrics.FormatTPS(hw.Throughput(blockSize)),
			ms(hw.MVCCBusy))
	}
	return t, nil
}

// Figure13 reproduces the drm benchmark subset: drm touches the database
// less (1 read + 1 write), so software does slightly better than smallbank
// while BMac stays vscc-bound at the same throughput.
func Figure13(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	blockSizes := []int{100, 150, 250}
	if o.Quick {
		blockSizes = []int{50}
	}
	t := &metrics.Table{Header: []string{"block", "workload", "sw tps", "bmac tps"}}
	for _, bs := range blockSizes {
		// smallbank: 2r2w; drm: 1r1w.
		for _, wl := range []struct {
			name   string
			reads  int
			writes int
		}{{"smallbank", 2, 2}, {"drm", 1, 1}} {
			spec := BlockSpec{Txs: bs, Endorsements: 2, Reads: wl.reads, Writes: wl.writes}
			sw, err := e.MeasureSW(spec, "2of2", 8, o.Rounds)
			if err != nil {
				return nil, err
			}
			hw, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, "2of2", spec)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", bs), wl.name,
				metrics.FormatTPS(metrics.Throughput(bs, sw.Total)),
				metrics.FormatTPS(hw.Throughput(bs)))
		}
	}
	return t, nil
}

// Table1 reproduces the FPGA utilization table from the resource model.
func Table1() *metrics.Table {
	t := &metrics.Table{Header: []string{"resource", "4x2", "5x3", "8x2", "12x2", "16x2"}}
	archs := [][2]int{{4, 2}, {5, 3}, {8, 2}, {12, 2}, {16, 2}}
	var lut, ff, bram []string
	for _, a := range archs {
		u := hwsim.Resources(a[0], a[1])
		lut = append(lut, fmt.Sprintf("%.1f%%", u.LUTPct))
		ff = append(ff, fmt.Sprintf("%.1f%%", u.FFPct))
		bram = append(bram, fmt.Sprintf("%.1f%%", u.BRAMPct))
	}
	t.AddRow(append([]string{"LUT/LUTRAM"}, lut...)...)
	t.AddRow(append([]string{"FF"}, ff...)...)
	t.AddRow(append([]string{"BRAM/URAM"}, bram...)...)
	return t
}

// Headline reproduces the §4.3 headline numbers: peak throughput, the ~12x
// speedup over a 16-vCPU software validator, and the ~0.7 ms transaction
// latency.
func Headline(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	spec := BlockSpec{Txs: 250, Endorsements: 2, Reads: 2, Writes: 2}
	if o.Quick {
		spec.Txs = 50
	}
	sw, err := e.MeasureSW(spec, "2of2", 16, o.Rounds)
	if err != nil {
		return nil, err
	}
	swTPS := metrics.Throughput(spec.Txs, sw.Total)

	// Peak hardware configuration fitting the U250 with E=2.
	best := hwsim.Config{TxValidators: 16, VSCCEngines: 2}
	for n := 16; n <= 64; n++ {
		if hwsim.Resources(n, 2).FitsU250() {
			best.TxValidators = n
		}
	}
	hw, err := bmacTiming(best, "2of2", spec)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{Header: []string{"metric", "value", "paper"}}
	t.AddRow("sw_validator (16 vCPU)", metrics.FormatTPS(swTPS)+" tps", "5,600 tps")
	t.AddRow(fmt.Sprintf("bmac peak (%s)", best.String()),
		metrics.FormatTPS(hw.Throughput(spec.Txs))+" tps", "68,900 tps")
	t.AddRow("speedup", fmt.Sprintf("%.1fx", hw.Throughput(spec.Txs)/swTPS), "~12x")
	t.AddRow("tx validation latency", hw.TxLatency.Round(10*time.Microsecond).String(), "~0.7ms")
	t.AddRow("block latency", hw.BlockLatency().Round(10*time.Microsecond).String(), "3.63ms")
	return t, nil
}
