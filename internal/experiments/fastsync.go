package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/metrics"
	"bmac/internal/peer"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// The fast-sync sweep holds the un-checkpointed tail constant while the
// total ledger length grows: checkpoints land every fastsyncCkptEvery
// blocks and every swept length is chosen ≡ fastsyncTail (mod cadence),
// so the newest generation always sits exactly fastsyncTail blocks below
// the ledger height.
const (
	fastsyncTail      = 4
	fastsyncCkptEvery = 8
)

// fastsyncChain builds n chained blocks of 4 valid transactions each over
// a fixed set of rotating accounts, so state size (and with it checkpoint
// size) stays constant while ledger length grows — the sweep isolates
// replay cost from snapshot cost.
func fastsyncChain(client, end, orderer *identity.Identity, n int) ([]*block.Block, error) {
	out := make([]*block.Block, 0, n)
	var prev []byte
	for bn := uint64(0); bn < uint64(n); bn++ {
		envs := make([]block.Envelope, 0, 4)
		for i := 0; i < 4; i++ {
			rw := block.RWSet{Writes: []block.KVWrite{{
				Key:   fmt.Sprintf("acct%d", (int(bn)*4+i)%16),
				Value: []byte{byte(bn), byte(i)},
			}}}
			env, err := block.NewEndorsedEnvelope(block.TxSpec{
				Creator: client, Chaincode: "cc", Channel: "ch",
				RWSet: rw, Endorsers: []*identity.Identity{end},
			})
			if err != nil {
				return nil, err
			}
			envs = append(envs, *env)
		}
		b, err := block.NewBlock(bn, prev, envs, orderer)
		if err != nil {
			return nil, err
		}
		prev = block.HeaderHash(&b.Header)
		out = append(out, b)
	}
	return out, nil
}

// timeRecovery reopens the peer directory `rounds` times under the given
// durable options, verifying each recovery lands at wantHeight with a
// state bit-identical to wantHash, and returns the fastest observed
// recovery plus the last reopen's ledger stats.
func timeRecovery(cfg validator.Config, dir string, dopts peer.DurableOptions,
	wantHeight uint64, wantHash []byte, rounds int) (time.Duration, ledger.Stats, error) {
	var best time.Duration
	var st ledger.Stats
	for r := 0; r < rounds; r++ {
		start := time.Now()
		p, err := peer.NewDurableSWPeer(cfg, statedb.NewStore(), dir, dopts)
		if err != nil {
			return 0, st, err
		}
		d := time.Since(start)
		got := statedb.SnapshotHash(p.Validator.Store().Snapshot())
		h := p.Height()
		st = p.Ledger.Stats()
		if err := p.Close(); err != nil {
			return 0, st, err
		}
		if h != wantHeight {
			return 0, st, fmt.Errorf("recovered height %d, want %d", h, wantHeight)
		}
		if !bytes.Equal(got, wantHash) {
			return 0, st, fmt.Errorf("recovered state diverges from the live state")
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, st, nil
}

// FigFastSync measures snapshot fast-sync over the segmented ledger: a
// durable peer is built at several total ledger lengths L (tiny segment
// budget, fixed un-checkpointed tail), then reopened two ways — fast-sync
// (newest checkpoint generation + tail replay) against the full-replay
// baseline (oldest retained generation, maximal replay). The scaling
// claim is gated structurally, not just on wall clock: at every L the
// fast path replays exactly the tail while the baseline's replay grows
// with L, and the reopen must come from the persisted index (no segment
// rescan). Both recoveries must be bit-identical to the live state, and
// at the largest L fast-sync must beat full replay outright.
func FigFastSync(opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	lengths := []int{36, 68, 132}
	if o.Quick {
		lengths = []int{20, 36}
	}
	rounds := o.Rounds
	if rounds < 3 {
		rounds = 3
	}

	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		return nil, err
	}
	client, err := net.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		return nil, err
	}
	orderer, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		return nil, err
	}
	end, err := net.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		return nil, err
	}
	pol, err := policy.Parse("1of1")
	if err != nil {
		return nil, err
	}
	cfg := validator.Config{Workers: 2, Policies: map[string]*policy.Policy{"cc": pol}}

	root, err := os.MkdirTemp("", "bmac-fastsync-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	tbl := &metrics.Table{Header: []string{
		"blocks", "segments", "ckpt_gens", "replay_fast", "replay_full",
		"open", "fastsync", "fullreplay", "speedup",
	}}

	var firstTail, lastTail time.Duration
	var fastMax, fullMax time.Duration
	for _, L := range lengths {
		if L%fastsyncCkptEvery != fastsyncTail {
			return nil, fmt.Errorf("fastsync: length %d breaks the fixed-tail sweep (want ≡ %d mod %d)",
				L, fastsyncTail, fastsyncCkptEvery)
		}
		blocks, err := fastsyncChain(client, end, orderer, L)
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(root, fmt.Sprintf("L%d", L))
		// KeepCheckpoints retains every generation of the sweep, so the
		// full-replay baseline's oldest anchor stays at the first cadence
		// boundary and its replay length grows with L.
		dopts := peer.DurableOptions{
			CheckpointEvery: fastsyncCkptEvery,
			KeepCheckpoints: 64,
			SegmentBytes:    4096,
		}
		p, err := peer.NewDurableSWPeer(cfg, statedb.NewStore(), dir, dopts)
		if err != nil {
			return nil, fmt.Errorf("fastsync L=%d: %w", L, err)
		}
		for _, b := range blocks {
			if _, err := p.CommitBlock(b); err != nil {
				p.Close() // bmaclint:allow errdiscard (error path: close error would mask the commit failure)
				return nil, fmt.Errorf("fastsync L=%d commit: %w", L, err)
			}
		}
		want := statedb.SnapshotHash(p.Validator.Store().Snapshot())
		if err := p.Close(); err != nil {
			return nil, err
		}

		refs, _ := statedb.Checkpoints(dir, "")
		if len(refs) == 0 {
			return nil, fmt.Errorf("fastsync L=%d: no checkpoint generations written", L)
		}
		replayFast := uint64(L) - refs[0].Height
		replayFull := uint64(L) - refs[len(refs)-1].Height
		if replayFast != fastsyncTail {
			return tbl, fmt.Errorf("fastsync L=%d: fast path replays %d blocks, want the fixed tail %d — recovery scales with ledger length",
				L, replayFast, fastsyncTail)
		}
		if refs[len(refs)-1].Height != fastsyncCkptEvery {
			return tbl, fmt.Errorf("fastsync L=%d: oldest retained generation at %d, want %d — the full-replay baseline lost its anchor",
				L, refs[len(refs)-1].Height, fastsyncCkptEvery)
		}

		// Open cost alone — O(segment count) under this deliberately tiny
		// budget — so the replay portion of each recovery can be isolated:
		// the scaling claim is about replay, and open cost is identical in
		// both modes.
		var open time.Duration
		for r := 0; r < rounds; r++ {
			start := time.Now()
			led, err := ledger.Open(dir, ledger.Options{SegmentBytes: 4096})
			if err != nil {
				return tbl, fmt.Errorf("fastsync L=%d reopen: %w", L, err)
			}
			d := time.Since(start)
			if err := led.Close(); err != nil {
				return tbl, err
			}
			if open == 0 || d < open {
				open = d
			}
		}

		fast, stFast, err := timeRecovery(cfg, dir, dopts, uint64(L), want, rounds)
		if err != nil {
			return tbl, fmt.Errorf("fastsync L=%d fast-sync recovery: %w", L, err)
		}
		fopts := dopts
		fopts.NoFastSync = true
		full, _, err := timeRecovery(cfg, dir, fopts, uint64(L), want, rounds)
		if err != nil {
			return tbl, fmt.Errorf("fastsync L=%d full-replay recovery: %w", L, err)
		}
		if stFast.IndexRebuilds != 0 {
			return tbl, fmt.Errorf("fastsync L=%d: reopen rescanned segments %d times — the persisted index was not honored",
				L, stFast.IndexRebuilds)
		}
		if stFast.SealedSegments == 0 {
			return tbl, fmt.Errorf("fastsync L=%d: no sealed segments under a 4KiB budget — the sweep never crossed a rotation", L)
		}

		tbl.AddRow(
			fmt.Sprintf("%d", L),
			fmt.Sprintf("%d", stFast.Segments),
			fmt.Sprintf("%d", len(refs)),
			fmt.Sprintf("%d", replayFast),
			fmt.Sprintf("%d", replayFull),
			ms(open), ms(fast), ms(full),
			fmt.Sprintf("%.1fx", float64(full)/float64(fast)),
		)
		tail := fast - open
		if tail < 0 {
			tail = 0
		}
		if firstTail == 0 && lastTail == 0 {
			firstTail = tail
		}
		lastTail = tail
		fastMax, fullMax = fast, full
	}

	// Timing gates, on best-of-rounds: at the largest L the fast path must
	// win outright, and its open-adjusted replay cost must stay roughly
	// flat across the sweep (the structural replay-count gate above is the
	// exact form of the claim; the generous margin plus a sub-millisecond
	// noise floor keep the wall-clock check honest without flaking on
	// loaded machines).
	if fullMax <= fastMax {
		return tbl, fmt.Errorf("fastsync: full replay (%v) not slower than fast-sync (%v) at the largest ledger",
			fullMax, fastMax)
	}
	if floor := 500 * time.Microsecond; lastTail > 8*firstTail+floor {
		return tbl, fmt.Errorf("fastsync: open-adjusted fast-sync replay grew from %v to %v across the sweep — scales with ledger length, not tail",
			firstTail, lastTail)
	}
	tbl.AddNote("fast-sync replays the %d-block tail at every length; full replay grows with the ledger (best of %d reopens per cell; open is ledger.Open alone, paid by both modes)",
		fastsyncTail, rounds)
	return tbl, nil
}
