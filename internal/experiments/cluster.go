package experiments

import (
	"fmt"
	"os"
	"time"

	"bmac/internal/cluster"
	"bmac/internal/config"
	"bmac/internal/metrics"
)

// FigCluster drives the full delivery-side stack — open-loop load ->
// raft-backed orderer -> non-blocking delivery service -> N gossip peers
// plus a BMac peer — once per software validation path, with one
// artificially slow peer. For each path it reports throughput and the
// end-to-end p50/p95/p99 commit latency measured at a fast software peer
// and at the BMac peer, plus the slow peer's backlog at the moment the
// fast peers finished (the slow-peer isolation evidence: fast lag stays
// 0 while the slow peer's lag/drops absorb its own overload).
func FigCluster(opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	dir, err := os.MkdirTemp("", "bmac-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 8
	// Give the hybrid path something to hide: a cache smaller than the
	// account working set plus a modeled host read latency.
	cfg.StateDB.Capacity = 32
	cfg.StateDB.HostReadLatencyUS = 50

	copts := cluster.Options{
		Peers:     4,
		SlowPeers: 1,
		SlowDelay: 40 * time.Millisecond,
		BMacPeer:  true,
		Txs:       96,
		Rate:      600,
		Clients:   2,
		Window:    8,
		Accounts:  64,
		Skew:      1.1,
		Seed:      7,
	}
	if o.Quick {
		copts.Peers = 3
		copts.Txs = 32
		copts.Rate = 400
	}

	tbl := &metrics.Table{Header: []string{
		"path", "peers", "blocks", "txs", "valid", "tps",
		"p50", "p95", "p99", "hw_p99", "slow_lag", "slow_drop", "fast_lag",
		"sig$%", "parse$%",
	}}
	for _, mode := range cluster.Modes() {
		copts.Mode = mode
		res, err := cluster.Run(cfg, copts, fmt.Sprintf("%s/%s", dir, mode))
		if err != nil {
			return nil, fmt.Errorf("cluster %s: %w", mode, err)
		}
		var slowLag, slowDrop, fastLag uint64
		for _, p := range res.Peers {
			if p.Slow {
				slowLag += p.Delivery.Lag
				slowDrop += p.Delivery.Dropped
			} else if p.Delivery.Lag > fastLag {
				fastLag = p.Delivery.Lag
			}
		}
		tbl.AddRow(
			mode,
			fmt.Sprintf("%d", copts.Peers),
			fmt.Sprintf("%d", res.Blocks),
			fmt.Sprintf("%d", res.Txs),
			fmt.Sprintf("%d", res.ValidTxs),
			metrics.FormatTPS(res.TPS),
			fmt.Sprintf("%v", res.SWLatency.P50.Round(time.Microsecond)),
			fmt.Sprintf("%v", res.SWLatency.P95.Round(time.Microsecond)),
			fmt.Sprintf("%v", res.SWLatency.P99.Round(time.Microsecond)),
			fmt.Sprintf("%v", res.HWLatency.P99.Round(time.Microsecond)),
			fmt.Sprintf("%d", slowLag),
			fmt.Sprintf("%d", slowDrop),
			fmt.Sprintf("%d", fastLag),
			fmt.Sprintf("%.0f%%", res.SigCacheHitRate*100),
			fmt.Sprintf("%.0f%%", res.ParseCacheHitRate*100),
		)
	}
	return tbl, nil
}
