package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bmac/internal/cluster"
	"bmac/internal/config"
	"bmac/internal/metrics"
)

// telemetryDir resolves where an experiment's trace files and metrics
// snapshots land: BMAC_TELEMETRY_DIR when set (the caller wants to keep
// them, e.g. as CI artifacts), otherwise the run's scratch dir.
func telemetryDir(scratch string) string {
	if d := os.Getenv("BMAC_TELEMETRY_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err == nil {
			return d
		}
	}
	return scratch
}

// FigCluster drives the full delivery-side stack — open-loop load ->
// raft-backed orderer -> non-blocking delivery service -> N gossip peers
// plus a BMac peer — once per software validation path, with one
// artificially slow peer. For each path it reports throughput and the
// end-to-end p50/p95/p99 commit latency measured at a fast software peer
// and at the BMac peer, plus the slow peer's backlog at the moment the
// fast peers finished (the slow-peer isolation evidence: fast lag stays
// 0 while the slow peer's lag/drops absorb its own overload).
func FigCluster(opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	dir, err := os.MkdirTemp("", "bmac-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 8
	// Give the hybrid path something to hide: a cache smaller than the
	// account working set plus a modeled host read latency.
	cfg.StateDB.Capacity = 32
	cfg.StateDB.HostReadLatencyUS = 50
	// The telemetry plane is on for this experiment: each mode writes a
	// per-block lifecycle trace and reports its latency budget.
	cfg.Telemetry.Enabled = true
	telDir := telemetryDir(dir)

	copts := cluster.Options{
		Peers:     4,
		SlowPeers: 1,
		SlowDelay: 40 * time.Millisecond,
		BMacPeer:  true,
		Txs:       96,
		Rate:      600,
		Clients:   2,
		Window:    8,
		Accounts:  64,
		Skew:      1.1,
		Seed:      7,
	}
	if o.Quick {
		copts.Peers = 3
		copts.Txs = 32
		copts.Rate = 400
	}

	tbl := &metrics.Table{Header: []string{
		"path", "peers", "blocks", "txs", "valid", "tps",
		"p50", "p95", "p99", "hw_p99", "slow_lag", "slow_drop", "fast_lag",
		"sig$%", "parse$%",
	}}
	var metricsText string
	for _, mode := range cluster.Modes() {
		copts.Mode = mode
		cfg.Telemetry.TraceFile = filepath.Join(telDir, "cluster_"+mode+"_trace.jsonl")
		res, err := cluster.Run(cfg, copts, fmt.Sprintf("%s/%s", dir, mode))
		if err != nil {
			return nil, fmt.Errorf("cluster %s: %w", mode, err)
		}
		metricsText = res.MetricsText
		var slowLag, slowDrop, fastLag uint64
		for _, p := range res.Peers {
			if p.Slow {
				slowLag += p.Delivery.Lag
				slowDrop += p.Delivery.Dropped
			} else if p.Delivery.Lag > fastLag {
				fastLag = p.Delivery.Lag
			}
		}
		tbl.AddRow(
			mode,
			fmt.Sprintf("%d", copts.Peers),
			fmt.Sprintf("%d", res.Blocks),
			fmt.Sprintf("%d", res.Txs),
			fmt.Sprintf("%d", res.ValidTxs),
			metrics.FormatTPS(res.TPS),
			fmt.Sprintf("%v", res.SWLatency.P50.Round(time.Microsecond)),
			fmt.Sprintf("%v", res.SWLatency.P95.Round(time.Microsecond)),
			fmt.Sprintf("%v", res.SWLatency.P99.Round(time.Microsecond)),
			fmt.Sprintf("%v", res.HWLatency.P99.Round(time.Microsecond)),
			fmt.Sprintf("%d", slowLag),
			fmt.Sprintf("%d", slowDrop),
			fmt.Sprintf("%d", fastLag),
			fmt.Sprintf("%.0f%%", res.SigCacheHitRate*100),
			fmt.Sprintf("%.0f%%", res.ParseCacheHitRate*100),
		)
		tbl.AddNote("[%s] %d trace events -> %s\n%s", mode, res.TraceEvents, res.TraceFile, res.Budget)
	}
	// Final registry snapshot (counters accumulate across the three modes).
	if metricsText != "" {
		snap := filepath.Join(telDir, "cluster_metrics.prom")
		if err := os.WriteFile(snap, []byte(metricsText), 0o644); err != nil {
			return nil, fmt.Errorf("cluster: metrics snapshot: %w", err)
		}
	}
	return tbl, nil
}
