package experiments

import (
	"crypto/ecdsa"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/metrics"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/telemetry"
	"bmac/internal/validator"
	"bmac/internal/wire"
)

// The hotpath experiment measures the commit hot path's optimizations in
// isolation and end to end — verification cache, batch ECDSA, parse-once
// envelopes, pooled zero-copy marshaling — reporting ns/op, allocs/op and
// cache hit rates, with every optimization also measured OFF so the
// speedups are relative to a visible baseline, not an assumed one. The
// machine-readable form (HotpathRecord, written to BENCH_hotpath.json by
// `bmacbench -exp hotpath -json`) is the repository's tracked performance
// trajectory: scripts/benchgate.sh fails CI when allocs/op regress against
// the committed record.

// HotpathBench is one measured benchmark point.
type HotpathBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HitRate     float64 `json:"hit_rate,omitempty"`
}

// HotpathDerived holds the headline ratios derived from the benchmarks.
type HotpathDerived struct {
	// BlockValidateAllocsReductionX is baseline allocs/op over optimized
	// allocs/op for the end-to-end block validation benchmark.
	BlockValidateAllocsReductionX float64 `json:"block_validate_allocs_reduction_x"`
	// VerifyCachedSpeedupX is cold verification ns/op over cache-steady-
	// state ns/op for the repeated-endorser verify benchmark.
	VerifyCachedSpeedupX float64 `json:"verify_cached_speedup_x"`
	// MarshalAllocsReductionX is single-alloc Marshal allocs/op over the
	// pooled AppendBlock path's allocs/op (clamped; the pooled path's
	// steady state is zero).
	MarshalAllocsReductionX float64 `json:"marshal_allocs_reduction_x"`
	// ParseCachedSpeedupX is cold ParseTx ns/op over interned ns/op.
	ParseCachedSpeedupX float64 `json:"parse_cached_speedup_x"`
}

// HotpathRecord is the machine-readable result of the hotpath suite.
type HotpathRecord struct {
	Schema     string                  `json:"schema"`
	CPUs       int                     `json:"cpus"`
	Quick      bool                    `json:"quick"`
	Benchmarks map[string]HotpathBench `json:"benchmarks"`
	Derived    HotpathDerived          `json:"derived"`
}

// measureOp times iters calls of f and reports per-op wall time and heap
// allocations (runtime.MemStats deltas — deterministic enough to gate on
// with tolerance, unlike wall time).
func measureOp(iters int, f func()) HotpathBench {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return HotpathBench{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
	}
}

// verifyTuple is one (pub, digest, sig) check extracted from a block.
type verifyTuple struct {
	pub    *ecdsa.PublicKey
	digest []byte
	sig    []byte
}

// endorserTuples extracts every signature check of one transaction — the
// creator signature plus all endorsements — exactly as vscc performs them.
func endorserTuples(env *block.Envelope) ([]verifyTuple, error) {
	pt := validator.ParseTx(env.PayloadBytes)
	if pt.Err != nil {
		return nil, pt.Err
	}
	var out []verifyTuple
	cpub, err := fabcrypto.PublicKeyFromCert(pt.Tx.SignatureHeader.Creator)
	if err != nil {
		return nil, err
	}
	out = append(out, verifyTuple{pub: cpub, digest: fabcrypto.HashSlice(env.PayloadBytes), sig: env.Signature})
	for i := range pt.Tx.Payload.Action.Endorsements {
		e := &pt.Tx.Payload.Action.Endorsements[i]
		epub, err := fabcrypto.PublicKeyFromCert(e.Endorser)
		if err != nil {
			return nil, err
		}
		msg := block.EndorsementSigningBytes(pt.PRP, e.Endorser)
		out = append(out, verifyTuple{pub: epub, digest: fabcrypto.HashSlice(msg), sig: e.Signature})
	}
	return out, nil
}

// MeasureHotpath runs the whole hotpath suite and returns its record.
func MeasureHotpath(e *Env, opts Options) (*HotpathRecord, error) {
	o := opts.withDefaults()
	valIters, opIters := 40, 400
	if o.Quick {
		valIters, opIters = 10, 100
	}
	rec := &HotpathRecord{
		Schema:     "bmac-hotpath/1",
		CPUs:       runtime.GOMAXPROCS(0),
		Quick:      o.Quick,
		Benchmarks: map[string]HotpathBench{},
	}

	spec := BlockSpec{Txs: 16, Endorsements: 2, Reads: 2, Writes: 2}
	b, err := e.MakeBlock(spec)
	if err != nil {
		return nil, err
	}
	raw := block.Marshal(b)
	pol, err := policy.Parse("2of2")
	if err != nil {
		return nil, err
	}
	pols := map[string]*policy.Policy{"smallbank": pol}

	// --- End-to-end block validation: every optimization off vs on. ---
	validate := func(sc *fabcrypto.SigCache, cc *fabcrypto.CertCache, pc *validator.ParseCache, tm *telemetry.ValidatorMetrics) error {
		v := validator.New(validator.Config{
			Workers: 1, Policies: pols, SkipLedger: true,
			SigCache: sc, CertCache: cc, ParseCache: pc, Metrics: tm,
		}, statedb.NewStore(), nil)
		res, err := v.ValidateAndCommit(raw)
		if err != nil {
			return err
		}
		if got := block.CountValid(res.Flags); got != spec.Txs {
			return fmt.Errorf("hotpath: %d/%d txs valid", got, spec.Txs)
		}
		return nil
	}
	var benchErr error
	run := func(f func() error) func() {
		return func() {
			if err := f(); err != nil && benchErr == nil {
				benchErr = err
			}
		}
	}

	prevPooling := wire.BufferPooling()
	wire.SetBufferPooling(false)
	rec.Benchmarks["block_validate_baseline"] = measureOp(valIters, run(func() error {
		return validate(nil, nil, nil, nil)
	}))
	wire.SetBufferPooling(true)
	defer wire.SetBufferPooling(prevPooling)

	sc := fabcrypto.NewSigCache(1 << 15)
	cc := fabcrypto.NewCertCache(1 << 12)
	pc := validator.NewParseCache(1 << 13)
	if err := validate(sc, cc, pc, nil); err != nil { // warm to cache steady state
		return nil, err
	}
	bv := measureOp(valIters, run(func() error { return validate(sc, cc, pc, nil) }))
	bv.HitRate = sc.HitRate()
	rec.Benchmarks["block_validate_hotpath"] = bv

	// --- Telemetry plane cost: nil instruments vs a live registry. The off
	// row is the zero-cost-when-off contract: it must stay indistinguishable
	// from block_validate_hotpath (the gate checks its allocs/op against the
	// committed baseline like every other row). ---
	rec.Benchmarks["block_validate_telemetry_off"] = measureOp(valIters, run(func() error {
		return validate(sc, cc, pc, nil)
	}))
	tm := telemetry.NewValidatorMetrics(telemetry.NewRegistry(), "bench")
	rec.Benchmarks["block_validate_telemetry_on"] = measureOp(valIters, run(func() error {
		return validate(sc, cc, pc, tm)
	}))

	// --- Repeated-endorser verify: cold vs cache steady state. ---
	tuples, err := endorserTuples(&b.Envelopes[0])
	if err != nil {
		return nil, err
	}
	verIters := valIters * 4
	cold := measureOp(verIters, func() {
		for _, t := range tuples {
			if err := fabcrypto.VerifyDigest(t.pub, t.digest, t.sig); err != nil && benchErr == nil {
				benchErr = err
			}
		}
	})
	rec.Benchmarks["repeated_endorser_verify_cold"] = cold

	vsc := fabcrypto.NewSigCache(1024)
	for _, t := range tuples { // warm
		vsc.VerifyDigest(t.pub, t.digest, t.sig) // bmaclint:allow errdiscard (warm-up: measured loop below checks errors)
	}
	cached := measureOp(verIters, func() {
		for _, t := range tuples {
			if err, _ := vsc.VerifyDigest(t.pub, t.digest, t.sig); err != nil && benchErr == nil {
				benchErr = err
			}
		}
	})
	cached.HitRate = vsc.HitRate()
	rec.Benchmarks["repeated_endorser_verify_cached"] = cached

	// --- Batch verify sweep: endorsement count x worker count. ---
	for _, endorse := range []int{2, 4} {
		eb, err := e.MakeBlock(BlockSpec{Txs: 1, Endorsements: endorse, Reads: 1, Writes: 1})
		if err != nil {
			return nil, err
		}
		ets, err := endorserTuples(&eb.Envelopes[0])
		if err != nil {
			return nil, err
		}
		reqs := make([]fabcrypto.VerifyRequest, len(ets))
		for i, t := range ets {
			reqs[i] = fabcrypto.VerifyRequest{Pub: t.pub, Digest: t.digest, Sig: t.sig}
		}
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("batch_verify_e%d_w%d", endorse, workers)
			var nilCache *fabcrypto.SigCache
			rec.Benchmarks[name] = measureOp(valIters, func() {
				for _, r := range nilCache.VerifyBatch(reqs, workers) {
					if r.Err != nil && benchErr == nil {
						benchErr = r.Err
					}
				}
			})
		}
	}

	// --- Certificate parse: cold x509 walk vs interned. ---
	creatorDER := func() []byte {
		pt := validator.ParseTx(b.Envelopes[0].PayloadBytes)
		return pt.Tx.SignatureHeader.Creator
	}()
	rec.Benchmarks["cert_parse_cold"] = measureOp(opIters, func() {
		if _, err := fabcrypto.PublicKeyFromCert(creatorDER); err != nil && benchErr == nil {
			benchErr = err
		}
	})
	ccc := fabcrypto.NewCertCache(64)
	ccc.PublicKeyFromCert(creatorDER) // bmaclint:allow errdiscard (warm-up: measured loop below checks errors)
	cb := measureOp(opIters, func() {
		if _, err := ccc.PublicKeyFromCert(creatorDER); err != nil && benchErr == nil {
			benchErr = err
		}
	})
	cb.HitRate = ccc.HitRate()
	rec.Benchmarks["cert_parse_cached"] = cb

	// --- Parse-once: cold unmarshal walk vs interned. ---
	payload := b.Envelopes[0].PayloadBytes
	rec.Benchmarks["parse_tx_cold"] = measureOp(opIters, func() {
		if pt := validator.ParseTx(payload); pt.Err != nil && benchErr == nil {
			benchErr = pt.Err
		}
	})
	ppc := validator.NewParseCache(64)
	ppc.ParseTx(payload) // warm
	pb := measureOp(opIters, func() {
		if pt, _ := ppc.ParseTx(payload); pt.Err != nil && benchErr == nil {
			benchErr = pt.Err
		}
	})
	pb.HitRate = ppc.HitRate()
	rec.Benchmarks["parse_tx_cached"] = pb

	// --- Marshal: exact-size single alloc vs pooled zero alloc. ---
	rec.Benchmarks["marshal_block"] = measureOp(opIters, func() {
		_ = block.Marshal(b)
	})
	rec.Benchmarks["marshal_block_pooled"] = measureOp(opIters, func() {
		buf := block.AppendBlock(wire.GetBuf(block.Size(b)), b)
		wire.PutBuf(buf)
	})

	if benchErr != nil {
		return nil, benchErr
	}

	clamp := func(v float64) float64 {
		if v < 0.05 {
			return 0.05
		}
		return v
	}
	d := &rec.Derived
	d.BlockValidateAllocsReductionX = rec.Benchmarks["block_validate_baseline"].AllocsPerOp /
		clamp(rec.Benchmarks["block_validate_hotpath"].AllocsPerOp)
	d.VerifyCachedSpeedupX = cold.NsPerOp / clamp(cached.NsPerOp)
	d.MarshalAllocsReductionX = rec.Benchmarks["marshal_block"].AllocsPerOp /
		clamp(rec.Benchmarks["marshal_block_pooled"].AllocsPerOp)
	d.ParseCachedSpeedupX = rec.Benchmarks["parse_tx_cold"].NsPerOp / clamp(pb.NsPerOp)
	return rec, nil
}

// hotpathBenchOrder fixes the table's presentation order.
var hotpathBenchOrder = []string{
	"block_validate_baseline", "block_validate_hotpath",
	"block_validate_telemetry_off", "block_validate_telemetry_on",
	"repeated_endorser_verify_cold", "repeated_endorser_verify_cached",
	"batch_verify_e2_w1", "batch_verify_e2_w2", "batch_verify_e2_w4",
	"batch_verify_e4_w1", "batch_verify_e4_w2", "batch_verify_e4_w4",
	"cert_parse_cold", "cert_parse_cached",
	"parse_tx_cold", "parse_tx_cached",
	"marshal_block", "marshal_block_pooled",
}

// Table renders the record for terminal output.
func (r *HotpathRecord) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"benchmark", "ns/op", "allocs/op", "hit%"}}
	for _, name := range hotpathBenchOrder {
		b, ok := r.Benchmarks[name]
		if !ok {
			continue
		}
		hit := "-"
		if b.HitRate > 0 {
			hit = fmt.Sprintf("%.0f%%", b.HitRate*100)
		}
		t.AddRow(name, fmt.Sprintf("%.0f", b.NsPerOp), fmt.Sprintf("%.1f", b.AllocsPerOp), hit)
	}
	t.AddRow("", "", "", "")
	t.AddRow("derived: block-validate allocs reduction",
		fmt.Sprintf("%.1fx", r.Derived.BlockValidateAllocsReductionX), "", "")
	t.AddRow("derived: verify cached speedup",
		fmt.Sprintf("%.1fx", r.Derived.VerifyCachedSpeedupX), "", "")
	t.AddRow("derived: parse cached speedup",
		fmt.Sprintf("%.1fx", r.Derived.ParseCachedSpeedupX), "", "")
	t.AddRow("derived: marshal allocs reduction",
		fmt.Sprintf("%.1fx", r.Derived.MarshalAllocsReductionX), "", "")
	return t
}

// FigHotpath runs the suite and renders its table.
func FigHotpath(e *Env, opts Options) (*metrics.Table, error) {
	rec, err := MeasureHotpath(e, opts)
	if err != nil {
		return nil, err
	}
	return rec.Table(), nil
}

// WriteJSON writes the record to path (the tracked benchmark file).
func (r *HotpathRecord) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadHotpathRecord reads a record written by WriteJSON.
func LoadHotpathRecord(path string) (*HotpathRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &HotpathRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("hotpath baseline %s: %w", path, err)
	}
	return rec, nil
}

// Gate compares the record's allocs/op against a committed baseline with
// relative tolerance tol (e.g. 0.25 = +25%) plus a small absolute slack,
// returning an error listing every regressed benchmark. Wall time is NOT
// gated — only allocation counts are stable enough across machines.
func (r *HotpathRecord) Gate(baseline *HotpathRecord, tol float64) error {
	const slack = 8 // absolute allocs/op headroom for runtime noise
	var regressions []string
	for name, base := range baseline.Benchmarks {
		cur, ok := r.Benchmarks[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		limit := base.AllocsPerOp*(1+tol) + slack
		if cur.AllocsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.1f > limit %.1f (baseline %.1f)",
					name, cur.AllocsPerOp, limit, base.AllocsPerOp))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("hotpath benchmark regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}
