package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"time"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/metrics"
	"bmac/internal/pipeline"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// ConflictChainSpec describes a chain of contended workload blocks for the
// pipeline experiment: every transaction writes `Writes` keys and reads
// `Reads` keys, and each access targets a per-block hot-key pool with
// probability HotProb (0 reproduces the conflict-free steady state of the
// paper's throughput experiments; higher values force read-after-write
// dependencies and mvcc aborts inside each block).
type ConflictChainSpec struct {
	Blocks       int
	Txs          int
	Endorsements int
	Reads        int
	Writes       int
	HotKeys      int
	HotProb      float64
	Seed         int64
}

// MakeConflictChain builds the chain deterministically from spec.Seed: the
// rng and the cold-key counter are both local to the call, so equal specs
// produce equal access patterns. Reads are endorsed at the zero version
// against a fresh state database, so a transaction conflicts exactly when
// an earlier valid transaction of the same block wrote one of its read
// keys.
func (e *Env) MakeConflictChain(spec ConflictChainSpec) ([]*block.Block, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	endorsers := e.Peers[:spec.Endorsements]
	blocks := make([]*block.Block, 0, spec.Blocks)
	keySeq := 0
	for n := 0; n < spec.Blocks; n++ {
		envs := make([]block.Envelope, 0, spec.Txs)
		hot := func() string {
			return "hot" + strconv.Itoa(n) + "/" + strconv.Itoa(rng.Intn(spec.HotKeys))
		}
		for i := 0; i < spec.Txs; i++ {
			var rw block.RWSet
			for r := 0; r < spec.Reads; r++ {
				key := ""
				if spec.HotKeys > 0 && rng.Float64() < spec.HotProb {
					key = hot()
				} else {
					keySeq++
					key = "cold" + strconv.Itoa(keySeq)
				}
				rw.Reads = append(rw.Reads, block.KVRead{Key: key})
			}
			for w := 0; w < spec.Writes; w++ {
				key := ""
				if spec.HotKeys > 0 && rng.Float64() < spec.HotProb {
					key = hot()
				} else {
					keySeq++
					key = "k" + strconv.Itoa(keySeq)
				}
				rw.Writes = append(rw.Writes, block.KVWrite{
					Key: key, Value: []byte("0123456789abcdef"),
				})
			}
			env, err := block.NewEndorsedEnvelope(block.TxSpec{
				Creator:   e.Client,
				Chaincode: "smallbank",
				Channel:   "ch1",
				RWSet:     rw,
				Endorsers: endorsers,
			})
			if err != nil {
				return nil, err
			}
			envs = append(envs, *env)
		}
		b, err := block.NewBlock(uint64(n), nil, envs, e.Orderer)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}

// PipelineComparison is one measured data point of the pipeline experiment.
type PipelineComparison struct {
	Sequential time.Duration // sum of per-block sequential validation time
	Parallel   time.Duration // wall time for the pipelined engine to drain
	Conflicts  int           // transactions flagged MVCC_READ_CONFLICT
	Edges      int           // dependency edges across all blocks
	Depth      int           // longest per-block critical path
	// SigCacheHitRate and ParseCacheHitRate report each engine's own
	// hot-path caches over all rounds (round 1 misses, later rounds hit;
	// both engines get their own caches so the speedup stays a fair
	// engine-vs-engine comparison).
	SeqSigCacheHitRate float64
	ParSigCacheHitRate float64
	ParParseHitRate    float64
}

// Speedup returns sequential time over parallel wall time.
func (p PipelineComparison) Speedup() float64 {
	if p.Parallel == 0 {
		return 0
	}
	return float64(p.Sequential) / float64(p.Parallel)
}

// MeasurePipeline validates the same block chain with the sequential
// software validator and the parallel pipelined engine (both ledger-free,
// as the paper's metrics are) and cross-checks flags and commit hashes
// while measuring. Divergence is an error: the experiment doubles as a
// differential check.
func (e *Env) MeasurePipeline(spec ConflictChainSpec, pol string, workers, rounds int) (PipelineComparison, error) {
	if workers < 1 {
		// Same vscc thread budget for both engines: the comparison isolates
		// pipelining + dependency scheduling, not worker counts.
		workers = runtime.GOMAXPROCS(0)
	}
	blocks, err := e.MakeConflictChain(spec)
	if err != nil {
		return PipelineComparison{}, err
	}
	raws := make([][]byte, len(blocks))
	for i, b := range blocks {
		raws[i] = block.Marshal(b)
	}
	p, err := policy.Parse(pol)
	if err != nil {
		return PipelineComparison{}, fmt.Errorf("experiments: policy %q: %w", pol, err)
	}
	pols := map[string]*policy.Policy{"smallbank": p}

	// Per-engine hot-path caches, persistent across rounds: with rounds
	// > 1 the later rounds measure cache steady state, and the hit rates
	// land in the report so the speedup's provenance is visible.
	seqSC := fabcrypto.NewSigCache(1 << 15)
	seqPC := validator.NewParseCache(1 << 13)
	parSC := fabcrypto.NewSigCache(1 << 15)
	parPC := validator.NewParseCache(1 << 13)

	var out PipelineComparison
	for _, b := range blocks {
		var accs []pipeline.Access
		for i := range b.Envelopes {
			p := validator.ParseTx(b.Envelopes[i].PayloadBytes)
			accs = append(accs, pipeline.AccessOf(p.RW))
		}
		g := pipeline.BuildGraph(accs)
		out.Edges += g.Edges()
		if d := g.CriticalPath(); d > out.Depth {
			out.Depth = d
		}
	}

	for r := 0; r < rounds; r++ {
		sw := validator.New(validator.Config{
			Workers: workers, Policies: pols, SkipLedger: true,
			SigCache: seqSC, ParseCache: seqPC,
		}, statedb.NewStore(), nil)
		swResults := make([]*validator.Result, len(raws))
		tSeq := time.Now()
		for i, raw := range raws {
			res, err := sw.ValidateAndCommit(raw)
			if err != nil {
				return PipelineComparison{}, err
			}
			swResults[i] = res
		}
		out.Sequential += time.Since(tSeq)

		eng := pipeline.New(pipeline.Config{
			Workers: workers, Policies: pols, SkipLedger: true,
			SigCache: parSC, ParseCache: parPC,
		}, statedb.NewStore(), nil)
		tPar := time.Now()
		go func() {
			for _, raw := range raws {
				eng.Submit(raw)
			}
		}()
		// Drain every outcome even after a failure: the submitter above and
		// the engine's stage goroutines block on their channels otherwise.
		var measureErr error
		for i := range raws {
			o := <-eng.Results()
			switch {
			case measureErr != nil:
			case o.Err != nil:
				measureErr = o.Err
			case !block.FlagsEqual(o.Res.Flags, swResults[i].Flags) ||
				string(o.Res.CommitHash) != string(swResults[i].CommitHash):
				measureErr = fmt.Errorf(
					"pipeline experiment: block %d diverged from sequential validator", i)
			}
		}
		out.Parallel += time.Since(tPar)
		eng.Close()
		if measureErr != nil {
			return PipelineComparison{}, measureErr
		}

		if r == 0 {
			for _, res := range swResults {
				for _, f := range res.Flags {
					if block.ValidationCode(f) == block.MVCCReadConflict {
						out.Conflicts++
					}
				}
			}
		}
	}
	out.Sequential /= time.Duration(rounds)
	out.Parallel /= time.Duration(rounds)
	out.SeqSigCacheHitRate = seqSC.HitRate()
	out.ParSigCacheHitRate = parSC.HitRate()
	out.ParParseHitRate = parPC.HitRate()
	return out, nil
}

// FigPipeline is the pipeline experiment: sequential-vs-parallel validation
// speedup across block sizes and conflict rates. It goes beyond the paper —
// this is the repo's first software step toward the roadmap's "as fast as
// the hardware allows" goal, following the dependency-scheduling recipe of
// Octopus-style parallel commit engines.
func FigPipeline(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	blockSizes := []int{50, 150}
	hotProbs := []float64{0, 0.3, 0.7}
	blocks := 6
	if o.Quick {
		blockSizes = []int{30}
		hotProbs = []float64{0, 0.5}
		blocks = 3
	}
	t := &metrics.Table{Header: []string{
		"block", "hot%", "conflicts", "dep edges", "depth",
		"| sequential", "pipelined", "speedup", "sig$%", "parse$%",
	}}
	for _, bs := range blockSizes {
		for _, hp := range hotProbs {
			spec := ConflictChainSpec{
				Blocks: blocks, Txs: bs, Endorsements: 2,
				Reads: 2, Writes: 2,
				HotKeys: 8, HotProb: hp,
				Seed: int64(bs)*1000 + int64(hp*100),
			}
			cmp, err := e.MeasurePipeline(spec, "2of2", 0, o.Rounds)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				strconv.Itoa(bs),
				fmt.Sprintf("%.0f%%", hp*100),
				strconv.Itoa(cmp.Conflicts),
				strconv.Itoa(cmp.Edges),
				strconv.Itoa(cmp.Depth),
				ms(cmp.Sequential),
				ms(cmp.Parallel),
				fmt.Sprintf("%.2fx", cmp.Speedup()),
				fmt.Sprintf("%.0f%%", cmp.ParSigCacheHitRate*100),
				fmt.Sprintf("%.0f%%", cmp.ParParseHitRate*100),
			)
		}
	}
	return t, nil
}
