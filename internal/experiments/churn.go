package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"bmac/internal/cluster"
	"bmac/internal/config"
	"bmac/internal/metrics"
)

// FigChurn drives the peer-churn scenario once per software validation
// path: the open-loop load runs through the raft-backed orderer and the
// delivery service while one fast peer is killed mid-run, restarted from
// its checkpoint + ledger replay, and caught up through the orderer's
// ledger-backed delivery source. Per path it reports where the kill and
// the recovery happened, how many blocks the restarted peer streamed from
// the ledger (catch_up > 0 proves the window had moved on), and whether
// every fast peer — including the one that died — finished with an
// identical ledger height, state hash and commit-hash chain (converged).
func FigChurn(opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	dir, err := os.MkdirTemp("", "bmac-churn-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4 // many small blocks, so the window moves on
	cfg.Durability.CheckpointEvery = 4
	cfg.Telemetry.Enabled = true
	telDir := telemetryDir(dir)

	copts := cluster.Options{
		Peers:      3,
		Txs:        96,
		Rate:       900, // paced, so the kill lands mid-submission
		Clients:    2,
		Window:     4,
		Accounts:   48,
		Seed:       19,
		Churn:      true,
		ChurnAfter: 2,
	}
	if o.Quick {
		copts.Txs = 48
	}

	tbl := &metrics.Table{Header: []string{
		"path", "blocks", "txs", "tps",
		"kill_height", "recovered_at", "catch_up", "restarts", "converged",
	}}
	var metricsText string
	for _, mode := range cluster.Modes() {
		copts.Mode = mode
		cfg.Telemetry.TraceFile = filepath.Join(telDir, "churn_"+mode+"_trace.jsonl")
		res, err := cluster.Run(cfg, copts, fmt.Sprintf("%s/%s", dir, mode))
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", mode, err)
		}
		metricsText = res.MetricsText
		if res.Churn == nil {
			return nil, fmt.Errorf("churn %s: no churn report", mode)
		}
		tbl.AddRow(
			mode,
			fmt.Sprintf("%d", res.Blocks),
			fmt.Sprintf("%d", res.Txs),
			metrics.FormatTPS(res.TPS),
			fmt.Sprintf("%d", res.Churn.KillHeight),
			fmt.Sprintf("%d", res.Churn.RecoveredAt),
			fmt.Sprintf("%d", res.Churn.CaughtUp),
			fmt.Sprintf("%d", res.Churn.Restarts),
			fmt.Sprintf("%v", res.Converged),
		)
		tbl.AddNote("[%s] %d trace events -> %s\n%s", mode, res.TraceEvents, res.TraceFile, res.Budget)
		if !res.Converged {
			return tbl, fmt.Errorf("churn %s: peers did not converge after restart", mode)
		}
	}
	if metricsText != "" {
		snap := filepath.Join(telDir, "churn_metrics.prom")
		if err := os.WriteFile(snap, []byte(metricsText), 0o644); err != nil {
			return nil, fmt.Errorf("churn: metrics snapshot: %w", err)
		}
	}
	return tbl, nil
}
