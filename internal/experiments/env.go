// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4). Software-validator numbers are measured live on
// the host; Blockchain Machine numbers come from the calibrated timing
// simulator (internal/hwsim), exactly as the paper uses its own simulator
// for architectures beyond the FPGA's capacity. Functional results (flags,
// state) are cross-checked elsewhere (internal/core, internal/peer tests).
package experiments

import (
	"fmt"
	"strconv"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// Env is the shared experiment fixture: a 4-org network (enough for every
// policy in Figure 12) with one peer per org, a client and an orderer.
type Env struct {
	Net     *identity.Network
	Client  *identity.Identity
	Orderer *identity.Identity
	Peers   []*identity.Identity // Peers[i] belongs to Org(i+1)

	blockCache map[string]*block.Block
	keySeq     int
}

// NewEnv builds the fixture.
func NewEnv() (*Env, error) {
	n := identity.NewNetwork()
	e := &Env{Net: n, blockCache: make(map[string]*block.Block)}
	for i := 1; i <= 4; i++ {
		org := fmt.Sprintf("Org%d", i)
		if _, err := n.AddOrg(org); err != nil {
			return nil, err
		}
		p, err := n.NewIdentity(org, identity.RolePeer)
		if err != nil {
			return nil, err
		}
		e.Peers = append(e.Peers, p)
	}
	var err error
	if e.Client, err = n.NewIdentity("Org1", identity.RoleClient); err != nil {
		return nil, err
	}
	if e.Orderer, err = n.NewIdentity("Org1", identity.RoleOrderer); err != nil {
		return nil, err
	}
	return e, nil
}

// BlockSpec describes a uniform workload block.
type BlockSpec struct {
	Txs          int
	Endorsements int // endorsed by the peers of Org1..OrgE
	Reads        int // cold-key reads per tx (always mvcc-clean)
	Writes       int // unique-key writes per tx
}

func (s BlockSpec) key() string {
	return fmt.Sprintf("%d/%d/%d/%d", s.Txs, s.Endorsements, s.Reads, s.Writes)
}

// MakeBlock builds (and caches) a block of uniform valid transactions.
// Every read targets a never-written key at the zero version and every
// write targets a unique key, so the block validates clean against any
// fresh state database — the steady-state workload shape of the paper's
// throughput experiments.
func (e *Env) MakeBlock(spec BlockSpec) (*block.Block, error) {
	if b, ok := e.blockCache[spec.key()]; ok {
		return b, nil
	}
	endorsers := e.Peers[:spec.Endorsements]
	envs := make([]block.Envelope, 0, spec.Txs)
	for i := 0; i < spec.Txs; i++ {
		var rw block.RWSet
		for r := 0; r < spec.Reads; r++ {
			e.keySeq++
			rw.Reads = append(rw.Reads, block.KVRead{
				Key: "cold" + strconv.Itoa(e.keySeq),
			})
		}
		for w := 0; w < spec.Writes; w++ {
			e.keySeq++
			rw.Writes = append(rw.Writes, block.KVWrite{
				Key:   "k" + strconv.Itoa(e.keySeq),
				Value: []byte("0123456789abcdef"),
			})
		}
		env, err := block.NewEndorsedEnvelope(block.TxSpec{
			Creator:   e.Client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet:     rw,
			Endorsers: endorsers,
		})
		if err != nil {
			return nil, err
		}
		envs = append(envs, *env)
	}
	b, err := block.NewBlock(0, nil, envs, e.Orderer)
	if err != nil {
		return nil, err
	}
	e.blockCache[spec.key()] = b
	return b, nil
}

// MeasureSW validates `rounds` copies of the block on a fresh software
// validator and returns the averaged breakdown.
func (e *Env) MeasureSW(spec BlockSpec, pol string, workers, rounds int) (validator.Breakdown, error) {
	b, err := e.MakeBlock(spec)
	if err != nil {
		return validator.Breakdown{}, err
	}
	raw := block.Marshal(b)
	p, err := policy.Parse(pol)
	if err != nil {
		return validator.Breakdown{}, fmt.Errorf("experiments: policy %q: %w", pol, err)
	}
	var sum validator.Breakdown
	for r := 0; r < rounds; r++ {
		v := validator.New(validator.Config{
			Workers:    workers,
			Policies:   map[string]*policy.Policy{"smallbank": p},
			SkipLedger: true, // §4.2: ledger commit excluded from the metrics
		}, statedb.NewStore(), nil)
		res, err := v.ValidateAndCommit(raw)
		if err != nil {
			return validator.Breakdown{}, err
		}
		if got := block.CountValid(res.Flags); got != spec.Txs {
			return validator.Breakdown{}, fmt.Errorf("experiment block invalidated: %d/%d valid", got, spec.Txs)
		}
		sum.Add(res.Breakdown)
	}
	avg := sum
	n := time.Duration(rounds)
	avg.Unmarshal /= n
	avg.BlockVerify /= n
	avg.VerifyVSCC /= n
	avg.MVCC /= n
	avg.StateDB /= n
	avg.LedgerCommit /= n
	avg.Total /= n
	avg.ECDSATime /= n
	avg.SHA256Time /= n
	avg.ECDSACount /= rounds
	avg.SHA256Count /= rounds
	avg.SigCacheTime /= n
	avg.SigCacheHits /= rounds
	avg.ParseCacheHits /= rounds
	return avg, nil
}
