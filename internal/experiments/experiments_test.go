package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"bmac/internal/hwsim"
	"bmac/internal/policy"
)

func quickRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(Options{Rounds: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAllExperimentsRunQuick(t *testing.T) {
	r := quickRunner(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tbl, err := r.Run(name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", name)
			}
			if _, ok := Titles[name]; !ok {
				t.Errorf("%s has no title", name)
			}
		})
	}
}

// TestMalformedPolicyReturnsError pins the error path that replaced the
// old policy.MustParse panic: a malformed policy string surfaces as an
// error wrapping policy.ErrParse from every experiment entry point, so a
// bad parameter (or configuration) can never crash a peer process.
func TestMalformedPolicyReturnsError(t *testing.T) {
	r := quickRunner(t)
	spec := BlockSpec{Txs: 1, Endorsements: 1, Reads: 0, Writes: 1}

	if _, err := r.env.MeasureSW(spec, "not a policy", 1, 1); !errors.Is(err, policy.ErrParse) {
		t.Errorf("MeasureSW err = %v, want policy.ErrParse", err)
	}
	chain := ConflictChainSpec{Blocks: 1, Txs: 1, Endorsements: 1, Writes: 1}
	if _, err := r.env.MeasurePipeline(chain, "2-outof", 1, 1); !errors.Is(err, policy.ErrParse) {
		t.Errorf("MeasurePipeline err = %v, want policy.ErrParse", err)
	}
	if _, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, "Org&", spec); !errors.Is(err, policy.ErrParse) {
		t.Errorf("bmacTiming err = %v, want policy.ErrParse", err)
	}
}

// TestHybridPrefetchRecovery is the acceptance gate for the prefetch
// stage: at smallbank Zipf skew 0.9 with a cache large enough to hold a
// block's working set, the async read-set prefetch must recover at least
// half of the throughput lost to host-read latency (it parallelizes and
// hides the host round trips the no-prefetch run pays serially in mvcc).
func TestHybridPrefetchRecovery(t *testing.T) {
	r := quickRunner(t)
	spec := HybridSpec{
		Blocks: 12, Txs: 48, Endorsements: 2,
		Accounts: 512, ReadsPerTx: 3,
		Skew:            0.9,
		Capacity:        512,
		HostLatency:     400 * time.Microsecond,
		Workers:         4,
		PrefetchWorkers: 16,
		Seed:            1,
	}
	// Wall-clock measurement: allow a retry so a loaded CI runner (or the
	// -race shard's timing distortion) cannot fail the gate spuriously.
	const attempts = 3
	var last float64
	for attempt := 1; attempt <= attempts; attempt++ {
		pt, err := r.env.MeasureHybrid(spec)
		if err != nil {
			t.Fatal(err)
		}
		if pt.MemoryTPS <= 0 || pt.NoPrefetchTPS <= 0 || pt.PrefetchTPS <= 0 {
			t.Fatalf("non-positive throughput: %+v", pt)
		}
		if pt.Prefetched == 0 {
			t.Fatal("prefetch run issued no warm-up reads")
		}
		last = pt.Recovered()
		t.Logf("attempt %d: memory %.0f tps, no-prefetch %.0f tps, prefetch %.0f tps, hit %.0f%%, recovered %.0f%%",
			attempt, pt.MemoryTPS, pt.NoPrefetchTPS, pt.PrefetchTPS, pt.HitRate*100, last*100)
		if last >= 0.5 {
			return
		}
		spec.Seed++
	}
	t.Errorf("prefetch recovered only %.0f%% of the latency-lost throughput after %d attempts, want >= 50%%",
		last*100, attempts)
}

func TestUnknownExperiment(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.Run("fig99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestFigure9aShape(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.Run("fig9a")
	if err != nil {
		t.Fatal(err)
	}
	// Compression ratio must grow with the endorsement count and stay in
	// the paper's 2x-6x band.
	var prev float64
	for i, row := range tbl.Rows {
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("row %d ratio %q: %v", i, row[3], err)
		}
		if ratio < 2 || ratio > 7 {
			t.Errorf("ends=%s ratio %.2f outside [2,7] (paper 3.4-5.3)", row[0], ratio)
		}
		if ratio < prev {
			t.Errorf("ratio should grow with endorsements: %.2f after %.2f", ratio, prev)
		}
		prev = ratio
	}
}

func TestFigure12bShape(t *testing.T) {
	r, err := NewRunner(Options{Rounds: 1}) // full policy list, sim only (fast)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.Run("fig12b")
	if err != nil {
		t.Fatal(err)
	}
	winners := map[string]string{}
	for _, row := range tbl.Rows {
		winners[row[0]] = row[3]
	}
	if winners["2of3"] != "8x2" {
		t.Errorf("2of3 winner = %s, want 8x2", winners["2of3"])
	}
	if winners["3of3"] != "5x3" {
		t.Errorf("3of3 winner = %s, want 5x3", winners["3of3"])
	}
	if winners["3of4"] != "5x3" {
		t.Errorf("3of4 winner = %s, want 5x3", winners["3of4"])
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Spot-check the headline cells against Table 1.
	lut := tbl.Rows[0]
	if lut[1] != "20.9%" {
		t.Errorf("4x2 LUT = %s, want 20.9%%", lut[1])
	}
	if lut[5] != "43.3%" {
		t.Errorf("16x2 LUT = %s, want 43.3%%", lut[5])
	}
	bram := tbl.Rows[2]
	for i := 1; i < len(bram); i++ {
		if bram[i] != "13.1%" {
			t.Errorf("BRAM col %d = %s", i, bram[i])
		}
	}
}

func TestMakeBlockCached(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	spec := BlockSpec{Txs: 5, Endorsements: 2, Reads: 1, Writes: 1}
	b1, err := env.MakeBlock(spec)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := env.MakeBlock(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("block cache miss for identical spec")
	}
	b3, err := env.MakeBlock(BlockSpec{Txs: 5, Endorsements: 1, Reads: 1, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b3 {
		t.Error("different specs shared a cache entry")
	}
}

func TestMeasureSWValidatesClean(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	bd, err := env.MeasureSW(BlockSpec{Txs: 10, Endorsements: 2, Reads: 1, Writes: 1}, "2of2", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total <= 0 || bd.ECDSACount == 0 {
		t.Errorf("breakdown = %+v", bd)
	}
}
