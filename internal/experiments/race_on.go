//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// adversarial flood gate is a performance assertion, and the detector's
// instrumentation inflates per-signature validation cost enough to skew
// the hostile/baseline goodput ratio; the gate floor is relaxed when it
// is on (see FigAdversarial).
const raceEnabled = true
