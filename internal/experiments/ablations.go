package experiments

import (
	"fmt"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/hwsim"
	"bmac/internal/identity"
	"bmac/internal/metrics"
	"bmac/internal/policy"
)

// Ablations regenerates the design-choice ablation benches called out in
// DESIGN.md:
//
//  1. short-circuit endorsement evaluation on/off (ends_scheduler)
//  2. early abort of invalid transactions on/off (tx pipeline)
//  3. identity removal on/off (protocol bandwidth)
//  4. overlap of CPU ledger commit with hardware validation on/off
func Ablations(e *Env, opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	blockSize := 150
	if o.Quick {
		blockSize = 30
	}
	t := &metrics.Table{Header: []string{"ablation", "on", "off", "effect"}}

	// 1. Short-circuit, 2of3 policy (the paper's showcase).
	spec := BlockSpec{Txs: blockSize, Endorsements: 3, Reads: 2, Writes: 2}
	on, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, "2of3", spec)
	if err != nil {
		return nil, err
	}
	pol2of3, err := policy.Parse("2of3")
	if err != nil {
		return nil, err
	}
	off := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2, DisableShortCircuit: true},
		policy.Compile(pol2of3),
		hwsim.UniformTxProfile(spec.Txs, spec.Endorsements, spec.Reads, spec.Writes))
	t.AddRow("short-circuit (2of3 tps)",
		metrics.FormatTPS(on.Throughput(blockSize)),
		metrics.FormatTPS(off.Throughput(blockSize)),
		fmt.Sprintf("%.2fx", on.Throughput(blockSize)/off.Throughput(blockSize)))

	// 2. Early abort: workload where half the client signatures are bad.
	profiles := hwsim.UniformTxProfile(blockSize, 3, 2, 2)
	for i := range profiles {
		if i%2 == 1 {
			profiles[i].TxSigValid = false
		}
	}
	pol3of3, err := policy.Parse("3of3")
	if err != nil {
		return nil, err
	}
	circ := policy.Compile(pol3of3)
	abortOn := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, circ, profiles)
	// With early abort disabled every endorsement is still verified; model
	// by marking signatures valid but keeping the same workload size.
	allValid := hwsim.UniformTxProfile(blockSize, 3, 2, 2)
	abortOff := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, circ, allValid)
	t.AddRow("early abort (ends verified, 50% bad sigs)",
		fmt.Sprintf("%d", abortOn.EndsVerified),
		fmt.Sprintf("%d", abortOff.EndsVerified),
		fmt.Sprintf("-%d engine calls", abortOff.EndsVerified-abortOn.EndsVerified))

	// 3. Identity removal: protocol bytes with and without the
	// DataRemover sweep.
	b, err := e.MakeBlock(BlockSpec{Txs: blockSize, Endorsements: 2, Reads: 2, Writes: 2})
	if err != nil {
		return nil, err
	}
	withRemoval := bmacproto.NewSender(identity.NewCache(), nil)
	if err := withRemoval.RegisterNetwork(e.Net); err != nil {
		return nil, err
	}
	_, statsOn, err := withRemoval.EncodeBlock(b)
	if err != nil {
		return nil, err
	}
	withoutRemoval := bmacproto.NewSender(identity.NewCache(), nil) // empty sweep list
	_, statsOff, err := withoutRemoval.EncodeBlock(b)
	if err != nil {
		return nil, err
	}
	t.AddRow("identity removal (block KB)",
		fmt.Sprintf("%.1f", float64(statsOn.Bytes)/1024),
		fmt.Sprintf("%.1f", float64(statsOff.Bytes)/1024),
		fmt.Sprintf("%.2fx smaller", float64(statsOff.Bytes)/float64(statsOn.Bytes)))

	// 4. Ledger-commit overlap: with overlap the peer's block period is
	// max(validate, commit); without it, the sum. Model ledger commit as
	// the measured software ledger stage (~ proportional to block bytes).
	hwT, err := bmacTiming(hwsim.Config{TxValidators: 8, VSCCEngines: 2}, "2of2",
		BlockSpec{Txs: blockSize, Endorsements: 2, Reads: 2, Writes: 2})
	if err != nil {
		return nil, err
	}
	ledgerCommit := estimateLedgerCommit(len(block.Marshal(b)))
	overlapOn := maxDur(hwT.BlockLatency(), ledgerCommit)
	overlapOff := hwT.BlockLatency() + ledgerCommit
	t.AddRow("ledger-commit overlap (block period)",
		ms(overlapOn), ms(overlapOff),
		fmt.Sprintf("%.2fx", float64(overlapOff)/float64(overlapOn)))
	return t, nil
}
