//go:build !race

package experiments

// raceEnabled mirrors race_on.go for builds without the race detector.
const raceEnabled = false
