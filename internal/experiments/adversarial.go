package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bmac/internal/chaos"
	"bmac/internal/cluster"
	"bmac/internal/config"
	"bmac/internal/metrics"
)

// validTPS is the honest-goodput figure the adversarial gate compares:
// validated transactions per second up to the moment every honest
// submission had committed. Hostile flag-invalidated traffic never counts
// as throughput, and trailing hostile-only batches (cut on the batch
// timer after the honest load finished) never count as elapsed time.
func validTPS(res *cluster.Result) float64 {
	if res.HonestElapsed <= 0 {
		return 0
	}
	return metrics.Throughput(res.ValidTxs, res.HonestElapsed)
}

// FigAdversarial is the hostile-conditions acceptance suite. It runs the
// sequential-path cluster four ways and gates on each:
//
//   - baseline: honest load only, establishing the valid-tx TPS floor;
//   - flood: 50% of all traffic is adversarial (invalid signatures,
//     garbage envelopes, forged endorsements, replayed double-spends).
//     Valid-tx TPS must stay >= 70% of the baseline — the cheapness of
//     rejection rests on fabcrypto.SigCache caching verification
//     failures, so the run must also show signature-cache hits;
//   - each chaos fault (partition, corruption, slowdisk, leaderkill)
//     under a milder 20% adversary: the fast peers must still end
//     bit-identical (converged), with the p99 commit latency reported.
//
// Any violated gate is returned as an error, so `bmacbench -exp
// adversarial` is red in CI when hostile conditions break the cluster.
func FigAdversarial(opts Options) (*metrics.Table, error) {
	o := opts.withDefaults()
	dir, err := os.MkdirTemp("", "bmac-adversarial-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The flood gate runs with the default (timer-cut) block size: hostile
	// envelopes then ride inside the same blocks as honest traffic and the
	// comparison measures validation cost, not per-block consensus
	// overhead. The fault loop shrinks blocks below so faults land
	// mid-stream.
	cfg := config.Default()
	cfg.Durability.CheckpointEvery = 4
	cfg.Telemetry.Enabled = true
	telDir := telemetryDir(dir)

	base := cluster.Options{
		Mode:     cluster.Sequential,
		Peers:    3,
		Txs:      160,
		Clients:  2,
		Window:   8,
		Accounts: 64,
		Seed:     47,
		Timeout:  90 * time.Second,
	}
	if o.Quick {
		base.Txs = 64
	}

	tbl := &metrics.Table{Header: []string{
		"scenario", "adversary", "blocks", "txs", "valid", "hostile",
		"rejected", "tps", "valid_tps", "p99", "sig$%", "converged",
	}}
	var metricsText string
	run := func(scenario string, copts cluster.Options) (*cluster.Result, error) {
		cfg.Telemetry.TraceFile = filepath.Join(telDir, "adversarial_"+scenario+"_trace.jsonl")
		res, err := cluster.Run(cfg, copts, filepath.Join(dir, scenario))
		if err != nil {
			return nil, fmt.Errorf("adversarial %s: %w", scenario, err)
		}
		metricsText = res.MetricsText
		hostile, rejected := int64(0), 0
		if res.Adversary != nil {
			hostile = res.Adversary.Injected.Total()
			rejected = res.Adversary.RejectedInvalid
		}
		tbl.AddRow(
			scenario,
			fmt.Sprintf("%.0f%%", copts.Adversary*100),
			fmt.Sprintf("%d", res.Blocks),
			fmt.Sprintf("%d", res.Txs),
			fmt.Sprintf("%d", res.ValidTxs),
			fmt.Sprintf("%d", hostile),
			fmt.Sprintf("%d", rejected),
			metrics.FormatTPS(res.TPS),
			metrics.FormatTPS(validTPS(res)),
			fmt.Sprintf("%v", res.SWLatency.P99.Round(time.Microsecond)),
			fmt.Sprintf("%.0f%%", res.SigCacheHitRate*100),
			fmt.Sprintf("%v", res.Converged),
		)
		if !res.Converged {
			return res, fmt.Errorf("adversarial %s: fast peers did not converge", scenario)
		}
		return res, nil
	}

	// Gate 1: honest-goodput floor under a 50% hostile flood.
	baseline, err := run("baseline", base)
	if err != nil {
		return tbl, err
	}
	flood := base
	flood.Adversary = 0.5
	floodRes, err := run("flood", flood)
	if err != nil {
		return tbl, err
	}
	if floodRes.Adversary == nil || floodRes.Adversary.Injected.Total() == 0 {
		return tbl, fmt.Errorf("adversarial flood: nothing injected")
	}
	// The 70% floor is a performance gate. Under the race detector the
	// instrumentation multiplies validation cost, which skews the
	// hostile/baseline goodput ratio, so the floor drops to 40% there —
	// still catching O(n)-rejection regressions without flaking the
	// race shard.
	factor := 0.7
	if raceEnabled {
		factor = 0.4
	}
	floor := factor * validTPS(baseline)
	if got := validTPS(floodRes); got < floor {
		return tbl, fmt.Errorf("adversarial flood: valid-tx TPS %.0f under 50%% hostile load, want >= %.0f%% of baseline %.0f",
			got, factor*100, validTPS(baseline))
	}
	// The flood stays cheap because rejection is O(lookup): the pooled
	// hostile corpora must be hitting the signature cache's failure
	// entries, not re-running curve math per replayed envelope.
	if floodRes.SigCacheHitRate == 0 {
		return tbl, fmt.Errorf("adversarial flood: no signature-cache hits — failure caching is not absorbing the flood")
	}

	// Gate 2: every chaos fault converges bit-identically under a mild
	// adversary riding along. Many small blocks, so the fault strikes
	// mid-stream and the delivery window moves on during a partition.
	cfg.Arch.MaxBlockTxs = 4
	for _, fault := range chaos.Faults() {
		copts := base
		copts.Adversary = 0.2
		copts.Fault = fault
		copts.FaultAfter = 2
		copts.Rate = 900 // paced, so the fault lands mid-submission
		switch fault {
		case chaos.FaultPartition:
			copts.Window = 4 // force the victim past the retained window
		case chaos.FaultSlowDisk:
			copts.Rate = 0
		case chaos.FaultLeaderKill:
			copts.Peers = 2
			copts.RaftNodes = 3
		}
		if _, err := run("fault-"+fault, copts); err != nil {
			return tbl, err
		}
	}

	// Final registry snapshot (counters accumulate across the scenarios).
	if metricsText != "" {
		snap := filepath.Join(telDir, "adversarial_metrics.prom")
		if err := os.WriteFile(snap, []byte(metricsText), 0o644); err != nil {
			return tbl, fmt.Errorf("adversarial: metrics snapshot: %w", err)
		}
	}
	return tbl, nil
}
