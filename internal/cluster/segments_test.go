package cluster

import (
	"path/filepath"
	"testing"

	"bmac/internal/config"
	"bmac/internal/ledger"
)

// Scenario tests for the segmented ledger under cluster load: rotation
// under churn, checkpoint-covered pruning, and the quarantine-refetch
// path where a bit-rotted sealed segment is restored through delivery.

// TestChurnAcrossSegmentBoundariesWithPrune runs the churn scenario with
// a segment budget tiny enough that every peer rotates every block or
// two, and pruning on: the kill, the restart's fast-sync recovery and
// the ledger catch-up all cross segment boundaries, checkpoint-covered
// segments are dropped, and the fast peers still end bit-identical.
func TestChurnAcrossSegmentBoundariesWithPrune(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	cfg.Durability.CheckpointEvery = 3
	res, err := Run(cfg, Options{
		Mode:         Sequential,
		Peers:        3,
		Window:       4,
		Txs:          80,
		Rate:         900,
		Clients:      2,
		Churn:        true,
		ChurnAfter:   2,
		SegmentBytes: 4096,
		Prune:        true,
		Seed:         47,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	requireConverged(t, res)
	if res.Churn == nil || res.Churn.Restarts != 1 {
		t.Fatalf("churn report %+v", res.Churn)
	}
	for _, p := range res.Peers {
		if p.Ledger.Sealed == 0 {
			t.Errorf("%s sealed no segments under a 4KiB budget", p.Name)
		}
		if p.Ledger.Pruned == 0 || p.Ledger.Base == 0 {
			t.Errorf("%s pruned nothing (base %d, pruned %d) despite checkpoints covering it",
				p.Name, p.Ledger.Base, p.Ledger.Pruned)
		}
		if p.Ledger.MissingBlocks != 0 {
			t.Errorf("%s finished with %d missing blocks", p.Name, p.Ledger.MissingBlocks)
		}
	}
	// The restart crossed pruned-away history: the peer must have resumed
	// from a checkpoint at or above its prune floor, then caught up via
	// the orderer's (unpruned) archive.
	if res.Churn.CaughtUp == 0 {
		t.Errorf("churned peer caught up without the ledger source: %+v", res.Churn)
	}
}

// TestChurnCorruptQuarantineRefetch is the quarantine acceptance gate:
// bit-rot strikes the churned peer's oldest sealed segment while it is
// down. The restart's checksum sweep must quarantine the file (not kill
// the peer), the lost range must be re-fetched through the delivery
// service's archive path and restored into a fresh sealed segment, and
// the cluster must end bit-identical — with the victim's whole chain
// readable from disk afterwards.
func TestChurnCorruptQuarantineRefetch(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	cfg.Durability.CheckpointEvery = 3
	dir := t.TempDir()
	res, err := Run(cfg, Options{
		Mode:         Sequential,
		Peers:        3,
		Window:       4,
		Txs:          80,
		Rate:         900,
		Clients:      2,
		Churn:        true,
		ChurnAfter:   4, // enough commits that a segment has sealed pre-kill
		ChurnCorrupt: true,
		SegmentBytes: 4096,
		Seed:         53,
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	requireConverged(t, res)
	if res.Churn == nil || res.Churn.CorruptedFile == "" {
		t.Fatalf("churn report %+v: nothing was corrupted", res.Churn)
	}
	if res.Churn.Quarantined == 0 {
		t.Fatal("corrupted segment was never quarantined")
	}
	if res.Churn.RestoredBlocks == 0 {
		t.Fatal("quarantined range was never restored through delivery")
	}
	var victim *PeerReport
	for i := range res.Peers {
		if res.Peers[i].Name == res.Churn.Peer {
			victim = &res.Peers[i]
		}
	}
	if victim == nil {
		t.Fatalf("victim %q not in peer reports", res.Churn.Peer)
	}
	if victim.Ledger.MissingBlocks != 0 {
		t.Fatalf("victim finished with %d blocks still missing", victim.Ledger.MissingBlocks)
	}

	// The restored archive is real: reopen the victim's directory cold and
	// read every block back, chain-linked.
	led, err := ledger.Open(filepath.Join(dir, res.Churn.Peer), ledger.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if len(led.MissingRanges()) != 0 {
		t.Fatalf("reopened victim still has missing ranges: %v", led.MissingRanges())
	}
	if led.Height() != victim.Height {
		t.Fatalf("reopened victim height %d, want %d", led.Height(), victim.Height)
	}
	for num := led.Base(); num < led.Height(); num++ {
		if _, err := led.Get(num); err != nil {
			t.Fatalf("block %d unreadable after restore: %v", num, err)
		}
	}
}

// TestSlowDiskAcrossSegmentBoundaries layers the transient-write-fault
// disk under a tiny segment budget, so the injected faults land on seal
// (footer) and index writes as well as block appends — the rotation
// crash-window retries — and the victim still converges.
func TestSlowDiskAcrossSegmentBoundaries(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	cfg.Durability.CheckpointEvery = 3
	res, err := Run(cfg, Options{
		Mode:         Sequential,
		Peers:        3,
		Txs:          40,
		Clients:      2,
		Fault:        "slowdisk",
		SegmentBytes: 4096,
		Seed:         59,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	requireConverged(t, res)
	if res.Chaos == nil || res.Chaos.DiskFaults == 0 {
		t.Fatalf("chaos report %+v: no faults injected", res.Chaos)
	}
	if res.Chaos.LedgerRetries == 0 {
		t.Error("victim's ledger absorbed no fault retries")
	}
	var victim *PeerReport
	for i := range res.Peers {
		if res.Peers[i].Name == res.Chaos.Victim {
			victim = &res.Peers[i]
		}
	}
	if victim == nil || victim.Ledger.Sealed == 0 {
		t.Fatalf("victim sealed no segments under the fault (report %+v)", victim)
	}
}
