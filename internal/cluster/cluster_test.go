package cluster

import (
	"testing"
	"time"

	"bmac/internal/config"
)

func testConfig() *config.Config {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 6 // several blocks per run
	return cfg
}

// TestSlowPeerIsolation is the acceptance check of the delivery
// subsystem: with one artificially slow peer among fast ones, the fast
// peers' delivery is unaffected (zero lag when the observer finishes)
// while the slow peer's own backlog shows up as lag/drops, and every
// submitted transaction gets an end-to-end latency sample.
func TestSlowPeerIsolation(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:      Sequential,
		Peers:     3,
		SlowPeers: 1,
		SlowDelay: 100 * time.Millisecond,
		Window:    4,
		Txs:       24,
		Clients:   2,
		Seed:      11,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs != 24 || res.Submitted != 24 {
		t.Fatalf("committed %d/%d txs at the observer", res.Txs, res.Submitted)
	}
	if res.Blocks < 2 {
		t.Fatalf("only %d blocks", res.Blocks)
	}
	if res.SWLatency.Count != 24 || res.SWLatency.P99 <= 0 {
		t.Errorf("latency summary %+v, want 24 samples", res.SWLatency)
	}
	slow, fast := 0, 0
	for _, p := range res.Peers {
		if p.Slow {
			slow++
			if p.Delivery.Lag+p.Delivery.Dropped == 0 {
				t.Errorf("slow peer %s shows no backlog: %+v", p.Name, p.Delivery)
			}
		} else {
			fast++
			if p.Delivery.Lag != 0 {
				t.Errorf("fast peer %s lagging %d blocks behind a slow sibling: isolation broken",
					p.Name, p.Delivery.Lag)
			}
			if p.Delivery.Err != nil {
				t.Errorf("fast peer %s pipe error: %v", p.Name, p.Delivery.Err)
			}
			if p.Blocks != res.Blocks {
				t.Errorf("fast peer %s committed %d/%d blocks", p.Name, p.Blocks, res.Blocks)
			}
		}
	}
	if slow != 1 || fast != 2 {
		t.Fatalf("peer mix slow=%d fast=%d", slow, fast)
	}
}

// TestThreeNodeRaftOrdering drives the full stack over a 3-node Raft
// ordering service with leader submit: the observer peer's in-order
// commit check (inside commitLoop) proves every block arrives exactly
// once and in sequence, and every submitted transaction commits.
func TestThreeNodeRaftOrdering(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:      Sequential,
		Peers:     2,
		RaftNodes: 3,
		Txs:       18,
		Clients:   2,
		Seed:      13,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.RaftNodes != 3 {
		t.Fatalf("raft nodes = %d", res.RaftNodes)
	}
	if res.Txs != 18 {
		t.Fatalf("committed %d/18 txs", res.Txs)
	}
	for _, p := range res.Peers {
		if p.Blocks != res.Blocks || p.Txs != res.Txs {
			t.Errorf("peer %s committed %d blocks / %d txs, observer saw %d/%d",
				p.Name, p.Blocks, p.Txs, res.Blocks, res.Txs)
		}
	}
}

// TestPipelinedAndHybridPaths smoke-runs the two parallel validation
// paths end to end through the delivery service.
func TestPipelinedAndHybridPaths(t *testing.T) {
	for _, mode := range []string{Pipelined, Hybrid} {
		t.Run(mode, func(t *testing.T) {
			cfg := testConfig()
			cfg.StateDB.Capacity = 16
			cfg.StateDB.HostReadLatencyUS = 20
			res, err := Run(cfg, Options{
				Mode:    mode,
				Peers:   2,
				Txs:     12,
				Clients: 1,
				Seed:    17,
			}, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if res.Txs != 12 {
				t.Fatalf("committed %d/12 txs", res.Txs)
			}
			if res.ValidTxs == 0 {
				t.Error("no valid transactions committed")
			}
		})
	}
}

// TestBMacPathLatency includes the hardware peer and checks the second
// observation point produces its own tail-latency digest.
func TestBMacPathLatency(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:     Sequential,
		Peers:    2,
		BMacPeer: true,
		Txs:      12,
		Clients:  1,
		Seed:     19,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.HWLatency.Count != 12 {
		t.Errorf("hardware path recorded %d latency samples, want 12", res.HWLatency.Count)
	}
	if res.BMacDelivery.Name != "bmac" || res.BMacDelivery.Err != nil {
		t.Errorf("bmac delivery stats %+v", res.BMacDelivery)
	}
	if res.BMacDelivery.Blocks == 0 && res.BMacDelivery.Lag == 0 {
		t.Error("bmac pipe shows no traffic")
	}
}

func TestRejectsBadModeAndPeerMix(t *testing.T) {
	if _, err := Run(testConfig(), Options{Mode: "warp", Txs: 4}, t.TempDir()); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(testConfig(), Options{Peers: 2, SlowPeers: 2, Txs: 4}, t.TempDir()); err == nil {
		t.Error("all-slow peer mix accepted")
	}
}
