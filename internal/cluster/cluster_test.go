package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bmac/internal/config"
	"bmac/internal/telemetry"
)

func testConfig() *config.Config {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 6 // several blocks per run
	return cfg
}

// TestSlowPeerIsolation is the acceptance check of the delivery
// subsystem: with one artificially slow peer among fast ones, the fast
// peers' delivery is unaffected (zero lag when the observer finishes)
// while the slow peer's own backlog shows up as lag/drops, and every
// submitted transaction gets an end-to-end latency sample.
func TestSlowPeerIsolation(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:      Sequential,
		Peers:     3,
		SlowPeers: 1,
		SlowDelay: 100 * time.Millisecond,
		Window:    4,
		Txs:       24,
		Clients:   2,
		Seed:      11,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs != 24 || res.Submitted != 24 {
		t.Fatalf("committed %d/%d txs at the observer", res.Txs, res.Submitted)
	}
	if res.Blocks < 2 {
		t.Fatalf("only %d blocks", res.Blocks)
	}
	if res.SWLatency.Count != 24 || res.SWLatency.P99 <= 0 {
		t.Errorf("latency summary %+v, want 24 samples", res.SWLatency)
	}
	slow, fast := 0, 0
	for _, p := range res.Peers {
		if p.Slow {
			slow++
			if p.Delivery.Lag+p.Delivery.Dropped == 0 {
				t.Errorf("slow peer %s shows no backlog: %+v", p.Name, p.Delivery)
			}
		} else {
			fast++
			if p.Delivery.Lag != 0 {
				t.Errorf("fast peer %s lagging %d blocks behind a slow sibling: isolation broken",
					p.Name, p.Delivery.Lag)
			}
			if p.Delivery.Err != nil {
				t.Errorf("fast peer %s pipe error: %v", p.Name, p.Delivery.Err)
			}
			if p.Blocks != res.Blocks {
				t.Errorf("fast peer %s committed %d/%d blocks", p.Name, p.Blocks, res.Blocks)
			}
		}
	}
	if slow != 1 || fast != 2 {
		t.Fatalf("peer mix slow=%d fast=%d", slow, fast)
	}
}

// TestThreeNodeRaftOrdering drives the full stack over a 3-node Raft
// ordering service with leader submit: the observer peer's in-order
// commit check (inside commitLoop) proves every block arrives exactly
// once and in sequence, and every submitted transaction commits.
func TestThreeNodeRaftOrdering(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:      Sequential,
		Peers:     2,
		RaftNodes: 3,
		Txs:       18,
		Clients:   2,
		Seed:      13,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.RaftNodes != 3 {
		t.Fatalf("raft nodes = %d", res.RaftNodes)
	}
	if res.Txs != 18 {
		t.Fatalf("committed %d/18 txs", res.Txs)
	}
	for _, p := range res.Peers {
		if p.Blocks != res.Blocks || p.Txs != res.Txs {
			t.Errorf("peer %s committed %d blocks / %d txs, observer saw %d/%d",
				p.Name, p.Blocks, p.Txs, res.Blocks, res.Txs)
		}
	}
}

// TestPipelinedAndHybridPaths smoke-runs the two parallel validation
// paths end to end through the delivery service.
func TestPipelinedAndHybridPaths(t *testing.T) {
	for _, mode := range []string{Pipelined, Hybrid} {
		t.Run(mode, func(t *testing.T) {
			cfg := testConfig()
			cfg.StateDB.Capacity = 16
			cfg.StateDB.HostReadLatencyUS = 20
			res, err := Run(cfg, Options{
				Mode:    mode,
				Peers:   2,
				Txs:     12,
				Clients: 1,
				Seed:    17,
			}, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if res.Txs != 12 {
				t.Fatalf("committed %d/12 txs", res.Txs)
			}
			if res.ValidTxs == 0 {
				t.Error("no valid transactions committed")
			}
		})
	}
}

// TestBMacPathLatency includes the hardware peer and checks the second
// observation point produces its own tail-latency digest.
func TestBMacPathLatency(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:     Sequential,
		Peers:    2,
		BMacPeer: true,
		Txs:      12,
		Clients:  1,
		Seed:     19,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.HWLatency.Count != 12 {
		t.Errorf("hardware path recorded %d latency samples, want 12", res.HWLatency.Count)
	}
	if res.BMacDelivery.Name != "bmac" || res.BMacDelivery.Err != nil {
		t.Errorf("bmac delivery stats %+v", res.BMacDelivery)
	}
	if res.BMacDelivery.Blocks == 0 && res.BMacDelivery.Lag == 0 {
		t.Error("bmac pipe shows no traffic")
	}
}

func TestRejectsBadModeAndPeerMix(t *testing.T) {
	if _, err := Run(testConfig(), Options{Mode: "warp", Txs: 4}, t.TempDir()); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(testConfig(), Options{Peers: 2, SlowPeers: 2, Txs: 4}, t.TempDir()); err == nil {
		t.Error("all-slow peer mix accepted")
	}
}

// TestChurnConvergence is the acceptance check of the durability
// subsystem: a fast peer is killed mid-run after a few committed blocks,
// restarted from its genesis/periodic checkpoints plus ledger replay,
// caught up through the orderer's ledger-backed delivery source, and must
// finish bit-identical — same height, state hash and commit-hash chain —
// to the peers that never died.
func TestChurnConvergence(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4 // many small blocks, so the window moves on
	cfg.Durability.CheckpointEvery = 3
	res, err := Run(cfg, Options{
		Mode:       Sequential,
		Peers:      3,
		SlowPeers:  0,
		Window:     4,
		Txs:        80,
		Rate:       900, // paced, so the kill lands mid-submission
		Clients:    2,
		Churn:      true,
		ChurnAfter: 2,
		Seed:       17,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn == nil {
		t.Fatal("no churn report")
	}
	if res.Churn.Restarts != 1 {
		t.Errorf("churned peer restarted %d times, want 1", res.Churn.Restarts)
	}
	if res.Churn.RecoveredAt == 0 || res.Churn.RecoveredAt > res.Churn.KillHeight {
		t.Errorf("recovered at height %d after a kill at %d", res.Churn.RecoveredAt, res.Churn.KillHeight)
	}
	if !res.Converged {
		for _, p := range res.Peers {
			t.Logf("%s: height %d state %.16s commit %.16s restarts %d",
				p.Name, p.Height, p.StateHash, p.CommitHash, p.Restarts)
		}
		t.Fatal("peers did not converge after churn")
	}
	var churned *PeerReport
	for i := range res.Peers {
		if res.Peers[i].Restarts > 0 {
			churned = &res.Peers[i]
		}
	}
	if churned == nil {
		t.Fatal("no peer reports a restart")
	}
	if churned.Name == res.Peers[0].Name {
		t.Fatal("the observer must never churn")
	}
	if churned.StateHash != res.Peers[0].StateHash {
		t.Errorf("churned peer state hash %.16s != observer %.16s", churned.StateHash, res.Peers[0].StateHash)
	}
	if churned.Height != res.Peers[0].Height {
		t.Errorf("churned peer height %d != observer %d", churned.Height, res.Peers[0].Height)
	}
	if churned.Txs != res.Submitted {
		t.Errorf("churned peer committed %d/%d txs across its two lives", churned.Txs, res.Submitted)
	}
	// The restart waited until the cursor fell off the window, so part of
	// the lost range must have been streamed from the orderer's ledger.
	if churned.Delivery.CaughtUp == 0 {
		t.Errorf("churned peer caught up without the ledger source: %+v (kill %d, recovered %d)",
			churned.Delivery, res.Churn.KillHeight, res.Churn.RecoveredAt)
	}
}

// TestChurnPipelinedPath runs the churn scenario over the parallel
// pipelined commit engine, proving recovery is backend- and
// engine-agnostic.
func TestChurnPipelinedPath(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	cfg.Durability.CheckpointEvery = 4
	res, err := Run(cfg, Options{
		Mode:    Pipelined,
		Peers:   3,
		Window:  4,
		Txs:     48,
		Rate:    900,
		Clients: 2,
		Churn:   true,
		Seed:    23,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("pipelined peers did not converge after churn")
	}
	if res.Churn == nil || res.Churn.Restarts != 1 {
		t.Fatalf("churn report %+v", res.Churn)
	}
}

// TestChurnRejectsTooFewFastPeers pins the option validation: the
// observer must survive, so churn needs a second fast peer.
func TestChurnRejectsTooFewFastPeers(t *testing.T) {
	_, err := Run(testConfig(), Options{
		Mode:      Sequential,
		Peers:     2,
		SlowPeers: 1,
		Churn:     true,
		Txs:       6,
	}, t.TempDir())
	if err == nil {
		t.Fatal("churn with a single fast peer accepted")
	}
}

// TestTelemetryTrace runs a small cluster with the telemetry plane on and
// checks the acceptance contract of the flight recorder: every committed
// block has a lifecycle trace, the per-stage spans cover >= 90% of summed
// end-to-end latency, the JSONL trace file parses back, and the registry
// exposition carries the retargeted subsystem metrics.
func TestTelemetryTrace(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Telemetry.Enabled = true
	cfg.Telemetry.TraceFile = filepath.Join(dir, "trace.jsonl")
	res, err := Run(cfg, Options{
		Mode:    Sequential,
		Peers:   2,
		Txs:     24,
		Clients: 2,
		Seed:    7,
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs != 24 {
		t.Fatalf("committed %d/24 txs", res.Txs)
	}
	if res.Budget == nil {
		t.Fatal("telemetry on but no latency budget")
	}
	if res.Budget.Blocks != res.Blocks {
		t.Errorf("budget covers %d blocks, observer committed %d", res.Budget.Blocks, res.Blocks)
	}
	if res.Budget.Coverage < 0.9 {
		t.Errorf("stage spans cover %.1f%% of e2e latency, want >= 90%%\n%s",
			100*res.Budget.Coverage, res.Budget)
	}
	known := make(map[string]bool)
	for _, st := range telemetry.Stages() {
		known[st] = true
	}
	stages := make(map[string]bool, len(res.Budget.Stages))
	for _, s := range res.Budget.Stages {
		stages[s.Stage] = true
		if !known[s.Stage] {
			t.Errorf("budget has unknown stage %q", s.Stage)
		}
	}
	// Zero-total stages are omitted (submit is ~0 without pacing, prefetch
	// is 0 on the sequential path); these are structurally nonzero here.
	for _, want := range []string{telemetry.StageEndorse, telemetry.StageOrder, telemetry.StageVSCC} {
		if !stages[want] {
			t.Errorf("budget is missing stage %q\n%s", want, res.Budget)
		}
	}
	if res.TraceEvents == 0 {
		t.Error("no trace events recorded")
	}
	if res.TraceFile == "" {
		t.Fatal("trace file not written")
	}
	data, err := os.ReadFile(res.TraceFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		lines++
	}
	if lines != res.TraceEvents {
		t.Errorf("trace file has %d lines, recorder reported %d events", lines, res.TraceEvents)
	}
	for _, want := range []string{
		"validator_stage_seconds", "validator_blocks_total",
		"orderer_blocks_total", "load_e2e_seconds",
		"delivery_blocks_total", "statedb_reads_total",
	} {
		if !strings.Contains(res.MetricsText, want) {
			t.Errorf("metrics exposition is missing %s", want)
		}
	}
}
