package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/chaos"
	"bmac/internal/config"
	"bmac/internal/ledger"
)

// requireConverged fails the test with a per-peer dump when the fast
// peers did not end bit-identical.
func requireConverged(t *testing.T, res *Result) {
	t.Helper()
	if res.Converged {
		return
	}
	for _, p := range res.Peers {
		t.Logf("%s: height %d state %.16s commit %.16s slow=%v restarts=%d",
			p.Name, p.Height, p.StateHash, p.CommitHash, p.Slow, p.Restarts)
	}
	t.Fatal("fast peers did not converge")
}

// TestAdversarialFloodConvergence is the hostile-load gate: with half of
// all traffic adversarial (invalid signatures, garbage payloads, forged
// endorsements, replayed double-spends), every honest transaction still
// commits, every hostile one is flag-invalidated rather than forking any
// peer, and all fast peers end bit-identical.
func TestAdversarialFloodConvergence(t *testing.T) {
	res, err := Run(testConfig(), Options{
		Mode:      Sequential,
		Peers:     3,
		Txs:       40,
		Clients:   2,
		Adversary: 0.5,
		Seed:      29,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversary == nil {
		t.Fatal("no adversary report")
	}
	st := res.Adversary.Injected
	if st.Total() == 0 {
		t.Fatal("adversary injected nothing")
	}
	if st.BadSig == 0 || st.Garbage == 0 || st.Forged == 0 {
		t.Errorf("hostile mix has empty kinds: %v", st)
	}
	// Every honest tx committed and was latency-matched; hostile traffic
	// rode along in the same blocks.
	if res.SWLatency.Count != res.Submitted {
		t.Errorf("matched %d/%d honest txs", res.SWLatency.Count, res.Submitted)
	}
	if int64(res.Txs) != int64(res.Submitted)+st.Total() {
		t.Errorf("observer committed %d envelopes, want %d honest + %d hostile",
			res.Txs, res.Submitted, st.Total())
	}
	// Hostile envelopes are flag-invalidated: badsig, garbage and forged
	// deterministically so; replays die of MVCC staleness (their reads
	// were versioned before the original committed). Honest transactions
	// can MVCC-conflict too under concurrent load, so the rejected count
	// is a floor, not an equality.
	deterministic := int(st.BadSig + st.Garbage + st.Forged)
	if res.Adversary.RejectedInvalid < deterministic {
		t.Errorf("rejected %d invalid envelopes, want >= %d (badsig+garbage+forged)",
			res.Adversary.RejectedInvalid, deterministic)
	}
	if res.ValidTxs == 0 || res.ValidTxs+res.Adversary.RejectedInvalid != res.Txs {
		t.Errorf("valid %d + rejected %d != committed %d", res.ValidTxs, res.Adversary.RejectedInvalid, res.Txs)
	}
	requireConverged(t, res)
}

// TestPartitionHealConvergence severs the victim peer's delivery link
// mid-run, holds it down past the retained window, heals, and requires
// the victim to catch up (through the orderer's ledger) to a
// bit-identical state.
func TestPartitionHealConvergence(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	res, err := Run(cfg, Options{
		Mode:       Sequential,
		Peers:      3,
		Window:     4,
		Txs:        80,
		Rate:       900,
		Clients:    2,
		Fault:      chaos.FaultPartition,
		FaultAfter: 2,
		Seed:       31,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.Fault != chaos.FaultPartition {
		t.Fatalf("chaos report %+v", res.Chaos)
	}
	if res.Chaos.Heals != 1 {
		t.Errorf("partition healed %d times, want 1", res.Chaos.Heals)
	}
	if res.Chaos.HealedAt <= res.Chaos.StruckAt {
		t.Errorf("healed at height %d, struck at %d: the partition had no duration",
			res.Chaos.HealedAt, res.Chaos.StruckAt)
	}
	if res.Txs != res.Submitted {
		t.Errorf("observer committed %d/%d txs", res.Txs, res.Submitted)
	}
	var victim *PeerReport
	for i := range res.Peers {
		if res.Peers[i].Name == res.Chaos.Victim {
			victim = &res.Peers[i]
		}
	}
	if victim == nil {
		t.Fatalf("victim %q not in peer reports", res.Chaos.Victim)
	}
	if victim.Delivery.Redials == 0 {
		t.Error("victim recovered without redialing: the partition never bit")
	}
	requireConverged(t, res)
}

// TestCorruptionSelfHealsConvergence bit-flips every Nth gossip frame to
// the victim: the receiver rejects each corrupted frame (DecodeErrors),
// the sender's cursor may advance past the torn connection, and the
// gap -> rewind self-heal plus redelivery must still end bit-identical.
func TestCorruptionSelfHealsConvergence(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	res, err := Run(cfg, Options{
		Mode:    Sequential,
		Peers:   3,
		Window:  8,
		Txs:     60,
		Rate:    900,
		Clients: 2,
		Fault:   chaos.FaultCorruption,
		Seed:    37,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.CorruptedFrames == 0 {
		t.Fatalf("chaos report %+v: no frames corrupted", res.Chaos)
	}
	if res.Txs != res.Submitted {
		t.Errorf("observer committed %d/%d txs", res.Txs, res.Submitted)
	}
	requireConverged(t, res)
}

// TestSlowDiskRetriesConvergence injects write latency plus transient
// errors under the victim's ledger and checkpoint writers: the bounded
// retry loops absorb every fault (no data loss, no failed peer) and the
// victim still converges.
func TestSlowDiskRetriesConvergence(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	cfg.Durability.CheckpointEvery = 3
	res, err := Run(cfg, Options{
		Mode:    Sequential,
		Peers:   3,
		Txs:     40,
		Clients: 2,
		Fault:   chaos.FaultSlowDisk,
		Seed:    41,
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.Fault != chaos.FaultSlowDisk {
		t.Fatalf("chaos report %+v", res.Chaos)
	}
	if res.Chaos.DiskWrites == 0 || res.Chaos.DiskFaults == 0 {
		t.Fatalf("disk shim saw %d writes / %d faults: fault never installed",
			res.Chaos.DiskWrites, res.Chaos.DiskFaults)
	}
	if res.Chaos.LedgerRetries == 0 {
		t.Error("victim's ledger absorbed no fault retries")
	}
	requireConverged(t, res)
}

// TestLeaderKillExactlyOnce kills the raft leader mid-run: after the
// re-election and orderer rebind, every submitted transaction is in the
// chain exactly once — verified from the observer's reopened ledger, not
// just counters — and all peers converge.
func TestLeaderKillExactlyOnce(t *testing.T) {
	cfg := config.Default()
	cfg.Arch.MaxBlockTxs = 4
	dir := t.TempDir()
	res, err := Run(cfg, Options{
		Mode:       Sequential,
		Peers:      2,
		RaftNodes:  3,
		Txs:        60,
		Rate:       900,
		Clients:    2,
		Fault:      chaos.FaultLeaderKill,
		FaultAfter: 2,
		Timeout:    90 * time.Second,
		Seed:       43,
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.Fault != chaos.FaultLeaderKill {
		t.Fatalf("chaos report %+v", res.Chaos)
	}
	if res.Chaos.NewLeader < 0 || res.Chaos.NewLeader == res.Chaos.KilledNode {
		t.Fatalf("new leader %d after killing node %d", res.Chaos.NewLeader, res.Chaos.KilledNode)
	}
	if res.Txs != res.Submitted {
		t.Errorf("observer committed %d/%d txs", res.Txs, res.Submitted)
	}
	requireConverged(t, res)

	// No silent loss, no duplicate commit: walk the observer's ledger.
	led, err := ledger.Open(filepath.Join(dir, "peer0"), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	seen := make(map[string]int, res.Submitted)
	for num := uint64(0); num < led.Height(); num++ {
		b, err := led.Get(num)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b.Envelopes {
			id, err := block.EnvelopeTxID(&b.Envelopes[i])
			if err != nil {
				t.Fatal(err)
			}
			seen[id]++
		}
	}
	if len(seen) != res.Submitted {
		t.Fatalf("%d distinct txids in the chain, want %d", len(seen), res.Submitted)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("txid %s committed %d times", id, n)
		}
	}
}

// TestFaultOptionValidation pins the scenario preconditions.
func TestFaultOptionValidation(t *testing.T) {
	if _, err := Run(testConfig(), Options{Fault: "meteor", Txs: 4}, t.TempDir()); err == nil {
		t.Error("unknown fault accepted")
	}
	if _, err := Run(testConfig(), Options{Fault: chaos.FaultPartition, Churn: true, Peers: 3, Txs: 4}, t.TempDir()); err == nil {
		t.Error("churn + fault accepted")
	}
	if _, err := Run(testConfig(), Options{Fault: chaos.FaultLeaderKill, RaftNodes: 1, Txs: 4}, t.TempDir()); err == nil {
		t.Error("leader kill on a 1-node raft accepted")
	}
	if _, err := Run(testConfig(), Options{Fault: chaos.FaultPartition, Peers: 2, SlowPeers: 1, Txs: 4}, t.TempDir()); err == nil {
		t.Error("peer fault with one fast peer accepted")
	}
	if _, err := Run(testConfig(), Options{Adversary: 0.95, Txs: 4}, t.TempDir()); err == nil {
		t.Error("adversary rate 0.95 accepted")
	}
}
