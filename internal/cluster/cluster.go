// Package cluster wires the whole delivery-side stack end to end: an
// open-loop client load (internal/load) submits endorsed transactions to
// a Raft-backed ordering service, whose blocks fan out through the
// non-blocking delivery service (internal/delivery) to N software peers
// over the Gossip wire format and optionally to a BMac peer over the
// custom protocol — the paper §3.5 dual path at cluster scale. Each
// software peer validates with one of the three commit paths (sequential,
// parallel pipelined, pipelined over the hybrid hardware/host database),
// and the harness reports throughput, per-tx end-to-end commit latency
// (p50/p95/p99) and per-peer delivery statistics, including the
// isolation of an artificially slow peer.
//
// Peers are durable: every block lands in a per-peer disk ledger before it
// counts as committed, state checkpoints bound recovery replay, and the
// orderer keeps its own ledger that backs the delivery service's catch-up
// source. The churn scenario (Options.Churn) exercises the whole recovery
// story: one fast peer is killed mid-run, restarted from its checkpoint +
// ledger replay, caught up through the orderer's ledger, and must finish
// with a state hash bit-identical to the peers that never died.
package cluster

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/chaincode"
	"bmac/internal/chaos"
	"bmac/internal/client"
	"bmac/internal/config"
	"bmac/internal/delivery"
	"bmac/internal/endorser"
	"bmac/internal/gossip"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/load"
	"bmac/internal/metrics"
	"bmac/internal/orderer"
	"bmac/internal/peer"
	"bmac/internal/raft"
	"bmac/internal/statedb"
	"bmac/internal/telemetry"
	"bmac/internal/validator"
	"bmac/internal/wire"
)

// Validation path modes for the software peers.
const (
	Sequential = "sequential" // internal/validator, Fabric's baseline pipeline
	Pipelined  = "pipelined"  // internal/pipeline over an in-memory store
	Hybrid     = "hybrid"     // internal/pipeline + prefetch over the §5 hybrid database
)

// Modes lists the validation path modes in presentation order.
func Modes() []string { return []string{Sequential, Pipelined, Hybrid} }

// Options parameterize one cluster run.
type Options struct {
	// Mode selects the software peers' validation path (default
	// Sequential).
	Mode string
	// Peers is the number of software gossip peers (default 3).
	Peers int
	// SlowPeers marks that many peers, taken from the end, as
	// artificially slow (SlowDelay per block on their delivery pipe).
	SlowPeers int
	// SlowDelay is the per-block delay of a slow peer (default 20ms).
	SlowDelay time.Duration
	// SlowPolicy is the overrun policy name for slow peers: "drop"
	// (default, so the run completes while the drop counter shows the
	// overload) or "disconnect". Fast peers always use disconnect.
	SlowPolicy string
	// BMacPeer includes a hardware peer fed over the BMac protocol.
	BMacPeer bool
	// RaftNodes sizes the ordering service's Raft cluster (default 1,
	// the paper's setup; 3 exercises majority replication).
	RaftNodes int
	// Txs is the total number of transactions to submit (default 60).
	Txs int
	// Rate is the aggregate open-loop arrival rate in tx/s (<= 0: no
	// pacing).
	Rate float64
	// Arrival is the inter-arrival distribution (load.Poisson default).
	Arrival string
	// Clients is the number of concurrent load clients (default 2).
	Clients int
	// Window overrides the delivery window (default config/service
	// default).
	Window int
	// Accounts sizes the smallbank state (default 64).
	Accounts int
	// Skew is the smallbank hot-account Zipf exponent (0 = uniform).
	Skew float64
	// Seed makes the workload and arrivals deterministic.
	Seed int64
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
	// Churn kills the last fast peer after it commits ChurnAfter blocks,
	// restarts it from checkpoint + ledger replay once its delivery cursor
	// has fallen off the retained window, and lets the delivery service
	// stream the lost range from the orderer's ledger. Requires at least
	// two fast peers (the observer never churns).
	Churn bool
	// ChurnAfter is how many blocks the churned peer commits before the
	// kill (default 2).
	ChurnAfter int
	// ChurnCorrupt flips a byte in the victim's oldest sealed ledger
	// segment while it is down (requires Churn and a SegmentBytes small
	// enough that segments have sealed). On restart the open-time checksum
	// sweep quarantines the damaged segment; the victim then re-fetches
	// the lost range through delivery (its pipe is rewound to the hole)
	// and must still converge bit-identical.
	ChurnCorrupt bool
	// SegmentBytes overrides the peers' ledger segment rotation budget
	// (default: the config's durability.segment_bytes, then the ledger
	// default). Tiny values force rotation every few blocks.
	SegmentBytes int64
	// Prune lets each peer drop ledger segments wholly covered by every
	// retained checkpoint generation (default: durability.prune).
	Prune bool
	// NoFastSync makes restarted peers replay from the oldest retained
	// checkpoint instead of the newest — the fastsync experiment's
	// full-replay baseline (default: the inverse of durability.fastsync).
	NoFastSync bool
	// CheckpointEvery overrides the peers' state checkpoint cadence in
	// blocks (default: the config's durability.checkpoint_every).
	CheckpointEvery int
	// Adversary injects hostile transactions (invalid signatures, garbage
	// payloads, forged endorsements, replayed double-spends) at this
	// fraction of total submitted traffic (0 disables; see internal/chaos).
	Adversary float64
	// Fault selects a chaos fault scenario layered on the run: one of
	// chaos.Faults() ("" = none). Mutually exclusive with Churn. Leader
	// kill needs RaftNodes >= 3; the peer-level faults (partition,
	// corruption, slow disk) strike the last fast peer, so they need at
	// least two fast peers.
	Fault string
	// FaultAfter is how many blocks the observer commits before the fault
	// strikes (default 2; slow disk is active from the start).
	FaultAfter int
	// Recorder, when set, receives the per-block lifecycle trace (an
	// injected recorder lets bmacnet serve /trace live while the run is in
	// flight). When nil and the config's telemetry plane is enabled, the
	// run creates its own per-run recorder, so block numbers never collide
	// across consecutive runs on one Config.
	Recorder *telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = Sequential
	}
	if o.Peers == 0 {
		o.Peers = 3
	}
	if o.SlowDelay == 0 {
		o.SlowDelay = 20 * time.Millisecond
	}
	if o.SlowPolicy == "" {
		o.SlowPolicy = "drop"
	}
	if o.RaftNodes == 0 {
		o.RaftNodes = 1
	}
	if o.Txs == 0 {
		o.Txs = 60
	}
	if o.Clients == 0 {
		o.Clients = 2
	}
	if o.Accounts == 0 {
		o.Accounts = 64
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
	if o.Churn && o.ChurnAfter == 0 {
		o.ChurnAfter = 2
	}
	if o.Fault != "" && o.FaultAfter == 0 {
		o.FaultAfter = 2
	}
	return o
}

// PeerReport is one software peer's end-of-run summary.
type PeerReport struct {
	Name     string
	Slow     bool
	Blocks   int // blocks committed
	Txs      int // envelopes committed
	ValidTxs int
	Delivery delivery.PeerStats
	// Height is the peer's final ledger height.
	Height uint64
	// Ledger is the peer's segment-store summary: live/sealed segment
	// counts, prune floor, and the session's seal/quarantine/restore/prune
	// counters.
	Ledger ledger.Stats
	// StateHash is the hex digest of the peer's final state database
	// (statedb.SnapshotHash) — equal across peers iff their states are
	// bit-identical.
	StateHash string
	// CommitHash is the hex commit-hash chain value of the peer's last
	// ledger block.
	CommitHash string
	// Restarts counts churn kills this peer recovered from.
	Restarts int
}

// ChurnReport summarizes the churn scenario of one run.
type ChurnReport struct {
	Peer        string
	KillHeight  uint64 // the peer's ledger height at the moment of the kill
	RecoveredAt uint64 // height the restarted peer resumed from (checkpoint + replay)
	CaughtUp    uint64 // blocks the delivery pipe streamed from the orderer's ledger
	Restarts    int
	// CorruptedFile is the sealed segment ChurnCorrupt bit-flipped while
	// the peer was down ("" without ChurnCorrupt); Quarantined and
	// RestoredBlocks count the victim's recovery from it.
	CorruptedFile  string
	Quarantined    int64
	RestoredBlocks int64
}

// AdversaryReport summarizes the hostile traffic of one run.
type AdversaryReport struct {
	// Rate is the configured hostile fraction of total traffic.
	Rate float64
	// Injected breaks the hostile envelopes down by kind.
	Injected chaos.AdversaryStats
	// RejectedInvalid is how many committed envelopes the observer peer
	// flag-invalidated — hostile transactions neutralized without
	// forking any peer.
	RejectedInvalid int
}

// ChaosReport summarizes the chaos fault scenario of one run.
type ChaosReport struct {
	// Fault is the scenario name (chaos.Fault*).
	Fault string
	// Victim is the struck peer (peer faults) or raft node (leader kill).
	Victim string
	// StruckAt is the delivery height when the fault hit.
	StruckAt uint64
	// HealedAt is the delivery height when the partition healed or the
	// orderer was rebound to the new leader (0 for slow disk).
	HealedAt uint64
	// Heals counts partition heal events.
	Heals int64
	// CorruptedFrames counts gossip frames the corruption fault bit-flipped.
	CorruptedFrames int64
	// DiskWrites and DiskFaults count the slow-disk shim's writes and
	// injected transient faults; LedgerRetries is how many of those the
	// victim's ledger absorbed by retry.
	DiskWrites    int64
	DiskFaults    int64
	LedgerRetries int64
	// KilledNode and NewLeader are the raft node ids around a leader kill.
	KilledNode int
	NewLeader  int
}

// Result is the cluster run report.
type Result struct {
	Mode      string
	RaftNodes int
	Submitted int
	Late      int // arrivals that fired behind schedule
	Blocks    int // blocks committed by the observer peer
	Txs       int // envelopes committed by the observer peer
	ValidTxs  int
	Elapsed   time.Duration
	// HonestElapsed is the time from run start until the observer had
	// committed every honest (client-submitted) transaction. With an
	// adversary, Elapsed additionally covers trailing hostile-only batches
	// cut on the batch timer after the honest load completed, so honest
	// goodput comparisons should use HonestElapsed.
	HonestElapsed time.Duration
	TPS           float64 // committed envelopes/s at the observer peer
	// SWLatency is the per-tx end-to-end latency (scheduled arrival ->
	// committed on the observer software peer).
	SWLatency metrics.LatencySummary
	// HWLatency is the same measured at the BMac peer (zero without one).
	HWLatency metrics.LatencySummary
	Peers     []PeerReport
	// BMacDelivery is the hardware path's delivery pipe (zero value
	// without a BMac peer).
	BMacDelivery delivery.PeerStats
	// SigCacheHitRate and ParseCacheHitRate report THIS run's traffic on
	// the shared hot-path caches (crypto.sig_cache_size /
	// hotpath.parse_cache_size), computed from stat deltas so reusing one
	// Config across several runs does not blend their rates. Every peer in
	// the process shares the caches, so repeated signatures and envelopes
	// across the fan-out cost their decode once.
	SigCacheHitRate   float64
	ParseCacheHitRate float64
	// Converged reports whether every fast peer finished with the same
	// ledger height, state hash and commit hash (slow peers may lag or
	// drop by design and are excluded).
	Converged bool
	// Churn is the churn scenario summary (nil when Options.Churn is off).
	Churn *ChurnReport
	// Adversary is the hostile-traffic summary (nil when Options.Adversary
	// is 0).
	Adversary *AdversaryReport
	// Chaos is the fault scenario summary (nil when Options.Fault is "").
	Chaos *ChaosReport
	// Budget is the per-stage latency budget aggregated from the block
	// lifecycle trace: where the end-to-end microseconds went, per stage,
	// with its coverage of summed e2e latency. Nil without telemetry.
	Budget *telemetry.Budget
	// TraceEvents counts the spans the flight recorder captured.
	TraceEvents int
	// TraceFile is the JSONL trace path written (config telemetry.
	// trace_file), empty when none was configured.
	TraceFile string
	// MetricsText is the final Prometheus exposition snapshot of the
	// config's registry ("" without telemetry). Counters are process-
	// cumulative: consecutive runs on one Config accumulate.
	MetricsText string
}

// swPeer is one software gossip peer: listener, commit engine, counters.
type swPeer struct {
	name    string
	slow    bool
	dir     string
	ln      *gossip.Listener
	commit  func(*block.Block) (peer.CommitResult, error)
	close   func() error
	ckpt    func() error // write a state checkpoint at the current height
	store   statedb.KVS
	led     *ledger.Ledger
	next    uint64 // first block the commit loop expects (recovered height)
	started bool   // commitLoop launched (done will be closed)
	done    chan struct{}

	mu         sync.Mutex
	blocks     int
	txs        int
	validTxs   int
	restarts   int
	lastCommit time.Time
	err        error
}

// peerAddr is a mutable gossip dial target: a restarted peer comes back on
// a fresh listener, and the delivery pipe's redial must follow it there.
type peerAddr struct {
	mu   sync.Mutex
	addr string
}

func (a *peerAddr) get() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.addr
}

func (a *peerAddr) set(s string) {
	a.mu.Lock()
	a.addr = s
	a.mu.Unlock()
}

// gossipDialer dials the peer's current address, wrapping the transport
// with the artificial slow-peer delay when one is configured.
func gossipDialer(a *peerAddr, slowDelay time.Duration) func() (delivery.Transport, error) {
	return func() (delivery.Transport, error) {
		tr, err := delivery.DialGossip(a.get())
		if err != nil {
			return nil, err
		}
		if slowDelay > 0 {
			return delivery.Slowed(tr, slowDelay), nil
		}
		return tr, nil
	}
}

// submitWindow is one transaction's SubmitTx call wall-clock window.
type submitWindow struct {
	start, end time.Time
}

// submitTimes shares per-tx submit call windows between the load drivers
// and the orderer's flight-recorder hook.
type submitTimes struct {
	mu    sync.Mutex
	times map[string]submitWindow
}

func (s *submitTimes) record(txid string, w submitWindow) {
	s.mu.Lock()
	s.times[txid] = w
	s.mu.Unlock()
}

// lookup is nil-receiver safe so the orderer hook can probe unconditionally.
func (s *submitTimes) lookup(txid string) (submitWindow, bool) {
	if s == nil {
		return submitWindow{}, false
	}
	s.mu.Lock()
	w, ok := s.times[txid]
	s.mu.Unlock()
	return w, ok
}

// tracedSubmitter wraps a load.Submitter and records each successful submit
// call's window keyed by the returned transaction id. The record lands after
// the inner call returns, so a transaction cut into a block synchronously
// inside SubmitTx can be ordered before its window is visible — the orderer
// hook falls back to contiguous anchors for such transactions.
type tracedSubmitter struct {
	inner load.Submitter
	rec   *submitTimes
}

func (t *tracedSubmitter) SubmitTx() (string, error) {
	start := time.Now()
	txid, err := t.inner.SubmitTx()
	if err != nil {
		return txid, err
	}
	t.rec.record(txid, submitWindow{start: start, end: time.Now()})
	return txid, nil
}

func (p *swPeer) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// deltaRate is hits/(hits+misses) over a counter delta, 0 when idle.
func deltaRate(hits, misses int64) float64 {
	if hits+misses <= 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Run executes one cluster experiment: build, bootstrap, drive, drain,
// report. dir receives the peers' ledgers.
func Run(cfg *config.Config, opts Options, dir string) (*Result, error) {
	opts = opts.withDefaults()
	if opts.SlowPeers >= opts.Peers {
		return nil, fmt.Errorf("cluster: %d slow peers need at least %d peers", opts.SlowPeers, opts.SlowPeers+1)
	}
	if opts.Churn && opts.Peers-opts.SlowPeers < 2 {
		return nil, fmt.Errorf("cluster: churn needs at least 2 fast peers (have %d peers, %d slow)",
			opts.Peers, opts.SlowPeers)
	}
	if opts.ChurnCorrupt && !opts.Churn {
		return nil, errors.New("cluster: ChurnCorrupt requires Churn (corruption strikes while the victim is down)")
	}
	fault, err := chaos.ParseFault(opts.Fault)
	if err != nil {
		return nil, err
	}
	if fault != "" && opts.Churn {
		return nil, errors.New("cluster: Churn and Fault are mutually exclusive scenarios")
	}
	if fault == chaos.FaultLeaderKill && opts.RaftNodes < 3 {
		return nil, fmt.Errorf("cluster: the %s fault needs RaftNodes >= 3 to re-elect (have %d)",
			fault, opts.RaftNodes)
	}
	peerFault := fault == chaos.FaultPartition || fault == chaos.FaultCorruption || fault == chaos.FaultSlowDisk
	if peerFault && opts.Peers-opts.SlowPeers < 2 {
		return nil, fmt.Errorf("cluster: the %s fault needs at least 2 fast peers (have %d peers, %d slow)",
			fault, opts.Peers, opts.SlowPeers)
	}
	slowPolicy, err := delivery.ParsePolicy(opts.SlowPolicy)
	if err != nil {
		return nil, err
	}
	// With telemetry off, the load-driving hot path never reads the statedb
	// access counters, so they are pure per-access overhead: run with
	// counting off. With telemetry on the registry exports them as per-peer
	// gauges, so they stay at their configured setting.
	hot := *cfg
	if !hot.Telemetry.Enabled {
		hot.StateDB.NoCountAccesses = true
	}
	cfg = &hot
	reg := cfg.TelemetryRegistry() // nil when the telemetry plane is off
	rec := opts.Recorder
	if rec == nil && cfg.Telemetry.Enabled {
		rec = telemetry.NewRecorder()
	}
	wire.SetBufferPooling(!cfg.Hotpath.NoMarshalPool)
	// Snapshot the shared caches' counters so the report reflects this
	// run's traffic, not whatever a previous run on the same Config did.
	sigH0, sigM0, _ := cfg.SigCache().Stats()
	parH0, parM0 := cfg.ParseCache().Stats()
	net, err := cfg.BuildNetwork()
	if err != nil {
		return nil, err
	}
	registry := chaincode.NewRegistry(chaincode.Smallbank{}, chaincode.DRM{}, chaincode.SplitPay{})

	// Endorser peers, as in the testbed.
	var endorsers []*endorser.Endorser
	for _, org := range cfg.Orgs {
		for i := 0; i < org.Endorsers; i++ {
			id, err := net.LookupByName(fmt.Sprintf("peer%d.%s", i, org.Name))
			if err != nil {
				return nil, err
			}
			endorsers = append(endorsers, endorser.New(id, statedb.NewStore(), registry))
		}
	}
	if len(endorsers) == 0 {
		return nil, errors.New("cluster: configuration declares no endorser peers")
	}

	// Ordering service: RaftNodes-node cluster, orderer bound to the
	// elected leader (leader submit).
	rc := raft.NewCluster(opts.RaftNodes, 20*time.Millisecond)
	defer rc.Stop()
	leader := rc.WaitForLeader(5 * time.Second)
	if leader == nil {
		return nil, errors.New("cluster: raft leader election timed out")
	}
	ordID, err := net.LookupByName("orderer0." + cfg.Orgs[0].Name)
	if err != nil {
		return nil, fmt.Errorf("cluster: first org needs an orderer: %w", err)
	}
	ord := orderer.New(orderer.Config{
		BatchSize:    cfg.Arch.MaxBlockTxs,
		BatchTimeout: 30 * time.Millisecond,
		Channel:      cfg.Channel,
		Metrics:      telemetry.NewOrdererMetrics(reg),
	}, ordID, leader)
	defer ord.Stop()
	// The orderer's own block ledger: every created block is appended here
	// before it enters the delivery window, so the delivery service can
	// stream arbitrarily old blocks to a peer that fell off the window
	// (the ledger-backed catch-up source).
	ordLed, err := ledger.Open(filepath.Join(dir, "orderer"), ledger.Options{})
	if err != nil {
		return nil, fmt.Errorf("cluster: orderer ledger: %w", err)
	}
	defer ordLed.Close()

	// Chaos fault plane. The victim of a peer-level fault is the last fast
	// peer (the observer never is); the slow-disk shim is installed at peer
	// construction, the partition switch and wire corrupter at delivery
	// registration, and the leader kill strikes the raft node the orderer
	// is bound to.
	faultIdx := -1
	if peerFault {
		faultIdx = opts.Peers - opts.SlowPeers - 1
	}
	var disk *chaos.DiskFault
	if fault == chaos.FaultSlowDisk {
		disk = &chaos.DiskFault{Latency: time.Millisecond, FailEvery: 3}
	}
	leaderIdx := -1
	for i, n := range rc.Nodes {
		if n == leader {
			leaderIdx = i
		}
	}

	// Software peers behind real gossip TCP listeners.
	peers := make([]*swPeer, 0, opts.Peers)
	defer func() {
		for _, p := range peers {
			p.ln.Close() // bmaclint:allow errdiscard (teardown: listener close error is unactionable)
			if p.started {
				<-p.done // commitLoop exits once the intake channel closes
			}
			p.close()
		}
	}()
	// Per-peer state-database access counters, exported as scrape-time
	// gauges (a churn restart re-registers the replacement store under the
	// same name).
	registerStateDB := func(p *swPeer) {
		if reg == nil {
			return
		}
		st := p.store
		reg.GaugeFunc(telemetry.Name("statedb_reads_total", "peer", p.name),
			func() int64 { r, _ := st.AccessCounts(); return int64(r) })
		reg.GaugeFunc(telemetry.Name("statedb_writes_total", "peer", p.name),
			func() int64 { _, w := st.AccessCounts(); return int64(w) })
	}
	for i := 0; i < opts.Peers; i++ {
		var df *chaos.DiskFault
		if i == faultIdx {
			df = disk // nil unless the slow-disk fault is selected
		}
		p, err := newSWPeer(cfg, opts, i, filepath.Join(dir, fmt.Sprintf("peer%d", i)), df)
		if err != nil {
			return nil, err
		}
		peers = append(peers, p)
		registerStateDB(p)
	}

	// Optional BMac peer over the protocol path.
	var (
		bmacPeer *peer.BMacPeer
		sender   *bmacproto.Sender
	)
	if opts.BMacPeer {
		coreCfg, err := cfg.CoreConfig()
		if err != nil {
			return nil, err
		}
		bmacPeer, err = peer.NewBMacPeer(coreCfg, cfg.Arch.DBCapacity, filepath.Join(dir, "bmac_peer"))
		if err != nil {
			return nil, err
		}
		defer bmacPeer.Close()
		sender = bmacproto.NewSender(identity.NewCache(), bmacproto.NewMemLink(bmacPeer.Receiver))
		if err := sender.RegisterNetwork(net); err != nil {
			return nil, err
		}
	}

	// Bootstrap genesis state everywhere.
	w := client.SmallbankWorkload{Accounts: opts.Accounts, Skew: opts.Skew}
	stores := make([]statedb.KVS, 0, len(peers)+len(endorsers))
	for _, p := range peers {
		stores = append(stores, p.store)
	}
	for _, e := range endorsers {
		stores = append(stores, e.Store())
	}
	if err := client.Bootstrap(w, registry, stores...); err != nil {
		return nil, err
	}
	if bmacPeer != nil {
		if err := client.BootstrapHardware(w, registry, peers[0].store, bmacPeer.Proc.DB()); err != nil {
			return nil, err
		}
	}
	// Genesis checkpoint: the bootstrap state exists in no ledger block,
	// so a peer restarted before its first periodic checkpoint must find
	// it on disk.
	for _, p := range peers {
		if err := p.ckpt(); err != nil {
			return nil, fmt.Errorf("cluster: genesis checkpoint for %s: %w", p.name, err)
		}
	}

	// Open-loop load.
	gen, err := load.New(load.Options{
		Rate:    opts.Rate,
		Arrival: opts.Arrival,
		Count:   opts.Txs,
		Seed:    opts.Seed,
		Metrics: telemetry.NewLoadMetrics(reg),
	})
	if err != nil {
		return nil, err
	}
	clientID, err := net.LookupByName("client0." + cfg.Orgs[0].Name)
	if err != nil {
		return nil, fmt.Errorf("cluster: first org needs a client: %w", err)
	}
	// The adversary taps the honest path to the orderer (capturing
	// envelopes for its replay corpus) and wraps every load client, so
	// hostile traffic rides the same open-loop schedule as honest traffic
	// at the configured fraction.
	var adv *chaos.Adversary
	var ordSubmit client.Submitter = ord
	if opts.Adversary > 0 {
		adv, err = chaos.NewAdversary(chaos.AdversaryOptions{
			Rate:    opts.Adversary,
			Seed:    opts.Seed,
			Channel: cfg.Channel,
		}, ord)
		if err != nil {
			return nil, err
		}
		ordSubmit = adv.Tap(ord)
	}
	drivers := make([]load.Submitter, opts.Clients)
	for i := range drivers {
		drivers[i] = client.NewDriver(clientID, endorsers, ordSubmit, w, cfg.Channel, opts.Seed+int64(100+i))
		if adv != nil {
			drivers[i] = adv.Wrap(drivers[i])
		}
	}
	// The flight recorder anchors the submit/endorse spans on per-tx submit
	// call windows; wrap every driver with a recording shim.
	var subTimes *submitTimes
	if rec != nil {
		subTimes = &submitTimes{times: make(map[string]submitWindow)}
		for i := range drivers {
			drivers[i] = &tracedSubmitter{inner: drivers[i], rec: subTimes}
		}
	}

	// Delivery service: every path is one per-peer pipe, with the
	// orderer's ledger as the catch-up source behind the window. Dial
	// targets are mutable so a churned peer's pipe follows it to the
	// listener it restarts on.
	window := opts.Window
	if window == 0 {
		window = cfg.Delivery.Window
	}
	churnIdx := -1
	if opts.Churn {
		churnIdx = opts.Peers - opts.SlowPeers - 1 // last fast peer; observer (0) never churns
	}
	svc := delivery.NewService(delivery.Options{
		Window:   window,
		History:  delivery.LedgerSource(ordLed),
		Registry: reg,
	})
	defer svc.Close()
	addrs := make([]*peerAddr, opts.Peers)
	var (
		partSwitch *chaos.Switch
		corrupter  *chaos.Corrupter
	)
	for i, p := range peers {
		addrs[i] = &peerAddr{addr: p.ln.Addr()}
		slowDelay := time.Duration(0)
		po := delivery.PeerOptions{
			Policy:     delivery.Disconnect,
			MaxRedials: cfg.Delivery.MaxRedials,
		}
		if p.slow {
			slowDelay = opts.SlowDelay
			po.Policy = slowPolicy
		}
		if i == churnIdx {
			// The churned peer is down for a while; give its pipe a long
			// redial budget so it survives until the restart.
			po.MaxRedials = 4000
			po.RedialWait = 5 * time.Millisecond
		}
		po.Dial = gossipDialer(addrs[i], slowDelay)
		if i == faultIdx {
			switch fault {
			case chaos.FaultPartition:
				// The victim's link runs through a severable switch. While
				// severed, sends and redials fail; the exponential backoff
				// cap keeps the pipe from spinning hot against the dead
				// link, and the long budget keeps it alive until the heal.
				partSwitch = &chaos.Switch{}
				po.MaxRedials = 4000
				po.RedialWait = 5 * time.Millisecond
				po.Dial = chaos.SeverableDialer(po.Dial, partSwitch)
			case chaos.FaultCorruption:
				// Every Nth frame to the victim is bit-flipped; the
				// receiver's decode rejection closes the connection, and
				// the peer self-heals through the gap -> Rewind path.
				corrupter = chaos.NewCorrupter(7)
				po.MaxRedials = 4000
				po.RedialWait = 2 * time.Millisecond
				po.Dial = corrupter.Dialer(addrs[i].get())
			}
		}
		t, err := po.Dial()
		if err != nil {
			return nil, err
		}
		if err := svc.Register(peers[i].name, t, po); err != nil {
			return nil, err
		}
	}
	if sender != nil {
		if err := svc.Register("bmac", delivery.NewBMacTransport(sender), delivery.PeerOptions{}); err != nil {
			return nil, err
		}
	}
	// Chaos-plane counters on the scrape endpoint: hostile traffic volume,
	// how much of it the observer flag-invalidated, and per-fault activity.
	if reg != nil {
		if adv != nil {
			reg.GaugeFunc("chaos_injected_hostile_total", func() int64 { return adv.Stats().Total() })
			obs := peers[0] // the observer never churns; the pointer is stable
			reg.GaugeFunc("chaos_rejected_invalid_total", func() int64 {
				obs.mu.Lock()
				defer obs.mu.Unlock()
				return int64(obs.txs - obs.validTxs)
			})
		}
		if partSwitch != nil {
			reg.GaugeFunc("chaos_partition_heals_total", partSwitch.Heals)
		}
		if corrupter != nil {
			reg.GaugeFunc("chaos_corrupted_frames_total", func() int64 { _, f := corrupter.Stats(); return f })
		}
		if disk != nil {
			reg.GaugeFunc("chaos_disk_fault_retries_total", func() int64 { _, f := disk.Stats(); return f })
		}
	}

	// The orderer's only hook appends the block to the orderer ledger
	// (feeding the catch-up source), records the block's tx ids for the
	// hardware latency join, and publishes into the delivery window; it
	// never blocks on a peer.
	var (
		txMu     sync.Mutex
		blockTxs = make(map[uint64][]string)
	)
	ord.OnDeliver(func(b *block.Block) error {
		if _, err := ordLed.Commit(b); err != nil {
			return fmt.Errorf("orderer ledger: %w", err)
		}
		if opts.BMacPeer {
			ids := make([]string, 0, len(b.Envelopes))
			for i := range b.Envelopes {
				if id, err := block.EnvelopeTxID(&b.Envelopes[i]); err == nil {
					ids = append(ids, id)
				}
			}
			txMu.Lock()
			blockTxs[b.Header.Number] = ids
			txMu.Unlock()
		}
		if rec == nil {
			return svc.Publish(b)
		}
		// Flight recorder: the block exists now, so its pre-delivery
		// lifecycle is known. submit = first scheduled arrival → first
		// submit call, endorse = submit calls in flight, order = last
		// submit returned → block created (batch wait + raft + signing),
		// publish = fan-out hand-off. The spans are anchored end-to-start
		// so the trace tiles the timeline without gaps.
		now := time.Now()
		num := b.Header.Number
		var minSched, minStart, maxEnd time.Time
		for i := range b.Envelopes {
			id, err := block.EnvelopeTxID(&b.Envelopes[i])
			if err != nil {
				continue
			}
			if w, ok := subTimes.lookup(id); ok {
				if minStart.IsZero() || w.start.Before(minStart) {
					minStart = w.start
				}
				if w.end.After(maxEnd) {
					maxEnd = w.end
				}
			}
			if t0, ok := gen.SubmitTime(id); ok {
				if minSched.IsZero() || t0.Before(minSched) {
					minSched = t0
				}
			}
		}
		// A submit record can trail its transaction into a block (the
		// generator stores it after SubmitTx returns); fall back so the
		// trace stays contiguous rather than dropping the block.
		if minStart.IsZero() {
			minStart = now
		}
		if minSched.IsZero() {
			minSched = minStart
		}
		if maxEnd.IsZero() {
			maxEnd = minStart
		}
		rec.Stamp(num, telemetry.StageSubmit, "", minSched, minStart, len(b.Envelopes))
		rec.Stamp(num, telemetry.StageEndorse, "", minStart, maxEnd, 0)
		rec.Stamp(num, telemetry.StageOrder, "", maxEnd, now, 0)
		pubStart := time.Now()
		err := svc.Publish(b)
		rec.Stamp(num, telemetry.StagePublish, "", pubStart, time.Now(), 0)
		return err
	})

	// Peer commit loops. Peer 0 is the observer: it records end-to-end
	// latency and plays the committer for the endorser world state. Fast
	// peers get a rewind hook: a delivery gap (frames lost when wire
	// corruption tore the connection down after the sender's cursor
	// advanced) moves the pipe cursor back for redelivery instead of
	// silently skipping blocks.
	rewindFor := func(p *swPeer) func(uint64) error {
		if p.slow {
			return nil // a slow DropBlocks peer skips by design
		}
		name := p.name
		return func(seq uint64) error { return svc.Rewind(name, seq) }
	}
	for i, p := range peers {
		p.started = true
		go p.commitLoop(i == 0, gen, endorsers, rec, rewindFor(p))
	}
	type hwObs struct {
		txid string
		at   time.Time
	}
	var (
		hwMu      sync.Mutex
		hwSamples metrics.Samples
		hwBlocks  uint64
		hwPending []hwObs // commits observed before the submit record landed
	)
	if bmacPeer != nil {
		go func() {
			for res := range bmacPeer.Results() {
				at := time.Now()
				txMu.Lock()
				ids := blockTxs[res.BlockNum]
				txMu.Unlock()
				hwMu.Lock()
				hwBlocks++
				for _, id := range ids {
					if t0, ok := gen.SubmitTime(id); ok {
						hwSamples.Add(at.Sub(t0))
					} else {
						hwPending = append(hwPending, hwObs{id, at})
					}
				}
				hwMu.Unlock()
			}
		}()
	}

	// The churn scenario, driven from the wait loop below: (1) once the
	// victim has committed ChurnAfter blocks, kill it — close its
	// listener, drain its commit loop, release its ledger; (2) once its
	// delivery cursor has fallen off the retained window (so the restart
	// must stream from the orderer's ledger), reopen the same directory:
	// checkpoint + ledger replay rebuild its state, the delivery pipe is
	// rewound to the recovered height, and the peer rejoins.
	var (
		churnPhase    = 0 // 0 armed, 1 down, 2 rejoined (or no churn)
		killHeight    uint64
		recoveredAt   uint64
		corruptedFile string
	)
	if churnIdx < 0 {
		churnPhase = 2
	}
	churnStep := func(runOver bool) error {
		if churnPhase == 2 {
			return nil
		}
		cp := peers[churnIdx]
		if churnPhase == 0 {
			cp.mu.Lock()
			blocks := cp.blocks
			cp.mu.Unlock()
			if blocks < opts.ChurnAfter && !runOver {
				return nil
			}
			cp.ln.Close() // bmaclint:allow errdiscard (teardown: listener close error is unactionable)
			if cp.started {
				<-cp.done // commit loop drains its intake, then exits
			}
			killHeight = cp.led.Height()
			if err := cp.close(); err != nil {
				return fmt.Errorf("cluster: churn kill %s: %w", cp.name, err)
			}
			// Bit-rot strikes while the peer is down: flip a byte in its
			// oldest sealed segment. The restart's open-time checksum sweep
			// quarantines the file and the rewind below streams the lost
			// range back through delivery.
			if opts.ChurnCorrupt {
				f, err := chaos.CorruptSealedSegment(cp.dir)
				if err != nil {
					return fmt.Errorf("cluster: churn corrupt %s: %w", cp.name, err)
				}
				corruptedFile = filepath.Base(f)
			}
			churnPhase = 1
			return nil
		}
		// Phase 1: hold the peer down until catching up needs the ledger,
		// not just the window (unless the run is already over).
		if !runOver && svc.Height() < killHeight+uint64(window)+2 {
			return nil
		}
		np, err := newSWPeer(cfg, opts, churnIdx, cp.dir, nil)
		if err != nil {
			return fmt.Errorf("cluster: churn restart %s: %w", cp.name, err)
		}
		recoveredAt = np.next
		// Carry the pre-crash counters so the report covers the peer's
		// whole run.
		cp.mu.Lock()
		np.blocks, np.txs, np.validTxs = cp.blocks, cp.txs, cp.validTxs
		np.restarts = cp.restarts + 1
		np.lastCommit = cp.lastCommit
		cp.mu.Unlock()
		peers[churnIdx] = np
		// The replacement store's access counters take over the peer's
		// scrape-time gauges.
		registerStateDB(np)
		// The deliver protocol's catch-up request: resume this peer's pipe
		// from the height it recovered to — or from the first quarantined
		// hole below it, so the redelivered range doubles as the archive
		// refetch that Restore backfills. Rewind MUST land before the new
		// address is published — a pipe that reconnected first would
		// deliver from its stale pre-kill cursor, the recovered peer would
		// see a gap and stop committing, and a racing send could clobber
		// the moved cursor.
		rewindTo := np.next
		if mr := np.led.MissingRanges(); len(mr) > 0 && mr[0].First < rewindTo {
			rewindTo = mr[0].First
		}
		if err := svc.Rewind(np.name, rewindTo); err != nil {
			return fmt.Errorf("cluster: churn restart %s: %w", np.name, err)
		}
		addrs[churnIdx].set(np.ln.Addr())
		np.started = true
		go np.commitLoop(false, gen, endorsers, rec, rewindFor(np))
		churnPhase = 2
		return nil
	}

	// The chaos fault scenario, driven from the same wait loop. Partition:
	// sever the victim's link once delivery clears FaultAfter blocks, hold
	// it severed until the victim has fallen more than the retained window
	// behind (so the heal exercises redial + ledger catch-up, not just a
	// reconnect), then heal. Leader kill: stop the raft node the orderer is
	// bound to, poll the re-election, rebind the orderer to the new leader
	// (re-proposing cut-but-unapplied batches exactly once). Corruption and
	// slow disk run from the start and need no phase machinery.
	var (
		faultPhase   = 2 // 0 armed, 1 struck, 2 played out (or no phased fault)
		struckAt     uint64
		healedAt     uint64
		newLeaderIdx = -1
	)
	if fault == chaos.FaultPartition || fault == chaos.FaultLeaderKill {
		faultPhase = 0
	}
	faultStep := func(runOver bool) error {
		switch {
		case faultPhase == 2:
			return nil
		case fault == chaos.FaultPartition:
			if faultPhase == 0 {
				if svc.Height() < uint64(opts.FaultAfter) && !runOver {
					return nil
				}
				struckAt = svc.Height()
				partSwitch.Sever()
				faultPhase = 1
				return nil
			}
			if !runOver && svc.Height() < struckAt+uint64(window)+2 {
				return nil
			}
			partSwitch.Heal()
			healedAt = svc.Height()
			faultPhase = 2
			return nil
		case fault == chaos.FaultLeaderKill:
			if faultPhase == 0 {
				if svc.Height() < uint64(opts.FaultAfter) && !runOver {
					return nil
				}
				struckAt = svc.Height()
				rc.Nodes[leaderIdx].Stop()
				faultPhase = 1
				return nil
			}
			// Poll the election with a short per-step timeout so the wait
			// loop keeps servicing its other checks; until the rebind lands
			// the orderer's cut path parks batches as pending (ErrNotLeader
			// is swallowed as a transient) and the timer keeps retrying.
			nl, err := chaos.WaitForNewLeader(rc, leaderIdx, 10*time.Millisecond)
			if err != nil {
				return nil // election still in progress; retry next tick
			}
			if err := ord.Rebind(nl); err != nil {
				return nil // the new leader is still settling; retry next tick
			}
			for i, n := range rc.Nodes {
				if n == nl {
					newLeaderIdx = i
				}
			}
			healedAt = svc.Height()
			faultPhase = 2
			return nil
		}
		return nil
	}

	// Drive the load concurrently with the wait loop (so churn can strike
	// mid-submission), then wait for the observer peer to commit every
	// submitted transaction (valid or invalidated — each lands in a block
	// either way).
	start := time.Now()
	loadErr := make(chan error, 1)
	go func() { loadErr <- gen.Run(drivers) }()
	var (
		runErr     error
		loadDone   bool
		submitted  int
		late       int
		honestDone time.Time
	)
	deadline := time.Now().Add(opts.Timeout)
	for {
		if !loadDone {
			select {
			case runErr = <-loadErr:
				loadDone = true
				submitted, _, late = gen.Stats()
			default:
			}
		}
		if err := churnStep(false); err != nil {
			return nil, err
		}
		if err := faultStep(false); err != nil {
			return nil, err
		}
		peers[0].mu.Lock()
		committed := peers[0].txs
		err := peers[0].err
		peers[0].mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: observer peer: %w", err)
		}
		// With an adversary the observer's envelope count includes hostile
		// traffic, so completion is judged by honest transactions matched
		// back to their submissions.
		if adv != nil {
			_, committed, _ = gen.Stats()
		}
		if loadDone && committed >= submitted {
			honestDone = time.Now()
			break
		}
		if oerr := ord.Err(); oerr != nil {
			return nil, fmt.Errorf("cluster: orderer: %w", oerr)
		}
		// A dead pipe on a fast peer is fatal; a slow peer is allowed to
		// die of its configured policy (that is the experiment).
		for _, st := range svc.Stats() {
			if st.Err != nil && !isSlowName(peers, st.Name) {
				return nil, fmt.Errorf("cluster: delivery to %s: %w", st.Name, st.Err)
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: observer committed %d/%d txs after %v",
				committed, submitted, opts.Timeout)
		}
		time.Sleep(time.Millisecond)
	}
	// Finish the churn scenario if the run completed before it played out
	// (tiny runs): kill + immediate restart still exercises recovery.
	for churnPhase != 2 {
		if err := churnStep(true); err != nil {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, errors.New("cluster: churn scenario did not complete in time")
		}
	}
	// Same for a phased chaos fault (partition heal, leader re-election):
	// even a run that finished before the fault window still plays the
	// strike + recovery through so the convergence gate means something.
	for faultPhase != 2 {
		if err := faultStep(true); err != nil {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, errors.New("cluster: chaos fault scenario did not complete in time")
		}
		time.Sleep(time.Millisecond)
	}
	// Snapshot delivery stats now, while the contrast is visible: the
	// observer has everything, so a fast peer's lag is ~0 while the slow
	// peer still shows its backlog and drops.
	stats := make(map[string]delivery.PeerStats, opts.Peers+1)
	for _, st := range svc.Stats() {
		stats[st.Name] = st
	}
	// Let the remaining (fast and slow) pipes finish their backlog; the
	// slow peer's drop counter, not the drain, absorbs its overload.
	drainErr := svc.Drain(opts.Timeout)
	// Zero delivery lag only means the frames reached the sockets; wait
	// for every fast peer's ledger to reach the published height. The
	// target is re-read each pass — with an adversary, trailing
	// hostile-only batches can still cut on the batch timer after the
	// honest load completes, so the loop additionally requires the height
	// to hold still briefly before calling the run settled. A peer stalled
	// short of the target (a corrupted tail frame with no follow-on block
	// to expose the gap to its commit loop) gets its delivery cursor
	// rewound to its own height to force redelivery.
	settleDeadline := time.Now().Add(opts.Timeout)
	stableSince := time.Now()
	lastTarget := svc.Height()
	lastH := make(map[string]uint64, len(peers))
	lastHAt := make(map[string]time.Time, len(peers))
	for _, p := range peers {
		if !p.slow {
			lastH[p.name], lastHAt[p.name] = p.led.Height(), time.Now()
		}
	}
	for {
		target := svc.Height()
		if target != lastTarget {
			lastTarget = target
			stableSince = time.Now()
		}
		allAt := true
		for _, p := range peers {
			if p.slow {
				continue
			}
			p.mu.Lock()
			perr := p.err
			p.mu.Unlock()
			if perr != nil {
				continue // dead peers are reported by the convergence gate
			}
			st := p.led.Stats()
			h := st.Height
			// A quarantined hole below the height also blocks settling:
			// the archive refetch must complete before the convergence
			// gate can call the run bit-identical.
			if h >= target && st.MissingBlocks == 0 {
				continue
			}
			allAt = false
			// Progress is commit height plus restored archive blocks, so a
			// peer mid-backfill does not read as stalled.
			prog := h + uint64(st.RestoredBlocks)
			if lastH[p.name] != prog {
				lastH[p.name], lastHAt[p.name] = prog, time.Now()
			} else if time.Since(lastHAt[p.name]) > 200*time.Millisecond {
				to := h
				if mr := p.led.MissingRanges(); len(mr) > 0 {
					to = mr[0].First
				}
				svc.Rewind(p.name, to) // bmaclint:allow errdiscard (best-effort nudge; the settle deadline bounds a stuck peer)
				lastHAt[p.name] = time.Now()
			}
		}
		if allAt && (adv == nil || time.Since(stableSince) > 150*time.Millisecond) {
			break
		}
		if time.Now().After(settleDeadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if bmacPeer != nil {
		// The protocol sender returned as soon as packets entered the
		// link; wait for the hardware pipeline to finish the tail.
		flushDeadline := time.Now().Add(opts.Timeout)
		for {
			hwMu.Lock()
			done := hwBlocks >= svc.Height()
			hwMu.Unlock()
			if done || time.Now().After(flushDeadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Report.
	sigH1, sigM1, _ := cfg.SigCache().Stats()
	parH1, parM1 := cfg.ParseCache().Stats()
	res := &Result{
		Mode:              opts.Mode,
		RaftNodes:         opts.RaftNodes,
		Submitted:         submitted,
		Late:              late,
		SWLatency:         gen.Latency(),
		SigCacheHitRate:   deltaRate(sigH1-sigH0, sigM1-sigM0),
		ParseCacheHitRate: deltaRate(parH1-parH0, parM1-parM0),
	}
	peers[0].mu.Lock()
	res.Blocks = peers[0].blocks
	res.Txs = peers[0].txs
	res.ValidTxs = peers[0].validTxs
	res.Elapsed = peers[0].lastCommit.Sub(start)
	res.HonestElapsed = honestDone.Sub(start)
	peers[0].mu.Unlock()
	if res.Elapsed > 0 {
		res.TPS = metrics.Throughput(res.Txs, res.Elapsed)
	}
	// Final per-peer delivery stats (the early snapshot preserved the
	// slow-peer contrast; catch-up counters only settle after the drain).
	finalStats := make(map[string]delivery.PeerStats, opts.Peers+1)
	for _, st := range svc.Stats() {
		finalStats[st.Name] = st
	}
	for _, p := range peers {
		p.mu.Lock()
		pr := PeerReport{
			Name:     p.name,
			Slow:     p.slow,
			Blocks:   p.blocks,
			Txs:      p.txs,
			ValidTxs: p.validTxs,
			Delivery: stats[p.name],
			Restarts: p.restarts,
		}
		p.mu.Unlock()
		pr.Delivery.CaughtUp = finalStats[p.name].CaughtUp
		pr.Height = p.led.Height()
		pr.Ledger = p.led.Stats()
		pr.StateHash = hex.EncodeToString(statedb.SnapshotHash(p.store.Snapshot()))
		pr.CommitHash = hex.EncodeToString(p.led.LastCommitHash())
		res.Peers = append(res.Peers, pr)
	}
	// Convergence: every fast peer must have reached an identical chain
	// and state; slow peers may lag or drop by design.
	res.Converged = true
	ref := -1
	for i := range res.Peers {
		if res.Peers[i].Slow {
			continue
		}
		if ref < 0 {
			ref = i
			continue
		}
		if res.Peers[i].Height != res.Peers[ref].Height ||
			res.Peers[i].StateHash != res.Peers[ref].StateHash ||
			res.Peers[i].CommitHash != res.Peers[ref].CommitHash {
			res.Converged = false
		}
	}
	if churnIdx >= 0 {
		vs := peers[churnIdx].led.Stats()
		res.Churn = &ChurnReport{
			Peer:           peers[churnIdx].name,
			KillHeight:     killHeight,
			RecoveredAt:    recoveredAt,
			CaughtUp:       finalStats[peers[churnIdx].name].CaughtUp,
			Restarts:       peers[churnIdx].restarts,
			CorruptedFile:  corruptedFile,
			Quarantined:    vs.Quarantined,
			RestoredBlocks: vs.RestoredBlocks,
		}
	}
	if adv != nil {
		res.Adversary = &AdversaryReport{
			Rate:            opts.Adversary,
			Injected:        adv.Stats(),
			RejectedInvalid: res.Txs - res.ValidTxs,
		}
	}
	if fault != "" {
		cr := &ChaosReport{Fault: fault, StruckAt: struckAt, HealedAt: healedAt}
		if fault == chaos.FaultLeaderKill {
			cr.Victim = fmt.Sprintf("raft%d", leaderIdx)
			cr.KilledNode = leaderIdx
			cr.NewLeader = newLeaderIdx
		} else {
			victim := peers[faultIdx]
			cr.Victim = victim.name
			cr.LedgerRetries = victim.led.FaultRetries()
			if partSwitch != nil {
				cr.Heals = partSwitch.Heals()
			}
			if corrupter != nil {
				_, cr.CorruptedFrames = corrupter.Stats()
			}
			if disk != nil {
				cr.DiskWrites, cr.DiskFaults = disk.Stats()
			}
		}
		res.Chaos = cr
	}
	if bmacPeer != nil {
		res.BMacDelivery = stats["bmac"]
		hwMu.Lock()
		// Resolve commits that raced ahead of their submit record; every
		// submission is recorded by now (gen.Run returned).
		for _, o := range hwPending {
			if t0, ok := gen.SubmitTime(o.txid); ok {
				hwSamples.Add(o.at.Sub(t0))
			}
		}
		hwPending = nil
		res.HWLatency = hwSamples.Summary()
		hwMu.Unlock()
	}
	if rec != nil {
		res.Budget = rec.Budget()
		res.TraceEvents = rec.Len()
		if path := cfg.Telemetry.TraceFile; path != "" {
			f, err := os.Create(path)
			if err != nil {
				return res, fmt.Errorf("cluster: trace file: %w", err)
			}
			werr := rec.WriteJSONL(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return res, fmt.Errorf("cluster: trace file: %w", werr)
			}
			res.TraceFile = path
		}
	}
	if reg != nil {
		res.MetricsText = reg.Text()
	}
	if runErr != nil {
		return res, fmt.Errorf("cluster: load: %w", runErr)
	}
	if drainErr != nil {
		return res, drainErr
	}
	return res, nil
}

// stampBlock records the observer-side lifecycle spans of one committed
// block. The deliver span runs from the orderer's publish hand-off to the
// block's arrival on this peer's intake; the validation spans are laid out
// sequentially from arrival using the commit path's measured breakdown
// (wall-clock stage windows are not exposed by the pipelined engine, whose
// stages overlap — the sequential layout preserves each stage's share while
// keeping the trace tiled); any residual up to commit completion lands in
// the "other" span so the budget always sums transparently; and the
// enclosing e2e span runs from the first scheduled arrival (stamped by the
// orderer hook) to commit completion.
func (p *swPeer) stampBlock(rec *telemetry.Recorder, b *block.Block, bd *validator.Breakdown, recvAt, commitEnd time.Time) {
	num := b.Header.Number
	if pubEnd, ok := rec.StageEnd(num, telemetry.StagePublish); ok {
		rec.Stamp(num, telemetry.StageDeliver, p.name, pubEnd, recvAt, 0)
	} else {
		rec.Stamp(num, telemetry.StageDeliver, p.name, recvAt, recvAt, 0)
	}
	cur := recvAt
	span := func(stage string, d time.Duration) {
		if d < 0 {
			d = 0
		}
		end := cur.Add(d)
		rec.Stamp(num, stage, p.name, cur, end, 0)
		cur = end
	}
	span(telemetry.StageParse, bd.Unmarshal)
	span(telemetry.StagePrefetch, bd.PrefetchWait)
	span(telemetry.StageVSCC, bd.BlockVerify+bd.VerifyVSCC)
	span(telemetry.StageMVCC, bd.MVCC)
	// StateDB overlaps MVCC (its reads feed validation); only the
	// non-overlapping write side plus the ledger append count as commit.
	span(telemetry.StageCommit, (bd.StateDB-bd.MVCC)+bd.LedgerCommit)
	if commitEnd.After(cur) {
		rec.Stamp(num, telemetry.StageOther, p.name, cur, commitEnd, 0)
	}
	if subStart, ok := rec.StageStart(num, telemetry.StageSubmit); ok {
		rec.Stamp(num, telemetry.StageE2E, p.name, subStart, commitEnd, len(b.Envelopes))
	}
}

func isSlowName(peers []*swPeer, name string) bool {
	for _, p := range peers {
		if p.name == name {
			return p.slow
		}
	}
	return false
}

// newSWPeer builds one durable software peer for the selected validation
// path. Opening an existing dir recovers: checkpoint + ledger replay seed
// the state, and p.next reports the height the peer resumes from. A
// non-nil df installs the slow-disk fault shim under the peer's ledger
// and checkpoint writers.
func newSWPeer(cfg *config.Config, opts Options, i int, dir string, df *chaos.DiskFault) (*swPeer, error) {
	ln, err := gossip.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &swPeer{
		name: fmt.Sprintf("peer%d", i),
		slow: i >= opts.Peers-opts.SlowPeers,
		dir:  dir,
		ln:   ln,
		done: make(chan struct{}),
	}
	dopts := peer.DurableOptions{
		CheckpointEvery: opts.CheckpointEvery,
		KeepCheckpoints: cfg.Durability.KeepCheckpoints,
		SegmentBytes:    opts.SegmentBytes,
		Prune:           opts.Prune || cfg.Durability.Prune,
		NoFastSync:      opts.NoFastSync || cfg.Durability.NoFastSync,
		SyncEachBlock:   cfg.Durability.SyncEachBlock,
		Metrics:         telemetry.NewLedgerMetrics(cfg.TelemetryRegistry(), p.name),
	}
	if dopts.CheckpointEvery == 0 {
		dopts.CheckpointEvery = cfg.Durability.CheckpointEvery
	}
	if dopts.SegmentBytes == 0 {
		dopts.SegmentBytes = cfg.Durability.SegmentBytes
	}
	if df != nil {
		dopts.CommitFault = df.Hook()
		dopts.CheckpointFault = df.Hook()
	}
	switch opts.Mode {
	case Sequential:
		valCfg, err := cfg.ValidatorConfig(4)
		if err != nil {
			ln.Close() // bmaclint:allow errdiscard (error path: cleanup before returning the real error)
			return nil, err
		}
		store := statedb.NewStore()
		if cfg.StateDB.NoCountAccesses {
			store.SetCountAccesses(false)
		}
		sw, err := peer.NewDurableSWPeer(valCfg, store, dir, dopts)
		if err != nil {
			ln.Close() // bmaclint:allow errdiscard (error path: cleanup before returning the real error)
			return nil, err
		}
		p.commit = sw.CommitBlock
		p.close = sw.Close
		p.ckpt = sw.Checkpoint
		p.store = sw.Validator.Store()
		p.led = sw.Ledger
		p.next = sw.Height()
	case Pipelined, Hybrid:
		mcfg := *cfg
		if opts.Mode == Hybrid {
			mcfg.StateDB.Backend = config.BackendHybrid
			mcfg.Pipeline.Prefetch = true
		} else {
			mcfg.StateDB.Backend = config.BackendMemory
		}
		pipeCfg, err := mcfg.PipelineConfig()
		if err != nil {
			ln.Close() // bmaclint:allow errdiscard (error path: cleanup before returning the real error)
			return nil, err
		}
		kvs, err := mcfg.NewKVS()
		if err != nil {
			ln.Close() // bmaclint:allow errdiscard (error path: cleanup before returning the real error)
			return nil, err
		}
		pp, err := peer.NewDurableParallelPeer(pipeCfg, kvs, dir, dopts)
		if err != nil {
			ln.Close() // bmaclint:allow errdiscard (error path: cleanup before returning the real error)
			return nil, err
		}
		p.commit = pp.CommitBlock
		p.close = pp.Close
		p.ckpt = pp.Checkpoint
		p.store = pp.Engine.Store()
		p.led = pp.Ledger
		p.next = pp.Height()
	default:
		ln.Close() // bmaclint:allow errdiscard (error path: cleanup before returning the real error)
		return nil, fmt.Errorf("cluster: unknown mode %q (valid: %v)", opts.Mode, Modes())
	}
	return p, nil
}

// commitLoop drains the peer's gossip intake, committing blocks in
// delivery order. The observer additionally records end-to-end latency,
// applies committed writes to the endorser stores (committer role), and —
// when the flight recorder is on — stamps the block's peer-side lifecycle
// spans (deliver through commit, plus the enclosing e2e span).
func (p *swPeer) commitLoop(observer bool, gen *load.Generator, endorsers []*endorser.Endorser, rec *telemetry.Recorder, rewind func(uint64) error) {
	defer close(p.done)
	next := p.next // 0 on a fresh peer, the recovered height after a restart
	skipped := false
	var badSeq uint64 // height of the last block dropped as corrupt
	badRuns := 0      // consecutive drops at badSeq
	restoreFails := 0 // consecutive Restore rejections (archive refetch)
	for b := range p.ln.Blocks() {
		// Delivery is at-least-once: a redial resends from the
		// unadvanced cursor, so a block already committed may arrive
		// again (e.g. the first copy was flushed as the timed-out
		// connection closed). Skip duplicates — unless the block falls in
		// a quarantined hole below the peer's height, in which case this
		// redelivery IS the archive refetch: Restore backfills the
		// missing range into a fresh sealed segment. The blocks were
		// state-committed before the segment went bad, so only the ledger
		// copy is rebuilt (and verified against the surviving chain).
		// Gaps are possible for a DropBlocks slow peer but reordering is
		// not.
		if b.Header.Number < next {
			if p.led.NeedsRestore(b.Header.Number) {
				if err := p.led.Restore(b); err != nil {
					restoreFails++
					if restoreFails > 32 {
						p.fail(fmt.Errorf("restore block %d: %w", b.Header.Number, err))
						return
					}
				} else {
					restoreFails = 0
				}
			}
			continue
		}
		if b.Header.Number > next {
			if rewind != nil {
				// Frames were lost in flight (wire corruption tore the
				// connection down after the sender's cursor advanced).
				// Ask the delivery service to rewind this peer's cursor
				// and redeliver; the out-of-order block in hand is
				// dropped, its redelivered copy commits.
				if err := rewind(next); err != nil {
					p.fail(fmt.Errorf("rewind to %d: %w", next, err))
					return
				}
				continue
			}
			// A gap: a DropBlocks peer cannot MVCC-validate against a
			// state missing the skipped writes, so it keeps counting
			// delivery but stops committing.
			skipped = true
		}
		next = b.Header.Number + 1
		if skipped {
			p.mu.Lock()
			p.blocks++
			p.txs += len(b.Envelopes)
			p.lastCommit = time.Now()
			p.mu.Unlock()
			continue
		}
		recvAt := time.Now()
		res, err := p.commit(b)
		if err != nil {
			if rewind != nil && errors.Is(err, validator.ErrBlockInvalid) {
				// The delivered block decoded but failed block-level
				// verification (DataHash or orderer signature): wire
				// corruption damaged envelope bytes without breaking the
				// framing. Nothing was committed; drop the block and
				// rewind for an intact redelivery. A block that keeps
				// failing at the same height is not wire damage — fall
				// through to peer failure after a few attempts.
				if b.Header.Number != badSeq {
					badSeq, badRuns = b.Header.Number, 0
				}
				badRuns++
				if badRuns <= 8 {
					next = b.Header.Number
					if rerr := rewind(next); rerr != nil {
						p.fail(fmt.Errorf("rewind to %d: %w", next, rerr))
						return
					}
					continue
				}
			}
			p.fail(fmt.Errorf("commit block %d: %w", b.Header.Number, err))
			return
		}
		at := time.Now()
		if observer {
			if rec != nil {
				p.stampBlock(rec, b, &res.Breakdown, recvAt, at)
			}
			for _, e := range endorsers {
				if err := client.ApplyBlock(e.Store(), b, res.Flags); err != nil {
					p.fail(err)
					return
				}
			}
			gen.ObserveBlock(b, at)
		}
		p.mu.Lock()
		p.blocks++
		p.txs += len(b.Envelopes)
		p.validTxs += block.CountValid(res.Flags)
		p.lastCommit = at
		p.mu.Unlock()
	}
}
