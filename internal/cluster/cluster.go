// Package cluster wires the whole delivery-side stack end to end: an
// open-loop client load (internal/load) submits endorsed transactions to
// a Raft-backed ordering service, whose blocks fan out through the
// non-blocking delivery service (internal/delivery) to N software peers
// over the Gossip wire format and optionally to a BMac peer over the
// custom protocol — the paper §3.5 dual path at cluster scale. Each
// software peer validates with one of the three commit paths (sequential,
// parallel pipelined, pipelined over the hybrid hardware/host database),
// and the harness reports throughput, per-tx end-to-end commit latency
// (p50/p95/p99) and per-peer delivery statistics, including the
// isolation of an artificially slow peer.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/chaincode"
	"bmac/internal/client"
	"bmac/internal/config"
	"bmac/internal/delivery"
	"bmac/internal/endorser"
	"bmac/internal/gossip"
	"bmac/internal/identity"
	"bmac/internal/load"
	"bmac/internal/metrics"
	"bmac/internal/orderer"
	"bmac/internal/peer"
	"bmac/internal/raft"
	"bmac/internal/statedb"
)

// Validation path modes for the software peers.
const (
	Sequential = "sequential" // internal/validator, Fabric's baseline pipeline
	Pipelined  = "pipelined"  // internal/pipeline over an in-memory store
	Hybrid     = "hybrid"     // internal/pipeline + prefetch over the §5 hybrid database
)

// Modes lists the validation path modes in presentation order.
func Modes() []string { return []string{Sequential, Pipelined, Hybrid} }

// Options parameterize one cluster run.
type Options struct {
	// Mode selects the software peers' validation path (default
	// Sequential).
	Mode string
	// Peers is the number of software gossip peers (default 3).
	Peers int
	// SlowPeers marks that many peers, taken from the end, as
	// artificially slow (SlowDelay per block on their delivery pipe).
	SlowPeers int
	// SlowDelay is the per-block delay of a slow peer (default 20ms).
	SlowDelay time.Duration
	// SlowPolicy is the overrun policy name for slow peers: "drop"
	// (default, so the run completes while the drop counter shows the
	// overload) or "disconnect". Fast peers always use disconnect.
	SlowPolicy string
	// BMacPeer includes a hardware peer fed over the BMac protocol.
	BMacPeer bool
	// RaftNodes sizes the ordering service's Raft cluster (default 1,
	// the paper's setup; 3 exercises majority replication).
	RaftNodes int
	// Txs is the total number of transactions to submit (default 60).
	Txs int
	// Rate is the aggregate open-loop arrival rate in tx/s (<= 0: no
	// pacing).
	Rate float64
	// Arrival is the inter-arrival distribution (load.Poisson default).
	Arrival string
	// Clients is the number of concurrent load clients (default 2).
	Clients int
	// Window overrides the delivery window (default config/service
	// default).
	Window int
	// Accounts sizes the smallbank state (default 64).
	Accounts int
	// Skew is the smallbank hot-account Zipf exponent (0 = uniform).
	Skew float64
	// Seed makes the workload and arrivals deterministic.
	Seed int64
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = Sequential
	}
	if o.Peers == 0 {
		o.Peers = 3
	}
	if o.SlowDelay == 0 {
		o.SlowDelay = 20 * time.Millisecond
	}
	if o.SlowPolicy == "" {
		o.SlowPolicy = "drop"
	}
	if o.RaftNodes == 0 {
		o.RaftNodes = 1
	}
	if o.Txs == 0 {
		o.Txs = 60
	}
	if o.Clients == 0 {
		o.Clients = 2
	}
	if o.Accounts == 0 {
		o.Accounts = 64
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// PeerReport is one software peer's end-of-run summary.
type PeerReport struct {
	Name     string
	Slow     bool
	Blocks   int // blocks committed
	Txs      int // envelopes committed
	ValidTxs int
	Delivery delivery.PeerStats
}

// Result is the cluster run report.
type Result struct {
	Mode      string
	RaftNodes int
	Submitted int
	Late      int // arrivals that fired behind schedule
	Blocks    int // blocks committed by the observer peer
	Txs       int // envelopes committed by the observer peer
	ValidTxs  int
	Elapsed   time.Duration
	TPS       float64 // committed envelopes/s at the observer peer
	// SWLatency is the per-tx end-to-end latency (scheduled arrival ->
	// committed on the observer software peer).
	SWLatency metrics.LatencySummary
	// HWLatency is the same measured at the BMac peer (zero without one).
	HWLatency metrics.LatencySummary
	Peers     []PeerReport
	// BMacDelivery is the hardware path's delivery pipe (zero value
	// without a BMac peer).
	BMacDelivery delivery.PeerStats
}

// swPeer is one software gossip peer: listener, commit engine, counters.
type swPeer struct {
	name    string
	slow    bool
	ln      *gossip.Listener
	commit  func(*block.Block) (peer.CommitResult, error)
	close   func() error
	store   statedb.KVS
	started bool // commitLoop launched (done will be closed)
	done    chan struct{}

	mu         sync.Mutex
	blocks     int
	txs        int
	validTxs   int
	lastCommit time.Time
	err        error
}

func (p *swPeer) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Run executes one cluster experiment: build, bootstrap, drive, drain,
// report. dir receives the peers' ledgers.
func Run(cfg *config.Config, opts Options, dir string) (*Result, error) {
	opts = opts.withDefaults()
	if opts.SlowPeers >= opts.Peers {
		return nil, fmt.Errorf("cluster: %d slow peers need at least %d peers", opts.SlowPeers, opts.SlowPeers+1)
	}
	slowPolicy, err := delivery.ParsePolicy(opts.SlowPolicy)
	if err != nil {
		return nil, err
	}
	net, err := cfg.BuildNetwork()
	if err != nil {
		return nil, err
	}
	registry := chaincode.NewRegistry(chaincode.Smallbank{}, chaincode.DRM{}, chaincode.SplitPay{})

	// Endorser peers, as in the testbed.
	var endorsers []*endorser.Endorser
	for _, org := range cfg.Orgs {
		for i := 0; i < org.Endorsers; i++ {
			id, err := net.LookupByName(fmt.Sprintf("peer%d.%s", i, org.Name))
			if err != nil {
				return nil, err
			}
			endorsers = append(endorsers, endorser.New(id, statedb.NewStore(), registry))
		}
	}
	if len(endorsers) == 0 {
		return nil, errors.New("cluster: configuration declares no endorser peers")
	}

	// Ordering service: RaftNodes-node cluster, orderer bound to the
	// elected leader (leader submit).
	rc := raft.NewCluster(opts.RaftNodes, 20*time.Millisecond)
	defer rc.Stop()
	leader := rc.WaitForLeader(5 * time.Second)
	if leader == nil {
		return nil, errors.New("cluster: raft leader election timed out")
	}
	ordID, err := net.LookupByName("orderer0." + cfg.Orgs[0].Name)
	if err != nil {
		return nil, fmt.Errorf("cluster: first org needs an orderer: %w", err)
	}
	ord := orderer.New(orderer.Config{
		BatchSize:    cfg.Arch.MaxBlockTxs,
		BatchTimeout: 30 * time.Millisecond,
		Channel:      cfg.Channel,
	}, ordID, leader)
	defer ord.Stop()

	// Software peers behind real gossip TCP listeners.
	peers := make([]*swPeer, 0, opts.Peers)
	defer func() {
		for _, p := range peers {
			p.ln.Close()
			if p.started {
				<-p.done // commitLoop exits once the intake channel closes
			}
			p.close()
		}
	}()
	for i := 0; i < opts.Peers; i++ {
		p, err := newSWPeer(cfg, opts, i, filepath.Join(dir, fmt.Sprintf("peer%d", i)))
		if err != nil {
			return nil, err
		}
		peers = append(peers, p)
	}

	// Optional BMac peer over the protocol path.
	var (
		bmacPeer *peer.BMacPeer
		sender   *bmacproto.Sender
	)
	if opts.BMacPeer {
		coreCfg, err := cfg.CoreConfig()
		if err != nil {
			return nil, err
		}
		bmacPeer, err = peer.NewBMacPeer(coreCfg, cfg.Arch.DBCapacity, filepath.Join(dir, "bmac_peer"))
		if err != nil {
			return nil, err
		}
		defer bmacPeer.Close()
		sender = bmacproto.NewSender(identity.NewCache(), bmacproto.NewMemLink(bmacPeer.Receiver))
		if err := sender.RegisterNetwork(net); err != nil {
			return nil, err
		}
	}

	// Bootstrap genesis state everywhere.
	w := client.SmallbankWorkload{Accounts: opts.Accounts, Skew: opts.Skew}
	stores := make([]statedb.KVS, 0, len(peers)+len(endorsers))
	for _, p := range peers {
		stores = append(stores, p.store)
	}
	for _, e := range endorsers {
		stores = append(stores, e.Store())
	}
	if err := client.Bootstrap(w, registry, stores...); err != nil {
		return nil, err
	}
	if bmacPeer != nil {
		if err := client.BootstrapHardware(w, registry, peers[0].store, bmacPeer.Proc.DB()); err != nil {
			return nil, err
		}
	}

	// Open-loop load.
	gen, err := load.New(load.Options{
		Rate:    opts.Rate,
		Arrival: opts.Arrival,
		Count:   opts.Txs,
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	clientID, err := net.LookupByName("client0." + cfg.Orgs[0].Name)
	if err != nil {
		return nil, fmt.Errorf("cluster: first org needs a client: %w", err)
	}
	drivers := make([]load.Submitter, opts.Clients)
	for i := range drivers {
		drivers[i] = client.NewDriver(clientID, endorsers, ord, w, cfg.Channel, opts.Seed+int64(100+i))
	}

	// Delivery service: every path is one per-peer pipe.
	window := opts.Window
	if window == 0 {
		window = cfg.Delivery.Window
	}
	svc := delivery.NewService(delivery.Options{Window: window})
	defer svc.Close()
	for i, p := range peers {
		tr, err := delivery.DialGossip(p.ln.Addr())
		if err != nil {
			return nil, err
		}
		po := delivery.PeerOptions{
			Policy:     delivery.Disconnect,
			Dial:       delivery.GossipDialer(p.ln.Addr()),
			MaxRedials: cfg.Delivery.MaxRedials,
		}
		var t delivery.Transport = tr
		if p.slow {
			t = delivery.Slowed(tr, opts.SlowDelay)
			po.Policy = slowPolicy
			addr := p.ln.Addr()
			po.Dial = func() (delivery.Transport, error) {
				inner, err := delivery.DialGossip(addr)
				if err != nil {
					return nil, err
				}
				return delivery.Slowed(inner, opts.SlowDelay), nil
			}
		}
		if err := svc.Register(peers[i].name, t, po); err != nil {
			return nil, err
		}
	}
	if sender != nil {
		if err := svc.Register("bmac", delivery.NewBMacTransport(sender), delivery.PeerOptions{}); err != nil {
			return nil, err
		}
	}

	// The orderer's only hook publishes into the delivery window (and
	// records the block's tx ids for the hardware latency join); it never
	// blocks on a peer.
	var (
		txMu     sync.Mutex
		blockTxs = make(map[uint64][]string)
	)
	ord.OnDeliver(func(b *block.Block) error {
		if opts.BMacPeer {
			ids := make([]string, 0, len(b.Envelopes))
			for i := range b.Envelopes {
				if id, err := block.EnvelopeTxID(&b.Envelopes[i]); err == nil {
					ids = append(ids, id)
				}
			}
			txMu.Lock()
			blockTxs[b.Header.Number] = ids
			txMu.Unlock()
		}
		return svc.Publish(b)
	})

	// Peer commit loops. Peer 0 is the observer: it records end-to-end
	// latency and plays the committer for the endorser world state.
	for i, p := range peers {
		p.started = true
		go p.commitLoop(i == 0, gen, endorsers)
	}
	type hwObs struct {
		txid string
		at   time.Time
	}
	var (
		hwMu      sync.Mutex
		hwSamples metrics.Samples
		hwBlocks  uint64
		hwPending []hwObs // commits observed before the submit record landed
	)
	if bmacPeer != nil {
		go func() {
			for res := range bmacPeer.Results() {
				at := time.Now()
				txMu.Lock()
				ids := blockTxs[res.BlockNum]
				txMu.Unlock()
				hwMu.Lock()
				hwBlocks++
				for _, id := range ids {
					if t0, ok := gen.SubmitTime(id); ok {
						hwSamples.Add(at.Sub(t0))
					} else {
						hwPending = append(hwPending, hwObs{id, at})
					}
				}
				hwMu.Unlock()
			}
		}()
	}

	// Drive the load, then wait for the observer peer to commit every
	// submitted transaction (valid or invalidated — each lands in a
	// block either way).
	start := time.Now()
	runErr := gen.Run(drivers)
	submitted, _, late := gen.Stats()
	deadline := time.Now().Add(opts.Timeout)
	for {
		peers[0].mu.Lock()
		committed := peers[0].txs
		err := peers[0].err
		peers[0].mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: observer peer: %w", err)
		}
		if committed >= submitted {
			break
		}
		if oerr := ord.Err(); oerr != nil {
			return nil, fmt.Errorf("cluster: orderer: %w", oerr)
		}
		// A dead pipe on a fast peer is fatal; a slow peer is allowed to
		// die of its configured policy (that is the experiment).
		for _, st := range svc.Stats() {
			if st.Err != nil && !isSlowName(peers, st.Name) {
				return nil, fmt.Errorf("cluster: delivery to %s: %w", st.Name, st.Err)
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: observer committed %d/%d txs after %v",
				committed, submitted, opts.Timeout)
		}
		time.Sleep(time.Millisecond)
	}
	// Snapshot delivery stats now, while the contrast is visible: the
	// observer has everything, so a fast peer's lag is ~0 while the slow
	// peer still shows its backlog and drops.
	stats := make(map[string]delivery.PeerStats, opts.Peers+1)
	for _, st := range svc.Stats() {
		stats[st.Name] = st
	}
	// Let the remaining (fast and slow) pipes finish their backlog; the
	// slow peer's drop counter, not the drain, absorbs its overload.
	drainErr := svc.Drain(opts.Timeout)
	// Zero delivery lag only means the frames reached the sockets; wait
	// for the fast peers' commit loops to drain their intake before
	// reading their counters.
	settleDeadline := time.Now().Add(opts.Timeout)
	for _, p := range peers {
		if p.slow {
			continue
		}
		for {
			p.mu.Lock()
			settled := p.txs >= submitted || p.err != nil
			p.mu.Unlock()
			if settled || time.Now().After(settleDeadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if bmacPeer != nil {
		// The protocol sender returned as soon as packets entered the
		// link; wait for the hardware pipeline to finish the tail.
		flushDeadline := time.Now().Add(opts.Timeout)
		for {
			hwMu.Lock()
			done := hwBlocks >= svc.Height()
			hwMu.Unlock()
			if done || time.Now().After(flushDeadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Report.
	res := &Result{
		Mode:      opts.Mode,
		RaftNodes: opts.RaftNodes,
		Submitted: submitted,
		Late:      late,
		SWLatency: gen.Latency(),
	}
	peers[0].mu.Lock()
	res.Blocks = peers[0].blocks
	res.Txs = peers[0].txs
	res.ValidTxs = peers[0].validTxs
	res.Elapsed = peers[0].lastCommit.Sub(start)
	peers[0].mu.Unlock()
	if res.Elapsed > 0 {
		res.TPS = metrics.Throughput(res.Txs, res.Elapsed)
	}
	for _, p := range peers {
		p.mu.Lock()
		res.Peers = append(res.Peers, PeerReport{
			Name:     p.name,
			Slow:     p.slow,
			Blocks:   p.blocks,
			Txs:      p.txs,
			ValidTxs: p.validTxs,
			Delivery: stats[p.name],
		})
		p.mu.Unlock()
	}
	if bmacPeer != nil {
		res.BMacDelivery = stats["bmac"]
		hwMu.Lock()
		// Resolve commits that raced ahead of their submit record; every
		// submission is recorded by now (gen.Run returned).
		for _, o := range hwPending {
			if t0, ok := gen.SubmitTime(o.txid); ok {
				hwSamples.Add(o.at.Sub(t0))
			}
		}
		hwPending = nil
		res.HWLatency = hwSamples.Summary()
		hwMu.Unlock()
	}
	if runErr != nil {
		return res, fmt.Errorf("cluster: load: %w", runErr)
	}
	if drainErr != nil {
		return res, drainErr
	}
	return res, nil
}

func isSlowName(peers []*swPeer, name string) bool {
	for _, p := range peers {
		if p.name == name {
			return p.slow
		}
	}
	return false
}

// newSWPeer builds one software peer for the selected validation path.
func newSWPeer(cfg *config.Config, opts Options, i int, dir string) (*swPeer, error) {
	ln, err := gossip.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &swPeer{
		name: fmt.Sprintf("peer%d", i),
		slow: i >= opts.Peers-opts.SlowPeers,
		ln:   ln,
		done: make(chan struct{}),
	}
	switch opts.Mode {
	case Sequential:
		valCfg, err := cfg.ValidatorConfig(4)
		if err != nil {
			ln.Close()
			return nil, err
		}
		sw, err := peer.NewSWPeer(valCfg, dir)
		if err != nil {
			ln.Close()
			return nil, err
		}
		p.commit = sw.CommitBlock
		p.close = sw.Close
		p.store = sw.Validator.Store()
	case Pipelined, Hybrid:
		mcfg := *cfg
		if opts.Mode == Hybrid {
			mcfg.StateDB.Backend = config.BackendHybrid
			mcfg.Pipeline.Prefetch = true
		} else {
			mcfg.StateDB.Backend = config.BackendMemory
		}
		pipeCfg, err := mcfg.PipelineConfig()
		if err != nil {
			ln.Close()
			return nil, err
		}
		kvs, err := mcfg.NewKVS()
		if err != nil {
			ln.Close()
			return nil, err
		}
		pp, err := peer.NewParallelPeerKVS(pipeCfg, kvs, dir)
		if err != nil {
			ln.Close()
			return nil, err
		}
		p.commit = pp.CommitBlock
		p.close = pp.Close
		p.store = pp.Engine.Store()
	default:
		ln.Close()
		return nil, fmt.Errorf("cluster: unknown mode %q (valid: %v)", opts.Mode, Modes())
	}
	return p, nil
}

// commitLoop drains the peer's gossip intake, committing blocks in
// delivery order. The observer additionally records end-to-end latency
// and applies committed writes to the endorser stores (committer role).
func (p *swPeer) commitLoop(observer bool, gen *load.Generator, endorsers []*endorser.Endorser) {
	defer close(p.done)
	next := uint64(0)
	skipped := false
	for b := range p.ln.Blocks() {
		// Delivery is at-least-once: a redial resends from the
		// unadvanced cursor, so a block already committed may arrive
		// again (e.g. the first copy was flushed as the timed-out
		// connection closed). Skip duplicates; gaps are possible for a
		// DropBlocks slow peer but reordering is not.
		if b.Header.Number < next {
			continue
		}
		if b.Header.Number > next {
			// A gap: a DropBlocks peer cannot MVCC-validate against a
			// state missing the skipped writes, so it keeps counting
			// delivery but stops committing.
			skipped = true
		}
		next = b.Header.Number + 1
		if skipped {
			p.mu.Lock()
			p.blocks++
			p.txs += len(b.Envelopes)
			p.lastCommit = time.Now()
			p.mu.Unlock()
			continue
		}
		res, err := p.commit(b)
		if err != nil {
			p.fail(fmt.Errorf("commit block %d: %w", b.Header.Number, err))
			return
		}
		at := time.Now()
		if observer {
			for _, e := range endorsers {
				if err := client.ApplyBlock(e.Store(), b, res.Flags); err != nil {
					p.fail(err)
					return
				}
			}
			gen.ObserveBlock(b, at)
		}
		p.mu.Lock()
		p.blocks++
		p.txs += len(b.Envelopes)
		p.validTxs += block.CountValid(res.Flags)
		p.lastCommit = at
		p.mu.Unlock()
	}
}
