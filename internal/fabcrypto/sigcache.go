package fabcrypto

import (
	"container/list"
	"crypto/ecdsa"
	"crypto/sha256"
	"sync"
	"sync/atomic"
	"time"
)

// SigCache is a sharded, bounded LRU cache of ECDSA verification verdicts,
// the analog of Fabric MSP's signature cache. A verdict is keyed by
// SHA-256(uncompressed public key ‖ digest ‖ DER signature), so a given
// signature is verified at most once per process no matter how many peers,
// commit paths or replays see it — the dominant CPU cost the paper measures
// (Figure 3a) collapses to one hash plus a map lookup on every repeat.
//
// Both successful and failed verdicts are cached: a verdict is a pure
// function of (key, digest, signature), so replaying a corrupt envelope
// through a second validation path must — and does — yield the identical
// error without re-running the curve math.
//
// A nil *SigCache is valid and means "disabled": every call verifies
// directly. All methods are safe for concurrent use.
type SigCache struct {
	shards []sigShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type sigShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[[HashSize]byte]*list.Element // guarded by mu
	order    *list.List                       // guarded by mu; front = most recently used
}

type sigEntry struct {
	key [HashSize]byte
	err error // nil for a valid signature
}

// sigCacheShards is the fixed stripe count; selection uses the first key
// byte, which is uniformly distributed (SHA-256 output).
const sigCacheShards = 32

// NewSigCache creates a cache bounded to roughly `size` verdicts in total.
// size < 1 returns nil (the disabled cache).
func NewSigCache(size int) *SigCache {
	if size < 1 {
		return nil
	}
	perShard := size / sigCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &SigCache{shards: make([]sigShard, sigCacheShards)}
	for i := range c.shards {
		c.shards[i] = sigShard{
			capacity: perShard,
			entries:  make(map[[HashSize]byte]*list.Element, perShard),
			order:    list.New(),
		}
	}
	return c
}

// sigCacheKey hashes (public key, digest, signature) into the cache key.
func sigCacheKey(pub *ecdsa.PublicKey, digest, sig []byte) [HashSize]byte {
	var pt [1 + 2*ScalarSize]byte
	pt[0] = 4
	pub.X.FillBytes(pt[1 : 1+ScalarSize])
	pub.Y.FillBytes(pt[1+ScalarSize:])
	h := sha256.New()
	h.Write(pt[:])
	h.Write(digest)
	h.Write(sig)
	var key [HashSize]byte
	h.Sum(key[:0])
	return key
}

// VerifyDigest checks a DER signature over a precomputed digest, consulting
// the cache first. hit reports whether the verdict came from the cache (so
// callers can attribute timing honestly: a hit is a hash + lookup, not an
// ECDSA verification). A nil receiver always verifies directly.
//
// bmaclint:noalloc
func (c *SigCache) VerifyDigest(pub *ecdsa.PublicKey, digest, sig []byte) (err error, hit bool) {
	if c == nil {
		return VerifyDigest(pub, digest, sig), false
	}
	key := sigCacheKey(pub, digest, sig)
	sh := &c.shards[key[0]%sigCacheShards]

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
		err := el.Value.(*sigEntry).err
		sh.mu.Unlock()
		c.hits.Add(1)
		return err, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)

	// Verify outside the shard lock: concurrent misses on the same shard
	// (even on the same key) may both pay the curve math, but the verdict
	// is deterministic, so the double insert is harmless.
	verr := VerifyDigest(pub, digest, sig)

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
	} else {
		sh.entries[key] = sh.order.PushFront(&sigEntry{key: key, err: verr}) // bmaclint:allow allocbound (miss path: one cache insert per new signature)
		if sh.order.Len() > sh.capacity {
			oldest := sh.order.Back()
			sh.order.Remove(oldest)
			delete(sh.entries, oldest.Value.(*sigEntry).key)
			c.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	return verr, false
}

// Stats reports cumulative hits, misses and evictions.
func (c *SigCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// HitRate reports hits / (hits + misses), 0 when empty or nil.
func (c *SigCache) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len reports the number of cached verdicts.
func (c *SigCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// VerifyRequest is one (public key, digest, signature) check for VerifyBatch:
// the same tuple an ecdsa_engine instance consumes in hardware.
type VerifyRequest struct {
	Pub    *ecdsa.PublicKey
	Digest []byte
	Sig    []byte
}

// VerifyResult is the outcome of one batched check. Elapsed is the time that
// one verification took on its worker (cache hits are cheap, real verifies
// are not), so callers can keep per-operation accounting honest even though
// the batch overlaps them in wall-clock time.
type VerifyResult struct {
	Err      error
	CacheHit bool
	Elapsed  time.Duration
}

// VerifyBatch fans a slice of checks across up to `workers` goroutines,
// each routed through the cache (which may be nil). Results are positionally
// aligned with reqs. workers <= 1 runs sequentially on the caller.
func (c *SigCache) VerifyBatch(reqs []VerifyRequest, workers int) []VerifyResult {
	out := make([]VerifyResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	one := func(i int) {
		t := time.Now()
		err, hit := c.VerifyDigest(reqs[i].Pub, reqs[i].Digest, reqs[i].Sig)
		out[i] = VerifyResult{Err: err, CacheHit: hit, Elapsed: time.Since(t)}
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			one(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				one(i)
			}
		}()
	}
	wg.Wait()
	return out
}
