package fabcrypto

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"
	"testing"
)

type sigFixture struct {
	pub    *ecdsa.PublicKey
	digest []byte
	sig    []byte
}

func makeSigs(t testing.TB, n int) []sigFixture {
	t.Helper()
	signer, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]sigFixture, n)
	for i := range out {
		digest := HashSlice([]byte(fmt.Sprintf("msg-%d", i)))
		sig, err := signer.SignDigest(digest)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sigFixture{pub: signer.Public(), digest: digest, sig: sig}
	}
	return out
}

func TestSigCacheHitMissAndVerdicts(t *testing.T) {
	c := NewSigCache(128)
	sigs := makeSigs(t, 3)

	for _, s := range sigs {
		if err, hit := c.VerifyDigest(s.pub, s.digest, s.sig); err != nil || hit {
			t.Fatalf("first verify: err=%v hit=%v", err, hit)
		}
	}
	for _, s := range sigs {
		if err, hit := c.VerifyDigest(s.pub, s.digest, s.sig); err != nil || !hit {
			t.Fatalf("second verify: err=%v hit=%v", err, hit)
		}
	}
	hits, misses, _ := c.Stats()
	if hits != 3 || misses != 3 {
		t.Fatalf("stats: hits=%d misses=%d, want 3/3", hits, misses)
	}

	// A failed verdict is cached too, and stays identical on the hit path.
	bad := append([]byte(nil), sigs[0].sig...)
	bad[len(bad)-1] ^= 0xff
	err1, hit := c.VerifyDigest(sigs[0].pub, sigs[0].digest, bad)
	if err1 == nil || hit {
		t.Fatalf("corrupt sig: err=%v hit=%v", err1, hit)
	}
	err2, hit := c.VerifyDigest(sigs[0].pub, sigs[0].digest, bad)
	if !hit || !errors.Is(err2, err1) && err2.Error() != err1.Error() {
		t.Fatalf("cached failure differs: %v vs %v (hit=%v)", err2, err1, hit)
	}

	// A different digest under the same key must not hit.
	other := HashSlice([]byte("other"))
	if err, hit := c.VerifyDigest(sigs[0].pub, other, sigs[0].sig); err == nil || hit {
		t.Fatalf("cross-digest lookup: err=%v hit=%v", err, hit)
	}
}

func TestSigCacheNilDisabled(t *testing.T) {
	var c *SigCache
	sigs := makeSigs(t, 1)
	for i := 0; i < 2; i++ {
		if err, hit := c.VerifyDigest(sigs[0].pub, sigs[0].digest, sigs[0].sig); err != nil || hit {
			t.Fatalf("nil cache round %d: err=%v hit=%v", i, err, hit)
		}
	}
	if h, m, e := c.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("nil cache stats: %d/%d/%d", h, m, e)
	}
	if NewSigCache(0) != nil {
		t.Fatal("NewSigCache(0) should be nil (disabled)")
	}
}

// TestSigCacheEvictionCorrectness fills a tiny cache far past capacity and
// checks verdicts stay correct after eviction (an evicted signature is
// simply re-verified) and the cache never exceeds its bound.
func TestSigCacheEvictionCorrectness(t *testing.T) {
	c := NewSigCache(sigCacheShards) // one verdict per shard
	sigs := makeSigs(t, 80)
	for round := 0; round < 2; round++ {
		for _, s := range sigs {
			if err, _ := c.VerifyDigest(s.pub, s.digest, s.sig); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if got := c.Len(); got > sigCacheShards {
		t.Fatalf("cache holds %d verdicts, capacity %d", got, sigCacheShards)
	}
	if _, _, ev := c.Stats(); ev == 0 {
		t.Fatal("expected evictions")
	}
}

// TestSigCacheConcurrent hammers one small cache from many goroutines with
// overlapping valid and corrupt signatures; run under -race. Every verdict
// must be correct regardless of hits, misses and evictions interleaving.
func TestSigCacheConcurrent(t *testing.T) {
	c := NewSigCache(64)
	sigs := makeSigs(t, 24)
	corrupt := make([][]byte, len(sigs))
	for i, s := range sigs {
		corrupt[i] = append([]byte(nil), s.sig...)
		corrupt[i][len(corrupt[i])-1] ^= 0x01
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				s := sigs[(g+it)%len(sigs)]
				if err, _ := c.VerifyDigest(s.pub, s.digest, s.sig); err != nil {
					t.Errorf("valid sig rejected: %v", err)
					return
				}
				if err, _ := c.VerifyDigest(s.pub, s.digest, corrupt[(g+it)%len(sigs)]); err == nil {
					t.Error("corrupt sig accepted")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestVerifyBatch(t *testing.T) {
	sigs := makeSigs(t, 10)
	for _, workers := range []int{0, 1, 4, 32} {
		for _, cache := range []*SigCache{nil, NewSigCache(256)} {
			reqs := make([]VerifyRequest, len(sigs))
			for i, s := range sigs {
				reqs[i] = VerifyRequest{Pub: s.pub, Digest: s.digest, Sig: s.sig}
			}
			reqs[3].Sig = append(append([]byte(nil), reqs[3].Sig...), 0xde) // trailing garbage -> bad DER
			res := cache.VerifyBatch(reqs, workers)
			for i, r := range res {
				if i == 3 {
					if r.Err == nil {
						t.Fatalf("workers=%d: corrupt req %d passed", workers, i)
					}
					continue
				}
				if r.Err != nil {
					t.Fatalf("workers=%d req %d: %v", workers, i, r.Err)
				}
			}
			if cache != nil {
				// Second pass through the same cache must be all hits.
				res = cache.VerifyBatch(reqs, workers)
				for i, r := range res {
					if !r.CacheHit {
						t.Fatalf("workers=%d req %d: expected cache hit", workers, i)
					}
				}
			}
		}
	}
}

func BenchmarkVerifyDigestCold(b *testing.B) {
	sigs := makeSigs(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyDigest(sigs[0].pub, sigs[0].digest, sigs[0].sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSigCacheHit(b *testing.B) {
	sigs := makeSigs(b, 1)
	c := NewSigCache(64)
	c.VerifyDigest(sigs[0].pub, sigs[0].digest, sigs[0].sig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err, hit := c.VerifyDigest(sigs[0].pub, sigs[0].digest, sigs[0].sig); err != nil || !hit {
			b.Fatalf("err=%v hit=%v", err, hit)
		}
	}
}

func BenchmarkCertCacheHit(b *testing.B) {
	signer, err := NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	der, err := IssueCertificate(CertTemplate{CommonName: "peer0.bench", Organization: "Org1", SerialNumber: 1},
		signer.Public(), nil, signer.Private())
	if err != nil {
		b.Fatal(err)
	}
	c := NewCertCache(64)
	if _, err := c.PublicKeyFromCert(der); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PublicKeyFromCert(der); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyBatch(b *testing.B) {
	sigs := makeSigs(b, 4)
	reqs := make([]VerifyRequest, len(sigs))
	for i, s := range sigs {
		reqs[i] = VerifyRequest{Pub: s.pub, Digest: s.digest, Sig: s.sig}
	}
	var c *SigCache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range c.VerifyBatch(reqs, 4) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
