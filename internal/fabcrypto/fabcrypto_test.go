package fabcrypto

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func newTestSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner()
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	return s
}

func TestSignVerify(t *testing.T) {
	s := newTestSigner(t)
	msg := []byte("validate this block")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := Verify(s.Public(), msg, sig); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	s := newTestSigner(t)
	sig, err := s.Sign([]byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.Public(), []byte("tampered"), sig); !errors.Is(err, ErrVerifyFailed) {
		t.Errorf("err = %v, want ErrVerifyFailed", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	s1, s2 := newTestSigner(t), newTestSigner(t)
	msg := []byte("block data")
	sig, err := s1.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s2.Public(), msg, sig); !errors.Is(err, ErrVerifyFailed) {
		t.Errorf("err = %v, want ErrVerifyFailed", err)
	}
}

func TestVerifyRejectsGarbageDER(t *testing.T) {
	s := newTestSigner(t)
	if err := Verify(s.Public(), []byte("m"), []byte{0x30, 0x01, 0x02}); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestDERSignatureRoundTrip(t *testing.T) {
	r := big.NewInt(123456789)
	sv := big.NewInt(987654321)
	der, err := MarshalDERSignature(r, sv)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := UnmarshalDERSignature(der)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(r2) != 0 || sv.Cmp(s2) != 0 {
		t.Errorf("round trip: (%v,%v) != (%v,%v)", r, sv, r2, s2)
	}
}

func TestUnmarshalDERRejectsTrailing(t *testing.T) {
	der, err := MarshalDERSignature(big.NewInt(1), big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	der = append(der, 0x00)
	if _, _, err := UnmarshalDERSignature(der); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestUnmarshalDERRejectsNegative(t *testing.T) {
	der, err := MarshalDERSignature(big.NewInt(-5), big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalDERSignature(der); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestDecodePartsLossless(t *testing.T) {
	s := newTestSigner(t)
	msg := []byte("hardware representation")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := DecodeDERToParts(sig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := PartsToDER(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig, back) {
		t.Error("DER -> parts -> DER is not lossless")
	}
	digest := Hash(msg)
	if !VerifyParts(s.Public(), digest[:], parts) {
		t.Error("VerifyParts rejected a valid signature")
	}
}

func TestVerifyPartsRejectsZero(t *testing.T) {
	s := newTestSigner(t)
	digest := Hash([]byte("m"))
	var zero SignatureParts
	if VerifyParts(s.Public(), digest[:], zero) {
		t.Error("VerifyParts accepted the zero signature")
	}
}

func TestLowSNormalization(t *testing.T) {
	s := newTestSigner(t)
	for i := 0; i < 8; i++ {
		sig, err := s.Sign([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		_, sv, err := UnmarshalDERSignature(sig)
		if err != nil {
			t.Fatal(err)
		}
		if sv.Cmp(p256HalfOrder) > 0 {
			t.Fatalf("signature %d has high S", i)
		}
	}
}

func TestIssueAndParseCertificate(t *testing.T) {
	ca := newTestSigner(t)
	caDER, err := IssueCertificate(CertTemplate{
		CommonName:   "ca.org1.example.com",
		Organization: "Org1",
		IsCA:         true,
		SerialNumber: 1,
	}, ca.Public(), nil, ca.Private())
	if err != nil {
		t.Fatalf("issue CA cert: %v", err)
	}
	caCert, err := ParseCertificate(caDER)
	if err != nil {
		t.Fatal(err)
	}

	peer := newTestSigner(t)
	peerDER, err := IssueCertificate(CertTemplate{
		CommonName:   "peer0.org1.example.com",
		Organization: "Org1",
		SerialNumber: 2,
	}, peer.Public(), caCert, ca.Private())
	if err != nil {
		t.Fatalf("issue peer cert: %v", err)
	}

	// Identity certificates in Fabric are ~860 bytes; ours must be in a
	// realistic band for the Figure 9a bandwidth experiment to hold.
	if len(peerDER) < 500 || len(peerDER) > 1100 {
		t.Errorf("peer cert size %d bytes, want ~500-1100", len(peerDER))
	}

	pub, err := PublicKeyFromCert(peerDER)
	if err != nil {
		t.Fatal(err)
	}
	if pub.X.Cmp(peer.Public().X) != 0 || pub.Y.Cmp(peer.Public().Y) != 0 {
		t.Error("extracted public key does not match")
	}

	// A signature by the peer verifies under the extracted key.
	sig, err := peer.Sign([]byte("endorsement"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pub, []byte("endorsement"), sig); err != nil {
		t.Errorf("verify with extracted key: %v", err)
	}
}

func TestPublicKeyPointRoundTrip(t *testing.T) {
	s := newTestSigner(t)
	enc := MarshalPublicKey(s.Public())
	if len(enc) != 65 {
		t.Fatalf("encoded point length %d, want 65", len(enc))
	}
	pub, err := UnmarshalPublicKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if pub.X.Cmp(s.Public().X) != 0 || pub.Y.Cmp(s.Public().Y) != 0 {
		t.Error("point round trip mismatch")
	}
}

func TestUnmarshalPublicKeyRejectsBadPoint(t *testing.T) {
	bad := make([]byte, 65)
	bad[0] = 4
	bad[10] = 0xff
	if _, err := UnmarshalPublicKey(bad); err == nil {
		t.Error("expected error for off-curve point")
	}
	if _, err := UnmarshalPublicKey([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short encoding")
	}
}

func TestStreamHasherMatchesHash(t *testing.T) {
	var sh StreamHasher
	sh.Write([]byte("block "))
	sh.Write([]byte("data"))
	want := Hash([]byte("block data"))
	if !bytes.Equal(sh.Sum(), want[:]) {
		t.Error("StreamHasher digest mismatch")
	}
	sh.Reset()
	sh.Write([]byte("x"))
	want2 := Hash([]byte("x"))
	if !bytes.Equal(sh.Sum(), want2[:]) {
		t.Error("StreamHasher reset broken")
	}
}

func TestDERPartsQuick(t *testing.T) {
	f := func(rRaw, sRaw [8]byte) bool {
		r := new(big.Int).SetBytes(rRaw[:])
		s := new(big.Int).SetBytes(sRaw[:])
		if r.Sign() == 0 || s.Sign() == 0 {
			return true // DER codec rejects zero by design
		}
		der, err := MarshalDERSignature(r, s)
		if err != nil {
			return false
		}
		parts, err := DecodeDERToParts(der)
		if err != nil {
			return false
		}
		back, err := PartsToDER(parts)
		return err == nil && bytes.Equal(der, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkECDSASign(b *testing.B) {
	s, err := NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECDSAVerify measures the software ECDSA verification cost — the
// operation the paper identifies as ~40% of validation time (Figure 3a) and
// the unit the hardware replaces with a 360 us engine.
func BenchmarkECDSAVerify(b *testing.B) {
	s, err := NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message")
	sig, err := s.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(s.Public(), msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSHA256Block(b *testing.B) {
	data := bytes.Repeat([]byte{0xab}, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Hash(data)
	}
}
