package fabcrypto

import (
	"sync"
	"testing"
	"time"
)

func makeCertDER(t *testing.T, cn string) []byte {
	t.Helper()
	signer, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	der, err := IssueCertificate(CertTemplate{
		CommonName:   cn,
		Organization: "Org1",
		SerialNumber: 1,
		NotBefore:    time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	}, signer.Public(), nil, signer.Private())
	if err != nil {
		t.Fatal(err)
	}
	return der
}

func TestCertCacheHitMissAndVerdicts(t *testing.T) {
	c := NewCertCache(64)
	der := makeCertDER(t, "peer0.org1")

	pub1, err := c.PublicKeyFromCert(der)
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := c.PublicKeyFromCert(der)
	if err != nil {
		t.Fatal(err)
	}
	if pub1 != pub2 {
		t.Fatal("cache did not intern the public key")
	}
	cert1, err := c.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	if cert1.Subject.CommonName != "peer0.org1" {
		t.Fatalf("wrong certificate: %q", cert1.Subject.CommonName)
	}
	if h, m := c.Stats(); h < 2 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d, want >=2/1", h, m)
	}

	// Failed parses are cached verdicts too, and must match the uncached
	// error text.
	bad := append([]byte(nil), der...)
	bad[0] ^= 0xff
	_, wantErr := ParseCertificate(bad)
	_, err1 := c.ParseCertificate(bad)
	_, err2 := c.ParseCertificate(bad)
	if wantErr == nil || err1 == nil || err2 == nil {
		t.Fatal("corrupt certificate parsed")
	}
	if err1.Error() != wantErr.Error() || err2.Error() != err1.Error() {
		t.Fatalf("cached parse error diverged: %v / %v / %v", wantErr, err1, err2)
	}
}

func TestCertCacheNilDisabled(t *testing.T) {
	var c *CertCache
	der := makeCertDER(t, "peer1.org1")
	if _, err := c.PublicKeyFromCert(der); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ParseCertificate(der); err != nil {
		t.Fatal(err)
	}
	if NewCertCache(0) != nil {
		t.Fatal("NewCertCache(0) should be nil (disabled)")
	}
}

// TestCertCacheDoesNotAliasInput pins the copy-on-insert contract: mutating
// the caller's DER buffer after a lookup must not corrupt the cache.
func TestCertCacheDoesNotAliasInput(t *testing.T) {
	c := NewCertCache(64)
	der := makeCertDER(t, "peer2.org1")
	buf := append([]byte(nil), der...)
	if _, err := c.PublicKeyFromCert(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0
	}
	cert, err := c.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject.CommonName != "peer2.org1" {
		t.Fatalf("cache entry corrupted by caller mutation: %q", cert.Subject.CommonName)
	}
}

// TestCertCacheConcurrent hammers one small cache from many goroutines
// with distinct certificates (forcing evictions); run under -race.
func TestCertCacheConcurrent(t *testing.T) {
	c := NewCertCache(certCacheShards) // one cert per shard
	ders := make([][]byte, 12)
	for i := range ders {
		ders[i] = makeCertDER(t, "peer.concurrent")
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 40; it++ {
				if _, err := c.PublicKeyFromCert(ders[(g+it)%len(ders)]); err != nil {
					t.Errorf("valid cert rejected: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
