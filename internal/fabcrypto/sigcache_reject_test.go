package fabcrypto

import (
	"fmt"
	"testing"
	"time"
)

// makeBadSigs returns n distinct invalid (pub, digest, sig) tuples: valid
// signatures with a flipped tail byte, the shape a signature-flood
// adversary replays at volume.
func makeBadSigs(t testing.TB, n int) []sigFixture {
	t.Helper()
	sigs := makeSigs(t, n)
	for i := range sigs {
		bad := append([]byte(nil), sigs[i].sig...)
		bad[len(bad)-1] ^= 0xff
		sigs[i].sig = bad
	}
	return sigs
}

// TestRejectWarmIsLookupFast is the failure-caching O(lookup) gate: the
// first rejection of a corrupt signature pays the ECDSA curve math, every
// repeat must be a hash + shard lookup. The warm path has no business
// being within an order of magnitude of the cold one; the test asserts a
// conservative 5x to stay robust under scheduler noise.
func TestRejectWarmIsLookupFast(t *testing.T) {
	const n = 64
	bad := makeBadSigs(t, n)
	c := NewSigCache(4096)

	cold := time.Duration(0)
	for _, s := range bad {
		start := time.Now()
		err, hit := c.VerifyDigest(s.pub, s.digest, s.sig)
		cold += time.Since(start)
		if err == nil || hit {
			t.Fatalf("cold reject: err=%v hit=%v", err, hit)
		}
	}
	warm := time.Duration(0)
	for round := 0; round < 4; round++ {
		warm = 0
		for _, s := range bad {
			start := time.Now()
			err, hit := c.VerifyDigest(s.pub, s.digest, s.sig)
			warm += time.Since(start)
			if err == nil || !hit {
				t.Fatalf("warm reject: err=%v hit=%v", err, hit)
			}
		}
		if warm*5 < cold {
			break // converged: repeats are lookups, not curve math
		}
	}
	if warm*5 >= cold {
		t.Errorf("warm rejects (%v for %d) not lookup-fast vs cold (%v): failure caching broken",
			warm, n, cold)
	}
	hits, misses, _ := c.Stats()
	if misses != n || hits < n {
		t.Errorf("stats hits=%d misses=%d, want %d misses (cold only) and >= %d hits", hits, misses, n, n)
	}
}

// BenchmarkRejectColdVsWarm reports the two rejection costs side by side:
// run with -bench 'RejectCold|RejectWarm' to see the O(curve math) vs
// O(lookup) gap the adversarial experiment's TPS floor depends on.
func BenchmarkRejectCold(b *testing.B) {
	bad := makeBadSigs(b, 1)
	s := bad[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh digest per iteration defeats the cache: every reject
		// pays the verification. (The signature stays invalid for any
		// digest it was not produced over.)
		digest := HashSlice([]byte(fmt.Sprintf("cold-%d", i)))
		if err := VerifyDigest(s.pub, digest, s.sig); err == nil {
			b.Fatal("corrupt signature verified")
		}
	}
}

func BenchmarkRejectWarm(b *testing.B) {
	bad := makeBadSigs(b, 1)
	s := bad[0]
	c := NewSigCache(1024)
	if err, _ := c.VerifyDigest(s.pub, s.digest, s.sig); err == nil {
		b.Fatal("corrupt signature verified")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err, hit := c.VerifyDigest(s.pub, s.digest, s.sig)
		if err == nil || !hit {
			b.Fatalf("warm reject: err=%v hit=%v", err, hit)
		}
	}
}
