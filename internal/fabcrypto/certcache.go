package fabcrypto

import (
	"bytes"
	"container/list"
	"crypto/ecdsa"
	"crypto/x509"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// CertCache is a sharded, bounded LRU cache of parsed X.509 identity
// certificates. Profiling the software validator shows x509.ParseCertificate
// rivals the ECDSA math itself in allocations, and the same handful of
// identity certificates (creator, endorsers, orderer) recurs in every
// transaction of every block — the same observation that makes Fabric's MSP
// cache deserialized identities. A hit costs one fast hash + lookup and
// returns the interned *x509.Certificate and its ECDSA public key.
//
// Lookups are keyed by a seeded 64-bit maphash of the DER bytes and
// VERIFIED by byte comparison against the stored DER before a hit is
// served, so a hash collision degrades to a miss, never to a wrong
// certificate. The stored DER is copied on insert, so cached entries never
// pin a block buffer.
//
// A nil *CertCache is valid and means "disabled": every call parses.
type CertCache struct {
	shards []certShard

	hits   atomic.Int64
	misses atomic.Int64
}

type certShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]*list.Element // guarded by mu
	order    *list.List               // guarded by mu; front = most recently used
}

type certEntry struct {
	key  uint64
	der  []byte // private copy of the certificate DER
	cert *x509.Certificate
	pub  *ecdsa.PublicKey
	err  error
}

const certCacheShards = 16

var certSeed = maphash.MakeSeed()

// NewCertCache creates a cache bounded to roughly `size` certificates.
// size < 1 returns nil (the disabled cache).
func NewCertCache(size int) *CertCache {
	if size < 1 {
		return nil
	}
	perShard := size / certCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &CertCache{shards: make([]certShard, certCacheShards)}
	for i := range c.shards {
		c.shards[i] = certShard{
			capacity: perShard,
			entries:  make(map[uint64]*list.Element, perShard),
			order:    list.New(),
		}
	}
	return c
}

// lookup interns the parsed form of der, parsing on a miss.
//
// bmaclint:noalloc
func (c *CertCache) lookup(der []byte) *certEntry {
	key := maphash.Bytes(certSeed, der)
	sh := &c.shards[key%certCacheShards]

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*certEntry)
		if bytes.Equal(e.der, der) {
			sh.order.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			return e
		}
		// 64-bit collision between different certificates: evict the old
		// entry and fall through to a parse.
		sh.order.Remove(el)
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	c.misses.Add(1)

	e := &certEntry{key: key, der: append([]byte(nil), der...)} // bmaclint:allow allocbound (miss path: entry owns a private DER copy)
	e.cert, e.err = ParseCertificate(der)
	if e.err == nil {
		if pub, ok := e.cert.PublicKey.(*ecdsa.PublicKey); ok {
			e.pub = pub
		}
	}

	sh.mu.Lock()
	if _, ok := sh.entries[key]; !ok {
		sh.entries[key] = sh.order.PushFront(e) // bmaclint:allow allocbound (miss path: LRU node for the new entry)
		if sh.order.Len() > sh.capacity {
			oldest := sh.order.Back()
			sh.order.Remove(oldest)
			delete(sh.entries, oldest.Value.(*certEntry).key)
		}
	}
	sh.mu.Unlock()
	return e
}

// ParseCertificate returns the interned parse of a DER certificate,
// parsing and caching on first sight. The returned certificate is shared
// and must be treated as read-only. A nil receiver parses directly.
func (c *CertCache) ParseCertificate(der []byte) (*x509.Certificate, error) {
	if c == nil {
		return ParseCertificate(der)
	}
	e := c.lookup(der)
	return e.cert, e.err
}

// PublicKeyFromCert returns the interned ECDSA public key of a DER
// certificate, mirroring the package-level PublicKeyFromCert (including
// its error for non-ECDSA keys). A nil receiver parses directly.
func (c *CertCache) PublicKeyFromCert(der []byte) (*ecdsa.PublicKey, error) {
	if c == nil {
		return PublicKeyFromCert(der)
	}
	e := c.lookup(der)
	if e.err != nil {
		return nil, e.err
	}
	if e.pub == nil {
		return nil, errNotECDSA(e.cert)
	}
	return e.pub, nil
}

// Stats reports cumulative hits and misses.
func (c *CertCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// HitRate reports hits / (hits + misses), 0 when empty or nil.
func (c *CertCache) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
