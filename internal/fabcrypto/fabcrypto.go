// Package fabcrypto provides the cryptographic substrate used throughout the
// Blockchain Machine reproduction: 256-bit ECDSA (Fabric's default scheme)
// with DER-encoded signatures, SHA-256 hashing, and generation of the X.509
// certificates that act as node identities.
//
// The paper's protocol_processor includes a DER decoder post-processor that
// splits a signature into its (r, s) halves as 256-bit values for the ECDSA
// verification hardware, and an X.509 post-processor that extracts the public
// key from an identity certificate; both are implemented here and exercised
// by internal/bmacproto.
package fabcrypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// HashSize is the size of a SHA-256 digest in bytes.
const HashSize = sha256.Size

// ScalarSize is the size in bytes of a P-256 scalar (one signature half).
const ScalarSize = 32

var (
	// ErrBadSignature reports a malformed DER signature.
	ErrBadSignature = errors.New("fabcrypto: malformed DER signature")
	// ErrVerifyFailed reports a signature that does not verify.
	ErrVerifyFailed = errors.New("fabcrypto: signature verification failed")
)

// Hash returns the SHA-256 digest of data.
func Hash(data []byte) [HashSize]byte {
	return sha256.Sum256(data)
}

// HashSlice returns the SHA-256 digest of data as a byte slice.
func HashSlice(data []byte) []byte {
	h := sha256.Sum256(data)
	return h[:]
}

// StreamHasher is an incremental SHA-256 calculator mirroring the paper's
// stream-based hash calculators in the protocol_processor: three of them run
// in parallel over block data, transaction sections, and endorsement data.
type StreamHasher struct {
	inner [HashSize]byte
	buf   []byte
}

// Write appends data to the stream.
func (s *StreamHasher) Write(p []byte) {
	s.buf = append(s.buf, p...)
}

// Sum finalizes and returns the digest of everything written so far.
func (s *StreamHasher) Sum() []byte {
	s.inner = sha256.Sum256(s.buf)
	return s.inner[:]
}

// Reset clears the stream for reuse.
func (s *StreamHasher) Reset() {
	s.buf = s.buf[:0]
}

// Signer holds an ECDSA P-256 private key and produces DER signatures over
// SHA-256 digests, matching Fabric's default BCCSP configuration.
type Signer struct {
	priv *ecdsa.PrivateKey
}

// NewSigner generates a fresh P-256 key pair.
func NewSigner() (*Signer, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate P-256 key: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// Public returns the signer's public key.
func (s *Signer) Public() *ecdsa.PublicKey { return &s.priv.PublicKey }

// Private returns the underlying private key (needed for certificate
// issuance by internal/identity).
func (s *Signer) Private() *ecdsa.PrivateKey { return s.priv }

// Sign hashes msg with SHA-256 and returns a DER-encoded ECDSA signature.
// Fabric normalizes s to the low half of the curve order ("low-S") to avoid
// signature malleability; we do the same.
func (s *Signer) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return s.SignDigest(digest[:])
}

// SignDigest signs a precomputed 32-byte digest.
func (s *Signer) SignDigest(digest []byte) ([]byte, error) {
	r, sv, err := ecdsa.Sign(rand.Reader, s.priv, digest)
	if err != nil {
		return nil, fmt.Errorf("ecdsa sign: %w", err)
	}
	sv = toLowS(sv)
	return MarshalDERSignature(r, sv)
}

// Verify checks a DER signature over msg against pub.
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	return VerifyDigest(pub, digest[:], sig)
}

// VerifyDigest checks a DER signature over a precomputed digest.
func VerifyDigest(pub *ecdsa.PublicKey, digest, sig []byte) error {
	r, s, err := UnmarshalDERSignature(sig)
	if err != nil {
		return err
	}
	if !ecdsa.Verify(pub, digest, r, s) {
		return ErrVerifyFailed
	}
	return nil
}

var p256HalfOrder = new(big.Int).Rsh(elliptic.P256().Params().N, 1)

func toLowS(s *big.Int) *big.Int {
	if s.Cmp(p256HalfOrder) > 0 {
		return new(big.Int).Sub(elliptic.P256().Params().N, s)
	}
	return s
}

// ecdsaSignature is the ASN.1 SEQUENCE { r INTEGER, s INTEGER } structure
// defined by X9.62 and used by Fabric on the wire.
type ecdsaSignature struct {
	R, S *big.Int
}

// MarshalDERSignature encodes (r, s) as an ASN.1 DER ECDSA-Sig-Value.
func MarshalDERSignature(r, s *big.Int) ([]byte, error) {
	der, err := asn1.Marshal(ecdsaSignature{R: r, S: s})
	if err != nil {
		return nil, fmt.Errorf("marshal DER signature: %w", err)
	}
	return der, nil
}

// UnmarshalDERSignature decodes a DER ECDSA signature into (r, s).
func UnmarshalDERSignature(sig []byte) (r, s *big.Int, err error) {
	var v ecdsaSignature
	rest, err := asn1.Unmarshal(sig, &v)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSignature, len(rest))
	}
	if v.R == nil || v.S == nil || v.R.Sign() <= 0 || v.S.Sign() <= 0 {
		return nil, nil, fmt.Errorf("%w: non-positive component", ErrBadSignature)
	}
	return v.R, v.S, nil
}

// SignatureParts is the output of the protocol_processor's DER decoder
// post-processor: the two signature halves as fixed-width 256-bit values,
// the representation expected by the ecdsa_engine hardware.
type SignatureParts struct {
	R [ScalarSize]byte
	S [ScalarSize]byte
}

// DecodeDERToParts converts a DER signature to fixed-width (r, s) parts.
func DecodeDERToParts(sig []byte) (SignatureParts, error) {
	var parts SignatureParts
	r, s, err := UnmarshalDERSignature(sig)
	if err != nil {
		return parts, err
	}
	r.FillBytes(parts.R[:])
	s.FillBytes(parts.S[:])
	return parts, nil
}

// PartsToDER re-encodes fixed-width (r, s) parts as DER; used by tests to
// prove the hardware-side representation is lossless.
func PartsToDER(parts SignatureParts) ([]byte, error) {
	r := new(big.Int).SetBytes(parts.R[:])
	s := new(big.Int).SetBytes(parts.S[:])
	return MarshalDERSignature(r, s)
}

// VerifyParts verifies a signature given in hardware (r, s) representation.
// This is the exact operation one ecdsa_engine instance performs on a
// {signature, key, data hash} verification request tuple.
func VerifyParts(pub *ecdsa.PublicKey, digest []byte, parts SignatureParts) bool {
	r := new(big.Int).SetBytes(parts.R[:])
	s := new(big.Int).SetBytes(parts.S[:])
	if r.Sign() <= 0 || s.Sign() <= 0 {
		return false
	}
	return ecdsa.Verify(pub, digest, r, s)
}

// CertTemplate describes an identity certificate to issue.
type CertTemplate struct {
	CommonName   string
	Organization string
	IsCA         bool
	SerialNumber int64
	NotBefore    time.Time
	Lifetime     time.Duration
}

// IssueCertificate creates a DER-encoded X.509 certificate for subjectPub,
// signed by issuerKey (self-signed when issuer == nil). Fabric identities
// are X.509 certificates of roughly 860 bytes; the subject fields here are
// sized to land in that range so the protocol bandwidth experiments
// (Figure 9a) see realistic identity weight.
func IssueCertificate(tmpl CertTemplate, subjectPub *ecdsa.PublicKey,
	issuer *x509.Certificate, issuerKey *ecdsa.PrivateKey) ([]byte, error) {
	notBefore := tmpl.NotBefore
	if notBefore.IsZero() {
		notBefore = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	lifetime := tmpl.Lifetime
	if lifetime == 0 {
		lifetime = 10 * 365 * 24 * time.Hour
	}
	template := &x509.Certificate{
		SerialNumber: big.NewInt(tmpl.SerialNumber),
		Subject: pkix.Name{
			CommonName:         tmpl.CommonName,
			Organization:       []string{tmpl.Organization},
			OrganizationalUnit: []string{"fabric-membership-service"},
			Country:            []string{"SG"},
			Locality:           []string{"Singapore"},
			Province:           []string{"Singapore"},
		},
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(lifetime),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  tmpl.IsCA,
	}
	if tmpl.IsCA {
		template.KeyUsage |= x509.KeyUsageCertSign
	}
	parent := issuer
	if parent == nil {
		parent = template // self-signed
	}
	der, err := x509.CreateCertificate(rand.Reader, template, parent, subjectPub, issuerKey)
	if err != nil {
		return nil, fmt.Errorf("create certificate %q: %w", tmpl.CommonName, err)
	}
	return der, nil
}

// ParseCertificate parses a DER certificate.
func ParseCertificate(der []byte) (*x509.Certificate, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("parse certificate: %w", err)
	}
	return cert, nil
}

// PublicKeyFromCert extracts the ECDSA public key from a DER certificate.
// This mirrors the protocol_processor's X.509 post-processor.
func PublicKeyFromCert(der []byte) (*ecdsa.PublicKey, error) {
	cert, err := ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errNotECDSA(cert)
	}
	return pub, nil
}

func errNotECDSA(cert *x509.Certificate) error {
	return fmt.Errorf("certificate %q: not an ECDSA key", cert.Subject.CommonName)
}

// MarshalPublicKey encodes an ECDSA public key in uncompressed point form
// (0x04 || X || Y), the representation loaded into hardware key registers.
func MarshalPublicKey(pub *ecdsa.PublicKey) []byte {
	out := make([]byte, 1+2*ScalarSize)
	out[0] = 4
	pub.X.FillBytes(out[1 : 1+ScalarSize])
	pub.Y.FillBytes(out[1+ScalarSize:])
	return out
}

// UnmarshalPublicKey decodes an uncompressed P-256 point.
func UnmarshalPublicKey(data []byte) (*ecdsa.PublicKey, error) {
	if len(data) != 1+2*ScalarSize || data[0] != 4 {
		return nil, errors.New("fabcrypto: bad uncompressed point encoding")
	}
	x := new(big.Int).SetBytes(data[1 : 1+ScalarSize])
	y := new(big.Int).SetBytes(data[1+ScalarSize:])
	pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	if !pub.Curve.IsOnCurve(x, y) {
		return nil, errors.New("fabcrypto: point not on curve")
	}
	return pub, nil
}
