package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bmac/internal/block"
)

// A segment is one on-disk blockfile. The highest-id segment is active
// (append target, no footer); all others are sealed: their record region
// is immutable and covered by the footer checksum, which is what makes
// quarantine decidable — a sealed segment either matches its checksum or
// it does not.
//
// Record layout (both states): repeated [len u64 BE | marshaled block].
// Sealed segments append a fixed-size footer after the last record:
//
//	magic "BMACSEGF" [8] | first u64 | count u64 | dataLen u64 | sha256 [32]
//
// where sha256 covers bytes [0, dataLen) — the record region only.
type segment struct {
	id      uint64
	path    string
	first   uint64 // first block number in the segment
	count   uint64 // blocks in the segment
	dataLen int64  // record-region bytes (excludes footer)
	sealed  bool
	sum     [sha256Size]byte // record-region checksum; valid when sealed

	// readers pools read-only handles for historical reads. Handles are
	// lazily opened, reused across reads, and closed when the pool channel
	// is full or the segment is retired (quarantine/prune/close). The
	// channel itself is the synchronization — no lock is held during I/O.
	readers chan *os.File
	retired chan struct{} // closed when the segment is quarantined/pruned
}

const footerSize = 8 + 8 + 8 + 8 + sha256Size

var footerMagic = [8]byte{'B', 'M', 'A', 'C', 'S', 'E', 'G', 'F'}

// errNoFooter reports a segment file without a (complete, well-formed)
// footer — an active or torn-seal segment.
var errNoFooter = errors.New("ledger: segment has no footer")

// errRetired reports a read against a segment that was quarantined or
// pruned between index lookup and I/O.
var errRetired = errors.New("ledger: segment retired")

func newSegment(dir string, id uint64, readerCap int) *segment {
	return &segment{
		id:      id,
		path:    segPath(dir, id),
		readers: make(chan *os.File, readerCap),
		retired: make(chan struct{}),
	}
}

// footerBytes encodes a footer for the given record region.
func footerBytes(first, count uint64, dataLen int64, sum [sha256Size]byte) []byte {
	buf := make([]byte, footerSize)
	copy(buf, footerMagic[:])
	binary.BigEndian.PutUint64(buf[8:], first)
	binary.BigEndian.PutUint64(buf[16:], count)
	binary.BigEndian.PutUint64(buf[24:], uint64(dataLen))
	copy(buf[32:], sum[:])
	return buf
}

// footerInfo is a decoded segment footer.
type footerInfo struct {
	first   uint64
	count   uint64
	dataLen int64
	sum     [sha256Size]byte
}

// parseFooter decodes the trailing footerSize bytes of a segment file.
// The caller supplies the file size so dataLen consistency can be checked.
func parseFooter(tail []byte, fileSize int64) (footerInfo, error) {
	var fi footerInfo
	if len(tail) != footerSize || [8]byte(tail[:8]) != footerMagic {
		return fi, errNoFooter
	}
	fi.first = binary.BigEndian.Uint64(tail[8:])
	fi.count = binary.BigEndian.Uint64(tail[16:])
	fi.dataLen = int64(binary.BigEndian.Uint64(tail[24:]))
	copy(fi.sum[:], tail[32:])
	if fi.dataLen < 0 || fi.dataLen+footerSize != fileSize || fi.count == 0 {
		return fi, fmt.Errorf("%w: inconsistent footer (dataLen %d, file %d, count %d)",
			errNoFooter, fi.dataLen, fileSize, fi.count)
	}
	return fi, nil
}

// readFooter reads and decodes the footer of a segment file on disk.
func readFooter(path string) (footerInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return footerInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return footerInfo{}, err
	}
	if st.Size() < footerSize {
		return footerInfo{}, errNoFooter
	}
	tail := make([]byte, footerSize)
	if _, err := f.ReadAt(tail, st.Size()-footerSize); err != nil {
		return footerInfo{}, err
	}
	return parseFooter(tail, st.Size())
}

// isSealed reports whether the segment is sealed (immutable, checksummed).
// Sealing happens under the ledger mutex but reads of this flag race with
// it harmlessly: the flag only ever transitions false→true, and a reader
// that sees the stale false merely skips the quarantine probe once.
func (s *segment) isSealed() bool { return s.sealed }

// getReader returns a pooled read-only handle, opening one if the pool is
// empty. Returns errRetired if the segment was quarantined or pruned.
func (s *segment) getReader() (*os.File, error) {
	select {
	case f := <-s.readers:
		return f, nil
	default:
	}
	select {
	case <-s.retired:
		return nil, errRetired
	default:
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("open segment for read: %w", err)
	}
	return f, nil
}

// putReader returns a handle to the pool, closing it if the pool is full
// or the segment has been retired.
func (s *segment) putReader(f *os.File) {
	select {
	case <-s.retired:
		f.Close() // bmaclint:allow errdiscard (read-only handle on a retired segment)
		return
	default:
	}
	select {
	case s.readers <- f:
	default:
		f.Close() // bmaclint:allow errdiscard (read-only handle beyond pool capacity)
	}
}

// drainReaders retires the segment: marks it so concurrent readers stop
// recycling handles and closes every pooled handle.
func (s *segment) drainReaders() {
	select {
	case <-s.retired:
	default:
		close(s.retired)
	}
	for {
		select {
		case f := <-s.readers:
			f.Close() // bmaclint:allow errdiscard (read-only handle on a retired segment)
		default:
			return
		}
	}
}

// readBlock reads and decodes the record described by e through the
// segment's reader pool. It runs without the ledger mutex; the record
// region it touches is immutable once indexed (the active segment only
// grows, sealed segments never change).
func (s *segment) readBlock(e entry) (*block.Block, error) {
	f, err := s.getReader()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.length)
	_, err = f.ReadAt(buf, e.offset)
	s.putReader(f)
	if err != nil {
		return nil, fmt.Errorf("segment %06d read: %w", s.id, err)
	}
	n := binary.BigEndian.Uint64(buf[:8])
	if n != uint64(e.length-8) {
		return nil, fmt.Errorf("segment %06d: record length mismatch (prefix %d, indexed %d)", s.id, n, e.length-8)
	}
	// buf is freshly allocated per read, so the aliasing Unmarshal is safe.
	b, err := block.Unmarshal(buf[8:])
	if err != nil {
		return nil, fmt.Errorf("segment %06d decode: %w", s.id, err)
	}
	return b, nil
}

// verifyChecksum re-reads the sealed segment's record region and compares
// it against the footer checksum. Sequential read of one segment file.
func (s *segment) verifyChecksum() error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("segment %06d verify open: %w", s.id, err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.CopyN(h, f, s.dataLen); err != nil {
		return fmt.Errorf("segment %06d verify read: %w", s.id, err)
	}
	var sum [sha256Size]byte
	h.Sum(sum[:0])
	if sum != s.sum {
		return fmt.Errorf("segment %06d checksum mismatch", s.id)
	}
	return nil
}

// scanResult carries what a record scan of one segment file learned.
type scanResult struct {
	offsets []entry // seg filled in by the caller
	dataLen int64
	sum     [sha256Size]byte // running checksum of the record region
	footer  *footerInfo      // non-nil if a well-formed footer terminated the scan
	// tail truncation performed (active segments only)
	truncated bool
	// decoded state of the final record (active segments, decode=true)
	lastNum    uint64
	lastHash   []byte
	commitHash []byte
	blocks     uint64
}

// scanSegment walks a segment file's records. If decode is true every
// record is unmarshaled (the active-segment replay: numbers and the hash
// chain are validated and a torn or undecodable tail is truncated away,
// warning through warnf); if decode is false only length prefixes are
// walked (rebuilding offsets for a sealed segment) and any malformed tail
// is an error. expectFirst/expectPrev seed the validation chain.
func scanSegment(path string, decode bool, expectFirst uint64, expectPrev []byte, warnf func(string, ...any)) (*scanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open segment for scan: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("stat segment: %w", err)
	}
	size := st.Size()

	res := &scanResult{lastNum: expectFirst, lastHash: expectPrev}
	var offset int64
	var lenBuf [8]byte
	prevHash := expectPrev
	next := expectFirst

	truncate := func(at int64, why string) (*scanResult, error) {
		if !decode {
			return nil, fmt.Errorf("sealed segment scan: %s at offset %d", why, at)
		}
		warnf("truncating torn tail of %s at offset %d (%s); block height %d preserved",
			filepath.Base(path), at, why, next)
		if err := f.Truncate(at); err != nil {
			return nil, fmt.Errorf("truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("sync truncated segment: %w", err)
		}
		res.truncated = true
		res.dataLen = at
		return res, nil
	}

	h := sha256.New()
	for offset < size {
		remaining := size - offset
		if remaining < 8 {
			return truncate(offset, "partial length prefix")
		}
		if _, err := f.ReadAt(lenBuf[:], offset); err != nil {
			return nil, fmt.Errorf("read length prefix: %w", err)
		}
		// A footer magic in the length-prefix position terminates the
		// record region of a sealed segment.
		if lenBuf == footerMagic {
			if remaining == footerSize {
				tail := make([]byte, footerSize)
				if _, err := f.ReadAt(tail, offset); err != nil {
					return nil, fmt.Errorf("read footer: %w", err)
				}
				if fi, err := parseFooter(tail, size); err == nil {
					res.footer = &fi
					res.dataLen = offset
					h.Sum(res.sum[:0])
					return res, nil
				}
			}
			// Torn footer: the seal crashed mid-write. The record region
			// before it is intact; drop the partial footer so the segment
			// stays active and re-seals cleanly later.
			return truncate(offset, "torn segment footer")
		}
		recLen := binary.BigEndian.Uint64(lenBuf[:])
		if recLen == 0 {
			// A zero-length record at the very tail is a torn write; one
			// with bytes after it is mid-file corruption and fatal.
			if offset+8 == size {
				return truncate(offset, "zero-length record at tail")
			}
			return nil, fmt.Errorf("corrupt block record at offset %d: zero-length record mid-file", offset)
		}
		if recLen > uint64(remaining-8) {
			return truncate(offset, fmt.Sprintf("record length %d exceeds remaining %d bytes", recLen, remaining-8))
		}
		data := make([]byte, recLen)
		if _, err := f.ReadAt(data, offset+8); err != nil {
			return nil, fmt.Errorf("read record: %w", err)
		}
		if decode {
			b, err := block.UnmarshalCopy(data)
			if err != nil {
				if offset+8+int64(recLen) == size {
					return truncate(offset, fmt.Sprintf("undecodable final record: %v", err))
				}
				return nil, fmt.Errorf("corrupt block record at offset %d: %w", offset, err)
			}
			if b.Header.Number != next {
				return nil, fmt.Errorf("segment out of order at offset %d: got block %d, expected %d", offset, b.Header.Number, next)
			}
			// Chain check; skipped when there is no predecessor hash to
			// compare against (block 0, or a quarantined predecessor).
			if next > 0 && prevHash != nil && !bytes.Equal(b.Header.PreviousHash, prevHash) {
				return nil, fmt.Errorf("%w at block %d (replay)", ErrBrokenChain, next)
			}
			prevHash = block.HeaderHash(&b.Header)
			res.lastHash = prevHash
			res.commitHash = b.Metadata.CommitHash
		}
		h.Write(lenBuf[:])
		h.Write(data)
		res.offsets = append(res.offsets, entry{offset: offset, length: int64(8 + recLen)})
		offset += 8 + int64(recLen)
		next++
		res.blocks++
		res.lastNum = next
	}
	res.dataLen = offset
	h.Sum(res.sum[:0])
	return res, nil
}
