package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The persistent index makes Get O(1) across restarts without rescanning
// sealed segments. It records, for every *sealed* segment, the segment
// metadata (mirroring its footer) plus each block's (offset, length); the
// active segment is deliberately absent — it is always tail-scanned on
// open, which is also where torn-tail truncation lives.
//
// Layout:
//
//	magic "BMACIDX1" [8]
//	base u64                  — first retained block number (prune floor)
//	baseHashLen u64 | baseHash           — header hash of block base-1
//	baseCommitHashLen u64 | baseCommitHash — commit hash of block base-1
//	segCount u64
//	segCount × { id u64 | first u64 | count u64 | dataLen u64 | sum [32] }
//	segCount × count × { offset u64 | length u64 }
//	sha256 [32]               — over everything above
//
// The base hashes anchor the chain when every block below base was pruned:
// without them a fully-pruned ledger could not verify (or produce) the
// next block's previous-hash/commit-hash linkage after a restart. They are
// immutable once written (block base-1 never changes), so index rewrites
// at seal/prune time are sufficient.
//
// The file is written atomically (temp + fsync + rename + dir-sync); a
// missing, truncated or checksum-failing index triggers a full rebuild by
// scanning the segment files — slower, never incorrect.

var indexMagic = [8]byte{'B', 'M', 'A', 'C', 'I', 'D', 'X', '1'}

// ErrCorruptIndex reports an unreadable persistent index (the ledger
// recovers by rescanning segments; this error is only surfaced in tests).
var ErrCorruptIndex = errors.New("ledger: corrupt index")

// indexSegment is one sealed segment's row in the persistent index.
type indexSegment struct {
	id      uint64
	first   uint64
	count   uint64
	dataLen int64
	sum     [sha256Size]byte
	offsets []entry // seg pointer unset; offset/length only
}

// persistIndexLocked atomically rewrites the index file from the in-memory
// state (sealed segments only). It runs the commit-fault hook first — the
// index write is a crash-point the chaos slow-disk scenario targets — and
// must be called with l.mu held.
func (l *Ledger) persistIndexLocked() error {
	if err := l.runFault("index write"); err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, indexMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, l.base)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(l.baseHash)))
	buf = append(buf, l.baseHash...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(l.baseCommitHash)))
	buf = append(buf, l.baseCommitHash...)
	var sealed []*segment
	for _, s := range l.segs {
		if s.sealed {
			sealed = append(sealed, s)
		}
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(sealed)))
	for _, s := range sealed {
		buf = binary.BigEndian.AppendUint64(buf, s.id)
		buf = binary.BigEndian.AppendUint64(buf, s.first)
		buf = binary.BigEndian.AppendUint64(buf, s.count)
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.dataLen))
		buf = append(buf, s.sum[:]...)
	}
	for _, s := range sealed {
		for n := s.first; n < s.first+s.count; n++ {
			e := l.entries[n-l.base]
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.offset))
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.length))
		}
	}
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)

	path := filepath.Join(l.dir, indexFile)
	tmp, err := os.CreateTemp(l.dir, indexFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("index temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()        // bmaclint:allow errdiscard (cleanup of failed temp write)
		os.Remove(tmpName) // bmaclint:allow errdiscard (cleanup of failed temp write)
	}
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return fmt.Errorf("index write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("index sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) // bmaclint:allow errdiscard (cleanup of failed temp write)
		return fmt.Errorf("index close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) // bmaclint:allow errdiscard (cleanup of failed temp write)
		return fmt.Errorf("index rename: %w", err)
	}
	return syncDir(l.dir)
}

// indexData is a decoded persistent index.
type indexData struct {
	base           uint64
	baseHash       []byte
	baseCommitHash []byte
	segs           map[uint64]*indexSegment
}

// loadIndex reads and validates the persistent index. A missing file
// returns os.ErrNotExist; any structural or checksum problem returns
// ErrCorruptIndex and the caller falls back to a full rescan.
func loadIndex(dir string) (*indexData, error) {
	buf, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, err
	}
	if len(buf) < 8+8+8+8+8+sha256Size || [8]byte(buf[:8]) != indexMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCorruptIndex)
	}
	body, trailer := buf[:len(buf)-sha256Size], buf[len(buf)-sha256Size:]
	sum := sha256.Sum256(body)
	if [sha256Size]byte(trailer) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptIndex)
	}
	pos := 8
	structErr := fmt.Errorf("%w: truncated body", ErrCorruptIndex)
	u64 := func() (uint64, bool) {
		if pos+8 > len(body) {
			return 0, false
		}
		v := binary.BigEndian.Uint64(body[pos:])
		pos += 8
		return v, true
	}
	bytesField := func() ([]byte, bool) {
		n, ok := u64()
		if !ok || n > uint64(len(body)-pos) {
			return nil, false
		}
		if n == 0 {
			return nil, true
		}
		out := append([]byte(nil), body[pos:pos+int(n)]...)
		pos += int(n)
		return out, true
	}
	d := &indexData{segs: make(map[uint64]*indexSegment)}
	var ok bool
	if d.base, ok = u64(); !ok {
		return nil, structErr
	}
	if d.baseHash, ok = bytesField(); !ok {
		return nil, structErr
	}
	if d.baseCommitHash, ok = bytesField(); !ok {
		return nil, structErr
	}
	segCount, ok := u64()
	if !ok || segCount > uint64(len(body)) {
		return nil, fmt.Errorf("%w: absurd segment count", ErrCorruptIndex)
	}
	segs := make([]*indexSegment, 0, segCount)
	var totalBlocks uint64
	for i := uint64(0); i < segCount; i++ {
		if pos+8*4+sha256Size > len(body) {
			return nil, structErr
		}
		is := &indexSegment{}
		is.id, _ = u64()
		is.first, _ = u64()
		is.count, _ = u64()
		dl, _ := u64()
		is.dataLen = int64(dl)
		copy(is.sum[:], body[pos:pos+sha256Size])
		pos += sha256Size
		segs = append(segs, is)
		totalBlocks += is.count
	}
	if len(body)-pos != int(totalBlocks)*16 {
		return nil, fmt.Errorf("%w: entry table size mismatch", ErrCorruptIndex)
	}
	for _, is := range segs {
		is.offsets = make([]entry, is.count)
		for j := range is.offsets {
			off, _ := u64()
			ln, _ := u64()
			is.offsets[j] = entry{offset: int64(off), length: int64(ln)}
		}
		d.segs[is.id] = is
	}
	return d, nil
}

// removeStaleTemps deletes leftover index temp files and aborted restore
// files from a crashed prior process.
func removeStaleTemps(dir string, warnf func(string, ...any)) {
	for _, pat := range []string{indexFile + ".tmp-*", segPrefix + "*.restore"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			continue
		}
		for _, m := range matches {
			if err := os.Remove(m); err == nil {
				warnf("removed stale temp file %s", filepath.Base(m))
			}
		}
	}
}
