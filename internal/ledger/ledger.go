// Package ledger implements the disk-based block ledger as a segmented
// store: blocks append to rotating fixed-budget segment files, each sealed
// with a checksummed footer once full, with a persistent height→(segment,
// offset) index enabling O(1) random reads through a bounded reader pool.
//
// The paper identifies ledger commit as I/O-bound (bottleneck 4) and keeps
// it on the CPU, overlapped with hardware validation of the next block;
// internal/peer implements that overlap on top of this package. The
// segmented layout is the recovery/robustness layer on top of that:
//
//   - Torn-tail truncation is confined to the active (unsealed) segment —
//     a crash mid-append can only damage the file currently being written.
//   - A sealed segment whose footer checksum no longer matches its bytes
//     is quarantined (renamed aside, its block range recorded as missing)
//     instead of failing the peer; the missing range is re-fetched through
//     delivery catch-up and restored via Restore.
//   - Sealed segments fully covered by a durable state checkpoint become
//     prunable (Prune), bounding disk growth.
//   - Historical reads (Get) run through per-segment read-only handles and
//     a bounded reader semaphore, so a slow archive reader never stalls
//     Commit behind the writer mutex.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"log"
	"os"
	"path/filepath"
	"sync"

	"bmac/internal/block"
	"bmac/internal/telemetry"
	"bmac/internal/wire"
)

var (
	// ErrDuplicateBlock reports a commit of an already-committed number.
	ErrDuplicateBlock = errors.New("ledger: duplicate block")
	// ErrOutOfOrder reports a commit that skips a block number.
	ErrOutOfOrder = errors.New("ledger: out-of-order block")
	// ErrNotFound reports a read of an uncommitted block.
	ErrNotFound = errors.New("ledger: block not found")
	// ErrBrokenChain reports a previous-hash mismatch.
	ErrBrokenChain = errors.New("ledger: previous hash mismatch")
	// ErrPruned reports a read of a block whose segment was pruned after a
	// covering checkpoint. Distinct from ErrNotFound so catch-up sources can
	// surface "the archive no longer reaches that far back" precisely.
	ErrPruned = errors.New("ledger: block pruned")
	// ErrMissing reports a read of a block inside a quarantined segment's
	// range that has not been restored yet.
	ErrMissing = errors.New("ledger: block in quarantined segment")
	// ErrRestore reports a Restore call that does not extend the pending
	// missing range correctly (wrong number, broken hash linkage).
	ErrRestore = errors.New("ledger: restore rejected")
)

const (
	segPrefix = "blockfile_"
	indexFile = "index"

	// defaultSegmentBytes rotates segments at 64 MiB, Fabric's block file
	// ballpark; tests and experiments dial it down to force rotation.
	defaultSegmentBytes = 64 << 20
	// defaultReaders bounds concurrent historical reads and per-segment
	// pooled read handles.
	defaultReaders = 8
	// defaultMaxWarnings bounds the recovery-notice ring.
	defaultMaxWarnings = 64
	// maxFaultRetries bounds transient commit-fault retries (the chaos
	// slow-disk scenario) per write.
	maxFaultRetries = 8
)

// Options configure a Ledger.
type Options struct {
	// SegmentBytes is the byte budget of one segment file: the active
	// segment is sealed (footer + checksum) and rotated once its record
	// region reaches this size. 0 means 64 MiB.
	SegmentBytes int64
	// Readers bounds concurrent historical reads (Get) and the number of
	// pooled read-only handles per segment. 0 means 8.
	Readers int
	// MaxWarnings bounds the recovery-notice ring kept by Warnings();
	// further notices are counted in WarningsDropped. 0 means 64.
	MaxWarnings int
	// SyncEachBlock fsyncs after every block, modeling a durability-first
	// deployment. Off by default (Fabric also relies on buffered writes);
	// segment seals and index writes are always fsynced regardless.
	SyncEachBlock bool
	// CommitFault, when set, runs before each block append and before each
	// seal's index persistence — the fault-injection point of the chaos
	// slow-disk scenario. A returned error models a transient device fault:
	// the writer retries the hook a bounded number of times (counted in
	// FaultRetries) before surfacing the error. The hook fires before any
	// bytes are written, so a faulted write leaves no torn state.
	CommitFault func() error
	// Metrics, when registered, mirrors the segment lifecycle counters
	// (seal/quarantine/restore/prune/index-rebuild) into the telemetry
	// registry. The zero value (telemetry off) is nil handles — one
	// predicted branch per event.
	Metrics telemetry.LedgerMetrics
}

// Range is a contiguous run of block numbers missing from the ledger
// because their segment was quarantined. Restore backfills it in order.
type Range struct {
	First uint64 // first missing block number
	Count uint64 // number of missing blocks

	segID uint64 // segment id the restored file will be written under
}

// Ledger is an append-only segmented block store. Safe for concurrent use;
// commits are strictly sequential by block number, as in Fabric, while
// historical reads fan out through per-segment read-only handles.
type Ledger struct {
	mu sync.Mutex

	dir         string
	segBudget   int64
	readerCap   int
	syncEach    bool
	commitFault func() error // immutable after Open; fault-injection hook
	m           telemetry.LedgerMetrics

	segs    []*segment    // guarded by mu; ascending block order, active last
	active  *segment      // guarded by mu; the unsealed tail segment
	file    *os.File      // guarded by mu; writer handle on the active segment
	w       *bufio.Writer // guarded by mu
	segHash hash.Hash     // guarded by mu; running sha256 of the active record region

	base       uint64  // guarded by mu; first block number still indexed (post-prune)
	entries    []entry // guarded by mu; entries[n-base] locates block n
	height     uint64  // guarded by mu; next expected block number
	lastHash   []byte  // guarded by mu; header hash of the last block
	commitHash []byte  // guarded by mu; running commit hash chain
	// baseHash/baseCommitHash anchor the chain at the prune floor: the
	// header hash and commit hash of block base-1 (nil when base == 0).
	// Persisted in the index so a fully-pruned ledger can still chain.
	baseHash       []byte // guarded by mu
	baseCommitHash []byte // guarded by mu

	missing []Range       // guarded by mu; quarantined ranges awaiting Restore
	rst     *restoreState // guarded by mu; in-progress backfill

	readSem chan struct{} // bounds concurrent historical reads

	bytesWritten int64 // guarded by mu
	faultRetries int64 // guarded by mu; transient commit faults absorbed

	sealed      int64 // guarded by mu; segments sealed this session
	quarantined int64 // guarded by mu; segments quarantined this session
	restoredSeg int64 // guarded by mu; segments fully restored this session
	restoredBlk int64 // guarded by mu; blocks restored this session
	pruned      int64 // guarded by mu; segments pruned this session
	rebuilds    int64 // guarded by mu; index rebuilds (missing/corrupt index)

	warnings    []string // guarded by mu; bounded ring, oldest first
	warnDropped int64    // guarded by mu; notices dropped once the ring filled
	maxWarnings int
}

// entry locates one block: its segment plus the record's offset and length
// (length includes the 8-byte prefix). A nil seg marks a quarantined hole.
type entry struct {
	seg    *segment
	offset int64
	length int64
}

// lookup status codes for lookupLocked.
const (
	lookupOK = iota
	lookupNotFound
	lookupPruned
	lookupMissing
)

// lookupLocked resolves a block number to its index entry. It is the
// hot-path index probe of every historical read; it must stay
// allocation-free so a catch-up storm of Get calls costs no GC pressure.
// It must be called with l.mu held.
//
// bmaclint:noalloc
func (l *Ledger) lookupLocked(num uint64) (entry, int) {
	if num >= l.height {
		return entry{}, lookupNotFound
	}
	if num < l.base {
		return entry{}, lookupPruned
	}
	e := l.entries[num-l.base]
	if e.seg == nil {
		return entry{}, lookupMissing
	}
	return e, lookupOK
}

// Open creates or opens a ledger in dir. Existing segments are adopted
// from the persistent index (full-checksum-verified) or rescanned when the
// index is missing or stale; a torn or undecodable final record in the
// active segment (a crash mid-append) is truncated away with a warning,
// and a checksum-failing sealed segment is quarantined — renamed aside and
// recorded as a missing range — instead of failing the open.
func Open(dir string, opts Options) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger dir: %w", err)
	}
	l := &Ledger{
		dir:         dir,
		segBudget:   opts.SegmentBytes,
		readerCap:   opts.Readers,
		syncEach:    opts.SyncEachBlock,
		commitFault: opts.CommitFault,
		m:           opts.Metrics,
		maxWarnings: opts.MaxWarnings,
	}
	if l.segBudget <= 0 {
		l.segBudget = defaultSegmentBytes
	}
	if l.readerCap <= 0 {
		l.readerCap = defaultReaders
	}
	if l.maxWarnings <= 0 {
		l.maxWarnings = defaultMaxWarnings
	}
	l.readSem = make(chan struct{}, l.readerCap)
	l.mu.Lock()
	err := l.openLocked()
	l.mu.Unlock()
	if err != nil {
		l.closeFilesLocked()
		return nil, err
	}
	return l, nil
}

// warnf records a recovery notice (readable via Warnings) and logs it.
// The ring is bounded: once full, the oldest notice is evicted and the
// eviction counted, so a pathologically torn ledger cannot grow memory
// without bound during replay. It must be called with l.mu held.
func (l *Ledger) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if len(l.warnings) >= l.maxWarnings {
		copy(l.warnings, l.warnings[1:])
		l.warnings[len(l.warnings)-1] = msg
		l.warnDropped++
	} else {
		l.warnings = append(l.warnings, msg)
	}
	log.Printf("ledger: %s", msg)
}

// Warnings returns the most recent recovery notices (e.g. a truncated torn
// tail write, a quarantined segment), oldest first. The ring is bounded by
// Options.MaxWarnings; WarningsDropped counts evicted notices.
func (l *Ledger) Warnings() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.warnings...)
}

// WarningsDropped reports how many recovery notices were evicted from the
// bounded Warnings ring.
func (l *Ledger) WarningsDropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.warnDropped
}

// Height returns the next expected block number (== committed block count
// when starting from genesis 0).
func (l *Ledger) Height() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.height
}

// Base returns the first block number still held by the ledger; blocks
// below it were pruned after a covering checkpoint.
func (l *Ledger) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// LastCommitHash returns the commit hash of the most recent block.
func (l *Ledger) LastCommitHash() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.commitHash...)
}

// runFault retries the commit-fault hook (transient device faults) a
// bounded number of times. It must be called with l.mu held.
func (l *Ledger) runFault(what string) error {
	if l.commitFault == nil {
		return nil
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = l.commitFault(); err == nil {
			return nil
		}
		l.faultRetries++
		if attempt >= maxFaultRetries {
			return fmt.Errorf("ledger: %s fault persisted after %d retries: %w", what, maxFaultRetries, err)
		}
	}
}

// Commit appends a validated block. The block's metadata must already carry
// its validation flags; Commit computes and stores the commit hash chain
// value and enforces sequential numbering, duplicate detection (via the
// block index) and previous-hash chaining. Crossing the segment byte
// budget seals the active segment (footer checksum, fsync, persistent
// index update) and rotates to a fresh one.
func (l *Ledger) Commit(b *block.Block) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	num := b.Header.Number
	if num < l.height {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateBlock, num)
	}
	if num != l.height {
		return nil, fmt.Errorf("%w: got %d, expected %d", ErrOutOfOrder, num, l.height)
	}
	if l.height > 0 && !bytes.Equal(b.Header.PreviousHash, l.lastHash) {
		return nil, fmt.Errorf("%w at block %d", ErrBrokenChain, num)
	}

	// Transient device faults are retried here, inside the commit lock and
	// before any write: retrying the whole block commit at a higher layer
	// is unsafe (state may already be applied), retrying the pre-write
	// hook is trivially idempotent.
	if err := l.runFault("commit"); err != nil {
		return nil, err
	}

	b.Metadata.CommitHash = block.CommitHash(l.commitHash, b.Header.DataHash, b.Metadata.ValidationFlags)

	// The marshal buffer's lifetime is exactly this append (bufio.Write
	// consumes the bytes before returning), so it comes from the pool:
	// steady-state ledger commits allocate nothing for marshaling.
	data := block.AppendBlock(wire.GetBuf(block.Size(b)), b)
	defer wire.PutBuf(data)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	if _, err := l.w.Write(lenBuf[:]); err != nil {
		return nil, fmt.Errorf("write block length: %w", err)
	}
	if _, err := l.w.Write(data); err != nil {
		return nil, fmt.Errorf("write block: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return nil, fmt.Errorf("flush block: %w", err)
	}
	if l.syncEach {
		if err := l.file.Sync(); err != nil {
			return nil, fmt.Errorf("sync block file: %w", err)
		}
	}
	l.segHash.Write(lenBuf[:])
	l.segHash.Write(data)

	recLen := int64(8 + len(data))
	l.entries = append(l.entries, entry{seg: l.active, offset: l.active.dataLen, length: recLen})
	l.active.dataLen += recLen
	l.active.count++
	l.bytesWritten += recLen
	l.height = num + 1
	l.lastHash = block.HeaderHash(&b.Header)
	l.commitHash = b.Metadata.CommitHash

	if l.active.dataLen >= l.segBudget {
		if err := l.rotateLocked(); err != nil {
			// The block itself is committed and readable; rotation failure
			// surfaces so the caller knows durability work is pending.
			return nil, err
		}
	}
	return l.commitHash, nil
}

// Get reads a committed block by number in O(1) via the block index. The
// read runs outside the writer mutex through a per-segment read-only
// handle, bounded by the reader semaphore, so concurrent catch-up streams
// cannot stall Commit. A read that fails inside a sealed segment triggers
// a checksum verification; on mismatch the segment is quarantined and the
// read reports ErrMissing.
func (l *Ledger) Get(num uint64) (*block.Block, error) {
	l.mu.Lock()
	e, st := l.lookupLocked(num)
	l.mu.Unlock()
	switch st {
	case lookupNotFound:
		return nil, fmt.Errorf("%w: %d", ErrNotFound, num)
	case lookupPruned:
		return nil, fmt.Errorf("%w: %d", ErrPruned, num)
	case lookupMissing:
		return nil, fmt.Errorf("%w: %d", ErrMissing, num)
	}

	l.readSem <- struct{}{}
	b, err := e.seg.readBlock(e)
	<-l.readSem
	if err == nil {
		return b, nil
	}
	// A sealed segment that fails a read is either bit-rot or a stale
	// handle race with quarantine/prune; verify the checksum and
	// quarantine on mismatch, then re-report the block's new status.
	if e.seg.isSealed() {
		l.mu.Lock()
		l.verifyAndQuarantineLocked(e.seg, err)
		_, st := l.lookupLocked(num)
		l.mu.Unlock()
		switch st {
		case lookupMissing:
			return nil, fmt.Errorf("%w: %d", ErrMissing, num)
		case lookupPruned:
			return nil, fmt.Errorf("%w: %d", ErrPruned, num)
		}
	}
	return nil, fmt.Errorf("read block %d: %w", num, err)
}

// readBlockLocked reads and decodes one block through the segment handle
// pool while l.mu is held — for rare maintenance paths (open, restore
// linkage checks) that need a block mid-mutation.
func (l *Ledger) readBlockLocked(num uint64) (*block.Block, error) {
	e, st := l.lookupLocked(num)
	switch st {
	case lookupNotFound:
		return nil, fmt.Errorf("%w: %d", ErrNotFound, num)
	case lookupPruned:
		return nil, fmt.Errorf("%w: %d", ErrPruned, num)
	case lookupMissing:
		return nil, fmt.Errorf("%w: %d", ErrMissing, num)
	}
	return e.seg.readBlock(e)
}

// FaultRetries reports how many transient commit faults (injected via
// Options.CommitFault) were absorbed by retry.
func (l *Ledger) FaultRetries() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faultRetries
}

// BytesWritten reports the cumulative bytes appended this session.
func (l *Ledger) BytesWritten() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesWritten
}

// Stats is a point-in-time summary of the segmented store.
type Stats struct {
	Segments       int    // live segment files (incl. the active one)
	SealedSegments int    // live sealed segments
	Base           uint64 // first retained block number
	Height         uint64 // next expected block number
	MissingBlocks  uint64 // blocks inside quarantined, not-yet-restored ranges

	// Session counters.
	Sealed          int64 // segments sealed
	Quarantined     int64 // segments quarantined (checksum failure)
	RestoredSegs    int64 // quarantined segments fully restored
	RestoredBlocks  int64 // blocks backfilled via Restore
	Pruned          int64 // segments pruned after a covering checkpoint
	IndexRebuilds   int64 // opens that had to rescan segments for the index
	FaultRetries    int64 // transient write faults absorbed
	BytesWritten    int64
	WarningsDropped int64
}

// Stats snapshots the ledger's segment/robustness counters.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Segments:        len(l.segs),
		Base:            l.base,
		Height:          l.height,
		Sealed:          l.sealed,
		Quarantined:     l.quarantined,
		RestoredSegs:    l.restoredSeg,
		RestoredBlocks:  l.restoredBlk,
		Pruned:          l.pruned,
		IndexRebuilds:   l.rebuilds,
		FaultRetries:    l.faultRetries,
		BytesWritten:    l.bytesWritten,
		WarningsDropped: l.warnDropped,
	}
	for _, s2 := range l.segs {
		if s2.sealed {
			s.SealedSegments++
		}
	}
	for _, r := range l.missing {
		s.MissingBlocks += r.Count
	}
	return s
}

// MissingRanges returns the quarantined block ranges awaiting Restore,
// sorted by block number. Empty on a healthy ledger.
func (l *Ledger) MissingRanges() []Range {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Range(nil), l.missing...)
}

// closeFilesLocked releases every file handle (writer + reader pools).
func (l *Ledger) closeFilesLocked() {
	if l.file != nil {
		l.file.Close() // bmaclint:allow errdiscard (teardown: writer flushed or open failed; close error is unactionable)
		l.file = nil
	}
	for _, s := range l.segs {
		s.drainReaders()
	}
	if l.rst != nil {
		l.rst.abort()
		l.rst = nil
	}
}

// Close flushes and closes the block files and reader pools.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.w != nil {
		if ferr := l.w.Flush(); ferr != nil {
			err = fmt.Errorf("flush on close: %w", ferr)
		}
	}
	if l.file != nil {
		if cerr := l.file.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.file = nil
	}
	for _, s := range l.segs {
		s.drainReaders()
	}
	if l.rst != nil {
		l.rst.abort()
		l.rst = nil
	}
	return err
}

// syncDir fsyncs a directory so a just-created entry in it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("open ledger dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("sync ledger dir: %w", err)
	}
	return nil
}

// segPath returns the data file path for a segment id.
func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d", segPrefix, id))
}

// SealedSegmentPaths lists the sealed segment files of a ledger directory
// (identified by a valid footer), ascending by id, without opening the
// ledger. Chaos tooling uses it to target on-disk corruption at sealed
// segments specifically.
func SealedSegmentPaths(dir string) ([]string, error) {
	ids, err := listSegmentIDs(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, id := range ids {
		path := segPath(dir, id)
		if _, err := readFooter(path); err == nil {
			out = append(out, path)
		}
	}
	return out, nil
}

// sha256Size aliases the checksum width used by footers and the index.
const sha256Size = sha256.Size
