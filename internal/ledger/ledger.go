// Package ledger implements the disk-based block ledger: an append-only
// block file plus an in-memory block index used for duplicate checking,
// mirroring Fabric's file ledger + index database.
//
// The paper identifies ledger commit as I/O-bound (bottleneck 4) and keeps
// it on the CPU, overlapped with hardware validation of the next block;
// internal/peer implements that overlap on top of this package.
package ledger

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"

	"bmac/internal/block"
	"bmac/internal/wire"
)

var (
	// ErrDuplicateBlock reports a commit of an already-committed number.
	ErrDuplicateBlock = errors.New("ledger: duplicate block")
	// ErrOutOfOrder reports a commit that skips a block number.
	ErrOutOfOrder = errors.New("ledger: out-of-order block")
	// ErrNotFound reports a read of an uncommitted block.
	ErrNotFound = errors.New("ledger: block not found")
	// ErrBrokenChain reports a previous-hash mismatch.
	ErrBrokenChain = errors.New("ledger: previous hash mismatch")
)

// Ledger is an append-only block store. Safe for concurrent use; commits
// are strictly sequential by block number, as in Fabric.
type Ledger struct {
	mu sync.Mutex

	file   *os.File
	w      *bufio.Writer // guarded by mu
	offset int64         // guarded by mu

	index      map[uint64]indexEntry // guarded by mu; block number -> file location
	height     uint64                // guarded by mu; next expected block number
	lastHash   []byte                // guarded by mu; header hash of the last block
	commitHash []byte                // guarded by mu; running commit hash chain

	bytesWritten int64 // guarded by mu
	syncEach     bool
	commitFault  func() error // immutable after Open; fault-injection hook
	faultRetries int64        // guarded by mu; transient commit faults absorbed
	warnings     []string     // guarded by mu
}

type indexEntry struct {
	offset int64
	length int64
}

// Options configure a Ledger.
type Options struct {
	// SyncEachBlock fsyncs after every block, modeling a durability-first
	// deployment. Off by default (Fabric also relies on buffered writes).
	SyncEachBlock bool
	// CommitFault, when set, runs before each block append — the
	// fault-injection point of the chaos slow-disk scenario. A returned
	// error models a transient device fault: Commit retries the hook a
	// bounded number of times (counted in FaultRetries) before surfacing
	// the error. The hook fires after the duplicate/order/chain checks and
	// before any bytes are written, so a faulted commit leaves no torn
	// state.
	CommitFault func() error
}

// Open creates or opens a ledger in dir. An existing block file is replayed
// to rebuild the index; a torn or undecodable final record (a crash mid-
// append) is truncated away with a warning instead of failing the open,
// and a freshly created block file is made durable by fsyncing dir.
func Open(dir string, opts Options) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger dir: %w", err)
	}
	path := filepath.Join(dir, "blockfile_000000")
	created := false
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		created = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open block file: %w", err)
	}
	if created {
		// The file's directory entry must survive a crash too, or a
		// post-crash replay could find an empty directory where a ledger
		// (and its fsynced blocks) used to be.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	l := &Ledger{
		file:        f,
		index:       make(map[uint64]indexEntry),
		syncEach:    opts.SyncEachBlock,
		commitFault: opts.CommitFault,
	}
	l.mu.Lock()
	err = l.replay()
	l.mu.Unlock()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Discard any torn tail write left by a crash; otherwise stale bytes
	// beyond the logical end could corrupt a later replay.
	if info, err := f.Stat(); err == nil && info.Size() > l.offset {
		if err := f.Truncate(l.offset); err != nil {
			f.Close()
			return nil, fmt.Errorf("truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(l.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("seek to tail: %w", err)
	}
	l.w = bufio.NewWriterSize(f, 1<<20)
	return l, nil
}

// replay scans the block file to rebuild the index, height and hash
// chain. It must be called with l.mu held (Open takes the lock before
// the ledger is shared).
// A partial or undecodable final record — the footprint of a crash mid-
// append — is logically truncated with a warning; corruption that is NOT
// confined to the tail (a broken record with valid data after it) still
// fails the open, because silently skipping committed blocks would fork
// the chain.
func (l *Ledger) replay() error {
	info, err := l.file.Stat()
	if err != nil {
		return fmt.Errorf("stat block file: %w", err)
	}
	size := info.Size()
	r := bufio.NewReader(l.file)
	var off int64
	var lenBuf [8]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				l.warnf("torn length prefix at offset %d (%d trailing bytes); truncating", off, size-off)
				break
			}
			return fmt.Errorf("replay length: %w", err)
		}
		n := int64(binary.BigEndian.Uint64(lenBuf[:]))
		if n <= 0 {
			// A zero or nonsense length with nothing after it is a torn
			// prefix; with data following it is mid-file corruption, and
			// truncating would destroy committed blocks.
			if off+8 == size {
				l.warnf("torn zero-length record at offset %d; truncating", off)
				break
			}
			return fmt.Errorf("replay block at offset %d: invalid record length %d with %d bytes following",
				off, n, size-off-8)
		}
		if n > size-off-8 {
			// The prefix promises more bytes than the file holds: only a
			// torn final write can look like this.
			l.warnf("torn record at offset %d: length %d with %d bytes left; truncating", off, n, size-off-8)
			break
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			l.warnf("torn record body at offset %d; truncating", off)
			break
		}
		b, err := block.Unmarshal(data)
		if err != nil {
			if off+8+n == size {
				l.warnf("undecodable final record at offset %d (%v); truncating", off, err)
				break
			}
			return fmt.Errorf("replay block at offset %d: %w", off, err)
		}
		if len(l.index) > 0 && b.Header.Number != l.height {
			if off+8+n == size {
				l.warnf("final record has block %d where %d was expected; truncating", b.Header.Number, l.height)
				break
			}
			return fmt.Errorf("replay block at offset %d: got block %d, expected %d", off, b.Header.Number, l.height)
		}
		l.index[b.Header.Number] = indexEntry{offset: off, length: 8 + n}
		l.height = b.Header.Number + 1
		l.lastHash = block.HeaderHash(&b.Header)
		l.commitHash = b.Metadata.CommitHash
		off += 8 + n
	}
	l.offset = off
	return nil
}

// warnf records a recovery notice (readable via Warnings) and logs it.
// It must be called with l.mu held.
func (l *Ledger) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	l.warnings = append(l.warnings, msg)
	log.Printf("ledger: %s", msg)
}

// Warnings returns the recovery notices emitted while opening the ledger
// (e.g. a truncated torn tail write). Empty on a clean open.
func (l *Ledger) Warnings() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.warnings...)
}

// syncDir fsyncs a directory so a just-created entry in it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("open ledger dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("sync ledger dir: %w", err)
	}
	return nil
}

// Height returns the next expected block number (== committed block count
// when starting from genesis 0).
func (l *Ledger) Height() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.height
}

// LastCommitHash returns the commit hash of the most recent block.
func (l *Ledger) LastCommitHash() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.commitHash...)
}

// Commit appends a validated block. The block's metadata must already carry
// its validation flags; Commit computes and stores the commit hash chain
// value and enforces sequential numbering, duplicate detection (via the
// block index) and previous-hash chaining.
func (l *Ledger) Commit(b *block.Block) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	num := b.Header.Number
	if _, dup := l.index[num]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateBlock, num)
	}
	if num != l.height {
		return nil, fmt.Errorf("%w: got %d, expected %d", ErrOutOfOrder, num, l.height)
	}
	if l.height > 0 && !bytesEqual(b.Header.PreviousHash, l.lastHash) {
		return nil, fmt.Errorf("%w at block %d", ErrBrokenChain, num)
	}

	if l.commitFault != nil {
		// Transient device faults are retried here, inside the commit
		// lock and before any write: retrying the whole block commit at a
		// higher layer is unsafe (state may already be applied), retrying
		// the pre-write hook is trivially idempotent.
		const maxFaultRetries = 8
		var err error
		for attempt := 0; ; attempt++ {
			if err = l.commitFault(); err == nil {
				break
			}
			l.faultRetries++
			if attempt >= maxFaultRetries {
				return nil, fmt.Errorf("ledger: commit fault persisted after %d retries: %w", maxFaultRetries, err)
			}
		}
	}

	b.Metadata.CommitHash = block.CommitHash(l.commitHash, b.Header.DataHash, b.Metadata.ValidationFlags)

	// The marshal buffer's lifetime is exactly this append (bufio.Write
	// consumes the bytes before returning), so it comes from the pool:
	// steady-state ledger commits allocate nothing for marshaling.
	data := block.AppendBlock(wire.GetBuf(block.Size(b)), b)
	defer wire.PutBuf(data)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	if _, err := l.w.Write(lenBuf[:]); err != nil {
		return nil, fmt.Errorf("write block length: %w", err)
	}
	if _, err := l.w.Write(data); err != nil {
		return nil, fmt.Errorf("write block: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return nil, fmt.Errorf("flush block: %w", err)
	}
	if l.syncEach {
		if err := l.file.Sync(); err != nil {
			return nil, fmt.Errorf("sync block file: %w", err)
		}
	}

	l.index[num] = indexEntry{offset: l.offset, length: int64(8 + len(data))}
	l.offset += int64(8 + len(data))
	l.bytesWritten += int64(8 + len(data))
	l.height = num + 1
	l.lastHash = block.HeaderHash(&b.Header)
	l.commitHash = b.Metadata.CommitHash
	return l.commitHash, nil
}

// Get reads a committed block by number.
func (l *Ledger) Get(num uint64) (*block.Block, error) {
	l.mu.Lock()
	entry, ok := l.index[num]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, num)
	}
	buf := make([]byte, entry.length)
	if _, err := l.file.ReadAt(buf, entry.offset); err != nil {
		return nil, fmt.Errorf("read block %d: %w", num, err)
	}
	return block.Unmarshal(buf[8:])
}

// FaultRetries reports how many transient commit faults (injected via
// Options.CommitFault) were absorbed by retry.
func (l *Ledger) FaultRetries() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faultRetries
}

// BytesWritten reports the cumulative bytes appended this session.
func (l *Ledger) BytesWritten() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesWritten
}

// Close flushes and closes the block file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("flush on close: %w", err)
		}
	}
	return l.file.Close()
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
