package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bmac/internal/block"
)

// Segment-store tests: rotation, the persistent index, the crash windows
// around sealing, quarantine + restore, truncation and pruning.

// chain commits n chained blocks into l (starting at its height) and
// returns them.
func (f *fixture) chain(t *testing.T, l *Ledger, n int) []*block.Block {
	t.Helper()
	var prev []byte
	start := l.Height()
	if start > 0 {
		b, err := l.Get(start - 1)
		if err != nil {
			t.Fatal(err)
		}
		prev = block.HeaderHash(&b.Header)
	}
	var out []*block.Block
	for i := 0; i < n; i++ {
		b := f.block(t, start+uint64(i), prev)
		prev = block.HeaderHash(&b.Header)
		if _, err := l.Commit(b); err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// openTiny opens dir with a 1-byte segment budget: every block seals its
// segment and rotation happens on each commit.
func openTiny(t *testing.T, dir string) *Ledger {
	t.Helper()
	l, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRotationReopenAndGet(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	blocks := f.chain(t, l, 6)
	st := l.Stats()
	if st.SealedSegments < 5 {
		t.Fatalf("sealed %d segments for 6 one-block commits, want >= 5", st.SealedSegments)
	}
	wantLast := l.LastCommitHash()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Height() != 6 {
		t.Fatalf("reopened height %d, want 6", l2.Height())
	}
	if l2.Stats().IndexRebuilds != 0 {
		t.Error("clean reopen rebuilt the index")
	}
	for _, want := range blocks {
		got, err := l2.Get(want.Header.Number)
		if err != nil {
			t.Fatalf("Get(%d): %v", want.Header.Number, err)
		}
		if !bytes.Equal(block.Marshal(got), block.Marshal(want)) {
			t.Fatalf("block %d read back differs", want.Header.Number)
		}
	}
	if !bytes.Equal(l2.LastCommitHash(), wantLast) {
		t.Error("commit hash chain lost across reopen")
	}
	// The chain continues across the reopen.
	f.chain(t, l2, 2)
	if l2.Height() != 8 {
		t.Fatalf("height %d after continuing, want 8", l2.Height())
	}
}

func TestMissingIndexRebuilds(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	f.chain(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Height() != 5 {
		t.Fatalf("height %d after index loss, want 5", l2.Height())
	}
	if l2.Stats().IndexRebuilds != 1 {
		t.Errorf("IndexRebuilds = %d, want 1", l2.Stats().IndexRebuilds)
	}
	for i := uint64(0); i < 5; i++ {
		if _, err := l2.Get(i); err != nil {
			t.Fatalf("Get(%d) after rebuild: %v", i, err)
		}
	}
}

func TestCorruptIndexRebuilds(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	f.chain(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, indexFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Height() != 4 || l2.Stats().IndexRebuilds != 1 {
		t.Fatalf("height %d rebuilds %d, want 4 and 1", l2.Height(), l2.Stats().IndexRebuilds)
	}
}

// TestCrashTornFooter simulates a crash mid-seal: the footer write of the
// final segment was torn. The footer bytes must be truncated away and the
// segment re-adopted as the active tail, losing no records.
func TestCrashTornFooter(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	f.chain(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Last sealed segment: chop half its footer off, and remove the index
	// plus the later files so it becomes the tail the scan walks into.
	paths, err := SealedSegmentPaths(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("sealed paths: %v %v", paths, err)
	}
	last := paths[len(paths)-1]
	// Drop everything after `last` (the empty active file) and the index,
	// leaving a directory whose tail segment has a torn footer.
	ids, err := listSegmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	lastID := ids[len(ids)-1]
	if err := os.Remove(segPath(dir, lastID)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-footerSize/2); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Height() != 3 {
		t.Fatalf("height %d after torn footer, want 3", l2.Height())
	}
	for i := uint64(0); i < 3; i++ {
		if _, err := l2.Get(i); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
	f.chain(t, l2, 1)
}

// TestCrashSealedButUnindexed simulates a crash between sealing a segment
// and persisting the index: the footer is complete but the index predates
// it. The segment must be scan-adopted (with a warning), not lost.
func TestCrashSealedButUnindexed(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	f.chain(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Roll the index back to "before the last seal" by deleting it — the
	// same recovery path: sealed files the index does not know.
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Height() != 2 {
		t.Fatalf("height %d, want 2", l2.Height())
	}
	if len(l2.Warnings()) == 0 {
		t.Error("silent recovery: expected at least one warning about the rebuild")
	}
	// The rebuilt index persists: the next open is clean.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Stats().IndexRebuilds != 0 {
		t.Error("rebuilt index was not persisted")
	}
}

// TestStaleIndexTempCleaned: a crash mid index write leaves index.tmp-*
// files; open must sweep them.
func TestStaleIndexTempCleaned(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	f.chain(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "index.tmp-999")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleRestore := filepath.Join(dir, "blockfile_000007.restore")
	if err := os.WriteFile(staleRestore, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, p := range []string{stale, staleRestore} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale temp %s survived open", filepath.Base(p))
		}
	}
}

// TestRuntimeQuarantineAndRestore corrupts a sealed segment under a LIVE
// ledger: the failing Get must quarantine the segment (ErrMissing, not a
// dead ledger), Commit must keep working, and Restore must backfill the
// range from redelivered archive blocks until Get works again — with the
// restored file surviving a cold reopen.
func TestRuntimeQuarantineAndRestore(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	blocks := f.chain(t, l, 5)

	// Clobber block 1's record bytes on disk (its segment is sealed).
	paths, err := SealedSegmentPaths(dir)
	if err != nil || len(paths) < 2 {
		t.Fatalf("sealed paths: %v %v", paths, err)
	}
	fh, err := os.OpenFile(paths[1], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteAt(bytes.Repeat([]byte{0xFF}, 8), 0); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Get(1); !errors.Is(err, ErrMissing) {
		t.Fatalf("Get(1) on corrupt segment: %v, want ErrMissing", err)
	}
	if got := l.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	mr := l.MissingRanges()
	if len(mr) != 1 || mr[0].First != 1 || mr[0].Count != 1 {
		t.Fatalf("missing ranges %v, want [{1 1}]", mr)
	}
	if !l.NeedsRestore(1) || l.NeedsRestore(2) {
		t.Fatal("NeedsRestore bounds wrong")
	}
	// The live half of the store is unaffected.
	if _, err := l.Get(2); err != nil {
		t.Fatalf("Get(2) after quarantining segment 1: %v", err)
	}
	f.chain(t, l, 1) // Commit keeps working

	// A tampered redelivery is rejected; the genuine block restores.
	evil := f.block(t, 1, block.HeaderHash(&blocks[0].Header))
	if err := l.Restore(evil); !errors.Is(err, ErrRestore) {
		t.Fatalf("tampered restore: %v, want ErrRestore", err)
	}
	if err := l.Restore(blocks[1]); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(l.MissingRanges()) != 0 {
		t.Fatalf("missing ranges %v after restore", l.MissingRanges())
	}
	got, err := l.Get(1)
	if err != nil {
		t.Fatalf("Get(1) after restore: %v", err)
	}
	if !bytes.Equal(block.Marshal(got), block.Marshal(blocks[1])) {
		t.Fatal("restored block differs")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(l2.MissingRanges()) != 0 {
		t.Fatalf("reopen sees missing ranges %v", l2.MissingRanges())
	}
	if _, err := l2.Get(1); err != nil {
		t.Fatalf("Get(1) after reopen: %v", err)
	}
}

// TestOpenQuarantinesTailAndRollsBack: bit-rot in the NEWEST sealed
// segment is found by the open-time sweep; with no live successor to pin
// the chain the height must roll back to the hole, and recommitting the
// lost blocks heals the ledger.
func TestOpenQuarantinesTailAndRollsBack(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	blocks := f.chain(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := SealedSegmentPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := paths[len(paths)-1]
	fh, err := os.OpenFile(last, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteAt([]byte{0xFF}, 9); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("open after tail corruption must quarantine, not fail: %v", err)
	}
	defer l2.Close()
	if l2.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", l2.Stats().Quarantined)
	}
	if l2.Height() != 3 {
		t.Fatalf("height %d after tail rollback, want 3", l2.Height())
	}
	if len(l2.MissingRanges()) != 0 {
		t.Fatalf("trailing hole %v should have rolled back, not await restore", l2.MissingRanges())
	}
	// Recommit the lost block: the chain anchor survived.
	if _, err := l2.Commit(blocks[3]); err != nil {
		t.Fatalf("recommit after rollback: %v", err)
	}
	if l2.Height() != 4 {
		t.Fatalf("height %d after recommit, want 4", l2.Height())
	}
}

func TestTruncateFrom(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	blocks := f.chain(t, l, 6)
	defer l.Close()
	if err := l.TruncateFrom(3); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 3 {
		t.Fatalf("height %d after truncate, want 3", l.Height())
	}
	if _, err := l.Get(4); err == nil {
		t.Fatal("truncated block still readable")
	}
	// Recommit 3..5: same chain, fresh files.
	for _, b := range blocks[3:] {
		if _, err := l.Commit(b); err != nil {
			t.Fatalf("recommit %d: %v", b.Header.Number, err)
		}
	}
	for i := uint64(0); i < 6; i++ {
		if _, err := l.Get(i); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

func TestPruneDropsCoveredSegments(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l := openTiny(t, dir)
	f.chain(t, l, 6)
	removed, err := l.Prune(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || l.Base() != 4 {
		t.Fatalf("pruned %d segments, base %d; want removal and base 4", removed, l.Base())
	}
	if _, err := l.Get(2); !errors.Is(err, ErrPruned) {
		t.Fatalf("Get below the floor: %v, want ErrPruned", err)
	}
	if _, err := l.Get(4); err != nil {
		t.Fatalf("Get(4) above the floor: %v", err)
	}
	// The dropped files are really gone.
	left, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) > 3 {
		t.Fatalf("%d segment files survive a prune to 4: %v", len(left), left)
	}
	wantLast := l.LastCommitHash()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != 4 || l2.Height() != 6 {
		t.Fatalf("reopened base %d height %d, want 4 and 6", l2.Base(), l2.Height())
	}
	if !bytes.Equal(l2.LastCommitHash(), wantLast) {
		t.Fatal("commit hash chain lost across prune + reopen")
	}
	// The commit-hash chain continues even though its history is pruned
	// away (the index carries the base anchor hashes).
	f.chain(t, l2, 1)
	if _, err := l2.Get(6); err != nil {
		t.Fatal(err)
	}
	// Repeat prune with nothing newly covered: a no-op, not an error.
	if n, err := l2.Prune(4); err != nil || n != 0 {
		t.Fatalf("idempotent prune: %d, %v", n, err)
	}
}

func TestWarningsRingBounded(t *testing.T) {
	l, err := Open(t.TempDir(), Options{MaxWarnings: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.mu.Lock()
		l.warnf("synthetic warning %d", i)
		l.mu.Unlock()
	}
	w := l.Warnings()
	if len(w) != 4 {
		t.Fatalf("ring holds %d warnings, want 4", len(w))
	}
	if l.WarningsDropped() != 6 {
		t.Fatalf("dropped %d, want 6", l.WarningsDropped())
	}
	// The survivors are the newest.
	if w[len(w)-1] != "synthetic warning 9" {
		t.Fatalf("newest warning %q", w[len(w)-1])
	}
}

func TestConcurrentGetDuringCommit(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1, Readers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f.chain(t, l, 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				num := uint64((g*7 + i) % 8)
				b, err := l.Get(num)
				if err != nil {
					errs <- fmt.Errorf("Get(%d): %w", num, err)
					return
				}
				if b.Header.Number != num {
					errs <- fmt.Errorf("Get(%d) returned block %d", num, b.Header.Number)
					return
				}
			}
		}(g)
	}
	f.chain(t, l, 32) // rotations happen while readers hammer old segments
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if l.Height() != 40 {
		t.Fatalf("height %d, want 40", l.Height())
	}
}
