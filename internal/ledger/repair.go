package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sort"

	"bmac/internal/block"
)

// This file is the damage-control surface of the segmented store:
//
//   - quarantine: a sealed segment whose bytes no longer match its footer
//     checksum is renamed aside and its block range recorded as missing,
//     instead of failing the peer. Every block of the range remains
//     addressable (Get returns ErrMissing) so catch-up readers get a
//     precise signal.
//   - restore: the missing range is backfilled in order from redelivered
//     archive blocks (delivery catch-up). Verification is structural, not
//     trust-based: each block's DataHash is recomputed from its envelopes
//     and the header chain must close against the live successor block
//     (or the in-memory tail hash), which pins the entire range — a
//     restored segment holds the ordered archive copy of those blocks,
//     byte-equivalent in every consensus-relevant field.
//   - truncate: blocks at/above a recovery point are dropped (renamed
//     aside) so delivery recommits them — used when a missing range sits
//     above the newest usable checkpoint, where replay could never cross
//     the gap.
//   - prune: sealed segments fully below a durable checkpoint are deleted
//     from the front, bounding disk growth; the chain stays anchored via
//     the persisted base hashes.

// quarantineName finds an unused aside-name for a quarantined segment.
func quarantineName(path string) string {
	for i := 0; ; i++ {
		cand := path + ".quarantined"
		if i > 0 {
			cand = fmt.Sprintf("%s.quarantined-%d", path, i)
		}
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return cand
		}
	}
}

// quarantineSegLocked renames a checksum-failing sealed segment aside and
// records its block range as missing. live distinguishes a runtime
// quarantine (segment already adopted: entries cleared in place, segment
// unlinked) from an open-time one (segment not yet adopted: hole entries
// appended). It must be called with l.mu held.
func (l *Ledger) quarantineSegLocked(seg *segment, live bool) {
	aside := quarantineName(seg.path)
	if err := os.Rename(seg.path, aside); err != nil {
		// The bytes are bad either way; keep going on the in-memory state
		// and let a later open retry the rename.
		l.warnf("quarantine rename of segment %06d failed: %v", seg.id, err)
	} else {
		l.warnf("segment %06d (blocks [%d,%d)) quarantined to %s; range awaits re-fetch",
			seg.id, seg.first, seg.first+seg.count, filepath.Base(aside))
	}
	if live {
		for i, s := range l.segs {
			if s == seg {
				l.segs = append(l.segs[:i], l.segs[i+1:]...)
				break
			}
		}
		for n := seg.first; n < seg.first+seg.count; n++ {
			l.entries[n-l.base] = entry{}
		}
	} else {
		for n := uint64(0); n < seg.count; n++ {
			l.entries = append(l.entries, entry{})
		}
	}
	seg.drainReaders()
	l.missing = append(l.missing, Range{First: seg.first, Count: seg.count, segID: seg.id})
	sort.Slice(l.missing, func(i, j int) bool { return l.missing[i].First < l.missing[j].First })
	l.quarantined++
	l.m.Quarantined.Inc()
}

// verifyAndQuarantineLocked re-verifies a sealed segment after a failed
// read and quarantines it on checksum mismatch. A passing checksum means
// the read failure was transient (or a stale handle racing retirement)
// and the segment is left alone. It must be called with l.mu held.
func (l *Ledger) verifyAndQuarantineLocked(seg *segment, cause error) {
	adopted := false
	for _, s := range l.segs {
		if s == seg {
			adopted = true
			break
		}
	}
	if !adopted || !seg.sealed {
		return // already retired by a concurrent quarantine or prune
	}
	if err := seg.verifyChecksum(); err == nil {
		return
	}
	l.warnf("sealed segment %06d failed checksum after read error (%v)", seg.id, cause)
	l.quarantineSegLocked(seg, true)
	if err := l.persistIndexLocked(); err != nil {
		l.warnf("index persist after quarantine failed: %v (reopen will rescan)", err)
	}
}

// NeedsRestore reports whether the block number falls inside a
// quarantined, not-yet-restored range. The cluster commit loop uses it to
// route redelivered historical blocks into Restore instead of dropping
// them as duplicates.
func (l *Ledger) NeedsRestore(num uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.missing {
		if num >= r.First && num < r.First+r.Count {
			return true
		}
	}
	return false
}

// restoreState tracks an in-progress backfill of one missing range into a
// fresh segment file (written under a .restore temp name; adopted only
// after the full range verifies and seals).
type restoreState struct {
	r       Range
	tmp     string
	final   string
	f       *os.File
	w       *bufio.Writer
	h       hash.Hash
	next    uint64
	prev    []byte // header hash of the last accepted block (nil = unanchored start)
	offsets []entry
	dataLen int64
}

// abort discards the partial restore file.
func (r *restoreState) abort() {
	if r.f != nil {
		r.f.Close() // bmaclint:allow errdiscard (discarding a partial restore file)
		r.f = nil
	}
	os.Remove(r.tmp) // bmaclint:allow errdiscard (discarding a partial restore file)
}

// Restore feeds one redelivered archive block into the backfill of a
// quarantined range. Blocks must arrive in order starting at a missing
// range's first number (a block equal to the range start resets any
// partial attempt, so a re-wound delivery stream can always start over).
// Each block is verified structurally — recomputed DataHash, previous-hash
// linkage — and on range completion the chain must close against the live
// successor block (or the ledger tail hash), which cryptographically pins
// every restored byte. The completed segment is sealed, fsynced and
// adopted atomically; the missing range disappears and Get serves it
// again.
func (l *Ledger) Restore(b *block.Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()

	num := b.Header.Number
	// A block at a missing range's start (re)starts that range's backfill.
	if l.rst == nil || num == l.rst.r.First {
		started := false
		for _, r := range l.missing {
			if num == r.First {
				if l.rst != nil {
					l.rst.abort()
					l.rst = nil
				}
				if err := l.beginRestoreLocked(r); err != nil {
					return err
				}
				started = true
				break
			}
		}
		if !started && l.rst == nil {
			return fmt.Errorf("%w: block %d does not start a missing range", ErrRestore, num)
		}
	}
	rst := l.rst
	if num != rst.next {
		return fmt.Errorf("%w: got block %d, expected %d", ErrRestore, num, rst.next)
	}
	if err := l.acceptRestoreLocked(rst, b); err != nil {
		rst.abort()
		l.rst = nil
		return err
	}
	if rst.next == rst.r.First+rst.r.Count {
		if err := l.finishRestoreLocked(rst); err != nil {
			rst.abort()
			l.rst = nil
			return err
		}
		l.rst = nil
	}
	return nil
}

// beginRestoreLocked opens the temp segment file for a missing range and
// seeds the verification chain from the predecessor block (or the prune
// floor anchor). It must be called with l.mu held.
func (l *Ledger) beginRestoreLocked(r Range) error {
	final := segPath(l.dir, r.segID)
	tmp := final + ".restore"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("restore temp: %w", err)
	}
	rst := &restoreState{
		r: r, tmp: tmp, final: final,
		f: f, w: bufio.NewWriter(f), h: sha256.New(),
		next: r.First,
	}
	switch {
	case r.First == l.base:
		rst.prev = l.baseHash
	case r.First > l.base:
		if pb, err := l.readBlockLocked(r.First - 1); err == nil {
			rst.prev = block.HeaderHash(&pb.Header)
		}
		// An unreadable predecessor (adjacent missing range) leaves the
		// start unanchored; the closing check at the end still pins the
		// whole range.
	}
	l.rst = rst
	return nil
}

// acceptRestoreLocked verifies and appends one block to the restore file.
// It must be called with l.mu held.
func (l *Ledger) acceptRestoreLocked(rst *restoreState, b *block.Block) error {
	if rst.prev != nil && !bytes.Equal(b.Header.PreviousHash, rst.prev) {
		return fmt.Errorf("%w: block %d previous-hash does not chain", ErrRestore, b.Header.Number)
	}
	if !bytes.Equal(block.DataHash(b.Envelopes), b.Header.DataHash) {
		return fmt.Errorf("%w: block %d data hash does not match its envelopes", ErrRestore, b.Header.Number)
	}
	data := block.Marshal(b)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	if _, err := rst.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("restore write: %w", err)
	}
	if _, err := rst.w.Write(data); err != nil {
		return fmt.Errorf("restore write: %w", err)
	}
	rst.h.Write(lenBuf[:])
	rst.h.Write(data)
	rst.offsets = append(rst.offsets, entry{offset: rst.dataLen, length: int64(8 + len(data))})
	rst.dataLen += int64(8 + len(data))
	rst.prev = block.HeaderHash(&b.Header)
	rst.next++
	l.restoredBlk++
	l.m.RestoredBlocks.Inc()
	return nil
}

// finishRestoreLocked closes the chain against the live successor, seals
// the restored file and adopts it as a sealed segment. It must be called
// with l.mu held.
func (l *Ledger) finishRestoreLocked(rst *restoreState) error {
	end := rst.r.First + rst.r.Count
	if end < l.height {
		succ, err := l.readBlockLocked(end)
		if err != nil {
			return fmt.Errorf("%w: successor block %d unreadable for closure: %v", ErrRestore, end, err)
		}
		if !bytes.Equal(succ.Header.PreviousHash, rst.prev) {
			return fmt.Errorf("%w: restored range does not chain into block %d", ErrRestore, end)
		}
	} else if !bytes.Equal(l.lastHash, rst.prev) {
		return fmt.Errorf("%w: restored tail range does not match ledger tail hash", ErrRestore)
	}

	var sum [sha256Size]byte
	rst.h.Sum(sum[:0])
	foot := footerBytes(rst.r.First, rst.r.Count, rst.dataLen, sum)
	if _, err := rst.w.Write(foot); err != nil {
		return fmt.Errorf("restore footer: %w", err)
	}
	if err := rst.w.Flush(); err != nil {
		return fmt.Errorf("restore flush: %w", err)
	}
	if err := rst.f.Sync(); err != nil {
		return fmt.Errorf("restore sync: %w", err)
	}
	if err := rst.f.Close(); err != nil {
		return fmt.Errorf("restore close: %w", err)
	}
	rst.f = nil
	if err := os.Rename(rst.tmp, rst.final); err != nil {
		return fmt.Errorf("restore rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	seg := newSegment(l.dir, rst.r.segID, l.readerCap)
	seg.first, seg.count, seg.dataLen, seg.sum, seg.sealed = rst.r.First, rst.r.Count, rst.dataLen, sum, true
	for i, e := range rst.offsets {
		e.seg = seg
		l.entries[rst.r.First+uint64(i)-l.base] = e
	}
	l.segs = append(l.segs, seg)
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	for i, r := range l.missing {
		if r.First == rst.r.First {
			l.missing = append(l.missing[:i], l.missing[i+1:]...)
			break
		}
	}
	l.bytesWritten += rst.dataLen + footerSize
	l.restoredSeg++
	l.m.Restored.Inc()
	l.warnf("segment %06d (blocks [%d,%d)) restored from archive redelivery", seg.id, seg.first, seg.first+seg.count)
	return l.persistIndexLocked()
}

// TruncateFrom drops every block at or above h — live segments renamed
// aside (".stale"), missing ranges forgotten — and rolls the ledger height
// back to h so delivery recommits from there. h must land on a segment or
// missing-range boundary (recovery always truncates at a missing range's
// first block), and block h-1 must be readable so the commit chain stays
// anchored. Used when a quarantined range lies above the newest usable
// checkpoint: replay could never cross the gap, so the peer rolls back to
// the gap's edge and resumes from delivery.
func (l *Ledger) TruncateFrom(h uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if h >= l.height {
		return nil
	}
	if h < l.base {
		return fmt.Errorf("ledger: truncate point %d below prune floor %d", h, l.base)
	}
	boundary := false
	for _, s := range l.segs {
		if s.first == h {
			boundary = true
			break
		}
	}
	for _, r := range l.missing {
		if r.First == h {
			boundary = true
			break
		}
	}
	if !boundary {
		return fmt.Errorf("ledger: truncate point %d is not a segment boundary", h)
	}

	if l.rst != nil && l.rst.r.First >= h {
		l.rst.abort()
		l.rst = nil
	}
	kept := l.missing[:0]
	for _, r := range l.missing {
		if r.First < h {
			kept = append(kept, r)
		}
	}
	l.missing = kept

	activeDropped := false
	for i := len(l.segs) - 1; i >= 0; i-- {
		s := l.segs[i]
		if s.first < h {
			break
		}
		if s == l.active {
			if l.w != nil {
				l.w.Flush() // bmaclint:allow errdiscard (segment is being discarded)
			}
			if l.file != nil {
				l.file.Close() // bmaclint:allow errdiscard (segment is being discarded)
				l.file = nil
			}
			l.active = nil
			activeDropped = true
		}
		s.drainReaders()
		aside := s.path + ".stale"
		if err := os.Rename(s.path, aside); err != nil {
			return fmt.Errorf("truncate rename segment %06d: %w", s.id, err)
		}
		l.warnf("segment %06d (blocks >= %d) set aside as %s during truncate", s.id, s.first, filepath.Base(aside))
		l.segs = l.segs[:i]
	}
	maxID := uint64(0)
	for _, s := range l.segs {
		if s.id > maxID {
			maxID = s.id
		}
	}
	l.entries = l.entries[:h-l.base]
	l.height = h
	if h > l.base {
		pb, err := l.readBlockLocked(h - 1)
		if err != nil {
			return fmt.Errorf("ledger: truncate anchor block %d unreadable: %w", h-1, err)
		}
		l.lastHash = block.HeaderHash(&pb.Header)
		l.commitHash = pb.Metadata.CommitHash
	} else {
		l.lastHash = l.baseHash
		l.commitHash = l.baseCommitHash
	}
	if activeDropped || l.active == nil {
		if err := l.startActiveLocked(maxID + 1); err != nil {
			return err
		}
	}
	return l.persistIndexLocked()
}

// Prune removes sealed segments (and swallows unrestorable missing
// ranges) whose blocks all lie below coveredHeight — typically the height
// of the newest durable state checkpoint, which makes those blocks
// redundant for this peer's recovery. The index is persisted before any
// file is unlinked, so a crash mid-prune leaves only orphan files that the
// next open removes. Returns the number of segments pruned.
func (l *Ledger) Prune(coveredHeight uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if coveredHeight > l.height {
		coveredHeight = l.height
	}
	removed := 0
	changed := false
	var unlink []string
	for {
		// A missing range at the floor that the checkpoint fully covers no
		// longer needs restoring — the state is already durable past it.
		if len(l.missing) > 0 && l.missing[0].First == l.base &&
			l.missing[0].First+l.missing[0].Count <= coveredHeight {
			r := l.missing[0]
			if l.rst != nil && l.rst.r.First == r.First {
				l.rst.abort()
				l.rst = nil
			}
			l.missing = l.missing[1:]
			l.entries = l.entries[r.Count:]
			l.base = r.First + r.Count
			// The range's blocks are gone; the chain anchor above it is
			// unknown until a live segment is pruned. Clear rather than lie.
			l.baseHash, l.baseCommitHash = nil, nil
			l.warnf("quarantined range [%d,%d) dropped by prune (checkpoint covers it)", r.First, r.First+r.Count)
			changed = true
			continue
		}
		if len(l.segs) == 0 {
			break
		}
		s := l.segs[0]
		if s == l.active || !s.sealed || s.first != l.base || s.first+s.count > coveredHeight {
			break
		}
		lb, err := l.readBlockLocked(s.first + s.count - 1)
		if err != nil {
			return removed, fmt.Errorf("prune: read anchor block %d: %w", s.first+s.count-1, err)
		}
		l.baseHash = block.HeaderHash(&lb.Header)
		l.baseCommitHash = lb.Metadata.CommitHash
		s.drainReaders()
		l.segs = l.segs[1:]
		l.entries = l.entries[s.count:]
		l.base = s.first + s.count
		unlink = append(unlink, s.path)
		removed++
		changed = true
		l.pruned++
		l.m.Pruned.Inc()
	}
	if !changed {
		return 0, nil
	}
	// Reclaim the sliced-away prefix of the entries array occasionally.
	if cap(l.entries) > 2*len(l.entries)+64 {
		l.entries = append(make([]entry, 0, len(l.entries)), l.entries...)
	}
	if err := l.persistIndexLocked(); err != nil {
		return removed, err
	}
	for _, path := range unlink {
		os.Remove(path) // bmaclint:allow errdiscard (orphans are cleaned on next open)
	}
	return removed, nil
}
