package ledger

import (
	"bufio"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"bmac/internal/block"
)

// listSegmentIDs returns the ids of the plain (live) segment files in dir,
// ascending. Quarantined (".quarantined*") and temp files are ignored.
func listSegmentIDs(dir string) ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil {
		return nil, fmt.Errorf("list segments: %w", err)
	}
	var ids []uint64
	for _, name := range names {
		base := filepath.Base(name)
		numPart := strings.TrimPrefix(base, segPrefix)
		id, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil {
			continue // quarantined, temp or foreign file
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// openLocked adopts the on-disk state: every crash window of the commit,
// seal and index paths must converge here. Sealed segments are verified
// against their footer checksum and quarantined on mismatch; the active
// (footer-less, highest-id) segment is replayed record by record with
// torn-tail truncation. A missing or corrupt index degrades to a full
// rescan, never to an error. It must be called with l.mu held.
func (l *Ledger) openLocked() error {
	removeStaleTemps(l.dir, l.warnf)
	ids, err := listSegmentIDs(l.dir)
	if err != nil {
		return err
	}

	idx, idxErr := loadIndex(l.dir)
	if idxErr != nil {
		idx = nil
		if !errors.Is(idxErr, os.ErrNotExist) {
			l.warnf("persistent index unreadable (%v); rebuilding from segment scan", idxErr)
			l.rebuilds++
			l.m.IndexRebuilds.Inc()
		} else if len(ids) > 1 {
			// More than one segment but no index: a pre-index layout or a
			// crash before the first index write. Count the rescan.
			l.warnf("persistent index missing; rebuilding from segment scan")
			l.rebuilds++
			l.m.IndexRebuilds.Inc()
		}
	} else {
		l.base = idx.base
		l.baseHash = idx.baseHash
		l.baseCommitHash = idx.baseCommitHash
	}
	l.height = l.base

	indexDirty := false
	expected := l.base // block number expected at the next segment's start
	prevID := uint64(0)
	havePrev := false
	for i, id := range ids {
		isLast := i == len(ids)-1
		path := segPath(l.dir, id)

		var is *indexSegment
		if idx != nil {
			is = idx.segs[id]
		}
		if is != nil {
			if is.first+is.count <= l.base {
				// Fully below the prune floor: a prune crashed between
				// persisting the index and deleting the file. Finish it.
				l.warnf("removing segment %06d left behind by an interrupted prune", id)
				os.Remove(path) // bmaclint:allow errdiscard (best-effort cleanup; reopen retries)
				continue
			}
			seg := newSegment(l.dir, id, l.readerCap)
			seg.first, seg.count, seg.dataLen, seg.sum, seg.sealed = is.first, is.count, is.dataLen, is.sum, true
			if err := l.noteGapLocked(&expected, seg.first, prevID, havePrev, id); err != nil {
				return err
			}
			if err := seg.verifyChecksum(); err != nil {
				l.warnf("sealed segment %06d failed verification on open: %v", id, err)
				l.quarantineSegLocked(seg, false)
				indexDirty = true
			} else {
				l.adoptSealedLocked(seg, is.offsets)
			}
			expected = is.first + is.count
			l.height = expected
			prevID, havePrev = id, true
			continue
		}

		fi, ferr := readFooter(path)
		switch {
		case ferr == nil:
			// Sealed but absent from the index: the seal crashed between
			// writing the footer and persisting the index. Rebuild its
			// entries by walking the length prefixes and re-checksumming.
			if fi.first+fi.count <= l.base {
				l.warnf("removing segment %06d left behind by an interrupted prune", id)
				os.Remove(path) // bmaclint:allow errdiscard (best-effort cleanup; reopen retries)
				continue
			}
			if err := l.noteGapLocked(&expected, fi.first, prevID, havePrev, id); err != nil {
				return err
			}
			seg := newSegment(l.dir, id, l.readerCap)
			seg.first, seg.count, seg.dataLen, seg.sum, seg.sealed = fi.first, fi.count, fi.dataLen, fi.sum, true
			res, serr := scanSegment(path, false, fi.first, nil, l.warnf)
			if serr != nil || res.sum != fi.sum || res.blocks != fi.count {
				if serr == nil {
					serr = fmt.Errorf("segment %06d content does not match its footer", id)
				}
				l.warnf("sealed segment %06d failed verification on open: %v", id, serr)
				l.quarantineSegLocked(seg, false)
			} else {
				l.warnf("adopted sealed segment %06d not yet in the index (seal was interrupted)", id)
				l.adoptSealedLocked(seg, res.offsets)
			}
			indexDirty = true
			expected = fi.first + fi.count
			l.height = expected
			prevID, havePrev = id, true

		case errors.Is(ferr, errNoFooter):
			// Footer-less: the active segment. It is always the highest id
			// — seals create the successor file before updating the index,
			// so an unsealed file below another segment cannot occur.
			if !isLast {
				return fmt.Errorf("ledger: unsealed segment %06d below segment %06d — unrecoverable layout", id, ids[i+1])
			}
			var prevHash []byte
			if expected > l.base && len(l.missing) == 0 {
				if pb, err := l.readBlockLocked(expected - 1); err == nil {
					prevHash = block.HeaderHash(&pb.Header)
				}
			} else if expected == l.base && l.baseHash != nil {
				prevHash = l.baseHash
			}
			res, serr := scanSegment(path, true, expected, prevHash, l.warnf)
			if serr != nil {
				return serr
			}
			seg := newSegment(l.dir, id, l.readerCap)
			seg.first = expected
			seg.count = res.blocks
			seg.dataLen = res.dataLen
			for _, e := range res.offsets {
				e.seg = seg
				l.entries = append(l.entries, e)
			}
			l.segs = append(l.segs, seg)
			l.active = seg
			expected += res.blocks
			l.height = expected
			if res.blocks > 0 {
				l.lastHash = res.lastHash
				l.commitHash = res.commitHash
			}
			prevID, havePrev = id, true

		default:
			return fmt.Errorf("ledger: segment %06d unreadable: %w", id, ferr)
		}
	}

	// Trailing missing ranges have no live successor, so their blocks
	// cannot be chain-verified against anything — roll the height back to
	// the start of the trailing gap; delivery recommits those blocks.
	l.rollBackTrailingMissingLocked()
	if l.active != nil && l.active.first > l.height {
		// The rollback swallowed everything between the empty active
		// segment and the new height; re-anchor the active segment there.
		l.active.first = l.height
	}

	// Ensure an active segment exists (fresh dir, or the last segment is
	// sealed because a rotation crashed before creating its successor).
	if l.active == nil {
		nextID := uint64(0)
		if len(ids) > 0 {
			nextID = ids[len(ids)-1] + 1
		}
		if err := l.startActiveLocked(nextID); err != nil {
			return err
		}
		indexDirty = indexDirty || len(l.segs) > 1
	} else {
		f, err := os.OpenFile(l.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open active segment for append: %w", err)
		}
		l.file = f
		l.w = bufio.NewWriter(f)
		// Rebuild the running checksum of the active record region so a
		// later seal does not have to re-read the file.
		l.segHash = sha256.New()
		if err := l.rehashActiveLocked(); err != nil {
			return err
		}
	}

	// Derive the tail hashes when the active segment did not provide them.
	if l.lastHash == nil && l.height > l.base {
		pb, err := l.readBlockLocked(l.height - 1)
		if err != nil {
			return fmt.Errorf("ledger: read tail block %d: %w", l.height-1, err)
		}
		l.lastHash = block.HeaderHash(&pb.Header)
		l.commitHash = pb.Metadata.CommitHash
	}
	if l.height == l.base && l.baseHash != nil {
		l.lastHash = l.baseHash
		l.commitHash = l.baseCommitHash
	}

	// An oversized active segment (legacy monolithic file, or a crash
	// before the seal) rotates immediately so the budget holds.
	if l.active.dataLen >= l.segBudget {
		if err := l.rotateLocked(); err != nil {
			return err
		}
		indexDirty = false // rotation persisted the index
	}

	if indexDirty {
		if err := l.persistIndexLocked(); err != nil {
			return err
		}
	}
	return nil
}

// noteGapLocked checks segment continuity at a sealed segment boundary.
// first > expected means the segments covering [expected, first) were
// quarantined (renamed aside) by an earlier process: the gap is re-derived
// as a missing range. first < expected is an overlap and unrecoverable.
// It must be called with l.mu held.
func (l *Ledger) noteGapLocked(expected *uint64, first uint64, prevID uint64, havePrev bool, id uint64) error {
	switch {
	case first == *expected:
		return nil
	case first < *expected:
		return fmt.Errorf("ledger: segment %06d overlaps (starts at %d, expected %d)", id, first, *expected)
	}
	gapID := uint64(0)
	if havePrev {
		gapID = prevID + 1
	}
	if gapID >= id {
		return fmt.Errorf("ledger: gap before segment %06d has no free segment id", id)
	}
	count := first - *expected
	l.warnf("blocks [%d,%d) missing on open (quarantined segment awaiting restore)", *expected, first)
	l.missing = append(l.missing, Range{First: *expected, Count: count, segID: gapID})
	for n := uint64(0); n < count; n++ {
		l.entries = append(l.entries, entry{})
	}
	*expected = first
	return nil
}

// rollBackTrailingMissingLocked truncates the logical height past any
// missing range that touches the tail (no live blocks after it). Such a
// range cannot anchor a restore (there is no successor block to close the
// hash chain against), so its blocks are simply recommitted via delivery.
// It must be called with l.mu held.
func (l *Ledger) rollBackTrailingMissingLocked() {
	for len(l.missing) > 0 {
		last := l.missing[len(l.missing)-1]
		if last.First+last.Count != l.height {
			return
		}
		// Only roll back if the range truly is the tail: no live segment
		// holds blocks >= the range start (an empty active segment above
		// the gap anchors nothing and does not count).
		tail := true
		for _, s := range l.segs {
			if s.count > 0 && s.first >= last.First {
				tail = false
				break
			}
		}
		if !tail {
			return
		}
		l.warnf("quarantined tail blocks [%d,%d) dropped; height rolls back to %d for redelivery",
			last.First, last.First+last.Count, last.First)
		l.missing = l.missing[:len(l.missing)-1]
		l.entries = l.entries[:last.First-l.base]
		l.height = last.First
		l.lastHash = nil
		l.commitHash = nil
	}
}

// rehashActiveLocked rebuilds the running sha256 of the active segment's
// record region from disk. It must be called with l.mu held.
func (l *Ledger) rehashActiveLocked() error {
	if l.active.dataLen == 0 {
		return nil
	}
	f, err := os.Open(l.active.path)
	if err != nil {
		return fmt.Errorf("rehash active segment: %w", err)
	}
	defer f.Close()
	if _, err := io.CopyN(l.segHash, f, l.active.dataLen); err != nil {
		return fmt.Errorf("rehash active segment: %w", err)
	}
	return nil
}

// startActiveLocked creates a fresh active segment file with the given id
// and installs the writer state. It must be called with l.mu held.
func (l *Ledger) startActiveLocked(id uint64) error {
	seg := newSegment(l.dir, id, l.readerCap)
	seg.first = l.height
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("create segment file: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close() // bmaclint:allow errdiscard (teardown after dir-sync failure)
		return err
	}
	l.file = f
	l.w = bufio.NewWriter(f)
	l.segHash = sha256.New()
	l.segs = append(l.segs, seg)
	l.active = seg
	return nil
}

// rotateLocked seals the active segment — footer checksum, fsync, index
// persistence — and rotates to a fresh one. Each step is individually
// crash-safe: footer before successor file before index, and openLocked
// converges from a crash between any pair. It must be called with l.mu
// held.
func (l *Ledger) rotateLocked() error {
	act := l.active
	if err := l.runFault("segment seal"); err != nil {
		return err
	}
	var sum [sha256Size]byte
	l.segHash.Sum(sum[:0])
	foot := footerBytes(act.first, act.count, act.dataLen, sum)
	if _, err := l.w.Write(foot); err != nil {
		return fmt.Errorf("write segment footer: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("flush segment footer: %w", err)
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("sync sealed segment: %w", err)
	}
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("close sealed segment: %w", err)
	}
	l.file = nil
	act.sealed = true
	act.sum = sum
	l.bytesWritten += footerSize
	l.sealed++
	l.m.Sealed.Inc()

	if err := l.startActiveLocked(act.id + 1); err != nil {
		return err
	}
	return l.persistIndexLocked()
}

// adoptSealedLocked installs a verified sealed segment and its block
// entries. It must be called with l.mu held; segments arrive in ascending
// block order during open.
func (l *Ledger) adoptSealedLocked(seg *segment, offsets []entry) {
	for _, e := range offsets {
		e.seg = seg
		l.entries = append(l.entries, e)
	}
	l.segs = append(l.segs, seg)
}
