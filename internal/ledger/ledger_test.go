package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/identity"
)

type fixture struct {
	orderer *identity.Identity
	client  *identity.Identity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	orderer, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{orderer: orderer, client: client}
}

func (f *fixture) block(t *testing.T, num uint64, prev []byte) *block.Block {
	t.Helper()
	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator: f.client, Chaincode: "cc", Channel: "ch",
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := block.NewBlock(num, prev, []block.Envelope{*env}, f.orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCommitAndGet(t *testing.T) {
	f := newFixture(t)
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	b0 := f.block(t, 0, nil)
	ch, err := l.Commit(b0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != fabcrypto.HashSize {
		t.Errorf("commit hash length %d", len(ch))
	}
	if l.Height() != 1 {
		t.Errorf("height = %d", l.Height())
	}

	got, err := l.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Number != 0 || !bytes.Equal(got.Metadata.CommitHash, ch) {
		t.Error("block read back mismatch")
	}
}

func TestDuplicateBlockRejected(t *testing.T) {
	f := newFixture(t)
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(b0); !errors.Is(err, ErrDuplicateBlock) {
		t.Errorf("err = %v, want ErrDuplicateBlock", err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	f := newFixture(t)
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Commit(f.block(t, 5, nil)); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestBrokenChainRejected(t *testing.T) {
	f := newFixture(t)
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	// Block 1 with the wrong previous hash.
	bad := f.block(t, 1, fabcrypto.HashSlice([]byte("wrong")))
	if _, err := l.Commit(bad); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("err = %v, want ErrBrokenChain", err)
	}
	// Correct previous hash commits fine.
	good := f.block(t, 1, block.HeaderHash(&b0.Header))
	if _, err := l.Commit(good); err != nil {
		t.Errorf("chained commit: %v", err)
	}
}

func TestCommitHashChains(t *testing.T) {
	f := newFixture(t)
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b0 := f.block(t, 0, nil)
	h0, err := l.Commit(b0)
	if err != nil {
		t.Fatal(err)
	}
	b1 := f.block(t, 1, block.HeaderHash(&b0.Header))
	h1, err := l.Commit(b1)
	if err != nil {
		t.Fatal(err)
	}
	want := block.CommitHash(h0, b1.Header.DataHash, b1.Metadata.ValidationFlags)
	if !bytes.Equal(h1, want) {
		t.Error("commit hash chain broken")
	}
	if !bytes.Equal(l.LastCommitHash(), h1) {
		t.Error("LastCommitHash mismatch")
	}
}

func TestReopenReplaysIndex(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	b1 := f.block(t, 1, block.HeaderHash(&b0.Header))
	h1, err := l.Commit(b1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Height() != 2 {
		t.Errorf("replayed height = %d, want 2", l2.Height())
	}
	if !bytes.Equal(l2.LastCommitHash(), h1) {
		t.Error("replayed commit hash mismatch")
	}
	got, err := l2.Get(0)
	if err != nil || got.Header.Number != 0 {
		t.Errorf("Get(0) after reopen: %v", err)
	}
	// And the chain continues.
	b2 := f.block(t, 2, block.HeaderHash(&b1.Header))
	if _, err := l2.Commit(b2); err != nil {
		t.Errorf("commit after reopen: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Get(3); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestSyncEachBlock(t *testing.T) {
	f := newFixture(t)
	l, err := Open(t.TempDir(), Options{SyncEachBlock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Commit(f.block(t, 0, nil)); err != nil {
		t.Fatal(err)
	}
	if l.BytesWritten() == 0 {
		t.Error("no bytes recorded")
	}
}

func BenchmarkLedgerCommit(b *testing.B) {
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		b.Fatal(err)
	}
	orderer, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		b.Fatal(err)
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		b.Fatal(err)
	}
	env, err := block.NewEndorsedEnvelope(block.TxSpec{Creator: client, Chaincode: "cc", Channel: "ch"})
	if err != nil {
		b.Fatal(err)
	}
	envs := make([]block.Envelope, 100)
	for i := range envs {
		envs[i] = *env
	}

	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()

	prev := []byte(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := block.NewBlock(uint64(i), prev, envs, orderer)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Commit(blk); err != nil {
			b.Fatal(err)
		}
		prev = block.HeaderHash(&blk.Header)
	}
}

func TestTornTailWriteRecovered(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a length prefix promising more bytes
	// than were written.
	path := filepath.Join(dir, "blockfile_000000")
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0, 0, 0, 0, 0, 0, 1, 0, 0xde, 0xad} // claims 256 bytes, has 2
	if _, err := fh.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the torn tail is ignored and the chain continues.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l2.Close()
	if l2.Height() != 1 {
		t.Errorf("height after recovery = %d, want 1", l2.Height())
	}
	b1 := f.block(t, 1, block.HeaderHash(&b0.Header))
	if _, err := l2.Commit(b1); err != nil {
		t.Errorf("commit after recovery: %v", err)
	}
}

// TestUndecodableFinalRecordTruncated covers the second torn-write shape:
// the length prefix is intact but the record bytes are garbage (a crash
// landed mid-way through the data). The trailing record is truncated with
// a warning; the chain continues from the last good block.
func TestUndecodableFinalRecordTruncated(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a well-framed but undecodable record.
	path := filepath.Join(dir, "blockfile_000000")
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte{0xff}, 64)
	var lenBuf [8]byte
	lenBuf[7] = 64
	if _, err := fh.Write(append(lenBuf[:], garbage...)); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, path)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after undecodable tail: %v", err)
	}
	defer l2.Close()
	if l2.Height() != 1 {
		t.Errorf("height = %d, want 1", l2.Height())
	}
	if len(l2.Warnings()) == 0 {
		t.Error("no recovery warning recorded")
	}
	if got := fileSize(t, path); got >= sizeBefore {
		t.Errorf("torn tail not physically truncated: %d >= %d bytes", got, sizeBefore)
	}
	b1 := f.block(t, 1, block.HeaderHash(&b0.Header))
	if _, err := l2.Commit(b1); err != nil {
		t.Errorf("commit after recovery: %v", err)
	}
}

// TestMidFileCorruptionStillFails pins the boundary of the tail-repair
// logic: a broken record with valid blocks after it is NOT a torn write,
// and silently skipping committed blocks would fork the chain — Open must
// fail.
func TestMidFileCorruptionStillFails(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	b1 := f.block(t, 1, block.HeaderHash(&b0.Header))
	if _, err := l.Commit(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Overwrite block 0's record body (not the length prefix) in place:
	// the first record is garbage, the second is intact.
	path := filepath.Join(dir, "blockfile_000000")
	fh, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteAt(bytes.Repeat([]byte{0xff}, 32), 8); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

// TestAbsurdLengthPrefixTruncated guards the replay allocator: a torn
// length prefix that decodes to an absurd size (larger than the file)
// must be treated as a torn tail, not as an allocation request.
func TestAbsurdLengthPrefixTruncated(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "blockfile_000000")
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	huge := []byte{0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xaa}
	if _, err := fh.Write(huge); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after absurd length prefix: %v", err)
	}
	defer l2.Close()
	if l2.Height() != 1 || len(l2.Warnings()) == 0 {
		t.Errorf("height=%d warnings=%v", l2.Height(), l2.Warnings())
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestZeroLengthRecordMidFileFails pins the review fix: a zero-length
// record with valid data after it is mid-file corruption, not a torn
// tail — truncating would destroy committed blocks, so Open must fail.
// The same zero prefix at the very end IS a torn tail and is truncated.
func TestZeroLengthRecordMidFileFails(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := f.block(t, 0, nil)
	if _, err := l.Commit(b0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "blockfile_000000")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Zero-length prefix followed by the valid block again: mid-file.
	var zero [8]byte
	bad := append(append(append([]byte{}, good...), zero[:]...), good...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("zero-length record mid-file silently truncated")
	}

	// The same zero prefix as the last bytes of the file: torn tail.
	if err := os.WriteFile(path, append(append([]byte{}, good...), zero[:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("trailing zero prefix: %v", err)
	}
	defer l2.Close()
	if l2.Height() != 1 || len(l2.Warnings()) == 0 {
		t.Errorf("height=%d warnings=%v", l2.Height(), l2.Warnings())
	}
}
