// Package chaincode implements the smart-contract layer: the chaincode
// interface, the simulation stub that records read/write sets, and the
// three benchmark applications used in the paper's evaluation — smallbank
// and drm from the Caliper benchmarks, plus the split-payment variant of
// smallbank used in the database-requests experiment (Figure 12c).
package chaincode

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bmac/internal/block"
	"bmac/internal/statedb"
)

var (
	// ErrUnknownFunction reports an invocation of an undefined function.
	ErrUnknownFunction = errors.New("chaincode: unknown function")
	// ErrBadArgs reports malformed invocation arguments.
	ErrBadArgs = errors.New("chaincode: bad arguments")
)

// Chaincode is a smart contract: business logic executed against the state
// database during endorsement.
type Chaincode interface {
	// Name returns the chaincode name used in transaction headers.
	Name() string
	// Invoke executes one function against the stub, reading and writing
	// state; the stub records the read/write set.
	Invoke(stub *Stub, fn string, args []string) error
}

// Stub is the chaincode's view of the state database during simulation. It
// records every access to build the transaction's read/write set; writes
// are buffered (read-your-own-writes within a transaction), not applied.
type Stub struct {
	store  statedb.KVS
	reads  []block.KVRead
	writes []block.KVWrite
	dirty  map[string][]byte
}

// NewStub creates a simulation stub over store.
func NewStub(store statedb.KVS) *Stub {
	return &Stub{store: store, dirty: make(map[string][]byte)}
}

// GetState reads a key, recording it (and the version observed) in the
// read set. Reads of keys written earlier in the same simulation return the
// buffered value without extending the read set, like Fabric's tx simulator.
func (s *Stub) GetState(key string) ([]byte, bool) {
	if v, ok := s.dirty[key]; ok {
		return v, true
	}
	ver, exists := s.store.Version(key)
	s.reads = append(s.reads, block.KVRead{Key: key, Version: ver})
	if !exists {
		return nil, false
	}
	vv, err := s.store.Get(key)
	if err != nil {
		return nil, false
	}
	return vv.Value, true
}

// PutState buffers a write, recording it in the write set.
func (s *Stub) PutState(key string, value []byte) {
	val := make([]byte, len(value))
	copy(val, value)
	s.dirty[key] = val
	// Later writes to the same key supersede earlier ones.
	for i := range s.writes {
		if s.writes[i].Key == key {
			s.writes[i].Value = val
			return
		}
	}
	s.writes = append(s.writes, block.KVWrite{Key: key, Value: val})
}

// RWSet returns the recorded read/write set.
func (s *Stub) RWSet() block.RWSet {
	return block.RWSet{Reads: s.reads, Writes: s.writes}
}

// --- smallbank ---

// Smallbank implements the Caliper smallbank benchmark: bank accounts with
// checking and savings balances and the six classic H-Store operations.
type Smallbank struct{}

var _ Chaincode = Smallbank{}

// Name implements Chaincode.
func (Smallbank) Name() string { return "smallbank" }

type account struct {
	Checking int64
	Savings  int64
}

func accountKey(id string) string { return "acc" + id }

func parseAccount(v []byte) (account, error) {
	parts := strings.SplitN(string(v), "|", 2)
	if len(parts) != 2 {
		return account{}, fmt.Errorf("%w: account value %q", ErrBadArgs, v)
	}
	c, err1 := strconv.ParseInt(parts[0], 10, 64)
	s, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return account{}, fmt.Errorf("%w: account value %q", ErrBadArgs, v)
	}
	return account{Checking: c, Savings: s}, nil
}

func (a account) encode() []byte {
	return []byte(strconv.FormatInt(a.Checking, 10) + "|" + strconv.FormatInt(a.Savings, 10))
}

func getAccount(stub *Stub, id string) (account, error) {
	v, ok := stub.GetState(accountKey(id))
	if !ok {
		return account{}, fmt.Errorf("%w: account %q not found", ErrBadArgs, id)
	}
	return parseAccount(v)
}

// Invoke implements Chaincode. Functions (mirroring Caliper smallbank):
//
//	create_account id checking savings
//	transact_savings id amount
//	deposit_checking id amount
//	send_payment from to amount
//	write_check id amount
//	amalgamate from to
//	query id
func (Smallbank) Invoke(stub *Stub, fn string, args []string) error {
	switch fn {
	case "create_account":
		if len(args) != 3 {
			return fmt.Errorf("%w: create_account wants 3 args", ErrBadArgs)
		}
		c, err1 := strconv.ParseInt(args[1], 10, 64)
		s, err2 := strconv.ParseInt(args[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%w: create_account amounts", ErrBadArgs)
		}
		stub.PutState(accountKey(args[0]), account{Checking: c, Savings: s}.encode())
		return nil
	case "transact_savings":
		if len(args) != 2 {
			return fmt.Errorf("%w: transact_savings wants 2 args", ErrBadArgs)
		}
		amt, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("%w: amount %q", ErrBadArgs, args[1])
		}
		acc, err := getAccount(stub, args[0])
		if err != nil {
			return err
		}
		acc.Savings += amt
		stub.PutState(accountKey(args[0]), acc.encode())
		return nil
	case "deposit_checking":
		if len(args) != 2 {
			return fmt.Errorf("%w: deposit_checking wants 2 args", ErrBadArgs)
		}
		amt, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("%w: amount %q", ErrBadArgs, args[1])
		}
		acc, err := getAccount(stub, args[0])
		if err != nil {
			return err
		}
		acc.Checking += amt
		stub.PutState(accountKey(args[0]), acc.encode())
		return nil
	case "send_payment":
		if len(args) != 3 {
			return fmt.Errorf("%w: send_payment wants 3 args", ErrBadArgs)
		}
		amt, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("%w: amount %q", ErrBadArgs, args[2])
		}
		from, err := getAccount(stub, args[0])
		if err != nil {
			return err
		}
		to, err := getAccount(stub, args[1])
		if err != nil {
			return err
		}
		from.Checking -= amt
		to.Checking += amt
		stub.PutState(accountKey(args[0]), from.encode())
		stub.PutState(accountKey(args[1]), to.encode())
		return nil
	case "write_check":
		if len(args) != 2 {
			return fmt.Errorf("%w: write_check wants 2 args", ErrBadArgs)
		}
		amt, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("%w: amount %q", ErrBadArgs, args[1])
		}
		acc, err := getAccount(stub, args[0])
		if err != nil {
			return err
		}
		acc.Checking -= amt
		stub.PutState(accountKey(args[0]), acc.encode())
		return nil
	case "amalgamate":
		if len(args) != 2 {
			return fmt.Errorf("%w: amalgamate wants 2 args", ErrBadArgs)
		}
		from, err := getAccount(stub, args[0])
		if err != nil {
			return err
		}
		to, err := getAccount(stub, args[1])
		if err != nil {
			return err
		}
		to.Checking += from.Savings + from.Checking
		from.Savings = 0
		from.Checking = 0
		stub.PutState(accountKey(args[0]), from.encode())
		stub.PutState(accountKey(args[1]), to.encode())
		return nil
	case "query":
		if len(args) != 1 {
			return fmt.Errorf("%w: query wants 1 arg", ErrBadArgs)
		}
		if _, err := getAccount(stub, args[0]); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("%w: smallbank.%s", ErrUnknownFunction, fn)
	}
}

// --- split-payment smallbank (Figure 12c) ---

// SplitPay is the modified smallbank with a split_payment function that
// pays from one account to N others, producing 1+N reads and 1+N writes —
// the variable database workload of Figure 12c.
type SplitPay struct{}

var _ Chaincode = SplitPay{}

// Name implements Chaincode.
func (SplitPay) Name() string { return "splitpay" }

// Invoke implements Chaincode. Functions:
//
//	create_account id checking savings        (same as smallbank)
//	split_payment from amount to1 to2 ... toN
func (SplitPay) Invoke(stub *Stub, fn string, args []string) error {
	switch fn {
	case "create_account":
		return Smallbank{}.Invoke(stub, fn, args)
	case "split_payment":
		if len(args) < 3 {
			return fmt.Errorf("%w: split_payment wants >= 3 args", ErrBadArgs)
		}
		amt, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("%w: amount %q", ErrBadArgs, args[1])
		}
		recipients := args[2:]
		share := amt / int64(len(recipients))
		from, err := getAccount(stub, args[0])
		if err != nil {
			return err
		}
		from.Checking -= amt
		stub.PutState(accountKey(args[0]), from.encode())
		for _, rid := range recipients {
			to, err := getAccount(stub, rid)
			if err != nil {
				return err
			}
			to.Checking += share
			stub.PutState(accountKey(rid), to.encode())
		}
		return nil
	default:
		return fmt.Errorf("%w: splitpay.%s", ErrUnknownFunction, fn)
	}
}

// --- drm ---

// DRM implements the Caliper digital-rights-management benchmark: digital
// assets with an owner and license state. It touches the database less than
// smallbank (the property Figure 13 relies on).
type DRM struct{}

var _ Chaincode = DRM{}

// Name implements Chaincode.
func (DRM) Name() string { return "drm" }

func assetKey(id string) string { return "asset" + id }

// Invoke implements Chaincode. Functions:
//
//	register id owner        (1 write)
//	transfer id newOwner     (1 read, 1 write)
//	license id licensee      (1 read, 1 write)
//	query id                 (1 read)
func (DRM) Invoke(stub *Stub, fn string, args []string) error {
	switch fn {
	case "register":
		if len(args) != 2 {
			return fmt.Errorf("%w: register wants 2 args", ErrBadArgs)
		}
		stub.PutState(assetKey(args[0]), []byte("owner="+args[1]))
		return nil
	case "transfer":
		if len(args) != 2 {
			return fmt.Errorf("%w: transfer wants 2 args", ErrBadArgs)
		}
		if _, ok := stub.GetState(assetKey(args[0])); !ok {
			return fmt.Errorf("%w: asset %q", ErrBadArgs, args[0])
		}
		stub.PutState(assetKey(args[0]), []byte("owner="+args[1]))
		return nil
	case "license":
		if len(args) != 2 {
			return fmt.Errorf("%w: license wants 2 args", ErrBadArgs)
		}
		cur, ok := stub.GetState(assetKey(args[0]))
		if !ok {
			return fmt.Errorf("%w: asset %q", ErrBadArgs, args[0])
		}
		stub.PutState(assetKey(args[0]), append(append([]byte{}, cur...), []byte(";lic="+args[1])...))
		return nil
	case "query":
		if len(args) != 1 {
			return fmt.Errorf("%w: query wants 1 arg", ErrBadArgs)
		}
		stub.GetState(assetKey(args[0]))
		return nil
	default:
		return fmt.Errorf("%w: drm.%s", ErrUnknownFunction, fn)
	}
}

// Registry maps chaincode names to implementations; the endorser and the
// BMac configuration both consult it.
type Registry struct {
	ccs map[string]Chaincode
}

// NewRegistry creates a registry with the given chaincodes installed.
func NewRegistry(ccs ...Chaincode) *Registry {
	r := &Registry{ccs: make(map[string]Chaincode, len(ccs))}
	for _, cc := range ccs {
		r.ccs[cc.Name()] = cc
	}
	return r
}

// Get returns the chaincode by name.
func (r *Registry) Get(name string) (Chaincode, error) {
	cc, ok := r.ccs[name]
	if !ok {
		return nil, fmt.Errorf("chaincode: %q not installed", name)
	}
	return cc, nil
}

// Names returns the installed chaincode names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.ccs))
	for name := range r.ccs {
		out = append(out, name)
	}
	return out
}
