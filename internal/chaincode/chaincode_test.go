package chaincode

import (
	"errors"
	"testing"

	"bmac/internal/block"
	"bmac/internal/statedb"
)

func setupBank(t *testing.T) *statedb.Store {
	t.Helper()
	store := statedb.NewStore()
	sb := Smallbank{}
	for _, id := range []string{"1", "2", "3"} {
		stub := NewStub(store)
		if err := sb.Invoke(stub, "create_account", []string{id, "1000", "500"}); err != nil {
			t.Fatal(err)
		}
		rw := stub.RWSet()
		store.WriteBatch(rw.Writes, block.Version{BlockNum: 0})
	}
	return store
}

func TestSmallbankSendPayment(t *testing.T) {
	store := setupBank(t)
	stub := NewStub(store)
	if err := (Smallbank{}).Invoke(stub, "send_payment", []string{"1", "2", "100"}); err != nil {
		t.Fatal(err)
	}
	rw := stub.RWSet()
	if len(rw.Reads) != 2 || len(rw.Writes) != 2 {
		t.Errorf("rwset = %d reads / %d writes, want 2/2", len(rw.Reads), len(rw.Writes))
	}
	// Apply and check balances.
	store.WriteBatch(rw.Writes, block.Version{BlockNum: 1})
	v1, _ := store.Get("acc1")
	v2, _ := store.Get("acc2")
	a1, _ := parseAccount(v1.Value)
	a2, _ := parseAccount(v2.Value)
	if a1.Checking != 900 || a2.Checking != 1100 {
		t.Errorf("balances = %d/%d, want 900/1100", a1.Checking, a2.Checking)
	}
}

func TestSmallbankAllFunctions(t *testing.T) {
	store := setupBank(t)
	sb := Smallbank{}
	tests := []struct {
		fn     string
		args   []string
		reads  int
		writes int
	}{
		{"transact_savings", []string{"1", "50"}, 1, 1},
		{"deposit_checking", []string{"2", "25"}, 1, 1},
		{"write_check", []string{"3", "10"}, 1, 1},
		{"amalgamate", []string{"1", "2"}, 2, 2},
		{"query", []string{"3"}, 1, 0},
	}
	for _, tt := range tests {
		stub := NewStub(store)
		if err := sb.Invoke(stub, tt.fn, tt.args); err != nil {
			t.Errorf("%s: %v", tt.fn, err)
			continue
		}
		rw := stub.RWSet()
		if len(rw.Reads) != tt.reads || len(rw.Writes) != tt.writes {
			t.Errorf("%s: rwset %d/%d, want %d/%d", tt.fn, len(rw.Reads), len(rw.Writes), tt.reads, tt.writes)
		}
	}
}

func TestSmallbankErrors(t *testing.T) {
	store := setupBank(t)
	sb := Smallbank{}
	stub := NewStub(store)
	if err := sb.Invoke(stub, "no_such_fn", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("err = %v, want ErrUnknownFunction", err)
	}
	if err := sb.Invoke(stub, "send_payment", []string{"1"}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("err = %v, want ErrBadArgs", err)
	}
	if err := sb.Invoke(stub, "deposit_checking", []string{"999", "5"}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("missing account err = %v, want ErrBadArgs", err)
	}
	if err := sb.Invoke(stub, "deposit_checking", []string{"1", "xx"}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("bad amount err = %v, want ErrBadArgs", err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	store := setupBank(t)
	stub := NewStub(store)
	sb := Smallbank{}
	// Two ops on the same account in one simulation: the second read must
	// see the buffered write and not extend the read set.
	if err := sb.Invoke(stub, "deposit_checking", []string{"1", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Invoke(stub, "deposit_checking", []string{"1", "10"}); err != nil {
		t.Fatal(err)
	}
	rw := stub.RWSet()
	if len(rw.Reads) != 1 {
		t.Errorf("reads = %d, want 1 (read-your-own-writes)", len(rw.Reads))
	}
	if len(rw.Writes) != 1 {
		t.Errorf("writes = %d, want 1 (write superseded)", len(rw.Writes))
	}
	a, _ := parseAccount(rw.Writes[0].Value)
	if a.Checking != 1020 {
		t.Errorf("checking = %d, want 1020", a.Checking)
	}
}

func TestSplitPaymentRWScaling(t *testing.T) {
	store := statedb.NewStore()
	sp := SplitPay{}
	for _, id := range []string{"0", "1", "2", "3", "4"} {
		stub := NewStub(store)
		if err := sp.Invoke(stub, "create_account", []string{id, "1000", "0"}); err != nil {
			t.Fatal(err)
		}
		store.WriteBatch(stub.RWSet().Writes, block.Version{})
	}
	for _, n := range []int{1, 2, 4} {
		stub := NewStub(store)
		args := []string{"0", "100"}
		for i := 1; i <= n; i++ {
			args = append(args, []string{"1", "2", "3", "4"}[i-1])
		}
		if err := sp.Invoke(stub, "split_payment", args); err != nil {
			t.Fatal(err)
		}
		rw := stub.RWSet()
		if len(rw.Reads) != 1+n || len(rw.Writes) != 1+n {
			t.Errorf("split to %d: rwset %d/%d, want %d/%d",
				n, len(rw.Reads), len(rw.Writes), 1+n, 1+n)
		}
	}
}

func TestDRMFunctions(t *testing.T) {
	store := statedb.NewStore()
	drm := DRM{}

	stub := NewStub(store)
	if err := drm.Invoke(stub, "register", []string{"42", "alice"}); err != nil {
		t.Fatal(err)
	}
	rw := stub.RWSet()
	if len(rw.Reads) != 0 || len(rw.Writes) != 1 {
		t.Errorf("register rwset = %d/%d, want 0/1", len(rw.Reads), len(rw.Writes))
	}
	store.WriteBatch(rw.Writes, block.Version{})

	stub = NewStub(store)
	if err := drm.Invoke(stub, "transfer", []string{"42", "bob"}); err != nil {
		t.Fatal(err)
	}
	rw = stub.RWSet()
	if len(rw.Reads) != 1 || len(rw.Writes) != 1 {
		t.Errorf("transfer rwset = %d/%d, want 1/1", len(rw.Reads), len(rw.Writes))
	}
	store.WriteBatch(rw.Writes, block.Version{BlockNum: 1})
	v, _ := store.Get("asset42")
	if string(v.Value) != "owner=bob" {
		t.Errorf("asset = %q", v.Value)
	}

	stub = NewStub(store)
	if err := drm.Invoke(stub, "license", []string{"42", "carol"}); err != nil {
		t.Fatal(err)
	}
	store.WriteBatch(stub.RWSet().Writes, block.Version{BlockNum: 2})
	v, _ = store.Get("asset42")
	if string(v.Value) != "owner=bob;lic=carol" {
		t.Errorf("licensed asset = %q", v.Value)
	}

	stub = NewStub(store)
	if err := drm.Invoke(stub, "query", []string{"42"}); err != nil {
		t.Fatal(err)
	}
	if err := drm.Invoke(NewStub(store), "transfer", []string{"404", "x"}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("missing asset err = %v", err)
	}
}

func TestDRMTouchesLessState(t *testing.T) {
	// Figure 13 premise: drm has fewer db accesses than smallbank.
	bankStore := setupBank(t)
	bankStub := NewStub(bankStore)
	if err := (Smallbank{}).Invoke(bankStub, "send_payment", []string{"1", "2", "10"}); err != nil {
		t.Fatal(err)
	}
	drmStore := statedb.NewStore()
	reg := NewStub(drmStore)
	if err := (DRM{}).Invoke(reg, "register", []string{"1", "a"}); err != nil {
		t.Fatal(err)
	}
	drmStore.WriteBatch(reg.RWSet().Writes, block.Version{})
	drmStub := NewStub(drmStore)
	if err := (DRM{}).Invoke(drmStub, "transfer", []string{"1", "b"}); err != nil {
		t.Fatal(err)
	}
	bankRW := bankStub.RWSet()
	drmRW := drmStub.RWSet()
	if len(drmRW.Reads)+len(drmRW.Writes) >= len(bankRW.Reads)+len(bankRW.Writes) {
		t.Errorf("drm accesses (%d) should be < smallbank (%d)",
			len(drmRW.Reads)+len(drmRW.Writes), len(bankRW.Reads)+len(bankRW.Writes))
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(Smallbank{}, DRM{}, SplitPay{})
	cc, err := r.Get("smallbank")
	if err != nil || cc.Name() != "smallbank" {
		t.Errorf("Get(smallbank): %v", err)
	}
	if _, err := r.Get("missing"); err == nil {
		t.Error("expected error for missing chaincode")
	}
	if len(r.Names()) != 3 {
		t.Errorf("names = %v", r.Names())
	}
}
