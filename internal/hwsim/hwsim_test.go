package hwsim

import (
	"math"
	"testing"
	"time"

	"bmac/internal/identity"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
)

func circuit(src string) *policy.Circuit {
	return policy.Compile(policytest.MustParse(src))
}

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	return math.Abs(got-want) <= frac*want
}

func TestEndsScheduleShortCircuit(t *testing.T) {
	ids := func(n int) ([]identity.EncodedID, []bool) {
		out := make([]identity.EncodedID, n)
		valid := make([]bool, n)
		for i := range out {
			out[i] = identity.Encode(uint8(i+1), identity.RolePeer, 0)
			valid[i] = true
		}
		return out, valid
	}
	tests := []struct {
		pol       string
		ends      int
		engines   int
		verified  int
		batches   int
		satisfied bool
	}{
		{"2of2", 2, 2, 2, 1, true},
		{"2of3", 3, 2, 2, 1, true}, // short-circuit skips the third
		{"3of3", 3, 2, 3, 2, true}, // second iteration needed (paper §4.3)
		{"3of3", 3, 3, 3, 1, true}, // 5x3-style: one batch
		{"1of1", 1, 2, 1, 1, true},
		{"2of4", 4, 2, 2, 1, true},
		{"4of4", 4, 2, 4, 2, true},
	}
	for _, tt := range tests {
		e, v := ids(tt.ends)
		verified, batches, sat := EndsSchedule(circuit(tt.pol), e, v, tt.engines, false)
		if verified != tt.verified || batches != tt.batches || sat != tt.satisfied {
			t.Errorf("%s/%d ends/%d engines: got %d verified %d batches sat=%v, want %d/%d/%v",
				tt.pol, tt.ends, tt.engines, verified, batches, sat,
				tt.verified, tt.batches, tt.satisfied)
		}
	}
}

func TestEndsScheduleInvalidityShortCircuit(t *testing.T) {
	// 3of3 with the first endorsement invalid: after batch 1 (1 engine)
	// the policy can never be satisfied.
	e := []identity.EncodedID{
		identity.Encode(1, identity.RolePeer, 0),
		identity.Encode(2, identity.RolePeer, 0),
		identity.Encode(3, identity.RolePeer, 0),
	}
	valid := []bool{false, true, true}
	verified, _, sat := EndsSchedule(circuit("3of3"), e, valid, 1, false)
	if verified != 1 || sat {
		t.Errorf("verified=%d sat=%v, want 1/false", verified, sat)
	}
}

func TestEndsScheduleDisabled(t *testing.T) {
	e := []identity.EncodedID{
		identity.Encode(1, identity.RolePeer, 0),
		identity.Encode(2, identity.RolePeer, 0),
		identity.Encode(3, identity.RolePeer, 0),
	}
	valid := []bool{true, true, true}
	verified, _, sat := EndsSchedule(circuit("2of3"), e, valid, 2, true)
	if verified != 3 || !sat {
		t.Errorf("ablation: verified=%d sat=%v, want 3/true", verified, sat)
	}
}

// TestFigure11Calibration checks the simulator against the paper's key
// Figure 11 data points (smallbank, 2of2 policy):
//
//	block 250, 16 tx_validators -> ~38,400 tps
//	block 250,  4 tx_validators -> ~10,700 tps (3.6x scaling 4->16)
func TestFigure11Calibration(t *testing.T) {
	c := circuit("2of2")
	txs := UniformTxProfile(250, 2, 2, 2)

	t16 := Simulate(Config{TxValidators: 16, VSCCEngines: 2}, c, txs)
	tput16 := t16.Throughput(250)
	if !within(tput16, 38400, 0.15) {
		t.Errorf("16 validators: %.0f tps, paper 38400 (+-15%%)", tput16)
	}

	t4 := Simulate(Config{TxValidators: 4, VSCCEngines: 2}, c, txs)
	tput4 := t4.Throughput(250)
	if !within(tput4, 10700, 0.15) {
		t.Errorf("4 validators: %.0f tps, paper 10700 (+-15%%)", tput4)
	}

	scaling := tput16 / tput4
	if !within(scaling, 3.6, 0.1) {
		t.Errorf("4->16 scaling = %.2fx, paper 3.6x", scaling)
	}
}

// TestSimulatorScalesBeyond16 reproduces the §4.3 simulator projections:
// ~100k tps at block 250 / 50 validators, ~150k tps at block 500 / 80.
func TestSimulatorScalesBeyond16(t *testing.T) {
	c := circuit("2of2")
	t50 := Simulate(Config{TxValidators: 50, VSCCEngines: 2}, c, UniformTxProfile(250, 2, 2, 2))
	if got := t50.Throughput(250); !within(got, 100000, 0.2) {
		t.Errorf("50 validators: %.0f tps, paper ~100k (+-20%%)", got)
	}
	t80 := Simulate(Config{TxValidators: 80, VSCCEngines: 2}, c, UniformTxProfile(500, 2, 2, 2))
	if got := t80.Throughput(500); !within(got, 150000, 0.25) {
		t.Errorf("80 validators: %.0f tps, paper ~150k (+-25%%)", got)
	}
}

// TestTxLatencyNearPaper checks the ~0.7 ms per-transaction validation
// latency reported in §4.3.
func TestTxLatencyNearPaper(t *testing.T) {
	c := circuit("2of2")
	timing := Simulate(Config{TxValidators: 16, VSCCEngines: 2}, c, UniformTxProfile(250, 2, 2, 2))
	if timing.TxLatency < 500*time.Microsecond || timing.TxLatency > 1200*time.Microsecond {
		t.Errorf("tx latency = %v, paper ~0.7 ms", timing.TxLatency)
	}
}

// TestFigure12aPolicySensitivity reproduces the 2of3 vs 3of3 asymmetry:
// with 2 engines, 2of3 short-circuits to one batch while 3of3 needs two,
// roughly doubling vscc latency (19,800 vs 10,400 tps in the paper).
func TestFigure12aPolicySensitivity(t *testing.T) {
	cfg := Config{TxValidators: 8, VSCCEngines: 2}
	t2of3 := Simulate(cfg, circuit("2of3"), UniformTxProfile(150, 3, 2, 2))
	t3of3 := Simulate(cfg, circuit("3of3"), UniformTxProfile(150, 3, 2, 2))
	r2 := t2of3.Throughput(150)
	r3 := t3of3.Throughput(150)
	ratio := r2 / r3
	if !within(ratio, 19800.0/10400.0, 0.15) {
		t.Errorf("2of3/3of3 = %.2f (%.0f vs %.0f tps), paper 1.90", ratio, r2, r3)
	}
}

// TestFigure12bArchitectureChoice: 8x2 wins for 2ofN, 5x3 wins for 3ofN.
func TestFigure12bArchitectureChoice(t *testing.T) {
	cfg8x2 := Config{TxValidators: 8, VSCCEngines: 2}
	cfg5x3 := Config{TxValidators: 5, VSCCEngines: 3}

	p2of3 := UniformTxProfile(150, 3, 2, 2)
	if a, b := Simulate(cfg8x2, circuit("2of3"), p2of3).Throughput(150),
		Simulate(cfg5x3, circuit("2of3"), p2of3).Throughput(150); a <= b {
		t.Errorf("2of3: 8x2 (%.0f) should beat 5x3 (%.0f)", a, b)
	}
	if a, b := Simulate(cfg8x2, circuit("3of3"), p2of3).Throughput(150),
		Simulate(cfg5x3, circuit("3of3"), p2of3).Throughput(150); b <= a {
		t.Errorf("3of3: 5x3 (%.0f) should beat 8x2 (%.0f)", b, a)
	}
	p3of4 := UniformTxProfile(150, 4, 2, 2)
	if a, b := Simulate(cfg8x2, circuit("3of4"), p3of4).Throughput(150),
		Simulate(cfg5x3, circuit("3of4"), p3of4).Throughput(150); b <= a {
		t.Errorf("3of4: 5x3 (%.0f) should beat 8x2 (%.0f)", b, a)
	}
}

// TestComplexPolicyMatches2of4 reproduces §4.3: the complex OR-of-AND
// policy evaluates in parallel combinational logic, so BMac throughput is
// nearly identical to plain 2of4.
func TestComplexPolicyMatches2of4(t *testing.T) {
	cfg := Config{TxValidators: 8, VSCCEngines: 2}
	complexPol := "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)"
	txs := UniformTxProfile(150, 4, 2, 2)
	a := Simulate(cfg, circuit("2of4"), txs).Throughput(150)
	b := Simulate(cfg, circuit(complexPol), txs).Throughput(150)
	if !within(b, a, 0.05) {
		t.Errorf("complex policy %.0f tps vs 2of4 %.0f tps; should match within 5%%", b, a)
	}
}

// TestFigure12cDBRequestsHidden: more database requests increase
// mvcc_commit busy time but block latency stays flat because it is hidden
// under the vscc stage.
func TestFigure12cDBRequestsHidden(t *testing.T) {
	cfg := Config{TxValidators: 8, VSCCEngines: 2}
	c := circuit("2of2")
	base := Simulate(cfg, c, UniformTxProfile(150, 2, 2, 2))
	heavy := Simulate(cfg, c, UniformTxProfile(150, 2, 9, 9))
	if heavy.MVCCBusy <= base.MVCCBusy {
		t.Error("mvcc busy time should grow with db requests")
	}
	if !within(heavy.Throughput(150), base.Throughput(150), 0.03) {
		t.Errorf("throughput moved: %.0f -> %.0f tps; should stay flat",
			base.Throughput(150), heavy.Throughput(150))
	}
}

// TestTable1Calibration checks the resource model against every row of
// Table 1 within 0.6 percentage points.
func TestTable1Calibration(t *testing.T) {
	rows := []struct {
		n, e    int
		lut, ff float64
	}{
		{4, 2, 20.9, 6.9},
		{5, 3, 25.4, 7.3},
		{8, 2, 28.5, 8.0},
		{12, 2, 35.8, 9.1},
		{16, 2, 43.3, 10.3},
	}
	for _, r := range rows {
		u := Resources(r.n, r.e)
		if math.Abs(u.LUTPct-r.lut) > 0.6 {
			t.Errorf("%dx%d LUT = %.1f%%, paper %.1f%%", r.n, r.e, u.LUTPct, r.lut)
		}
		if math.Abs(u.FFPct-r.ff) > 0.6 {
			t.Errorf("%dx%d FF = %.1f%%, paper %.1f%%", r.n, r.e, u.FFPct, r.ff)
		}
		if u.BRAMPct != 13.1 {
			t.Errorf("%dx%d BRAM = %.1f%%, paper 13.1%%", r.n, r.e, u.BRAMPct)
		}
		if !u.FitsU250() {
			t.Errorf("%dx%d reported as not fitting", r.n, r.e)
		}
	}
}

func TestEngineCount(t *testing.T) {
	if EngineCount(8, 2) != 25 {
		t.Errorf("8x2 engines = %d, want 25", EngineCount(8, 2))
	}
	if EngineCount(4, 2) != 13 {
		t.Errorf("4x2 engines = %d, want 13", EngineCount(4, 2))
	}
}

func TestLinkModelShape(t *testing.T) {
	l := NewLink(42)
	// Typical 150-tx block: ~600 KB gossip, ~150 KB BMac in 152 packets.
	var gossip, bmac []time.Duration
	for i := 0; i < 500; i++ {
		gossip = append(gossip, l.GossipTime(600_000))
		bmac = append(bmac, l.BMacTime(150_000, 152))
	}
	p95 := func(d []time.Duration) time.Duration {
		sorted := append([]time.Duration(nil), d...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		return sorted[int(float64(len(sorted))*0.95)]
	}
	g95, b95 := p95(gossip), p95(bmac)
	if b95 >= g95 {
		t.Errorf("BMac p95 (%v) should beat Gossip p95 (%v)", b95, g95)
	}
	reduction := 1 - float64(b95)/float64(g95)
	// Paper: 30% latency reduction at p95.
	if reduction < 0.15 || reduction > 0.60 {
		t.Errorf("p95 reduction = %.0f%%, paper ~30%%", reduction*100)
	}
}

func TestProtocolProcessorThroughput(t *testing.T) {
	// 2-endorsement tx packets are ~1.3 KB after identity removal; the
	// 11 Gbps datapath must sustain >= 996k tps (paper Figure 9a table).
	if got := ProtocolProcessorThroughput(1300); got < ProtocolProcessorTPS {
		t.Errorf("%.0f tps < %d", got, ProtocolProcessorTPS)
	}
	if ProtocolProcessorThroughput(0) != 0 {
		t.Error("zero-size packet should give 0")
	}
}

func TestSimulateEmptyBlock(t *testing.T) {
	timing := Simulate(Config{TxValidators: 4, VSCCEngines: 2}, circuit("2of2"), nil)
	if timing.Validate <= 0 {
		t.Error("empty block should still have fixed latency")
	}
	if timing.Throughput(0) != 0 {
		t.Error("zero tx throughput should be 0")
	}
}

func TestInvalidTxSkipsVSCC(t *testing.T) {
	txs := UniformTxProfile(10, 2, 2, 2)
	for i := range txs {
		txs[i].TxSigValid = false
	}
	timing := Simulate(Config{TxValidators: 2, VSCCEngines: 2}, circuit("2of2"), txs)
	if timing.EndsVerified != 0 {
		t.Errorf("ends verified = %d for invalid txs (early abort)", timing.EndsVerified)
	}
	if timing.EndsSkipped != 20 {
		t.Errorf("ends skipped = %d, want 20", timing.EndsSkipped)
	}
}
