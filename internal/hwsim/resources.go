package hwsim

import "strconv"

// FPGA resource model for the Xilinx Alveo U250 (Table 1 of the paper).
//
// The dominant variable cost is the number of ecdsa_engine instances: an
// NxE architecture instantiates N*E engines in the tx_vscc stages, N in the
// tx_verify stages and one for block_verify. Fitting a linear model
// LUT% = base + perEngine * engines to the paper's published utilization
// numbers reproduces every row of Table 1 within 0.5 percentage points:
//
//	arch  engines  paper LUT%  model LUT%
//	4x2      13       20.9        20.9
//	5x3      21       25.4        25.9
//	8x2      25       28.5        28.4
//	12x2     37       35.8        35.8
//	16x2     49       43.3        43.3
//
// BRAM is flat at 13.1% across architectures because it is dominated by the
// fixed-size in-hardware database and FIFO buffers.

// Utilization is one row of Table 1.
type Utilization struct {
	Arch    string
	Engines int
	LUTPct  float64
	FFPct   float64
	BRAMPct float64
	// Platform-level resources, constant across architectures (paper §4.3).
	GTPct   float64
	BUFGPct float64
	MMCMPct float64
	PCIePct float64
}

// resource model coefficients fit to Table 1.
const (
	lutBase      = 12.81
	lutPerEngine = 0.6222
	ffBase       = 5.67
	ffPerEngine  = 0.0944
	bramFlat     = 13.1

	gtFlat   = 83.3
	bufgFlat = 2.2
	mmcmFlat = 6.3
	pcieFlat = 25.0
)

// EngineCount returns the total ecdsa_engine instances of an NxE
// architecture: N*E (vscc) + N (tx_verify) + 1 (block_verify).
func EngineCount(txValidators, vsccEngines int) int {
	return txValidators*vsccEngines + txValidators + 1
}

// Resources evaluates the utilization model for an NxE architecture.
func Resources(txValidators, vsccEngines int) Utilization {
	engines := EngineCount(txValidators, vsccEngines)
	return Utilization{
		Arch:    Config{TxValidators: txValidators, VSCCEngines: vsccEngines}.archName(),
		Engines: engines,
		LUTPct:  lutBase + lutPerEngine*float64(engines),
		FFPct:   ffBase + ffPerEngine*float64(engines),
		BRAMPct: bramFlat,
		GTPct:   gtFlat,
		BUFGPct: bufgFlat,
		MMCMPct: mmcmFlat,
		PCIePct: pcieFlat,
	}
}

// FitsU250 reports whether the architecture fits the Alveo U250 (every
// modeled resource under 100%).
func (u Utilization) FitsU250() bool {
	return u.LUTPct < 100 && u.FFPct < 100 && u.BRAMPct < 100
}

func (c Config) archName() string {
	return strconv.Itoa(c.TxValidators) + "x" + strconv.Itoa(c.VSCCEngines)
}

// String renders the architecture name, e.g. "8x2".
func (c Config) String() string { return c.archName() }
