// Package hwsim is the high-level timing simulator of the BMac
// architecture. The paper itself ships such a simulator ("the performance
// reported by our simulator is always within 1% of actual measurements from
// the hardware", §4.1) and uses it for architectures beyond 16
// tx_validators; this package reproduces it.
//
// The model is a discrete-event simulation of the block_processor pipeline
// of Figure 6: a dedicated block_verify engine, N tx_validator instances
// (each a tx_verify engine feeding a tx_vscc stage with E ecdsa_engines and
// short-circuit endorsement scheduling), an in-order tx_collector, and a
// sequential tx_mvcc_commit stage over the in-hardware KVS.
//
// Timing constants come from the paper: a 250 MHz clock, ~360 us per ECDSA
// verification (the Mercury Systems IP), and "tens of us" for the non-
// cryptographic operations.
package hwsim

import (
	"time"

	"bmac/internal/identity"
	"bmac/internal/policy"
)

// Config describes one simulated BMac architecture plus its timing
// constants. The zero value of a latency field selects the paper-calibrated
// default.
type Config struct {
	TxValidators int
	VSCCEngines  int

	// EngineLatency is one ECDSA verification (default 360 us, §4.3).
	EngineLatency time.Duration
	// DispatchLatency is scheduler/FIFO handling per transaction
	// (default 10 us — "tens of us" per §4.3).
	DispatchLatency time.Duration
	// MVCCFixedLatency is the fixed cost of the mvcc_commit stage per
	// transaction (default 2 us).
	MVCCFixedLatency time.Duration
	// DBAccessLatency is one in-hardware KVS read or write
	// (default 0.5 us; BRAM access plus interlock at 250 MHz).
	DBAccessLatency time.Duration
	// BlockFixedLatency is the per-block fill/drain overhead of the
	// pipeline (default 50 us).
	BlockFixedLatency time.Duration

	// DisableShortCircuit models the ablation where the ends_scheduler
	// verifies every endorsement like Fabric does.
	DisableShortCircuit bool
	// DisableOverlap models the ablation where ledger commit on the CPU is
	// NOT overlapped with hardware validation of the next block; used by
	// the peer-level simulation.
	DisableOverlap bool
}

func (c Config) withDefaults() Config {
	if c.TxValidators < 1 {
		c.TxValidators = 1
	}
	if c.VSCCEngines < 1 {
		c.VSCCEngines = 1
	}
	if c.EngineLatency == 0 {
		c.EngineLatency = 360 * time.Microsecond
	}
	if c.DispatchLatency == 0 {
		c.DispatchLatency = 10 * time.Microsecond
	}
	if c.MVCCFixedLatency == 0 {
		c.MVCCFixedLatency = 2 * time.Microsecond
	}
	if c.DBAccessLatency == 0 {
		c.DBAccessLatency = 500 * time.Nanosecond
	}
	if c.BlockFixedLatency == 0 {
		c.BlockFixedLatency = 50 * time.Microsecond
	}
	return c
}

// TxProfile describes one transaction's workload for the simulator.
type TxProfile struct {
	// Endorsers lists the endorsement identities in arrival order; the
	// ends_scheduler issues them in this order.
	Endorsers []identity.EncodedID
	// EndorsementValid marks which endorsement signatures verify (all
	// true in the common case).
	EndorsementValid []bool
	// TxSigValid is the client signature verdict.
	TxSigValid bool
	// Reads and Writes are the rdset/wrset sizes.
	Reads  int
	Writes int
}

// UniformTxProfile builds n identical all-valid transactions endorsed by
// the peers of orgs 1..endorsements, the workload shape of the paper's
// experiments.
func UniformTxProfile(n, endorsements, reads, writes int) []TxProfile {
	ends := make([]identity.EncodedID, endorsements)
	valid := make([]bool, endorsements)
	for i := range ends {
		ends[i] = identity.Encode(uint8(i+1), identity.RolePeer, 0)
		valid[i] = true
	}
	txs := make([]TxProfile, n)
	for i := range txs {
		txs[i] = TxProfile{
			Endorsers:        ends,
			EndorsementValid: valid,
			TxSigValid:       true,
			Reads:            reads,
			Writes:           writes,
		}
	}
	return txs
}

// BlockTiming is the simulated timing of one block through the pipeline.
type BlockTiming struct {
	// BlockVerify is the block_verify stage latency (overlapped with the
	// previous block's validate stage in steady state).
	BlockVerify time.Duration
	// Validate is the block_validate stage latency: from first tx issue to
	// the last mvcc_commit completion.
	Validate time.Duration
	// TxLatency is the mean per-transaction latency (issue to commit).
	TxLatency time.Duration
	// VSCCBusy is the cumulative ecdsa_engine busy time in tx_vscc.
	VSCCBusy time.Duration
	// MVCCBusy is the cumulative mvcc_commit stage busy time.
	MVCCBusy time.Duration
	// EndsVerified and EndsSkipped count endorsement engine usage.
	EndsVerified int
	EndsSkipped  int
}

// BlockLatency is the steady-state per-block latency: the block-level
// pipeline overlaps block_verify of block n+1 with validate of block n, so
// the bottleneck stage dominates.
func (t BlockTiming) BlockLatency() time.Duration {
	if t.Validate > t.BlockVerify {
		return t.Validate
	}
	return t.BlockVerify
}

// Throughput returns transactions per second at steady state for blocks of
// txCount transactions.
func (t BlockTiming) Throughput(txCount int) float64 {
	lat := t.BlockLatency()
	if lat <= 0 {
		return 0
	}
	return float64(txCount) / lat.Seconds()
}

// EndsSchedule simulates the ends_scheduler for one transaction: how many
// endorsements are verified (engine work) and how many engine-batch rounds
// it takes, given the policy circuit and the verdict of each endorsement.
func EndsSchedule(circuit *policy.Circuit, endorsers []identity.EncodedID,
	valid []bool, engines int, disableShortCircuit bool) (verified, batches int, satisfied bool) {
	var rf policy.RegisterFile
	rf.Clear()
	idx := 0
	for idx < len(endorsers) {
		if !disableShortCircuit {
			if circuit.Evaluate(&rf) {
				break
			}
			if !circuit.CanStillSatisfy(&rf, endorsers[idx:]) {
				break
			}
		}
		end := idx + engines
		if end > len(endorsers) {
			end = len(endorsers)
		}
		for i := idx; i < end; i++ {
			verified++
			if valid[i] {
				rf.SetID(endorsers[i])
			}
		}
		batches++
		idx = end
	}
	return verified, batches, circuit.Evaluate(&rf)
}

// Simulate runs one block of transactions through the pipeline model and
// returns its timing.
func Simulate(cfg Config, circuit *policy.Circuit, txs []TxProfile) BlockTiming {
	c := cfg.withDefaults()
	var t BlockTiming
	t.BlockVerify = c.EngineLatency

	n := len(txs)
	if n == 0 {
		t.Validate = c.BlockFixedLatency
		return t
	}

	// Per-validator pipeline state.
	verifyFree := make([]time.Duration, c.TxValidators)
	vsccFree := make([]time.Duration, c.TxValidators)

	vsccEnd := make([]time.Duration, n)
	var txStart = make([]time.Duration, n)

	for i, tx := range txs {
		// tx_scheduler: pick the validator whose tx_verify frees earliest.
		best := 0
		for v := 1; v < c.TxValidators; v++ {
			if verifyFree[v] < verifyFree[best] {
				best = v
			}
		}
		start := verifyFree[best] + c.DispatchLatency
		txStart[i] = start

		// tx_verify: one dedicated engine per validator.
		verifyEnd := start + c.EngineLatency
		verifyFree[best] = verifyEnd

		// tx_vscc: batches of up to E endorsement verifications.
		var vsccLat time.Duration
		if tx.TxSigValid {
			verified, batches, _ := EndsSchedule(circuit, tx.Endorsers,
				tx.EndorsementValid, c.VSCCEngines, c.DisableShortCircuit)
			vsccLat = time.Duration(batches) * c.EngineLatency
			t.VSCCBusy += time.Duration(verified) * c.EngineLatency
			t.EndsVerified += verified
			t.EndsSkipped += len(tx.Endorsers) - verified
		} else {
			// Early abort: endorsements discarded.
			t.EndsSkipped += len(tx.Endorsers)
		}
		vsccStart := verifyEnd
		if vsccFree[best] > vsccStart {
			vsccStart = vsccFree[best]
		}
		vsccEnd[i] = vsccStart + vsccLat
		vsccFree[best] = vsccEnd[i]
	}

	// tx_collector (in order) + sequential tx_mvcc_commit.
	var mvccFree, release time.Duration
	var totalTxLat time.Duration
	for i, tx := range txs {
		if vsccEnd[i] > release {
			release = vsccEnd[i]
		}
		start := release
		if mvccFree > start {
			start = mvccFree
		}
		lat := c.MVCCFixedLatency + time.Duration(tx.Reads+tx.Writes)*c.DBAccessLatency
		mvccFree = start + lat
		t.MVCCBusy += lat
		totalTxLat += mvccFree - txStart[i]
	}
	t.Validate = mvccFree + c.BlockFixedLatency
	t.TxLatency = totalTxLat / time.Duration(n)
	return t
}
