package hwsim

import (
	"math/rand"
	"time"
)

// Link models the 1 Gbps datacenter network of the paper's testbed for the
// end-to-end block transmission experiment (Figure 9b). Transmission time
// is serialization at the link rate plus a per-message software/stack
// overhead with jitter:
//
//   - The Gossip path pays the gRPC/HTTP2/TCP stack cost once per block and
//     must receive the complete block before delivery.
//   - The BMac path pays a small per-packet cost, and the cut-through
//     receiver finishes as the last (smaller) packet arrives.
//
// The defaults are calibrated so a 150-transaction smallbank block lands
// near the paper's 26 ms (Gossip) and 18 ms (BMac) 95th percentiles.
type Link struct {
	// BandwidthBps is the link rate in bits per second (default 1e9).
	BandwidthBps float64
	// GossipOverhead is the fixed per-block software cost of the Gossip
	// path: protobuf marshal on the sender, gRPC/HTTP2/TCP, kernel copies
	// (default 12 ms, matching the paper's tail).
	GossipOverhead time.Duration
	// BMacOverheadPerPacket is the per-UDP-packet sender cost
	// (default 55 us).
	BMacOverheadPerPacket time.Duration
	// JitterStdDev scales the random jitter applied per transmission
	// (default 2.5 ms).
	JitterStdDev time.Duration

	rng *rand.Rand
}

// NewLink creates a link model with paper-calibrated defaults and a
// deterministic jitter stream.
func NewLink(seed int64) *Link {
	return &Link{
		BandwidthBps:          1e9,
		GossipOverhead:        12 * time.Millisecond,
		BMacOverheadPerPacket: 55 * time.Microsecond,
		JitterStdDev:          2500 * time.Microsecond,
		rng:                   rand.New(rand.NewSource(seed)),
	}
}

func (l *Link) serialize(bytes int) time.Duration {
	return time.Duration(float64(bytes) * 8 / l.BandwidthBps * float64(time.Second))
}

func (l *Link) jitter() time.Duration {
	j := l.rng.NormFloat64() * float64(l.JitterStdDev)
	if j < 0 {
		j = -j
	}
	return time.Duration(j)
}

// GossipTime models one block transmission over the Gossip path.
func (l *Link) GossipTime(blockBytes int) time.Duration {
	return l.serialize(blockBytes) + l.GossipOverhead + l.jitter()
}

// BMacTime models one block transmission over the BMac protocol: packets
// stream back-to-back and the hardware receiver processes them cut-through.
func (l *Link) BMacTime(totalBytes, packets int) time.Duration {
	return l.serialize(totalBytes) +
		time.Duration(packets)*l.BMacOverheadPerPacket + l.jitter()
}

// ProtocolProcessorRate is the hardware receiver's sustained processing
// rate reported in the paper (Figure 9a table): up to 11 Gbps, which
// translates to at least 996,000 tps for 2-endorsement transactions.
const (
	ProtocolProcessorGbps = 11.0
	ProtocolProcessorTPS  = 996_000
)

// ProtocolProcessorThroughput estimates the hardware receiver's transaction
// rate for a given average transaction-packet size: rate-limited by the
// 11 Gbps datapath.
func ProtocolProcessorThroughput(txPacketBytes int) float64 {
	if txPacketBytes <= 0 {
		return 0
	}
	return ProtocolProcessorGbps * 1e9 / 8 / float64(txPacketBytes)
}
