// Package core implements the Blockchain Machine block processor (paper
// §3.3, Figure 6): a functional, goroutine-shaped emulation of the hardware
// parallel-pipelined validator.
//
// Structure, mirroring the RTL:
//
//	block_verify ──► block_validate ──► res_fifo ──► reg_map
//	                   │
//	                   ├─ tx_scheduler: issues transactions to free
//	                   │                tx_validator instances
//	                   ├─ N× tx_validator = tx_verify + tx_vscc
//	                   │     tx_vscc: E× ecdsa_engine, ends_scheduler with
//	                   │     short-circuit evaluation over the compiled
//	                   │     endorsement-policy circuits
//	                   ├─ tx_collector: reorders results into tx order
//	                   └─ tx_mvcc_commit: sequential mvcc + hardware KVS
//
// The two block-level stages overlap (block n+1 is verified while block n
// is validated), and inside block_validate multiple transactions stream
// through in parallel. Early-abort conditions skip ECDSA work as soon as a
// transaction is known invalid, and the ends_scheduler stops issuing
// endorsement verifications once the policy output is decided — the two
// behaviours responsible for the 2of3-vs-3of3 asymmetry of Figure 12a.
//
// This package computes *results* with real cryptography; the cycle-level
// *timing* of the same architecture is modeled by internal/hwsim.
package core

import (
	"fmt"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/fifo"
	"bmac/internal/identity"
	"bmac/internal/policy"
	"bmac/internal/statedb"
)

// Config parameterizes the block processor architecture, the "NxE"
// notation of the paper (e.g. 8x2 = 8 tx_validators, 2 engines per vscc).
type Config struct {
	// TxValidators is the number of parallel tx_verify+tx_vscc instances.
	TxValidators int
	// VSCCEngines is the number of ecdsa_engine instances per tx_vscc.
	VSCCEngines int
	// Policies maps chaincode name to its compiled policy circuit
	// (the generated ends_policy_evaluator).
	Policies map[string]*policy.Circuit
	// DisableShortCircuit turns off the ends_scheduler's short-circuit
	// evaluation (ablation: behave like Fabric, verify everything).
	DisableShortCircuit bool
	// DisableEarlyAbort turns off the pipeline's early-abort conditions
	// (ablation: endorsements of already-invalid transactions are still
	// verified).
	DisableEarlyAbort bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.TxValidators < 1 {
		out.TxValidators = 1
	}
	if out.VSCCEngines < 1 {
		out.VSCCEngines = 1
	}
	return out
}

// Stats is collected by the block_monitor module per block.
type Stats struct {
	BlockVerifyTime time.Duration
	ValidateTime    time.Duration // block_validate stage wall time
	MVCCCommitTime  time.Duration

	TxCount       int
	EndsVerified  int // ecdsa_engine invocations in tx_vscc
	EndsSkipped   int // endorsements discarded by short-circuit/early-abort
	EngineInvokes int // all ecdsa_engine invocations (block + tx + ends)
}

// Result is the validation result of one block, as exposed through the
// reg_map registers: block number, valid bit, per-transaction flags and
// block statistics.
type Result struct {
	BlockNum   uint64
	BlockValid bool
	Flags      []byte
	Stats      Stats
}

// Processor is the block processor. Create with New, start with Start;
// results appear in the RegMap.
type Processor struct {
	cfg  Config
	bufs *bmacproto.Buffers
	db   *statedb.HardwareKVS

	res    *fifo.FIFO[Result]
	regmap *RegMap

	// polMu guards the live policy table; pendingPolicies is swapped in at
	// the next block boundary, modeling partial reconfiguration of the
	// ends_policy_evaluator without restarting the peer (paper §5).
	polMu           sync.RWMutex
	pendingPolicies map[string]*policy.Circuit

	wg sync.WaitGroup
}

// New creates a block processor reading from bufs and committing to db.
func New(cfg Config, bufs *bmacproto.Buffers, db *statedb.HardwareKVS) *Processor {
	return &Processor{
		cfg:    cfg.withDefaults(),
		bufs:   bufs,
		db:     db,
		res:    fifo.New[Result](8),
		regmap: NewRegMap(),
	}
}

// RegMap returns the hardware/software interface registers.
func (p *Processor) RegMap() *RegMap { return p.regmap }

// UpdatePolicies schedules a new set of compiled endorsement-policy
// circuits (a regenerated ends_policy_evaluator). The swap happens at the
// next block boundary — the partial-reconfiguration upgrade of paper §5
// that avoids restarting the peer when chaincodes change.
func (p *Processor) UpdatePolicies(circuits map[string]*policy.Circuit) {
	cp := make(map[string]*policy.Circuit, len(circuits))
	for k, v := range circuits {
		cp[k] = v
	}
	p.polMu.Lock()
	p.pendingPolicies = cp
	p.polMu.Unlock()
}

// applyPendingPolicies installs a scheduled policy table, if any; called
// at block boundaries only.
func (p *Processor) applyPendingPolicies() {
	p.polMu.Lock()
	if p.pendingPolicies != nil {
		p.cfg.Policies = p.pendingPolicies
		p.pendingPolicies = nil
	}
	p.polMu.Unlock()
}

// circuitFor looks up the live policy circuit for a chaincode.
func (p *Processor) circuitFor(cc string) (*policy.Circuit, bool) {
	p.polMu.RLock()
	c, ok := p.cfg.Policies[cc]
	p.polMu.RUnlock()
	return c, ok
}

// DB returns the in-hardware state database.
func (p *Processor) DB() *statedb.HardwareKVS { return p.db }

// verifiedBlock flows between the two block-level pipeline stages.
type verifiedBlock struct {
	entry      bmacproto.BlockEntry
	valid      bool
	verifyTime time.Duration
}

// Start launches the pipeline stages. Processing ends when the input
// buffers are closed; Wait blocks until then.
func (p *Processor) Start() {
	stage2 := make(chan verifiedBlock, 1) // 2-stage block-level pipeline

	// Stage 1: block_verify, with one dedicated ecdsa_engine.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(stage2)
		for {
			entry, ok := p.bufs.Block.Pop()
			if !ok {
				return
			}
			t := time.Now()
			valid := entry.Verify.Execute()
			stage2 <- verifiedBlock{entry: entry, valid: valid, verifyTime: time.Since(t)}
		}
	}()

	// Stage 2: block_validate + res_fifo writer.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.res.Close()
		for vb := range stage2 {
			res := p.validateBlock(vb)
			if err := p.res.Push(res); err != nil {
				return
			}
		}
	}()

	// block_monitor / reg_map writer.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.regmap.Close()
		for {
			res, ok := p.res.Pop()
			if !ok {
				return
			}
			p.regmap.write(res)
		}
	}()
}

// Wait blocks until the pipeline has drained after the buffers were closed.
func (p *Processor) Wait() { p.wg.Wait() }

// txJob bundles everything a tx_validator instance needs for one
// transaction: the tx_fifo entry plus its ends/rdset/wrset entries, popped
// by the tx_scheduler using the counts carried in the tx entry.
type txJob struct {
	entry      bmacproto.TxEntry
	ends       []bmacproto.EndsEntry
	reads      []block.KVRead
	writes     []block.KVWrite
	blockValid bool
}

// txResult is what a tx_validator forwards to the tx_collector.
type txResult struct {
	seq           int
	code          block.ValidationCode
	reads         []block.KVRead
	writes        []block.KVWrite
	engineInvokes int // all ecdsa_engine uses by this transaction
	endsVerified  int // vscc endorsement verifications only
	endsSkipped   int
}

// validateBlock runs the block_validate stage for one block.
func (p *Processor) validateBlock(vb verifiedBlock) Result {
	p.applyPendingPolicies()
	start := time.Now()
	n := vb.entry.NumTxs
	res := Result{
		BlockNum:   vb.entry.BlockNum,
		BlockValid: vb.valid,
		Flags:      make([]byte, n),
	}
	res.Stats.TxCount = n
	res.Stats.BlockVerifyTime = vb.verifyTime
	res.Stats.EngineInvokes = 1 // block_verify

	jobs := make(chan txJob)
	results := make(chan txResult)

	// tx_validator instances.
	var validators sync.WaitGroup
	for i := 0; i < p.cfg.TxValidators; i++ {
		validators.Add(1)
		go func() {
			defer validators.Done()
			for job := range jobs {
				results <- p.runTxValidator(job)
			}
		}()
	}

	// tx_collector + tx_mvcc_commit, consuming results in order.
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		pending := make(map[int]txResult)
		nextSeq := 0
		writtenInBlock := make(map[string]bool, n)
		mvccStart := time.Now()
		for r := range results {
			pending[r.seq] = r
			for {
				cur, ok := pending[nextSeq]
				if !ok {
					break
				}
				delete(pending, nextSeq)
				p.mvccCommitOne(&cur, vb.entry.BlockNum, writtenInBlock)
				res.Flags[cur.seq] = byte(cur.code)
				res.Stats.EndsVerified += cur.endsVerified
				res.Stats.EndsSkipped += cur.endsSkipped
				res.Stats.EngineInvokes += cur.engineInvokes
				nextSeq++
			}
		}
		res.Stats.MVCCCommitTime = time.Since(mvccStart)
	}()

	// tx_scheduler: pop each transaction and its dependent FIFO entries in
	// order, then dispatch to a free tx_validator.
	for seq := 0; seq < n; seq++ {
		entry, ok := p.bufs.Tx.Pop()
		if !ok {
			break // input closed mid-block: abandon remaining txs
		}
		job := txJob{entry: entry, blockValid: vb.valid}
		job.ends = make([]bmacproto.EndsEntry, 0, entry.NumEnds)
		for e := 0; e < entry.NumEnds; e++ {
			ee, ok := p.bufs.Ends.Pop()
			if !ok {
				break
			}
			job.ends = append(job.ends, ee)
		}
		job.reads = make([]block.KVRead, 0, entry.RdsetSize)
		for r := 0; r < entry.RdsetSize; r++ {
			re, ok := p.bufs.Rdset.Pop()
			if !ok {
				break
			}
			job.reads = append(job.reads, re.Read)
		}
		job.writes = make([]block.KVWrite, 0, entry.WrsetSize)
		for w := 0; w < entry.WrsetSize; w++ {
			we, ok := p.bufs.Wrset.Pop()
			if !ok {
				break
			}
			job.writes = append(job.writes, we.Write)
		}
		jobs <- job
	}
	close(jobs)
	validators.Wait()
	close(results)
	<-collectorDone

	res.Stats.ValidateTime = time.Since(start)
	return res
}

// runTxValidator is one tx_validator instance: tx_verify then tx_vscc.
func (p *Processor) runTxValidator(job txJob) txResult {
	out := txResult{seq: job.entry.Seq, reads: job.reads, writes: job.writes}

	// tx_verify: skip when the block is already invalid (early abort).
	if !job.blockValid && !p.cfg.DisableEarlyAbort {
		out.code = block.InvalidOther
		out.endsSkipped = len(job.ends)
		return out
	}
	txValid := job.entry.Verify.Execute()
	out.engineInvokes++ // the tx_verify engine invocation
	if !job.blockValid {
		// Early abort disabled: work was done, result still invalid.
		out.code = block.InvalidOther
		out.endsSkipped = len(job.ends)
		return out
	}
	if !txValid {
		out.code = block.BadSignature
		if !p.cfg.DisableEarlyAbort {
			out.endsSkipped = len(job.ends)
			return out
		}
	}

	// tx_vscc: endorsement verification + policy circuit.
	circuit, ok := p.circuitFor(job.entry.CCName)
	if !ok {
		out.code = block.InvalidOther
		out.endsSkipped = len(job.ends)
		return out
	}
	var rf policy.RegisterFile
	rf.Clear()
	idx := 0
	for idx < len(job.ends) {
		if !p.cfg.DisableShortCircuit {
			// Validity short-circuit: policy already satisfied.
			if circuit.Evaluate(&rf) {
				break
			}
			// Invalidity short-circuit: policy can never be satisfied.
			remaining := make([]identity.EncodedID, 0, len(job.ends)-idx)
			for _, e := range job.ends[idx:] {
				remaining = append(remaining, e.EndorserID)
			}
			if !circuit.CanStillSatisfy(&rf, remaining) {
				break
			}
		}
		// Issue a batch of up to VSCCEngines verifications in parallel —
		// the ends_scheduler keeping all engine instances busy.
		batch := job.ends[idx:min(idx+p.cfg.VSCCEngines, len(job.ends))]
		verdicts := make([]bool, len(batch))
		var wg sync.WaitGroup
		for i := range batch {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				verdicts[i] = batch[i].Verify.Execute()
			}(i)
		}
		wg.Wait()
		for i, v := range verdicts {
			out.endsVerified++
			out.engineInvokes++
			if v {
				rf.SetID(batch[i].EndorserID)
			}
		}
		idx += len(batch)
	}
	out.endsSkipped += len(job.ends) - idx

	if out.code == block.Valid { // not already invalidated by tx_verify
		if !circuit.Evaluate(&rf) {
			out.code = block.EndorsementPolicyFailure
		}
	}
	return out
}

// mvccCommitOne is the tx_mvcc_commit stage for one transaction, executed
// strictly in transaction order by the collector goroutine.
func (p *Processor) mvccCommitOne(r *txResult, blockNum uint64, writtenInBlock map[string]bool) {
	if r.code != block.Valid {
		return // mvcc and commit skipped for invalid transactions
	}
	for _, rd := range r.reads {
		if writtenInBlock[rd.Key] {
			r.code = block.MVCCReadConflict
			return
		}
		cur, _ := p.db.Version(rd.Key)
		if cur != rd.Version {
			r.code = block.MVCCReadConflict
			return
		}
	}
	for _, w := range r.writes {
		// Capacity exhaustion marks the transaction invalid rather than
		// wedging the pipeline; see paper §5 on database scaling.
		if err := p.db.Write(w.Key, w.Value, block.Version{BlockNum: blockNum, TxNum: uint64(r.seq)}); err != nil {
			r.code = block.InvalidOther
			return
		}
		writtenInBlock[w.Key] = true
	}
}

// GetBlockData is the primary API function of paper §3.5: it blocks until
// the hardware has a validation result and returns it in a form compatible
// with the peer software. ok=false means the pipeline has shut down.
func (p *Processor) GetBlockData() (Result, bool) {
	return p.regmap.Read()
}

// RegMap models the AXI-Lite register interface (paper §3.4): it holds one
// block result and blocks new writes until the CPU has read the previous
// result, so results are never overwritten.
type RegMap struct {
	mu       sync.Mutex
	nonFull  *sync.Cond
	nonEmpty *sync.Cond
	cur      Result
	full     bool
	closed   bool
}

// NewRegMap creates an empty register map.
func NewRegMap() *RegMap {
	r := &RegMap{}
	r.nonFull = sync.NewCond(&r.mu)
	r.nonEmpty = sync.NewCond(&r.mu)
	return r
}

// write stores a result, blocking until the previous one was read.
func (r *RegMap) write(res Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.full && !r.closed {
		r.nonFull.Wait()
	}
	if r.closed {
		return
	}
	r.cur = res
	r.full = true
	r.nonEmpty.Signal()
}

// Read blocks until a result is available. ok=false after Close with no
// pending result.
func (r *RegMap) Read() (Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.full && !r.closed {
		r.nonEmpty.Wait()
	}
	if !r.full {
		return Result{}, false
	}
	res := r.cur
	r.full = false
	r.nonFull.Signal()
	return res, true
}

// Close marks end-of-stream.
func (r *RegMap) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.nonFull.Broadcast()
	r.nonEmpty.Broadcast()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the architecture name, e.g. "8x2".
func (c Config) String() string {
	return fmt.Sprintf("%dx%d", c.TxValidators, c.VSCCEngines)
}
