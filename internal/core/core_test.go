package core

import (
	"testing"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// rig wires the full hardware path: sender -> memlink -> receiver ->
// processor, plus a software validator over the same policy for
// equivalence checks.
type rig struct {
	net     *identity.Network
	client  *identity.Identity
	orderer *identity.Identity
	peers   []*identity.Identity

	bufs   *bmacproto.Buffers
	recv   *bmacproto.Receiver
	sender *bmacproto.Sender
	proc   *Processor
}

func newRig(t testing.TB, orgs int, pol string, cfg Config) *rig {
	t.Helper()
	n := identity.NewNetwork()
	r := &rig{net: n}
	for i := 1; i <= orgs; i++ {
		org := "Org" + string(rune('0'+i))
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
		p, err := n.NewIdentity(org, identity.RolePeer)
		if err != nil {
			t.Fatal(err)
		}
		r.peers = append(r.peers, p)
	}
	var err error
	r.client, err = n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	r.orderer, err = n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}

	recvCache := identity.NewCache()
	r.bufs = bmacproto.NewBuffers()
	r.recv = bmacproto.NewReceiver(recvCache, r.bufs)
	link := bmacproto.NewMemLink(r.recv)
	r.sender = bmacproto.NewSender(identity.NewCache(), link)
	if err := r.sender.RegisterNetwork(n); err != nil {
		t.Fatal(err)
	}

	if cfg.Policies == nil {
		cfg.Policies = map[string]*policy.Circuit{
			"smallbank": policy.Compile(policytest.MustParse(pol)),
		}
	}
	r.proc = New(cfg, r.bufs, statedb.NewHardwareKVS(8192))
	r.proc.Start()
	t.Cleanup(func() {
		r.bufs.Close()
		r.proc.Wait()
	})
	// Drain assembled blocks so the receiver never blocks.
	go func() {
		for range r.recv.Blocks() {
		}
	}()
	return r
}

func (r *rig) block(t testing.TB, num uint64, specs []block.TxSpec) *block.Block {
	t.Helper()
	envs := make([]block.Envelope, 0, len(specs))
	for i := range specs {
		env, err := block.NewEndorsedEnvelope(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	b, err := block.NewBlock(num, nil, envs, r.orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (r *rig) spec(endorsers []*identity.Identity, rw block.RWSet) block.TxSpec {
	return block.TxSpec{
		Creator:   r.client,
		Chaincode: "smallbank",
		Channel:   "ch1",
		RWSet:     rw,
		Endorsers: endorsers,
	}
}

func TestAllValidBlock(t *testing.T) {
	r := newRig(t, 2, "2of2", Config{TxValidators: 4, VSCCEngines: 2})
	specs := make([]block.TxSpec, 6)
	for i := range specs {
		specs[i] = r.spec([]*identity.Identity{r.peers[0], r.peers[1]},
			block.RWSet{Writes: []block.KVWrite{{Key: "k" + string(rune('a'+i)), Value: []byte{1}}}})
	}
	b := r.block(t, 0, specs)
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, ok := r.proc.GetBlockData()
	if !ok {
		t.Fatal("no result")
	}
	if !res.BlockValid {
		t.Error("block invalid")
	}
	for i, fl := range res.Flags {
		if block.ValidationCode(fl) != block.Valid {
			t.Errorf("tx %d = %v", i, block.ValidationCode(fl))
		}
	}
	if r.proc.DB().Len() != 6 {
		t.Errorf("hw db keys = %d, want 6", r.proc.DB().Len())
	}
	if res.Stats.TxCount != 6 {
		t.Errorf("stats tx count = %d", res.Stats.TxCount)
	}
}

func TestShortCircuitSkipsEndorsements(t *testing.T) {
	// 2of3 policy with 3 endorsements and 2 engines: the first batch of 2
	// valid endorsements satisfies the policy; the third must be skipped.
	r := newRig(t, 3, "2of3", Config{TxValidators: 1, VSCCEngines: 2})
	specs := []block.TxSpec{
		r.spec([]*identity.Identity{r.peers[0], r.peers[1], r.peers[2]}, block.RWSet{}),
	}
	b := r.block(t, 0, specs)
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, ok := r.proc.GetBlockData()
	if !ok {
		t.Fatal("no result")
	}
	if block.ValidationCode(res.Flags[0]) != block.Valid {
		t.Fatalf("flag = %v", block.ValidationCode(res.Flags[0]))
	}
	if res.Stats.EndsVerified != 2 {
		t.Errorf("ends verified = %d, want 2 (short-circuit)", res.Stats.EndsVerified)
	}
	if res.Stats.EndsSkipped != 1 {
		t.Errorf("ends skipped = %d, want 1", res.Stats.EndsSkipped)
	}
}

func TestShortCircuitDisabledVerifiesAll(t *testing.T) {
	r := newRig(t, 3, "2of3", Config{TxValidators: 1, VSCCEngines: 2, DisableShortCircuit: true})
	specs := []block.TxSpec{
		r.spec([]*identity.Identity{r.peers[0], r.peers[1], r.peers[2]}, block.RWSet{}),
	}
	b := r.block(t, 0, specs)
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, _ := r.proc.GetBlockData()
	if res.Stats.EndsVerified != 3 {
		t.Errorf("ends verified = %d, want 3 (ablation)", res.Stats.EndsVerified)
	}
}

func TestInvalidityShortCircuit(t *testing.T) {
	// 3of3 with the first endorsement corrupt: after batch 1 (engines=1),
	// the policy can never be satisfied; endorsements 2,3 are skipped.
	r := newRig(t, 3, "3of3", Config{TxValidators: 1, VSCCEngines: 1})
	spec := r.spec([]*identity.Identity{r.peers[0], r.peers[1], r.peers[2]}, block.RWSet{})
	spec.CorruptEndorsementIdx = 1
	b := r.block(t, 0, []block.TxSpec{spec})
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, _ := r.proc.GetBlockData()
	if block.ValidationCode(res.Flags[0]) != block.EndorsementPolicyFailure {
		t.Errorf("flag = %v", block.ValidationCode(res.Flags[0]))
	}
	if res.Stats.EndsVerified != 1 {
		t.Errorf("ends verified = %d, want 1 (invalidity short-circuit)", res.Stats.EndsVerified)
	}
}

func TestEarlyAbortOnBadClientSig(t *testing.T) {
	r := newRig(t, 2, "2of2", Config{TxValidators: 2, VSCCEngines: 2})
	spec := r.spec([]*identity.Identity{r.peers[0], r.peers[1]}, block.RWSet{})
	spec.CorruptClientSig = true
	b := r.block(t, 0, []block.TxSpec{spec})
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, _ := r.proc.GetBlockData()
	if block.ValidationCode(res.Flags[0]) != block.BadSignature {
		t.Errorf("flag = %v", block.ValidationCode(res.Flags[0]))
	}
	if res.Stats.EndsVerified != 0 || res.Stats.EndsSkipped != 2 {
		t.Errorf("ends = %d verified / %d skipped, want 0/2 (early abort)",
			res.Stats.EndsVerified, res.Stats.EndsSkipped)
	}
}

func TestBadOrdererSignatureInvalidatesAll(t *testing.T) {
	r := newRig(t, 2, "2of2", Config{TxValidators: 2, VSCCEngines: 2})
	b := r.block(t, 0, []block.TxSpec{
		r.spec([]*identity.Identity{r.peers[0], r.peers[1]}, block.RWSet{}),
		r.spec([]*identity.Identity{r.peers[0], r.peers[1]}, block.RWSet{}),
	})
	b.Metadata.Signature.Signature[8] ^= 0xff
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, _ := r.proc.GetBlockData()
	if res.BlockValid {
		t.Error("block reported valid")
	}
	for i, fl := range res.Flags {
		if block.ValidationCode(fl) == block.Valid {
			t.Errorf("tx %d valid under invalid block", i)
		}
	}
	if res.Stats.EndsVerified != 0 {
		t.Errorf("ends verified = %d under invalid block (early abort)", res.Stats.EndsVerified)
	}
	if r.proc.DB().Len() != 0 {
		t.Error("invalid block committed to hw db")
	}
}

func TestMVCCConflictInHardware(t *testing.T) {
	r := newRig(t, 2, "2of2", Config{TxValidators: 4, VSCCEngines: 2})
	ends := []*identity.Identity{r.peers[0], r.peers[1]}
	b := r.block(t, 0, []block.TxSpec{
		r.spec(ends, block.RWSet{Writes: []block.KVWrite{{Key: "hot", Value: []byte("1")}}}),
		r.spec(ends, block.RWSet{
			Reads:  []block.KVRead{{Key: "hot", Version: block.Version{}}},
			Writes: []block.KVWrite{{Key: "x", Value: []byte("2")}},
		}),
	})
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	res, _ := r.proc.GetBlockData()
	if block.ValidationCode(res.Flags[0]) != block.Valid {
		t.Errorf("tx0 = %v", block.ValidationCode(res.Flags[0]))
	}
	if block.ValidationCode(res.Flags[1]) != block.MVCCReadConflict {
		t.Errorf("tx1 = %v, want mvcc conflict", block.ValidationCode(res.Flags[1]))
	}
	if _, ok := r.proc.DB().Read("x"); ok {
		t.Error("conflicted write committed")
	}
}

func TestPipelinedBlocks(t *testing.T) {
	r := newRig(t, 2, "2of2", Config{TxValidators: 2, VSCCEngines: 2})
	ends := []*identity.Identity{r.peers[0], r.peers[1]}
	for num := uint64(0); num < 4; num++ {
		b := r.block(t, num, []block.TxSpec{
			r.spec(ends, block.RWSet{Writes: []block.KVWrite{{Key: "k", Value: []byte{byte(num)}}}}),
		})
		if _, err := r.sender.SendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	for num := uint64(0); num < 4; num++ {
		res, ok := r.proc.GetBlockData()
		if !ok {
			t.Fatalf("no result for block %d", num)
		}
		if res.BlockNum != num {
			t.Errorf("result order: got block %d, want %d", res.BlockNum, num)
		}
	}
	// Final state: k has the last block's version.
	v, ok := r.proc.DB().Read("k")
	if !ok || v.Version.BlockNum != 3 {
		t.Errorf("final version = %+v", v.Version)
	}
}

// TestSoftwareHardwareEquivalence is the paper's §4.1 cross-check: the same
// blocks flow through the software validator and the BMac pipeline, and the
// transaction flags and resulting state must match exactly.
func TestSoftwareHardwareEquivalence(t *testing.T) {
	r := newRig(t, 3, "2of3", Config{TxValidators: 4, VSCCEngines: 2})
	swLed, err := ledger.Open(t.TempDir(), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer swLed.Close()
	sw := validator.New(validator.Config{
		Workers:  4,
		Policies: map[string]*policy.Policy{"smallbank": policytest.MustParse("2of3")},
	}, statedb.NewStore(), swLed)

	ends3 := []*identity.Identity{r.peers[0], r.peers[1], r.peers[2]}
	mk := func(i int, corruptClient bool, corruptEnd int, rw block.RWSet) block.TxSpec {
		s := r.spec(ends3, rw)
		s.CorruptClientSig = corruptClient
		s.CorruptEndorsementIdx = corruptEnd
		return s
	}
	specs := []block.TxSpec{
		mk(0, false, 0, block.RWSet{Writes: []block.KVWrite{{Key: "a", Value: []byte("1")}}}),
		mk(1, true, 0, block.RWSet{Writes: []block.KVWrite{{Key: "b", Value: []byte("2")}}}),
		mk(2, false, 1, block.RWSet{Writes: []block.KVWrite{{Key: "c", Value: []byte("3")}}}), // 1 bad end, 2of3 still OK
		mk(3, false, 0, block.RWSet{
			Reads:  []block.KVRead{{Key: "a", Version: block.Version{}}},
			Writes: []block.KVWrite{{Key: "d", Value: []byte("4")}},
		}), // mvcc conflict with tx0
		mk(4, false, 0, block.RWSet{Writes: []block.KVWrite{{Key: "e", Value: []byte("5")}}}),
	}
	b := r.block(t, 0, specs)
	raw := block.Marshal(b)

	swRes, err := sw.ValidateAndCommit(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}
	hwRes, ok := r.proc.GetBlockData()
	if !ok {
		t.Fatal("no hw result")
	}

	if !block.FlagsEqual(swRes.Flags, hwRes.Flags) {
		t.Errorf("flags diverge:\n  sw: %v\n  hw: %v", swRes.Flags, hwRes.Flags)
	}
	if !statedb.SnapshotsEqual(sw.Store().Snapshot(), r.proc.DB().Snapshot()) {
		t.Error("state databases diverge")
	}
	// Same flags + same data hash => same commit hash chain value.
	swCH := block.CommitHash(nil, b.Header.DataHash, swRes.Flags)
	hwCH := block.CommitHash(nil, b.Header.DataHash, hwRes.Flags)
	if string(swCH) != string(hwCH) {
		t.Error("commit hashes diverge")
	}
}

func TestArchitectureString(t *testing.T) {
	c := Config{TxValidators: 8, VSCCEngines: 2}
	if c.String() != "8x2" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestRegMapBackpressure(t *testing.T) {
	rm := NewRegMap()
	done := make(chan struct{})
	go func() {
		rm.write(Result{BlockNum: 1})
		rm.write(Result{BlockNum: 2}) // blocks until first read
		close(done)
	}()
	res, ok := rm.Read()
	if !ok || res.BlockNum != 1 {
		t.Fatalf("first read = %+v, %v", res, ok)
	}
	res, ok = rm.Read()
	if !ok || res.BlockNum != 2 {
		t.Fatalf("second read = %+v, %v", res, ok)
	}
	<-done
	rm.Close()
	if _, ok := rm.Read(); ok {
		t.Error("read after close")
	}
}

// TestUpdatePoliciesAtBlockBoundary exercises the §5 partial
// reconfiguration path: a chaincode without an installed policy is
// invalid; after UpdatePolicies, the next block validates.
func TestUpdatePoliciesAtBlockBoundary(t *testing.T) {
	r := newRig(t, 2, "2of2", Config{TxValidators: 2, VSCCEngines: 2})
	ends := []*identity.Identity{r.peers[0], r.peers[1]}

	newCC := func(num uint64) *block.Block {
		spec := r.spec(ends, block.RWSet{})
		spec.Chaincode = "newcc"
		return r.block(t, num, []block.TxSpec{spec})
	}

	if _, err := r.sender.SendBlock(newCC(0)); err != nil {
		t.Fatal(err)
	}
	res, _ := r.proc.GetBlockData()
	if block.ValidationCode(res.Flags[0]) != block.InvalidOther {
		t.Fatalf("before reconfiguration: flag = %v, want InvalidOther",
			block.ValidationCode(res.Flags[0]))
	}

	// Regenerate the ends_policy_evaluator with the new chaincode.
	r.proc.UpdatePolicies(map[string]*policy.Circuit{
		"smallbank": policy.Compile(policytest.MustParse("2of2")),
		"newcc":     policy.Compile(policytest.MustParse("2of2")),
	})
	if _, err := r.sender.SendBlock(newCC(1)); err != nil {
		t.Fatal(err)
	}
	res, _ = r.proc.GetBlockData()
	if block.ValidationCode(res.Flags[0]) != block.Valid {
		t.Errorf("after reconfiguration: flag = %v, want Valid",
			block.ValidationCode(res.Flags[0]))
	}
}
