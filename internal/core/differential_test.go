package core

import (
	"math/rand"
	"testing"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// TestRandomizedDifferential is a randomized differential test between the
// software validator and the BMac pipeline: many blocks with random
// mixtures of valid transactions, bad client signatures, bad endorsements,
// missing endorsements and mvcc conflicts, across several policies and
// architectures. Any divergence in flags or committed state fails.
func TestRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20220106))
	policies := []string{"1of1", "2of2", "2of3", "3of3"}
	archs := []Config{
		{TxValidators: 1, VSCCEngines: 1},
		{TxValidators: 3, VSCCEngines: 2},
		{TxValidators: 8, VSCCEngines: 3},
	}
	for _, polSrc := range policies {
		for _, arch := range archs {
			arch := arch
			pol := policytest.MustParse(polSrc)
			ends := pol.MaxEndorsements()
			arch.Policies = map[string]*policy.Circuit{"smallbank": policy.Compile(pol)}

			r := newRig(t, 4, polSrc, arch)
			sw := validator.New(validator.Config{
				Workers:    3,
				Policies:   map[string]*policy.Policy{"smallbank": pol},
				SkipLedger: true,
			}, statedb.NewStore(), nil)

			for blockNum := uint64(0); blockNum < 3; blockNum++ {
				nTxs := 1 + rng.Intn(8)
				specs := make([]block.TxSpec, 0, nTxs)
				for i := 0; i < nTxs; i++ {
					endorsers := make([]*identity.Identity, ends)
					copy(endorsers, r.peers[:ends])
					if rng.Intn(6) == 0 && ends > 1 {
						endorsers = endorsers[:ends-1] // missing endorsement
					}
					spec := block.TxSpec{
						Creator:   r.client,
						Chaincode: "smallbank",
						Channel:   "ch1",
						Endorsers: endorsers,
					}
					switch rng.Intn(5) {
					case 0:
						spec.CorruptClientSig = true
					case 1:
						spec.CorruptEndorsementIdx = 1 + rng.Intn(len(endorsers))
					}
					// Random rw sets; occasional deliberate conflicts via
					// shared "hot" keys within the block.
					key := "k" + string(rune('a'+rng.Intn(4)))
					if rng.Intn(2) == 0 {
						spec.RWSet.Reads = append(spec.RWSet.Reads,
							block.KVRead{Key: key})
					}
					spec.RWSet.Writes = append(spec.RWSet.Writes,
						block.KVWrite{Key: key, Value: []byte{byte(i)}})
					specs = append(specs, spec)
				}
				b := r.block(t, blockNum, specs)
				raw := block.Marshal(b)

				swRes, swErr := sw.ValidateAndCommit(raw)
				if _, err := r.sender.SendBlock(b); err != nil {
					t.Fatal(err)
				}
				hwRes, ok := r.proc.GetBlockData()
				if !ok {
					t.Fatal("hw pipeline stopped")
				}
				if swErr != nil {
					// Software rejected the whole block; hardware must too.
					if hwRes.BlockValid {
						t.Fatalf("policy %s arch %s block %d: sw rejected, hw accepted",
							polSrc, arch.String(), blockNum)
					}
					continue
				}
				if !block.FlagsEqual(swRes.Flags, hwRes.Flags) {
					t.Fatalf("policy %s arch %s block %d (%d txs): flags diverge\n  sw %v\n  hw %v",
						polSrc, arch.String(), blockNum, nTxs, swRes.Flags, hwRes.Flags)
				}
			}
			if !statedb.SnapshotsEqual(sw.Store().Snapshot(), r.proc.DB().Snapshot()) {
				t.Fatalf("policy %s arch %s: state diverged", polSrc, arch.String())
			}
		}
	}
}
