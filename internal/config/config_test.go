package config

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bmac/internal/statedb"
)

const sampleYAML = `
channel: mychannel
orgs:
  - name: Org1
    peers: 1
    endorsers: 1
    clients: 1
    orderers: 1
  - name: Org2
    peers: 1
    endorsers: 1
chaincodes:
  - name: smallbank
    policy: "2of2"
  - name: drm
    policy: "Org1 & Org2"
architecture:
  tx_validators: 8
  vscc_engines: 2
  db_capacity: 8192
  max_block_txs: 256
pipeline:
  workers: 6
  depth: 3
  prefetch: true
  prefetch_workers: 4
statedb:
  backend: hybrid
  capacity: 512
  shards: 8
  host_read_latency_us: 40
delivery:
  window: 128
  policy: drop
  max_redials: 5
durability:
  checkpoint_every: 16
  sync_each_block: true
  segment_bytes: 1048576
  keep_checkpoints: 3
  prune: true
  fastsync: false
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channel != "mychannel" {
		t.Errorf("channel = %q", cfg.Channel)
	}
	if len(cfg.Orgs) != 2 || cfg.Orgs[0].Name != "Org1" || cfg.Orgs[0].Clients != 1 {
		t.Errorf("orgs = %+v", cfg.Orgs)
	}
	if len(cfg.Chaincodes) != 2 || cfg.Chaincodes[1].Policy != "Org1 & Org2" {
		t.Errorf("chaincodes = %+v", cfg.Chaincodes)
	}
	if cfg.Arch.TxValidators != 8 || cfg.Arch.DBCapacity != 8192 {
		t.Errorf("arch = %+v", cfg.Arch)
	}
	if cfg.Pipeline.Workers != 6 || cfg.Pipeline.Depth != 3 ||
		!cfg.Pipeline.Prefetch || cfg.Pipeline.PrefetchWorkers != 4 {
		t.Errorf("pipeline = %+v", cfg.Pipeline)
	}
	if cfg.StateDB.Backend != BackendHybrid || cfg.StateDB.Capacity != 512 ||
		cfg.StateDB.Shards != 8 || cfg.StateDB.HostReadLatencyUS != 40 {
		t.Errorf("statedb = %+v", cfg.StateDB)
	}
	if cfg.Delivery.Window != 128 || cfg.Delivery.Policy != PolicyDrop || cfg.Delivery.MaxRedials != 5 {
		t.Errorf("delivery = %+v", cfg.Delivery)
	}
	if cfg.Durability.CheckpointEvery != 16 || !cfg.Durability.SyncEachBlock {
		t.Errorf("durability = %+v", cfg.Durability)
	}
	if cfg.Durability.SegmentBytes != 1048576 || cfg.Durability.KeepCheckpoints != 3 ||
		!cfg.Durability.Prune || !cfg.Durability.NoFastSync {
		t.Errorf("durability segment/prune keys = %+v", cfg.Durability)
	}
}

func TestDurabilitySpecValidation(t *testing.T) {
	bad := Default()
	bad.Durability.CheckpointEvery = -3
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative checkpoint cadence: err = %v, want ErrInvalid", err)
	}
	bad = Default()
	bad.Durability.SegmentBytes = -1
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative segment_bytes: err = %v, want ErrInvalid", err)
	}
	bad = Default()
	bad.Durability.Prune = true // no checkpoint cadence: nothing ever covers a segment
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("prune without checkpoints: err = %v, want ErrInvalid", err)
	}
	ok := Default()
	ok.Durability.Prune = true
	ok.Durability.CheckpointEvery = 4
	if err := ok.Validate(); err != nil {
		t.Errorf("prune with cadence rejected: %v", err)
	}
	// YAML fastsync defaults to on: the zero value must mean fast-sync.
	if Default().Durability.NoFastSync {
		t.Error("NoFastSync zero value must be false (fast-sync on)")
	}
}

func TestDeliverySpecValidation(t *testing.T) {
	bad := Default()
	bad.Delivery.Policy = "teleport"
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown delivery policy: err = %v, want ErrInvalid", err)
	}
	bad = Default()
	bad.Delivery.Window = -1
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative delivery window: err = %v, want ErrInvalid", err)
	}
}

func TestNewKVSBackends(t *testing.T) {
	cfg := Default()
	if kvs, err := cfg.NewKVS(); err != nil {
		t.Fatal(err)
	} else if _, ok := kvs.(*statedb.Store); !ok {
		t.Errorf("default backend = %T, want *statedb.Store", kvs)
	}

	cfg.StateDB = StateDBSpec{Backend: BackendSharded, Shards: 4}
	if kvs, err := cfg.NewKVS(); err != nil {
		t.Fatal(err)
	} else if s, ok := kvs.(*statedb.ShardedStore); !ok || s.ShardCount() != 4 {
		t.Errorf("sharded backend = %T (%+v)", kvs, kvs)
	}

	// Hybrid with capacity 0 inherits the architecture's db_capacity.
	cfg.StateDB = StateDBSpec{Backend: BackendHybrid, HostReadLatencyUS: 10}
	if kvs, err := cfg.NewKVS(); err != nil {
		t.Fatal(err)
	} else if h, ok := kvs.(*statedb.HybridKVS); !ok || h.Capacity() != cfg.Arch.DBCapacity {
		t.Errorf("hybrid backend = %T (capacity %v, want %d)", kvs, kvs, cfg.Arch.DBCapacity)
	}

	bad := Default()
	bad.StateDB.Backend = "leveldb"
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown backend: err = %v, want ErrInvalid", err)
	}
	bad = Default()
	bad.StateDB.Capacity = -1
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative capacity: err = %v, want ErrInvalid", err)
	}
}

func TestPipelineConfigDefaultsAndMaterialization(t *testing.T) {
	cfg := Default()
	if cfg.Pipeline.Workers != 0 || cfg.Pipeline.Depth != 0 {
		t.Errorf("default pipeline spec should be zero (engine chooses): %+v", cfg.Pipeline)
	}
	pc, err := cfg.PipelineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Policies) != len(cfg.Chaincodes) {
		t.Errorf("pipeline policies = %d, want %d", len(pc.Policies), len(cfg.Chaincodes))
	}

	bad := Default()
	bad.Pipeline.Workers = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative pipeline workers accepted")
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bmac.yaml")
	if err := os.WriteFile(path, []byte(sampleYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channel != "mychannel" {
		t.Error("file load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.yaml")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDefaultIsValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.CoreConfig(); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.ValidatorConfig(4); err != nil {
		t.Fatal(err)
	}
	hw := cfg.HWSimConfig()
	if hw.TxValidators != 8 {
		t.Errorf("hwsim validators = %d", hw.TxValidators)
	}
}

func TestInvalidConfigs(t *testing.T) {
	cases := []string{
		// no orgs
		"chaincodes:\n  - name: cc\n    policy: 1of1\n",
		// no chaincodes
		"orgs:\n  - name: Org1\n",
		// bad policy
		"orgs:\n  - name: Org1\nchaincodes:\n  - name: cc\n    policy: bogus\n",
		// chaincode without policy
		"orgs:\n  - name: Org1\nchaincodes:\n  - name: cc\n",
	}
	for i, src := range cases {
		if _, err := Parse([]byte(src)); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}
}

func TestOversizedArchitectureRejected(t *testing.T) {
	cfg := Default()
	cfg.Arch.TxValidators = 100
	cfg.Arch.VSCCEngines = 4
	if err := cfg.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid (does not fit U250)", err)
	}
}

func TestBuildNetwork(t *testing.T) {
	cfg, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	n, err := cfg.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	// Org1: 1 orderer + 2 peers (endorser+validator) + 1 client = 4.
	// Org2: 2 peers = 2.
	if got := len(n.Identities()); got != 6 {
		t.Errorf("identities = %d, want 6", got)
	}
	if _, err := n.LookupByName("peer0.Org1"); err != nil {
		t.Errorf("peer0.Org1 missing: %v", err)
	}
	if _, err := n.LookupByName("orderer0.Org1"); err != nil {
		t.Errorf("orderer0.Org1 missing: %v", err)
	}
}

func TestCircuitsCompiled(t *testing.T) {
	cfg, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	circuits, err := cfg.Circuits()
	if err != nil {
		t.Fatal(err)
	}
	if len(circuits) != 2 {
		t.Fatalf("circuits = %d", len(circuits))
	}
	// The generated 2of2 evaluator: one 2-input AND.
	g := circuits["smallbank"].Gates()
	if g.AndGates != 1 || g.AndInputs != 2 {
		t.Errorf("smallbank gates = %+v", g)
	}
}
