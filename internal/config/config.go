// Package config loads the BMac YAML configuration file (paper §3.5): the
// network's organizations and node identities, the chaincode endorsement
// policies, and the hardware architecture parameters. From it, the package
// plays the role of the paper's generator script: it materializes the
// identity network, preloads identity caches, and compiles the endorsement
// policies into the circuits of the ends_policy_evaluator.
package config

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"bmac/internal/core"
	"bmac/internal/fabcrypto"
	"bmac/internal/hwsim"
	"bmac/internal/identity"
	"bmac/internal/pipeline"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/telemetry"
	"bmac/internal/validator"
	"bmac/internal/yamllite"
)

// ErrInvalid reports a semantically invalid configuration.
var ErrInvalid = errors.New("config: invalid configuration")

// OrgSpec declares one organization and its node counts.
type OrgSpec struct {
	Name      string
	Peers     int
	Endorsers int
	Clients   int
	Orderers  int
}

// ChaincodeSpec declares one installed chaincode and its endorsement policy.
type ChaincodeSpec struct {
	Name   string
	Policy string
}

// ArchSpec declares the hardware architecture parameters.
type ArchSpec struct {
	TxValidators int
	VSCCEngines  int
	DBCapacity   int
	MaxBlockTxs  int
}

// PipelineSpec declares the software parallel commit engine parameters
// (internal/pipeline).
type PipelineSpec struct {
	// Workers is the goroutine budget per parallel stage; 0 means
	// GOMAXPROCS at engine construction.
	Workers int
	// Depth is the number of blocks allowed in flight between pipeline
	// stages; 0 means the engine default (4).
	Depth int
	// Prefetch enables the async read-set warm-up stage: as soon as a
	// block is unmarshalled its read-set keys are read from the state
	// database, hiding a slow backend's miss latency under vscc.
	Prefetch bool
	// PrefetchWorkers bounds the warm-up reader pool; 0 means Workers.
	PrefetchWorkers int
}

// StateDB backend names accepted by StateDBSpec.Backend.
const (
	BackendMemory  = "memory"  // single in-memory Store (default)
	BackendHybrid  = "hybrid"  // §5 hardware LRU in front of a host Store
	BackendSharded = "sharded" // lock-striped ShardedStore
)

// CryptoSpec parameterizes the process-wide verification accelerators of
// the commit hot path.
type CryptoSpec struct {
	// SigCacheSize bounds the shared signature-verification cache
	// (fabcrypto.SigCache) in verdicts; 0 disables it. Every validation
	// path built from one Config shares one cache, so a signature is
	// ECDSA-verified once per process no matter how many peers see it.
	SigCacheSize int
	// BatchVerifyWorkers > 1 fans each transaction's endorsement checks
	// across a worker pool (fabcrypto.VerifyBatch); 0 or 1 verifies
	// sequentially.
	BatchVerifyWorkers int
	// CertCacheSize bounds the shared parsed-certificate cache
	// (fabcrypto.CertCache) in certificates; 0 disables it. The same
	// handful of identity certs recurs in every transaction, and parsing
	// them rivals the ECDSA math in allocations.
	CertCacheSize int
}

// HotpathSpec parameterizes the remaining hot-path optimizations.
type HotpathSpec struct {
	// ParseCacheSize bounds the parse-once envelope interning table
	// (validator.ParseCache) in envelopes; 0 disables it. Shared across
	// every validation path built from one Config.
	ParseCacheSize int
	// NoMarshalPool disables the process-wide pooled marshal buffers
	// (wire.SetBufferPooling); pooling is on by default and the knob
	// exists for differential testing and benchmarking.
	NoMarshalPool bool
}

// StateDBSpec selects and parameterizes the parallel peer's state-database
// backend (paper §5's database-scaling proposal).
type StateDBSpec struct {
	// Backend is one of memory (default), hybrid or sharded.
	Backend string
	// Capacity is the hybrid backend's in-hardware entry budget; 0 means
	// the architecture's db_capacity (8192 in the paper's configuration).
	Capacity int
	// Shards is the sharded backend's lock-stripe count; 0 means the
	// statedb default (16).
	Shards int
	// HostReadLatencyUS models the host/PCIe access cost, in microseconds,
	// paid by a hybrid cache-miss read; 0 disables the model.
	HostReadLatencyUS int
	// NoCountAccesses disables the backend's read/write access counters
	// (statedb.KVS.SetCountAccesses). Counting defaults to on — the
	// experiments report the counters — and load-driving cluster runs
	// turn it off because the per-access atomics are pure overhead there.
	NoCountAccesses bool
}

// Delivery policy names accepted by DeliverySpec.Policy.
const (
	PolicyDisconnect = "disconnect" // kill the pipe of a peer that overruns the window
	PolicyDrop       = "drop"       // skip the lost blocks, count them, keep the peer
	PolicyWait       = "wait"       // lossless: block publication until the peer catches up
)

// DeliverySpec parameterizes the orderer's non-blocking block delivery
// service (internal/delivery).
type DeliverySpec struct {
	// Window is the number of recent blocks retained for per-peer
	// catch-up; it bounds every peer's backlog. 0 means the delivery
	// default (256).
	Window int
	// Policy is the overrun policy for peers that fall off the window:
	// disconnect (default), drop, or wait. Wait makes delivery lossless
	// by blocking publication until the peer catches up — deliberate
	// backpressure that lets the slowest such peer throttle block
	// creation, so it suits in-process consumers rather than network
	// peers.
	Policy string
	// MaxRedials bounds reconnect attempts after a peer send error; 0
	// means the delivery default (3).
	MaxRedials int
}

// DurabilitySpec parameterizes the software peers' crash-recovery story
// (internal/peer durable mode): the ledger fsync policy and the state
// checkpoint cadence that bounds how much ledger a restarted peer replays.
type DurabilitySpec struct {
	// CheckpointEvery writes a peer state checkpoint after every N
	// committed blocks; 0 disables periodic checkpoints (recovery then
	// replays the whole ledger on top of the genesis checkpoint).
	CheckpointEvery int
	// SyncEachBlock fsyncs the peer ledger after every block commit,
	// trading commit latency for zero-block-loss crash durability.
	SyncEachBlock bool
	// SegmentBytes is the ledger segment rotation budget in bytes; a
	// segment that reaches it is sealed (footer checksum) and a new one
	// started. 0 means the ledger default (64 MiB).
	SegmentBytes int64
	// KeepCheckpoints is how many checkpoint generations each peer
	// retains; <= 0 means statedb.DefaultKeepCheckpoints (2: the newest
	// for fast-sync plus one corruption fallback).
	KeepCheckpoints int
	// Prune removes ledger segments wholly covered by every retained
	// checkpoint generation after each checkpoint, bounding disk growth.
	// A pruned peer can no longer serve those blocks to others.
	Prune bool
	// NoFastSync makes recovery replay from the oldest retained
	// checkpoint instead of the newest — the fastsync experiment's
	// full-replay baseline. The YAML key is "fastsync" (default true);
	// the field is inverted so the zero value means fast-sync on.
	NoFastSync bool
}

// TelemetrySpec gates the observability plane (internal/telemetry). With
// Enabled false (the default) no registry exists, every instrument handle
// is nil, and instrumented hot paths pay one predicted branch — the same
// zero-cost-when-off contract as statedb.SetCountAccesses.
type TelemetrySpec struct {
	// Enabled turns the telemetry plane on. Setting addr or trace_file in
	// the YAML implies enabled unless it is explicitly set false.
	Enabled bool
	// Addr is the optional listen address for the live exposition HTTP
	// server (/metrics, /trace, /debug/pprof/*); empty means no server.
	Addr string
	// TraceFile is the optional path the cluster harness writes the
	// per-block lifecycle trace to, as JSONL; empty means no file.
	TraceFile string
}

// Config is the parsed BMac configuration.
type Config struct {
	Channel    string
	Orgs       []OrgSpec
	Chaincodes []ChaincodeSpec
	Arch       ArchSpec
	Pipeline   PipelineSpec
	StateDB    StateDBSpec
	Delivery   DeliverySpec
	Durability DurabilitySpec
	Crypto     CryptoSpec
	Hotpath    HotpathSpec
	Telemetry  TelemetrySpec

	// caches memoizes the shared verification/parse caches behind a
	// pointer, so copying a Config (the cluster harness derives per-peer
	// variants that way) shares the same instances instead of copying
	// lock state. Every validator/pipeline configuration materialized
	// from this Config — sequential, pipelined, BMac cross-check — uses
	// the same caches, which is what makes a signature or envelope cost
	// its decode exactly once per process.
	caches *hotCaches
}

type hotCaches struct {
	sigOnce   sync.Once
	sig       *fabcrypto.SigCache
	certOnce  sync.Once
	cert      *fabcrypto.CertCache
	parseOnce sync.Once
	parse     *validator.ParseCache
	regOnce   sync.Once
	reg       *telemetry.Registry
}

func (c *Config) ensureCaches() *hotCaches {
	if c.caches == nil {
		c.caches = &hotCaches{}
	}
	return c.caches
}

// SigCache returns the Config's shared signature-verification cache,
// creating it on first use; nil when crypto.sig_cache_size is 0.
func (c *Config) SigCache() *fabcrypto.SigCache {
	h := c.ensureCaches()
	h.sigOnce.Do(func() { h.sig = fabcrypto.NewSigCache(c.Crypto.SigCacheSize) })
	return h.sig
}

// CertCache returns the Config's shared parsed-certificate cache,
// creating it on first use; nil when crypto.cert_cache_size is 0.
func (c *Config) CertCache() *fabcrypto.CertCache {
	h := c.ensureCaches()
	h.certOnce.Do(func() { h.cert = fabcrypto.NewCertCache(c.Crypto.CertCacheSize) })
	return h.cert
}

// ParseCache returns the Config's shared parse-once interning table,
// creating it on first use; nil when hotpath.parse_cache_size is 0.
func (c *Config) ParseCache() *validator.ParseCache {
	h := c.ensureCaches()
	h.parseOnce.Do(func() { h.parse = validator.NewParseCache(c.Hotpath.ParseCacheSize) })
	return h.parse
}

// TelemetryRegistry returns the Config's shared metrics registry, creating
// it on first use; nil when the telemetry plane is disabled. On creation
// the process-wide cache counters (signature, certificate and parse-once
// caches) are exported as scrape-time GaugeFunc read adapters, so enabling
// telemetry adds nothing to those hot paths.
func (c *Config) TelemetryRegistry() *telemetry.Registry {
	h := c.ensureCaches()
	h.regOnce.Do(func() {
		if !c.Telemetry.Enabled {
			return
		}
		reg := telemetry.NewRegistry()
		sig, cert, parse := c.SigCache(), c.CertCache(), c.ParseCache()
		reg.GaugeFunc("fabcrypto_sigcache_hits_total", func() int64 { h, _, _ := sig.Stats(); return h })
		reg.GaugeFunc("fabcrypto_sigcache_misses_total", func() int64 { _, m, _ := sig.Stats(); return m })
		reg.GaugeFunc("fabcrypto_sigcache_evictions_total", func() int64 { _, _, e := sig.Stats(); return e })
		reg.GaugeFunc("fabcrypto_certcache_hits_total", func() int64 { h, _ := cert.Stats(); return h })
		reg.GaugeFunc("fabcrypto_certcache_misses_total", func() int64 { _, m := cert.Stats(); return m })
		reg.GaugeFunc("validator_parsecache_hits_total", func() int64 { h, _ := parse.Stats(); return h })
		reg.GaugeFunc("validator_parsecache_misses_total", func() int64 { _, m := parse.Stats(); return m })
		h.reg = reg
	})
	return h.reg
}

// Default returns the paper's default experimental configuration: two orgs
// each with an endorser and a validator peer, smallbank with a 2-outof-2
// policy, and an 8x2 architecture supporting 256-transaction blocks and an
// 8192-entry database (§4.1).
func Default() *Config {
	return &Config{
		Channel: "ch1",
		Orgs: []OrgSpec{
			{Name: "Org1", Peers: 1, Endorsers: 1, Clients: 1, Orderers: 1},
			{Name: "Org2", Peers: 1, Endorsers: 1},
		},
		Chaincodes: []ChaincodeSpec{{Name: "smallbank", Policy: "2of2"}},
		Arch: ArchSpec{
			TxValidators: 8,
			VSCCEngines:  2,
			DBCapacity:   8192,
			MaxBlockTxs:  256,
		},
		Crypto:  CryptoSpec{SigCacheSize: 16384, CertCacheSize: 4096},
		Hotpath: HotpathSpec{ParseCacheSize: 8192},
		caches:  &hotCaches{},
	}
}

// Load reads and parses a configuration file.
func Load(path string) (*Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read config: %w", err)
	}
	return Parse(raw)
}

// Parse parses YAML configuration bytes.
func Parse(raw []byte) (*Config, error) {
	root, err := yamllite.Parse(raw)
	if err != nil {
		return nil, err
	}
	cfg := &Config{caches: &hotCaches{}}
	if s, ok := yamllite.GetString(root, "channel"); ok {
		cfg.Channel = s
	} else {
		cfg.Channel = "ch1"
	}

	orgs, ok := yamllite.GetSeq(root, "orgs")
	if !ok {
		return nil, fmt.Errorf("%w: missing orgs", ErrInvalid)
	}
	for i, o := range orgs {
		name, ok := yamllite.GetString(o, "name")
		if !ok {
			return nil, fmt.Errorf("%w: org %d missing name", ErrInvalid, i)
		}
		spec := OrgSpec{Name: name, Peers: 1}
		if v, ok := yamllite.GetInt(o, "peers"); ok {
			spec.Peers = int(v)
		}
		if v, ok := yamllite.GetInt(o, "endorsers"); ok {
			spec.Endorsers = int(v)
		}
		if v, ok := yamllite.GetInt(o, "clients"); ok {
			spec.Clients = int(v)
		}
		if v, ok := yamllite.GetInt(o, "orderers"); ok {
			spec.Orderers = int(v)
		}
		cfg.Orgs = append(cfg.Orgs, spec)
	}

	ccs, ok := yamllite.GetSeq(root, "chaincodes")
	if !ok {
		return nil, fmt.Errorf("%w: missing chaincodes", ErrInvalid)
	}
	for i, c := range ccs {
		name, ok := yamllite.GetString(c, "name")
		if !ok {
			return nil, fmt.Errorf("%w: chaincode %d missing name", ErrInvalid, i)
		}
		pol, ok := yamllite.GetString(c, "policy")
		if !ok {
			return nil, fmt.Errorf("%w: chaincode %q missing policy", ErrInvalid, name)
		}
		if _, err := policy.Parse(pol); err != nil {
			return nil, fmt.Errorf("%w: chaincode %q policy: %v", ErrInvalid, name, err)
		}
		cfg.Chaincodes = append(cfg.Chaincodes, ChaincodeSpec{Name: name, Policy: pol})
	}

	arch, ok := yamllite.GetMap(root, "architecture")
	if !ok {
		cfg.Arch = Default().Arch
	} else {
		cfg.Arch = ArchSpec{TxValidators: 8, VSCCEngines: 2, DBCapacity: 8192, MaxBlockTxs: 256}
		if v, ok := yamllite.GetInt(arch, "tx_validators"); ok {
			cfg.Arch.TxValidators = int(v)
		}
		if v, ok := yamllite.GetInt(arch, "vscc_engines"); ok {
			cfg.Arch.VSCCEngines = int(v)
		}
		if v, ok := yamllite.GetInt(arch, "db_capacity"); ok {
			cfg.Arch.DBCapacity = int(v)
		}
		if v, ok := yamllite.GetInt(arch, "max_block_txs"); ok {
			cfg.Arch.MaxBlockTxs = int(v)
		}
	}

	if pipe, ok := yamllite.GetMap(root, "pipeline"); ok {
		if v, ok := yamllite.GetInt(pipe, "workers"); ok {
			cfg.Pipeline.Workers = int(v)
		}
		if v, ok := yamllite.GetInt(pipe, "depth"); ok {
			cfg.Pipeline.Depth = int(v)
		}
		if v, ok := yamllite.GetBool(pipe, "prefetch"); ok {
			cfg.Pipeline.Prefetch = v
		}
		if v, ok := yamllite.GetInt(pipe, "prefetch_workers"); ok {
			cfg.Pipeline.PrefetchWorkers = int(v)
		}
	}

	if del, ok := yamllite.GetMap(root, "delivery"); ok {
		if v, ok := yamllite.GetInt(del, "window"); ok {
			cfg.Delivery.Window = int(v)
		}
		if v, ok := yamllite.GetString(del, "policy"); ok {
			cfg.Delivery.Policy = v
		}
		if v, ok := yamllite.GetInt(del, "max_redials"); ok {
			cfg.Delivery.MaxRedials = int(v)
		}
	}

	if dur, ok := yamllite.GetMap(root, "durability"); ok {
		if v, ok := yamllite.GetInt(dur, "checkpoint_every"); ok {
			cfg.Durability.CheckpointEvery = int(v)
		}
		if v, ok := yamllite.GetBool(dur, "sync_each_block"); ok {
			cfg.Durability.SyncEachBlock = v
		}
		if v, ok := yamllite.GetInt(dur, "segment_bytes"); ok {
			cfg.Durability.SegmentBytes = v
		}
		if v, ok := yamllite.GetInt(dur, "keep_checkpoints"); ok {
			cfg.Durability.KeepCheckpoints = int(v)
		}
		if v, ok := yamllite.GetBool(dur, "prune"); ok {
			cfg.Durability.Prune = v
		}
		if v, ok := yamllite.GetBool(dur, "fastsync"); ok {
			cfg.Durability.NoFastSync = !v
		}
	}

	if cr, ok := yamllite.GetMap(root, "crypto"); ok {
		if v, ok := yamllite.GetInt(cr, "sig_cache_size"); ok {
			cfg.Crypto.SigCacheSize = int(v)
		}
		if v, ok := yamllite.GetInt(cr, "batch_verify_workers"); ok {
			cfg.Crypto.BatchVerifyWorkers = int(v)
		}
		if v, ok := yamllite.GetInt(cr, "cert_cache_size"); ok {
			cfg.Crypto.CertCacheSize = int(v)
		}
	}

	if hp, ok := yamllite.GetMap(root, "hotpath"); ok {
		if v, ok := yamllite.GetInt(hp, "parse_cache_size"); ok {
			cfg.Hotpath.ParseCacheSize = int(v)
		}
		if v, ok := yamllite.GetBool(hp, "marshal_pool"); ok {
			cfg.Hotpath.NoMarshalPool = !v
		}
	}

	if tel, ok := yamllite.GetMap(root, "telemetry"); ok {
		enabledSet := false
		if v, ok := yamllite.GetBool(tel, "enabled"); ok {
			cfg.Telemetry.Enabled = v
			enabledSet = true
		}
		if v, ok := yamllite.GetString(tel, "addr"); ok {
			cfg.Telemetry.Addr = v
		}
		if v, ok := yamllite.GetString(tel, "trace_file"); ok {
			cfg.Telemetry.TraceFile = v
		}
		// Asking for an endpoint or a trace file implies the plane is
		// wanted; only an explicit enabled: false overrides that.
		if !enabledSet && (cfg.Telemetry.Addr != "" || cfg.Telemetry.TraceFile != "") {
			cfg.Telemetry.Enabled = true
		}
	}

	if sdb, ok := yamllite.GetMap(root, "statedb"); ok {
		if v, ok := yamllite.GetString(sdb, "backend"); ok {
			cfg.StateDB.Backend = v
		}
		if v, ok := yamllite.GetInt(sdb, "capacity"); ok {
			cfg.StateDB.Capacity = int(v)
		}
		if v, ok := yamllite.GetInt(sdb, "shards"); ok {
			cfg.StateDB.Shards = int(v)
		}
		if v, ok := yamllite.GetInt(sdb, "host_read_latency_us"); ok {
			cfg.StateDB.HostReadLatencyUS = int(v)
		}
		if v, ok := yamllite.GetBool(sdb, "count_accesses"); ok {
			cfg.StateDB.NoCountAccesses = !v
		}
	}
	return cfg, cfg.Validate()
}

// Validate performs semantic checks.
func (c *Config) Validate() error {
	if len(c.Orgs) == 0 {
		return fmt.Errorf("%w: no organizations", ErrInvalid)
	}
	if len(c.Orgs) > 255 {
		return fmt.Errorf("%w: %d orgs exceed the 8-bit org id space", ErrInvalid, len(c.Orgs))
	}
	if len(c.Chaincodes) == 0 {
		return fmt.Errorf("%w: no chaincodes", ErrInvalid)
	}
	if c.Arch.TxValidators < 1 || c.Arch.VSCCEngines < 1 {
		return fmt.Errorf("%w: architecture %dx%d", ErrInvalid, c.Arch.TxValidators, c.Arch.VSCCEngines)
	}
	if !hwsim.Resources(c.Arch.TxValidators, c.Arch.VSCCEngines).FitsU250() {
		return fmt.Errorf("%w: architecture %dx%d does not fit the U250",
			ErrInvalid, c.Arch.TxValidators, c.Arch.VSCCEngines)
	}
	if c.Pipeline.Workers < 0 || c.Pipeline.Depth < 0 || c.Pipeline.PrefetchWorkers < 0 {
		return fmt.Errorf("%w: pipeline workers=%d depth=%d prefetch_workers=%d must be >= 0",
			ErrInvalid, c.Pipeline.Workers, c.Pipeline.Depth, c.Pipeline.PrefetchWorkers)
	}
	switch c.StateDB.Backend {
	case "", BackendMemory, BackendHybrid, BackendSharded:
	default:
		return fmt.Errorf("%w: statedb backend %q (valid: %s, %s, %s)",
			ErrInvalid, c.StateDB.Backend, BackendMemory, BackendHybrid, BackendSharded)
	}
	if c.StateDB.Capacity < 0 || c.StateDB.Shards < 0 || c.StateDB.HostReadLatencyUS < 0 {
		return fmt.Errorf("%w: statedb capacity=%d shards=%d host_read_latency_us=%d must be >= 0",
			ErrInvalid, c.StateDB.Capacity, c.StateDB.Shards, c.StateDB.HostReadLatencyUS)
	}
	switch c.Delivery.Policy {
	case "", PolicyDisconnect, PolicyDrop, PolicyWait:
	default:
		return fmt.Errorf("%w: delivery policy %q (valid: %s, %s, %s)",
			ErrInvalid, c.Delivery.Policy, PolicyDisconnect, PolicyDrop, PolicyWait)
	}
	if c.Delivery.Window < 0 || c.Delivery.MaxRedials < 0 {
		return fmt.Errorf("%w: delivery window=%d max_redials=%d must be >= 0",
			ErrInvalid, c.Delivery.Window, c.Delivery.MaxRedials)
	}
	if c.Durability.CheckpointEvery < 0 {
		return fmt.Errorf("%w: durability checkpoint_every=%d must be >= 0",
			ErrInvalid, c.Durability.CheckpointEvery)
	}
	if c.Durability.SegmentBytes < 0 || c.Durability.KeepCheckpoints < 0 {
		return fmt.Errorf("%w: durability segment_bytes=%d keep_checkpoints=%d must be >= 0",
			ErrInvalid, c.Durability.SegmentBytes, c.Durability.KeepCheckpoints)
	}
	if c.Durability.Prune && c.Durability.CheckpointEvery == 0 {
		return fmt.Errorf("%w: durability prune needs checkpoint_every > 0 (nothing ever covers a segment)",
			ErrInvalid)
	}
	if c.Crypto.SigCacheSize < 0 || c.Crypto.BatchVerifyWorkers < 0 || c.Crypto.CertCacheSize < 0 {
		return fmt.Errorf("%w: crypto sig_cache_size=%d batch_verify_workers=%d cert_cache_size=%d must be >= 0",
			ErrInvalid, c.Crypto.SigCacheSize, c.Crypto.BatchVerifyWorkers, c.Crypto.CertCacheSize)
	}
	if c.Hotpath.ParseCacheSize < 0 {
		return fmt.Errorf("%w: hotpath parse_cache_size=%d must be >= 0",
			ErrInvalid, c.Hotpath.ParseCacheSize)
	}
	return nil
}

// NewKVS materializes the configured state-database backend for a software
// peer. Every call returns a fresh, empty database with the configured
// access-counting mode applied.
func (c *Config) NewKVS() (statedb.KVS, error) {
	var kvs statedb.KVS
	switch c.StateDB.Backend {
	case "", BackendMemory:
		kvs = statedb.NewStore()
	case BackendSharded:
		kvs = statedb.NewShardedStore(c.StateDB.Shards)
	case BackendHybrid:
		capacity := c.StateDB.Capacity
		if capacity == 0 {
			capacity = c.Arch.DBCapacity
		}
		h := statedb.NewHybridKVS(capacity, statedb.NewStore())
		h.SetHostReadLatency(time.Duration(c.StateDB.HostReadLatencyUS) * time.Microsecond)
		kvs = h
	default:
		return nil, fmt.Errorf("%w: statedb backend %q", ErrInvalid, c.StateDB.Backend)
	}
	if c.StateDB.NoCountAccesses {
		kvs.SetCountAccesses(false)
	}
	return kvs, nil
}

// Policies compiles the sequential (software) policy table.
func (c *Config) Policies() (map[string]*policy.Policy, error) {
	out := make(map[string]*policy.Policy, len(c.Chaincodes))
	for _, cc := range c.Chaincodes {
		p, err := policy.Parse(cc.Policy)
		if err != nil {
			return nil, err
		}
		out[cc.Name] = p
	}
	return out, nil
}

// Circuits compiles the hardware policy circuits — the generated
// ends_policy_evaluator modules, one per chaincode.
func (c *Config) Circuits() (map[string]*policy.Circuit, error) {
	pols, err := c.Policies()
	if err != nil {
		return nil, err
	}
	out := make(map[string]*policy.Circuit, len(pols))
	for name, p := range pols {
		out[name] = policy.Compile(p)
	}
	return out, nil
}

// CoreConfig materializes the functional block processor configuration.
func (c *Config) CoreConfig() (core.Config, error) {
	circuits, err := c.Circuits()
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		TxValidators: c.Arch.TxValidators,
		VSCCEngines:  c.Arch.VSCCEngines,
		Policies:     circuits,
	}, nil
}

// ValidatorConfig materializes the software validator configuration with
// the given worker (vCPU) count.
func (c *Config) ValidatorConfig(workers int) (validator.Config, error) {
	pols, err := c.Policies()
	if err != nil {
		return validator.Config{}, err
	}
	return validator.Config{
		Workers:            workers,
		Policies:           pols,
		SigCache:           c.SigCache(),
		CertCache:          c.CertCache(),
		BatchVerifyWorkers: c.Crypto.BatchVerifyWorkers,
		ParseCache:         c.ParseCache(),
		Metrics:            telemetry.NewValidatorMetrics(c.TelemetryRegistry(), "sequential"),
	}, nil
}

// PipelineConfig materializes the parallel commit engine configuration from
// the `pipeline` knob.
func (c *Config) PipelineConfig() (pipeline.Config, error) {
	pols, err := c.Policies()
	if err != nil {
		return pipeline.Config{}, err
	}
	return pipeline.Config{
		Workers:            c.Pipeline.Workers,
		Depth:              c.Pipeline.Depth,
		Policies:           pols,
		Prefetch:           c.Pipeline.Prefetch,
		PrefetchWorkers:    c.Pipeline.PrefetchWorkers,
		SigCache:           c.SigCache(),
		CertCache:          c.CertCache(),
		BatchVerifyWorkers: c.Crypto.BatchVerifyWorkers,
		ParseCache:         c.ParseCache(),
		Metrics:            telemetry.NewValidatorMetrics(c.TelemetryRegistry(), "pipelined"),
	}, nil
}

// HWSimConfig materializes the timing simulator configuration.
func (c *Config) HWSimConfig() hwsim.Config {
	return hwsim.Config{
		TxValidators: c.Arch.TxValidators,
		VSCCEngines:  c.Arch.VSCCEngines,
	}
}

// BuildNetwork creates the identity network declared by the configuration:
// organizations in declared order, then per org its orderers, endorser
// peers, validator peers and clients.
func (c *Config) BuildNetwork() (*identity.Network, error) {
	n := identity.NewNetwork()
	for _, org := range c.Orgs {
		if _, err := n.AddOrg(org.Name); err != nil {
			return nil, err
		}
		for i := 0; i < org.Orderers; i++ {
			if _, err := n.NewIdentity(org.Name, identity.RoleOrderer); err != nil {
				return nil, err
			}
		}
		for i := 0; i < org.Endorsers+org.Peers; i++ {
			if _, err := n.NewIdentity(org.Name, identity.RolePeer); err != nil {
				return nil, err
			}
		}
		for i := 0; i < org.Clients; i++ {
			if _, err := n.NewIdentity(org.Name, identity.RoleClient); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}
