// Durability: the ledger-backed crash-recovery path of the software peers.
//
// A peer's state database is in-memory; what survives a crash is the
// segmented ledger (internal/ledger) and the retained state checkpoint
// generations (internal/statedb manifest). Recovery composes the two as
// snapshot fast-sync: restore the newest usable checkpoint, then replay
// only the ledger tail past it — a peer that was days behind pays for the
// tail, not the whole chain. A corrupt or ledger-ahead generation falls
// back to an older one (costing extra replay, never the peer); a
// quarantined ledger range above the chosen checkpoint rolls the ledger
// back to the gap's edge so delivery recommits across it. A peer restarted
// this way resumes at its ledger height with a state database
// bit-identical to one that never crashed.

package peer

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bmac/internal/block"
	"bmac/internal/ledger"
	"bmac/internal/pipeline"
	"bmac/internal/statedb"
	"bmac/internal/telemetry"
	"bmac/internal/validator"
)

// CheckpointFile is the legacy single-generation checkpoint name. Peers
// now write manifest-managed generations ("checkpoint-<height>"); this
// file is still honored on recovery (tried last) so pre-manifest peer
// directories keep fast-syncing.
const CheckpointFile = "checkpoint"

// DurableOptions configure ledger-backed durability for a software peer.
type DurableOptions struct {
	// CheckpointEvery writes a state checkpoint after every N committed
	// blocks (through CommitBlock); 0 disables periodic checkpoints, so
	// recovery replays the whole ledger (plus whatever checkpoint was
	// written explicitly, e.g. the genesis checkpoint).
	CheckpointEvery int
	// KeepCheckpoints is how many checkpoint generations to retain
	// (<= 0 means statedb.DefaultKeepCheckpoints). More generations mean
	// more corruption fallback at more disk.
	KeepCheckpoints int
	// SegmentBytes is the ledger's segment rotation budget (see
	// ledger.Options.SegmentBytes); 0 means the ledger default.
	SegmentBytes int64
	// Prune, when set, prunes ledger segments wholly covered by every
	// retained checkpoint generation after each successful checkpoint,
	// bounding disk growth. Pruned blocks are gone from this peer's
	// archive (delivery catch-up below the prune floor reports
	// ledger.ErrPruned).
	Prune bool
	// NoFastSync recovers from the *oldest* retained checkpoint instead of
	// the newest, maximizing replay. It exists for measurement (the
	// fastsync experiment's full-replay baseline), not production.
	NoFastSync bool
	// SyncEachBlock fsyncs the ledger after every block commit.
	SyncEachBlock bool
	// CommitFault, when set, is the ledger's pre-append fault hook (see
	// ledger.Options.CommitFault) — the chaos slow-disk scenario.
	CommitFault func() error
	// CheckpointFault, when set, is the checkpoint writer's pre-write
	// fault hook (see statedb.SaveCheckpointFault).
	CheckpointFault func() error
	// Metrics mirrors the ledger's segment lifecycle counters into a
	// telemetry registry (zero value: telemetry off).
	Metrics telemetry.LedgerMetrics
}

// ledgerOptions maps the durable options onto the ledger's.
func (o DurableOptions) ledgerOptions() ledger.Options {
	return ledger.Options{
		SegmentBytes:  o.SegmentBytes,
		SyncEachBlock: o.SyncEachBlock,
		CommitFault:   o.CommitFault,
		Metrics:       o.Metrics,
	}
}

// NewDurableSWPeer opens (or reopens) a sequential software peer in dir
// over the given state-database backend. An existing ledger is replayed on
// top of the newest usable checkpoint generation (snapshot fast-sync), so
// a restarted peer resumes from its last committed block; Height reports
// where that is.
func NewDurableSWPeer(cfg validator.Config, kvs statedb.KVS, dir string, opts DurableOptions) (*SWPeer, error) {
	led, err := ledger.Open(dir, opts.ledgerOptions())
	if err != nil {
		return nil, fmt.Errorf("sw peer ledger: %w", err)
	}
	if _, err := recoverState(kvs, led, dir, cfg.ParseCache, opts); err != nil {
		led.Close() // bmaclint:allow errdiscard (error path: ledger close error would mask the open failure)
		return nil, err
	}
	return &SWPeer{
		Validator: validator.New(cfg, kvs, led),
		Ledger:    led,
		dir:       dir,
		ckptEvery: opts.CheckpointEvery,
		ckptKeep:  opts.KeepCheckpoints,
		prune:     opts.Prune,
		ckptFault: opts.CheckpointFault,
	}, nil
}

// NewDurableParallelPeer opens (or reopens) a parallel pipelined peer in
// dir over the given state-database backend, with the same recovery
// semantics as NewDurableSWPeer.
func NewDurableParallelPeer(cfg pipeline.Config, kvs statedb.KVS, dir string, opts DurableOptions) (*ParallelPeer, error) {
	led, err := ledger.Open(dir, opts.ledgerOptions())
	if err != nil {
		return nil, fmt.Errorf("parallel peer ledger: %w", err)
	}
	if _, err := recoverState(kvs, led, dir, cfg.ParseCache, opts); err != nil {
		led.Close() // bmaclint:allow errdiscard (error path: ledger close error would mask the recovery failure)
		return nil, err
	}
	return &ParallelPeer{
		Engine:    pipeline.New(cfg, kvs, led),
		Ledger:    led,
		dir:       dir,
		ckptEvery: opts.CheckpointEvery,
		ckptKeep:  opts.KeepCheckpoints,
		prune:     opts.Prune,
		ckptFault: opts.CheckpointFault,
	}, nil
}

// RecoverState rebuilds a peer's state database from dir: the newest
// usable checkpoint generation seeds kvs with the state as of its recorded
// height, and the ledger blocks past that height are replayed by applying
// the write sets their recorded validation flags admitted. Returns the
// recovered height — the next block number the peer expects. kvs must be
// empty.
//
// A checkpoint that fails to load falls back to an older generation. When
// every candidate is unusable *because it is ahead of the ledger*, that is
// an error rather than a silent full replay: the ledger alone cannot
// reproduce state that predates block 0 (bootstrap genesis data lives only
// in checkpoints).
func RecoverState(kvs statedb.KVS, led *ledger.Ledger, dir string) (uint64, error) {
	return recoverState(kvs, led, dir, nil, DurableOptions{})
}

// recoverState is RecoverState with an optional parse-once cache (a replay
// in a process whose live paths share the cache both reuses their work and
// pre-warms it for the blocks still to come) and the durable options that
// steer candidate selection.
func recoverState(kvs statedb.KVS, led *ledger.Ledger, dir string, pc *validator.ParseCache, opts DurableOptions) (uint64, error) {
	refs, notes := statedb.Checkpoints(dir, CheckpointFile)
	for _, n := range notes {
		log.Printf("peer: %s: %s", dir, n)
	}
	if opts.NoFastSync {
		// Full-replay measurement baseline: walk oldest-first.
		for i, j := 0, len(refs)-1; i < j; i, j = i+1, j-1 {
			refs[i], refs[j] = refs[j], refs[i]
		}
	}

	start := uint64(0)
	restored := false
	var aheadErr error
	for _, ref := range refs {
		snap, h, err := statedb.LoadCheckpoint(filepath.Join(dir, ref.File))
		switch {
		case err == nil:
		case errors.Is(err, os.ErrNotExist):
			continue
		default:
			log.Printf("peer: %s: checkpoint %s unusable (%v); falling back", dir, ref.File, err)
			continue
		}
		if h > led.Height() {
			// The checkpoint outran the (possibly truncated) ledger; an
			// older generation can still anchor replay.
			aheadErr = fmt.Errorf("peer: checkpoint at height %d is ahead of ledger height %d in %s",
				h, led.Height(), dir)
			log.Printf("%v; falling back", aheadErr)
			continue
		}
		if h < led.Base() {
			// Replay from h would need pruned blocks.
			log.Printf("peer: %s: checkpoint %s at height %d is below the prune floor %d; falling back",
				dir, ref.File, h, led.Base())
			continue
		}
		statedb.RestoreSnapshot(kvs, snap)
		start = h
		restored = true
		break
	}
	if !restored && aheadErr != nil {
		return 0, aheadErr
	}

	// A quarantined range at or above the chosen checkpoint cannot be
	// crossed by replay — roll the ledger back to the gap's edge; those
	// blocks recommit through delivery. Ranges below the checkpoint stay:
	// they are archive-only and restore via delivery catch-up (Restore).
	for _, r := range led.MissingRanges() {
		if r.First >= start {
			if err := led.TruncateFrom(r.First); err != nil {
				return 0, fmt.Errorf("peer: truncate at quarantined range [%d,%d): %w", r.First, r.First+r.Count, err)
			}
			break
		}
	}

	for n := start; n < led.Height(); n++ {
		b, err := led.Get(n)
		if err != nil {
			return 0, fmt.Errorf("peer: recovery replay block %d: %w", n, err)
		}
		if err := replayBlock(kvs, b, pc); err != nil {
			return 0, err
		}
	}
	return led.Height(), nil
}

// replayBlock re-derives the state effects of one committed block: the
// write sets of transactions whose recorded validation flag is Valid,
// decoded through the validator's own transaction parser (the same code
// path the live commit used), applied at the same versions.
func replayBlock(kvs statedb.KVS, b *block.Block, pc *validator.ParseCache) error {
	flags := b.Metadata.ValidationFlags
	for i := range b.Envelopes {
		if i >= len(flags) || block.ValidationCode(flags[i]) != block.Valid {
			continue
		}
		pt, _ := pc.ParseTx(b.Envelopes[i].PayloadBytes)
		if pt.Err != nil {
			return fmt.Errorf("peer: replay block %d tx %d: %w", b.Header.Number, i, pt.Err)
		}
		kvs.WriteBatch(pt.RW.Writes, block.Version{BlockNum: b.Header.Number, TxNum: uint64(i)})
	}
	return nil
}

// Height reports the peer's ledger height — the next block number it
// expects to commit (equal to the recovered height right after a restart).
func (p *SWPeer) Height() uint64 { return p.Ledger.Height() }

// Height reports the peer's ledger height — the next block number it
// expects to commit (equal to the recovered height right after a restart).
func (p *ParallelPeer) Height() uint64 { return p.Ledger.Height() }

// checkpointAndMaybePrune writes a manifest-managed checkpoint generation
// at the current ledger height and, when pruning is on, prunes ledger
// segments covered by *every* retained generation — pruning to the newest
// would strand the older generations' replay ranges.
func checkpointAndMaybePrune(dir string, kvs statedb.KVS, led *ledger.Ledger, keep int, prune bool, fault func() error) error {
	h := led.Height()
	refs, err := statedb.WriteManagedCheckpoint(dir, kvs, h, keep, fault)
	if err != nil {
		return err
	}
	if !prune || len(refs) == 0 {
		return nil
	}
	covered := refs[len(refs)-1].Height // oldest retained generation
	if _, err := led.Prune(covered); err != nil {
		return fmt.Errorf("peer: prune to %d after checkpoint: %w", covered, err)
	}
	return nil
}

// Checkpoint writes a state checkpoint generation at the current ledger
// height (atomic rename; previous generations survive a crash mid-write)
// and applies the prune policy. Call it after bootstrap to capture genesis
// state that no ledger block carries.
func (p *SWPeer) Checkpoint() error {
	return checkpointAndMaybePrune(p.dir, p.Validator.Store(), p.Ledger, p.ckptKeep, p.prune, p.ckptFault)
}

// Checkpoint writes a state checkpoint generation at the current ledger
// height (atomic rename; previous generations survive a crash mid-write)
// and applies the prune policy. Call it after bootstrap to capture genesis
// state that no ledger block carries.
func (p *ParallelPeer) Checkpoint() error {
	return checkpointAndMaybePrune(p.dir, p.Engine.Store(), p.Ledger, p.ckptKeep, p.prune, p.ckptFault)
}

// maybeCheckpoint runs the periodic checkpoint policy after a successful
// commit of blockNum.
func maybeCheckpoint(every int, blockNum uint64, ckpt func() error) error {
	if every <= 0 || (blockNum+1)%uint64(every) != 0 {
		return nil
	}
	if err := ckpt(); err != nil {
		return fmt.Errorf("peer: checkpoint after block %d: %w", blockNum, err)
	}
	return nil
}
