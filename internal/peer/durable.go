// Durability: the ledger-backed crash-recovery path of the software peers.
//
// A peer's state database is in-memory; what survives a crash is the
// append-only ledger (internal/ledger) and, optionally, a periodic state
// checkpoint (internal/statedb checkpoint files). Recovery composes the
// two: load the newest checkpoint if one exists, then replay only the
// ledger suffix past it, re-deriving state through the validator's own
// transaction parser and the validation flags recorded at commit time.
// A peer restarted this way resumes at its ledger height with a state
// database bit-identical to one that never crashed.

package peer

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"bmac/internal/block"
	"bmac/internal/ledger"
	"bmac/internal/pipeline"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// CheckpointFile is the name of the state checkpoint inside a peer's
// directory (next to the ledger's block file).
const CheckpointFile = "checkpoint"

// DurableOptions configure ledger-backed durability for a software peer.
type DurableOptions struct {
	// CheckpointEvery writes a state checkpoint after every N committed
	// blocks (through CommitBlock); 0 disables periodic checkpoints, so
	// recovery replays the whole ledger (plus whatever checkpoint was
	// written explicitly, e.g. the genesis checkpoint).
	CheckpointEvery int
	// SyncEachBlock fsyncs the ledger after every block commit.
	SyncEachBlock bool
	// CommitFault, when set, is the ledger's pre-append fault hook (see
	// ledger.Options.CommitFault) — the chaos slow-disk scenario.
	CommitFault func() error
	// CheckpointFault, when set, is the checkpoint writer's pre-write
	// fault hook (see statedb.SaveCheckpointFault).
	CheckpointFault func() error
}

// NewDurableSWPeer opens (or reopens) a sequential software peer in dir
// over the given state-database backend. An existing ledger is replayed on
// top of the newest checkpoint, so a restarted peer resumes from its last
// committed block; Height reports where that is.
func NewDurableSWPeer(cfg validator.Config, kvs statedb.KVS, dir string, opts DurableOptions) (*SWPeer, error) {
	led, err := ledger.Open(dir, ledger.Options{SyncEachBlock: opts.SyncEachBlock, CommitFault: opts.CommitFault})
	if err != nil {
		return nil, fmt.Errorf("sw peer ledger: %w", err)
	}
	if _, err := recoverState(kvs, led, dir, cfg.ParseCache); err != nil {
		led.Close() // bmaclint:allow errdiscard (error path: ledger close error would mask the open failure)
		return nil, err
	}
	return &SWPeer{
		Validator: validator.New(cfg, kvs, led),
		Ledger:    led,
		dir:       dir,
		ckptEvery: opts.CheckpointEvery,
		ckptFault: opts.CheckpointFault,
	}, nil
}

// NewDurableParallelPeer opens (or reopens) a parallel pipelined peer in
// dir over the given state-database backend, with the same recovery
// semantics as NewDurableSWPeer.
func NewDurableParallelPeer(cfg pipeline.Config, kvs statedb.KVS, dir string, opts DurableOptions) (*ParallelPeer, error) {
	led, err := ledger.Open(dir, ledger.Options{SyncEachBlock: opts.SyncEachBlock, CommitFault: opts.CommitFault})
	if err != nil {
		return nil, fmt.Errorf("parallel peer ledger: %w", err)
	}
	if _, err := recoverState(kvs, led, dir, cfg.ParseCache); err != nil {
		led.Close() // bmaclint:allow errdiscard (error path: ledger close error would mask the recovery failure)
		return nil, err
	}
	return &ParallelPeer{
		Engine:    pipeline.New(cfg, kvs, led),
		Ledger:    led,
		dir:       dir,
		ckptEvery: opts.CheckpointEvery,
		ckptFault: opts.CheckpointFault,
	}, nil
}

// RecoverState rebuilds a peer's state database from dir: the checkpoint
// file (if present) seeds kvs with the state as of its recorded height,
// and the ledger blocks past that height are replayed by applying the
// write sets their recorded validation flags admitted. Returns the
// recovered height — the next block number the peer expects. kvs must be
// empty.
//
// A corrupt checkpoint is an error rather than a silent full replay: the
// ledger alone cannot reproduce state that predates block 0 (bootstrap
// genesis data lives only in checkpoints).
func RecoverState(kvs statedb.KVS, led *ledger.Ledger, dir string) (uint64, error) {
	return recoverState(kvs, led, dir, nil)
}

// recoverState is RecoverState with an optional parse-once cache: a replay
// in a process whose live paths share the cache both reuses their work and
// pre-warms it for the blocks still to come.
func recoverState(kvs statedb.KVS, led *ledger.Ledger, dir string, pc *validator.ParseCache) (uint64, error) {
	start := uint64(0)
	snap, h, err := statedb.LoadCheckpoint(filepath.Join(dir, CheckpointFile))
	switch {
	case err == nil:
		if h > led.Height() {
			return 0, fmt.Errorf("peer: checkpoint at height %d is ahead of ledger height %d in %s",
				h, led.Height(), dir)
		}
		statedb.RestoreSnapshot(kvs, snap)
		start = h
	case errors.Is(err, os.ErrNotExist):
		// No checkpoint: replay the whole ledger into the empty store.
	default:
		return 0, fmt.Errorf("peer: load checkpoint: %w", err)
	}
	for n := start; n < led.Height(); n++ {
		b, err := led.Get(n)
		if err != nil {
			return 0, fmt.Errorf("peer: recovery replay block %d: %w", n, err)
		}
		if err := replayBlock(kvs, b, pc); err != nil {
			return 0, err
		}
	}
	return led.Height(), nil
}

// replayBlock re-derives the state effects of one committed block: the
// write sets of transactions whose recorded validation flag is Valid,
// decoded through the validator's own transaction parser (the same code
// path the live commit used), applied at the same versions.
func replayBlock(kvs statedb.KVS, b *block.Block, pc *validator.ParseCache) error {
	flags := b.Metadata.ValidationFlags
	for i := range b.Envelopes {
		if i >= len(flags) || block.ValidationCode(flags[i]) != block.Valid {
			continue
		}
		pt, _ := pc.ParseTx(b.Envelopes[i].PayloadBytes)
		if pt.Err != nil {
			return fmt.Errorf("peer: replay block %d tx %d: %w", b.Header.Number, i, pt.Err)
		}
		kvs.WriteBatch(pt.RW.Writes, block.Version{BlockNum: b.Header.Number, TxNum: uint64(i)})
	}
	return nil
}

// Height reports the peer's ledger height — the next block number it
// expects to commit (equal to the recovered height right after a restart).
func (p *SWPeer) Height() uint64 { return p.Ledger.Height() }

// Height reports the peer's ledger height — the next block number it
// expects to commit (equal to the recovered height right after a restart).
func (p *ParallelPeer) Height() uint64 { return p.Ledger.Height() }

// Checkpoint writes a state checkpoint at the current ledger height
// (atomic rename; the previous checkpoint survives a crash mid-write).
// Call it after bootstrap to capture genesis state that no ledger block
// carries.
func (p *SWPeer) Checkpoint() error {
	return statedb.SaveCheckpointFault(filepath.Join(p.dir, CheckpointFile), p.Validator.Store(), p.Ledger.Height(), p.ckptFault)
}

// Checkpoint writes a state checkpoint at the current ledger height
// (atomic rename; the previous checkpoint survives a crash mid-write).
// Call it after bootstrap to capture genesis state that no ledger block
// carries.
func (p *ParallelPeer) Checkpoint() error {
	return statedb.SaveCheckpointFault(filepath.Join(p.dir, CheckpointFile), p.Engine.Store(), p.Ledger.Height(), p.ckptFault)
}

// maybeCheckpoint runs the periodic checkpoint policy after a successful
// commit of blockNum.
func maybeCheckpoint(every int, blockNum uint64, ckpt func() error) error {
	if every <= 0 || (blockNum+1)%uint64(every) != 0 {
		return nil
	}
	if err := ckpt(); err != nil {
		return fmt.Errorf("peer: checkpoint after block %d: %w", blockNum, err)
	}
	return nil
}
