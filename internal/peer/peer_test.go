package peer

import (
	"bytes"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/core"
	"bmac/internal/gossip"
	"bmac/internal/identity"
	"bmac/internal/orderer"
	"bmac/internal/pipeline"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
	"bmac/internal/raft"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// TestEndToEndNetworkEquivalence reproduces the paper's experimental setup
// (Figure 8) in miniature: a 2-org network with an orderer delivering the
// same blocks to a software validator peer via Gossip (TCP) and to a BMac
// peer via the BMac protocol (UDP). As in §4.1, the block and transaction
// valid/invalid flags and the commit hash must match between the peers.
func TestEndToEndNetworkEquivalence(t *testing.T) {
	// --- identities ---
	net := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := net.AddOrg(org); err != nil {
			t.Fatal(err)
		}
	}
	client, err := net.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	ordID, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := net.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := net.NewIdentity("Org2", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}

	// --- peers ---
	swPeer, err := NewSWPeer(validator.Config{
		Workers:  4,
		Policies: map[string]*policy.Policy{"smallbank": policytest.MustParse("2of2")},
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer swPeer.Close()

	bmacPeer, err := NewBMacPeer(core.Config{
		TxValidators: 4,
		VSCCEngines:  2,
		Policies: map[string]*policy.Circuit{
			"smallbank": policy.Compile(policytest.MustParse("2of2")),
		},
	}, 8192, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer bmacPeer.Close()

	// --- transports ---
	swListener, err := gossip.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer swListener.Close()
	udp, err := bmacproto.ListenUDP("127.0.0.1:0", bmacPeer.Receiver)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	broadcaster := gossip.NewBroadcaster()
	defer broadcaster.Close()
	if err := broadcaster.AddPeer(swListener.Addr()); err != nil {
		t.Fatal(err)
	}
	sink, err := bmacproto.DialUDP(udp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	bmacSender := bmacproto.NewSender(identity.NewCache(), sink)
	if err := bmacSender.RegisterNetwork(net); err != nil {
		t.Fatal(err)
	}

	// --- ordering service (single-node raft, as in the paper) ---
	cluster := raft.NewCluster(1, 20*time.Millisecond)
	defer cluster.Stop()
	if cluster.WaitForLeader(3*time.Second) == nil {
		t.Fatal("no raft leader")
	}
	ord := orderer.New(orderer.Config{BatchSize: 5, BatchTimeout: time.Hour, Channel: "ch1"},
		ordID, cluster.Nodes[0])
	defer ord.Stop()
	// The orderer sends through our protocol right before Gossip (§3.5).
	ord.OnDeliver(func(b *block.Block) error {
		if _, err := bmacSender.SendBlock(b); err != nil {
			return err
		}
		return broadcaster.Broadcast(b)
	})

	// --- submit transactions (some deliberately invalid) ---
	const blocks, perBlock = 3, 5
	for i := 0; i < blocks*perBlock; i++ {
		spec := block.TxSpec{
			Creator:   client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet: block.RWSet{
				Reads:  []block.KVRead{{Key: "cold" + string(rune('A'+i)), Version: block.Version{}}},
				Writes: []block.KVWrite{{Key: "key" + string(rune('A'+i)), Value: []byte{byte(i)}}},
			},
			Endorsers: []*identity.Identity{p1, p2},
		}
		if i%7 == 3 {
			spec.CorruptClientSig = true
		}
		if i%5 == 4 {
			spec.CorruptEndorsementIdx = 2
		}
		env, err := block.NewEndorsedEnvelope(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := ord.Submit(env); err != nil {
			t.Fatal(err)
		}
	}

	// --- collect and compare ---
	for n := 0; n < blocks; n++ {
		var swRes CommitResult
		select {
		case b := <-swListener.Blocks():
			res, err := swPeer.CommitBlock(b)
			if err != nil {
				t.Fatal(err)
			}
			swRes = res
		case <-time.After(10 * time.Second):
			t.Fatalf("sw peer: block %d never arrived", n)
		}

		var hwRes CommitResult
		select {
		case hwRes = <-bmacPeer.Results():
		case <-time.After(10 * time.Second):
			t.Fatalf("bmac peer: block %d never committed", n)
		}

		if swRes.BlockNum != hwRes.BlockNum {
			t.Fatalf("block number mismatch: sw %d, hw %d", swRes.BlockNum, hwRes.BlockNum)
		}
		if !block.FlagsEqual(swRes.Flags, hwRes.Flags) {
			t.Errorf("block %d flags diverge:\n  sw: %v\n  hw: %v", n, swRes.Flags, hwRes.Flags)
		}
		if !bytes.Equal(swRes.CommitHash, hwRes.CommitHash) {
			t.Errorf("block %d commit hash diverges", n)
		}
	}
	if err := bmacPeer.Err(); err != nil {
		t.Fatal(err)
	}

	// State databases converged.
	if !statedb.SnapshotsEqual(swPeer.Validator.Store().Snapshot(), bmacPeer.Proc.DB().Snapshot()) {
		t.Error("state databases diverge after 3 blocks")
	}
	// Ledgers agree on height and final commit hash.
	if swPeer.Ledger.Height() != bmacPeer.Ledger.Height() {
		t.Errorf("heights: sw %d, hw %d", swPeer.Ledger.Height(), bmacPeer.Ledger.Height())
	}
	if !bytes.Equal(swPeer.Ledger.LastCommitHash(), bmacPeer.Ledger.LastCommitHash()) {
		t.Error("final ledger commit hashes diverge")
	}
}

func TestBMacPeerInMemoryPipeline(t *testing.T) {
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, _ := net.NewIdentity("Org1", identity.RoleClient)
	ordID, _ := net.NewIdentity("Org1", identity.RoleOrderer)
	p1, _ := net.NewIdentity("Org1", identity.RolePeer)

	peerNode, err := NewBMacPeer(core.Config{
		TxValidators: 2,
		VSCCEngines:  2,
		Policies:     map[string]*policy.Circuit{"cc": policy.Compile(policytest.MustParse("1of1"))},
	}, 1024, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer peerNode.Close()

	link := bmacproto.NewMemLink(peerNode.Receiver)
	sender := bmacproto.NewSender(identity.NewCache(), link)
	if err := sender.RegisterNetwork(net); err != nil {
		t.Fatal(err)
	}

	var prev []byte
	for n := uint64(0); n < 5; n++ {
		env, err := block.NewEndorsedEnvelope(block.TxSpec{
			Creator: client, Chaincode: "cc", Channel: "ch",
			RWSet:     block.RWSet{Writes: []block.KVWrite{{Key: "k", Value: []byte{byte(n)}}}},
			Endorsers: []*identity.Identity{p1},
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := block.NewBlock(n, prev, []block.Envelope{*env}, ordID)
		if err != nil {
			t.Fatal(err)
		}
		prev = block.HeaderHash(&b.Header)
		if _, err := sender.SendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	for n := uint64(0); n < 5; n++ {
		res, ok := <-peerNode.Results()
		if !ok {
			t.Fatalf("results closed at block %d", n)
		}
		if res.BlockNum != n || !res.BlockValid {
			t.Errorf("block %d: %+v", n, res)
		}
	}
	if peerNode.Ledger.Height() != 5 {
		t.Errorf("ledger height = %d", peerNode.Ledger.Height())
	}
	// The hardware stats flowed through.
	if err := peerNode.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBMacPeerDataHashMismatch tampers an envelope in flight: the streamed
// data-hash check fails, so the CPU side invalidates every transaction in
// the block but still commits it to the ledger with invalid flags.
func TestBMacPeerDataHashMismatch(t *testing.T) {
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, _ := net.NewIdentity("Org1", identity.RoleClient)
	ordID, _ := net.NewIdentity("Org1", identity.RoleOrderer)
	p1, _ := net.NewIdentity("Org1", identity.RolePeer)

	peerNode, err := NewBMacPeer(core.Config{
		TxValidators: 2,
		VSCCEngines:  1,
		Policies:     map[string]*policy.Circuit{"cc": policy.Compile(policytest.MustParse("1of1"))},
	}, 64, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer peerNode.Close()

	link := bmacproto.NewMemLink(peerNode.Receiver)
	sender := bmacproto.NewSender(identity.NewCache(), link)
	if err := sender.RegisterNetwork(net); err != nil {
		t.Fatal(err)
	}

	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator: client, Chaincode: "cc", Channel: "ch",
		Endorsers: []*identity.Identity{p1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := block.NewBlock(0, nil, []block.Envelope{*env}, ordID)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper AFTER the data hash was computed: the reconstructed stream
	// will not hash to Header.DataHash.
	b.Envelopes[0].Signature[4] ^= 0xff
	if _, err := sender.SendBlock(b); err != nil {
		t.Fatal(err)
	}

	res, ok := <-peerNode.Results()
	if !ok {
		t.Fatal("no result")
	}
	if res.BlockValid {
		t.Error("block with broken data hash reported valid")
	}
	for i, f := range res.Flags {
		if block.ValidationCode(f) == block.Valid {
			t.Errorf("tx %d valid despite data hash mismatch", i)
		}
	}
	if peerNode.Ledger.Height() != 1 {
		t.Errorf("height = %d; invalid blocks are still appended with invalid flags", peerNode.Ledger.Height())
	}
	if err := peerNode.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSWPeerRejectsTamperedBlock(t *testing.T) {
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, _ := net.NewIdentity("Org1", identity.RoleClient)
	ordID, _ := net.NewIdentity("Org1", identity.RoleOrderer)

	swPeer, err := NewSWPeer(validator.Config{
		Workers:  2,
		Policies: map[string]*policy.Policy{"cc": policytest.MustParse("1of1")},
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer swPeer.Close()

	env, err := block.NewEndorsedEnvelope(block.TxSpec{Creator: client, Chaincode: "cc", Channel: "ch"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := block.NewBlock(0, nil, []block.Envelope{*env}, ordID)
	if err != nil {
		t.Fatal(err)
	}
	b.Metadata.Signature.Signature[3] ^= 0xff
	if _, err := swPeer.CommitBlock(b); err == nil {
		t.Error("tampered orderer signature accepted")
	}
}

// TestParallelPeerMatchesSWPeer commits the same blocks through an SWPeer
// and a ParallelPeer and requires identical flags, commit hashes and
// ledger heights — the three-way cross-check the Testbed performs, in
// miniature.
func TestParallelPeerMatchesSWPeer(t *testing.T) {
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, _ := net.NewIdentity("Org1", identity.RoleClient)
	ordID, _ := net.NewIdentity("Org1", identity.RoleOrderer)
	endorser, _ := net.NewIdentity("Org1", identity.RolePeer)
	pols := map[string]*policy.Policy{"cc": policytest.MustParse("1of1")}

	swPeer, err := NewSWPeer(validator.Config{Workers: 2, Policies: pols}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer swPeer.Close()
	parPeer, err := NewParallelPeer(pipeline.Config{Workers: 4, Policies: pols}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer parPeer.Close()

	var prevHash []byte
	for n := uint64(0); n < 3; n++ {
		envs := make([]block.Envelope, 0, 4)
		for i := 0; i < 4; i++ {
			rw := block.RWSet{Writes: []block.KVWrite{{
				Key:   "acct" + string(rune('0'+i)),
				Value: []byte{byte(n)},
			}}}
			if n > 0 && i == 0 {
				rw.Reads = []block.KVRead{{
					Key:     "acct0",
					Version: block.Version{BlockNum: n - 1, TxNum: 0},
				}}
			}
			env, err := block.NewEndorsedEnvelope(block.TxSpec{
				Creator: client, Chaincode: "cc", Channel: "ch",
				RWSet: rw, Endorsers: []*identity.Identity{endorser},
			})
			if err != nil {
				t.Fatal(err)
			}
			envs = append(envs, *env)
		}
		b, err := block.NewBlock(n, prevHash, envs, ordID)
		if err != nil {
			t.Fatal(err)
		}
		prevHash = block.HeaderHash(&b.Header)
		swRes, err := swPeer.CommitBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		parRes, err := parPeer.CommitBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if !block.FlagsEqual(swRes.Flags, parRes.Flags) {
			t.Fatalf("block %d: flags diverge: sw %v par %v", n, swRes.Flags, parRes.Flags)
		}
		if !bytes.Equal(swRes.CommitHash, parRes.CommitHash) {
			t.Fatalf("block %d: commit hash diverges", n)
		}
	}
	if swPeer.Ledger.Height() != parPeer.Ledger.Height() {
		t.Error("ledger heights diverge")
	}
	if !statedb.SnapshotsEqual(
		swPeer.Validator.Store().Snapshot(), parPeer.Engine.Store().Snapshot()) {
		t.Error("state diverged")
	}
}
